#include "vm/blackhole.h"

#include <unordered_map>

#include "jit/opt.h"
#include "xlayer/annot.h"

namespace xlvm {
namespace vm {

using jit::RtVal;
using obj::W_Object;

W_Object *
allocByTypeId(obj::ObjSpace &space, uint32_t type_id)
{
    gc::Heap &heap = space.heap();
    switch (type_id) {
      case obj::kTypeInt:
        return heap.alloc<obj::W_Int>(0);
      case obj::kTypeFloat:
        return heap.alloc<obj::W_Float>(0.0);
      case obj::kTypeBool:
        return heap.alloc<obj::W_Bool>(false);
      case obj::kTypeCell:
        return heap.alloc<obj::W_Cell>(nullptr);
      case obj::kTypeListIter:
        return heap.alloc<obj::W_ListIter>(nullptr);
      case obj::kTypeRangeIter:
        return heap.alloc<obj::W_RangeIter>(0, 0, 1);
      case obj::kTypeTupleIter:
        return heap.alloc<obj::W_TupleIter>(nullptr);
      case obj::kTypeStrIter:
        return heap.alloc<obj::W_StrIter>(nullptr);
      case obj::kTypeBoundMethod:
        return heap.alloc<obj::W_BoundMethod>(nullptr, nullptr);
      case obj::kTypeInstance:
        return heap.alloc<obj::W_Instance>(nullptr, nullptr);
      case obj::kTypePair:
        return heap.alloc<obj::W_Pair>(nullptr, nullptr);
      default:
        XLVM_PANIC("cannot rebuild virtual of type ",
                   obj::typeName(type_id));
    }
}

namespace {

class Materializer
{
  public:
    Materializer(obj::ObjSpace &space, const jit::Trace &trace,
                 const std::vector<RtVal> &regs)
        : space_(space), trace_(trace), regs_(regs)
    {
    }

    W_Object *
    resolveRef(int32_t ref)
    {
        if (ref == jit::kNoArg)
            return space_.none();
        if (jit::isVirtualRef(ref))
            return materializeVirtual(jit::virtualIndex(ref));
        if (jit::isConstRef(ref)) {
            const RtVal &v = trace_.constAt(ref);
            XLVM_ASSERT(v.kind == RtVal::Kind::Ref, "non-ref const slot");
            return static_cast<W_Object *>(v.r);
        }
        const RtVal &v = regs_[ref];
        switch (v.kind) {
          case RtVal::Kind::Ref:
            return static_cast<W_Object *>(v.r);
          case RtVal::Kind::Int:
            return space_.newInt(v.i);
          case RtVal::Kind::Float:
            return space_.newFloat(v.f);
        }
        return space_.none();
    }

    RtVal
    resolveVal(int32_t ref)
    {
        if (ref == jit::kNoArg)
            return RtVal::fromRef(nullptr);
        if (jit::isVirtualRef(ref))
            return RtVal::fromRef(
                materializeVirtual(jit::virtualIndex(ref)));
        if (jit::isConstRef(ref))
            return trace_.constAt(ref);
        return regs_[ref];
    }

    W_Object *
    materializeVirtual(int32_t vidx)
    {
        auto it = memo.find(vidx);
        if (it != memo.end())
            return it->second;
        const jit::VirtualObj &vo = trace_.virtuals[vidx];
        W_Object *w = allocByTypeId(space_, vo.typeId);
        memo[vidx] = w; // before fields: cycles terminate
        for (uint32_t f = 0; f < vo.fieldRefs.size(); ++f) {
            if (vo.fieldRefs[f] == jit::kNoArg)
                continue;
            w->rtSetField(f, resolveVal(vo.fieldRefs[f]),
                          space_.heap());
        }
        ++materialized_;
        return w;
    }

    uint64_t materializedCount() const { return materialized_; }

  private:
    obj::ObjSpace &space_;
    const jit::Trace &trace_;
    const std::vector<RtVal> &regs_;
    std::unordered_map<int32_t, W_Object *> memo;
    uint64_t materialized_ = 0;
};

} // namespace

DeoptResult
materializeState(obj::ObjSpace &space, const jit::Trace &trace,
                 const jit::Snapshot &snapshot,
                 const std::vector<RtVal> &regs)
{
    Materializer mat(space, trace, regs);
    DeoptResult out;
    out.traceId = trace.id;
    for (const jit::FrameSnapshot &f : snapshot.frames) {
        FrameState fs;
        fs.code = f.code;
        fs.pc = f.pc;
        fs.locals.reserve(f.locals.size());
        for (int32_t r : f.locals)
            fs.locals.push_back(mat.resolveRef(r));
        fs.stack.reserve(f.stack.size());
        for (int32_t r : f.stack)
            fs.stack.push_back(mat.resolveRef(r));
        out.frames.push_back(std::move(fs));
    }
    return out;
}

DeoptResult
blackholeMaterialize(obj::ObjSpace &space, const jit::Trace &trace,
                     const jit::Snapshot &snapshot,
                     const std::vector<RtVal> &regs,
                     uint32_t guard_op_idx)
{
    obj::ExecEnv &env = space.env();
    const obj::CostParams &costs = env.costs();

    // Enter the blackhole phase; the actual reconstruction cost is
    // emitted below, proportional to the number of slots rebuilt.
    uint64_t site = env.blackholeSite();
    sim::BlockEmitter e(env.core(), site);
    e.annot(xlayer::kPhaseEnter, uint32_t(xlayer::Phase::Blackhole));

    Materializer mat(space, trace, regs);
    DeoptResult out;
    out.traceId = trace.id;
    out.guardOpIdx = guard_op_idx;

    uint64_t slots = 0;
    for (const jit::FrameSnapshot &f : snapshot.frames) {
        FrameState fs;
        fs.code = f.code;
        fs.pc = f.pc;
        fs.locals.reserve(f.locals.size());
        for (int32_t r : f.locals)
            fs.locals.push_back(mat.resolveRef(r));
        fs.stack.reserve(f.stack.size());
        for (int32_t r : f.stack)
            fs.stack.push_back(mat.resolveRef(r));
        slots += f.locals.size() + f.stack.size();
        out.frames.push_back(std::move(fs));
    }

    // Blackhole cost: heavy, branchy, poorly predicted (Table IV shows
    // the worst IPC of all phases).
    uint64_t work = costs.blackholeFixedInsts +
                    slots * costs.blackholePerSlotInsts +
                    mat.materializedCount() * 24;
    for (uint64_t i = 0; i < work; i += 4) {
        sim::BlockEmitter body(env.core(), site + 64);
        body.load(trace.codePc + (i % 1024) * 8, 3);
        body.alu(2);
        // Resume-data decoding branches on irregular encodings:
        // effectively unpredictable.
        body.branch(((i * 2654435761ull) >> 13) & 1);
    }

    e.annot(xlayer::kPhaseExit, uint32_t(xlayer::Phase::Blackhole));
    return out;
}

} // namespace vm
} // namespace xlvm
