/**
 * @file
 * GC instrumentation hooks: attribute collection work to the GC phase.
 */

#ifndef XLVM_VM_GCHOOKS_H
#define XLVM_VM_GCHOOKS_H

#include "gc/heap.h"
#include "obj/execenv.h"

namespace xlvm {
namespace vm {

class GcPhaseHooks : public gc::GcHooks
{
  public:
    explicit GcPhaseHooks(obj::ExecEnv &env) : env_(env)
    {
        sitePc = env.allocSite(256);
    }

    void
    onCollectStart(bool major) override
    {
        // Sampler context: collections can interrupt trace execution
        // (safepoints), so save the interrupted context and restore it
        // when the collection ends.
        sim::Core &core = env_.core();
        savedCtx = core.profileContext();
        core.setProfileContext(
            sim::sampleCtxPack(sim::SampleCtxKind::Gc, 0, ordinal));
        sim::BlockEmitter e(core, sitePc);
        e.annot(xlayer::kPhaseEnter, uint32_t(xlayer::Phase::Gc));
        e.annot(major ? xlayer::kGcMajor : xlayer::kGcMinor, ordinal++);
    }

    void
    onCollectEnd(const gc::GcCollectionStats &stats) override
    {
        const obj::CostParams &c = env_.costs();
        double work =
            stats.major
                ? c.gcMajorFixedInsts +
                      stats.objectsScanned * c.gcPerScannedObjInsts +
                      (stats.bytesPromoted + stats.bytesFreed) *
                          c.gcMajorPerByteInsts
                : c.gcMinorFixedInsts +
                      stats.objectsScanned * c.gcPerScannedObjInsts +
                      stats.bytesPromoted * c.gcPerPromotedByteInsts;
        // Collection loop: loads (tracing pointers), stores (copying),
        // well-predicted branches (Table IV: GC has relatively high IPC).
        uint64_t n = uint64_t(work);
        for (uint64_t i = 0; i < n; i += 5) {
            sim::BlockEmitter body(env_.core(), sitePc + 64);
            // The same tight collection loop runs over and over, so the
            // predictors warm up well (Table IV: GC has relatively high
            // IPC) and the scan window stays cache-resident.
            body.load(0x30000000 + (i % 2048) * 8, 0);
            body.alu(2);
            body.store(0x38000000 + (i % 2048) * 8);
            body.branch(i + 5 < n);
        }
        sim::BlockEmitter e(env_.core(), sitePc + 128);
        e.annot(xlayer::kPhaseExit, uint32_t(xlayer::Phase::Gc));
        env_.core().setProfileContext(savedCtx);
    }

    void
    onObjectFree(const gc::GcObject *o) override
    {
        // Drop the simulated address so a recycled host allocation gets
        // a fresh line instead of aliasing the dead object's.
        env_.core().releaseDataAddr(o);
    }

  private:
    obj::ExecEnv &env_;
    uint64_t sitePc = 0;
    uint32_t ordinal = 0;
    uint64_t savedCtx = 0;
};

} // namespace vm
} // namespace xlvm

#endif // XLVM_VM_GCHOOKS_H
