/**
 * @file
 * JIT-compiled trace execution.
 *
 * The executor plays the role of the generated machine code: it
 * dispatches threaded-code style over the micro-op program the backend
 * pre-lowered from the optimized IR (jit/lower.h), with an unboxed
 * register file whose tail holds the trace constants. Each handler emits
 * the op's lowered instruction expansion (exactly the Backend's Figure-9
 * templates, with live memory addresses and branch outcomes) while
 * performing the semantics directly on raw object fields — no dynamic
 * dispatch in the modeled code, which is precisely why the JIT phase has
 * the best IPC in Table IV.
 *
 * Guard failures bump per-guard counters, either transfer to an attached
 * bridge trace or deoptimize through the blackhole. Loop back-edges are
 * GC safepoints (the register file is a root provider). call_assembler
 * ops run nested traces and validate the expected exit state.
 */

#ifndef XLVM_VM_EXECUTOR_H
#define XLVM_VM_EXECUTOR_H

#include <vector>

#include "common/histogram.h"
#include "jit/backend.h"
#include "obj/space.h"
#include "vm/blackhole.h"
#include "vm/registry.h"

namespace xlvm {
namespace vm {

class TraceExecutor : public gc::RootProvider
{
  public:
    TraceExecutor(obj::ObjSpace &space, TraceRegistry &registry,
                  jit::Backend &backend, const JitParams &params);
    ~TraceExecutor() override;

    /**
     * Execute @p trace with the given input values until a guard fails
     * without a bridge (or an unexpected call_assembler exit). Returns
     * the reconstructed interpreter state.
     */
    DeoptResult run(jit::Trace &trace, std::vector<jit::RtVal> inputs);

    /**
     * Ids of guards that just crossed the bridge threshold; the dispatch
     * glue consumes these to start bridge tracing. Pair of (trace id,
     * guard op index).
     */
    std::vector<std::pair<uint32_t, uint32_t>> hotGuards;

    /**
     * Ids of tier-1 traces whose execution count crossed tier2Threshold
     * (checked on backward transfers, Multi mode only); the dispatch
     * glue drains these between trace runs and re-optimizes each trace,
     * swapping its program in place.
     */
    std::vector<uint32_t> pendingPromotions;

    void forEachRoot(gc::GcVisitor &v) override;

    uint64_t deoptCount() const { return nDeopts; }
    uint64_t iterationCount() const { return nIterations; }

    /**
     * Modeled cycles spent executing traces of @p tier (1 or 2).
     * Sampled at trace-transfer granularity: every entry, cross-trace
     * or bridge transfer, and exit flushes the running interval to the
     * tier executing since the previous sample, so mixed-tier runs
     * split correctly. Trace-exit annotations land between samples and
     * are not attributed — the split is exact at loop granularity.
     */
    uint64_t tierCyclesFp(uint8_t tier) const
    {
        return tier < 3 ? tierCycles[tier] : 0;
    }

    /**
     * Distribution of per-iteration modeled-cycle latency, recorded at
     * every loop back-edge (whole cycles, back-edge to back-edge).
     * Measured right after the memo boundary, where the replay layers
     * have fully caught counters up, so the distribution is
     * bit-identical with memoization/superblock replay on or off —
     * which lets its percentiles live in the golden-gated metrics.
     */
    const common::Histogram &iterationLatency() const { return iterHist_; }

    /** Distribution of whole trace-execution lengths (entry to exit,
     *  modeled cycles), one record per TraceExecutor::run. */
    const common::Histogram &executionLength() const { return execHist_; }

  private:
    struct Level
    {
        jit::Trace *trace;
        std::vector<jit::RtVal> *regs;
    };

    /** Perform one recorded AOT call (the recorded ABI). Operands come
     *  pre-decoded as direct register-file indices in the micro-op. */
    jit::RtVal performCall(const jit::MicroOp &m, jit::RtVal *regs);

    obj::ObjSpace &space;
    TraceRegistry &registry;
    jit::Backend &backend;
    JitParams params;
    std::vector<Level> active; ///< for GC root enumeration
    uint64_t nDeopts = 0;
    uint64_t nIterations = 0;
    /** Nested call_assembler depth (bounded; see executor.cc). */
    int runDepth = 0;
    /** Per-tier cycle attribution ([0] = idle, unused in reports). */
    uint64_t tierCycles[3] = {0, 0, 0};
    common::Histogram iterHist_;
    common::Histogram execHist_;
    uint64_t tierSampleFp = 0;
    uint8_t curTier = 0; ///< 0 = not executing a trace
};

/** RAII: enter "JIT code" mode (clears recorder, sets phase flags). */
class JitCodeScope
{
  public:
    explicit JitCodeScope(obj::ExecEnv &env)
        : env_(env), savedRec(env.recorder()), savedInJit(env.inJitCode())
    {
        env_.setRecorder(nullptr);
        env_.setInJitCode(true);
    }

    ~JitCodeScope()
    {
        env_.setRecorder(savedRec);
        env_.setInJitCode(savedInJit);
    }

  private:
    obj::ExecEnv &env_;
    jit::Recorder *savedRec;
    bool savedInJit;
};

} // namespace vm
} // namespace xlvm

#endif // XLVM_VM_EXECUTOR_H
