#include "vm/executor.h"

#include <cmath>

#include "rt/rstr.h"
#include "xlayer/annot.h"

namespace xlvm {
namespace vm {

using jit::BoxType;
using jit::IrOp;
using jit::kNoArg;
using jit::ResOp;
using jit::RtVal;
using jit::Trace;
using obj::W_Object;

TraceExecutor::TraceExecutor(obj::ObjSpace &sp, TraceRegistry &reg,
                             jit::Backend &be, const JitParams &p)
    : space(sp), registry(reg), backend(be), params(p)
{
    space.heap().addRootProvider(this);
}

TraceExecutor::~TraceExecutor()
{
    space.heap().removeRootProvider(this);
}

void
TraceExecutor::forEachRoot(gc::GcVisitor &v)
{
    for (Level &lvl : active) {
        for (RtVal &r : *lvl.regs) {
            if (r.kind == RtVal::Kind::Ref && r.r)
                v.visit(static_cast<gc::GcObject *>(r.r));
        }
        for (const RtVal &c : lvl.trace->consts) {
            if (c.kind == RtVal::Kind::Ref && c.r)
                v.visit(static_cast<gc::GcObject *>(c.r));
        }
    }
}

namespace {

inline W_Object *
asObj(const RtVal &v)
{
    return static_cast<W_Object *>(v.r);
}

/** Flatten a deopt state's slots into trace-input values (bridge ABI). */
std::vector<RtVal>
flattenState(const DeoptResult &state)
{
    std::vector<RtVal> out;
    for (const FrameState &f : state.frames) {
        for (W_Object *w : f.locals)
            out.push_back(RtVal::fromRef(w));
        for (W_Object *w : f.stack)
            out.push_back(RtVal::fromRef(w));
    }
    return out;
}

} // namespace

DeoptResult
TraceExecutor::run(Trace &trace, std::vector<RtVal> inputs)
{
    obj::ExecEnv &env = space.env();
    sim::Core &core = env.core();
    JitCodeScope jitScope(env);

    Trace *t = &trace;
    std::vector<RtVal> regs;
    auto enterTrace = [&](Trace *target, std::vector<RtVal> &&in) {
        t = target;
        XLVM_ASSERT(in.size() == target->numInputs,
                    "trace input arity mismatch: ", in.size(), " vs ",
                    target->numInputs, " (trace ", target->id, ")");
        regs.assign(target->boxTypes.size(), RtVal());
        for (size_t i = 0; i < in.size(); ++i)
            regs[i] = in[i];
        ++target->executions;
    };

    {
        sim::BlockEmitter e(core, trace.codePc);
        e.annot(xlayer::kTraceEnter, trace.id);
        e.annot(xlayer::kPhaseEnter, uint32_t(xlayer::Phase::Jit));
    }
    enterTrace(&trace, std::move(inputs));
    active.push_back(Level{t, &regs});

    auto leave = [&](DeoptResult &&res) {
        active.pop_back();
        sim::BlockEmitter e(core, t->codePc + t->codeInsts * 4);
        e.annot(xlayer::kTraceLeave, t->id);
        e.annot(xlayer::kPhaseExit, uint32_t(xlayer::Phase::Jit));
        return std::move(res);
    };

    size_t idx = 0;
    bool pendingOverflow = false;
    uint64_t steps = 0;

    while (true) {
        if (++steps > (1ull << 34)) {
            // Runaway backstop: a correct program cannot execute this
            // many IR ops in one JIT entry at our benchmark scales.
            std::string all;
            for (const auto &tr : registry.all()) {
                all += tr->dump();
                for (size_t g = 0; g < tr->guardStates.size(); ++g) {
                    if (tr->guardStates[g].failCount) {
                        all += "  guard@" + std::to_string(g) +
                               " fails=" +
                               std::to_string(
                                   tr->guardStates[g].failCount) +
                               " bridge=" +
                               std::to_string(
                                   tr->guardStates[g].bridgeTraceId) +
                               "\n";
                    }
                }
            }
            XLVM_PANIC("runaway trace execution, in trace ", t->id,
                       "; all traces:\n", all);
        }
        XLVM_ASSERT(idx < t->ops.size(), "ran off trace end");
        const ResOp &op = t->ops[idx];
        const auto &offsets = backend.opOffsets(t->id);
        const auto &nodeIds = backend.opNodeIds(t->id);
        uint64_t pc = t->codePc + uint64_t(offsets[idx]) * 4;
        sim::BlockEmitter e(core, pc);

        if (params.irNodeAnnotations && nodeIds[idx] >= 0)
            e.annot(xlayer::kIrNode, uint32_t(nodeIds[idx]));

        auto A = [&](int i) { return val(*t, regs, op.args[i]); };
        auto setRes = [&](RtVal v) {
            if (op.result >= 0)
                regs[op.result] = v;
        };

        // ---- guard handling ------------------------------------------
        if (jit::isGuard(op.op)) {
            bool ok = true;
            switch (op.op) {
              case IrOp::GuardTrue:
                ok = A(0).i != 0;
                e.alu(1);
                break;
              case IrOp::GuardFalse:
                ok = A(0).i == 0;
                e.alu(1);
                break;
              case IrOp::GuardClass: {
                W_Object *w = asObj(A(0));
                e.loadPtr(w, env.costs().jitLoadStall);
                e.alu(1);
                ok = w && w->typeId() == op.aux;
                break;
              }
              case IrOp::GuardValue: {
                RtVal v = A(0);
                e.alu(1);
                ok = uint64_t(v.i) == op.expect;
                break;
              }
              case IrOp::GuardNonnull:
                ok = A(0).r != nullptr;
                e.alu(1);
                break;
              case IrOp::GuardIsnull:
                ok = A(0).r == nullptr;
                e.alu(1);
                break;
              case IrOp::GuardNoOverflow:
                ok = !pendingOverflow;
                break;
              default:
                break;
            }
            e.branch(!ok);
            if (ok) {
                ++idx;
                continue;
            }

            // Guard failed.
            jit::GuardState &gs = t->guardStates[idx];
            ++gs.failCount;
            ++nDeopts;
#ifdef XLVM_DEBUG_DEOPT
            if (nDeopts > 5000 && nDeopts < 5040) {
                std::fprintf(stderr,
                             "deopt trace=%u op=%zu %s arg=%lld "
                             "expect=%llu\n",
                             t->id, idx, jit::irOpName(op.op),
                             (long long)A(0).i,
                             (unsigned long long)op.expect);
            }
#endif
            {
                sim::BlockEmitter ed(core, pc + 8);
                ed.annot(xlayer::kDeopt, uint32_t(idx));
            }
            if (gs.bridgeTraceId >= 0) {
                // Transfer into the attached bridge.
                Trace *bridge = registry.byId(uint32_t(gs.bridgeTraceId));
                DeoptResult state = materializeState(
                    space, *t, t->snapshots[op.snapshotIdx], regs);
                std::vector<RtVal> bridgeIn = flattenState(state);
                if (bridgeIn.size() != bridge->numInputs) {
                    // Shape mismatch (shouldn't happen): hard deopt.
                    return leave(blackholeMaterialize(
                        space, *t, t->snapshots[op.snapshotIdx], regs,
                        uint32_t(idx)));
                }
                enterTrace(bridge, std::move(bridgeIn));
                active.back().trace = t;
                idx = 0;
                continue;
            }
            if (gs.failCount == params.bridgeThreshold)
                hotGuards.emplace_back(t->id, uint32_t(idx));
            return leave(blackholeMaterialize(
                space, *t, t->snapshots[op.snapshotIdx], regs,
                uint32_t(idx)));
        }

        // ---- everything else ------------------------------------------
        switch (op.op) {
          case IrOp::Label:
            // Loop header: GC safepoint.
            space.heap().safepoint();
            ++idx;
            continue;

          case IrOp::DebugMergePoint:
            e.annot(xlayer::kDispatch, op.aux);
            ++idx;
            continue;

          case IrOp::Jump: {
            e.jump(t->codePc);
            const jit::Snapshot &snap = t->snapshots[op.snapshotIdx];
            const std::vector<int32_t> &argRefs = snap.frames[0].stack;
            std::vector<RtVal> next;
            next.reserve(argRefs.size());
            for (int32_t r : argRefs)
                next.push_back(val(*t, regs, r));
            ++nIterations;
            if (op.aux == 0) {
                // Self loop.
                XLVM_ASSERT(next.size() == t->numInputs,
                            "jump arity mismatch");
                for (size_t i = 0; i < next.size(); ++i)
                    regs[i] = next[i];
                ++t->executions;
                idx = 0;
            } else {
                Trace *target = registry.byId(op.aux - 1);
                enterTrace(target, std::move(next));
                active.back().trace = t;
                idx = 0;
            }
            continue;
          }

          case IrOp::Finish:
            e.alu(2);
            return leave(blackholeMaterialize(
                space, *t, t->snapshots[op.snapshotIdx], regs,
                uint32_t(idx)));

          // ---- integer -------------------------------------------------
          case IrOp::IntAdd:
            e.alu(1);
            setRes(RtVal::fromInt(
                int64_t(uint64_t(A(0).i) + uint64_t(A(1).i))));
            break;
          case IrOp::IntSub:
            e.alu(1);
            setRes(RtVal::fromInt(
                int64_t(uint64_t(A(0).i) - uint64_t(A(1).i))));
            break;
          case IrOp::IntMul:
            e.mul();
            setRes(RtVal::fromInt(
                int64_t(uint64_t(A(0).i) * uint64_t(A(1).i))));
            break;
          case IrOp::IntAddOvf: {
            e.alu(1);
            int64_t r;
            pendingOverflow = __builtin_add_overflow(A(0).i, A(1).i, &r);
            setRes(RtVal::fromInt(r));
            break;
          }
          case IrOp::IntSubOvf: {
            e.alu(1);
            int64_t r;
            pendingOverflow = __builtin_sub_overflow(A(0).i, A(1).i, &r);
            setRes(RtVal::fromInt(r));
            break;
          }
          case IrOp::IntMulOvf: {
            e.alu(1);
            int64_t r;
            pendingOverflow = __builtin_mul_overflow(A(0).i, A(1).i, &r);
            setRes(RtVal::fromInt(r));
            break;
          }
          case IrOp::IntFloordiv: {
            e.div();
            e.alu(3);
            int64_t a = A(0).i, b = A(1).i;
            XLVM_ASSERT(b != 0, "division by zero in trace");
            int64_t q = a / b;
            if ((a % b != 0) && ((a < 0) != (b < 0)))
                --q;
            setRes(RtVal::fromInt(q));
            break;
          }
          case IrOp::IntMod: {
            e.div();
            e.alu(3);
            int64_t a = A(0).i, b = A(1).i;
            XLVM_ASSERT(b != 0, "modulo by zero in trace");
            int64_t r = a % b;
            if (r != 0 && ((r < 0) != (b < 0)))
                r += b;
            setRes(RtVal::fromInt(r));
            break;
          }
          case IrOp::IntAnd:
            e.alu(1);
            setRes(RtVal::fromInt(A(0).i & A(1).i));
            break;
          case IrOp::IntOr:
            e.alu(1);
            setRes(RtVal::fromInt(A(0).i | A(1).i));
            break;
          case IrOp::IntXor:
            e.alu(1);
            setRes(RtVal::fromInt(A(0).i ^ A(1).i));
            break;
          case IrOp::IntLshift:
            e.alu(1);
            setRes(RtVal::fromInt(
                int64_t(uint64_t(A(0).i) << (A(1).i & 63))));
            break;
          case IrOp::IntRshift:
            e.alu(1);
            setRes(RtVal::fromInt(A(0).i >> (A(1).i & 63)));
            break;
          case IrOp::IntNeg:
            e.alu(1);
            setRes(RtVal::fromInt(-A(0).i));
            break;
          case IrOp::IntLt:
            e.alu(2);
            setRes(RtVal::fromInt(A(0).i < A(1).i));
            break;
          case IrOp::IntLe:
            e.alu(2);
            setRes(RtVal::fromInt(A(0).i <= A(1).i));
            break;
          case IrOp::IntEq:
            e.alu(2);
            setRes(RtVal::fromInt(A(0).i == A(1).i));
            break;
          case IrOp::IntNe:
            e.alu(2);
            setRes(RtVal::fromInt(A(0).i != A(1).i));
            break;
          case IrOp::IntGt:
            e.alu(2);
            setRes(RtVal::fromInt(A(0).i > A(1).i));
            break;
          case IrOp::IntGe:
            e.alu(2);
            setRes(RtVal::fromInt(A(0).i >= A(1).i));
            break;
          case IrOp::IntIsZero:
            e.alu(2);
            setRes(RtVal::fromInt(A(0).i == 0));
            break;
          case IrOp::IntIsTrue:
            e.alu(2);
            setRes(RtVal::fromInt(A(0).i != 0));
            break;

          // ---- float --------------------------------------------------
          case IrOp::FloatAdd:
            e.fpAlu(1);
            setRes(RtVal::fromFloat(A(0).f + A(1).f));
            break;
          case IrOp::FloatSub:
            e.fpAlu(1);
            setRes(RtVal::fromFloat(A(0).f - A(1).f));
            break;
          case IrOp::FloatMul:
            e.fpMul();
            setRes(RtVal::fromFloat(A(0).f * A(1).f));
            break;
          case IrOp::FloatTruediv:
            e.fpDiv();
            setRes(RtVal::fromFloat(A(0).f / A(1).f));
            break;
          case IrOp::FloatNeg:
            e.fpAlu(1);
            setRes(RtVal::fromFloat(-A(0).f));
            break;
          case IrOp::FloatAbs:
            e.fpAlu(1);
            setRes(RtVal::fromFloat(std::fabs(A(0).f)));
            break;
          case IrOp::FloatLt:
            e.fpAlu(1);
            e.alu(1);
            setRes(RtVal::fromInt(A(0).f < A(1).f));
            break;
          case IrOp::FloatLe:
            e.fpAlu(1);
            e.alu(1);
            setRes(RtVal::fromInt(A(0).f <= A(1).f));
            break;
          case IrOp::FloatEq:
            e.fpAlu(1);
            e.alu(1);
            setRes(RtVal::fromInt(A(0).f == A(1).f));
            break;
          case IrOp::FloatNe:
            e.fpAlu(1);
            e.alu(1);
            setRes(RtVal::fromInt(A(0).f != A(1).f));
            break;
          case IrOp::FloatGt:
            e.fpAlu(1);
            e.alu(1);
            setRes(RtVal::fromInt(A(0).f > A(1).f));
            break;
          case IrOp::FloatGe:
            e.fpAlu(1);
            e.alu(1);
            setRes(RtVal::fromInt(A(0).f >= A(1).f));
            break;
          case IrOp::CastIntToFloat:
            e.fpAlu(1);
            setRes(RtVal::fromFloat(double(A(0).i)));
            break;
          case IrOp::CastFloatToInt:
            e.fpAlu(1);
            setRes(RtVal::fromInt(int64_t(A(0).f)));
            break;

          // ---- pointer ------------------------------------------------
          case IrOp::PtrEq:
            e.alu(2);
            setRes(RtVal::fromInt(A(0).r == A(1).r));
            break;
          case IrOp::PtrNe:
            e.alu(2);
            setRes(RtVal::fromInt(A(0).r != A(1).r));
            break;
          case IrOp::SameAs:
            e.alu(1);
            setRes(A(0));
            break;

          // ---- memory -------------------------------------------------
          case IrOp::GetfieldGc: {
            W_Object *w = asObj(A(0));
            e.loadPtrOff(w, 8 + uint64_t(op.aux) * 8,
                         env.costs().jitLoadStall);
            setRes(w->rtGetField(op.aux));
            break;
          }
          case IrOp::SetfieldGc: {
            W_Object *w = asObj(A(0));
            e.storePtrOff(w, 8 + uint64_t(op.aux) * 8);
            e.alu(1);
            e.branch(false); // write-barrier fast path
            w->rtSetField(op.aux, A(1), space.heap());
            break;
          }
          case IrOp::GetarrayitemGc: {
            W_Object *w = asObj(A(0));
            int64_t i = A(1).i;
            e.alu(1);
            e.loadPtrOff(w, 32 + uint64_t(i) * 8,
                         env.costs().jitLoadStall);
            setRes(w->rtGetItem(i));
            break;
          }
          case IrOp::SetarrayitemGc: {
            W_Object *w = asObj(A(0));
            int64_t i = A(1).i;
            e.alu(1);
            e.storePtrOff(w, 32 + uint64_t(i) * 8);
            e.branch(false);
            w->rtSetItem(i, A(2), space.heap());
            break;
          }
          case IrOp::ArraylenGc: {
            W_Object *w = asObj(A(0));
            e.loadPtrOff(w, 16, 1);
            setRes(RtVal::fromInt(w->rtLen()));
            break;
          }
          case IrOp::Strlen: {
            W_Object *w = asObj(A(0));
            e.loadPtrOff(w, 16, 1);
            setRes(RtVal::fromInt(w->rtLen()));
            break;
          }
          case IrOp::Strgetitem: {
            W_Object *w = asObj(A(0));
            int64_t i = A(1).i;
            e.alu(1);
            e.loadPtrOff(w, 32 + uint64_t(i), 1);
            setRes(w->rtGetItem(i));
            break;
          }

          // ---- allocation ---------------------------------------------
          case IrOp::NewWithVtable: {
            // Nursery bump + header init.
            e.load(t->codePc + 8, 1);
            e.alu(3);
            e.branch(false);
            e.store(pc + 16);
            e.store(pc + 24);
            e.alu(1);
            W_Object *w = allocByTypeId(space, op.aux);
            setRes(RtVal::fromRef(w));
            break;
          }

          // ---- calls ---------------------------------------------------
          case IrOp::Call:
          case IrOp::CallPure:
          case IrOp::CallMayForce: {
            uint32_t n = jit::loweredInstCount(op.op);
            e.alu(n / 2 - 1);
            uint64_t target =
                rt::AotRegistry::instance().fn(op.aux).codePc;
            e.call(target);
            RtVal res = performCall(op, *t, regs);
            sim::BlockEmitter e2(core, pc + (n / 2 + 1) * 4);
            e2.ret(pc + (n / 2) * 4);
            e2.alu(n - n / 2 - 2);
            setRes(res);
            break;
          }

          case IrOp::CallAssembler: {
            uint32_t n = jit::loweredInstCount(op.op);
            e.alu(n / 2 - 1);
            Trace *inner = registry.byId(op.aux);
            e.call(inner->codePc);
            const jit::Snapshot &snap = t->snapshots[op.snapshotIdx];
            const std::vector<int32_t> &argRefs = snap.frames[0].stack;
            std::vector<RtVal> innerIn;
            innerIn.reserve(argRefs.size());
            for (int32_t r : argRefs)
                innerIn.push_back(val(*t, regs, r));
#ifdef XLVM_DEBUG_DEOPT
            if (runDepth == 12) {
                static bool dumped = false;
                if (!dumped) {
                    dumped = true;
                    for (const auto &tr : registry.all()) {
                        std::fprintf(stderr, "%s anchorPc=%u\n",
                                     tr->dump().c_str(), tr->anchorPc);
                    }
                }
                std::fprintf(stderr, "deep callasm: trace %u -> %u\n",
                             t->id, op.aux);
            }
#endif
            // On an unexpected inner exit the full interpreter state is
            // the call's recorded outer-frame snapshot (frames[2..])
            // plus whatever the inner execution reports.
            auto outerFrames = [&]() {
                jit::Snapshot outerSnap;
                outerSnap.frames.assign(snap.frames.begin() + 2,
                                        snap.frames.end());
                return materializeState(space, *t, outerSnap, regs);
            };
            if (runDepth >= 16) {
                // Mutually recursive call_assembler chains are bounded
                // here: the call arguments ARE the inner loop's anchor
                // frame state, so deoptimize straight to it and let the
                // interpreter make progress.
                DeoptResult st = outerFrames();
                st.traceId = t->id;
                FrameState fs;
                fs.code = inner->anchorCode;
                fs.pc = inner->anchorPc;
                for (size_t i = 0; i < innerIn.size(); ++i) {
                    W_Object *w = asObj(innerIn[i]);
                    if (i < inner->anchorNumLocals)
                        fs.locals.push_back(w);
                    else
                        fs.stack.push_back(w);
                }
                st.frames.push_back(std::move(fs));
                return leave(std::move(st));
            }
            ++runDepth;
            DeoptResult innerState = run(*inner, std::move(innerIn));
            --runDepth;
            sim::BlockEmitter e2(core, pc + (n / 2 + 1) * 4);
            e2.ret(pc + (n / 2) * 4);
            e2.alu(n - n / 2 - 2);

            // Validate the expected exit contract.
            const jit::FrameSnapshot &outs = snap.frames[1];
            bool match = innerState.frames.size() == 1 &&
                         innerState.frames[0].code == outs.code &&
                         innerState.frames[0].pc == uint32_t(op.expect) &&
                         innerState.frames[0].locals.size() ==
                             outs.locals.size() &&
                         innerState.frames[0].stack.size() ==
                             outs.stack.size();
            if (!match) {
                DeoptResult full = outerFrames();
                full.traceId = innerState.traceId;
                for (FrameState &fs : innerState.frames)
                    full.frames.push_back(std::move(fs));
                return leave(std::move(full));
            }
            for (size_t i = 0; i < outs.locals.size(); ++i) {
                if (outs.locals[i] >= 0) {
                    regs[outs.locals[i]] =
                        RtVal::fromRef(innerState.frames[0].locals[i]);
                }
            }
            for (size_t i = 0; i < outs.stack.size(); ++i) {
                if (outs.stack[i] >= 0) {
                    regs[outs.stack[i]] =
                        RtVal::fromRef(innerState.frames[0].stack[i]);
                }
            }
            break;
          }

          default:
            XLVM_PANIC("executor: unhandled op ", jit::irOpName(op.op));
        }
        ++idx;
    }
}

} // namespace vm
} // namespace xlvm
