/**
 * @file
 * Threaded-code trace execution over pre-decoded micro-ops.
 *
 * TraceExecutor::run dispatches over the micro-op program the backend
 * lowered at compile time (jit/lower.h): handlers are reached through a
 * computed-goto label table (function-less threaded dispatch; a switch
 * loop is the portable fallback), operands are direct register-file
 * indices (constants were materialized into the file's tail at trace
 * entry), and per-op simulation metadata (code offsets, IR-node ids,
 * guard indices) is read inline from the micro-op.
 *
 * Counters-are-invariant contract: every handler emits exactly the
 * simulated instruction sequence (same PCs, same order) that the
 * pre-rewrite switch interpreter emitted for the corresponding IR ops —
 * including fused superinstructions, which emit both constituents'
 * expansions around a single host dispatch. The tests/golden/ gate
 * holds the engine to that bit-for-bit.
 */

#include "vm/executor.h"

#include <cmath>

#include "rt/rstr.h"
#include "xlayer/annot.h"

namespace xlvm {
namespace vm {

using jit::IrOp;
using jit::MicroOp;
using jit::MicroProgram;
using jit::MOp;
using jit::ResOp;
using jit::RtVal;
using jit::Trace;
using obj::W_Object;

TraceExecutor::TraceExecutor(obj::ObjSpace &sp, TraceRegistry &reg,
                             jit::Backend &be, const JitParams &p)
    : space(sp), registry(reg), backend(be), params(p)
{
    space.heap().addRootProvider(this);
}

TraceExecutor::~TraceExecutor()
{
    space.heap().removeRootProvider(this);
}

void
TraceExecutor::forEachRoot(gc::GcVisitor &v)
{
    for (Level &lvl : active) {
        for (RtVal &r : *lvl.regs) {
            if (r.kind == RtVal::Kind::Ref && r.r)
                v.visit(static_cast<gc::GcObject *>(r.r));
        }
        for (const RtVal &c : lvl.trace->consts) {
            if (c.kind == RtVal::Kind::Ref && c.r)
                v.visit(static_cast<gc::GcObject *>(c.r));
        }
    }
}

namespace {

inline W_Object *
asObj(const RtVal &v)
{
    return static_cast<W_Object *>(v.r);
}

/** Flatten a deopt state's slots into trace-input values (bridge ABI). */
std::vector<RtVal>
flattenState(const DeoptResult &state)
{
    std::vector<RtVal> out;
    for (const FrameState &f : state.frames) {
        for (W_Object *w : f.locals)
            out.push_back(RtVal::fromRef(w));
        for (W_Object *w : f.stack)
            out.push_back(RtVal::fromRef(w));
    }
    return out;
}

} // namespace

// Threaded dispatch: computed goto under GCC/Clang, switch fallback
// elsewhere (or with -DXLVM_NO_COMPUTED_GOTO for A/B comparison).
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(XLVM_NO_COMPUTED_GOTO)
#define XLVM_CGOTO 1
#else
#define XLVM_CGOTO 0
#endif

DeoptResult
TraceExecutor::run(Trace &trace, std::vector<RtVal> inputs)
{
    obj::ExecEnv &env = space.env();
    sim::Core &core = env.core();
    JitCodeScope jitScope(env);

    const bool annotate = params.irNodeAnnotations;
    const uint8_t loadStall = env.costs().jitLoadStall;

    Trace *t = nullptr;
    MicroProgram *prog = nullptr;
    const MicroOp *mop = nullptr;
    uint64_t codePc = 0;
    std::vector<RtVal> regs;
    RtVal *R = nullptr;
    std::vector<RtVal> scratch; ///< self-jump staging (reads then writes)
    bool pendingOverflow = false;
    uint64_t steps = 0;
    DeoptResult deoptOut;

#if XLVM_CGOTO
    // Handler addresses, filled by explicit micro-opcode index so the
    // mapping cannot drift from the MOp enum order. Label addresses are
    // function-local, hence the table is built here and cached into each
    // program's pre-resolved handler slots on its first entry.
    const void *labels[jit::kNumMOps] = {};
#define XLVM_LBL(name) labels[size_t(MOp::name)] = &&L_##name
    XLVM_LBL(Label);
    XLVM_LBL(DebugMergePoint);
    XLVM_LBL(Jump);
    XLVM_LBL(Finish);
    XLVM_LBL(GuardTrue);
    XLVM_LBL(GuardFalse);
    XLVM_LBL(GuardClass);
    XLVM_LBL(GuardValue);
    XLVM_LBL(GuardNonnull);
    XLVM_LBL(GuardIsnull);
    XLVM_LBL(GuardNoOverflow);
    XLVM_LBL(IntAdd);
    XLVM_LBL(IntSub);
    XLVM_LBL(IntMul);
    XLVM_LBL(IntFloordiv);
    XLVM_LBL(IntMod);
    XLVM_LBL(IntAnd);
    XLVM_LBL(IntOr);
    XLVM_LBL(IntXor);
    XLVM_LBL(IntLshift);
    XLVM_LBL(IntRshift);
    XLVM_LBL(IntNeg);
    XLVM_LBL(IntAddOvf);
    XLVM_LBL(IntSubOvf);
    XLVM_LBL(IntMulOvf);
    XLVM_LBL(IntLt);
    XLVM_LBL(IntLe);
    XLVM_LBL(IntEq);
    XLVM_LBL(IntNe);
    XLVM_LBL(IntGt);
    XLVM_LBL(IntGe);
    XLVM_LBL(IntIsZero);
    XLVM_LBL(IntIsTrue);
    XLVM_LBL(FloatAdd);
    XLVM_LBL(FloatSub);
    XLVM_LBL(FloatMul);
    XLVM_LBL(FloatTruediv);
    XLVM_LBL(FloatNeg);
    XLVM_LBL(FloatAbs);
    XLVM_LBL(FloatLt);
    XLVM_LBL(FloatLe);
    XLVM_LBL(FloatEq);
    XLVM_LBL(FloatNe);
    XLVM_LBL(FloatGt);
    XLVM_LBL(FloatGe);
    XLVM_LBL(CastIntToFloat);
    XLVM_LBL(CastFloatToInt);
    XLVM_LBL(PtrEq);
    XLVM_LBL(PtrNe);
    XLVM_LBL(SameAs);
    XLVM_LBL(GetfieldGc);
    XLVM_LBL(SetfieldGc);
    XLVM_LBL(GetarrayitemGc);
    XLVM_LBL(SetarrayitemGc);
    XLVM_LBL(ArraylenGc);
    XLVM_LBL(Strlen);
    XLVM_LBL(Strgetitem);
    XLVM_LBL(NewWithVtable);
    XLVM_LBL(Call);
    XLVM_LBL(CallPure);
    XLVM_LBL(CallMayForce);
    XLVM_LBL(CallAssembler);
    XLVM_LBL(FuseLtGuardTrue);
    XLVM_LBL(FuseLtGuardFalse);
    XLVM_LBL(FuseLeGuardTrue);
    XLVM_LBL(FuseLeGuardFalse);
    XLVM_LBL(FuseEqGuardTrue);
    XLVM_LBL(FuseEqGuardFalse);
    XLVM_LBL(FuseNeGuardTrue);
    XLVM_LBL(FuseNeGuardFalse);
    XLVM_LBL(FuseGtGuardTrue);
    XLVM_LBL(FuseGtGuardFalse);
    XLVM_LBL(FuseGeGuardTrue);
    XLVM_LBL(FuseGeGuardFalse);
    XLVM_LBL(FuseIsZeroGuardTrue);
    XLVM_LBL(FuseIsZeroGuardFalse);
    XLVM_LBL(FuseIsTrueGuardTrue);
    XLVM_LBL(FuseIsTrueGuardFalse);
    XLVM_LBL(FuseGetfieldGuardClass);
    XLVM_LBL(FuseAddOvfGuard);
    XLVM_LBL(FuseSubOvfGuard);
    XLVM_LBL(FuseMulOvfGuard);
    XLVM_LBL(Unimpl);
    XLVM_LBL(TrapEnd);
#undef XLVM_LBL
#endif // XLVM_CGOTO

    auto resolveHandlers = [&](MicroProgram &p) {
#if XLVM_CGOTO
        if (p.resolved)
            return;
        for (MicroOp &m : p.ops)
            m.handler = labels[m.opcode];
        p.resolved = true;
#else
        (void)p;
#endif
    };

    // Per-tier cycle attribution: close the interval running since the
    // previous sample, charge it to that tier, open one for @p next.
    // Host-side bookkeeping only — no modeled instruction is emitted.
    auto tierFlush = [&](uint8_t next) {
        uint64_t now = core.totalCyclesFp();
        if (curTier)
            tierCycles[curTier] += now - tierSampleFp;
        tierSampleFp = now;
        curTier = next;
    };

    // Sampler context: one packed store per trace transfer, restored on
    // leave (nested run()s save/restore recursively through this local).
    const uint64_t prevCtx = core.profileContext();

    auto enterTrace = [&](Trace *target, std::vector<RtVal> &&in) {
        if (target->tier != curTier)
            tierFlush(target->tier);
        core.setProfileContext(sim::sampleCtxPack(
            target->isBridge ? sim::SampleCtxKind::Bridge
                             : sim::SampleCtxKind::Trace,
            target->tier, target->id));
        t = target;
        prog = &backend.program(target->id);
        resolveHandlers(*prog);
        XLVM_ASSERT(in.size() == target->numInputs,
                    "trace input arity mismatch: ", in.size(), " vs ",
                    target->numInputs, " (trace ", target->id, ")");
        regs.assign(prog->numRegs, RtVal());
        R = regs.data();
        for (size_t i = 0; i < in.size(); ++i)
            R[i] = in[i];
        // Pre-materialize the constants the program was lowered against
        // into the register-file tail: operand fetch needs no const/box
        // distinction. (Consts added after compile — GC pinning — are
        // never referenced by ops and stay in Trace::consts only.)
        const RtVal *cs = target->consts.data();
        for (uint32_t k = 0; k < prog->numConsts; ++k)
            R[prog->constBase + k] = cs[k];
        codePc = target->codePc;
        // Announce the program's baked emission stream to the sim
        // layer: the superblock sweep arms against it at the next
        // boundary (sim/block_memo.h). The view holds raw pointers into
        // prog->sim, which outlives the run (programs persist in the
        // backend until re-lowering, and re-lowering changes streamId).
        {
            const jit::SimStream &ss = prog->sim;
            sim::StreamView sv;
            sv.sigs = ss.sigs.data();
            sv.pcOff = ss.pcOff.data();
            sv.memIdx = ss.memIdx.data();
            sv.nRecs = uint32_t(ss.sigs.size());
            sv.nMem = uint32_t(ss.memIdx.size());
            sv.codePc = codePc;
            sv.streamId = ss.streamId;
            sv.eligible = ss.memoEligible;
            core.memoSetStream(sv);
        }
        ++target->executions;
    };

    {
        sim::BlockEmitter e(core, trace.codePc);
        e.annot(xlayer::kTraceEnter, trace.id);
        e.annot(xlayer::kPhaseEnter, uint32_t(xlayer::Phase::Jit));
    }
    enterTrace(&trace, std::move(inputs));
    active.push_back(Level{t, &regs});
    // Memoizable region: everything emitted from here to leave() runs
    // under the sim layer's block-memo session (nested run()s stack).
    core.memoSessionBegin(prog->sim.estRecords);

    // Latency metering anchors. Both read the counters at points where
    // the replay layers are fully caught up (session begin here, the
    // memo boundary at each back-edge, session end at leave), so the
    // recorded distributions are invariant under memo/superblock replay.
    const uint64_t entryFp = core.totalCyclesFp();
    uint64_t iterStartFp = entryFp;

    auto leave = [&](DeoptResult &&res) {
        core.memoSessionEnd();
        execHist_.record((core.totalCyclesFp() - entryFp) / sim::kCycleFp);
        active.pop_back();
        tierFlush(0);
        core.setProfileContext(prevCtx);
        sim::BlockEmitter e(core, t->codePc + t->codeInsts * 4);
        e.annot(xlayer::kTraceLeave, t->id);
        e.annot(xlayer::kPhaseExit, uint32_t(xlayer::Phase::Jit));
        return std::move(res);
    };

    auto runaway = [&]() {
        // A correct program cannot take this many backward transfers in
        // one JIT entry at our benchmark scales.
        std::string all;
        for (const auto &tr : registry.all()) {
            if (!tr)
                continue;
            all += tr->dump();
            for (size_t g = 0; g < tr->guardStates.size(); ++g) {
                if (tr->guardStates[g].failCount) {
                    all += "  guard@" + std::to_string(g) + " fails=" +
                           std::to_string(tr->guardStates[g].failCount) +
                           " bridge=" +
                           std::to_string(
                               tr->guardStates[g].bridgeTraceId) +
                           "\n";
                }
            }
        }
        XLVM_PANIC("runaway trace execution, in trace ", t->id,
                   "; all traces:\n", all);
    };

    /**
     * The single guard-failure path (previously duplicated across the
     * guard and main switches): bump counters, emit the deopt
     * annotation, then either transfer into an attached bridge (returns
     * false; caller restarts dispatch at the bridge program) or
     * materialize the deopt state into deoptOut (returns true; caller
     * leaves). Works identically for plain and fused guards — the
     * micro-op carries the guard constituent's op index, snapshot and
     * code offset.
     */
    auto guardFail = [&](const MicroOp &m) -> bool {
        jit::GuardState &gs = t->guardStates[m.guardIdx];
        ++gs.failCount;
        ++nDeopts;
        {
            sim::BlockEmitter ed(core, codePc + m.pcOff2 + 8);
            ed.annot(xlayer::kDeopt, m.guardIdx);
        }
        const jit::Snapshot &snap = t->snapshots[m.snapshotIdx];
        if (gs.bridgeTraceId >= 0) {
            // Transfer into the attached bridge.
            Trace *bridge = registry.byId(uint32_t(gs.bridgeTraceId));
            DeoptResult state = materializeState(space, *t, snap, regs);
            std::vector<RtVal> bridgeIn = flattenState(state);
            if (bridgeIn.size() != bridge->numInputs) {
                // Shape mismatch (shouldn't happen): hard deopt.
                deoptOut = blackholeMaterialize(space, *t, snap, regs,
                                                m.guardIdx);
                return true;
            }
            enterTrace(bridge, std::move(bridgeIn));
            active.back().trace = t;
            return false;
        }
        if (gs.failCount == params.bridgeThreshold)
            hotGuards.emplace_back(t->id, m.guardIdx);
        deoptOut = blackholeMaterialize(space, *t, snap, regs, m.guardIdx);
        return true;
    };

    // Runaway backstop. A trace is a linear program: execution cannot
    // run forever without taking a backward transfer (loop-back jump,
    // cross-trace jump, or bridge entry), so counting restarts bounds
    // total work at maxTraceOps per count — the check stays off the
    // per-op dispatch path entirely.
    constexpr uint64_t kMaxRestarts = 1ull << 30;

    mop = prog->ops.data();

#if XLVM_CGOTO
#define OP(name) L_##name
#define DISPATCH() goto *mop->handler
#else
#define OP(name) case MOp::name
#define DISPATCH() goto dispatch_loop
#endif

#define NEXT()                                                          \
    do {                                                                \
        ++mop;                                                          \
        DISPATCH();                                                     \
    } while (0)

/** Restart dispatch at the current program's first micro-op (every
 *  backward transfer comes through here — the runaway check point). */
#define RESTART()                                                       \
    do {                                                                \
        if (__builtin_expect(++steps > kMaxRestarts, 0))                \
            runaway();                                                  \
        mop = prog->ops.data();                                         \
        DISPATCH();                                                     \
    } while (0)

/** Guard-failure tail shared by every guard handler. */
#define GUARD_EXIT()                                                    \
    do {                                                                \
        if (guardFail(*mop))                                            \
            return leave(std::move(deoptOut));                          \
        RESTART();                                                      \
    } while (0)

/** Per-op prologue: emitter at the op's code address + IR-node annot. */
#define BEGIN()                                                         \
    sim::BlockEmitter e(core, codePc + mop->pcOff);                     \
    if (annotate && mop->nodeId >= 0)                                   \
    e.annot(xlayer::kIrNode, uint32_t(mop->nodeId))

/** Prologue of a fused pair's second (guard) constituent. */
#define BEGIN2()                                                        \
    sim::BlockEmitter e2(core, codePc + mop->pcOff2);                   \
    if (annotate && mop->nodeId2 >= 0)                                  \
    e2.annot(xlayer::kIrNode, uint32_t(mop->nodeId2))

#define RA (R[mop->arg[0]])
#define RB (R[mop->arg[1]])
#define RC (R[mop->arg[2]])

#define SETRES(v)                                                       \
    do {                                                                \
        if (mop->res >= 0)                                              \
            R[mop->res] = (v);                                          \
    } while (0)

#if XLVM_CGOTO
    DISPATCH();
#else
dispatch_loop:
    switch (MOp(mop->opcode)) {
#endif

    // ---- control ----------------------------------------------------
    OP(Label) : {
        // Loop header: GC safepoint.
        space.heap().safepoint();
        NEXT();
    }

    OP(DebugMergePoint) : {
        sim::BlockEmitter e(core, codePc + mop->pcOff);
        e.annot(xlayer::kDispatch, mop->aux);
        NEXT();
    }

    OP(Jump) : {
        BEGIN();
        e.jump(codePc);
        // Loop back-edge: the block-memo/superblock unit of replay.
        // Must run before a cross-trace enterTrace announces the next
        // stream — the boundary closes this iteration (full-cursor
        // sweep checkpoint) so the handover disarms cleanly.
        core.memoBoundary();
        {
            // Back-edge-to-back-edge latency, counters fully caught up
            // by the boundary above.
            const uint64_t nowFp = core.totalCyclesFp();
            iterHist_.record((nowFp - iterStartFp) / sim::kCycleFp);
            iterStartFp = nowFp;
        }
        const uint32_t *ax = prog->extra.data() + mop->extraOff;
        const uint32_t n = mop->extraLen;
        ++nIterations;
        // Tier-up check on the backward transfer: the jumping trace's
        // hotness is its execution count (bumped at entry and on every
        // self-loop below). Queue, don't promote — swapping the program
        // mid-run is unsafe; the dispatch glue drains between runs.
        if (params.tierMode == TierMode::Multi && t->tier == 1 &&
            !t->promotionRequested &&
            t->executions >= uint64_t(params.tier2Threshold)) {
            t->promotionRequested = true;
            pendingPromotions.push_back(t->id);
        }
        if (mop->aux == 0) {
            // Self loop: stage reads before overwriting the inputs.
            XLVM_ASSERT(n == t->numInputs, "jump arity mismatch");
            scratch.resize(n);
            for (uint32_t i = 0; i < n; ++i)
                scratch[i] = R[ax[i]];
            for (uint32_t i = 0; i < n; ++i)
                R[i] = scratch[i];
            ++t->executions;
        } else {
            std::vector<RtVal> next;
            next.reserve(n);
            for (uint32_t i = 0; i < n; ++i)
                next.push_back(R[ax[i]]);
            enterTrace(registry.byId(mop->aux - 1), std::move(next));
            active.back().trace = t;
        }
        RESTART();
    }

    OP(Finish) : {
        BEGIN();
        e.alu(2);
        return leave(blackholeMaterialize(space, *t,
                                          t->snapshots[mop->snapshotIdx],
                                          regs, mop->origIdx));
    }

    // ---- guards -----------------------------------------------------
    OP(GuardTrue) : {
        BEGIN();
        bool ok = RA.i != 0;
        e.alu(1);
        e.branch(!ok);
        if (__builtin_expect(ok, 1))
            NEXT();
        GUARD_EXIT();
    }

    OP(GuardFalse) : {
        BEGIN();
        bool ok = RA.i == 0;
        e.alu(1);
        e.branch(!ok);
        if (__builtin_expect(ok, 1))
            NEXT();
        GUARD_EXIT();
    }

    OP(GuardClass) : {
        BEGIN();
        W_Object *w = asObj(RA);
        e.loadPtr(w, loadStall);
        e.alu(1);
        bool ok = w && w->typeId() == mop->aux;
        e.branch(!ok);
        if (__builtin_expect(ok, 1))
            NEXT();
        GUARD_EXIT();
    }

    OP(GuardValue) : {
        BEGIN();
        e.alu(1);
        bool ok = uint64_t(RA.i) == mop->expect;
        e.branch(!ok);
        if (__builtin_expect(ok, 1))
            NEXT();
        GUARD_EXIT();
    }

    OP(GuardNonnull) : {
        BEGIN();
        bool ok = RA.r != nullptr;
        e.alu(1);
        e.branch(!ok);
        if (__builtin_expect(ok, 1))
            NEXT();
        GUARD_EXIT();
    }

    OP(GuardIsnull) : {
        BEGIN();
        bool ok = RA.r == nullptr;
        e.alu(1);
        e.branch(!ok);
        if (__builtin_expect(ok, 1))
            NEXT();
        GUARD_EXIT();
    }

    OP(GuardNoOverflow) : {
        BEGIN();
        bool ok = !pendingOverflow;
        e.branch(!ok);
        if (__builtin_expect(ok, 1))
            NEXT();
        GUARD_EXIT();
    }

    // ---- integer ----------------------------------------------------
    OP(IntAdd) : {
        BEGIN();
        e.alu(1);
        SETRES(RtVal::fromInt(int64_t(uint64_t(RA.i) + uint64_t(RB.i))));
        NEXT();
    }

    OP(IntSub) : {
        BEGIN();
        e.alu(1);
        SETRES(RtVal::fromInt(int64_t(uint64_t(RA.i) - uint64_t(RB.i))));
        NEXT();
    }

    OP(IntMul) : {
        BEGIN();
        e.mul();
        SETRES(RtVal::fromInt(int64_t(uint64_t(RA.i) * uint64_t(RB.i))));
        NEXT();
    }

    OP(IntAddOvf) : {
        BEGIN();
        e.alu(1);
        int64_t r;
        pendingOverflow = __builtin_add_overflow(RA.i, RB.i, &r);
        SETRES(RtVal::fromInt(r));
        NEXT();
    }

    OP(IntSubOvf) : {
        BEGIN();
        e.alu(1);
        int64_t r;
        pendingOverflow = __builtin_sub_overflow(RA.i, RB.i, &r);
        SETRES(RtVal::fromInt(r));
        NEXT();
    }

    OP(IntMulOvf) : {
        BEGIN();
        e.alu(1);
        int64_t r;
        pendingOverflow = __builtin_mul_overflow(RA.i, RB.i, &r);
        SETRES(RtVal::fromInt(r));
        NEXT();
    }

    OP(IntFloordiv) : {
        BEGIN();
        e.div();
        e.alu(3);
        int64_t a = RA.i, b = RB.i;
        XLVM_ASSERT(b != 0, "division by zero in trace");
        int64_t q = a / b;
        if ((a % b != 0) && ((a < 0) != (b < 0)))
            --q;
        SETRES(RtVal::fromInt(q));
        NEXT();
    }

    OP(IntMod) : {
        BEGIN();
        e.div();
        e.alu(3);
        int64_t a = RA.i, b = RB.i;
        XLVM_ASSERT(b != 0, "modulo by zero in trace");
        int64_t r = a % b;
        if (r != 0 && ((r < 0) != (b < 0)))
            r += b;
        SETRES(RtVal::fromInt(r));
        NEXT();
    }

    OP(IntAnd) : {
        BEGIN();
        e.alu(1);
        SETRES(RtVal::fromInt(RA.i & RB.i));
        NEXT();
    }

    OP(IntOr) : {
        BEGIN();
        e.alu(1);
        SETRES(RtVal::fromInt(RA.i | RB.i));
        NEXT();
    }

    OP(IntXor) : {
        BEGIN();
        e.alu(1);
        SETRES(RtVal::fromInt(RA.i ^ RB.i));
        NEXT();
    }

    OP(IntLshift) : {
        BEGIN();
        e.alu(1);
        SETRES(RtVal::fromInt(int64_t(uint64_t(RA.i) << (RB.i & 63))));
        NEXT();
    }

    OP(IntRshift) : {
        BEGIN();
        e.alu(1);
        SETRES(RtVal::fromInt(RA.i >> (RB.i & 63)));
        NEXT();
    }

    OP(IntNeg) : {
        BEGIN();
        e.alu(1);
        SETRES(RtVal::fromInt(-RA.i));
        NEXT();
    }

    OP(IntLt) : {
        BEGIN();
        e.alu(2);
        SETRES(RtVal::fromInt(RA.i < RB.i));
        NEXT();
    }

    OP(IntLe) : {
        BEGIN();
        e.alu(2);
        SETRES(RtVal::fromInt(RA.i <= RB.i));
        NEXT();
    }

    OP(IntEq) : {
        BEGIN();
        e.alu(2);
        SETRES(RtVal::fromInt(RA.i == RB.i));
        NEXT();
    }

    OP(IntNe) : {
        BEGIN();
        e.alu(2);
        SETRES(RtVal::fromInt(RA.i != RB.i));
        NEXT();
    }

    OP(IntGt) : {
        BEGIN();
        e.alu(2);
        SETRES(RtVal::fromInt(RA.i > RB.i));
        NEXT();
    }

    OP(IntGe) : {
        BEGIN();
        e.alu(2);
        SETRES(RtVal::fromInt(RA.i >= RB.i));
        NEXT();
    }

    OP(IntIsZero) : {
        BEGIN();
        e.alu(2);
        SETRES(RtVal::fromInt(RA.i == 0));
        NEXT();
    }

    OP(IntIsTrue) : {
        BEGIN();
        e.alu(2);
        SETRES(RtVal::fromInt(RA.i != 0));
        NEXT();
    }

    // ---- float ------------------------------------------------------
    OP(FloatAdd) : {
        BEGIN();
        e.fpAlu(1);
        SETRES(RtVal::fromFloat(RA.f + RB.f));
        NEXT();
    }

    OP(FloatSub) : {
        BEGIN();
        e.fpAlu(1);
        SETRES(RtVal::fromFloat(RA.f - RB.f));
        NEXT();
    }

    OP(FloatMul) : {
        BEGIN();
        e.fpMul();
        SETRES(RtVal::fromFloat(RA.f * RB.f));
        NEXT();
    }

    OP(FloatTruediv) : {
        BEGIN();
        e.fpDiv();
        SETRES(RtVal::fromFloat(RA.f / RB.f));
        NEXT();
    }

    OP(FloatNeg) : {
        BEGIN();
        e.fpAlu(1);
        SETRES(RtVal::fromFloat(-RA.f));
        NEXT();
    }

    OP(FloatAbs) : {
        BEGIN();
        e.fpAlu(1);
        SETRES(RtVal::fromFloat(std::fabs(RA.f)));
        NEXT();
    }

    OP(FloatLt) : {
        BEGIN();
        e.fpAlu(1);
        e.alu(1);
        SETRES(RtVal::fromInt(RA.f < RB.f));
        NEXT();
    }

    OP(FloatLe) : {
        BEGIN();
        e.fpAlu(1);
        e.alu(1);
        SETRES(RtVal::fromInt(RA.f <= RB.f));
        NEXT();
    }

    OP(FloatEq) : {
        BEGIN();
        e.fpAlu(1);
        e.alu(1);
        SETRES(RtVal::fromInt(RA.f == RB.f));
        NEXT();
    }

    OP(FloatNe) : {
        BEGIN();
        e.fpAlu(1);
        e.alu(1);
        SETRES(RtVal::fromInt(RA.f != RB.f));
        NEXT();
    }

    OP(FloatGt) : {
        BEGIN();
        e.fpAlu(1);
        e.alu(1);
        SETRES(RtVal::fromInt(RA.f > RB.f));
        NEXT();
    }

    OP(FloatGe) : {
        BEGIN();
        e.fpAlu(1);
        e.alu(1);
        SETRES(RtVal::fromInt(RA.f >= RB.f));
        NEXT();
    }

    OP(CastIntToFloat) : {
        BEGIN();
        e.fpAlu(1);
        SETRES(RtVal::fromFloat(double(RA.i)));
        NEXT();
    }

    OP(CastFloatToInt) : {
        BEGIN();
        e.fpAlu(1);
        SETRES(RtVal::fromInt(int64_t(RA.f)));
        NEXT();
    }

    // ---- pointer ----------------------------------------------------
    OP(PtrEq) : {
        BEGIN();
        e.alu(2);
        SETRES(RtVal::fromInt(RA.r == RB.r));
        NEXT();
    }

    OP(PtrNe) : {
        BEGIN();
        e.alu(2);
        SETRES(RtVal::fromInt(RA.r != RB.r));
        NEXT();
    }

    OP(SameAs) : {
        BEGIN();
        e.alu(1);
        SETRES(RA);
        NEXT();
    }

    // ---- memory -----------------------------------------------------
    OP(GetfieldGc) : {
        BEGIN();
        W_Object *w = asObj(RA);
        e.loadPtrOff(w, 8 + uint64_t(mop->aux) * 8, loadStall);
        SETRES(w->rtGetField(mop->aux));
        NEXT();
    }

    OP(SetfieldGc) : {
        BEGIN();
        W_Object *w = asObj(RA);
        e.storePtrOff(w, 8 + uint64_t(mop->aux) * 8);
        e.alu(1);
        e.branch(false); // write-barrier fast path
        w->rtSetField(mop->aux, RB, space.heap());
        NEXT();
    }

    OP(GetarrayitemGc) : {
        BEGIN();
        W_Object *w = asObj(RA);
        int64_t i = RB.i;
        e.alu(1);
        e.loadPtrOff(w, 32 + uint64_t(i) * 8, loadStall);
        SETRES(w->rtGetItem(i));
        NEXT();
    }

    OP(SetarrayitemGc) : {
        BEGIN();
        W_Object *w = asObj(RA);
        int64_t i = RB.i;
        e.alu(1);
        e.storePtrOff(w, 32 + uint64_t(i) * 8);
        e.branch(false);
        w->rtSetItem(i, RC, space.heap());
        NEXT();
    }

    OP(ArraylenGc) : {
        BEGIN();
        W_Object *w = asObj(RA);
        e.loadPtrOff(w, 16, 1);
        SETRES(RtVal::fromInt(w->rtLen()));
        NEXT();
    }

    OP(Strlen) : {
        BEGIN();
        W_Object *w = asObj(RA);
        e.loadPtrOff(w, 16, 1);
        SETRES(RtVal::fromInt(w->rtLen()));
        NEXT();
    }

    OP(Strgetitem) : {
        BEGIN();
        W_Object *w = asObj(RA);
        int64_t i = RB.i;
        e.alu(1);
        e.loadPtrOff(w, 32 + uint64_t(i), 1);
        SETRES(w->rtGetItem(i));
        NEXT();
    }

    // ---- allocation -------------------------------------------------
    OP(NewWithVtable) : {
        // Nursery bump + header init.
        const uint64_t pc = codePc + mop->pcOff;
        sim::BlockEmitter e(core, pc);
        if (annotate && mop->nodeId >= 0)
            e.annot(xlayer::kIrNode, uint32_t(mop->nodeId));
        e.load(codePc + 8, 1);
        e.alu(3);
        e.branch(false);
        e.store(pc + 16);
        e.store(pc + 24);
        e.alu(1);
        W_Object *w = allocByTypeId(space, mop->aux);
        SETRES(RtVal::fromRef(w));
        NEXT();
    }

    // ---- calls ------------------------------------------------------
    OP(Call) : OP(CallPure) : OP(CallMayForce) : {
        const uint64_t pc = codePc + mop->pcOff;
        sim::BlockEmitter e(core, pc);
        if (annotate && mop->nodeId >= 0)
            e.annot(xlayer::kIrNode, uint32_t(mop->nodeId));
        const uint32_t n = mop->callInsts;
        e.alu(n / 2 - 1);
        uint64_t target = rt::AotRegistry::instance().fn(mop->aux).codePc;
        e.call(target);
        RtVal res = performCall(*mop, R);
        sim::BlockEmitter e2(core, pc + (n / 2 + 1) * 4);
        e2.ret(pc + (n / 2) * 4);
        e2.alu(n - n / 2 - 2);
        SETRES(res);
        NEXT();
    }

    OP(CallAssembler) : {
        const uint64_t pc = codePc + mop->pcOff;
        sim::BlockEmitter e(core, pc);
        if (annotate && mop->nodeId >= 0)
            e.annot(xlayer::kIrNode, uint32_t(mop->nodeId));
        const uint32_t n = mop->callInsts;
        e.alu(n / 2 - 1);
        Trace *inner = registry.byId(mop->aux);
        e.call(inner->codePc);
        const jit::Snapshot &snap = t->snapshots[mop->snapshotIdx];
        std::vector<RtVal> innerIn;
        innerIn.reserve(mop->extraLen);
        {
            const uint32_t *ax = prog->extra.data() + mop->extraOff;
            for (uint32_t i = 0; i < mop->extraLen; ++i)
                innerIn.push_back(R[ax[i]]);
        }
        // On an unexpected inner exit the full interpreter state is
        // the call's recorded outer-frame snapshot (frames[2..])
        // plus whatever the inner execution reports.
        auto outerFrames = [&]() {
            jit::Snapshot outerSnap;
            outerSnap.frames.assign(snap.frames.begin() + 2,
                                    snap.frames.end());
            return materializeState(space, *t, outerSnap, regs);
        };
        if (runDepth >= 16) {
            // Mutually recursive call_assembler chains are bounded
            // here: the call arguments ARE the inner loop's anchor
            // frame state, so deoptimize straight to it and let the
            // interpreter make progress.
            DeoptResult st = outerFrames();
            st.traceId = t->id;
            FrameState fs;
            fs.code = inner->anchorCode;
            fs.pc = inner->anchorPc;
            for (size_t i = 0; i < innerIn.size(); ++i) {
                W_Object *w = asObj(innerIn[i]);
                if (i < inner->anchorNumLocals)
                    fs.locals.push_back(w);
                else
                    fs.stack.push_back(w);
            }
            st.frames.push_back(std::move(fs));
            return leave(std::move(st));
        }
        ++runDepth;
        DeoptResult innerState = run(*inner, std::move(innerIn));
        --runDepth;
        // The nested run flushed tier attribution and closed with tier
        // 0; cycles from here on belong to this (outer) trace's tier.
        curTier = t->tier;
        // The nested run announced its own stream view; re-announce the
        // outer program's so the next boundary can never arm the sweep
        // against the inner trace's record stream.
        {
            const jit::SimStream &ss = prog->sim;
            sim::StreamView sv;
            sv.sigs = ss.sigs.data();
            sv.pcOff = ss.pcOff.data();
            sv.memIdx = ss.memIdx.data();
            sv.nRecs = uint32_t(ss.sigs.size());
            sv.nMem = uint32_t(ss.memIdx.size());
            sv.codePc = codePc;
            sv.streamId = ss.streamId;
            sv.eligible = ss.memoEligible;
            core.memoSetStream(sv);
        }
        sim::BlockEmitter e2(core, pc + (n / 2 + 1) * 4);
        e2.ret(pc + (n / 2) * 4);
        e2.alu(n - n / 2 - 2);

        // Validate the expected exit contract.
        const jit::FrameSnapshot &outs = snap.frames[1];
        bool match = innerState.frames.size() == 1 &&
                     innerState.frames[0].code == outs.code &&
                     innerState.frames[0].pc == uint32_t(mop->expect) &&
                     innerState.frames[0].locals.size() ==
                         outs.locals.size() &&
                     innerState.frames[0].stack.size() ==
                         outs.stack.size();
        if (!match) {
            DeoptResult full = outerFrames();
            full.traceId = innerState.traceId;
            for (FrameState &fs : innerState.frames)
                full.frames.push_back(std::move(fs));
            return leave(std::move(full));
        }
        for (size_t i = 0; i < outs.locals.size(); ++i) {
            if (outs.locals[i] >= 0) {
                R[outs.locals[i]] =
                    RtVal::fromRef(innerState.frames[0].locals[i]);
            }
        }
        for (size_t i = 0; i < outs.stack.size(); ++i) {
            if (outs.stack[i] >= 0) {
                R[outs.stack[i]] =
                    RtVal::fromRef(innerState.frames[0].stack[i]);
            }
        }
        NEXT();
    }

    // ---- superinstructions ------------------------------------------
    // Each fused handler emits the exact instruction stream of its two
    // constituents (two emitters at the constituents' own code offsets)
    // around a single host dispatch.

#define FUSED_CMP_GUARD(NAME, COND, ON_TRUE)                            \
    OP(NAME) : {                                                        \
        BEGIN();                                                        \
        e.alu(2);                                                       \
        bool cond = (COND);                                             \
        SETRES(RtVal::fromInt(cond));                                   \
        BEGIN2();                                                       \
        e2.alu(1);                                                      \
        bool ok = (ON_TRUE) ? cond : !cond;                             \
        e2.branch(!ok);                                                 \
        if (__builtin_expect(ok, 1))                                    \
            NEXT();                                                     \
        GUARD_EXIT();                                                   \
    }

    FUSED_CMP_GUARD(FuseLtGuardTrue, RA.i < RB.i, true)
    FUSED_CMP_GUARD(FuseLtGuardFalse, RA.i < RB.i, false)
    FUSED_CMP_GUARD(FuseLeGuardTrue, RA.i <= RB.i, true)
    FUSED_CMP_GUARD(FuseLeGuardFalse, RA.i <= RB.i, false)
    FUSED_CMP_GUARD(FuseEqGuardTrue, RA.i == RB.i, true)
    FUSED_CMP_GUARD(FuseEqGuardFalse, RA.i == RB.i, false)
    FUSED_CMP_GUARD(FuseNeGuardTrue, RA.i != RB.i, true)
    FUSED_CMP_GUARD(FuseNeGuardFalse, RA.i != RB.i, false)
    FUSED_CMP_GUARD(FuseGtGuardTrue, RA.i > RB.i, true)
    FUSED_CMP_GUARD(FuseGtGuardFalse, RA.i > RB.i, false)
    FUSED_CMP_GUARD(FuseGeGuardTrue, RA.i >= RB.i, true)
    FUSED_CMP_GUARD(FuseGeGuardFalse, RA.i >= RB.i, false)
    FUSED_CMP_GUARD(FuseIsZeroGuardTrue, RA.i == 0, true)
    FUSED_CMP_GUARD(FuseIsZeroGuardFalse, RA.i == 0, false)
    FUSED_CMP_GUARD(FuseIsTrueGuardTrue, RA.i != 0, true)
    FUSED_CMP_GUARD(FuseIsTrueGuardFalse, RA.i != 0, false)

#undef FUSED_CMP_GUARD

    OP(FuseGetfieldGuardClass) : {
        BEGIN();
        W_Object *w = asObj(RA);
        e.loadPtrOff(w, 8 + uint64_t(mop->aux) * 8, loadStall);
        RtVal v = w->rtGetField(mop->aux);
        SETRES(v);
        BEGIN2();
        W_Object *w2 = asObj(v);
        e2.loadPtr(w2, loadStall);
        e2.alu(1);
        bool ok = w2 && w2->typeId() == mop->aux2;
        e2.branch(!ok);
        if (__builtin_expect(ok, 1))
            NEXT();
        GUARD_EXIT();
    }

#define FUSED_OVF_GUARD(NAME, BUILTIN)                                  \
    OP(NAME) : {                                                        \
        BEGIN();                                                        \
        e.alu(1);                                                       \
        int64_t r;                                                      \
        pendingOverflow = BUILTIN(RA.i, RB.i, &r);                      \
        SETRES(RtVal::fromInt(r));                                      \
        BEGIN2();                                                       \
        bool ok = !pendingOverflow;                                     \
        e2.branch(!ok);                                                 \
        if (__builtin_expect(ok, 1))                                    \
            NEXT();                                                     \
        GUARD_EXIT();                                                   \
    }

    FUSED_OVF_GUARD(FuseAddOvfGuard, __builtin_add_overflow)
    FUSED_OVF_GUARD(FuseSubOvfGuard, __builtin_sub_overflow)
    FUSED_OVF_GUARD(FuseMulOvfGuard, __builtin_mul_overflow)

#undef FUSED_OVF_GUARD

    // ---- engine-internal --------------------------------------------
    OP(Unimpl) : {
        XLVM_PANIC("executor: unhandled op ",
                   jit::irOpName(IrOp(mop->aux2)));
    }

    OP(TrapEnd) : {
        XLVM_PANIC("executor: ran off trace end (trace ", t->id, ")");
    }

#if !XLVM_CGOTO
    }
    XLVM_PANIC("executor: bad micro-opcode ", mop->opcode);
#endif

#undef OP
#undef DISPATCH
#undef NEXT
#undef RESTART
#undef GUARD_EXIT
#undef BEGIN
#undef BEGIN2
#undef RA
#undef RB
#undef RC
#undef SETRES
}

} // namespace vm
} // namespace xlvm
