/**
 * @file
 * Trace registry: owns every compiled trace, indexes loop traces by merge
 * point (code object, pc), and keeps trace constants alive for the GC.
 */

#ifndef XLVM_VM_REGISTRY_H
#define XLVM_VM_REGISTRY_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "gc/heap.h"
#include "jit/ir.h"

namespace xlvm {
namespace vm {

struct JitParams
{
    /** Loop-header hotness threshold before tracing (PyPy: 1039). */
    uint32_t loopThreshold = 1039;
    /** Guard-failure count before a bridge is attempted (PyPy: 200). */
    uint32_t bridgeThreshold = 200;
    /** Trace-length abort limit (ops). */
    uint32_t maxTraceOps = 6000;
    /** After an abort, back off before retrying this merge point. */
    uint32_t abortPenalty = 4000;
    /** Emit kIrNode annotations during trace execution. */
    bool irNodeAnnotations = false;
    bool enableJit = true;
    /** Fuse compare→guard / getfield→guard_class / int-ovf→guard pairs
     *  into superinstructions at trace-lowering time (host dispatch win
     *  only; the modeled instruction stream is invariant). */
    bool fuseMicroOps = true;
    /** Optimizer toggles (ablations). */
    bool optFoldConstants = true;
    bool optElideGuards = true;
    bool optHeapCache = true;
    bool optVirtualize = true;
};

class TraceRegistry : public gc::RootProvider
{
  public:
    explicit TraceRegistry(gc::Heap &heap) : heap_(heap)
    {
        heap.addRootProvider(this);
    }

    ~TraceRegistry() override { heap_.removeRootProvider(this); }

    /** Register a compiled trace; takes ownership. Returns the trace. */
    jit::Trace *
    add(std::unique_ptr<jit::Trace> t)
    {
        jit::Trace *raw = t.get();
        if (!raw->isBridge)
            loops[key(raw->anchorCode, raw->anchorPc)] = raw;
        traces.push_back(std::move(t));
        return raw;
    }

    /** Loop trace anchored at (code, pc), or nullptr. */
    jit::Trace *
    loopFor(void *code, uint32_t pc) const
    {
        auto it = loops.find(key(code, pc));
        return it == loops.end() ? nullptr : it->second;
    }

    jit::Trace *
    byId(uint32_t id)
    {
        XLVM_ASSERT(id < traces.size(), "bad trace id");
        return traces[id].get();
    }

    uint32_t nextId() const { return uint32_t(traces.size()); }
    size_t size() const { return traces.size(); }

    const std::vector<std::unique_ptr<jit::Trace>> &all() const
    {
        return traces;
    }

    /** Keep every trace constant alive. */
    void
    forEachRoot(gc::GcVisitor &v) override
    {
        for (const auto &t : traces) {
            for (const jit::RtVal &c : t->consts) {
                if (c.kind == jit::RtVal::Kind::Ref && c.r)
                    v.visit(static_cast<gc::GcObject *>(c.r));
            }
        }
    }

  private:
    static uint64_t
    key(void *code, uint32_t pc)
    {
        return reinterpret_cast<uint64_t>(code) ^
               (uint64_t(pc) * 0x9e3779b97f4a7c15ull);
    }

    gc::Heap &heap_;
    std::vector<std::unique_ptr<jit::Trace>> traces;
    std::unordered_map<uint64_t, jit::Trace *> loops;
};

} // namespace vm
} // namespace xlvm

#endif // XLVM_VM_REGISTRY_H
