/**
 * @file
 * Trace registry: owns every compiled trace, indexes loop traces by merge
 * point (code object, pc), and keeps trace constants alive for the GC.
 */

#ifndef XLVM_VM_REGISTRY_H
#define XLVM_VM_REGISTRY_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "gc/heap.h"
#include "jit/ir.h"

namespace xlvm {
namespace vm {

/** Compilation-tier policy (multi-tier JIT; arXiv 2504.17460 analog). */
enum class TierMode : uint8_t
{
    Off,   ///< JIT disabled entirely (driver maps this to enableJit=false)
    Tier1, ///< baseline compiles only: raw traces lowered, never optimized
    Tier2, ///< optimizing compiles only (the pre-tiering default)
    Multi, ///< baseline at tier1Threshold, promote at tier2Threshold
};

inline const char *
tierModeName(TierMode m)
{
    switch (m) {
      case TierMode::Off:   return "off";
      case TierMode::Tier1: return "tier1";
      case TierMode::Tier2: return "tier2";
      case TierMode::Multi: return "multi";
    }
    return "?";
}

/** Parse "off|tier1|tier2|multi"; returns false on an unknown name. */
inline bool
tierModeFromString(const char *s, TierMode *out)
{
    for (TierMode m : {TierMode::Off, TierMode::Tier1, TierMode::Tier2,
                       TierMode::Multi}) {
        const char *n = tierModeName(m);
        const char *p = s;
        while (*n && *p == *n) {
            ++p;
            ++n;
        }
        if (!*n && !*p) {
            *out = m;
            return true;
        }
    }
    return false;
}

struct JitParams
{
    /** Loop-header hotness threshold before tracing (PyPy: 1039). */
    uint32_t loopThreshold = 1039;
    /** Guard-failure count before a bridge is attempted (PyPy: 200). */
    uint32_t bridgeThreshold = 200;
    /** Trace-length abort limit (ops). */
    uint32_t maxTraceOps = 6000;
    /** After an abort, back off before retrying this merge point. */
    uint32_t abortPenalty = 4000;
    /** Emit kIrNode annotations during trace execution. */
    bool irNodeAnnotations = false;
    bool enableJit = true;
    /** Fuse compare→guard / getfield→guard_class / int-ovf→guard pairs
     *  into superinstructions at trace-lowering time (host dispatch win
     *  only; the modeled instruction stream is invariant). */
    bool fuseMicroOps = true;
    /** Optimizer toggles (ablations). */
    bool optFoldConstants = true;
    bool optElideGuards = true;
    bool optHeapCache = true;
    bool optVirtualize = true;
    /**
     * Compilation-tier policy. Tier2 (the default) is the pre-tiering
     * single-tier pipeline and keeps every golden bit-identical. Tier1
     * and Multi compile raw recordings at tier1Threshold without the
     * optimizer; Multi additionally re-optimizes a tier-1 trace in
     * place once its execution count crosses tier2Threshold.
     */
    TierMode tierMode = TierMode::Tier2;
    /** Loop-header hotness threshold for a baseline (tier-1) compile. */
    uint32_t tier1Threshold = 130;
    /** Tier-1 trace executions before promotion to the optimizing tier. */
    uint32_t tier2Threshold = 100;
};

class TraceRegistry : public gc::RootProvider
{
  public:
    explicit TraceRegistry(gc::Heap &heap) : heap_(heap)
    {
        heap.addRootProvider(this);
    }

    ~TraceRegistry() override { heap_.removeRootProvider(this); }

    /** Register a compiled trace; takes ownership. Returns the trace. */
    jit::Trace *
    add(std::unique_ptr<jit::Trace> t)
    {
        jit::Trace *raw = t.get();
        if (!raw->isBridge)
            loops[key(raw->anchorCode, raw->anchorPc)] = raw;
        traces.push_back(std::move(t));
        return raw;
    }

    /** Loop trace anchored at (code, pc), or nullptr. */
    jit::Trace *
    loopFor(void *code, uint32_t pc) const
    {
        auto it = loops.find(key(code, pc));
        return it == loops.end() ? nullptr : it->second;
    }

    jit::Trace *
    byId(uint32_t id)
    {
        XLVM_ASSERT(id < traces.size(), "bad trace id");
        return traces[id].get();
    }

    uint32_t nextId() const { return uint32_t(traces.size()); }
    size_t size() const { return traces.size(); }

    const std::vector<std::unique_ptr<jit::Trace>> &all() const
    {
        return traces;
    }

    /**
     * Retain the raw (unoptimized) recording of trace @p id so a later
     * tier-up can re-optimize it from the original ops (multi-tier mode
     * only; the raw copy is dropped once consumed by promotion).
     */
    void
    retainRaw(uint32_t id, std::unique_ptr<jit::Trace> raw)
    {
        rawTraces[id] = std::move(raw);
    }

    /** Take (and drop) the retained raw recording, or nullptr. */
    std::unique_ptr<jit::Trace>
    takeRaw(uint32_t id)
    {
        auto it = rawTraces.find(id);
        if (it == rawTraces.end())
            return nullptr;
        std::unique_ptr<jit::Trace> raw = std::move(it->second);
        rawTraces.erase(it);
        return raw;
    }

    /** Keep every trace constant alive (retained raws included). */
    void
    forEachRoot(gc::GcVisitor &v) override
    {
        for (const auto &t : traces) {
            for (const jit::RtVal &c : t->consts) {
                if (c.kind == jit::RtVal::Kind::Ref && c.r)
                    v.visit(static_cast<gc::GcObject *>(c.r));
            }
        }
        for (const auto &kv : rawTraces) {
            for (const jit::RtVal &c : kv.second->consts) {
                if (c.kind == jit::RtVal::Kind::Ref && c.r)
                    v.visit(static_cast<gc::GcObject *>(c.r));
            }
        }
    }

  private:
    static uint64_t
    key(void *code, uint32_t pc)
    {
        return reinterpret_cast<uint64_t>(code) ^
               (uint64_t(pc) * 0x9e3779b97f4a7c15ull);
    }

    gc::Heap &heap_;
    std::vector<std::unique_ptr<jit::Trace>> traces;
    std::unordered_map<uint64_t, jit::Trace *> loops;
    /** Raw recordings kept for promotion, keyed by trace id. */
    std::unordered_map<uint32_t, std::unique_ptr<jit::Trace>> rawTraces;
};

} // namespace vm
} // namespace xlvm

#endif // XLVM_VM_REGISTRY_H
