/**
 * @file
 * Trace registry: owns every compiled trace, indexes loop traces by merge
 * point (code object, pc), and keeps trace constants alive for the GC.
 */

#ifndef XLVM_VM_REGISTRY_H
#define XLVM_VM_REGISTRY_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "gc/heap.h"
#include "jit/ir.h"

namespace xlvm {
namespace vm {

/** Compilation-tier policy (multi-tier JIT; arXiv 2504.17460 analog). */
enum class TierMode : uint8_t
{
    Off,   ///< JIT disabled entirely (driver maps this to enableJit=false)
    Tier1, ///< baseline compiles only: raw traces lowered, never optimized
    Tier2, ///< optimizing compiles only (the pre-tiering default)
    Multi, ///< baseline at tier1Threshold, promote at tier2Threshold
};

inline const char *
tierModeName(TierMode m)
{
    switch (m) {
      case TierMode::Off:   return "off";
      case TierMode::Tier1: return "tier1";
      case TierMode::Tier2: return "tier2";
      case TierMode::Multi: return "multi";
    }
    return "?";
}

/** Parse "off|tier1|tier2|multi"; returns false on an unknown name. */
inline bool
tierModeFromString(const char *s, TierMode *out)
{
    for (TierMode m : {TierMode::Off, TierMode::Tier1, TierMode::Tier2,
                       TierMode::Multi}) {
        const char *n = tierModeName(m);
        const char *p = s;
        while (*n && *p == *n) {
            ++p;
            ++n;
        }
        if (!*n && !*p) {
            *out = m;
            return true;
        }
    }
    return false;
}

struct JitParams
{
    /** Loop-header hotness threshold before tracing (PyPy: 1039). */
    uint32_t loopThreshold = 1039;
    /** Guard-failure count before a bridge is attempted (PyPy: 200). */
    uint32_t bridgeThreshold = 200;
    /** Trace-length abort limit (ops). */
    uint32_t maxTraceOps = 6000;
    /** After an abort, back off before retrying this merge point. */
    uint32_t abortPenalty = 4000;
    /** Emit kIrNode annotations during trace execution. */
    bool irNodeAnnotations = false;
    bool enableJit = true;
    /** Fuse compare→guard / getfield→guard_class / int-ovf→guard pairs
     *  into superinstructions at trace-lowering time (host dispatch win
     *  only; the modeled instruction stream is invariant). */
    bool fuseMicroOps = true;
    /** Optimizer toggles (ablations). */
    bool optFoldConstants = true;
    bool optElideGuards = true;
    bool optHeapCache = true;
    bool optVirtualize = true;
    /**
     * Compilation-tier policy. Tier2 (the default) is the pre-tiering
     * single-tier pipeline and keeps every golden bit-identical. Tier1
     * and Multi compile raw recordings at tier1Threshold without the
     * optimizer; Multi additionally re-optimizes a tier-1 trace in
     * place once its execution count crosses tier2Threshold.
     */
    TierMode tierMode = TierMode::Tier2;
    /** Loop-header hotness threshold for a baseline (tier-1) compile. */
    uint32_t tier1Threshold = 130;
    /** Tier-1 trace executions before promotion to the optimizing tier. */
    uint32_t tier2Threshold = 100;

    /**
     * Deopt-storm blacklisting: consecutive zero-progress trace entries
     * (a run that fails a guard before completing one back-edge) before
     * the trace is demoted to the interpreter. Re-armed after
     * blacklistCooldown merge-point visits, doubling per generation
     * (exponential backoff, capped). 0 disables detection. The default
     * sits above bridgeThreshold so bridge compilation gets the first
     * shot at fixing a hot exit.
     */
    uint32_t stormThreshold = 600;
    uint32_t blacklistCooldown = 4000;
    /** Cap on blacklist backoff doublings (cooldown << generation). */
    uint32_t blacklistBackoffCap = 6;
    /**
     * Compile budget: recordings longer than this many ops skip the
     * optimizing tier and retry as a tier-1 baseline compile (the
     * optimizer's cost is superlinear in trace length). 0 = unlimited.
     */
    uint32_t compileBudgetOps = 0;
    /**
     * Trace-cache capacity in live traces (roots + bridges). At
     * registration pressure the coldest unreferenced loop root (lowest
     * execution count, then lowest id) is evicted together with its
     * bridge closure; if nothing is evictable the new recording aborts
     * with kTraceCacheFull. 0 = unlimited.
     */
    uint32_t maxTraces = 0;
};

class TraceRegistry : public gc::RootProvider
{
  public:
    explicit TraceRegistry(gc::Heap &heap) : heap_(heap)
    {
        heap.addRootProvider(this);
    }

    ~TraceRegistry() override { heap_.removeRootProvider(this); }

    /** Register a compiled trace; takes ownership. Returns the trace. */
    jit::Trace *
    add(std::unique_ptr<jit::Trace> t)
    {
        jit::Trace *raw = t.get();
        if (!raw->isBridge)
            loops[key(raw->anchorCode, raw->anchorPc)] = raw;
        traces.push_back(std::move(t));
        return raw;
    }

    /** Loop trace anchored at (code, pc), or nullptr. */
    jit::Trace *
    loopFor(void *code, uint32_t pc) const
    {
        auto it = loops.find(key(code, pc));
        return it == loops.end() ? nullptr : it->second;
    }

    /** Trace by id; nullptr when the slot was evicted. */
    jit::Trace *
    byId(uint32_t id)
    {
        XLVM_ASSERT(id < traces.size(), "bad trace id");
        return traces[id].get();
    }

    uint32_t nextId() const { return uint32_t(traces.size()); }
    size_t size() const { return traces.size(); }

    /** Live (non-evicted) trace count. */
    size_t
    liveCount() const
    {
        size_t n = 0;
        for (const auto &t : traces)
            if (t)
                ++n;
        return n;
    }

    /**
     * Drop trace @p id under cache pressure. Ids are stable (the slot
     * stays, holding nullptr) so bridgeTraceId / call_assembler targets
     * of surviving traces never dangle — callers pick eviction
     * candidates that are unreferenced. Backend code is append-only
     * arena memory and is intentionally not reclaimed.
     */
    void
    evict(uint32_t id)
    {
        XLVM_ASSERT(id < traces.size(), "bad trace id");
        jit::Trace *t = traces[id].get();
        if (!t)
            return;
        if (!t->isBridge) {
            auto it = loops.find(key(t->anchorCode, t->anchorPc));
            if (it != loops.end() && it->second == t)
                loops.erase(it);
        }
        rawTraces.erase(id);
        traces[id].reset();
    }

    /** All slots, in id order; evicted slots hold nullptr. */
    const std::vector<std::unique_ptr<jit::Trace>> &all() const
    {
        return traces;
    }

    /**
     * Retain the raw (unoptimized) recording of trace @p id so a later
     * tier-up can re-optimize it from the original ops (multi-tier mode
     * only; the raw copy is dropped once consumed by promotion).
     */
    void
    retainRaw(uint32_t id, std::unique_ptr<jit::Trace> raw)
    {
        rawTraces[id] = std::move(raw);
    }

    /** Take (and drop) the retained raw recording, or nullptr. */
    std::unique_ptr<jit::Trace>
    takeRaw(uint32_t id)
    {
        auto it = rawTraces.find(id);
        if (it == rawTraces.end())
            return nullptr;
        std::unique_ptr<jit::Trace> raw = std::move(it->second);
        rawTraces.erase(it);
        return raw;
    }

    /** Keep every trace constant alive (retained raws included). */
    void
    forEachRoot(gc::GcVisitor &v) override
    {
        for (const auto &t : traces) {
            if (!t)
                continue;
            for (const jit::RtVal &c : t->consts) {
                if (c.kind == jit::RtVal::Kind::Ref && c.r)
                    v.visit(static_cast<gc::GcObject *>(c.r));
            }
        }
        for (const auto &kv : rawTraces) {
            for (const jit::RtVal &c : kv.second->consts) {
                if (c.kind == jit::RtVal::Kind::Ref && c.r)
                    v.visit(static_cast<gc::GcObject *>(c.r));
            }
        }
    }

  private:
    static uint64_t
    key(void *code, uint32_t pc)
    {
        return reinterpret_cast<uint64_t>(code) ^
               (uint64_t(pc) * 0x9e3779b97f4a7c15ull);
    }

    gc::Heap &heap_;
    std::vector<std::unique_ptr<jit::Trace>> traces;
    std::unordered_map<uint64_t, jit::Trace *> loops;
    /** Raw recordings kept for promotion, keyed by trace id. */
    std::unordered_map<uint32_t, std::unique_ptr<jit::Trace>> rawTraces;
};

} // namespace vm
} // namespace xlvm

#endif // XLVM_VM_REGISTRY_H
