/**
 * @file
 * TraceExecutor::performCall — the recorded-call ABI.
 *
 * Every Call op recorded by the object space names an AOT function id and
 * a semantic tag; this file dispatches on those to perform the runtime
 * behaviour. Most semantics delegate to ObjSpace methods (which account
 * the AOT cost and the JIT-call phase themselves via ExecEnv::aotCall).
 */

#include <cmath>

#include "rt/rstr.h"
#include "vm/executor.h"

namespace xlvm {
namespace vm {

using jit::MicroOp;
using jit::RtVal;
using obj::CmpOp;
using obj::RtSem;
using obj::W_Dict;
using obj::W_List;
using obj::W_Object;
using obj::W_Set;
using obj::W_Str;
using obj::W_Tuple;

RtVal
TraceExecutor::performCall(const MicroOp &m, RtVal *regs)
{
    auto A = [&](int i) -> RtVal {
        XLVM_ASSERT(m.argMask & (1u << i), "missing call arg ", i);
        return regs[m.arg[i]];
    };
    auto hasArg = [&](int i) { return (m.argMask & (1u << i)) != 0; };
    auto obj = [&](int i) -> W_Object * {
        return static_cast<W_Object *>(A(i).r);
    };

    uint32_t sem = uint32_t(m.expect);
    uint32_t fn = m.aux;

    // ---- semantics that override the function id --------------------
    switch (sem) {
      case obj::kSemBigIntFloorDiv:
        return RtVal::fromRef(space.floordiv(obj(0), obj(1)));
      case obj::kSemBigIntMod:
        return RtVal::fromRef(space.mod(obj(0), obj(1)));
      case obj::kSemBigIntTrueDiv:
        return RtVal::fromRef(space.truediv(obj(0), obj(1)));
      case obj::kSemNegate:
        return RtVal::fromRef(space.neg(obj(0)));
      case obj::kSemFloatMod:
        return RtVal::fromRef(space.mod(obj(0), obj(1)));
      case obj::kSemPow:
        return RtVal::fromRef(space.pow_(obj(0), obj(1)));
      case obj::kSemGenericEq:
        return RtVal::fromInt(obj::objEq(obj(0), obj(1)) ? 1 : 0);
      case obj::kSemDictLen:
        return RtVal::fromInt(
            static_cast<W_Dict *>(obj(0))->table.size());
      case obj::kSemSetLen:
        return RtVal::fromInt(static_cast<W_Set *>(obj(0))->table.size());
      case obj::kSemDictIterNew:
      case obj::kSemSetIterNew:
        return RtVal::fromRef(space.iter(obj(0)));
      case obj::kSemDictIterNext: {
#ifdef XLVM_DEBUG_DEOPT
        auto *di = static_cast<obj::W_DictIter *>(obj(0));
        static int dbgN = 0;
        if (dbgN++ < 12) {
            std::fprintf(stderr, "iternext idx=%lld dictsize=%lld type=%u\n",
                         (long long)di->index,
                         (long long)static_cast<obj::W_Dict *>(di->dict)
                             ->table.size(),
                         di->dict->typeId());
        }
#endif
        return RtVal::fromRef(space.iterNext(obj(0)));
      }
      case obj::kSemChr:
        return RtVal::fromRef(
            space.newStr(std::string(1, char(A(1).i))));
      case obj::kSemStrSlice:
        return RtVal::fromRef(space.strSlice(
            static_cast<W_Str *>(obj(0)), A(1).i, A(2).i));
      case obj::kSemListConcat: {
        W_List *out = space.newList();
        space.listExtend(out, obj(0));
        space.listExtend(out, obj(1));
        return RtVal::fromRef(out);
      }
      case obj::kSemTupleConcat: {
        auto *a = static_cast<W_Tuple *>(obj(0));
        auto *b = static_cast<W_Tuple *>(obj(1));
        std::vector<W_Object *> items = a->items;
        items.insert(items.end(), b->items.begin(), b->items.end());
        return RtVal::fromRef(space.newTuple(std::move(items)));
      }
      case obj::kSemListRepeat: {
        auto *src = static_cast<W_List *>(obj(0));
        int64_t n = space.unwrapInt(obj(1));
        W_List *out = space.newList();
        for (int64_t i = 0; i < n; ++i)
            space.listExtend(out, src);
        return RtVal::fromRef(out);
      }
      case obj::kSemListExtend:
        space.listExtend(static_cast<W_List *>(obj(0)), obj(1));
        return RtVal::fromRef(obj(0));
      case obj::kSemStr:
        return RtVal::fromRef(space.str(obj(0)));
      case obj::kSemContains:
        return RtVal::fromInt(space.containsBool(obj(0), obj(1)) ? 1 : 0);
      case obj::kSemListReverse:
        space.listReverse(static_cast<W_List *>(obj(0)));
        return RtVal::fromRef(obj(0));
      case obj::kSemSetDiscard:
        space.setDiscard(static_cast<W_Set *>(obj(0)), obj(1));
        return RtVal::fromRef(obj(0));
      case obj::kSemNewList:
        return RtVal::fromRef(space.newList());
      case obj::kSemNewDict:
        return RtVal::fromRef(space.newDict());
      case obj::kSemNewSet:
        return RtVal::fromRef(space.newSet());
      case obj::kSemNewTuple: {
        std::vector<W_Object *> items;
        for (int i = 0; i < jit::kMaxOpArgs; ++i) {
            if (hasArg(i))
                items.push_back(obj(i));
        }
        return RtVal::fromRef(space.newTuple(std::move(items)));
      }
      case obj::kSemStrStartswith:
      case obj::kSemStrEndswith: {
        uint64_t cost = 0;
        const std::string &s = static_cast<W_Str *>(obj(0))->value;
        const std::string &p = static_cast<W_Str *>(obj(1))->value;
        (void)cost;
        bool res = sem == obj::kSemStrStartswith ? rt::startsWith(s, p)
                                                 : rt::endsWith(s, p);
        space.env().aotCall(rt::kAotStrCmp, p.size() + 1);
        return RtVal::fromInt(res ? 1 : 0);
      }
      case obj::kSemStrCount: {
        uint64_t cost = 0;
        int64_t n = rt::count(static_cast<W_Str *>(obj(0))->value,
                              static_cast<W_Str *>(obj(1))->value,
                              &cost);
        space.env().aotCall(rt::kAotStrFind, cost);
        return RtVal::fromRef(space.newInt(n));
      }
      case obj::kSemMakeVector: {
        int64_t count = A(0).i;
        W_List *out = space.newList();
        for (int64_t i = 0; i < count; ++i)
            space.listAppend(out, obj(1));
        return RtVal::fromRef(out);
      }
      case obj::kSemListToTuple: {
        auto *lst = static_cast<W_List *>(obj(0));
        std::vector<W_Object *> items;
        for (size_t i = 0; i < lst->length(); ++i)
            items.push_back(space.listGetRaw(lst, int64_t(i)));
        return RtVal::fromRef(space.newTuple(std::move(items)));
      }
      default:
        break;
    }

    // ---- default behaviour by function id ----------------------------
    switch (fn) {
      case rt::kAotDictLookup:
        return RtVal::fromRef(space.dictGet(
            static_cast<W_Dict *>(obj(0)), obj(1), nullptr));
      case rt::kAotDictSetitem:
        space.dictSet(static_cast<W_Dict *>(obj(0)), obj(1), obj(2));
        return RtVal::fromRef(obj(0));
      case rt::kAotDictDelitem:
        return RtVal::fromInt(
            space.dictDel(static_cast<W_Dict *>(obj(0)), obj(1)) ? 1 : 0);
      case rt::kAotSetAdd:
        space.setAdd(static_cast<W_Set *>(obj(0)), obj(1));
        return RtVal::fromRef(obj(0));
      case rt::kAotSetContains:
        return RtVal::fromInt(
            space.containsBool(obj(0), obj(1)) ? 1 : 0);
      case rt::kAotSetDifference:
        return RtVal::fromRef(space.setDifference(
            static_cast<W_Set *>(obj(0)), static_cast<W_Set *>(obj(1))));
      case rt::kAotSetIntersect:
        return RtVal::fromRef(space.setIntersect(
            static_cast<W_Set *>(obj(0)), static_cast<W_Set *>(obj(1))));
      case rt::kAotSetUnion:
        return RtVal::fromRef(space.setUnion(
            static_cast<W_Set *>(obj(0)), static_cast<W_Set *>(obj(1))));
      case rt::kAotSetIssubset:
        return RtVal::fromInt(
            space.setIsSubset(static_cast<W_Set *>(obj(0)),
                              static_cast<W_Set *>(obj(1)))
                ? 1
                : 0);

      case rt::kAotListAppendGrow:
        space.listAppend(static_cast<W_List *>(obj(0)), obj(1));
        return RtVal::fromRef(obj(0));
      case rt::kAotListPop:
        return RtVal::fromRef(
            space.listPop(static_cast<W_List *>(obj(0)), A(1).i));
      case rt::kAotListExtend:
        space.listExtend(static_cast<W_List *>(obj(0)), obj(1));
        return RtVal::fromRef(obj(0));
      case rt::kAotListFillSliced:
        return RtVal::fromRef(space.listSlice(
            static_cast<W_List *>(obj(0)), A(1).i, A(2).i));
      case rt::kAotListSetslice:
        space.listSetSlice(static_cast<W_List *>(obj(0)), A(2).i,
                           A(3).i, static_cast<W_List *>(obj(1)));
        return RtVal::fromRef(obj(0));
      case rt::kAotListSafeFind:
        return RtVal::fromInt(
            space.listIndexOf(static_cast<W_List *>(obj(0)), obj(1)));
      case rt::kAotListSort:
        space.listSort(static_cast<W_List *>(obj(0)));
        return RtVal::fromRef(obj(0));
      case rt::kAotListContains:
        return RtVal::fromInt(
            space.containsBool(obj(0), obj(1)) ? 1 : 0);

      case rt::kAotStrConcat:
        return RtVal::fromRef(space.strConcat(
            static_cast<W_Str *>(obj(0)), static_cast<W_Str *>(obj(1))));
      case rt::kAotStrJoin:
        return RtVal::fromRef(space.strJoin(
            static_cast<W_Str *>(obj(0)), static_cast<W_List *>(obj(1))));
      case rt::kAotStrSplit:
        return RtVal::fromRef(space.strSplit(
            static_cast<W_Str *>(obj(0)), static_cast<W_Str *>(obj(1))));
      case rt::kAotStrReplace:
        return RtVal::fromRef(space.strReplace(
            static_cast<W_Str *>(obj(0)), static_cast<W_Str *>(obj(1)),
            static_cast<W_Str *>(obj(2))));
      case rt::kAotStrFindChar:
      case rt::kAotStrFind:
        return RtVal::fromRef(space.strFind(
            static_cast<W_Str *>(obj(0)), static_cast<W_Str *>(obj(1)),
            A(2).i));
      case rt::kAotStrSlice:
        return RtVal::fromRef(space.strSlice(
            static_cast<W_Str *>(obj(0)), A(1).i, A(2).i));
      case rt::kAotStrLower:
        return RtVal::fromRef(
            space.strLower(static_cast<W_Str *>(obj(0))));
      case rt::kAotStrUpper:
        return RtVal::fromRef(
            space.strUpper(static_cast<W_Str *>(obj(0))));
      case rt::kAotStrStrip:
        return RtVal::fromRef(
            space.strStrip(static_cast<W_Str *>(obj(0))));
      case rt::kAotStrMul:
        return RtVal::fromRef(
            space.strMul(static_cast<W_Str *>(obj(0)), A(1).i));
      case rt::kAotStrEq: {
        const auto *a = static_cast<W_Str *>(obj(0));
        const auto *b = static_cast<W_Str *>(obj(1));
        return RtVal::fromInt(a->value == b->value ? 1 : 0);
      }
      case rt::kAotStrCmp: {
        const auto *a = static_cast<W_Str *>(obj(0));
        const auto *b = static_cast<W_Str *>(obj(1));
        int c = a->value.compare(b->value);
        return RtVal::fromInt(c < 0 ? -1 : c > 0 ? 1 : 0);
      }
      case rt::kAotStrContains: {
        return RtVal::fromInt(
            space.containsBool(obj(0), obj(1)) ? 1 : 0);
      }

      case rt::kAotBigIntAdd:
        return RtVal::fromRef(space.add(obj(0), obj(1)));
      case rt::kAotBigIntSub:
        return RtVal::fromRef(space.sub(obj(0), obj(1)));
      case rt::kAotBigIntMul:
        return RtVal::fromRef(space.mul(obj(0), obj(1)));
      case rt::kAotBigIntDivMod:
        return RtVal::fromRef(space.floordiv(obj(0), obj(1)));
      case rt::kAotBigIntLshift:
        return RtVal::fromRef(space.lshift(obj(0), obj(1)));
      case rt::kAotBigIntRshift:
        return RtVal::fromRef(space.rshift(obj(0), obj(1)));
      case rt::kAotBigIntPow:
        return RtVal::fromRef(space.pow_(obj(0), obj(1)));
      case rt::kAotBigIntCmp: {
        W_Object *lt =
            space.cmp(CmpOp::Lt, obj(0), obj(1));
        bool isLt = space.isTrueAndGuard(lt);
        if (isLt)
            return RtVal::fromInt(-1);
        W_Object *eq = space.cmp(CmpOp::Eq, obj(0), obj(1));
        return RtVal::fromInt(space.isTrueAndGuard(eq) ? 0 : 1);
      }

      case rt::kAotInt2Dec:
      case rt::kAotFloatToStr:
      case rt::kAotBigIntToStr:
        return RtVal::fromRef(space.str(obj(0)));

      case rt::kAotCPow:
        return RtVal::fromRef(space.pow_(obj(0), obj(1)));
      case rt::kAotCSqrt:
        return RtVal::fromRef(
            space.newFloat(std::sqrt(space.toDouble(obj(0)))));
      case rt::kAotCSin:
        return RtVal::fromRef(
            space.newFloat(std::sin(space.toDouble(obj(0)))));
      case rt::kAotCCos:
        return RtVal::fromRef(
            space.newFloat(std::cos(space.toDouble(obj(0)))));
      case rt::kAotCExp:
        return RtVal::fromRef(
            space.newFloat(std::exp(space.toDouble(obj(0)))));
      case rt::kAotCLog:
        return RtVal::fromRef(
            space.newFloat(std::log(space.toDouble(obj(0)))));

      case rt::kAotStringToInt: {
        int64_t out = 0;
        uint64_t cost = 0;
        bool ok = rt::stringToInt(space.unwrapStr(obj(0)), &out, &cost);
        space.env().aotCall(rt::kAotStringToInt, cost);
        XLVM_ASSERT(ok, "string_to_int failed in trace");
        return RtVal::fromRef(space.newInt(out));
      }
      case rt::kAotStringToFloat: {
        double d = std::strtod(space.unwrapStr(obj(0)).c_str(), nullptr);
        space.env().aotCall(rt::kAotStringToFloat, 8);
        return RtVal::fromRef(space.newFloat(d));
      }

      case rt::kAotJsonEscape: {
        uint64_t cost = 0;
        std::string s =
            rt::jsonEscape(space.unwrapStr(obj(0)), &cost);
        space.env().aotCall(rt::kAotJsonEscape, cost);
        return RtVal::fromRef(space.newStr(std::move(s)));
      }

      case rt::kAotBuilderAppend:
      case rt::kAotBuilderBuild:
        // Builders are modeled through string concat in the language
        // layer; these entries are cost-only.
        space.env().aotCall(fn, 2);
        return RtVal::fromRef(obj(0));

      default:
        XLVM_PANIC("performCall: unhandled AOT fn ",
                   rt::AotRegistry::instance().fn(fn).name, " sem=",
                   sem);
    }
}

} // namespace vm
} // namespace xlvm
