/**
 * @file
 * VmContext: one fully wired virtual machine instance.
 *
 * Assembles the simulated core, the cross-layer annotation bus with its
 * profilers, the GC heap with phase hooks, the object space, and (for the
 * RPython flavor) the meta-tracing machinery: backend, trace registry,
 * executor. Language front ends (minipy, minirkt) run on top of this.
 */

#ifndef XLVM_VM_CONTEXT_H
#define XLVM_VM_CONTEXT_H

#include <memory>

#include "jit/backend.h"
#include "obj/space.h"
#include "rt/faults.h"
#include "vm/executor.h"
#include "vm/gchooks.h"
#include "vm/registry.h"
#include "xlayer/aot_profiler.h"
#include "xlayer/bus.h"
#include "xlayer/event_profiler.h"
#include "xlayer/irnode_profiler.h"
#include "xlayer/phase_profiler.h"
#include "xlayer/sampler.h"
#include "xlayer/tracer.h"
#include "xlayer/work_profiler.h"

namespace xlvm {
namespace vm {

struct VmConfig
{
    obj::VmFlavor flavor = obj::VmFlavor::RPython;
    obj::CostParams costs;
    sim::CoreParams core;
    gc::HeapParams heap;
    JitParams jit;
    /** Timeline bin width for the phase profiler (0 = off). */
    uint64_t phaseTimelineBin = 0;
    /** Streaming event tracer (capacityEvents == 0 keeps it off). */
    xlayer::TracerOptions tracer;
    /** Cycle-driven sampling profiler (intervalCycles == 0 = off). */
    xlayer::SamplerOptions sampler;
    /** Warmup-curve sample interval in instructions. */
    uint64_t workSampleInstrs = 100000;
    /** Instruction budget: dispatch loops stop at the next safe point. */
    uint64_t maxInstructions = 0; ///< 0 = unlimited
    /**
     * Fault-injection spec (rt::FaultEngine grammar); empty = disarmed.
     * Must be pre-validated (the driver rejects malformed specs); the
     * context constructor treats a parse failure as fatal.
     */
    std::string inject;
};

class VmContext
{
  public:
    explicit VmContext(const VmConfig &cfg = VmConfig())
        : config(cfg),
          core(cfg.core),
          bus(core),
          phases(bus, cfg.phaseTimelineBin),
          work(bus, cfg.workSampleInstrs),
          aotProfiler(bus),
          irProfiler(bus),
          events(bus),
          tracer(bus, cfg.tracer),
          heap(cfg.heap),
          env(core, codeSpace, heap, cfg.flavor, cfg.costs),
          gcHooks(env),
          space(env),
          backend(codeSpace, cfg.jit.fuseMicroOps, cfg.costs.jitLoadStall,
                  cfg.jit.irNodeAnnotations),
          registry(heap),
          executor(space, registry, backend, cfg.jit),
          sampler(core, cfg.sampler)
    {
        heap.setHooks(&gcHooks);
        std::string injectErr;
        if (!faults.configure(cfg.inject, &injectErr))
            XLVM_FATAL("bad fault-injection spec: ", injectErr);
        if (tracer.enabled()) {
            tracer.setCounterSampler([this] {
                xlayer::TraceCounterSample s{};
                s.heapBytes = heap.youngByteCount() + heap.oldByteCount();
                s.traceCacheBytes = codeSpace.jitCodeBytes();
                return s;
            });
        }
    }

    /** True if the instruction budget has been exhausted. */
    bool
    budgetExhausted() const
    {
        return config.maxInstructions &&
               core.totalInstructions() >= config.maxInstructions;
    }

    double totalCyclesForTest() const { return core.totalCycles(); }

    VmConfig config;
    sim::Core core;
    sim::CodeSpace codeSpace;
    xlayer::AnnotationBus bus;
    xlayer::PhaseProfiler phases;
    xlayer::WorkRateProfiler work;
    xlayer::AotCallProfiler aotProfiler;
    xlayer::IrNodeProfiler irProfiler;
    xlayer::EventProfiler events;
    xlayer::EventTracer tracer;
    gc::Heap heap;
    obj::ExecEnv env;
    GcPhaseHooks gcHooks;
    obj::ObjSpace space;
    jit::Backend backend;
    TraceRegistry registry;
    TraceExecutor executor;
    /**
     * Deterministic fault injection (per context, like the sampler, so
     * --jobs never perturbs trigger counters). Disarmed by default.
     */
    rt::FaultEngine faults;
    /** Declared last: its destructor disarms the core's sample hook. */
    xlayer::CycleSampler sampler;
};

} // namespace vm
} // namespace xlvm

#endif // XLVM_VM_CONTEXT_H
