/**
 * @file
 * The blackhole interpreter: deoptimization.
 *
 * When a guard fails, the blackhole reconstructs the precise interpreter
 * state (all frames, locals, operand stacks) from the guard's resume
 * snapshot and the trace's live register values, rematerializing virtual
 * objects that escape analysis removed. Its execution time is charged to
 * the Blackhole phase — the paper shows this phase can exceed 10% of
 * total time and has the worst IPC of all phases (Table IV).
 */

#ifndef XLVM_VM_BLACKHOLE_H
#define XLVM_VM_BLACKHOLE_H

#include <vector>

#include "jit/ir.h"
#include "obj/space.h"

namespace xlvm {
namespace vm {

/** Reconstructed state of one interpreter frame. */
struct FrameState
{
    void *code = nullptr;
    uint32_t pc = 0;
    std::vector<obj::W_Object *> locals;
    std::vector<obj::W_Object *> stack;
};

/** Result of leaving JIT-compiled code. */
struct DeoptResult
{
    std::vector<FrameState> frames; ///< outermost first
    uint32_t traceId = 0;
    uint32_t guardOpIdx = 0;
};

/**
 * Materialize the interpreter state for @p snapshot of @p trace given the
 * current register values. Emits blackhole-phase cost and annotations.
 */
DeoptResult blackholeMaterialize(obj::ObjSpace &space,
                                 const jit::Trace &trace,
                                 const jit::Snapshot &snapshot,
                                 const std::vector<jit::RtVal> &regs,
                                 uint32_t guard_op_idx);

/**
 * State reconstruction without blackhole cost accounting — used when a
 * guard exit transfers to a bridge (the forced allocations live in the
 * bridge's own code, so the cost stays in the JIT phase).
 */
DeoptResult materializeState(obj::ObjSpace &space, const jit::Trace &trace,
                             const jit::Snapshot &snapshot,
                             const std::vector<jit::RtVal> &regs);

/** Default-construct a W_ object of @p type_id for virtual rebuild. */
obj::W_Object *allocByTypeId(obj::ObjSpace &space, uint32_t type_id);

} // namespace vm
} // namespace xlvm

#endif // XLVM_VM_BLACKHOLE_H
