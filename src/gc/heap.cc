#include "gc/heap.h"

#include <algorithm>

namespace xlvm {
namespace gc {

Heap::Heap(const HeapParams &p)
    : params(p), majorThreshold(p.majorMinBytes)
{
}

Heap::~Heap()
{
    for (GcObject *o : young)
        delete o;
    for (GcObject *o : old)
        delete o;
}

void
Heap::removeRootProvider(RootProvider *rp)
{
    roots.erase(std::remove(roots.begin(), roots.end(), rp), roots.end());
}

void
Heap::markFromRoots(GcVisitor &v)
{
    for (RootProvider *rp : roots)
        rp->forEachRoot(v);
}

void
Heap::drain(GcVisitor &v)
{
    while (!v.worklist.empty()) {
        GcObject *o = v.worklist.back();
        v.worklist.pop_back();
        o->traceRefs(v);
    }
}

void
Heap::collect()
{
    collectMinor();
    if (oldBytes >= majorThreshold)
        collectMajor();
}

void
Heap::collectMinor()
{
    if (hooks)
        hooks->onCollectStart(false);

    GcVisitor v(/*minor=*/true);
    markFromRoots(v);
    // Remembered set: children of old objects that received stores since
    // the last minor collection are additional roots.
    for (GcObject *o : remSet) {
        o->gcFlags &= ~GcObject::kRemembered;
        o->traceRefs(v);
    }
    remSet.clear();
    drain(v);

    GcCollectionStats cs;
    cs.major = false;
    cs.objectsScanned = v.visitedCount();

    for (GcObject *o : young) {
        if (o->gcFlags & GcObject::kMarked) {
            o->gcFlags &= ~GcObject::kMarked;
            o->gcFlags |= GcObject::kOld;
            uint64_t bytes = o->heapBytes();
            cs.bytesPromoted += bytes;
            oldBytes += bytes;
            old.push_back(o);
        } else {
            ++cs.objectsFreed;
            cs.bytesFreed += o->heapBytes();
            if (hooks)
                hooks->onObjectFree(o);
            delete o;
        }
    }
    young.clear();
    youngBytes = 0;

    ++stats_.minorCollections;
    stats_.totalPromotedBytes += cs.bytesPromoted;
    stats_.totalFreed += cs.objectsFreed;

    if (hooks)
        hooks->onCollectEnd(cs);
}

void
Heap::collectMajor()
{
    if (hooks)
        hooks->onCollectStart(true);

    GcVisitor v(/*minor=*/false);
    markFromRoots(v);
    drain(v);

    GcCollectionStats cs;
    cs.major = true;
    cs.objectsScanned = v.visitedCount();

    // Remembered flags become stale across a major collection; clear them
    // (surviv' entries re-register through the write barrier).
    for (GcObject *o : remSet)
        o->gcFlags &= ~GcObject::kRemembered;
    remSet.clear();

    // Recompute old-space byte occupancy from scratch during the sweep.
    oldBytes = 0;
    std::vector<GcObject *> oldSpace;
    oldSpace.swap(old);
    for (GcObject *o : oldSpace) {
        if (o->gcFlags & GcObject::kMarked) {
            o->gcFlags &= ~GcObject::kMarked;
            oldBytes += o->heapBytes();
            old.push_back(o);
        } else {
            ++cs.objectsFreed;
            cs.bytesFreed += o->heapBytes();
            if (hooks)
                hooks->onObjectFree(o);
            delete o;
        }
    }
    // Young survivors are promoted during a major collection as well.
    for (GcObject *o : young) {
        if (o->gcFlags & GcObject::kMarked) {
            o->gcFlags &= ~GcObject::kMarked;
            o->gcFlags |= GcObject::kOld;
            uint64_t bytes = o->heapBytes();
            cs.bytesPromoted += bytes;
            oldBytes += bytes;
            old.push_back(o);
        } else {
            ++cs.objectsFreed;
            cs.bytesFreed += o->heapBytes();
            if (hooks)
                hooks->onObjectFree(o);
            delete o;
        }
    }
    young.clear();
    youngBytes = 0;

    majorThreshold = std::max<uint64_t>(
        params.majorMinBytes,
        uint64_t(double(oldBytes) * params.majorGrowthFactor));

    ++stats_.majorCollections;
    stats_.totalPromotedBytes += cs.bytesPromoted;
    stats_.totalFreed += cs.objectsFreed;

    if (hooks)
        hooks->onCollectEnd(cs);
}

} // namespace gc
} // namespace xlvm
