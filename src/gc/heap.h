/**
 * @file
 * Generational garbage collector.
 *
 * Models RPython's incminimark GC at the level the paper characterizes:
 * a nursery with cheap allocation, frequent minor collections that promote
 * survivors into an old generation, occasional full (major) collections,
 * shadow-stack root enumeration, and an old-to-young write barrier with a
 * remembered set.
 *
 * Implementation choice: the heap is *non-moving* (objects are real C++
 * objects holding std containers, so memcpy evacuation would be UB), but
 * the *cost model* is that of a copying nursery: survivors are charged
 * per-byte "copy" work through GcHooks, so GC time scales with survivor
 * bytes exactly as in the modeled system. Collections run only at
 * safepoints (dispatch-loop and trace-label boundaries), where the
 * registered root providers cover every live reference — the analog of
 * RPython's shadowstack discipline.
 */

#ifndef XLVM_GC_HEAP_H
#define XLVM_GC_HEAP_H

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace xlvm {
namespace gc {

class GcVisitor;
class Heap;

/** Base class of every collected object. */
class GcObject
{
  public:
    virtual ~GcObject() = default;

    /** Visit every GcObject* the object holds. */
    virtual void traceRefs(GcVisitor &v) = 0;

    /** Approximate heap footprint (object + owned payload), in bytes. */
    virtual size_t heapBytes() const = 0;

    uint16_t gcTypeId = 0; ///< set by the object layer; used for stats

    bool isMarked() const { return gcFlags & kMarked; }
    bool isOld() const { return gcFlags & kOld; }
    bool inRemSet() const { return gcFlags & kRemembered; }

    /**
     * Allocation ordinal within the owning heap (1-based; 0 = never
     * heap-allocated). Identity hashing uses this instead of the host
     * address so hash-probe sequences are reproducible across runs and
     * across worker threads.
     */
    uint64_t allocId() const { return allocSeq; }

  private:
    friend class Heap;
    friend class GcVisitor;
    static constexpr uint8_t kMarked = 1;
    static constexpr uint8_t kOld = 2;
    static constexpr uint8_t kRemembered = 4;
    uint8_t gcFlags = 0;
    uint64_t allocSeq = 0;
};

/** Mark-phase visitor handed to traceRefs. */
class GcVisitor
{
  public:
    explicit GcVisitor(bool minor) : minorOnly(minor) {}

    /** Visit one (possibly null) reference. */
    void
    visit(GcObject *o)
    {
        if (!o || (o->gcFlags & GcObject::kMarked))
            return;
        if (minorOnly && (o->gcFlags & GcObject::kOld))
            return; // old objects are boundary nodes in a minor collection
        o->gcFlags |= GcObject::kMarked;
        worklist.push_back(o);
        ++visited;
    }

    uint64_t visitedCount() const { return visited; }

  private:
    friend class Heap;
    bool minorOnly;
    std::vector<GcObject *> worklist;
    uint64_t visited = 0;
};

/** Enumerates live references at a safepoint (shadow-stack analog). */
class RootProvider
{
  public:
    virtual ~RootProvider() = default;
    virtual void forEachRoot(GcVisitor &v) = 0;
};

/** Statistics reported to the instrumentation hooks per collection. */
struct GcCollectionStats
{
    bool major = false;
    uint64_t objectsScanned = 0;
    uint64_t bytesPromoted = 0;  ///< survivor bytes ("copied" cost)
    uint64_t objectsFreed = 0;
    uint64_t bytesFreed = 0;
};

/**
 * Cost/annotation hooks implemented by the VM layer; called around each
 * collection so GC work can be charged to the GC phase.
 */
class GcHooks
{
  public:
    virtual ~GcHooks() = default;
    virtual void onCollectStart(bool major) = 0;
    virtual void onCollectEnd(const GcCollectionStats &stats) = 0;
    /**
     * Called for each object a collection is about to free, so the
     * instrumentation layer can drop per-pointer state (the simulated
     * data-address mapping) before the host memory is recycled.
     */
    virtual void onObjectFree(const GcObject *) {}
};

struct HeapParams
{
    uint64_t nurseryBytes = 512 * 1024;
    /** Major GC when oldBytes exceeds this factor of the post-major floor. */
    double majorGrowthFactor = 1.82;
    uint64_t majorMinBytes = 4 * 1024 * 1024;
};

class Heap
{
  public:
    explicit Heap(const HeapParams &p = HeapParams());
    ~Heap();

    Heap(const Heap &) = delete;
    Heap &operator=(const Heap &) = delete;

    /**
     * Construct a collected object. The object is young until it survives
     * a collection. Never triggers a collection inline — collection
     * happens only via safepoint().
     */
    template <typename T, typename... Args>
    T *
    alloc(Args &&...args)
    {
        T *obj = new T(std::forward<Args>(args)...);
        young.push_back(obj);
        youngBytes += obj->heapBytes();
        obj->allocSeq = ++stats_.allocations;
        return obj;
    }

    /** Account payload growth after allocation (e.g., list resize). */
    void noteExtraBytes(uint64_t bytes) { youngBytes += bytes; }

    /**
     * Old-to-young write barrier: call after storing a reference into
     * @p owner. Adds old owners to the remembered set.
     */
    void
    writeBarrier(GcObject *owner)
    {
        if (owner->isOld() && !(owner->gcFlags & GcObject::kRemembered)) {
            owner->gcFlags |= GcObject::kRemembered;
            remSet.push_back(owner);
        }
    }

    /** True if the nursery watermark has been reached. */
    bool collectionNeeded() const { return youngBytes >= params.nurseryBytes; }

    /**
     * Safepoint: collect if needed. All roots must be registered. This is
     * the only place collections happen.
     */
    void
    safepoint()
    {
        if (collectionNeeded())
            collect();
    }

    /** Force a collection (minor, escalating to major when due). */
    void collect();

    /** Force a full major collection. */
    void collectMajor();

    void addRootProvider(RootProvider *rp) { roots.push_back(rp); }
    void removeRootProvider(RootProvider *rp);

    void setHooks(GcHooks *h) { hooks = h; }

    struct HeapStats
    {
        uint64_t allocations = 0;
        uint64_t minorCollections = 0;
        uint64_t majorCollections = 0;
        uint64_t totalPromotedBytes = 0;
        uint64_t totalFreed = 0;
    };

    const HeapStats &stats() const { return stats_; }
    uint64_t youngByteCount() const { return youngBytes; }
    uint64_t oldByteCount() const { return oldBytes; }
    size_t youngObjectCount() const { return young.size(); }
    size_t oldObjectCount() const { return old.size(); }

  private:
    void collectMinor();
    void markFromRoots(GcVisitor &v);
    void drain(GcVisitor &v);

    HeapParams params;
    std::vector<GcObject *> young;
    std::vector<GcObject *> old;
    std::vector<GcObject *> remSet;
    std::vector<RootProvider *> roots;
    GcHooks *hooks = nullptr;
    uint64_t youngBytes = 0;
    uint64_t oldBytes = 0;
    uint64_t majorThreshold;
    HeapStats stats_;
};

} // namespace gc
} // namespace xlvm

#endif // XLVM_GC_HEAP_H
