/**
 * @file
 * The synthetic target ISA.
 *
 * xlvm is execution-driven: every layer of the modeled VM stack (reference
 * interpreter, RPython-style translated interpreter, meta-interpreter,
 * JIT-compiled traces, AOT runtime functions, the garbage collector)
 * *emits* a stream of Inst records into sim::Core, which plays the role of
 * the hardware in the paper: it accounts cycles, drives branch predictors
 * and caches, and surfaces per-phase performance counters.
 *
 * Annot is the cross-layer annotation instruction: the analog of the
 * paper's tagged x86 `nop`. It does not change "program" behaviour but is
 * observed by the instrumentation layer (xlayer::AnnotationBus), exactly
 * like the paper's PinTool observing nops.
 */

#ifndef XLVM_SIM_INST_H
#define XLVM_SIM_INST_H

#include <cstdint>

namespace xlvm {
namespace sim {

/** Broad instruction classes; enough detail for the cycle model. */
enum class InstClass : uint8_t
{
    IntAlu,       ///< integer add/sub/logic/compare/lea
    IntMul,       ///< integer multiply
    IntDiv,       ///< integer divide/modulo
    FpAlu,        ///< floating add/sub/convert
    FpMul,        ///< floating multiply
    FpDiv,        ///< floating divide/sqrt
    Load,         ///< memory read
    Store,        ///< memory write
    Branch,       ///< conditional direct branch
    Jump,         ///< unconditional direct jump
    IndirectJump, ///< computed jump (interpreter dispatch, jump tables)
    Call,         ///< direct call
    IndirectCall, ///< computed call (vtables, function pointers)
    Ret,          ///< return
    Nop,          ///< plain no-op / fence
    Annot,        ///< tagged no-op: cross-layer annotation carrier
};

constexpr int kNumInstClasses = 16;

/** One dynamic instruction record. */
struct Inst
{
    InstClass cls = InstClass::Nop;
    /** Extra dependence-induced stall cycles charged to this inst. */
    uint8_t extraLat = 0;
    /** Conditional-branch outcome. */
    bool taken = false;
    /** Synthetic program counter (4-byte granule). */
    uint64_t pc = 0;
    /**
     * Branch/jump/call target; for Annot this carries the encoded
     * (tag, payload) pair; for Load/Store it is unused.
     */
    uint64_t target = 0;
    /** Effective address for Load/Store. */
    uint64_t memAddr = 0;
};

/** Encode an annotation tag + payload into Inst::target. */
constexpr uint64_t
encodeAnnot(uint32_t tag, uint32_t payload)
{
    return (static_cast<uint64_t>(tag) << 32) | payload;
}

constexpr uint32_t annotTag(uint64_t enc) { return enc >> 32; }
constexpr uint32_t annotPayload(uint64_t enc)
{
    return static_cast<uint32_t>(enc);
}

/** True for classes the branch predictor must handle. */
constexpr bool
isControl(InstClass c)
{
    switch (c) {
      case InstClass::Branch:
      case InstClass::Jump:
      case InstClass::IndirectJump:
      case InstClass::Call:
      case InstClass::IndirectCall:
      case InstClass::Ret:
        return true;
      default:
        return false;
    }
}

} // namespace sim
} // namespace xlvm

#endif // XLVM_SIM_INST_H
