#include "sim/core.h"

#include "common/logging.h"

namespace xlvm {
namespace sim {

Core::Core(const CoreParams &p)
    : params(p),
      issueCostFp(kCycleFp / p.issueWidth),
      branchUnit(p.branchPred),
      icache(p.icache),
      dcache(p.dcache)
{
    XLVM_ASSERT(p.issueWidth > 0 && p.issueWidth <= kCycleFp,
                "unsupported issue width");
}

const PerfCounters &
Core::bucketCounters(uint32_t b) const
{
    XLVM_ASSERT(b < kMaxBuckets, "bucket out of range");
    return buckets[b];
}

PerfCounters
Core::totalCounters() const
{
    PerfCounters total;
    for (const auto &b : buckets)
        total.accumulate(b);
    return total;
}

uint64_t
Core::totalInstructions() const
{
    uint64_t n = 0;
    for (const auto &b : buckets)
        n += b.instructions;
    return n;
}

uint64_t
Core::totalCyclesFp() const
{
    uint64_t c = 0;
    for (const auto &b : buckets)
        c += b.cyclesFp;
    return c;
}

double
Core::totalCycles() const
{
    return double(totalCyclesFp()) / kCycleFp;
}

double
Core::seconds() const
{
    return totalCycles() / (params.frequencyGhz * 1e9);
}

void
Core::resetStats()
{
    for (auto &b : buckets)
        b = PerfCounters();
    icache.reset();
    dcache.reset();
    branchUnit.reset();
}

} // namespace sim
} // namespace xlvm
