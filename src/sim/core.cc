#include "sim/core.h"

#include <cstdlib>

#include "common/logging.h"
#include "sim/block_memo.h"

namespace xlvm {
namespace sim {

Core::Core(const CoreParams &p)
    : params(p),
      issueCostFp(kCycleFp / p.issueWidth),
      branchUnit(p.branchPred),
      icache(p.icache),
      dcache(p.dcache)
{
    XLVM_ASSERT(p.issueWidth > 0 && p.issueWidth <= kCycleFp,
                "unsupported issue width");
    // The env overrides are honored here (not only in the driver) so
    // benches and tests that build cores or contexts directly respect
    // XLVM_NO_SIM_MEMO / XLVM_NO_SIM_SUPERBLOCK too.
    if (p.simMemo && std::getenv("XLVM_NO_SIM_MEMO") == nullptr)
        memo_.reset(new BlockMemo(
            *this, p.simSuperblock &&
                       std::getenv("XLVM_NO_SIM_SUPERBLOCK") == nullptr));
}

Core::~Core() = default;

bool
Core::memoOnInst(const Inst &inst)
{
    return memo_->onInst(inst);
}

bool
Core::memoOnStraight(InstClass cls, uint64_t start_pc, uint32_t n,
                     uint8_t extra_lat)
{
    return memo_->onStraight(cls, start_pc, n, extra_lat);
}

bool
Core::memoSweepInst(const Inst &inst)
{
    return memo_->sweepOnInst(inst);
}

void
Core::memoSweepStraightMiss()
{
    memo_->sweepMaterialize();
}

void
Core::memoSetStream(const StreamView &view)
{
    if (memo_)
        memo_->setStream(view);
}

void
Core::consumeStream(const StreamView &view, const uint64_t *mem_addrs,
                    uint32_t n_mem)
{
    XLVM_ASSERT(!sweepArmed_, "consumeStream inside an armed sweep");
    BlockMemo::streamWalk(*this, view, 0, view.nRecs, mem_addrs, n_mem,
                          nullptr);
}

void
Core::armSampler(CycleSampleSink *s, uint64_t interval_fp)
{
    if (s == nullptr || interval_fp == 0) {
        sampleSink_ = nullptr;
        sampleIntervalFp_ = 0;
        sampleClockFp_ = 0;
        nextSampleFp_ = UINT64_MAX;
        return;
    }
    sampleSink_ = s;
    sampleIntervalFp_ = interval_fp;
    sampleClockFp_ = 0;
    nextSampleFp_ = interval_fp;
}

void
Core::sampleFire(uint64_t pc)
{
    // A single large charge (a replayed superblock, a long straight run)
    // can cross several sample points at once; deliver one sample per
    // crossed point so sample density stays proportional to modeled time
    // regardless of how the charge was batched.
    while (nextSampleFp_ <= sampleClockFp_) {
        sampleSink_->onCycleSample(nextSampleFp_, bucket, pc, sampleCtx_);
        nextSampleFp_ += sampleIntervalFp_;
    }
}

bool
Core::superblockEnabled() const
{
    return memo_ && memo_->superblockEnabled();
}

void
Core::refreshAnnotPurity()
{
    uint64_t gen = sink ? sink->annotGeneration() : 0;
    if (purityValid_ && gen == purityGeneration_)
        return;
    uint32_t mask = 0;
    if (sink) {
        for (uint32_t tag = 0; tag < 32; ++tag)
            if (!sink->annotPure(tag))
                mask |= 1u << tag;
    }
    impureTagMask_ = mask;
    memoEventsWanted_ = sink != nullptr && sink->memoEventsWanted();
    purityGeneration_ = gen;
    purityValid_ = true;
    // Purity governs which annotation deliveries a replay may elide; a
    // changed listener set invalidates every recorded block.
    if (memo_)
        memo_->invalidateEntries();
}

void
Core::memoInvalidateEntries()
{
    if (memo_)
        memo_->invalidateEntries();
}

void
Core::memoSessionBegin(uint32_t est_records)
{
    if (!memo_)
        return;
    refreshAnnotPurity();
    memo_->sessionBegin(est_records);
    memoState_ = 1;
}

void
Core::memoSessionEnd()
{
    if (!memo_)
        return;
    memo_->sessionEnd();
    if (!memo_->inSession())
        memoState_ = 0;
}

void
Core::memoBoundary()
{
    if (memoState_ != 0)
        memo_->boundary();
}

MemoStats
Core::memoStats() const
{
    return memo_ ? memo_->stats() : MemoStats();
}

SuperblockStats
Core::superblockStats() const
{
    return memo_ ? memo_->superblockStats() : SuperblockStats();
}

const PerfCounters &
Core::bucketCounters(uint32_t b) const
{
    XLVM_ASSERT(b < kMaxBuckets, "bucket out of range");
    return buckets[b];
}

PerfCounters
Core::totalCounters() const
{
    PerfCounters total;
    for (const auto &b : buckets)
        total.accumulate(b);
    return total;
}

uint64_t
Core::totalInstructions() const
{
    uint64_t n = 0;
    for (const auto &b : buckets)
        n += b.instructions;
    return n;
}

uint64_t
Core::totalCyclesFp() const
{
    uint64_t c = 0;
    for (const auto &b : buckets)
        c += b.cyclesFp;
    return c;
}

double
Core::totalCycles() const
{
    return double(totalCyclesFp()) / kCycleFp;
}

double
Core::seconds() const
{
    return totalCycles() / (params.frequencyGhz * 1e9);
}

void
Core::resetStats()
{
    for (auto &b : buckets)
        b = PerfCounters();
    icache.reset();
    dcache.reset();
    branchUnit.reset();
    // Every fingerprint a memo entry verified against (cache contents,
    // LRU clocks, predictor state) is gone; flush the table so replay
    // can never resurrect pre-reset machine state.
    if (memo_)
        memo_->flush();
}

} // namespace sim
} // namespace xlvm
