#include "sim/block_memo.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/hashmix.h"

namespace xlvm {
namespace sim {

BlockMemo::BlockMemo(Core &core) : core_(core)
{
    recRecs_.reserve(64);
    recLines_.reserve(16);
    recPht_.reserve(16);
}

void
BlockMemo::sessionBegin(uint32_t est_records)
{
    if (depth_ != 0) {
        // Nested entry (trace calls assembler). The call emission that
        // led here already dropped the outer block (Call is not
        // memoizable), but close out defensively.
        if (mode_ == Mode::Record)
            abortRecord(false);
        else if (mode_ == Mode::Skip)
            divergenceAbort(skipIdx());
    }
    ++depth_;
    mode_ = Mode::Armed;
    if (est_records)
        recRecs_.reserve(std::min<size_t>(est_records, kMaxRecs));
}

void
BlockMemo::sessionEnd()
{
    XLVM_ASSERT(depth_ > 0, "memo session underflow");
    if (mode_ == Mode::Record) {
        finalizeRecord();
    } else if (mode_ == Mode::Skip) {
        if (skipIdx() == skipEntry_->recs.size())
            applyEntry(*skipEntry_, skipKey_);
        else
            divergenceAbort(skipIdx());
    }
    --depth_;
    mode_ = Mode::Armed;
}

void
BlockMemo::boundary()
{
    if (mode_ == Mode::Record) {
        finalizeRecord();
    } else if (mode_ == Mode::Skip) {
        if (skipIdx() == skipEntry_->recs.size())
            applyEntry(*skipEntry_, skipKey_);
        else
            divergenceAbort(skipIdx());
    }
    mode_ = Mode::Armed;
}

void
BlockMemo::flush()
{
    invalidateEntries();
    stats_ = MemoStats();
}

void
BlockMemo::invalidateEntries()
{
    entries_.clear();
    liveEntries_ = 0;
    ++tableGen_;
    pred_ = nullptr;
    exitSkip();
    recRecs_.clear();
    recLines_.clear();
    recPht_.clear();
    mode_ = Mode::Armed;
}

bool
BlockMemo::impureAnnot(uint64_t encoded) const
{
    uint32_t tag = annotTag(encoded);
    if (tag >= 32)
        return true; // out-of-vocabulary: conservatively live
    return (core_.impureTagMask_ >> tag) & 1u;
}

bool
BlockMemo::onInst(const Inst &inst)
{
    switch (mode_) {
      case Mode::Skip:
        return skipInst(inst);
      case Mode::Record:
        return recordInst(inst);
      case Mode::Armed:
        return armedInst(inst);
      case Mode::Dormant:
        // An impure annotation delimits the dead block; the next
        // emission starts fresh.
        if (inst.cls == InstClass::Annot && impureAnnot(inst.target))
            mode_ = Mode::Armed;
        return false;
    }
    return false;
}

bool
BlockMemo::onStraight(InstClass cls, uint64_t start_pc, uint32_t n,
                      uint8_t extra_lat)
{
    switch (mode_) {
      case Mode::Skip:
        // The inline cursor compare in Core::consumeStraight already
        // declined: the stream diverged from the record (or ran past
        // its end). Re-step the matched prefix and fall back to live.
        divergenceAbort(skipIdx());
        return false;
      case Mode::Record:
        if (recRecs_.size() >= kMaxRecs) {
            abortRecord(true);
            return false;
        }
        recRecs_.push_back({sigStraight(cls, extra_lat, n), start_pc});
        if (!observeIcacheRun(start_pc, n))
            abortRecord(false); // cold fetch: all-hit rule failed
        return false;
      case Mode::Armed: {
        uint64_t sig = sigStraight(cls, extra_lat, n);
        if (armedLookup(sig, start_pc))
            return true;
        if (mode_ == Mode::Record) {
            recRecs_.push_back({sig, start_pc});
            if (!observeIcacheRun(start_pc, n))
                abortRecord(false);
        }
        return false;
      }
      case Mode::Dormant:
        return false;
    }
    return false;
}

bool
BlockMemo::armedInst(const Inst &inst)
{
    uint64_t sig;
    if (inst.cls == InstClass::Annot) {
        if (impureAnnot(inst.target))
            return false; // delimiter; stay armed
        sig = sigAnnot(inst.target);
    } else {
        if (!memoizableClass(inst.cls))
            return false; // cannot open a block; stay armed
        sig = sigInst(inst.cls, inst.extraLat, inst.taken);
    }
    if (armedLookup(sig, inst.pc)) {
        // Replay entered; the opening emission is rec[0], already
        // matched by verification. Memory ops still touch the dcache
        // live.
        if (inst.cls == InstClass::Load || inst.cls == InstClass::Store)
            liveDcache(inst);
        return true;
    }
    if (mode_ == Mode::Record)
        return recordInst(inst); // logs rec[0] + its observations
    return false;                // dormant (tombstone / table full)
}

bool
BlockMemo::armedLookup(uint64_t sig, uint64_t key)
{
    Entry *ep;
    if (pred_ && predGen_ == tableGen_ && pred_->nextGen == tableGen_ &&
        pred_->nextKey == key) {
        // Successor hint: the block that just completed saw this key
        // follow it last time — no hash lookup needed.
        ep = pred_->next;
    } else {
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            ++stats_.misses;
            if (entries_.size() >= kMaxEntries) {
                mode_ = Mode::Dormant;
                return false;
            }
            beginRecord(key);
            return false;
        }
        ep = &it->second;
        if (pred_ && predGen_ == tableGen_) {
            pred_->next = ep;
            pred_->nextKey = key;
            pred_->nextGen = tableGen_;
        }
    }
    Entry &e = *ep;
    if (e.tombstone) {
        ++stats_.misses;
        mode_ = Mode::Dormant;
        return false;
    }
    if (!verifyEntry(e, sig, key)) {
        // Machine state moved under the entry (icache eviction, PHT or
        // history drift, or a different opening emission): invalidate
        // and re-record against the current state.
        ++stats_.invalidations;
        ++stats_.misses;
        emitEvent(kMemoEventInvalidate, key);
        entries_.erase(key);
        --liveEntries_;
        ++tableGen_; // hints into or out of the erased entry are dead
        pred_ = nullptr;
        beginRecord(key);
        return false;
    }
    enterSkip(e, key);
    return true;
}

bool
BlockMemo::recordInst(const Inst &inst)
{
    if (inst.cls == InstClass::Annot) {
        if (impureAnnot(inst.target)) {
            finalizeRecord(); // impure annot delimits; stepped live
            return false;
        }
        if (recRecs_.size() >= kMaxRecs) {
            abortRecord(true);
            return false;
        }
        // Pure annotations perturb counters (annotations/annotCostFp)
        // and are part of the record; listeners ignore them by
        // declaration, so replay may elide the sink call.
        recRecs_.push_back({sigAnnot(inst.target), inst.pc});
        return false;
    }
    if (!memoizableClass(inst.cls)) {
        abortRecord(true); // RAS/BTB state is not fingerprinted
        return false;
    }
    if (recRecs_.size() >= kMaxRecs) {
        abortRecord(true);
        return false;
    }
    recRecs_.push_back({sigInst(inst.cls, inst.extraLat, inst.taken),
                        inst.pc});
    if (!observeIcacheRun(inst.pc, 1)) {
        abortRecord(false); // cold fetch: re-record once lines are warm
        return false;
    }
    switch (inst.cls) {
      case InstClass::Load:
      case InstClass::Store:
        observeDcache(inst.cls, inst.memAddr);
        break;
      case InstClass::Branch:
        observeBranch(inst.pc);
        break;
      default:
        break;
    }
    return false;
}

bool
BlockMemo::skipInst(const Inst &inst)
{
    // Reached only when the inline cursor compare in Core::consume
    // declined: an impure annotation, a signature/pc mismatch, or a
    // stream that ran past the record's end.
    Entry &e = *skipEntry_;
    const size_t idx = skipIdx();
    if (inst.cls == InstClass::Annot && impureAnnot(inst.target)) {
        // Delimiter mid-replay: a complete match applies the entry, a
        // short one diverges. Either way the annotation steps live with
        // fully caught-up counters and the next emission re-arms.
        if (idx == e.recs.size())
            applyEntry(e, skipKey_);
        else
            divergenceAbort(idx);
        mode_ = Mode::Armed;
        return false;
    }
    // Mismatch, or the recorded path was a proper prefix of this one.
    divergenceAbort(idx);
    return false;
}

void
BlockMemo::beginRecord(uint64_t key)
{
    mode_ = Mode::Record;
    recKey_ = key;
    recRecs_.clear();
    recLines_.clear();
    recPht_.clear();
    startCounters_ = core_.buckets[core_.bucket];
    recPreGhr_ = core_.branchUnit.gshare.ghr;
    recWeight_ = 0;
    recDcacheMisses_ = 0;
    recLoadPenaltyFp_ = 0;
    emitEvent(kMemoEventMiss, key);
}

void
BlockMemo::finalizeRecord()
{
    mode_ = Mode::Armed;
    if (recRecs_.empty())
        return; // consecutive delimiters: nothing to store

    const GsharePredictor &g = core_.branchUnit.gshare;

    Entry e;
    e.recs.assign(recRecs_.begin(), recRecs_.end());
    e.lines.assign(recLines_.begin(), recLines_.end());
    // Replay re-stamps lines oldest-touch first so the final per-set
    // MRU way matches stepping.
    std::sort(e.lines.begin(), e.lines.end(),
              [](const IcacheTouch &a, const IcacheTouch &b) {
                  return a.lastTouchOff < b.lastTouchOff;
              });
    e.pht.assign(recPht_.begin(), recPht_.end());
    for (PhtTouch &t : e.pht)
        t.post = g.pht[t.idx];
    e.preGhr = recPreGhr_;
    e.postGhr = g.ghr;
    e.icacheWeight = recWeight_;
    e.fillGen = core_.icache.nMisses;

    // The delta is the bucket movement across the block minus the
    // dcache-dependent parts, which replay re-applies live.
    const PerfCounters &cur = core_.buckets[core_.bucket];
    PerfCounters d;
    d.instructions = cur.instructions - startCounters_.instructions;
    d.cyclesFp =
        cur.cyclesFp - startCounters_.cyclesFp - recLoadPenaltyFp_;
    d.branches = cur.branches - startCounters_.branches;
    d.condBranches = cur.condBranches - startCounters_.condBranches;
    d.mispredicts = cur.mispredicts - startCounters_.mispredicts;
    d.loads = cur.loads - startCounters_.loads;
    d.stores = cur.stores - startCounters_.stores;
    d.icacheMisses = cur.icacheMisses - startCounters_.icacheMisses;
    d.dcacheMisses =
        cur.dcacheMisses - startCounters_.dcacheMisses - recDcacheMisses_;
    d.annotations = cur.annotations - startCounters_.annotations;
    e.delta = d;

    auto it = entries_.find(recKey_);
    if (it == entries_.end()) {
        it = entries_.emplace(recKey_, std::move(e)).first;
        ++liveEntries_;
    } else {
        it->second = std::move(e); // defensive; lookup precludes this
    }
    pred_ = &it->second;
    predGen_ = tableGen_;
    ++stats_.blocksCached;
}

void
BlockMemo::abortRecord(bool tombstone)
{
    mode_ = Mode::Dormant;
    if (tombstone && entries_.size() < 2 * kMaxEntries) {
        Entry t;
        t.tombstone = true;
        entries_[recKey_] = std::move(t);
    }
    recRecs_.clear();
    recLines_.clear();
    recPht_.clear();
}

bool
BlockMemo::verifyEntry(Entry &e, uint64_t first_sig, uint64_t first_pc)
{
    const MemoRec &r0 = e.recs[0];
    if (r0.sig != first_sig || r0.pc != first_pc)
        return false;
    const GsharePredictor &g = core_.branchUnit.gshare;
    if (g.ghr != e.preGhr)
        return false;
    for (const PhtTouch &t : e.pht)
        if (g.pht[t.idx] != t.pre)
            return false;
    // Footprint check: lines leave the icache only through miss-driven
    // fills, so an unchanged miss count since the last verification
    // proves every line is still resident. Only after intervening
    // misses is the per-line scan needed (and the generation restamped).
    const Cache &ic = core_.icache;
    if (ic.nMisses != e.fillGen) {
        for (const IcacheTouch &t : e.lines)
            if (!ic.linePresent(t.line))
                return false;
        e.fillGen = ic.nMisses;
    }
    return true;
}

void
BlockMemo::applyEntry(Entry &e, uint64_t key)
{
    core_.buckets[core_.bucket].accumulate(e.delta);

    // icache: all probes hit (footprint verified present), so replay is
    // pure bookkeeping: per line, final LRU stamp and per-set MRU way;
    // globally, the use clock and hit counter advance by the block's
    // probe count. Stamps wrap with the uint32 clock exactly as
    // stepping would.
    Cache &ic = core_.icache;
    uint32_t preClock = ic.useClock;
    for (const IcacheTouch &t : e.lines) {
        uint32_t set = static_cast<uint32_t>(t.line) & (ic.numSets - 1);
        uint64_t tag = t.line >> 1;
        Cache::Way *base = &ic.ways_[set * ic.numWays];
        for (uint32_t w = 0; w < ic.numWays; ++w) {
            if (base[w].valid && base[w].tag == tag) {
                base[w].lastUse = preClock + t.lastTouchOff;
                ic.mru_[set] = uint8_t(w);
                break;
            }
        }
    }
    ic.useClock = preClock + e.icacheWeight;
    ic.nHits += e.icacheWeight;

    GsharePredictor &g = core_.branchUnit.gshare;
    for (const PhtTouch &t : e.pht)
        g.pht[t.idx] = t.post;
    g.ghr = e.postGhr;

    e.divergences = 0;
    ++stats_.hits;
    stats_.replayedInstructions += e.delta.instructions;
    stats_.replayedCyclesFp += e.delta.cyclesFp;
    emitEvent(kMemoEventHit, key);
    pred_ = &e;
    predGen_ = tableGen_;
    exitSkip();
}

void
BlockMemo::divergenceAbort(size_t matched)
{
    Entry &e = *skipEntry_;
    // Before re-stepping: hooks must pass through, and the inline
    // cursor must be dead so re-stepped emissions are not re-verified.
    mode_ = Mode::Dormant;
    exitSkip();
    stepRecords(e.recs.data(), matched);
    ++stats_.invalidations;
    emitEvent(kMemoEventInvalidate, skipKey_);
    if (++e.divergences >= kMaxDivergences) {
        entries_.erase(skipKey_);
        --liveEntries_;
        ++tableGen_; // hints into or out of the erased entry are dead
        pred_ = nullptr;
    }
}

void
BlockMemo::enterSkip(Entry &e, uint64_t key)
{
    mode_ = Mode::Skip;
    skipEntry_ = &e;
    skipKey_ = key;
    // rec[0] is the opening emission, already matched by verifyEntry.
    core_.memoSkipCur_ = e.recs.data() + 1;
    core_.memoSkipEnd_ = e.recs.data() + e.recs.size();
}

void
BlockMemo::exitSkip()
{
    skipEntry_ = nullptr;
    core_.memoSkipCur_ = nullptr;
    core_.memoSkipEnd_ = nullptr;
}

void
BlockMemo::stepRecords(const MemoRec *recs, size_t n)
{
    PerfCounters &pc = core_.buckets[core_.bucket];
    const CoreParams &params = core_.params;
    for (size_t i = 0; i < n; ++i) {
        const MemoRec &r = recs[i];
        const uint64_t kind = r.sig & (3ull << 62);
        if (kind == kSigKindAnnot) {
            // Pure by construction: counters, no sink delivery.
            ++pc.annotations;
            pc.cyclesFp += params.annotCostFp;
            continue;
        }
        const InstClass cls = InstClass((r.sig >> 50) & 0xf);
        const uint8_t lat = uint8_t((r.sig >> 54) & 0xff);
        if (kind == kSigKindStraight) {
            // Mode is Dormant here, so this passes the memo hook.
            core_.consumeStraight(cls, r.pc, uint32_t(r.sig), lat);
            continue;
        }
        ++pc.instructions;
        uint64_t cost = core_.issueCostFp + uint64_t(lat) * kCycleFp;
        if (!core_.icache.access(r.pc)) {
            ++pc.icacheMisses;
            cost += params.icacheMissPenalty * kCycleFp;
        }
        cost += Core::classCostFp(cls);
        switch (cls) {
          case InstClass::Load:
            ++pc.loads; // dcache access already happened live
            break;
          case InstClass::Store:
            ++pc.stores;
            break;
          case InstClass::Branch: {
            ++pc.branches;
            ++pc.condBranches;
            const bool taken = (r.sig >> 49) & 1;
            if (!core_.branchUnit.gshare.predictAndUpdate(r.pc, taken)) {
                ++pc.mispredicts;
                cost += params.mispredictPenalty * kCycleFp;
            }
            break;
          }
          case InstClass::Jump:
            ++pc.branches; // direct: always predicted
            break;
          default:
            break;
        }
        pc.cyclesFp += cost;
    }
}

bool
BlockMemo::observeIcacheRun(uint64_t start_pc, uint32_t n)
{
    const uint64_t lineBytes = core_.icache.lineBytes();
    uint64_t p = start_pc;
    const uint64_t end = start_pc + 4ull * n;
    while (p < end) {
        uint64_t lineEnd = (p / lineBytes + 1) * lineBytes;
        uint32_t k = uint32_t((std::min(lineEnd, end) - p) / 4);
        if (!touchLine(p, k))
            return false;
        p += 4ull * k;
    }
    return true;
}

bool
BlockMemo::touchLine(uint64_t addr, uint32_t weight)
{
    const Cache &ic = core_.icache;
    const uint64_t line = addr >> ic.lineShift;
    recWeight_ += weight;
    for (IcacheTouch &t : recLines_) {
        if (t.line == line) {
            t.lastTouchOff = recWeight_;
            return true;
        }
    }
    // New footprint line: the all-hit rule requires it be resident
    // already (the *record pass's own* probe, which follows this peek,
    // must hit too).
    if (!ic.linePresent(line))
        return false;
    recLines_.push_back({line, recWeight_});
    return true;
}

void
BlockMemo::observeBranch(uint64_t pc)
{
    const GsharePredictor &g = core_.branchUnit.gshare;
    const uint32_t idx = (mixPcHash(pc >> 2) ^ g.ghr) & g.indexMask;
    for (const PhtTouch &t : recPht_)
        if (t.idx == idx)
            return; // first-touch pre-value already captured
    recPht_.push_back({idx, g.pht[idx], 0});
}

void
BlockMemo::observeDcache(InstClass cls, uint64_t addr)
{
    if (core_.dcache.wouldMiss(addr)) {
        ++recDcacheMisses_;
        if (cls == InstClass::Load)
            recLoadPenaltyFp_ +=
                uint64_t(core_.params.dcacheMissPenalty) * kCycleFp;
    }
}

void
BlockMemo::liveDcache(const Inst &inst)
{
    PerfCounters &pc = core_.buckets[core_.bucket];
    if (!core_.dcache.access(inst.memAddr)) {
        ++pc.dcacheMisses;
        if (inst.cls == InstClass::Load)
            pc.cyclesFp +=
                uint64_t(core_.params.dcacheMissPenalty) * kCycleFp;
    }
}

void
BlockMemo::emitEvent(uint32_t tag, uint64_t key)
{
    if (core_.memoEventsWanted_ && core_.sink)
        core_.sink->onMemoEvent(tag, uint32_t(key >> 2));
}

const std::vector<MemoRec> *
BlockMemo::entryRecsForTest(uint64_t key) const
{
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second.tombstone)
        return nullptr;
    return &it->second.recs;
}

} // namespace sim
} // namespace xlvm
