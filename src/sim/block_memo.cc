#include "sim/block_memo.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/hashmix.h"

namespace xlvm {
namespace sim {

BlockMemo::BlockMemo(Core &core, bool superblock)
    : core_(core), sweepEnabled_(superblock)
{
    recRecs_.reserve(64);
    recLines_.reserve(16);
    recPht_.reserve(16);
}

void
BlockMemo::sessionBegin(uint32_t est_records)
{
    if (depth_ != 0) {
        // Nested entry (trace calls assembler). The call emission that
        // led here already dropped the outer block (Call is not
        // memoizable) and materialized any armed sweep, but close out
        // defensively.
        if (mode_ == Mode::Record)
            abortRecord(false);
        else if (mode_ == Mode::Skip)
            divergenceAbort(skipIdx());
        else if (mode_ == Mode::Sweep)
            sweepMaterialize();
    }
    ++depth_;
    mode_ = Mode::Armed;
    if (est_records)
        recRecs_.reserve(std::min<size_t>(est_records, kMaxRecs));
    tryArmSweep();
}

void
BlockMemo::sessionEnd()
{
    XLVM_ASSERT(depth_ > 0, "memo session underflow");
    if (mode_ == Mode::Sweep) {
        sweepMaterialize(); // full cursor checkpoints; partial diverges
    } else if (mode_ == Mode::Record) {
        finalizeRecord();
    } else if (mode_ == Mode::Skip) {
        if (skipIdx() == skipEntry_->recs.size())
            applyEntry(*skipEntry_, skipKey_);
        else
            divergenceAbort(skipIdx());
    }
    --depth_;
    mode_ = Mode::Armed;
    drainRestamp(); // arbitrary live stepping may follow the session
    if (depth_ == 0) {
        // The announced stream points into a program the session owned;
        // drop it so a stale view can never be armed (the executor
        // re-announces on every trace entry).
        pendingView_ = StreamView();
    }
}

void
BlockMemo::boundary()
{
    if (mode_ == Mode::Sweep) {
        sweepMaterialize(); // full cursor checkpoints; partial diverges
    } else if (mode_ == Mode::Record) {
        finalizeRecord();
    } else if (mode_ == Mode::Skip) {
        if (skipIdx() == skipEntry_->recs.size())
            applyEntry(*skipEntry_, skipKey_);
        else
            divergenceAbort(skipIdx());
    }
    mode_ = Mode::Armed;
    tryArmSweep();
}

void
BlockMemo::flush()
{
    // Deferred-but-unconsumed emissions are dropped, not materialized:
    // resetStats() wipes every counter bucket, both caches, and the
    // predictor state anyway, so consuming first then wiping is
    // indistinguishable from dropping (address translations already
    // happened eagerly at defer time).
    if (mode_ == Mode::Sweep) {
        disarmSweep();
        mode_ = Mode::Armed;
    }
    // Pending write-behind stamps predate the caller's cache wipe;
    // cancel rather than materialize (post-wipe lines won't match).
    pendingRestampSeg_ = nullptr;
    invalidateEntries();
    stats_ = MemoStats();
    sbStats_ = SuperblockStats();
}

void
BlockMemo::invalidateEntries()
{
    // Unlike flush(), invalidation (a purity change) keeps the machine
    // running: a deferred prefix must still reach the machine state, so
    // materialize before the records it would verify against die.
    if (mode_ == Mode::Sweep)
        sweepMaterialize();
    drainRestamp(); // before the segment storage below goes away
    entries_.clear();
    liveEntries_ = 0;
    ++tableGen_;
    pred_ = nullptr;
    exitSkip();
    recRecs_.clear();
    recLines_.clear();
    recPht_.clear();
    sb_.clear();
    mode_ = Mode::Armed;
}

bool
BlockMemo::impureAnnot(uint64_t encoded) const
{
    uint32_t tag = annotTag(encoded);
    if (tag >= 32)
        return true; // out-of-vocabulary: conservatively live
    return (core_.impureTagMask_ >> tag) & 1u;
}

bool
BlockMemo::onInst(const Inst &inst)
{
    switch (mode_) {
      case Mode::Skip:
        return skipInst(inst);
      case Mode::Record:
        return recordInst(inst);
      case Mode::Armed:
        return armedInst(inst);
      case Mode::Sweep:
        // sweepOnInst already checkpointed or materialized; when the
        // sweep survived (annotation checkpoint) the emission steps
        // live without opening a block-memo block.
        return false;
      case Mode::Dormant:
        // An impure annotation delimits the dead block; the next
        // emission starts fresh.
        if (inst.cls == InstClass::Annot && impureAnnot(inst.target))
            mode_ = Mode::Armed;
        return false;
    }
    return false;
}

bool
BlockMemo::onStraight(InstClass cls, uint64_t start_pc, uint32_t n,
                      uint8_t extra_lat)
{
    switch (mode_) {
      case Mode::Skip:
        // The inline cursor compare in Core::consumeStraight already
        // declined: the stream diverged from the record (or ran past
        // its end). Re-step the matched prefix and fall back to live.
        divergenceAbort(skipIdx());
        return false;
      case Mode::Record:
        if (recRecs_.size() >= kMaxRecs) {
            abortRecord(true);
            return false;
        }
        recRecs_.push_back({sigStraight(cls, extra_lat, n), start_pc});
        if (!observeIcacheRun(start_pc, n))
            abortRecord(false); // cold fetch: all-hit rule failed
        return false;
      case Mode::Armed: {
        uint64_t sig = sigStraight(cls, extra_lat, n);
        if (armedLookup(sig, start_pc))
            return true;
        if (mode_ == Mode::Record) {
            recRecs_.push_back({sig, start_pc});
            if (!observeIcacheRun(start_pc, n))
                abortRecord(false);
        }
        return false;
      }
      case Mode::Sweep: // materialized by Core::consumeStraight already
      case Mode::Dormant:
        return false;
    }
    return false;
}

bool
BlockMemo::armedInst(const Inst &inst)
{
    uint64_t sig;
    if (inst.cls == InstClass::Annot) {
        if (impureAnnot(inst.target))
            return false; // delimiter; stay armed
        sig = sigAnnot(inst.target);
    } else {
        if (!memoizableClass(inst.cls))
            return false; // cannot open a block; stay armed
        sig = sigInst(inst.cls, inst.extraLat, inst.taken);
    }
    if (armedLookup(sig, inst.pc)) {
        // Replay entered; the opening emission is rec[0], already
        // matched by verification. Memory ops still touch the dcache
        // live.
        if (inst.cls == InstClass::Load || inst.cls == InstClass::Store)
            liveDcache(inst);
        return true;
    }
    if (mode_ == Mode::Record)
        return recordInst(inst); // logs rec[0] + its observations
    return false;                // dormant (tombstone / table full)
}

bool
BlockMemo::armedLookup(uint64_t sig, uint64_t key)
{
    Entry *ep;
    if (pred_ && predGen_ == tableGen_ && pred_->nextGen == tableGen_ &&
        pred_->nextKey == key) {
        // Successor hint: the block that just completed saw this key
        // follow it last time — no hash lookup needed.
        ep = pred_->next;
    } else {
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            ++stats_.misses;
            if (entries_.size() >= kMaxEntries) {
                mode_ = Mode::Dormant;
                return false;
            }
            beginRecord(key);
            return false;
        }
        ep = &it->second;
        if (pred_ && predGen_ == tableGen_) {
            pred_->next = ep;
            pred_->nextKey = key;
            pred_->nextGen = tableGen_;
        }
    }
    Entry &e = *ep;
    if (e.tombstone) {
        ++stats_.misses;
        mode_ = Mode::Dormant;
        return false;
    }
    if (!verifyEntry(e, sig, key)) {
        // Machine state moved under the entry (icache eviction, PHT or
        // history drift, or a different opening emission): invalidate
        // and re-record against the current state.
        ++stats_.invalidations;
        ++stats_.misses;
        emitEvent(kMemoEventInvalidate, key);
        entries_.erase(key);
        --liveEntries_;
        ++tableGen_; // hints into or out of the erased entry are dead
        pred_ = nullptr;
        beginRecord(key);
        return false;
    }
    enterSkip(e, key);
    return true;
}

bool
BlockMemo::recordInst(const Inst &inst)
{
    if (inst.cls == InstClass::Annot) {
        if (impureAnnot(inst.target)) {
            finalizeRecord(); // impure annot delimits; stepped live
            return false;
        }
        if (recRecs_.size() >= kMaxRecs) {
            abortRecord(true);
            return false;
        }
        // Pure annotations perturb counters (annotations/annotCostFp)
        // and are part of the record; listeners ignore them by
        // declaration, so replay may elide the sink call.
        recRecs_.push_back({sigAnnot(inst.target), inst.pc});
        return false;
    }
    if (!memoizableClass(inst.cls)) {
        abortRecord(true); // RAS/BTB state is not fingerprinted
        return false;
    }
    if (recRecs_.size() >= kMaxRecs) {
        abortRecord(true);
        return false;
    }
    recRecs_.push_back({sigInst(inst.cls, inst.extraLat, inst.taken),
                        inst.pc});
    if (!observeIcacheRun(inst.pc, 1)) {
        abortRecord(false); // cold fetch: re-record once lines are warm
        return false;
    }
    switch (inst.cls) {
      case InstClass::Load:
      case InstClass::Store:
        observeDcache(inst.cls, inst.memAddr);
        break;
      case InstClass::Branch:
        observeBranch(inst.pc);
        break;
      default:
        break;
    }
    return false;
}

bool
BlockMemo::skipInst(const Inst &inst)
{
    // Reached only when the inline cursor compare in Core::consume
    // declined: an impure annotation, a signature/pc mismatch, or a
    // stream that ran past the record's end.
    Entry &e = *skipEntry_;
    const size_t idx = skipIdx();
    if (inst.cls == InstClass::Annot && impureAnnot(inst.target)) {
        // Delimiter mid-replay: a complete match applies the entry, a
        // short one diverges. Either way the annotation steps live with
        // fully caught-up counters and the next emission re-arms.
        if (idx == e.recs.size())
            applyEntry(e, skipKey_);
        else
            divergenceAbort(idx);
        mode_ = Mode::Armed;
        return false;
    }
    // Mismatch, or the recorded path was a proper prefix of this one.
    divergenceAbort(idx);
    return false;
}

void
BlockMemo::beginRecord(uint64_t key)
{
    mode_ = Mode::Record;
    recKey_ = key;
    recRecs_.clear();
    recLines_.clear();
    recPht_.clear();
    startCounters_ = core_.buckets[core_.bucket];
    recPreGhr_ = core_.branchUnit.gshare.ghr;
    recWeight_ = 0;
    recDcacheMisses_ = 0;
    recLoadPenaltyFp_ = 0;
    emitEvent(kMemoEventMiss, key);
}

void
BlockMemo::finalizeRecord()
{
    mode_ = Mode::Armed;
    if (recRecs_.empty())
        return; // consecutive delimiters: nothing to store

    const GsharePredictor &g = core_.branchUnit.gshare;

    Entry e;
    e.recs.assign(recRecs_.begin(), recRecs_.end());
    e.lines.assign(recLines_.begin(), recLines_.end());
    // Replay re-stamps lines oldest-touch first so the final per-set
    // MRU way matches stepping.
    std::sort(e.lines.begin(), e.lines.end(),
              [](const IcacheTouch &a, const IcacheTouch &b) {
                  return a.lastTouchOff < b.lastTouchOff;
              });
    e.pht.assign(recPht_.begin(), recPht_.end());
    for (PhtTouch &t : e.pht)
        t.post = g.pht[t.idx];
    e.preGhr = recPreGhr_;
    e.postGhr = g.ghr;
    e.icacheWeight = recWeight_;
    e.fillGen = core_.icache.nMisses;

    // The delta is the bucket movement across the block minus the
    // dcache-dependent parts, which replay re-applies live.
    const PerfCounters &cur = core_.buckets[core_.bucket];
    PerfCounters d;
    d.instructions = cur.instructions - startCounters_.instructions;
    d.cyclesFp =
        cur.cyclesFp - startCounters_.cyclesFp - recLoadPenaltyFp_;
    d.branches = cur.branches - startCounters_.branches;
    d.condBranches = cur.condBranches - startCounters_.condBranches;
    d.mispredicts = cur.mispredicts - startCounters_.mispredicts;
    d.loads = cur.loads - startCounters_.loads;
    d.stores = cur.stores - startCounters_.stores;
    d.icacheMisses = cur.icacheMisses - startCounters_.icacheMisses;
    d.dcacheMisses =
        cur.dcacheMisses - startCounters_.dcacheMisses - recDcacheMisses_;
    d.annotations = cur.annotations - startCounters_.annotations;
    e.delta = d;

    auto it = entries_.find(recKey_);
    if (it == entries_.end()) {
        it = entries_.emplace(recKey_, std::move(e)).first;
        ++liveEntries_;
    } else {
        it->second = std::move(e); // defensive; lookup precludes this
    }
    pred_ = &it->second;
    predGen_ = tableGen_;
    ++stats_.blocksCached;
}

void
BlockMemo::abortRecord(bool tombstone)
{
    mode_ = Mode::Dormant;
    if (tombstone && entries_.size() < 2 * kMaxEntries) {
        Entry t;
        t.tombstone = true;
        entries_[recKey_] = std::move(t);
    }
    recRecs_.clear();
    recLines_.clear();
    recPht_.clear();
}

bool
BlockMemo::verifyEntry(Entry &e, uint64_t first_sig, uint64_t first_pc)
{
    const MemoRec &r0 = e.recs[0];
    if (r0.sig != first_sig || r0.pc != first_pc)
        return false;
    const GsharePredictor &g = core_.branchUnit.gshare;
    if (g.ghr != e.preGhr)
        return false;
    for (const PhtTouch &t : e.pht)
        if (g.pht[t.idx] != t.pre)
            return false;
    // Footprint check: lines leave the icache only through miss-driven
    // fills, so an unchanged miss count since the last verification
    // proves every line is still resident. Only after intervening
    // misses is the per-line scan needed (and the generation restamped).
    const Cache &ic = core_.icache;
    if (ic.nMisses != e.fillGen) {
        for (const IcacheTouch &t : e.lines)
            if (!ic.linePresent(t.line))
                return false;
        e.fillGen = ic.nMisses;
    }
    return true;
}

void
BlockMemo::restampLine(IcacheTouch &t, uint32_t pre_clock)
{
    Cache &ic = core_.icache;
    uint32_t set = static_cast<uint32_t>(t.line) & (ic.numSets - 1);
    uint64_t tag = t.line >> 1;
    Cache::Way *base = &ic.ways_[set * ic.numWays];
    // Hinted way first: on steady replay the line sits where it sat
    // last time, so this avoids the associativity scan. A stale hint
    // only costs the scan; the tag compare keeps exactness.
    uint32_t w = t.wayHint;
    if (w < ic.numWays && base[w].valid && base[w].tag == tag) {
        base[w].lastUse = pre_clock + t.lastTouchOff;
        ic.mru_[set] = uint8_t(w);
        return;
    }
    for (w = 0; w < ic.numWays; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lastUse = pre_clock + t.lastTouchOff;
            ic.mru_[set] = uint8_t(w);
            t.wayHint = uint8_t(w);
            break;
        }
    }
}

void
BlockMemo::applyEntry(Entry &e, uint64_t key)
{
    drainRestamp(); // defensive: block replay restamps must come after
    core_.buckets[core_.bucket].accumulate(e.delta);
    // The whole replayed block lands as one charge; the sample clock
    // advances by the same delta stepping would have charged, attributed
    // to the block-opening pc.
    if (core_.sampleIntervalFp_ != 0)
        core_.sampleTick(e.delta.cyclesFp, key);

    // icache: all probes hit (footprint verified present), so replay is
    // pure bookkeeping: per line, final LRU stamp and per-set MRU way;
    // globally, the use clock and hit counter advance by the block's
    // probe count. Stamps wrap with the uint32 clock exactly as
    // stepping would.
    Cache &ic = core_.icache;
    uint32_t preClock = ic.useClock;
    for (IcacheTouch &t : e.lines)
        restampLine(t, preClock);
    ic.useClock = preClock + e.icacheWeight;
    ic.nHits += e.icacheWeight;

    GsharePredictor &g = core_.branchUnit.gshare;
    for (const PhtTouch &t : e.pht) {
        if (g.pht[t.idx] != t.post) {
            g.pht[t.idx] = t.post;
            ++g.writeGen;
        }
    }
    g.ghr = e.postGhr;

    e.divergences = 0;
    ++stats_.hits;
    stats_.replayedInstructions += e.delta.instructions;
    stats_.replayedCyclesFp += e.delta.cyclesFp;
    emitEvent(kMemoEventHit, key);
    pred_ = &e;
    predGen_ = tableGen_;
    exitSkip();
}

void
BlockMemo::divergenceAbort(size_t matched)
{
    Entry &e = *skipEntry_;
    // Before re-stepping: hooks must pass through, and the inline
    // cursor must be dead so re-stepped emissions are not re-verified.
    mode_ = Mode::Dormant;
    exitSkip();
    stepRecords(e.recs.data(), matched);
    ++stats_.invalidations;
    emitEvent(kMemoEventInvalidate, skipKey_);
    if (++e.divergences >= kMaxDivergences) {
        entries_.erase(skipKey_);
        --liveEntries_;
        ++tableGen_; // hints into or out of the erased entry are dead
        pred_ = nullptr;
    }
}

void
BlockMemo::enterSkip(Entry &e, uint64_t key)
{
    mode_ = Mode::Skip;
    skipEntry_ = &e;
    skipKey_ = key;
    // rec[0] is the opening emission, already matched by verifyEntry.
    core_.memoSkipCur_ = e.recs.data() + 1;
    core_.memoSkipEnd_ = e.recs.data() + e.recs.size();
}

void
BlockMemo::exitSkip()
{
    skipEntry_ = nullptr;
    core_.memoSkipCur_ = nullptr;
    core_.memoSkipEnd_ = nullptr;
}

void
BlockMemo::stepRecords(const MemoRec *recs, size_t n)
{
    PerfCounters &pc = core_.buckets[core_.bucket];
    const CoreParams &params = core_.params;
    for (size_t i = 0; i < n; ++i) {
        const MemoRec &r = recs[i];
        const uint64_t kind = r.sig & (3ull << 62);
        if (kind == kSigKindAnnot) {
            // Pure by construction: counters, no sink delivery.
            ++pc.annotations;
            pc.cyclesFp += params.annotCostFp;
            if (core_.sampleIntervalFp_ != 0)
                core_.sampleTick(params.annotCostFp, r.pc);
            continue;
        }
        const InstClass cls = InstClass((r.sig >> 50) & 0xf);
        const uint8_t lat = uint8_t((r.sig >> 54) & 0xff);
        if (kind == kSigKindStraight) {
            // Mode is Dormant here, so this passes the memo hook.
            core_.consumeStraight(cls, r.pc, uint32_t(r.sig), lat);
            continue;
        }
        ++pc.instructions;
        uint64_t cost = core_.issueCostFp + uint64_t(lat) * kCycleFp;
        if (!core_.icache.access(r.pc)) {
            ++pc.icacheMisses;
            cost += params.icacheMissPenalty * kCycleFp;
        }
        cost += Core::classCostFp(cls);
        switch (cls) {
          case InstClass::Load:
            ++pc.loads; // dcache access already happened live
            break;
          case InstClass::Store:
            ++pc.stores;
            break;
          case InstClass::Branch: {
            ++pc.branches;
            ++pc.condBranches;
            const bool taken = (r.sig >> 49) & 1;
            if (!core_.branchUnit.gshare.predictAndUpdate(r.pc, taken)) {
                ++pc.mispredicts;
                cost += params.mispredictPenalty * kCycleFp;
            }
            break;
          }
          case InstClass::Jump:
            ++pc.branches; // direct: always predicted
            break;
          default:
            break;
        }
        pc.cyclesFp += cost;
        if (core_.sampleIntervalFp_ != 0)
            core_.sampleTick(cost, r.pc);
    }
}

bool
BlockMemo::observeIcacheRun(uint64_t start_pc, uint32_t n)
{
    const uint64_t lineBytes = core_.icache.lineBytes();
    uint64_t p = start_pc;
    const uint64_t end = start_pc + 4ull * n;
    while (p < end) {
        uint64_t lineEnd = (p / lineBytes + 1) * lineBytes;
        uint32_t k = uint32_t((std::min(lineEnd, end) - p) / 4);
        if (!touchLine(p, k))
            return false;
        p += 4ull * k;
    }
    return true;
}

bool
BlockMemo::touchLine(uint64_t addr, uint32_t weight)
{
    const Cache &ic = core_.icache;
    const uint64_t line = addr >> ic.lineShift;
    recWeight_ += weight;
    for (IcacheTouch &t : recLines_) {
        if (t.line == line) {
            t.lastTouchOff = recWeight_;
            return true;
        }
    }
    // New footprint line: the all-hit rule requires it be resident
    // already (the *record pass's own* probe, which follows this peek,
    // must hit too).
    if (!ic.linePresent(line))
        return false;
    recLines_.push_back({line, recWeight_});
    return true;
}

void
BlockMemo::observeBranch(uint64_t pc)
{
    const GsharePredictor &g = core_.branchUnit.gshare;
    const uint32_t idx = (mixPcHash(pc >> 2) ^ g.ghr) & g.indexMask;
    for (const PhtTouch &t : recPht_)
        if (t.idx == idx)
            return; // first-touch pre-value already captured
    recPht_.push_back({idx, g.pht[idx], 0});
}

void
BlockMemo::observeDcache(InstClass cls, uint64_t addr)
{
    if (core_.dcache.wouldMiss(addr)) {
        ++recDcacheMisses_;
        if (cls == InstClass::Load)
            recLoadPenaltyFp_ +=
                uint64_t(core_.params.dcacheMissPenalty) * kCycleFp;
    }
}

void
BlockMemo::liveDcache(const Inst &inst)
{
    PerfCounters &pc = core_.buckets[core_.bucket];
    if (!core_.dcache.access(inst.memAddr)) {
        ++pc.dcacheMisses;
        if (inst.cls == InstClass::Load) {
            pc.cyclesFp +=
                uint64_t(core_.params.dcacheMissPenalty) * kCycleFp;
            if (core_.sampleIntervalFp_ != 0)
                core_.sampleTick(uint64_t(core_.params.dcacheMissPenalty) *
                                     kCycleFp,
                                 inst.pc);
        }
    }
}

// ---- superblock sweep --------------------------------------------------

void
BlockMemo::setStream(const StreamView &view)
{
    pendingView_ = view;
    if (mode_ != Mode::Sweep)
        return; // sessionBegin / the next boundary arms
    // A new trace is entered mid-session (cross-trace jump, bridge
    // transfer): close out the old stream's iteration. The boundary that
    // precedes a cross-trace jump leaves the cursor at zero, so the
    // common case disarms without a spurious divergence.
    if (core_.sweep_.cursor == 0 && core_.sweep_.addrs.empty()) {
        disarmSweep();
        mode_ = Mode::Armed;
    } else {
        sweepMaterialize();
    }
    tryArmSweep();
}

void
BlockMemo::drainRestamp()
{
    if (!pendingRestampSeg_)
        return;
    SbSegment &sg = *pendingRestampSeg_;
    pendingRestampSeg_ = nullptr;
    for (IcacheTouch &t : sg.lines)
        restampLine(t, pendingRestampClock_);
}

void
BlockMemo::tryArmSweep()
{
    tryArmSweepInner();
    // No sweep to absorb emissions: stepping (live icache traffic) can
    // follow immediately, so the write-behind stamps must land now.
    if (mode_ != Mode::Sweep)
        drainRestamp();
}

void
BlockMemo::tryArmSweepInner()
{
    if (!sweepEnabled_ || depth_ == 0 || mode_ == Mode::Sweep)
        return;
    const StreamView &v = pendingView_;
    if (!v.eligible || v.nRecs == 0)
        return;
    auto it = sb_.find(v.codePc);
    if (it == sb_.end()) {
        if (sb_.size() >= kMaxStreams)
            return;
        it = sb_.emplace(v.codePc, SbStream()).first;
        it->second.streamId = v.streamId;
    } else if (it->second.streamId != v.streamId) {
        // The trace at this codePc was re-lowered (tier promotion):
        // every recorded segment indexes a dead record stream.
        ++sbStats_.invalidations;
        drainRestamp(); // the pending segment may live in this stream
        it->second = SbStream();
        it->second.streamId = v.streamId;
    }
    if (it->second.tombstone)
        return; // divergence-prone stream: block memo handles it
    curStream_ = &it->second;
    view_ = v;
    SweepCtx &s = core_.sweep_;
    s.sigs = v.sigs;
    s.pcOff = v.pcOff;
    s.cursor = 0;
    s.nRecs = v.nRecs;
    s.codePc = v.codePc;
    s.addrs.clear();
    segStart_ = 0;
    segIdx_ = 0;
    memBase_ = 0;
    mode_ = Mode::Sweep;
    core_.sweepArmed_ = true;
}

void
BlockMemo::disarmSweep()
{
    core_.sweepArmed_ = false;
    SweepCtx &s = core_.sweep_;
    s.sigs = nullptr;
    s.pcOff = nullptr;
    s.cursor = 0;
    s.nRecs = 0;
    s.addrs.clear();
    curStream_ = nullptr;
    segStart_ = 0;
    segIdx_ = 0;
    memBase_ = 0;
}

bool
BlockMemo::sweepOnInst(const Inst &inst)
{
    SweepCtx &s = core_.sweep_;
    if (inst.cls == InstClass::Annot && s.cursor < s.nRecs &&
        s.sigs[s.cursor] == sigAnnot(inst.target) &&
        view_.codePc + view_.pcOff[s.cursor] == inst.pc) {
        // The baked annotation record the cursor expects, arriving live:
        // an impure annotation the emitter (correctly) declined to
        // defer. Checkpoint the deferred span behind it, consume the
        // record, and let the annotation step live — instrumentation
        // observes it with fully caught-up counters, exactly as the
        // block-memo delimiter rule delivers it.
        sweepCheckpoint();
        ++s.cursor;
        segStart_ = s.cursor;
        drainRestamp(); // the annotation is about to step live
        return false;
    }
    // Out-of-band emission (guard flip, GC, blackhole, raw consume):
    // catch the machine state up, then step it live.
    sweepMaterialize();
    drainRestamp();
    return false;
}

void
BlockMemo::sweepMaterialize()
{
    SweepCtx &s = core_.sweep_;
    if (s.cursor == s.nRecs) {
        // The whole stream already matched — this is an out-of-band
        // emission *after* a complete iteration (a Finish trace's
        // blackhole work, a session end). Land the final segment and
        // hand over to the block-memo path cleanly.
        sweepCheckpoint();
        ++sbStats_.iterations;
        disarmSweep();
        mode_ = Mode::Armed;
        return;
    }
    // Mid-stream divergence: the deferred prefix of the current segment
    // is re-stepped through one batched walk (machine state is exactly
    // the pre-segment state — deferral touched nothing), then stepping
    // resumes live until the next delimiter re-arms.
    drainRestamp();
    streamWalk(core_, view_, segStart_, s.cursor, s.addrs.data(),
               uint32_t(s.addrs.size()), nullptr);
    ++sbStats_.divergences;
    emitEvent(kMemoEventSuperblockDiverge, view_.codePc);
    if (curStream_ && !curStream_->tombstone &&
        ++curStream_->divergences >= kMaxDivergences)
        curStream_->tombstone = true;
    disarmSweep();
    mode_ = Mode::Dormant;
}

void
BlockMemo::sweepCheckpoint()
{
    SweepCtx &s = core_.sweep_;
    const uint32_t start = segStart_;
    const uint32_t end = s.cursor;
    const uint32_t nAddrs = uint32_t(s.addrs.size());
    if (end > start) {
        // Whatever the segment table decides below, the deferred span
        // [start, end) was never consumed: its counters MUST reach the
        // machine exactly once. The cached paths do that via
        // applySegment / recordSegment; every other path falls through
        // to an uncached live walk.
        bool handled = false;
        if (curStream_ && !curStream_->tombstone) {
            SbStream &st = *curStream_;
            if (segIdx_ < st.segs.size()) {
                SbSegment &sg = st.segs[segIdx_];
                if (sg.startIdx == start && sg.endIdx == end &&
                    sg.memBase == memBase_ && sg.memCount == nAddrs) {
                    if (sg.valid && verifySegment(sg)) {
                        applySegment(sg);
                    } else {
                        // Fingerprint moved (icache eviction,
                        // PHT/history drift) or the last record pass
                        // hit a cold fetch: re-record in place against
                        // the current state.
                        if (sg.valid)
                            ++sbStats_.invalidations;
                        ++sbStats_.misses;
                        drainRestamp(); // record pass walks live
                        recordSegment(sg);
                    }
                    ++segIdx_;
                    handled = true;
                } else {
                    // Shape drift: checkpoints landed elsewhere this
                    // iteration (purity or delimiter pattern changed).
                    // Restart the stream's segment map from scratch;
                    // the rest of this iteration records nothing.
                    ++sbStats_.invalidations;
                    drainRestamp(); // pending may point into segs
                    st.segs.clear();
                    st.divergences = 0;
                    curStream_ = nullptr;
                }
            } else if (st.segs.size() >= kMaxSegments) {
                st.tombstone = true;
            } else {
                ++sbStats_.misses;
                drainRestamp(); // emplace may reallocate segs
                st.segs.emplace_back();
                SbSegment &sg = st.segs.back();
                sg.startIdx = start;
                sg.endIdx = end;
                sg.memBase = memBase_;
                sg.memCount = nAddrs;
                recordSegment(sg);
                ++segIdx_;
                handled = true;
            }
        }
        if (!handled) {
            drainRestamp();
            streamWalk(core_, view_, start, end, s.addrs.data(), nAddrs,
                       nullptr);
        }
    }
    memBase_ += nAddrs;
    s.addrs.clear();
    segStart_ = end;
}

bool
BlockMemo::verifySegment(SbSegment &sg)
{
    const GsharePredictor &g = core_.branchUnit.gshare;
    if (g.ghr != sg.preGhr)
        return false;
    // writeGen shortcut: a stable segment (every PHT touch saw pre ==
    // post) whose generation stamp still matches cannot have drifted —
    // nothing wrote the table since our last replay. Same O(1) witness
    // the fillGen check plays for the icache footprint below.
    if (!(sg.phtStable && g.writeGen == sg.phtGen)) {
        for (const PhtTouch &t : sg.pht)
            if (g.pht[t.idx] != t.pre)
                return false;
    }
    // Footprint check: same fill-generation shortcut as verifyEntry.
    const Cache &ic = core_.icache;
    if (ic.nMisses != sg.fillGen) {
        for (const IcacheTouch &t : sg.lines)
            if (!ic.linePresent(t.line))
                return false;
        sg.fillGen = ic.nMisses;
    }
    return true;
}

void
BlockMemo::applySegment(SbSegment &sg)
{
    PerfCounters &pc = core_.buckets[core_.bucket];
    const uint64_t preCyclesFp = pc.cyclesFp;
    pc.accumulate(sg.delta);

    // icache/history replay: same bookkeeping as applyEntry, but the
    // per-line LRU restamp is write-behind (see pendingRestampSeg_): a
    // repeat hit on the segment already pending just slides the pending
    // clock forward — its previous stamps were never observable.
    Cache &ic = core_.icache;
    uint32_t preClock = ic.useClock;
    if (pendingRestampSeg_ != &sg) {
        drainRestamp();
        pendingRestampSeg_ = &sg;
    }
    pendingRestampClock_ = preClock;
    ic.useClock = preClock + sg.icacheWeight;
    ic.nHits += sg.icacheWeight;

    GsharePredictor &g = core_.branchUnit.gshare;
    // Stable segment + unchanged generation: every post equals the
    // value already in the table, so the write loop is a no-op.
    if (!(sg.phtStable && g.writeGen == sg.phtGen)) {
        for (const PhtTouch &t : sg.pht) {
            if (g.pht[t.idx] != t.post) {
                g.pht[t.idx] = t.post;
                ++g.writeGen;
            }
        }
    }
    g.ghr = sg.postGhr;
    sg.phtGen = g.writeGen;

    // The segment's Load/Store records touch the dcache live, in
    // emission order, against the addresses captured at defer time.
    const SweepCtx &s = core_.sweep_;
    for (uint32_t j = 0; j < sg.memCount; ++j) {
        const uint64_t sig = view_.sigs[view_.memIdx[sg.memBase + j]];
        const InstClass cls = InstClass((sig >> 50) & 0xf);
        if (!core_.dcache.access(s.addrs[j])) {
            ++pc.dcacheMisses;
            if (cls == InstClass::Load)
                pc.cyclesFp +=
                    uint64_t(core_.params.dcacheMissPenalty) * kCycleFp;
        }
    }

    // One sample-clock advance for the whole replayed segment (delta plus
    // live dcache penalties), attributed to the trace's code address.
    if (core_.sampleIntervalFp_ != 0)
        core_.sampleTick(pc.cyclesFp - preCyclesFp, view_.codePc);

    if (curStream_)
        curStream_->divergences = 0;
    ++sbStats_.hits;
    sbStats_.replayedInstructions += sg.delta.instructions;
    sbStats_.replayedCyclesFp += sg.delta.cyclesFp;
    emitEvent(kMemoEventSuperblockHit, view_.codePc);
}

void
BlockMemo::recordSegment(SbSegment &sg)
{
    // Observation scratch is shared with block-memo Record mode; the
    // two modes are mutually exclusive by construction.
    recLines_.clear();
    recPht_.clear();
    recWeight_ = 0;
    recDcacheMisses_ = 0;
    recLoadPenaltyFp_ = 0;
    startCounters_ = core_.buckets[core_.bucket];
    recPreGhr_ = core_.branchUnit.gshare.ghr;
    sbRecordOk_ = true;

    const SweepCtx &s = core_.sweep_;
    streamWalk(core_, view_, sg.startIdx, sg.endIdx, s.addrs.data(),
               uint32_t(s.addrs.size()), this);

    sg.valid = sbRecordOk_;
    if (!sg.valid) {
        // Cold fetch: the all-hit rule failed. The live walk above still
        // advanced the machine exactly; retry the record once the lines
        // are warm.
        sg.lines.clear();
        sg.pht.clear();
        return;
    }
    const GsharePredictor &g = core_.branchUnit.gshare;
    sg.lines.assign(recLines_.begin(), recLines_.end());
    std::sort(sg.lines.begin(), sg.lines.end(),
              [](const IcacheTouch &a, const IcacheTouch &b) {
                  return a.lastTouchOff < b.lastTouchOff;
              });
    sg.pht.assign(recPht_.begin(), recPht_.end());
    sg.phtStable = true;
    for (PhtTouch &t : sg.pht) {
        t.post = g.pht[t.idx];
        if (t.post != t.pre)
            sg.phtStable = false;
    }
    sg.phtGen = g.writeGen;
    sg.preGhr = recPreGhr_;
    sg.postGhr = g.ghr;
    sg.icacheWeight = recWeight_;
    sg.fillGen = core_.icache.nMisses;

    const PerfCounters &cur = core_.buckets[core_.bucket];
    PerfCounters d;
    d.instructions = cur.instructions - startCounters_.instructions;
    d.cyclesFp =
        cur.cyclesFp - startCounters_.cyclesFp - recLoadPenaltyFp_;
    d.branches = cur.branches - startCounters_.branches;
    d.condBranches = cur.condBranches - startCounters_.condBranches;
    d.mispredicts = cur.mispredicts - startCounters_.mispredicts;
    d.loads = cur.loads - startCounters_.loads;
    d.stores = cur.stores - startCounters_.stores;
    d.icacheMisses = cur.icacheMisses - startCounters_.icacheMisses;
    d.dcacheMisses =
        cur.dcacheMisses - startCounters_.dcacheMisses - recDcacheMisses_;
    d.annotations = cur.annotations - startCounters_.annotations;
    sg.delta = d;
    ++sbStats_.segmentsCached;
}

void
BlockMemo::streamWalk(Core &core, const StreamView &view, uint32_t from,
                      uint32_t to, const uint64_t *addrs, uint32_t n_addrs,
                      BlockMemo *rec)
{
    PerfCounters &pc = core.buckets[core.bucket];
    const CoreParams &params = core.params;
    const uint64_t lineBytes = core.icache.lineBytes();
    const uint64_t preCyclesFp = pc.cyclesFp;

    // Coalesced icache accounting: contiguous fetch runs accumulate and
    // flush through the same per-line accessN chunks consumeStraight
    // uses. Cache::accessN makes n same-line probes equivalent to n
    // individual accesses (hit/miss counts, LRU stamp, use clock, MRU
    // way), so chunking the union of adjacent records is bit-identical
    // to per-record probing; miss penalties land in the same cyclesFp
    // counter either way. Record-mode observation (the linePresent peek
    // of the all-hit rule) happens before each chunk's probe, exactly as
    // the per-record observe hooks run before the live access.
    uint64_t runStart = 0, runEnd = 0;
    auto flushRun = [&]() {
        uint64_t p = runStart;
        while (p < runEnd) {
            uint64_t lineEnd = (p / lineBytes + 1) * lineBytes;
            uint32_t k = uint32_t((std::min(lineEnd, runEnd) - p) / 4);
            if (rec && rec->sbRecordOk_ && !rec->touchLine(p, k))
                rec->sbRecordOk_ = false;
            if (!core.icache.accessN(p, k)) {
                ++pc.icacheMisses;
                pc.cyclesFp += params.icacheMissPenalty * kCycleFp;
            }
            p += 4ull * k;
        }
    };
    auto probe = [&](uint64_t p, uint32_t n) {
        if (runEnd != runStart && p == runEnd) {
            runEnd += 4ull * n;
            return;
        }
        if (runEnd != runStart)
            flushRun();
        runStart = p;
        runEnd = p + 4ull * n;
    };

    uint32_t m = 0; // cursor into addrs
    for (uint32_t i = from; i < to; ++i) {
        const uint64_t sig = view.sigs[i];
        const uint64_t p = view.codePc + view.pcOff[i];
        const uint64_t kind = sig & (3ull << 62);
        if (kind == kSigKindAnnot) {
            // Counters only — no icache probe, no sink delivery (pure
            // by the caller's contract; see Core::consumeStream).
            ++pc.annotations;
            pc.cyclesFp += params.annotCostFp;
            continue;
        }
        const InstClass cls = InstClass((sig >> 50) & 0xf);
        const uint8_t lat = uint8_t((sig >> 54) & 0xff);
        if (kind == kSigKindStraight) {
            const uint32_t n = uint32_t(sig);
            pc.instructions += n;
            pc.cyclesFp += uint64_t(n) * (core.issueCostFp +
                                          uint64_t(lat) * kCycleFp +
                                          Core::classCostFp(cls));
            probe(p, n);
            continue;
        }
        ++pc.instructions;
        probe(p, 1);
        uint64_t cost = core.issueCostFp + uint64_t(lat) * kCycleFp +
                        Core::classCostFp(cls);
        switch (cls) {
          case InstClass::Load: {
            ++pc.loads;
            const uint64_t a = addrs[m++];
            if (rec && rec->sbRecordOk_)
                rec->observeDcache(cls, a);
            if (!core.dcache.access(a)) {
                ++pc.dcacheMisses;
                cost += params.dcacheMissPenalty * kCycleFp;
            }
            break;
          }
          case InstClass::Store: {
            ++pc.stores;
            const uint64_t a = addrs[m++];
            if (rec && rec->sbRecordOk_)
                rec->observeDcache(cls, a);
            if (!core.dcache.access(a))
                ++pc.dcacheMisses; // write-allocate; latency hidden
            break;
          }
          case InstClass::Branch: {
            ++pc.branches;
            ++pc.condBranches;
            const bool taken = (sig >> 49) & 1;
            if (rec && rec->sbRecordOk_)
                rec->observeBranch(p);
            if (!core.branchUnit.gshare.predictAndUpdate(p, taken)) {
                ++pc.mispredicts;
                cost += params.mispredictPenalty * kCycleFp;
            }
            break;
          }
          case InstClass::Jump:
            ++pc.branches; // direct: always predicted, state-free
            break;
          default:
            break; // single-record arithmetic (mul/div/fp*)
        }
        pc.cyclesFp += cost;
    }
    flushRun();
    // The batched walk advances the sample clock once, by exactly what
    // it charged, attributed to the stream's code address.
    if (core.sampleIntervalFp_ != 0)
        core.sampleTick(pc.cyclesFp - preCyclesFp, view.codePc);
    XLVM_ASSERT(m == n_addrs, "stream walk address count mismatch");
    (void)n_addrs;
}

size_t
BlockMemo::streamCount() const
{
    size_t n = 0;
    for (const auto &kv : sb_)
        if (!kv.second.tombstone)
            ++n;
    return n;
}

void
BlockMemo::emitEvent(uint32_t tag, uint64_t key)
{
    if (core_.memoEventsWanted_ && core_.sink)
        core_.sink->onMemoEvent(tag, uint32_t(key >> 2));
}

const std::vector<MemoRec> *
BlockMemo::entryRecsForTest(uint64_t key) const
{
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second.tombstone)
        return nullptr;
    return &it->second.recs;
}

} // namespace sim
} // namespace xlvm
