/**
 * @file
 * Shared 64->32 bit mixing for predictor/memo table indices.
 *
 * The gshare predictor and the block-memoization layer must agree on the
 * exact PHT index computation (the memo layer records which PHT slots a
 * block touches and re-derives the same indices at replay time), so the
 * mix lives in one place.
 */

#ifndef XLVM_SIM_HASHMIX_H
#define XLVM_SIM_HASHMIX_H

#include <cstdint>

namespace xlvm {
namespace sim {

/** Cheap 64->32 mixing for table indices. */
inline uint32_t
mixPcHash(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 29;
    return static_cast<uint32_t>(x);
}

} // namespace sim
} // namespace xlvm

#endif // XLVM_SIM_HASHMIX_H
