/**
 * @file
 * Branch prediction models.
 *
 * Conditional branches use a gshare predictor; indirect jumps/calls use a
 * tagged BTB indexed with history; returns use a return-address stack.
 * Interpreter dispatch loops emit genuine IndirectJump instructions whose
 * targets are the real handler PCs, so dispatch (un)predictability is an
 * emergent property of the bytecode stream, as in the paper's discussion
 * of Rohou et al. [34].
 */

#ifndef XLVM_SIM_BRANCH_PRED_H
#define XLVM_SIM_BRANCH_PRED_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/inst.h"

namespace xlvm {
namespace sim {

/** Configuration for the combined predictor. */
struct BranchPredParams
{
    uint32_t gshareBits = 14;     ///< log2 of PHT entries
    uint32_t historyBits = 12;    ///< global history length
    uint32_t btbEntries = 4096;   ///< indirect-target buffer entries
    uint32_t btbTagBits = 10;     ///< partial tags in the BTB
    uint32_t rasDepth = 32;       ///< return-address stack depth
    bool useHistoryForBtb = true; ///< hash history into BTB index
};

/** gshare conditional-branch predictor. */
class GsharePredictor
{
  public:
    explicit GsharePredictor(const BranchPredParams &p);

    /** Predict + update; returns true if the prediction was correct. */
    bool predictAndUpdate(uint64_t pc, bool taken);

    uint32_t history() const { return ghr; }

    /** Restore the freshly constructed state (counters and history). */
    void reset();

  private:
    friend class BlockMemo;

    std::vector<uint8_t> pht; ///< 2-bit saturating counters
    /**
     * Bumped whenever any PHT counter changes value (saturated updates
     * leave it untouched). Replay layers use it as an O(1) "no PHT
     * drift since" witness, the same trick Cache::nMisses plays for
     * footprint verification.
     */
    uint64_t writeGen = 0;
    uint32_t indexMask;
    uint32_t historyMask;
    uint32_t ghr = 0;
};

/** History-hashed, partially tagged indirect-target buffer. */
class IndirectPredictor
{
  public:
    explicit IndirectPredictor(const BranchPredParams &p);

    /**
     * Predict + update for an indirect jump/call.
     * @param pc       branch address
     * @param target   actual target
     * @param history  conditional-branch global history (for hashing)
     * @return true if the predicted target matched.
     */
    bool predictAndUpdate(uint64_t pc, uint64_t target, uint32_t history);

    /** Invalidate the table and clear the path history. */
    void reset();

  private:
    struct Entry
    {
        uint32_t tag = 0;
        uint64_t target = 0;
        bool valid = false;
    };

    std::vector<Entry> table;
    uint32_t indexMask;
    uint32_t tagMask;
    bool useHistory;
    /**
     * Path history of recent indirect targets; hashing it into the index
     * lets the table learn repeating dispatch sequences (this is the
     * essence of ITTAGE-style correlation and why regular bytecode
     * streams predict well, per Rohou et al.).
     */
    uint32_t pathHistory = 0;
};

/** Return-address stack. */
class ReturnStack
{
  public:
    explicit ReturnStack(const BranchPredParams &p);

    void pushCall(uint64_t return_pc);

    /** Predict + pop for a return; true if prediction correct. */
    bool predictReturn(uint64_t actual_return_pc);

    void reset() { top = 0; }

  private:
    std::vector<uint64_t> stack;
    size_t top = 0;   ///< number of valid entries (clamped to depth)
    size_t depth;
};

/**
 * Front-end predictor bundle: routes each control instruction to the
 * right sub-predictor and reports mispredictions.
 */
class BranchUnit
{
  public:
    explicit BranchUnit(const BranchPredParams &p = BranchPredParams());

    /**
     * Process one control-flow instruction.
     * @return true if it was mispredicted.
     */
    bool process(const Inst &inst);

    /** Forget all learned state (history, PHT, BTB, RAS). */
    void reset();

  private:
    friend class BlockMemo;

    GsharePredictor gshare;
    IndirectPredictor indirect;
    ReturnStack ras;
};

} // namespace sim
} // namespace xlvm

#endif // XLVM_SIM_BRANCH_PRED_H
