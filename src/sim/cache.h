/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * Used for the L1 instruction and data caches of the modeled core. Only
 * hit/miss behaviour is modeled (no MSHRs or bandwidth); the Core charges
 * a fixed partially-overlapped penalty per miss.
 */

#ifndef XLVM_SIM_CACHE_H
#define XLVM_SIM_CACHE_H

#include <cstdint>
#include <vector>

namespace xlvm {
namespace sim {

struct CacheParams
{
    uint32_t sizeBytes = 32 * 1024;
    uint32_t lineBytes = 64;
    uint32_t ways = 8;
};

/** Simple LRU set-associative cache. */
class Cache
{
  public:
    explicit Cache(const CacheParams &p = CacheParams());

    /** Access one address; returns true on hit (and updates state). */
    bool access(uint64_t addr);

    uint64_t hits() const { return nHits; }
    uint64_t misses() const { return nMisses; }

    void resetStats() { nHits = nMisses = 0; }

  private:
    struct Way
    {
        uint64_t tag = ~0ull;
        uint32_t lastUse = 0;
        bool valid = false;
    };

    std::vector<Way> ways_;
    uint32_t numSets;
    uint32_t numWays;
    uint32_t lineShift;
    uint32_t useClock = 0;
    uint64_t nHits = 0;
    uint64_t nMisses = 0;
};

} // namespace sim
} // namespace xlvm

#endif // XLVM_SIM_CACHE_H
