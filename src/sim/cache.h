/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * Used for the L1 instruction and data caches of the modeled core. Only
 * hit/miss behaviour is modeled (no MSHRs or bandwidth); the Core charges
 * a fixed partially-overlapped penalty per miss.
 *
 * Two hot-path shortcuts keep the per-instruction cost low without
 * changing any observable state: a per-set MRU pointer is probed before
 * the associative scan, and accessN() folds a run of same-line probes
 * (straight-line fetch) into one lookup. Both are bit-identical to the
 * naive probe loop.
 */

#ifndef XLVM_SIM_CACHE_H
#define XLVM_SIM_CACHE_H

#include <cstdint>
#include <vector>

namespace xlvm {
namespace sim {

struct CacheParams
{
    uint32_t sizeBytes = 32 * 1024;
    uint32_t lineBytes = 64;
    uint32_t ways = 8;
};

/** Simple LRU set-associative cache. */
class Cache
{
  public:
    explicit Cache(const CacheParams &p = CacheParams());

    /** Access one address; returns true on hit (and updates state). */
    bool access(uint64_t addr) { return accessN(addr, 1); }

    /**
     * Access the same line @p n times back to back (consecutive fetches
     * from one straight-line block). State and counters end up exactly
     * as n individual access() calls would leave them: at most the first
     * probe can miss, the LRU clock advances by n, and the line's
     * last-use stamp is the final clock value.
     * @return true if the first probe hit.
     */
    bool accessN(uint64_t addr, uint32_t n);

    uint64_t hits() const { return nHits; }
    uint64_t misses() const { return nMisses; }

    uint32_t lineBytes() const { return 1u << lineShift; }

    /** Would access(addr) miss right now? Pure peek, no state change. */
    bool wouldMiss(uint64_t addr) const
    {
        return !linePresent(addr >> lineShift);
    }

    void resetStats() { nHits = nMisses = 0; }

    /** Full reset: counters, contents, LRU clock, MRU pointers. */
    void reset();

  private:
    friend class BlockMemo;

    struct Way
    {
        uint64_t tag = ~0ull;
        uint32_t lastUse = 0;
        bool valid = false;
    };

    bool linePresent(uint64_t line) const;

    std::vector<Way> ways_;
    /** Per-set index of the most recently hit/filled way. */
    std::vector<uint8_t> mru_;
    uint32_t numSets;
    uint32_t numWays;
    uint32_t lineShift;
    uint32_t useClock = 0;
    uint64_t nHits = 0;
    uint64_t nMisses = 0;
};

} // namespace sim
} // namespace xlvm

#endif // XLVM_SIM_CACHE_H
