#include "sim/branch_pred.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/hashmix.h"

namespace xlvm {
namespace sim {

namespace {

/** Cheap 64->32 mixing for table indices (shared with BlockMemo). */
inline uint32_t
mix(uint64_t x)
{
    return mixPcHash(x);
}

} // namespace

GsharePredictor::GsharePredictor(const BranchPredParams &p)
    : pht(1u << p.gshareBits, 1), // weakly not-taken
      indexMask((1u << p.gshareBits) - 1),
      historyMask((1u << p.historyBits) - 1)
{
}

bool
GsharePredictor::predictAndUpdate(uint64_t pc, bool taken)
{
    uint32_t idx = (mix(pc >> 2) ^ ghr) & indexMask;
    uint8_t &ctr = pht[idx];
    bool pred = ctr >= 2;
    if (taken && ctr < 3) {
        ++ctr;
        ++writeGen;
    } else if (!taken && ctr > 0) {
        --ctr;
        ++writeGen;
    }
    ghr = ((ghr << 1) | (taken ? 1 : 0)) & historyMask;
    return pred == taken;
}

void
GsharePredictor::reset()
{
    std::fill(pht.begin(), pht.end(), uint8_t(1)); // weakly not-taken
    ++writeGen;
    ghr = 0;
}

IndirectPredictor::IndirectPredictor(const BranchPredParams &p)
    : table(p.btbEntries),
      indexMask(p.btbEntries - 1),
      tagMask((1u << p.btbTagBits) - 1),
      useHistory(p.useHistoryForBtb)
{
    XLVM_ASSERT((p.btbEntries & (p.btbEntries - 1)) == 0,
                "btbEntries must be a power of two");
}

bool
IndirectPredictor::predictAndUpdate(uint64_t pc, uint64_t target,
                                    uint32_t history)
{
    uint32_t h = useHistory ? (history ^ pathHistory) : 0;
    uint32_t idx = (mix(pc >> 2) ^ (h * 0x9e3779b1u)) & indexMask;
    uint32_t tag = (mix(pc) >> 7) & tagMask;
    Entry &e = table[idx];
    bool correct = e.valid && e.tag == tag && e.target == target;
    e.valid = true;
    e.tag = tag;
    e.target = target;
    pathHistory = (pathHistory << 5) ^ (mix(target) & 0x7fffu);
    return correct;
}

void
IndirectPredictor::reset()
{
    std::fill(table.begin(), table.end(), Entry());
    pathHistory = 0;
}

ReturnStack::ReturnStack(const BranchPredParams &p)
    : stack(p.rasDepth, 0), depth(p.rasDepth)
{
}

void
ReturnStack::pushCall(uint64_t return_pc)
{
    if (top < depth) {
        stack[top++] = return_pc;
    } else {
        // Overflow: shift (rarely hit; depth is generous).
        for (size_t i = 1; i < depth; ++i)
            stack[i - 1] = stack[i];
        stack[depth - 1] = return_pc;
    }
}

bool
ReturnStack::predictReturn(uint64_t actual_return_pc)
{
    if (top == 0)
        return false;
    return stack[--top] == actual_return_pc;
}

BranchUnit::BranchUnit(const BranchPredParams &p)
    : gshare(p), indirect(p), ras(p)
{
}

void
BranchUnit::reset()
{
    gshare.reset();
    indirect.reset();
    ras.reset();
}

bool
BranchUnit::process(const Inst &inst)
{
    switch (inst.cls) {
      case InstClass::Branch:
        return !gshare.predictAndUpdate(inst.pc, inst.taken);
      case InstClass::Jump:
        return false; // direct, always predicted once decoded
      case InstClass::IndirectJump:
        return !indirect.predictAndUpdate(inst.pc, inst.target,
                                          gshare.history());
      case InstClass::Call:
        ras.pushCall(inst.pc + 4);
        return false;
      case InstClass::IndirectCall:
        ras.pushCall(inst.pc + 4);
        return !indirect.predictAndUpdate(inst.pc, inst.target,
                                          gshare.history());
      case InstClass::Ret:
        // Inst::target carries the actual return address.
        return !ras.predictReturn(inst.target);
      default:
        return false;
    }
}

} // namespace sim
} // namespace xlvm
