/**
 * @file
 * Synthetic code-address allocation.
 *
 * Every emitter site (interpreter dispatch loop, each bytecode handler,
 * each AOT runtime function, each JIT-compiled trace) owns a region of
 * synthetic PC space so that branch predictors and the I-cache observe a
 * stable, realistic code layout. Regions are handed out by a simple
 * monotonic allocator with distinct "segments" per code kind, mimicking
 * the separation of the interpreter binary, the C runtime, and the JIT
 * code arena in a real PyPy process.
 */

#ifndef XLVM_SIM_CODE_SPACE_H
#define XLVM_SIM_CODE_SPACE_H

#include <cstdint>

#include "common/logging.h"

namespace xlvm {
namespace sim {

/** Code segments laid out like a real VM process image. */
enum class CodeSegment : uint8_t
{
    Interp,  ///< translated interpreter text
    Runtime, ///< AOT-compiled runtime library text
    JitArena ///< dynamically generated trace code
};

class CodeSpace
{
  public:
    CodeSpace()
        : interpCursor(0x00400000ull),
          runtimeCursor(0x00a00000ull),
          jitCursor(0x7f0000000000ull)
    {
    }

    /**
     * Allocate a code region of @p num_insts synthetic instructions
     * (4 bytes each), 16-byte aligned.
     */
    uint64_t
    alloc(CodeSegment seg, uint32_t num_insts)
    {
        uint64_t bytes = (uint64_t(num_insts) * 4 + 15) & ~15ull;
        uint64_t *cursor = nullptr;
        switch (seg) {
          case CodeSegment::Interp:
            cursor = &interpCursor;
            break;
          case CodeSegment::Runtime:
            cursor = &runtimeCursor;
            break;
          case CodeSegment::JitArena:
            cursor = &jitCursor;
            break;
        }
        uint64_t base = *cursor;
        *cursor += bytes;
        return base;
    }

    uint64_t jitCodeBytes() const { return jitCursor - 0x7f0000000000ull; }

  private:
    uint64_t interpCursor;
    uint64_t runtimeCursor;
    uint64_t jitCursor;
};

} // namespace sim
} // namespace xlvm

#endif // XLVM_SIM_CODE_SPACE_H
