/**
 * @file
 * Basic-block cost memoization for the simulated core.
 *
 * JIT trace execution re-emits the same straight-line instruction
 * sequences millions of times. Within one such basic block, the sim-layer
 * work (icache probes, gshare updates, cycle accounting) is a pure
 * function of a small machine-state fingerprint: the gshare history plus
 * the PHT slots the block's branches index, and the presence of the
 * block's icache lines. BlockMemo records a block once — the emission
 * signature stream plus that fingerprint plus the resulting counter
 * delta — and on later executions verifies the fingerprint, checks each
 * emission against the recorded signature (one packed 64-bit compare per
 * emission), and applies the precomputed delta instead of stepping
 * Core::consume per instruction. All counters and all machine state
 * (cache LRU stamps, PHT counters, global history) end up bit-identical
 * to stepping; the 13 golden snapshots gate this with memoization both
 * on and off.
 *
 * What keeps this exact rather than approximate:
 *  - Blocks are delimited by executor-announced boundaries (trace
 *    back-edges, session entry/exit) and by *impure* annotations — tags
 *    some bus listener actually consumes — which are always stepped
 *    live, so instrumentation observes an identical event stream with
 *    fully caught-up counters. Pure annotations still perturb counters
 *    (annotations / annotCostFp) and are therefore part of the record.
 *  - Data-cache state is never memoized: Load/Store records perform the
 *    real dcache access at replay (addresses vary run to run under the
 *    addr_map virtualization and with GC recycling), charging miss
 *    counts/penalties live; everything address-independent sits in the
 *    delta. This also makes GC-free invalidation vacuous: no simulated
 *    data address is ever baked into an entry.
 *  - Entries store their icache footprint under an all-hit rule: a block
 *    is only cached if every instruction fetch hit at record time, and
 *    only replayed if every footprint line is still present, so replay
 *    performs no fills and LRU stamps can be applied exactly.
 *  - Blocks containing Call/IndirectCall/Ret/IndirectJump are never
 *    memoized (RAS/BTB state is not fingerprinted); such start pcs are
 *    tombstoned so they are not re-recorded every iteration.
 *  - Any mismatch mid-replay (a guard going the other way, an unexpected
 *    impure annotation) triggers a divergence abort: the already-matched
 *    prefix is re-stepped through a tight sweep over the recorded
 *    record stream, after which stepping resumes live. Counters stay
 *    exact.
 *
 * Trace-level superblock replay (PR 8) lifts the same machinery from
 * basic blocks to whole trace iterations. When the executor announces a
 * trace's compile-time baked SimStream (Core::memoSetStream) and the
 * stream is memo-eligible, the layer arms a *deferred sweep*: emitters
 * match each emission against the baked record with one packed compare
 * and a cursor bump — no Core::consume call at all — capturing only the
 * translated Load/Store addresses. Impure annotations act as
 * checkpoints: the deferred span behind them (a "segment" — exactly a
 * PR-5 block, but located by position instead of hashing) is applied
 * from its per-stream segment record (fingerprint verify + counter
 * delta + live dcache walk over the captured addresses) or recorded
 * through one batched streamWalk pass, and the annotation then steps
 * live with fully caught-up counters. A stream whose body has no impure
 * annotations replays as a single segment per iteration. Any
 * non-matching emission (guard flip, GC, blackhole) materializes the
 * deferred prefix through the same batched walk and falls back to the
 * block-memo path, so counters and machine state stay bit-identical to
 * stepping in every case. DESIGN.md §9 documents the purity and
 * fingerprint rules.
 */

#ifndef XLVM_SIM_BLOCK_MEMO_H
#define XLVM_SIM_BLOCK_MEMO_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/core.h"

namespace xlvm {
namespace sim {

/**
 * Memoization telemetry tags, delivered out of band through
 * AnnotSink::onMemoEvent (never as Inst emissions, so counters are
 * unperturbed). Mirrored by xlayer::AnnotTag; a static_assert in
 * xlayer/bus.h keeps the two vocabularies aligned.
 */
constexpr uint32_t kMemoEventHit = 16;
constexpr uint32_t kMemoEventInvalidate = 17;
constexpr uint32_t kMemoEventMiss = 18;
constexpr uint32_t kMemoEventSuperblockHit = 21;
constexpr uint32_t kMemoEventSuperblockDiverge = 22;

/** Aggregate memoization counters (exported via metrics schema v3). */
struct MemoStats
{
    uint64_t blocksCached = 0;  ///< entries successfully recorded
    uint64_t hits = 0;          ///< blocks replayed from an entry
    uint64_t misses = 0;        ///< armed lookups without a usable entry
    uint64_t invalidations = 0; ///< verify failures + divergence aborts
    uint64_t replayedInstructions = 0;
    uint64_t replayedCyclesFp = 0; ///< in kCycleFp units

    double
    hitRate() const
    {
        uint64_t total = hits + misses;
        return total ? double(hits) / double(total) : 0.0;
    }
};

/** Aggregate superblock counters (exported via metrics schema v5). */
struct SuperblockStats
{
    uint64_t segmentsCached = 0; ///< segment records successfully built
    uint64_t hits = 0;           ///< segments replayed from a record
    uint64_t misses = 0;         ///< segments that had to be (re)recorded
    uint64_t invalidations = 0;  ///< fingerprint/shape verify failures
    uint64_t divergences = 0;    ///< mid-stream materializations
    uint64_t iterations = 0;     ///< trace iterations swept end to end
    uint64_t replayedInstructions = 0;
    uint64_t replayedCyclesFp = 0; ///< in kCycleFp units

    double
    hitRate() const
    {
        uint64_t total = hits + misses;
        return total ? double(hits) / double(total) : 0.0;
    }
};

class BlockMemo
{
  public:
    explicit BlockMemo(Core &core, bool superblock = true);

    /**
     * Bracket a memoizable execution region (one TraceExecutor::run).
     * Sessions nest (trace-calls-assembler re-enters run()); the memo
     * layer is active whenever the depth is nonzero.
     * @param est_records  reserve hint from the lowered program's baked
     *                     SimStream (0 = unknown).
     */
    void sessionBegin(uint32_t est_records = 0);
    void sessionEnd();

    /** Block boundary inside a session (trace back-edge). */
    void boundary();

    /** Drop every entry and all statistics (Core::resetStats). */
    void flush();

    /** Drop entries/tombstones but keep statistics (purity changes). */
    void invalidateEntries();

    const MemoStats &stats() const { return stats_; }
    const SuperblockStats &superblockStats() const { return sbStats_; }

    /** True when the superblock sweep layer was enabled at build time. */
    bool superblockEnabled() const { return sweepEnabled_; }

    /**
     * Announce the baked stream of the trace about to run; arming
     * happens at the next session begin / boundary. A sweep armed
     * mid-iteration (cross-trace jump, bridge transfer) is closed out
     * first. See Core::memoSetStream.
     */
    void setStream(const StreamView &view);

    /**
     * Sweep catch-up, called from Core's hot path when an emission
     * reaches consume()/consumeStraight() while a sweep is armed.
     * sweepOnInst() checkpoints at a matching annotation record (the
     * annotation then steps live) and materializes on any mismatch;
     * the return mirrors onInst (always false today: the triggering
     * emission itself always steps live).
     */
    bool sweepOnInst(const Inst &inst);
    void sweepMaterialize();

    /**
     * One batched pass over baked records [from, to) of @p view:
     * Core::consumeStream's engine, also used for segment recording
     * (@p rec non-null) and divergence materialization. @p addrs /
     * @p n_addrs are the live Load/Store addresses of the range, in
     * record order. Bit-identical to stepping the records one by one.
     */
    static void streamWalk(Core &core, const StreamView &view,
                           uint32_t from, uint32_t to,
                           const uint64_t *addrs, uint32_t n_addrs,
                           BlockMemo *rec);

    /** Live entries (excluding tombstones); test/report helper. */
    size_t entryCount() const { return liveEntries_; }

    /** Live superblock streams (excluding tombstones); test helper. */
    size_t streamCount() const;

    /**
     * Recorded emission stream of the live entry opening at simulated
     * pc @p key, or null. Tests use this to prove the compile-time
     * baked SimStream (jit/lower.h) equals what live recording
     * observes, record for record.
     */
    const std::vector<MemoRec> *entryRecsForTest(uint64_t key) const;

    bool inSession() const { return depth_ != 0; }

    /**
     * Hot-path filters, called by Core::consume / consumeStraight while
     * a session is active. Return true when the emission was fully
     * consumed by the memo layer (replay path); false when the caller
     * must step it normally (record / pass-through paths).
     */
    bool onInst(const Inst &inst);
    bool onStraight(InstClass cls, uint64_t start_pc, uint32_t n,
                    uint8_t extra_lat);

    // ---- signature packing ------------------------------------------
    // The packers live in sim/core.h (memoSig*) so Core's hot path can
    // verify replayed emissions inline; these aliases keep the
    // BlockMemo:: spellings tests and callers use.
    static constexpr uint64_t kSigKindInst = kMemoSigKindInst;
    static constexpr uint64_t kSigKindAnnot = kMemoSigKindAnnot;
    static constexpr uint64_t kSigKindStraight = kMemoSigKindStraight;

    static constexpr uint64_t
    sigInst(InstClass cls, uint8_t extra_lat, bool taken)
    {
        return memoSigInst(cls, extra_lat, taken);
    }

    static constexpr uint64_t
    sigStraight(InstClass cls, uint8_t extra_lat, uint32_t n)
    {
        return memoSigStraight(cls, extra_lat, n);
    }

    /** @param encoded  Inst::target of an Annot (encodeAnnot result). */
    static constexpr uint64_t
    sigAnnot(uint64_t encoded)
    {
        return memoSigAnnot(encoded);
    }

  private:
    enum class Mode : uint8_t
    {
        Armed,   ///< at a block start: next emission decides hit/record
        Record,  ///< logging a new entry while stepping live
        Skip,    ///< replaying a verified entry
        Dormant, ///< pass-through until the next delimiter
        Sweep,   ///< deferred sweep armed over a baked stream
    };

    /** One icache line of a block's footprint. */
    struct IcacheTouch
    {
        uint64_t line = 0;
        /** Cumulative probe count at the line's last touch. */
        uint32_t lastTouchOff = 0;
        /** Way the line sat in at the last replay — a hint only (the
         *  line may migrate); replay validates the tag and rescans on
         *  mismatch, so a stale hint costs a scan, never exactness. */
        uint8_t wayHint = 0;
    };

    /** One gshare PHT slot the block's branches index. */
    struct PhtTouch
    {
        uint32_t idx = 0;
        uint8_t pre = 0;  ///< counter value at block entry
        uint8_t post = 0; ///< counter value at block exit
    };

    struct Entry
    {
        std::vector<MemoRec> recs;
        std::vector<IcacheTouch> lines; ///< sorted by lastTouchOff
        std::vector<PhtTouch> pht;
        PerfCounters delta; ///< dcache-dependent parts excluded
        uint32_t preGhr = 0;
        uint32_t postGhr = 0;
        uint32_t icacheWeight = 0; ///< total icache probes in the block
        /**
         * icache miss count at the footprint's last verification. Lines
         * leave the cache only through miss-driven fills, so an
         * unchanged count proves the footprint is still resident
         * without walking it (one compare instead of a set scan per
         * line).
         */
        uint64_t fillGen = 0;
        /**
         * Successor hint: the entry opening at @ref nextKey that
         * followed this block the last time it completed. Steady-state
         * loops revisit blocks in a fixed order, so the hint replaces
         * the hash lookup. Valid only while @ref nextGen equals the
         * table generation (any erase bumps it — unordered_map values
         * are pointer-stable under insert, not under erase).
         */
        Entry *next = nullptr;
        uint64_t nextKey = 0;
        uint64_t nextGen = 0;
        uint8_t divergences = 0;
        bool tombstone = false;
    };

    /**
     * One superblock segment: the deferred span between two checkpoints
     * (impure annotations / stream boundaries) of one baked stream —
     * exactly a PR-5 block, but addressed by record position instead of
     * by opening pc, so replay lookup is a vector index. The record
     * stream itself is *not* stored: stream identity (streamId) plus the
     * [startIdx, endIdx) range pins it.
     */
    struct SbSegment
    {
        uint32_t startIdx = 0;
        uint32_t endIdx = 0;
        /** First index into StreamView::memIdx / count of Load/Store
         *  records inside the segment (their addresses replay live). */
        uint32_t memBase = 0;
        uint32_t memCount = 0;
        std::vector<IcacheTouch> lines; ///< sorted by lastTouchOff
        std::vector<PhtTouch> pht;
        PerfCounters delta; ///< dcache-dependent parts excluded
        uint32_t preGhr = 0;
        uint32_t postGhr = 0;
        uint32_t icacheWeight = 0;
        uint64_t fillGen = 0; ///< see Entry::fillGen
        /**
         * GsharePredictor::writeGen right after this segment's last
         * record/apply. Together with phtStable it gives O(1) PHT
         * verification: unchanged generation proves the slots still
         * hold this segment's post values, and a stable segment's post
         * values ARE its pre values.
         */
        uint64_t phtGen = 0;
        /** True when every PHT touch has pre == post (all this
         *  segment's branch counters were already saturated). */
        bool phtStable = false;
        /** False until a record pass satisfies the all-hit rule. */
        bool valid = false;
    };

    /** Per-trace superblock state, keyed by the trace's codePc. */
    struct SbStream
    {
        uint64_t streamId = 0;
        /** Segments in checkpoint order; grown as iterations complete. */
        std::vector<SbSegment> segs;
        uint8_t divergences = 0;
        bool tombstone = false;
    };

    // Bounds: generous for real traces, hard stops for pathological
    // streams (the GC scan loop overflows and tombstones, by design).
    static constexpr size_t kMaxRecs = 512;
    static constexpr size_t kMaxEntries = 4096;
    static constexpr uint8_t kMaxDivergences = 8;
    static constexpr size_t kMaxStreams = 1024;
    static constexpr size_t kMaxSegments = 128;

    static bool
    memoizableClass(InstClass cls)
    {
        switch (cls) {
          case InstClass::IndirectJump:
          case InstClass::Call:
          case InstClass::IndirectCall:
          case InstClass::Ret:
            return false;
          default:
            return true;
        }
    }

    bool armedInst(const Inst &inst);
    bool recordInst(const Inst &inst);
    bool skipInst(const Inst &inst);

    /**
     * Armed-mode table consult for the block-opening emission.
     * @return true when a verified entry was entered (mode is now Skip
     *         with the opening emission already matched); false when the
     *         caller must step the emission (mode is Record or Dormant).
     */
    bool armedLookup(uint64_t sig, uint64_t key);

    void beginRecord(uint64_t key);
    void finalizeRecord();
    void abortRecord(bool tombstone);

    bool verifyEntry(Entry &e, uint64_t first_sig, uint64_t first_pc);
    void applyEntry(Entry &e, uint64_t key);
    /** Re-stamp one verified-present line's LRU/MRU state (way-hinted). */
    void restampLine(IcacheTouch &t, uint32_t pre_clock);
    /** Materialize the pending write-behind icache restamp, if any.
     *  Must run before any live icache access or segment-storage
     *  mutation; a no-op (one null check) when nothing is pending. */
    void drainRestamp();
    /** tryArmSweep body; the wrapper drains the pending restamp when
     *  arming fails (live stepping may follow immediately). */
    void tryArmSweepInner();
    void divergenceAbort(size_t matched);

    /** Enter/leave Skip mode, keeping Core's inline cursor in sync. */
    void enterSkip(Entry &e, uint64_t key);
    void exitSkip();

    /** Count of records already matched while in Skip mode. */
    size_t
    skipIdx() const
    {
        return size_t(core_.memoSkipCur_ - skipEntry_->recs.data());
    }

    /** Re-step recorded emissions [0, n) (tight sweep; no dcache). */
    void stepRecords(const MemoRec *recs, size_t n);

    /** Mirror of Core::consumeStraight's icache chunk walk. */
    bool observeIcacheRun(uint64_t start_pc, uint32_t n);
    bool touchLine(uint64_t addr, uint32_t weight);
    void observeBranch(uint64_t pc);
    void observeDcache(InstClass cls, uint64_t addr);

    /** The live dcache access of a replayed Load/Store record. */
    void liveDcache(const Inst &inst);

    void emitEvent(uint32_t tag, uint64_t key);

    bool impureAnnot(uint64_t encoded) const;

    // ---- superblock sweep internals ---------------------------------

    /** Arm a deferred sweep over pendingView_ if possible (eligible
     *  stream, layer enabled, stream not tombstoned, in session). */
    void tryArmSweep();

    /** Drop the armed cursor and per-iteration sweep state. */
    void disarmSweep();

    /**
     * Close out the deferred segment [segStart_, cursor): apply its
     * per-stream record (fingerprint verified), re-record it through one
     * batched walk, or invalidate the stream on shape drift. Advances
     * the segment bookkeeping either way.
     */
    void sweepCheckpoint();

    bool verifySegment(SbSegment &sg);
    void applySegment(SbSegment &sg);
    void recordSegment(SbSegment &sg);

    Core &core_;
    Mode mode_ = Mode::Armed;
    uint32_t depth_ = 0;
    MemoStats stats_;

    std::unordered_map<uint64_t, Entry> entries_;
    size_t liveEntries_ = 0;
    /** Bumped on every erase/clear; guards Entry::next and pred_. */
    uint64_t tableGen_ = 1;
    /** The last entry completed (applied or recorded); hint source. */
    Entry *pred_ = nullptr;
    uint64_t predGen_ = 0;

    // Replay state (mode Skip). The record cursor itself lives on the
    // core (memoSkipCur_/memoSkipEnd_) for the inline fast path.
    Entry *skipEntry_ = nullptr;
    uint64_t skipKey_ = 0;

    // Record scratch (mode Record), reused across blocks.
    std::vector<MemoRec> recRecs_;
    std::vector<IcacheTouch> recLines_;
    std::vector<PhtTouch> recPht_;
    PerfCounters startCounters_;
    uint64_t recKey_ = 0;
    uint32_t recPreGhr_ = 0;
    uint32_t recWeight_ = 0;
    uint64_t recDcacheMisses_ = 0;
    uint64_t recLoadPenaltyFp_ = 0;

    // Superblock sweep state (mode Sweep). The deferred cursor itself
    // lives on the core (Core::sweep_) for the emitter fast path; the
    // record scratch above is shared with Record mode (the two modes are
    // mutually exclusive).
    bool sweepEnabled_ = false;
    SuperblockStats sbStats_;
    std::unordered_map<uint64_t, SbStream> sb_; ///< by trace codePc
    /** The stream the executor last announced (may not be armed). */
    StreamView pendingView_;
    /** The armed stream (valid only in mode Sweep). */
    StreamView view_;
    /** sb_ entry of the armed stream (values are pointer-stable under
     *  insert; sb_ is only ever cleared, never erased from, and a clear
     *  always disarms first). Null while not armed. */
    SbStream *curStream_ = nullptr;
    uint32_t segStart_ = 0; ///< record index the current segment opened at
    uint32_t segIdx_ = 0;   ///< checkpoint ordinal within the iteration
    uint32_t memBase_ = 0;  ///< memIdx position the current segment opened at
    /** All-hit flag of the in-flight segment record pass. */
    bool sbRecordOk_ = false;
    /**
     * Write-behind icache restamp. Steady-state replay of the same
     * segment overwrites the previous iteration's LRU stamps wholesale
     * (same line set, newer clocks) before anything can observe them:
     * lastUse is only read on a miss-path victim choice, and every
     * route to a live cache access drains first. So applySegment keeps
     * at most one pending stamp set and materializes it lazily via
     * drainRestamp(); consecutive same-segment hits just slide the
     * pending clock forward and skip the per-line work entirely.
     */
    SbSegment *pendingRestampSeg_ = nullptr;
    uint32_t pendingRestampClock_ = 0;
};

} // namespace sim
} // namespace xlvm

#endif // XLVM_SIM_BLOCK_MEMO_H
