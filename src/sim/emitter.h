/**
 * @file
 * Instruction-stream emission helper.
 *
 * A BlockEmitter walks a pre-allocated code region and feeds instruction
 * records into the core. Re-executing the same handler re-emits the same
 * PCs, so predictors and the I-cache see repeated code exactly as
 * hardware would.
 */

#ifndef XLVM_SIM_EMITTER_H
#define XLVM_SIM_EMITTER_H

#include <cstdint>

#include "sim/core.h"
#include "sim/inst.h"

namespace xlvm {
namespace sim {

class BlockEmitter
{
  public:
    BlockEmitter(Core &core, uint64_t base_pc)
        : core_(core), pc_(base_pc)
    {
    }

    uint64_t pc() const { return pc_; }

    // While the superblock layer has a sweep armed (Core::sweepCtx()),
    // an emission matching the baked record stream is *deferred*: one
    // packed signature compare plus a cursor bump replaces the whole
    // Core::consume call; Load/Store additionally capture their
    // translated address (translation happens here, at the same moment
    // stepping would perform it, so GC address recycling is exact). Any
    // non-matching emission falls through to the live consume path,
    // which first materializes the deferred prefix — correctness never
    // depends on the emitter, the defer is purely an accelerator. The
    // cursor is re-queried per emission: a live consume can disarm the
    // sweep at any point, so caching the pointer would dangle.

    void
    alu(uint32_t n = 1, uint8_t extra_lat = 0)
    {
        straight(InstClass::IntAlu, n, extra_lat);
    }

    void mul() { emit(InstClass::IntMul); }
    void div() { emit(InstClass::IntDiv); }
    void fpAlu(uint32_t n = 1) { straight(InstClass::FpAlu, n); }
    void fpMul() { emit(InstClass::FpMul); }
    void fpDiv() { emit(InstClass::FpDiv); }

    void
    load(uint64_t addr, uint8_t extra_lat = 0)
    {
        if (deferMem(memoSigInst(InstClass::Load, extra_lat, false),
                     addr)) {
            pc_ += 4;
            return;
        }
        Inst i;
        i.cls = InstClass::Load;
        i.pc = step();
        i.memAddr = addr;
        i.extraLat = extra_lat;
        core_.consume(i);
    }

    /**
     * Load from an arbitrary host pointer (the usual case). The pointer
     * is translated to a deterministic simulated address so cache
     * behaviour does not depend on where the host allocator placed the
     * object (see sim::DataAddrSpace).
     */
    void
    loadPtr(const void *p, uint8_t extra_lat = 0)
    {
        load(core_.dataAddr(p), extra_lat);
    }

    /** Load of a field at @p off bytes into the object behind @p p. */
    void
    loadPtrOff(const void *p, uint64_t off, uint8_t extra_lat = 0)
    {
        load(core_.dataAddr(p) + off, extra_lat);
    }

    void
    store(uint64_t addr)
    {
        if (deferMem(memoSigInst(InstClass::Store, 0, false), addr)) {
            pc_ += 4;
            return;
        }
        Inst i;
        i.cls = InstClass::Store;
        i.pc = step();
        i.memAddr = addr;
        core_.consume(i);
    }

    void storePtr(const void *p) { store(core_.dataAddr(p)); }

    /** Store to a field at @p off bytes into the object behind @p p. */
    void
    storePtrOff(const void *p, uint64_t off)
    {
        store(core_.dataAddr(p) + off);
    }

    void
    branch(bool taken)
    {
        // The branch outcome is part of the baked signature, so a
        // deferred match proves the guard went its recorded way.
        if (defer(memoSigInst(InstClass::Branch, 0, taken))) {
            pc_ += 4;
            return;
        }
        Inst i;
        i.cls = InstClass::Branch;
        i.pc = step();
        i.taken = taken;
        core_.consume(i);
    }

    void
    jump(uint64_t target)
    {
        // The target is not in the signature: direct jumps are
        // state-free in the branch unit (never mispredict, no BTB).
        if (defer(memoSigInst(InstClass::Jump, 0, false))) {
            pc_ += 4;
            return;
        }
        Inst i;
        i.cls = InstClass::Jump;
        i.pc = step();
        i.target = target;
        core_.consume(i);
    }

    void
    indirectJump(uint64_t target)
    {
        Inst i;
        i.cls = InstClass::IndirectJump;
        i.pc = step();
        i.target = target;
        core_.consume(i);
    }

    void
    call(uint64_t target)
    {
        Inst i;
        i.cls = InstClass::Call;
        i.pc = step();
        i.target = target;
        core_.consume(i);
    }

    void
    indirectCall(uint64_t target)
    {
        Inst i;
        i.cls = InstClass::IndirectCall;
        i.pc = step();
        i.target = target;
        core_.consume(i);
    }

    /** @param return_pc actual return address (RAS correctness check). */
    void
    ret(uint64_t return_pc)
    {
        Inst i;
        i.cls = InstClass::Ret;
        i.pc = step();
        i.target = return_pc;
        core_.consume(i);
    }

    void nop() { emit(InstClass::Nop); }

    /** Emit a cross-layer annotation (the tagged-nop analog). */
    void
    annot(uint32_t tag, uint32_t payload = 0)
    {
        uint64_t enc = encodeAnnot(tag, payload);
        // Only pure annotations may be deferred: the sweep elides their
        // sink delivery (a declared no-op). An impure one falls through
        // and acts as a checkpoint in the live path.
        if (core_.annotDeferable(tag) && defer(memoSigAnnot(enc))) {
            pc_ += 4;
            return;
        }
        Inst i;
        i.cls = InstClass::Annot;
        i.pc = step();
        i.target = enc;
        core_.consume(i);
    }

  private:
    /** Try to defer one emission record against the armed sweep. */
    bool
    defer(uint64_t sig)
    {
        SweepCtx *s = core_.sweepCtx();
        if (s && s->cursor < s->nRecs && s->sigs[s->cursor] == sig &&
            s->codePc + s->pcOff[s->cursor] == pc_) {
            ++s->cursor;
            return true;
        }
        return false;
    }

    /** defer() for Load/Store: also captures the live address. */
    bool
    deferMem(uint64_t sig, uint64_t addr)
    {
        SweepCtx *s = core_.sweepCtx();
        if (s && s->cursor < s->nRecs && s->sigs[s->cursor] == sig &&
            s->codePc + s->pcOff[s->cursor] == pc_) {
            ++s->cursor;
            s->addrs.push_back(addr);
            return true;
        }
        return false;
    }

    /** Batched straight-line emission (amortizes per-inst call cost). */
    void
    straight(InstClass cls, uint32_t n, uint8_t extra_lat = 0)
    {
        if (n != 0 && defer(memoSigStraight(cls, extra_lat, n))) {
            pc_ += 4ull * n;
            return;
        }
        core_.consumeStraight(cls, pc_, n, extra_lat);
        pc_ += 4ull * n;
    }

    uint64_t
    step()
    {
        uint64_t p = pc_;
        pc_ += 4;
        return p;
    }

    void
    emit(InstClass cls, uint8_t extra_lat = 0)
    {
        if (defer(memoSigInst(cls, extra_lat, false))) {
            pc_ += 4;
            return;
        }
        Inst i;
        i.cls = cls;
        i.pc = step();
        i.extraLat = extra_lat;
        core_.consume(i);
    }

    Core &core_;
    uint64_t pc_;
};

} // namespace sim
} // namespace xlvm

#endif // XLVM_SIM_EMITTER_H
