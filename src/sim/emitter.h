/**
 * @file
 * Instruction-stream emission helper.
 *
 * A BlockEmitter walks a pre-allocated code region and feeds instruction
 * records into the core. Re-executing the same handler re-emits the same
 * PCs, so predictors and the I-cache see repeated code exactly as
 * hardware would.
 */

#ifndef XLVM_SIM_EMITTER_H
#define XLVM_SIM_EMITTER_H

#include <cstdint>

#include "sim/core.h"
#include "sim/inst.h"

namespace xlvm {
namespace sim {

class BlockEmitter
{
  public:
    BlockEmitter(Core &core, uint64_t base_pc)
        : core_(core), pc_(base_pc)
    {
    }

    uint64_t pc() const { return pc_; }

    void
    alu(uint32_t n = 1, uint8_t extra_lat = 0)
    {
        straight(InstClass::IntAlu, n, extra_lat);
    }

    void mul() { emit(InstClass::IntMul); }
    void div() { emit(InstClass::IntDiv); }
    void fpAlu(uint32_t n = 1) { straight(InstClass::FpAlu, n); }
    void fpMul() { emit(InstClass::FpMul); }
    void fpDiv() { emit(InstClass::FpDiv); }

    void
    load(uint64_t addr, uint8_t extra_lat = 0)
    {
        Inst i;
        i.cls = InstClass::Load;
        i.pc = step();
        i.memAddr = addr;
        i.extraLat = extra_lat;
        core_.consume(i);
    }

    /**
     * Load from an arbitrary host pointer (the usual case). The pointer
     * is translated to a deterministic simulated address so cache
     * behaviour does not depend on where the host allocator placed the
     * object (see sim::DataAddrSpace).
     */
    void
    loadPtr(const void *p, uint8_t extra_lat = 0)
    {
        load(core_.dataAddr(p), extra_lat);
    }

    /** Load of a field at @p off bytes into the object behind @p p. */
    void
    loadPtrOff(const void *p, uint64_t off, uint8_t extra_lat = 0)
    {
        load(core_.dataAddr(p) + off, extra_lat);
    }

    void
    store(uint64_t addr)
    {
        Inst i;
        i.cls = InstClass::Store;
        i.pc = step();
        i.memAddr = addr;
        core_.consume(i);
    }

    void storePtr(const void *p) { store(core_.dataAddr(p)); }

    /** Store to a field at @p off bytes into the object behind @p p. */
    void
    storePtrOff(const void *p, uint64_t off)
    {
        store(core_.dataAddr(p) + off);
    }

    void
    branch(bool taken)
    {
        Inst i;
        i.cls = InstClass::Branch;
        i.pc = step();
        i.taken = taken;
        core_.consume(i);
    }

    void
    jump(uint64_t target)
    {
        Inst i;
        i.cls = InstClass::Jump;
        i.pc = step();
        i.target = target;
        core_.consume(i);
    }

    void
    indirectJump(uint64_t target)
    {
        Inst i;
        i.cls = InstClass::IndirectJump;
        i.pc = step();
        i.target = target;
        core_.consume(i);
    }

    void
    call(uint64_t target)
    {
        Inst i;
        i.cls = InstClass::Call;
        i.pc = step();
        i.target = target;
        core_.consume(i);
    }

    void
    indirectCall(uint64_t target)
    {
        Inst i;
        i.cls = InstClass::IndirectCall;
        i.pc = step();
        i.target = target;
        core_.consume(i);
    }

    /** @param return_pc actual return address (RAS correctness check). */
    void
    ret(uint64_t return_pc)
    {
        Inst i;
        i.cls = InstClass::Ret;
        i.pc = step();
        i.target = return_pc;
        core_.consume(i);
    }

    void nop() { emit(InstClass::Nop); }

    /** Emit a cross-layer annotation (the tagged-nop analog). */
    void
    annot(uint32_t tag, uint32_t payload = 0)
    {
        Inst i;
        i.cls = InstClass::Annot;
        i.pc = step();
        i.target = encodeAnnot(tag, payload);
        core_.consume(i);
    }

  private:
    /** Batched straight-line emission (amortizes per-inst call cost). */
    void
    straight(InstClass cls, uint32_t n, uint8_t extra_lat = 0)
    {
        core_.consumeStraight(cls, pc_, n, extra_lat);
        pc_ += 4ull * n;
    }

    uint64_t
    step()
    {
        uint64_t p = pc_;
        pc_ += 4;
        return p;
    }

    void
    emit(InstClass cls, uint8_t extra_lat = 0)
    {
        Inst i;
        i.cls = cls;
        i.pc = step();
        i.extraLat = extra_lat;
        core_.consume(i);
    }

    Core &core_;
    uint64_t pc_;
};

} // namespace sim
} // namespace xlvm

#endif // XLVM_SIM_EMITTER_H
