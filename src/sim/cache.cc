#include "sim/cache.h"

#include <algorithm>

#include "common/logging.h"

namespace xlvm {
namespace sim {

namespace {

inline uint32_t
log2u(uint32_t x)
{
    uint32_t r = 0;
    while ((1u << r) < x)
        ++r;
    return r;
}

} // namespace

Cache::Cache(const CacheParams &p)
{
    numWays = p.ways;
    uint32_t lines = p.sizeBytes / p.lineBytes;
    XLVM_ASSERT(lines % p.ways == 0, "cache geometry mismatch");
    numSets = lines / p.ways;
    XLVM_ASSERT((numSets & (numSets - 1)) == 0, "sets must be power of 2");
    lineShift = log2u(p.lineBytes);
    ways_.resize(numSets * numWays);
    mru_.resize(numSets, 0);
}

bool
Cache::accessN(uint64_t addr, uint32_t n)
{
    uint64_t line = addr >> lineShift;
    uint32_t set = static_cast<uint32_t>(line) & (numSets - 1);
    uint64_t tag = line >> 1; // keep some set bits in the tag; cheap
    Way *base = &ways_[set * numWays];
    useClock += n;

    // MRU fast path: straight-line and loopy code mostly re-touches the
    // way it hit last time, skipping the associative scan.
    uint32_t m = mru_[set];
    if (base[m].valid && base[m].tag == tag) {
        base[m].lastUse = useClock;
        nHits += n;
        return true;
    }

    for (uint32_t w = 0; w < numWays; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lastUse = useClock;
            mru_[set] = uint8_t(w);
            nHits += n;
            return true;
        }
    }

    // Miss: fill LRU way. The n-1 follow-up probes of a batched access
    // hit the just-filled line.
    uint32_t victim = 0;
    uint32_t oldest = base[0].lastUse;
    for (uint32_t w = 0; w < numWays; ++w) {
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].lastUse < oldest) {
            oldest = base[w].lastUse;
            victim = w;
        }
    }
    base[victim].valid = true;
    base[victim].tag = tag;
    base[victim].lastUse = useClock;
    mru_[set] = uint8_t(victim);
    ++nMisses;
    nHits += n - 1;
    return false;
}

bool
Cache::linePresent(uint64_t line) const
{
    uint32_t set = static_cast<uint32_t>(line) & (numSets - 1);
    uint64_t tag = line >> 1;
    const Way *base = &ways_[set * numWays];
    for (uint32_t w = 0; w < numWays; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::reset()
{
    std::fill(ways_.begin(), ways_.end(), Way());
    std::fill(mru_.begin(), mru_.end(), uint8_t(0));
    useClock = 0;
    nHits = nMisses = 0;
}

} // namespace sim
} // namespace xlvm
