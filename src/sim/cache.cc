#include "sim/cache.h"

#include "common/logging.h"

namespace xlvm {
namespace sim {

namespace {

inline uint32_t
log2u(uint32_t x)
{
    uint32_t r = 0;
    while ((1u << r) < x)
        ++r;
    return r;
}

} // namespace

Cache::Cache(const CacheParams &p)
{
    numWays = p.ways;
    uint32_t lines = p.sizeBytes / p.lineBytes;
    XLVM_ASSERT(lines % p.ways == 0, "cache geometry mismatch");
    numSets = lines / p.ways;
    XLVM_ASSERT((numSets & (numSets - 1)) == 0, "sets must be power of 2");
    lineShift = log2u(p.lineBytes);
    ways_.resize(numSets * numWays);
}

bool
Cache::access(uint64_t addr)
{
    uint64_t line = addr >> lineShift;
    uint32_t set = static_cast<uint32_t>(line) & (numSets - 1);
    uint64_t tag = line >> 1; // keep some set bits in the tag; cheap
    Way *base = &ways_[set * numWays];
    ++useClock;

    for (uint32_t w = 0; w < numWays; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lastUse = useClock;
            ++nHits;
            return true;
        }
    }

    // Miss: fill LRU way.
    uint32_t victim = 0;
    uint32_t oldest = base[0].lastUse;
    for (uint32_t w = 0; w < numWays; ++w) {
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].lastUse < oldest) {
            oldest = base[w].lastUse;
            victim = w;
        }
    }
    base[victim].valid = true;
    base[victim].tag = tag;
    base[victim].lastUse = useClock;
    ++nMisses;
    return false;
}

} // namespace sim
} // namespace xlvm
