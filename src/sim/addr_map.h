/**
 * @file
 * Deterministic data-address virtualization.
 *
 * The VM layers model data accesses with the host addresses of the C++
 * objects backing simulated values. Host addresses depend on ASLR and on
 * which malloc arena a thread happens to draw from, so cache set mapping
 * — and with it every reported cycle count — varied from process to
 * process and, once runs execute on worker threads, with the thread
 * interleaving. DataAddrSpace removes that dependence: each distinct
 * host pointer is assigned a synthetic line-aligned address in
 * first-access order, which is a property of the simulated program
 * alone. Identical runs therefore produce bit-identical counters no
 * matter where the host allocator placed the objects.
 *
 * Pointers whose memory is recycled mid-run (GC-collected objects) must
 * be release()d when freed so a reused host address maps to a fresh
 * synthetic line instead of silently aliasing the dead object's cache
 * footprint — the GC free path forwards deletions here via
 * gc::GcHooks::onObjectFree.
 */

#ifndef XLVM_SIM_ADDR_MAP_H
#define XLVM_SIM_ADDR_MAP_H

#include <cstdint>
#include <unordered_map>

namespace xlvm {
namespace sim {

class DataAddrSpace
{
  public:
    /** Synthetic data segment; far above every CodeSpace segment. */
    static constexpr uint64_t kBase = 1ull << 40;
    /** Each mapped pointer owns one line-sized slot. */
    static constexpr uint64_t kSlotBytes = 64;

    /** Map a host pointer to its stable synthetic address. */
    uint64_t
    translate(const void *p)
    {
        uintptr_t key = reinterpret_cast<uintptr_t>(p);
        uint32_t slot = cacheSlot(key);
        if (cacheKeys[slot] == key)
            return cacheVals[slot];
        uint64_t v;
        auto it = map.find(key);
        if (it != map.end()) {
            v = it->second;
        } else {
            v = kBase + nextSlot++ * kSlotBytes;
            map.emplace(key, v);
        }
        cacheKeys[slot] = key;
        cacheVals[slot] = v;
        return v;
    }

    /**
     * Forget a pointer whose memory is being freed. The next allocation
     * reusing the host address gets a fresh synthetic line.
     */
    void
    release(const void *p)
    {
        uintptr_t key = reinterpret_cast<uintptr_t>(p);
        uint32_t slot = cacheSlot(key);
        if (cacheKeys[slot] == key)
            cacheKeys[slot] = 0;
        map.erase(key);
    }

    size_t mappedCount() const { return map.size(); }

  private:
    static constexpr uint32_t kCacheEntries = 256;

    static uint32_t
    cacheSlot(uintptr_t key)
    {
        // Host allocations are >= 16-byte aligned; drop the dead bits.
        return uint32_t(key >> 4) & (kCacheEntries - 1);
    }

    /** Direct-mapped front cache: the hot loop re-translates the same
     *  few pointers (interpreter, frame stack, current objects). */
    uintptr_t cacheKeys[kCacheEntries] = {};
    uint64_t cacheVals[kCacheEntries] = {};
    std::unordered_map<uintptr_t, uint64_t> map;
    uint64_t nextSlot = 0;
};

} // namespace sim
} // namespace xlvm

#endif // XLVM_SIM_ADDR_MAP_H
