/**
 * @file
 * The modeled processor core.
 *
 * Core consumes the dynamic instruction stream emitted by the VM layers
 * and plays the role of the paper's real hardware: it drives the branch
 * predictors and L1 caches, charges cycles with a simple issue-width +
 * penalty model, and maintains per-bucket performance counters. Buckets
 * correspond to the paper's execution phases (interpreter / tracing / JIT
 * / JIT-call / GC / blackhole); the instrumentation layer switches the
 * active bucket when it intercepts phase annotations, which is exactly how
 * the paper's PinTool + PAPI combination attributes counters to phases.
 */

#ifndef XLVM_SIM_CORE_H
#define XLVM_SIM_CORE_H

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/addr_map.h"
#include "sim/branch_pred.h"
#include "sim/cache.h"
#include "sim/inst.h"

namespace xlvm {
namespace sim {

class BlockMemo;
struct MemoStats;
struct SuperblockStats;

/** Fixed-point cycle units: 1/16 of a cycle. */
constexpr uint64_t kCycleFp = 16;

struct CoreParams
{
    uint32_t issueWidth = 4;
    uint32_t mispredictPenalty = 14; ///< cycles
    uint32_t icacheMissPenalty = 8;  ///< cycles (partially overlapped)
    uint32_t dcacheMissPenalty = 10; ///< cycles (partially overlapped)
    /**
     * Cycle cost charged per annotation, in kCycleFp units. Defaults to 0
     * (ideal instrumentation); the perturbation ablation bench raises it
     * to model real tagged nops occupying issue slots.
     */
    uint32_t annotCostFp = 0;
    double frequencyGhz = 3.0;
    /**
     * Basic-block cost memoization (see sim/block_memo.h). On by
     * default: it only activates inside executor-bracketed sessions and
     * is bit-identical to stepping. XLVM_NO_SIM_MEMO in the environment
     * overrides this to off.
     */
    bool simMemo = true;
    /**
     * Trace-level superblock replay + batched stream sweep (see
     * sim/block_memo.h). On by default; only activates when the executor
     * hands the core a baked SimStream view, and is bit-identical to
     * stepping. Requires simMemo; XLVM_NO_SIM_SUPERBLOCK in the
     * environment overrides this to off (block memoization stays on).
     */
    bool simSuperblock = true;
    BranchPredParams branchPred;
    CacheParams icache;
    CacheParams dcache;
};

/** One bucket of performance counters (the PAPI analog). */
struct PerfCounters
{
    uint64_t instructions = 0;
    uint64_t cyclesFp = 0; ///< in kCycleFp units
    uint64_t branches = 0; ///< all control-flow instructions
    uint64_t condBranches = 0;
    uint64_t mispredicts = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t icacheMisses = 0;
    uint64_t dcacheMisses = 0;
    uint64_t annotations = 0;

    double cycles() const { return double(cyclesFp) / kCycleFp; }

    double
    ipc() const
    {
        return cyclesFp ? double(instructions) * kCycleFp / cyclesFp : 0.0;
    }

    /** Branch mispredictions per 1000 instructions. */
    double
    mpki() const
    {
        return instructions ? 1000.0 * mispredicts / instructions : 0.0;
    }

    double
    branchRate() const
    {
        return instructions ? double(branches) / instructions : 0.0;
    }

    double
    branchMissRate() const
    {
        return branches ? double(mispredicts) / branches : 0.0;
    }

    void
    accumulate(const PerfCounters &o)
    {
        instructions += o.instructions;
        cyclesFp += o.cyclesFp;
        branches += o.branches;
        condBranches += o.condBranches;
        mispredicts += o.mispredicts;
        loads += o.loads;
        stores += o.stores;
        icacheMisses += o.icacheMisses;
        dcacheMisses += o.dcacheMisses;
        annotations += o.annotations;
    }
};

/** Interface through which the core hands annotations to instrumentation. */
class AnnotSink
{
  public:
    virtual ~AnnotSink() = default;
    virtual void onAnnot(uint32_t tag, uint32_t payload) = 0;

    /**
     * Purity oracle for the memoization layer: true when delivering
     * @p tag is a no-op for every current consumer, so a replayed block
     * may elide the delivery. The conservative default keeps every tag
     * live.
     */
    virtual bool annotPure(uint32_t tag) const
    {
        (void)tag;
        return false;
    }

    /** Bumped whenever the answer of annotPure() may have changed. */
    virtual uint64_t annotGeneration() const { return 0; }

    /**
     * Out-of-band memoization telemetry (kMemoEvent* tags). Delivered
     * only to consumers that explicitly opt in — never routed through
     * onAnnot broadcast — so profilers whose state is sensitive to
     * delivery timing (e.g. the phase-timeline binner) are untouched
     * and counters stay bit-identical with memoization on or off.
     */
    virtual void onMemoEvent(uint32_t tag, uint32_t payload)
    {
        (void)tag;
        (void)payload;
    }

    /** True when some consumer opted into onMemoEvent delivery. */
    virtual bool memoEventsWanted() const { return false; }
};

/** Maximum number of counter buckets (phases). */
constexpr uint32_t kMaxBuckets = 16;

// ---- deterministic cycle sampling --------------------------------------
//
// The sampling profiler's clock is the modeled cycle counter itself:
// a sample fires every N modeled cycles (kCycleFp fixed-point units),
// never on wall-clock time, so a run's sample stream is bit-identical
// across --jobs values, processes, and hosts. Samples are pure
// host-side observation — no instruction is emitted, no counter moves —
// so modeled counters are bit-identical with the sampler on or off.

/**
 * Execution-context word attached to every sample. The VM layers mark
 * transitions (trace entry/exit, GC, compilation) with one packed store;
 * the core treats the word as opaque and stamps it into samples. Packing
 * lives here so sim, vm, and xlayer agree without a cross-layer header.
 */
enum class SampleCtxKind : uint32_t
{
    Interp = 0,  ///< interpreter / anything not otherwise marked
    Trace = 1,   ///< executing a compiled loop trace (id = trace id)
    Bridge = 2,  ///< executing a compiled bridge trace (id = trace id)
    Gc = 3,      ///< inside a collection (id = collection ordinal)
    Compile = 4, ///< modeled compilation work (id = trace id)
};

constexpr uint64_t
sampleCtxPack(SampleCtxKind kind, uint32_t tier, uint32_t id)
{
    return (uint64_t(kind) << 40) | (uint64_t(tier & 0xff) << 32) |
           uint64_t(id);
}

constexpr SampleCtxKind
sampleCtxKind(uint64_t ctx)
{
    return SampleCtxKind((ctx >> 40) & 0xff);
}

constexpr uint32_t
sampleCtxTier(uint64_t ctx)
{
    return uint32_t(ctx >> 32) & 0xff;
}

constexpr uint32_t
sampleCtxId(uint64_t ctx)
{
    return uint32_t(ctx);
}

/** Interface through which the core delivers cycle samples. */
class CycleSampleSink
{
  public:
    virtual ~CycleSampleSink() = default;

    /**
     * One sample. @p clock_fp is the sample point on the modeled cycle
     * clock (cumulative charged cycles since arming, kCycleFp units);
     * @p bucket is the active counter bucket (== the current phase);
     * @p pc is the modeled pc of the charge that crossed the sample
     * point (a trace code address inside JIT code, symbolizable against
     * the trace registry); @p ctx is the packed execution-context word.
     */
    virtual void onCycleSample(uint64_t clock_fp, uint32_t bucket,
                               uint64_t pc, uint64_t ctx) = 0;
};

// ---- block-memoization record signatures -------------------------------
//
// Defined here (not in block_memo.h) so Core's hot path can verify a
// replayed emission inline — one packed 64-bit compare against the
// recorded stream — without an out-of-line call per instruction. See
// sim/block_memo.h for the full design.

constexpr uint64_t kMemoSigKindInst = 1ull << 62;
constexpr uint64_t kMemoSigKindAnnot = 2ull << 62;
constexpr uint64_t kMemoSigKindStraight = 3ull << 62;

constexpr uint64_t
memoSigInst(InstClass cls, uint8_t extra_lat, bool taken)
{
    return kMemoSigKindInst | (uint64_t(extra_lat) << 54) |
           (uint64_t(cls) << 50) | (taken ? (1ull << 49) : 0);
}

constexpr uint64_t
memoSigStraight(InstClass cls, uint8_t extra_lat, uint32_t n)
{
    return kMemoSigKindStraight | (uint64_t(extra_lat) << 54) |
           (uint64_t(cls) << 50) | n;
}

/** @param encoded  Inst::target of an Annot (encodeAnnot result). */
constexpr uint64_t
memoSigAnnot(uint64_t encoded)
{
    return kMemoSigKindAnnot | encoded;
}

/**
 * One recorded emission: a packed signature plus the emission pc. The
 * signature encodes everything outcome-relevant about the emission
 * except memory addresses (replayed live) and jump targets (state-free),
 * so the replay fast path is two 64-bit compares per emission.
 */
struct MemoRec
{
    uint64_t sig = 0;
    uint64_t pc = 0;
};

/**
 * Non-owning view of a compiled trace's baked emission stream (the SoA
 * SimStream from jit/lower.h), rebased at the trace's code address. The
 * executor hands one to Core::memoSetStream before entering a trace;
 * the superblock layer defers matching emissions against it and the
 * batched consumeStream() entry processes one in a single pass. The
 * pointers must stay valid for as long as the view is the pending or
 * armed stream (the executor re-sets the view on every trace entry).
 */
struct StreamView
{
    const uint64_t *sigs = nullptr;  ///< memoSig*-packed records
    const uint32_t *pcOff = nullptr; ///< byte offsets from codePc
    const uint32_t *memIdx = nullptr; ///< record indices of Load/Store
    uint32_t nRecs = 0;
    uint32_t nMem = 0;
    uint64_t codePc = 0;
    /** Bake identity (jit/lower.cc); two bakes never share an id, so an
     *  id match proves the record stream is unchanged. */
    uint64_t streamId = 0;
    /** SimStream::memoEligible: no call-class records, no unimpl ops. */
    bool eligible = false;
};

/**
 * The armed sweep cursor: while the superblock layer has a stream armed,
 * emitters defer matching emissions here (one packed compare + cursor
 * bump, no Core::consume call) instead of stepping them. Memory-op
 * addresses are captured at defer time — the same moment stepping would
 * translate them — so GC address recycling behaves identically.
 */
struct SweepCtx
{
    const uint64_t *sigs = nullptr;
    const uint32_t *pcOff = nullptr;
    uint32_t cursor = 0;
    uint32_t nRecs = 0;
    uint64_t codePc = 0;
    /** Translated addresses of the deferred Load/Store records of the
     *  current segment, in emission order. */
    std::vector<uint64_t> addrs;
};

class Core
{
  public:
    explicit Core(const CoreParams &p = CoreParams());
    ~Core();

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    /** Consume one dynamic instruction (hot path). */
    void
    consume(const Inst &inst)
    {
        if (memoState_ != 0) {
            // Superblock safety net: any emission that reaches consume()
            // while a sweep is armed was not deferred (an impure
            // annotation, a guard going the other way, an out-of-band
            // GC/blackhole emission). The memo layer checkpoints or
            // materializes the deferred prefix first so machine state
            // and counters are fully caught up before this emission
            // steps live. Correctness never depends on emitter
            // cooperation.
            if (sweepArmed_ && memoSweepInst(inst))
                return;
            // Replay fast path: while a recorded block is being skipped
            // the next emission almost always matches the recorded
            // stream — verify with one packed compare and advance, no
            // out-of-line call. An impure annotation packs to sig 0
            // (kind bits clear), which matches no record, so delimiters
            // and divergences fall through to the slow path.
            if (memoSkipCur_ != memoSkipEnd_) {
                uint64_t sig;
                if (inst.cls == InstClass::Annot) {
                    uint32_t tag = annotTag(inst.target);
                    sig = tag < 32 && !((impureTagMask_ >> tag) & 1u)
                              ? memoSigAnnot(inst.target)
                              : 0;
                } else {
                    sig = memoSigInst(inst.cls, inst.extraLat,
                                      inst.taken);
                }
                if (sig == memoSkipCur_->sig &&
                    inst.pc == memoSkipCur_->pc) {
                    ++memoSkipCur_;
                    if (inst.cls == InstClass::Load ||
                        inst.cls == InstClass::Store)
                        memoLiveDcache(inst);
                    return;
                }
            }
            if (memoOnInst(inst))
                return;
        }

        PerfCounters &pc = buckets[bucket];

        if (inst.cls == InstClass::Annot) {
            // Annotations are metadata: by default they do not perturb
            // the counters they are used to collect (see annotCostFp).
            ++pc.annotations;
            pc.cyclesFp += params.annotCostFp;
            if (sampleIntervalFp_ != 0)
                sampleTick(params.annotCostFp, inst.pc);
            if (sink)
                sink->onAnnot(annotTag(inst.target),
                              annotPayload(inst.target));
            return;
        }

        ++pc.instructions;
        uint64_t cost = issueCostFp;

        if (!icache.access(inst.pc)) {
            ++pc.icacheMisses;
            cost += params.icacheMissPenalty * kCycleFp;
        }
        cost += uint64_t(inst.extraLat) * kCycleFp;

        // Plain ALU ops dominate every instruction mix; retire them
        // without touching the class switch or the control-flow checks.
        if (inst.cls == InstClass::IntAlu || inst.cls == InstClass::Nop) {
            pc.cyclesFp += cost;
            if (sampleIntervalFp_ != 0)
                sampleTick(cost, inst.pc);
            return;
        }

        switch (inst.cls) {
          case InstClass::Load:
            ++pc.loads;
            if (!dcache.access(inst.memAddr)) {
                ++pc.dcacheMisses;
                cost += params.dcacheMissPenalty * kCycleFp;
            }
            break;
          case InstClass::Store:
            ++pc.stores;
            if (!dcache.access(inst.memAddr))
                ++pc.dcacheMisses; // write-allocate; latency hidden
            break;
          case InstClass::IntMul:
            cost += 2 * kCycleFp;
            break;
          case InstClass::IntDiv:
            cost += 18 * kCycleFp;
            break;
          case InstClass::FpAlu:
            cost += 1 * kCycleFp;
            break;
          case InstClass::FpMul:
            cost += 2 * kCycleFp;
            break;
          case InstClass::FpDiv:
            cost += 12 * kCycleFp;
            break;
          default:
            break;
        }

        if (isControl(inst.cls)) {
            ++pc.branches;
            if (inst.cls == InstClass::Branch)
                ++pc.condBranches;
            if (branchUnit.process(inst)) {
                ++pc.mispredicts;
                cost += params.mispredictPenalty * kCycleFp;
            }
        }

        pc.cyclesFp += cost;
        if (sampleIntervalFp_ != 0)
            sampleTick(cost, inst.pc);
    }

    /**
     * Consume @p n consecutive instructions of one arithmetic class
     * starting at @p start_pc (4-byte spacing). Counters and cache/LRU
     * state are bit-identical to emitting the instructions one by one;
     * the per-instruction call and icache probes are amortized by
     * batching same-line fetches through Cache::accessN. @p cls must be
     * a non-memory, non-control class.
     */
    void
    consumeStraight(InstClass cls, uint64_t start_pc, uint32_t n,
                    uint8_t extra_lat = 0)
    {
        if (n == 0)
            return;
        if (memoState_ != 0) {
            // See consume(): a straight run reaching here while a sweep
            // is armed diverged from the baked stream (the emitter would
            // have deferred a match); catch the machine state up first.
            if (sweepArmed_)
                memoSweepStraightMiss();
            if (memoSkipCur_ != memoSkipEnd_ &&
                memoSkipCur_->sig == memoSigStraight(cls, extra_lat, n) &&
                memoSkipCur_->pc == start_pc) {
                ++memoSkipCur_;
                return;
            }
            if (memoOnStraight(cls, start_pc, n, extra_lat))
                return;
        }
        PerfCounters &pc = buckets[bucket];
        pc.instructions += n;
        uint64_t cost =
            uint64_t(n) * (issueCostFp + uint64_t(extra_lat) * kCycleFp +
                           classCostFp(cls));
        const uint64_t lineBytes = icache.lineBytes();
        uint64_t p = start_pc;
        uint64_t end = start_pc + 4ull * n;
        while (p < end) {
            uint64_t lineEnd = (p / lineBytes + 1) * lineBytes;
            uint32_t k = uint32_t((std::min(lineEnd, end) - p) / 4);
            if (!icache.accessN(p, k)) {
                ++pc.icacheMisses;
                cost += params.icacheMissPenalty * kCycleFp;
            }
            p += 4ull * k;
        }
        pc.cyclesFp += cost;
        if (sampleIntervalFp_ != 0)
            sampleTick(cost, start_pc);
    }

    /** Translate a host pointer to its deterministic simulated address. */
    uint64_t dataAddr(const void *p) { return dataSpace.translate(p); }

    /** Forget a host pointer whose memory is being freed (GC). */
    void releaseDataAddr(const void *p) { dataSpace.release(p); }

    /** Select which counter bucket subsequent instructions charge. */
    void setBucket(uint32_t b) { bucket = b < kMaxBuckets ? b : 0; }
    uint32_t currentBucket() const { return bucket; }

    void
    setAnnotSink(AnnotSink *s)
    {
        sink = s;
        purityValid_ = false; // re-derive the impure-tag mask lazily
    }

    /**
     * Arm the cycle sampler: deliver one sample to @p s every
     * @p interval_fp modeled cycles (kCycleFp units) of charged cost.
     * @p interval_fp == 0 (or a null sink) disarms; the hot-path cost of
     * a disarmed sampler is one always-false compare per charge. Arming
     * resets the sample clock to zero. Sampling is pure observation: no
     * modeled counter moves, so counters are bit-identical armed or not.
     */
    void armSampler(CycleSampleSink *s, uint64_t interval_fp);

    bool samplerArmed() const { return sampleIntervalFp_ != 0; }

    /** Modeled cycles charged since arming, kCycleFp units. */
    uint64_t sampleClockFp() const { return sampleClockFp_; }

    /**
     * Set the packed execution-context word stamped into samples (see
     * sampleCtxPack). One store; callers mark transitions unconditionally
     * — it is cheap enough to leave on when the sampler is off.
     */
    void setProfileContext(uint64_t ctx) { sampleCtx_ = ctx; }
    uint64_t profileContext() const { return sampleCtx_; }

    /**
     * Bracket a memoizable execution region (JIT trace execution).
     * No-ops when memoization is disabled; sessions nest.
     * @param est_records  per-block record reserve hint (from the
     *                     lowered program's baked SimStream).
     */
    void memoSessionBegin(uint32_t est_records = 0);
    void memoSessionEnd();

    /** Block boundary inside a session (trace back-edge). */
    void memoBoundary();

    /**
     * Announce the baked emission stream of the trace about to run (or
     * just entered): the superblock layer arms a deferred sweep over it
     * at the next session begin / boundary. No-op when memoization is
     * disabled; safe to call at any time (a stream armed mid-iteration
     * is checkpointed or materialized first).
     */
    void memoSetStream(const StreamView &view);

    /**
     * Consume an entire baked stream in one batched pass: straight runs
     * retire without per-instruction calls, I-cache probes of contiguous
     * fetch runs are coalesced per line, predictor updates happen once
     * per branch record, and D-cache accesses stay live against
     * @p mem_addrs (one translated address per Load/Store record, in
     * record order). Counters and machine state are bit-identical to
     * emitting the records one by one. The stream must be free of
     * call-class records; annotation records are charged (annotations /
     * annotCostFp) but not delivered to the sink, so they must be pure
     * for the walk to be observationally exact (the memo layer brackets
     * its internal walks with live impure-annotation delivery).
     */
    void consumeStream(const StreamView &view, const uint64_t *mem_addrs,
                       uint32_t n_mem);

    /**
     * The armed sweep cursor, or null when no sweep is armed. Emitters
     * query this per emission (never cache it across emissions) to
     * defer matching records.
     */
    SweepCtx *sweepCtx() { return sweepArmed_ ? &sweep_ : nullptr; }

    /** True when delivering @p tag is currently a no-op for every
     *  consumer, so a deferred record may elide the delivery. */
    bool
    annotDeferable(uint32_t tag) const
    {
        return tag < 32 && !((impureTagMask_ >> tag) & 1u);
    }

    bool memoEnabled() const { return memo_ != nullptr; }

    /** True when the superblock sweep layer is active. */
    bool superblockEnabled() const;

    /** Aggregate memoization counters (zeros when disabled). */
    MemoStats memoStats() const;

    /** Aggregate superblock counters (zeros when disabled). */
    SuperblockStats superblockStats() const;

    /** The memoization engine, for tests (null when disabled). */
    BlockMemo *memoForTest() { return memo_.get(); }

    /**
     * Forcibly drop every memo entry (fault injection / chaos testing).
     * Keeps statistics; by the memo contract the modeled counters are
     * unaffected — the dropped blocks are simply re-recorded. No-op
     * when memoization is disabled. Must not be called while a
     * TraceExecutor session is live.
     */
    void memoInvalidateEntries();

    const PerfCounters &bucketCounters(uint32_t b) const;

    /** Read-only view of the L1 caches (hit/miss counters for reports). */
    const Cache &icacheUnit() const { return icache; }
    const Cache &dcacheUnit() const { return dcache; }

    /** Sum of all buckets. */
    PerfCounters totalCounters() const;

    uint64_t totalInstructions() const;
    /** Exact whole-run cycle count in kCycleFp units (all buckets). */
    uint64_t totalCyclesFp() const;
    double totalCycles() const;

    /** Simulated wall-clock seconds at the configured frequency. */
    double seconds() const;

    /**
     * Reset every stat source to its freshly constructed state: counter
     * buckets, both caches (counters, contents, and LRU clocks), and the
     * branch unit's learned state. Replaying an identical instruction
     * stream after resetStats() yields bit-identical counters. The data
     * address map survives — it is an address-space property, not a
     * statistic.
     */
    void resetStats();

    const CoreParams &coreParams() const { return params; }

  private:
    /** Out-of-line memo filters (see sim/block_memo.h). */
    bool memoOnInst(const Inst &inst);
    bool memoOnStraight(InstClass cls, uint64_t start_pc, uint32_t n,
                        uint8_t extra_lat);

    /** Out-of-line sweep catch-up paths (see sim/block_memo.h). */
    bool memoSweepInst(const Inst &inst);
    void memoSweepStraightMiss();

    /** The live dcache access of a replayed Load/Store record. */
    void
    memoLiveDcache(const Inst &inst)
    {
        PerfCounters &pc = buckets[bucket];
        if (!dcache.access(inst.memAddr)) {
            ++pc.dcacheMisses;
            if (inst.cls == InstClass::Load) {
                pc.cyclesFp +=
                    uint64_t(params.dcacheMissPenalty) * kCycleFp;
                if (sampleIntervalFp_ != 0)
                    sampleTick(uint64_t(params.dcacheMissPenalty) *
                                   kCycleFp,
                               inst.pc);
            }
        }
    }

    /** Recompute the impure-annotation mask if the sink changed. */
    void refreshAnnotPurity();

    /**
     * Advance the sample clock by a just-charged cost and fire any
     * samples it crossed. Call sites gate on sampleIntervalFp_ != 0 so
     * the disarmed cost is a single compare. @p pc is the modeled pc the
     * crossing charge is attributed to; batched charges (memo replay,
     * stream walks) attribute their whole delta to the block-opening pc,
     * which keeps sampling deterministic for a fixed config without
     * forcing the replay layers to reconstruct per-instruction clocks.
     */
    void
    sampleTick(uint64_t delta_fp, uint64_t pc)
    {
        sampleClockFp_ += delta_fp;
        if (sampleClockFp_ >= nextSampleFp_)
            sampleFire(pc);
    }

    /** Out-of-line sample delivery loop (rare). */
    void sampleFire(uint64_t pc);

    /** Fixed extra cycles of a non-memory, non-control class, in fp units. */
    static uint64_t
    classCostFp(InstClass cls)
    {
        switch (cls) {
          case InstClass::IntMul:
          case InstClass::FpMul:
            return 2 * kCycleFp;
          case InstClass::IntDiv:
            return 18 * kCycleFp;
          case InstClass::FpAlu:
            return 1 * kCycleFp;
          case InstClass::FpDiv:
            return 12 * kCycleFp;
          default:
            return 0;
        }
    }

    CoreParams params;
    uint64_t issueCostFp;
    BranchUnit branchUnit;
    Cache icache;
    Cache dcache;
    DataAddrSpace dataSpace;
    AnnotSink *sink = nullptr;
    uint32_t bucket = 0;
    std::array<PerfCounters, kMaxBuckets> buckets;

    std::unique_ptr<BlockMemo> memo_;
    /** Nonzero while a memo session is active (hot-path gate). */
    uint8_t memoState_ = 0;
    /**
     * Skip-mode replay cursor, maintained by BlockMemo: non-null only
     * while a verified entry is being replayed, pointing at the next
     * expected record. Lets consume()/consumeStraight() verify and
     * advance inline.
     */
    const MemoRec *memoSkipCur_ = nullptr;
    const MemoRec *memoSkipEnd_ = nullptr;
    /**
     * Deferred-sweep cursor, maintained by BlockMemo: armed only while
     * the superblock layer is sweeping a baked stream. Lives on the core
     * so sweepCtx() is one load on the emitter fast path.
     */
    SweepCtx sweep_;
    bool sweepArmed_ = false;
    /** Cycle-sampler state; interval 0 = disarmed (hot-path gate). */
    CycleSampleSink *sampleSink_ = nullptr;
    uint64_t sampleIntervalFp_ = 0;
    uint64_t sampleClockFp_ = 0;
    uint64_t nextSampleFp_ = UINT64_MAX;
    uint64_t sampleCtx_ = 0;

    /** Bit per tag < 32: set when some listener consumes the tag. */
    uint32_t impureTagMask_ = ~0u;
    bool memoEventsWanted_ = false;
    bool purityValid_ = false;
    uint64_t purityGeneration_ = 0;

    friend class BlockMemo;
};

} // namespace sim
} // namespace xlvm

#endif // XLVM_SIM_CORE_H
