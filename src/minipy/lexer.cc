#include "minipy/lexer.h"

#include <cctype>
#include <unordered_map>

#include "common/logging.h"

namespace xlvm {
namespace minipy {

namespace {

const std::unordered_map<std::string, Tok> kKeywords = {
    {"def", Tok::KwDef},       {"class", Tok::KwClass},
    {"if", Tok::KwIf},         {"elif", Tok::KwElif},
    {"else", Tok::KwElse},     {"while", Tok::KwWhile},
    {"for", Tok::KwFor},       {"in", Tok::KwIn},
    {"return", Tok::KwReturn}, {"pass", Tok::KwPass},
    {"break", Tok::KwBreak},   {"continue", Tok::KwContinue},
    {"and", Tok::KwAnd},       {"or", Tok::KwOr},
    {"not", Tok::KwNot},       {"True", Tok::KwTrue},
    {"False", Tok::KwFalse},   {"None", Tok::KwNone},
    {"global", Tok::KwGlobal}, {"is", Tok::KwIs},
};

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : s(src) {}

    std::vector<Token>
    run()
    {
        indents.push_back(0);
        bool at_line_start = true;
        while (pos < s.size()) {
            if (at_line_start && bracketDepth == 0) {
                if (!handleIndentation())
                    break;
                at_line_start = false;
                continue;
            }
            char c = s[pos];
            if (c == '\n') {
                ++pos;
                ++line;
                if (bracketDepth == 0) {
                    if (!out.empty() && out.back().kind != Tok::Newline &&
                        out.back().kind != Tok::Indent &&
                        out.back().kind != Tok::Dedent) {
                        push(Tok::Newline);
                    }
                    at_line_start = true;
                }
                continue;
            }
            if (c == ' ' || c == '\t' || c == '\r') {
                ++pos;
                continue;
            }
            if (c == '#') {
                while (pos < s.size() && s[pos] != '\n')
                    ++pos;
                continue;
            }
            if (c == '\\' && pos + 1 < s.size() && s[pos + 1] == '\n') {
                pos += 2;
                ++line;
                continue;
            }
            if (std::isdigit(uint8_t(c)) ||
                (c == '.' && pos + 1 < s.size() &&
                 std::isdigit(uint8_t(s[pos + 1])))) {
                lexNumber();
                continue;
            }
            if (std::isalpha(uint8_t(c)) || c == '_') {
                lexNameOrKeyword();
                continue;
            }
            if (c == '"' || c == '\'') {
                lexString(c);
                continue;
            }
            lexOperator();
        }
        // Final newline + dedents.
        if (!out.empty() && out.back().kind != Tok::Newline)
            push(Tok::Newline);
        while (indents.size() > 1) {
            indents.pop_back();
            push(Tok::Dedent);
        }
        push(Tok::End);
        return std::move(out);
    }

  private:
    void
    push(Tok kind)
    {
        Token t;
        t.kind = kind;
        t.line = line;
        out.push_back(std::move(t));
    }

    /** Returns false at end of input. */
    bool
    handleIndentation()
    {
        // Measure leading whitespace; skip blank/comment-only lines.
        while (true) {
            size_t start = pos;
            int width = 0;
            while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) {
                width += s[pos] == '\t' ? 8 - width % 8 : 1;
                ++pos;
            }
            if (pos >= s.size())
                return false;
            if (s[pos] == '\n') {
                ++pos;
                ++line;
                continue;
            }
            if (s[pos] == '#') {
                while (pos < s.size() && s[pos] != '\n')
                    ++pos;
                continue;
            }
            (void)start;
            if (width > indents.back()) {
                indents.push_back(width);
                push(Tok::Indent);
            } else {
                while (width < indents.back()) {
                    indents.pop_back();
                    push(Tok::Dedent);
                }
                XLVM_ASSERT(width == indents.back(),
                            "inconsistent indentation at line ", line);
            }
            return true;
        }
    }

    void
    lexNumber()
    {
        size_t start = pos;
        bool isFloat = false;
        if (s[pos] == '0' && pos + 1 < s.size() &&
            (s[pos + 1] == 'x' || s[pos + 1] == 'X')) {
            pos += 2;
            while (pos < s.size() && std::isxdigit(uint8_t(s[pos])))
                ++pos;
            Token t;
            t.kind = Tok::Int;
            t.line = line;
            t.intValue = int64_t(
                std::stoull(s.substr(start + 2, pos - start - 2), nullptr,
                            16));
            out.push_back(std::move(t));
            return;
        }
        while (pos < s.size() && std::isdigit(uint8_t(s[pos])))
            ++pos;
        if (pos < s.size() && s[pos] == '.' &&
            !(pos + 1 < s.size() && s[pos + 1] == '.')) {
            isFloat = true;
            ++pos;
            while (pos < s.size() && std::isdigit(uint8_t(s[pos])))
                ++pos;
        }
        if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
            isFloat = true;
            ++pos;
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-'))
                ++pos;
            while (pos < s.size() && std::isdigit(uint8_t(s[pos])))
                ++pos;
        }
        Token t;
        t.line = line;
        std::string text = s.substr(start, pos - start);
        if (isFloat) {
            t.kind = Tok::Float;
            t.floatValue = std::stod(text);
        } else {
            t.kind = Tok::Int;
            t.intValue = int64_t(std::stoull(text));
        }
        out.push_back(std::move(t));
    }

    void
    lexNameOrKeyword()
    {
        size_t start = pos;
        while (pos < s.size() &&
               (std::isalnum(uint8_t(s[pos])) || s[pos] == '_'))
            ++pos;
        std::string name = s.substr(start, pos - start);
        auto it = kKeywords.find(name);
        if (it != kKeywords.end()) {
            // Synthesize "not in" and "is not".
            if (it->second == Tok::KwNot && !out.empty() &&
                out.back().kind == Tok::KwIs) {
                out.back().kind = Tok::KwIsNot;
                return;
            }
            if (it->second == Tok::KwIn && !out.empty() &&
                out.back().kind == Tok::KwNot) {
                out.back().kind = Tok::KwNotIn;
                return;
            }
            push(it->second);
            return;
        }
        Token t;
        t.kind = Tok::Name;
        t.text = std::move(name);
        t.line = line;
        out.push_back(std::move(t));
    }

    void
    lexString(char quote)
    {
        ++pos;
        std::string value;
        while (pos < s.size() && s[pos] != quote) {
            char c = s[pos];
            if (c == '\\' && pos + 1 < s.size()) {
                ++pos;
                switch (s[pos]) {
                  case 'n':
                    value.push_back('\n');
                    break;
                  case 't':
                    value.push_back('\t');
                    break;
                  case 'r':
                    value.push_back('\r');
                    break;
                  case '0':
                    value.push_back('\0');
                    break;
                  case '\\':
                    value.push_back('\\');
                    break;
                  case '\'':
                    value.push_back('\'');
                    break;
                  case '"':
                    value.push_back('"');
                    break;
                  default:
                    value.push_back(s[pos]);
                    break;
                }
                ++pos;
            } else {
                XLVM_ASSERT(c != '\n', "unterminated string at line ",
                            line);
                value.push_back(c);
                ++pos;
            }
        }
        XLVM_ASSERT(pos < s.size(), "unterminated string at line ", line);
        ++pos;
        Token t;
        t.kind = Tok::Str;
        t.text = std::move(value);
        t.line = line;
        out.push_back(std::move(t));
    }

    void
    lexOperator()
    {
        char c = s[pos];
        auto two = [&](char n) {
            return pos + 1 < s.size() && s[pos + 1] == n;
        };
        auto three = [&](char n1, char n2) {
            return pos + 2 < s.size() && s[pos + 1] == n1 &&
                   s[pos + 2] == n2;
        };
        Tok kind;
        int len = 1;
        switch (c) {
          case '(':
            kind = Tok::LParen;
            ++bracketDepth;
            break;
          case ')':
            kind = Tok::RParen;
            --bracketDepth;
            break;
          case '[':
            kind = Tok::LBracket;
            ++bracketDepth;
            break;
          case ']':
            kind = Tok::RBracket;
            --bracketDepth;
            break;
          case '{':
            kind = Tok::LBrace;
            ++bracketDepth;
            break;
          case '}':
            kind = Tok::RBrace;
            --bracketDepth;
            break;
          case ',':
            kind = Tok::Comma;
            break;
          case ':':
            kind = Tok::Colon;
            break;
          case '.':
            kind = Tok::Dot;
            break;
          case '+':
            kind = two('=') ? (len = 2, Tok::PlusEq) : Tok::Plus;
            break;
          case '-':
            kind = two('=') ? (len = 2, Tok::MinusEq) : Tok::Minus;
            break;
          case '*':
            if (two('*'))
                kind = (len = 2, Tok::StarStar);
            else if (two('='))
                kind = (len = 2, Tok::StarEq);
            else
                kind = Tok::Star;
            break;
          case '/':
            if (three('/', '='))
                kind = (len = 3, Tok::SlashSlashEq);
            else if (two('/'))
                kind = (len = 2, Tok::SlashSlash);
            else if (two('='))
                kind = (len = 2, Tok::SlashEq);
            else
                kind = Tok::Slash;
            break;
          case '%':
            kind = two('=') ? (len = 2, Tok::PercentEq) : Tok::Percent;
            break;
          case '&':
            kind = two('=') ? (len = 2, Tok::AmpEq) : Tok::Amp;
            break;
          case '|':
            kind = two('=') ? (len = 2, Tok::PipeEq) : Tok::Pipe;
            break;
          case '^':
            kind = two('=') ? (len = 2, Tok::CaretEq) : Tok::Caret;
            break;
          case '<':
            if (three('<', '='))
                kind = (len = 3, Tok::LtLtEq);
            else if (two('<'))
                kind = (len = 2, Tok::LtLt);
            else if (two('='))
                kind = (len = 2, Tok::Le);
            else
                kind = Tok::Lt;
            break;
          case '>':
            if (three('>', '='))
                kind = (len = 3, Tok::GtGtEq);
            else if (two('>'))
                kind = (len = 2, Tok::GtGt);
            else if (two('='))
                kind = (len = 2, Tok::Ge);
            else
                kind = Tok::Gt;
            break;
          case '=':
            kind = two('=') ? (len = 2, Tok::EqEq) : Tok::Assign;
            break;
          case '!':
            XLVM_ASSERT(two('='), "unexpected '!' at line ", line);
            kind = Tok::NotEq;
            len = 2;
            break;
          default:
            XLVM_FATAL("unexpected character '", c, "' at line ", line);
        }
        pos += len;
        push(kind);
    }

    const std::string &s;
    size_t pos = 0;
    int line = 1;
    int bracketDepth = 0;
    std::vector<int> indents;
    std::vector<Token> out;
};

} // namespace

std::vector<Token>
tokenize(const std::string &source)
{
    return Lexer(source).run();
}

const char *
tokName(Tok t)
{
    switch (t) {
      case Tok::End: return "<end>";
      case Tok::Newline: return "<newline>";
      case Tok::Indent: return "<indent>";
      case Tok::Dedent: return "<dedent>";
      case Tok::Name: return "name";
      case Tok::Int: return "int";
      case Tok::Float: return "float";
      case Tok::Str: return "str";
      case Tok::KwDef: return "def";
      case Tok::KwClass: return "class";
      case Tok::KwIf: return "if";
      case Tok::KwElif: return "elif";
      case Tok::KwElse: return "else";
      case Tok::KwWhile: return "while";
      case Tok::KwFor: return "for";
      case Tok::KwIn: return "in";
      case Tok::KwReturn: return "return";
      case Tok::LParen: return "(";
      case Tok::RParen: return ")";
      case Tok::Comma: return ",";
      case Tok::Colon: return ":";
      case Tok::Assign: return "=";
      default: return "<tok>";
    }
}

} // namespace minipy
} // namespace xlvm
