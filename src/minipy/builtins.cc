/**
 * @file
 * MiniPy builtin functions and methods.
 *
 * Builtins execute through object-space operations so they record
 * correctly while the meta-interpreter is tracing; non-inlinable ones
 * record explicit AOT calls.
 */

#include <cmath>

#include "minipy/interp.h"
#include "rt/rstr.h"

namespace xlvm {
namespace minipy {

using jit::BoxType;
using jit::IrOp;
using jit::kNoArg;
using obj::ObjSpace;
using obj::W_Dict;
using obj::W_List;
using obj::W_Object;
using obj::W_Set;
using obj::W_Str;

namespace {

void
expectArgs(const std::vector<W_Object *> &args, size_t lo, size_t hi,
           const char *name)
{
    XLVM_ASSERT(args.size() >= lo && args.size() <= hi,
                "bad argument count to ", name, ": ", args.size());
}

/** Record a math-library call: guard arg type, call, map result. */
W_Object *
mathCall(ObjSpace &sp, uint32_t fn, W_Object *arg, double value)
{
    // Software libm costs: sqrt is near-hardware, transcendentals are
    // polynomial evaluations.
    uint64_t units = fn == rt::kAotCSqrt ? 10 : 28;
    sp.env().aotCall(fn, units);
    obj::W_Float *out = sp.newFloat(value);
    if (jit::Recorder *r = sp.rec()) {
        sp.recGuardType(arg);
        int32_t enc = sp.recCall(IrOp::Call, fn, BoxType::Ref,
                                 sp.recRef(arg));
        r->mapRef(out, enc);
    }
    return out;
}

} // namespace

uint32_t
builtinMethodFor(uint16_t type_id, const std::string &name)
{
    switch (type_id) {
      case obj::kTypeList:
        if (name == "append")
            return kBiListAppend;
        if (name == "pop")
            return kBiListPop;
        if (name == "sort")
            return kBiListSort;
        if (name == "reverse")
            return kBiListReverse;
        if (name == "extend")
            return kBiListExtend;
        if (name == "index")
            return kBiListIndex;
        if (name == "insert")
            return kBiListInsert;
        break;
      case obj::kTypeStr:
        if (name == "join")
            return kBiStrJoin;
        if (name == "split")
            return kBiStrSplit;
        if (name == "replace")
            return kBiStrReplace;
        if (name == "find")
            return kBiStrFind;
        if (name == "lower")
            return kBiStrLower;
        if (name == "upper")
            return kBiStrUpper;
        if (name == "strip")
            return kBiStrStrip;
        if (name == "startswith")
            return kBiStrStartswith;
        if (name == "endswith")
            return kBiStrEndswith;
        if (name == "count")
            return kBiStrCount;
        break;
      case obj::kTypeDict:
        if (name == "get")
            return kBiDictGet;
        if (name == "keys")
            return kBiDictKeys;
        if (name == "values")
            return kBiDictValues;
        if (name == "pop")
            return kBiDictPop;
        break;
      case obj::kTypeSet:
        if (name == "add")
            return kBiSetAdd;
        if (name == "discard")
            return kBiSetDiscard;
        if (name == "remove")
            return kBiSetDiscard;
        if (name == "issubset")
            return kBiSetIssubset;
        if (name == "union")
            return kBiSetUnion;
        if (name == "intersection")
            return kBiSetIntersection;
        if (name == "difference")
            return kBiSetDifference;
        break;
      default:
        break;
    }
    return 0;
}

void
installBuiltins(obj::ObjSpace &space, obj::W_Dict *globals)
{
    auto add = [&](const char *name, uint32_t id) {
        obj::W_NativeFunc *fn =
            space.heap().alloc<obj::W_NativeFunc>(id, name);
        space.setGlobal(globals, space.intern(name), fn);
    };
    add("print", kBiPrint);
    add("range", kBiRange);
    add("len", kBiLen);
    add("abs", kBiAbs);
    add("min", kBiMin);
    add("max", kBiMax);
    add("int", kBiInt);
    add("float", kBiFloat);
    add("str", kBiStr);
    add("bool", kBiBool);
    add("chr", kBiChr);
    add("ord", kBiOrd);
    add("list", kBiList);
    add("tuple", kBiTuple);
    add("dict", kBiDict);
    add("set", kBiSet);
    add("sqrt", kBiSqrt);
    add("sin", kBiSin);
    add("cos", kBiCos);
    add("exp", kBiExp);
    add("log", kBiLog);
    add("floor", kBiFloor);
    add("pow", kBiPow);
    add("json_escape", kBiJsonEscape);
    // MiniRkt runtime names.
    add("display", kBiDisplay);
    add("newline", kBiNewline);
    add("cons", kBiCons);
    add("car", kBiCar);
    add("cdr", kBiCdr);
    add("make_vector", kBiMakeVector);
}

W_Object *
callBuiltin(Interp &in, uint32_t id, std::vector<W_Object *> &args)
{
    ObjSpace &sp = in.ctx.space;
    jit::Recorder *rec = sp.rec();

    switch (id) {
      case kBiPrint: {
        if (rec) {
            in.abortTrace(jit::AbortReason::kUnsupportedOp);
            rec = nullptr;
        }
        std::string line;
        for (size_t i = 0; i < args.size(); ++i) {
            if (i)
                line += " ";
            line += sp.str(args[i])->value;
        }
        line += "\n";
        in.printed += line;
        return sp.none();
      }

      case kBiRange: {
        expectArgs(args, 1, 3, "range");
        int64_t b = 0, e = 0, s = 1;
        if (args.size() == 1) {
            e = sp.unwrapInt(args[0]);
        } else {
            b = sp.unwrapInt(args[0]);
            e = sp.unwrapInt(args[1]);
            if (args.size() == 3)
                s = sp.unwrapInt(args[2]);
        }
        XLVM_ASSERT(s != 0, "range() step must not be zero");
        obj::W_Range *r = sp.heap().alloc<obj::W_Range>(b, e, s);
        if (rec) {
            for (W_Object *a : args)
                sp.recGuardType(a);
            int32_t be = args.size() == 1 ? rec->constInt(0)
                                          : sp.recUnboxInt(args[0]);
            int32_t ee = args.size() == 1 ? sp.recUnboxInt(args[0])
                                          : sp.recUnboxInt(args[1]);
            int32_t se = args.size() == 3 ? sp.recUnboxInt(args[2])
                                          : rec->constInt(1);
            int32_t box = rec->emit(IrOp::NewWithVtable, kNoArg, kNoArg,
                                    kNoArg, obj::kTypeRange);
            rec->emit(IrOp::SetfieldGc, box, be, kNoArg,
                      obj::kFieldRangeCur);
            rec->emit(IrOp::SetfieldGc, box, ee, kNoArg,
                      obj::kFieldRangeStop);
            rec->emit(IrOp::SetfieldGc, box, se, kNoArg,
                      obj::kFieldRangeStep);
            rec->mapRef(r, box);
        }
        return r;
      }

      case kBiLen:
        expectArgs(args, 1, 1, "len");
        return sp.len(args[0]);

      case kBiAbs:
        expectArgs(args, 1, 1, "abs");
        return sp.abs_(args[0]);

      case kBiMin:
      case kBiMax: {
        expectArgs(args, 1, 2, id == kBiMin ? "min" : "max");
        if (args.size() == 2) {
            W_Object *c = sp.cmp(id == kBiMin ? obj::CmpOp::Lt
                                              : obj::CmpOp::Gt,
                                 args[0], args[1]);
            return sp.isTrueAndGuard(c) ? args[0] : args[1];
        }
        // min/max over a list.
        XLVM_ASSERT(args[0]->typeId() == obj::kTypeList,
                    "min/max needs a list");
        auto *lst = static_cast<W_List *>(args[0]);
        XLVM_ASSERT(lst->length() > 0, "min/max of empty list");
        if (rec) {
            // Opaque runtime scan.
            sp.recGuardType(args[0]);
            int32_t enc = sp.recCall(IrOp::Call, rt::kAotListSafeFind,
                                     BoxType::Ref, sp.recRef(args[0]));
            W_Object *best = sp.listGetRaw(lst, 0);
            for (size_t i = 1; i < lst->length(); ++i) {
                W_Object *x = sp.listGetRaw(lst, i);
                bool better = id == kBiMin
                                  ? obj::objHash(x) != obj::objHash(x)
                                  : false;
                (void)better;
                double dx = sp.toDouble(x), db = sp.toDouble(best);
                if ((id == kBiMin && dx < db) ||
                    (id == kBiMax && dx > db))
                    best = x;
            }
            sp.env().aotCall(rt::kAotListSafeFind, lst->length() + 1);
            rec->mapRef(best, enc);
            return best;
        }
        W_Object *best = sp.listGetRaw(lst, 0);
        for (size_t i = 1; i < lst->length(); ++i) {
            W_Object *x = sp.listGetRaw(lst, i);
            double dx = sp.toDouble(x), db = sp.toDouble(best);
            if ((id == kBiMin && dx < db) || (id == kBiMax && dx > db))
                best = x;
        }
        sp.env().aotCall(rt::kAotListSafeFind, lst->length() + 1);
        return best;
      }

      case kBiInt: {
        expectArgs(args, 1, 1, "int");
        W_Object *a = args[0];
        switch (a->typeId()) {
          case obj::kTypeInt:
            if (rec)
                sp.recGuardType(a);
            return a;
          case obj::kTypeFloat: {
            double d = sp.unwrapFloat(a);
            if (rec) {
                sp.recGuardType(a);
                int32_t enc = rec->emit(IrOp::CastFloatToInt,
                                        sp.recUnboxFloat(a));
                return sp.recBoxInt(int64_t(d), enc);
            }
            return sp.newInt(int64_t(d));
          }
          case obj::kTypeStr: {
            int64_t v = 0;
            uint64_t cost = 0;
            bool ok = rt::stringToInt(
                static_cast<W_Str *>(a)->value, &v, &cost);
            XLVM_ASSERT(ok, "invalid int literal");
            sp.env().aotCall(rt::kAotStringToInt, cost * 3 + 12);
            obj::W_Int *w = sp.newInt(v);
            if (rec) {
                sp.recGuardType(a);
                int32_t enc = sp.recCall(IrOp::Call, rt::kAotStringToInt,
                                         BoxType::Ref, sp.recRef(a));
                rec->mapRef(w, enc);
            }
            return w;
          }
          case obj::kTypeBool:
            if (rec)
                sp.recGuardType(a);
            return sp.newInt(sp.unwrapInt(a));
          default:
            XLVM_FATAL("int() of ", obj::typeName(a->typeId()));
        }
      }

      case kBiFloat: {
        expectArgs(args, 1, 1, "float");
        W_Object *a = args[0];
        if (a->typeId() == obj::kTypeFloat) {
            if (rec)
                sp.recGuardType(a);
            return a;
        }
        if (a->typeId() == obj::kTypeStr) {
            double d =
                std::strtod(static_cast<W_Str *>(a)->value.c_str(),
                            nullptr);
            sp.env().aotCall(rt::kAotStringToFloat, 8);
            obj::W_Float *w = sp.newFloat(d);
            if (rec) {
                sp.recGuardType(a);
                int32_t enc = sp.recCall(IrOp::Call,
                                         rt::kAotStringToFloat,
                                         BoxType::Ref, sp.recRef(a));
                rec->mapRef(w, enc);
            }
            return w;
        }
        double d = sp.toDouble(a);
        if (rec) {
            sp.recGuardType(a);
            int32_t enc = rec->emit(IrOp::CastIntToFloat,
                                    sp.recUnboxInt(a));
            return sp.recBoxFloat(d, enc);
        }
        return sp.newFloat(d);
      }

      case kBiStr:
        expectArgs(args, 1, 1, "str");
        return sp.str(args[0]);

      case kBiBool:
        expectArgs(args, 1, 1, "bool");
        return sp.newBool(sp.isTrueAndGuard(args[0]));

      case kBiChr: {
        expectArgs(args, 1, 1, "chr");
        int64_t c = sp.unwrapInt(args[0]);
        W_Str *w = sp.newStr(std::string(1, char(c)));
        if (rec) {
            sp.recGuardType(args[0]);
            int32_t enc = sp.recCall(IrOp::Call, rt::kAotStrSlice,
                                     BoxType::Ref, sp.recRef(args[0]),
                                     sp.recUnboxInt(args[0]), kNoArg,
                                     obj::kSemChr);
            rec->mapRef(w, enc);
        }
        return w;
      }
      case kBiOrd: {
        expectArgs(args, 1, 1, "ord");
        const std::string &s = sp.unwrapStr(args[0]);
        XLVM_ASSERT(s.size() == 1, "ord() needs a 1-char string");
        if (rec) {
            sp.recGuardType(args[0]);
            int32_t enc = rec->emitTyped(IrOp::Strgetitem, BoxType::Int,
                                         sp.recRef(args[0]),
                                         rec->constInt(0));
            return sp.recBoxInt(uint8_t(s[0]), enc);
        }
        return sp.newInt(uint8_t(s[0]));
      }

      case kBiList: {
        expectArgs(args, 0, 1, "list");
        W_List *out = sp.newList();
        if (rec) {
            int32_t enc = sp.recCall(IrOp::Call, rt::kAotAllocContainer,
                                     BoxType::Ref, kNoArg, kNoArg,
                                     kNoArg, obj::kSemNewList);
            rec->mapRef(out, enc);
        }
        if (!args.empty()) {
            if (args[0]->typeId() == obj::kTypeList ||
                args[0]->typeId() == obj::kTypeTuple) {
                sp.listExtend(out, args[0]);
            } else {
                // Generic iteration (range, dict, set, str).
                W_Object *it = sp.iter(args[0]);
                while (W_Object *x = sp.iterNext(it))
                    sp.listAppend(out, x);
            }
        }
        return out;
      }

      case kBiTuple: {
        expectArgs(args, 0, 1, "tuple");
        std::vector<W_Object *> items;
        if (!args.empty()) {
            XLVM_ASSERT(args[0]->typeId() == obj::kTypeList,
                        "tuple() needs a list");
            auto *lst = static_cast<W_List *>(args[0]);
            for (size_t i = 0; i < lst->length(); ++i)
                items.push_back(sp.listGetRaw(lst, int64_t(i)));
        }
        obj::W_Tuple *t = sp.newTuple(std::move(items));
        if (rec) {
            int32_t enc = sp.recCall(
                IrOp::Call, rt::kAotAllocContainer, BoxType::Ref,
                args.empty() ? kNoArg : sp.recRef(args[0]), kNoArg,
                kNoArg, obj::kSemListToTuple);
            rec->mapRef(t, enc);
        }
        return t;
      }

      case kBiDict: {
        W_Dict *d = sp.newDict();
        if (rec) {
            int32_t enc = sp.recCall(IrOp::Call, rt::kAotAllocContainer,
                                     BoxType::Ref, kNoArg, kNoArg,
                                     kNoArg, obj::kSemNewDict);
            rec->mapRef(d, enc);
        }
        return d;
      }
      case kBiSet: {
        W_Set *s = sp.newSet();
        if (rec) {
            int32_t enc = sp.recCall(IrOp::Call, rt::kAotAllocContainer,
                                     BoxType::Ref, kNoArg, kNoArg,
                                     kNoArg, obj::kSemNewSet);
            rec->mapRef(s, enc);
        }
        if (!args.empty()) {
            W_Object *it = sp.iter(args[0]);
            while (W_Object *x = sp.iterNext(it))
                sp.setAdd(s, x);
        }
        return s;
      }

      case kBiSqrt:
        expectArgs(args, 1, 1, "sqrt");
        return mathCall(sp, rt::kAotCSqrt, args[0],
                        std::sqrt(sp.toDouble(args[0])));
      case kBiSin:
        return mathCall(sp, rt::kAotCSin, args[0],
                        std::sin(sp.toDouble(args[0])));
      case kBiCos:
        return mathCall(sp, rt::kAotCCos, args[0],
                        std::cos(sp.toDouble(args[0])));
      case kBiExp:
        return mathCall(sp, rt::kAotCExp, args[0],
                        std::exp(sp.toDouble(args[0])));
      case kBiLog:
        return mathCall(sp, rt::kAotCLog, args[0],
                        std::log(sp.toDouble(args[0])));
      case kBiFloor: {
        expectArgs(args, 1, 1, "floor");
        double d = std::floor(sp.toDouble(args[0]));
        if (rec) {
            sp.recGuardType(args[0]);
            int32_t fv = args[0]->typeId() == obj::kTypeFloat
                             ? sp.recUnboxFloat(args[0])
                             : rec->emit(IrOp::CastIntToFloat,
                                         sp.recUnboxInt(args[0]));
            int32_t enc = rec->emit(IrOp::CastFloatToInt, fv);
            return sp.recBoxInt(int64_t(d), enc);
        }
        return sp.newInt(int64_t(d));
      }
      case kBiPow:
        expectArgs(args, 2, 2, "pow");
        return sp.pow_(args[0], args[1]);

      case kBiJsonEscape: {
        expectArgs(args, 1, 1, "json_escape");
        uint64_t cost = 0;
        std::string s = rt::jsonEscape(sp.unwrapStr(args[0]), &cost);
        sp.env().aotCall(rt::kAotJsonEscape, cost);
        W_Str *w = sp.newStr(std::move(s));
        if (rec) {
            sp.recGuardType(args[0]);
            int32_t enc = sp.recCall(IrOp::Call, rt::kAotJsonEscape,
                                     BoxType::Ref, sp.recRef(args[0]));
            rec->mapRef(w, enc);
        }
        return w;
      }

      // ---- methods ------------------------------------------------------
      case kBiListAppend:
        expectArgs(args, 2, 2, "append");
        sp.listAppend(static_cast<W_List *>(args[0]), args[1]);
        return sp.none();
      case kBiListPop: {
        expectArgs(args, 1, 2, "pop");
        int64_t idx = args.size() == 2 ? sp.unwrapInt(args[1]) : -1;
        int32_t ie = kNoArg;
        if (rec && args.size() == 2) {
            sp.recGuardType(args[1]);
            ie = sp.recUnboxInt(args[1]);
        }
        return sp.listPop(static_cast<W_List *>(args[0]), idx, ie);
      }
      case kBiListSort:
        sp.listSort(static_cast<W_List *>(args[0]));
        return sp.none();
      case kBiListReverse:
        sp.listReverse(static_cast<W_List *>(args[0]));
        return sp.none();
      case kBiListExtend:
        expectArgs(args, 2, 2, "extend");
        sp.listExtend(static_cast<W_List *>(args[0]), args[1]);
        return sp.none();
      case kBiListIndex: {
        expectArgs(args, 2, 2, "index");
        int64_t i =
            sp.listIndexOf(static_cast<W_List *>(args[0]), args[1]);
        XLVM_ASSERT(i >= 0, "ValueError: not in list");
        // listIndexOf pinned the found index with a guard, so the boxed
        // result carries the (now-constant) value.
        if (rec)
            return sp.recBoxInt(i, rec->constInt(i));
        return sp.newInt(i);
      }
      case kBiListInsert: {
        expectArgs(args, 3, 3, "insert");
        auto *lst = static_cast<W_List *>(args[0]);
        int64_t at = sp.unwrapInt(args[1]);
        // insert == setslice [at:at] = [x]
        W_List *one = sp.newList();
        sp.listAppend(one, args[2]);
        if (rec) {
            int32_t enc = sp.recCall(IrOp::Call, rt::kAotAllocContainer,
                                     BoxType::Ref, kNoArg, kNoArg,
                                     kNoArg, obj::kSemNewList);
            rec->mapRef(one, enc);
            sp.recGuardType(args[1]);
            sp.listSetSlice(lst, at, at, one, sp.recUnboxInt(args[1]),
                            sp.recUnboxInt(args[1]));
        } else {
            sp.listSetSlice(lst, at, at, one);
        }
        return sp.none();
      }

      case kBiStrJoin:
        expectArgs(args, 2, 2, "join");
        return sp.strJoin(static_cast<W_Str *>(args[0]),
                          static_cast<W_List *>(args[1]));
      case kBiStrSplit:
        expectArgs(args, 2, 2, "split");
        return sp.strSplit(static_cast<W_Str *>(args[0]),
                           static_cast<W_Str *>(args[1]));
      case kBiStrReplace:
        expectArgs(args, 3, 3, "replace");
        return sp.strReplace(static_cast<W_Str *>(args[0]),
                             static_cast<W_Str *>(args[1]),
                             static_cast<W_Str *>(args[2]));
      case kBiStrFind: {
        expectArgs(args, 2, 3, "find");
        int64_t start =
            args.size() == 3 ? sp.unwrapInt(args[2]) : 0;
        int32_t se = kNoArg;
        if (rec && args.size() == 3) {
            sp.recGuardType(args[2]);
            se = sp.recUnboxInt(args[2]);
        }
        return sp.strFind(static_cast<W_Str *>(args[0]),
                          static_cast<W_Str *>(args[1]), start, se);
      }
      case kBiStrLower:
        return sp.strLower(static_cast<W_Str *>(args[0]));
      case kBiStrUpper:
        return sp.strUpper(static_cast<W_Str *>(args[0]));
      case kBiStrStrip:
        return sp.strStrip(static_cast<W_Str *>(args[0]));
      case kBiStrStartswith:
      case kBiStrEndswith: {
        expectArgs(args, 2, 2, "startswith");
        const std::string &s = sp.unwrapStr(args[0]);
        const std::string &p = sp.unwrapStr(args[1]);
        bool res = id == kBiStrStartswith ? rt::startsWith(s, p)
                                          : rt::endsWith(s, p);
        sp.env().aotCall(rt::kAotStrCmp, p.size() + 1);
        if (rec) {
            sp.recGuardType(args[0]);
            int32_t enc = sp.recCall(IrOp::Call, rt::kAotStrCmp,
                                     BoxType::Int, sp.recRef(args[0]),
                                     sp.recRef(args[1]), kNoArg,
                                     id == kBiStrStartswith
                                         ? obj::kSemStrStartswith
                                         : obj::kSemStrEndswith);
            if (res)
                rec->guardTrue(enc);
            else
                rec->guardFalse(enc);
        }
        return sp.newBool(res);
      }
      case kBiStrCount: {
        expectArgs(args, 2, 2, "count");
        uint64_t cost = 0;
        int64_t n = rt::count(sp.unwrapStr(args[0]),
                              sp.unwrapStr(args[1]), &cost);
        sp.env().aotCall(rt::kAotStrFind, cost);
        obj::W_Int *w = sp.newInt(n);
        if (rec) {
            sp.recGuardType(args[0]);
            int32_t enc = sp.recCall(IrOp::Call, rt::kAotStrFind,
                                     BoxType::Ref, sp.recRef(args[0]),
                                     sp.recRef(args[1]), kNoArg,
                                     obj::kSemStrCount);
            rec->mapRef(w, enc);
        }
        return w;
      }

      case kBiDictGet: {
        expectArgs(args, 2, 3, "get");
        W_Object *fallback = args.size() == 3
                                 ? args[2]
                                 : static_cast<W_Object *>(sp.none());
        W_Object *v = sp.dictGet(static_cast<W_Dict *>(args[0]),
                                 args[1], nullptr);
        if (!v)
            return fallback;
        return v;
      }
      case kBiDictKeys:
        return sp.dictKeys(static_cast<W_Dict *>(args[0]));
      case kBiDictValues:
        return sp.dictValues(static_cast<W_Dict *>(args[0]));
      case kBiDictPop: {
        expectArgs(args, 2, 2, "pop");
        auto *d = static_cast<W_Dict *>(args[0]);
        W_Object *v = sp.dictGet(d, args[1], nullptr);
        XLVM_ASSERT(v, "KeyError in dict.pop");
        sp.dictDel(d, args[1]);
        return v;
      }

      case kBiSetAdd:
        expectArgs(args, 2, 2, "add");
        sp.setAdd(static_cast<W_Set *>(args[0]), args[1]);
        return sp.none();
      case kBiSetDiscard:
        expectArgs(args, 2, 2, "discard");
        sp.setDiscard(static_cast<W_Set *>(args[0]), args[1]);
        return sp.none();
      case kBiSetIssubset:
        return sp.newBool(sp.setIsSubset(static_cast<W_Set *>(args[0]),
                                         static_cast<W_Set *>(args[1])));
      case kBiSetUnion:
        return sp.setUnion(static_cast<W_Set *>(args[0]),
                           static_cast<W_Set *>(args[1]));
      case kBiSetIntersection:
        return sp.setIntersect(static_cast<W_Set *>(args[0]),
                               static_cast<W_Set *>(args[1]));
      case kBiSetDifference:
        return sp.setDifference(static_cast<W_Set *>(args[0]),
                                static_cast<W_Set *>(args[1]));

      case kBiDisplay: {
        if (rec) {
            in.abortTrace(jit::AbortReason::kUnsupportedOp);
            rec = nullptr;
        }
        expectArgs(args, 1, 1, "display");
        in.printed += sp.str(args[0])->value;
        return sp.none();
      }
      case kBiNewline:
        if (rec) {
            in.abortTrace(jit::AbortReason::kUnsupportedOp);
            rec = nullptr;
        }
        in.printed += "\n";
        return sp.none();

      case kBiCons: {
        expectArgs(args, 2, 2, "cons");
        obj::W_Pair *p =
            sp.heap().alloc<obj::W_Pair>(args[0], args[1]);
        if (rec) {
            int32_t box = rec->emit(IrOp::NewWithVtable, kNoArg, kNoArg,
                                    kNoArg, obj::kTypePair);
            rec->emit(IrOp::SetfieldGc, box, sp.recRef(args[0]), kNoArg,
                      obj::kFieldCar);
            rec->emit(IrOp::SetfieldGc, box, sp.recRef(args[1]), kNoArg,
                      obj::kFieldCdr);
            rec->mapRef(p, box);
        }
        return p;
      }
      case kBiCar:
      case kBiCdr: {
        expectArgs(args, 1, 1, "car/cdr");
        XLVM_ASSERT(args[0]->typeId() == obj::kTypePair,
                    "car/cdr of non-pair");
        auto *p = static_cast<obj::W_Pair *>(args[0]);
        W_Object *out = id == kBiCar ? p->car : p->cdr;
        if (rec) {
            sp.recGuardType(args[0]);
            int32_t enc = rec->emitTyped(
                IrOp::GetfieldGc, BoxType::Ref, sp.recRef(args[0]),
                kNoArg, kNoArg,
                id == kBiCar ? obj::kFieldCar : obj::kFieldCdr);
            rec->mapRef(out, enc);
        }
        return out;
      }
      case kBiMakeVector: {
        expectArgs(args, 2, 2, "make_vector");
        int64_t count = sp.unwrapInt(args[0]);
        W_List *out = sp.newList();
        for (int64_t i = 0; i < count; ++i)
            sp.listAppend(out, args[1]);
        if (rec) {
            sp.recGuardType(args[0]);
            int32_t enc = sp.recCall(
                IrOp::Call, rt::kAotAllocContainer, BoxType::Ref,
                sp.recUnboxInt(args[0]), sp.recRef(args[1]), kNoArg,
                obj::kSemMakeVector);
            rec->mapRef(out, enc);
        }
        return out;
      }

      default:
        XLVM_PANIC("unknown builtin id ", id);
    }
}

} // namespace minipy
} // namespace xlvm
