/**
 * @file
 * MiniPy bytecode compiler.
 */

#ifndef XLVM_MINIPY_COMPILER_H
#define XLVM_MINIPY_COMPILER_H

#include <memory>

#include "minipy/ast.h"
#include "minipy/code.h"
#include "obj/space.h"

namespace xlvm {
namespace minipy {

/**
 * Compile a parsed module. Constants are allocated in @p space's heap;
 * register the returned Program as a GC root provider before executing.
 */
std::unique_ptr<Program> compile(const Module &mod, obj::ObjSpace &space);

/** Convenience: parse + compile. */
std::unique_ptr<Program> compileSource(const std::string &source,
                                       obj::ObjSpace &space);

} // namespace minipy
} // namespace xlvm

#endif // XLVM_MINIPY_COMPILER_H
