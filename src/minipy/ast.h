/**
 * @file
 * MiniPy abstract syntax tree.
 */

#ifndef XLVM_MINIPY_AST_H
#define XLVM_MINIPY_AST_H

#include <memory>
#include <string>
#include <vector>

namespace xlvm {
namespace minipy {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class ExprKind : uint8_t
{
    IntLit,
    FloatLit,
    StrLit,
    BoolLit,
    NoneLit,
    Name,
    BinOp,     ///< op in text: + - * / // % ** & | ^ << >>
    UnaryOp,   ///< "-" or "not"
    Compare,   ///< op: < <= == != > >= is isnot in notin
    BoolOp,    ///< "and" / "or", short-circuit
    Call,
    Attribute, ///< value.attr
    Subscript, ///< value[index]
    Slice,     ///< value[lo:hi] (as Subscript with slice=true)
    ListDisplay,
    TupleDisplay,
    DictDisplay,
    SetDisplay,
};

struct Expr
{
    ExprKind kind;
    int line = 0;

    int64_t intValue = 0;
    double floatValue = 0.0;
    bool boolValue = false;
    std::string strValue; ///< literal text / name / attr / op

    ExprPtr a; ///< left operand / callee / value
    ExprPtr b; ///< right operand / index / slice lo
    ExprPtr c; ///< slice hi
    std::vector<ExprPtr> items; ///< call args / display elements
    std::vector<ExprPtr> values; ///< dict display values
};

enum class StmtKind : uint8_t
{
    ExprStmt,
    Assign,     ///< target(s) = value; target in a; multi via items
    AugAssign,  ///< target op= value (op in strValue)
    If,
    While,
    For,
    Def,
    ClassDef,
    Return,
    Break,
    Continue,
    Pass,
    Global,
};

struct Stmt
{
    StmtKind kind;
    int line = 0;

    std::string name; ///< def/class name, aug op
    ExprPtr target;   ///< assign target / for target / condition
    ExprPtr value;    ///< assigned value / return value / iterable
    std::vector<ExprPtr> targets; ///< tuple-unpack targets
    std::vector<StmtPtr> body;
    std::vector<StmtPtr> orelse;
    std::vector<std::string> params;       ///< def params
    std::vector<ExprPtr> defaults;         ///< def default values
    std::vector<StmtPtr> methods;          ///< class body defs
    std::vector<std::string> globalNames;  ///< global statement
};

/** A parsed module. */
struct Module
{
    std::vector<StmtPtr> body;
};

} // namespace minipy
} // namespace xlvm

#endif // XLVM_MINIPY_AST_H
