#include "minipy/compiler.h"

#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "minipy/parser.h"

namespace xlvm {
namespace minipy {

namespace {

/** Collect names assigned within a function body (locals candidates). */
void
collectAssigned(const std::vector<StmtPtr> &body,
                std::unordered_set<std::string> &assigned,
                std::unordered_set<std::string> &declared_global)
{
    for (const StmtPtr &s : body) {
        switch (s->kind) {
          case StmtKind::Assign:
            if (s->target && s->target->kind == ExprKind::Name)
                assigned.insert(s->target->strValue);
            for (const ExprPtr &t : s->targets) {
                if (t->kind == ExprKind::Name)
                    assigned.insert(t->strValue);
            }
            break;
          case StmtKind::AugAssign:
            if (s->target->kind == ExprKind::Name)
                assigned.insert(s->target->strValue);
            break;
          case StmtKind::For:
            for (const ExprPtr &t : s->targets)
                assigned.insert(t->strValue);
            collectAssigned(s->body, assigned, declared_global);
            break;
          case StmtKind::If:
          case StmtKind::While:
            collectAssigned(s->body, assigned, declared_global);
            collectAssigned(s->orelse, assigned, declared_global);
            break;
          case StmtKind::Global:
            for (const std::string &n : s->globalNames)
                declared_global.insert(n);
            break;
          default:
            break;
        }
    }
}

class FnCompiler
{
  public:
    FnCompiler(Program &prog, obj::ObjSpace &space, std::string name,
               const std::vector<std::string> &params, bool is_module)
        : program(prog), space_(space), isModule(is_module)
    {
        code = std::make_unique<Code>();
        code->name = std::move(name);
        code->numParams = uint32_t(params.size());
        for (const std::string &p : params)
            localIndex(p);
    }

    Code *
    compileBody(const std::vector<StmtPtr> &body)
    {
        if (!isModule) {
            std::unordered_set<std::string> assigned, declaredGlobal;
            collectAssigned(body, assigned, declaredGlobal);
            globals = std::move(declaredGlobal);
            for (const std::string &n : assigned) {
                if (!globals.count(n))
                    localIndex(n);
            }
        }
        for (const StmtPtr &s : body)
            stmt(*s);
        // Implicit return None.
        emit(Op::LoadConst, constIdx(space_.none()));
        emit(Op::ReturnValue);
        markLoopHeaders();
        Code *raw = code.get();
        program.codes.push_back(std::move(code));
        return raw;
    }

  private:
    // ---- emission helpers ------------------------------------------------

    int
    emit(Op op, int32_t arg = 0)
    {
        code->instrs.push_back(Instr{op, arg});
        return int(code->instrs.size() - 1);
    }

    int here() const { return int(code->instrs.size()); }

    void patch(int at, int32_t target) { code->instrs[at].arg = target; }

    int32_t
    constIdx(obj::W_Object *w)
    {
        for (size_t i = 0; i < code->consts.size(); ++i) {
            if (code->consts[i] == w)
                return int32_t(i);
        }
        code->consts.push_back(w);
        return int32_t(code->consts.size() - 1);
    }

    int32_t
    constInt(int64_t v)
    {
        // Cache small int constants by value.
        for (size_t i = 0; i < code->consts.size(); ++i) {
            auto *w = code->consts[i];
            if (w->typeId() == obj::kTypeInt &&
                static_cast<obj::W_Int *>(w)->value == v)
                return int32_t(i);
        }
        return constIdx(space_.newInt(v));
    }

    int32_t
    nameIdx(const std::string &n)
    {
        obj::W_Str *w = space_.intern(n);
        for (size_t i = 0; i < code->names.size(); ++i) {
            if (code->names[i] == w)
                return int32_t(i);
        }
        code->names.push_back(w);
        return int32_t(code->names.size() - 1);
    }

    int32_t
    localIndex(const std::string &n)
    {
        for (size_t i = 0; i < code->localNames.size(); ++i) {
            if (code->localNames[i] == n)
                return int32_t(i);
        }
        code->localNames.push_back(n);
        return int32_t(code->localNames.size() - 1);
    }

    bool
    isLocal(const std::string &n) const
    {
        if (isModule)
            return false;
        for (const auto &ln : code->localNames) {
            if (ln == n)
                return true;
        }
        return false;
    }

    void
    markLoopHeaders()
    {
        code->isLoopHeader.assign(code->instrs.size() + 1, false);
        for (const Instr &ins : code->instrs) {
            if (ins.op == Op::JumpBack)
                code->isLoopHeader[ins.arg] = true;
        }
        code->localNames.resize(code->localNames.size());
    }

    // ---- statements ------------------------------------------------------

    struct LoopCtx
    {
        int headerPc;
        std::vector<int> breakJumps;
    };

    void
    stmt(const Stmt &s)
    {
        switch (s.kind) {
          case StmtKind::ExprStmt:
            expr(*s.value);
            emit(Op::PopTop);
            break;
          case StmtKind::Assign:
            assign(s);
            break;
          case StmtKind::AugAssign:
            augAssign(s);
            break;
          case StmtKind::If:
            ifStmt(s);
            break;
          case StmtKind::While:
            whileStmt(s);
            break;
          case StmtKind::For:
            forStmt(s);
            break;
          case StmtKind::Return:
            if (s.value)
                expr(*s.value);
            else
                emit(Op::LoadConst, constIdx(space_.none()));
            emit(Op::ReturnValue);
            break;
          case StmtKind::Break: {
            XLVM_ASSERT(!loops.empty(), "break outside loop, line ",
                        s.line);
            loops.back().breakJumps.push_back(emit(Op::Jump, -1));
            break;
          }
          case StmtKind::Continue:
            XLVM_ASSERT(!loops.empty(), "continue outside loop, line ",
                        s.line);
            emit(Op::JumpBack, loops.back().headerPc);
            break;
          case StmtKind::Pass:
          case StmtKind::Global:
            break;
          case StmtKind::Def: {
            // Defaults pushed first, then MakeFunction.
            for (const ExprPtr &d : s.defaults)
                expr(*d);
            FnCompiler sub(program, space_, s.name, s.params, false);
            sub.code->numDefaults = uint32_t(s.defaults.size());
            Code *fn = sub.compileBody(s.body);
            int32_t codeIdx = -1;
            for (size_t i = 0; i < program.codes.size(); ++i) {
                if (program.codes[i].get() == fn)
                    codeIdx = int32_t(i);
            }
            emit(Op::MakeFunction, codeIdx);
            storeName(s.name);
            break;
          }
          case StmtKind::ClassDef: {
            ClassSpec spec;
            spec.name = s.name;
            if (!s.globalNames.empty())
                spec.baseName = s.globalNames[0];
            for (const StmtPtr &m : s.methods) {
                XLVM_ASSERT(m->defaults.empty(),
                            "method defaults unsupported, line ",
                            m->line);
                FnCompiler sub(program, space_,
                               s.name + "." + m->name, m->params,
                               false);
                Code *fn = sub.compileBody(m->body);
                spec.methods.emplace_back(m->name, fn);
            }
            program.classes.push_back(std::move(spec));
            emit(Op::MakeClass, int32_t(program.classes.size() - 1));
            storeName(s.name);
            break;
          }
        }
    }

    void
    storeName(const std::string &n)
    {
        if (isLocal(n))
            emit(Op::StoreFast, localIndex(n));
        else
            emit(Op::StoreGlobal, nameIdx(n));
    }

    void
    storeTarget(const Expr &t)
    {
        switch (t.kind) {
          case ExprKind::Name:
            storeName(t.strValue);
            break;
          case ExprKind::Attribute:
            // stack: value; push obj, then StoreAttr pops obj, value.
            expr(*t.a);
            emit(Op::StoreAttr, nameIdx(t.strValue));
            break;
          case ExprKind::Subscript:
            // stack: value; push obj, index; StoreSubscr pops them.
            expr(*t.a);
            expr(*t.b);
            emit(Op::StoreSubscr);
            break;
          case ExprKind::Slice:
            expr(*t.a);
            if (t.b)
                expr(*t.b);
            else
                emit(Op::LoadConst, constIdx(space_.none()));
            if (t.c)
                expr(*t.c);
            else
                emit(Op::LoadConst, constIdx(space_.none()));
            emit(Op::StoreSlice);
            break;
          default:
            XLVM_FATAL("invalid assignment target, line ", t.line);
        }
    }

    void
    assign(const Stmt &s)
    {
        expr(*s.value);
        if (s.target) {
            storeTarget(*s.target);
            return;
        }
        // Tuple unpack.
        emit(Op::UnpackSequence, int32_t(s.targets.size()));
        for (const ExprPtr &t : s.targets)
            storeTarget(*t);
    }

    void
    augAssign(const Stmt &s)
    {
        const Expr &t = *s.target;
        Op binop = binOpFor(s.name, s.line);
        switch (t.kind) {
          case ExprKind::Name:
            expr(t);
            expr(*s.value);
            emit(binop);
            storeName(t.strValue);
            break;
          case ExprKind::Subscript:
            // obj[i] op= v: evaluate obj and i once.
            expr(*t.a);
            expr(*t.b);
            emit(Op::DupTopTwo);   // obj i obj i
            emit(Op::BinSubscr);   // obj i cur
            expr(*s.value);        // obj i cur v
            emit(binop);           // obj i new
            emit(Op::RotThree);    // new obj i
            emit(Op::StoreSubscr);
            break;
          case ExprKind::Attribute:
            expr(*t.a);
            emit(Op::DupTop);
            emit(Op::LoadAttr, nameIdx(t.strValue));
            expr(*s.value);
            emit(binop);
            emit(Op::RotTwo);
            emit(Op::StoreAttr, nameIdx(t.strValue));
            break;
          default:
            XLVM_FATAL("invalid augmented target, line ", t.line);
        }
    }

    Op
    binOpFor(const std::string &op, int line)
    {
        if (op == "+")
            return Op::BinAdd;
        if (op == "-")
            return Op::BinSub;
        if (op == "*")
            return Op::BinMul;
        if (op == "/")
            return Op::BinTrueDiv;
        if (op == "//")
            return Op::BinFloorDiv;
        if (op == "%")
            return Op::BinMod;
        if (op == "**")
            return Op::BinPow;
        if (op == "&")
            return Op::BinAnd;
        if (op == "|")
            return Op::BinOr;
        if (op == "^")
            return Op::BinXor;
        if (op == "<<")
            return Op::BinLshift;
        if (op == ">>")
            return Op::BinRshift;
        XLVM_FATAL("unknown operator ", op, " at line ", line);
    }

    void
    ifStmt(const Stmt &s)
    {
        expr(*s.target);
        int jfalse = emit(Op::PopJumpIfFalse, -1);
        for (const StmtPtr &b : s.body)
            stmt(*b);
        if (!s.orelse.empty()) {
            int jend = emit(Op::Jump, -1);
            patch(jfalse, here());
            for (const StmtPtr &b : s.orelse)
                stmt(*b);
            patch(jend, here());
        } else {
            patch(jfalse, here());
        }
    }

    void
    whileStmt(const Stmt &s)
    {
        int header = here();
        loops.push_back(LoopCtx{header, {}});
        expr(*s.target);
        int jexit = emit(Op::PopJumpIfFalse, -1);
        for (const StmtPtr &b : s.body)
            stmt(*b);
        emit(Op::JumpBack, header);
        patch(jexit, here());
        for (int j : loops.back().breakJumps)
            patch(j, here());
        loops.pop_back();
    }

    void
    forStmt(const Stmt &s)
    {
        expr(*s.value);
        emit(Op::GetIter);
        int header = here();
        loops.push_back(LoopCtx{header, {}});
        int forIter = emit(Op::ForIter, -1);
        if (s.targets.size() == 1) {
            storeTarget(*s.targets[0]);
        } else {
            emit(Op::UnpackSequence, int32_t(s.targets.size()));
            for (const ExprPtr &t : s.targets)
                storeTarget(*t);
        }
        for (const StmtPtr &b : s.body)
            stmt(*b);
        emit(Op::JumpBack, header);
        patch(forIter, here());
        for (int j : loops.back().breakJumps)
            patch(j, here());
        loops.pop_back();
        emit(Op::PopTop); // discard exhausted iterator
    }

    // ---- expressions ------------------------------------------------------

    void
    expr(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::IntLit:
            emit(Op::LoadConst, constInt(e.intValue));
            break;
          case ExprKind::FloatLit:
            emit(Op::LoadConst, constIdx(space_.newFloat(e.floatValue)));
            break;
          case ExprKind::StrLit:
            emit(Op::LoadConst, constIdx(space_.intern(e.strValue)));
            break;
          case ExprKind::BoolLit:
            emit(Op::LoadConst,
                 constIdx(e.boolValue ? space_.trueObj()
                                      : space_.falseObj()));
            break;
          case ExprKind::NoneLit:
            emit(Op::LoadConst, constIdx(space_.none()));
            break;
          case ExprKind::Name:
            if (isLocal(e.strValue))
                emit(Op::LoadFast, localIndex(e.strValue));
            else
                emit(Op::LoadGlobal, nameIdx(e.strValue));
            break;
          case ExprKind::BinOp:
            expr(*e.a);
            expr(*e.b);
            emit(binOpFor(e.strValue, e.line));
            break;
          case ExprKind::UnaryOp:
            expr(*e.a);
            emit(e.strValue == "not" ? Op::UnaryNot : Op::UnaryNeg);
            break;
          case ExprKind::Compare: {
            expr(*e.a);
            expr(*e.b);
            const std::string &op = e.strValue;
            if (op == "<")
                emit(Op::CmpLt);
            else if (op == "<=")
                emit(Op::CmpLe);
            else if (op == "==")
                emit(Op::CmpEq);
            else if (op == "!=")
                emit(Op::CmpNe);
            else if (op == ">")
                emit(Op::CmpGt);
            else if (op == ">=")
                emit(Op::CmpGe);
            else if (op == "is")
                emit(Op::CmpIs);
            else if (op == "isnot")
                emit(Op::CmpIsNot);
            else if (op == "in")
                emit(Op::CmpIn);
            else if (op == "notin")
                emit(Op::CmpNotIn);
            else
                XLVM_FATAL("bad comparison ", op);
            break;
          }
          case ExprKind::BoolOp: {
            expr(*e.a);
            int j = emit(e.strValue == "and" ? Op::JumpIfFalseOrPop
                                             : Op::JumpIfTrueOrPop,
                         -1);
            expr(*e.b);
            patch(j, here());
            break;
          }
          case ExprKind::Call: {
            expr(*e.a);
            for (const ExprPtr &arg : e.items)
                expr(*arg);
            emit(Op::CallFunction, int32_t(e.items.size()));
            break;
          }
          case ExprKind::Attribute:
            expr(*e.a);
            emit(Op::LoadAttr, nameIdx(e.strValue));
            break;
          case ExprKind::Subscript:
            expr(*e.a);
            expr(*e.b);
            emit(Op::BinSubscr);
            break;
          case ExprKind::Slice:
            expr(*e.a);
            if (e.b)
                expr(*e.b);
            else
                emit(Op::LoadConst, constIdx(space_.none()));
            if (e.c)
                expr(*e.c);
            else
                emit(Op::LoadConst, constIdx(space_.none()));
            emit(Op::LoadSlice);
            break;
          case ExprKind::ListDisplay:
            for (const ExprPtr &it : e.items)
                expr(*it);
            emit(Op::BuildList, int32_t(e.items.size()));
            break;
          case ExprKind::TupleDisplay:
            for (const ExprPtr &it : e.items)
                expr(*it);
            emit(Op::BuildTuple, int32_t(e.items.size()));
            break;
          case ExprKind::DictDisplay:
            for (size_t i = 0; i < e.items.size(); ++i) {
                expr(*e.items[i]);
                expr(*e.values[i]);
            }
            emit(Op::BuildMap, int32_t(e.items.size()));
            break;
          case ExprKind::SetDisplay:
            for (const ExprPtr &it : e.items)
                expr(*it);
            emit(Op::BuildSet, int32_t(e.items.size()));
            break;
        }
    }

    Program &program;
    obj::ObjSpace &space_;
    bool isModule;
    std::unique_ptr<Code> code;
    std::unordered_set<std::string> globals;
    std::vector<LoopCtx> loops;
};

} // namespace

std::unique_ptr<Program>
compile(const Module &mod, obj::ObjSpace &space)
{
    auto prog = std::make_unique<Program>();
    FnCompiler top(*prog, space, "<module>", {}, true);
    Code *m = top.compileBody(mod.body);
    prog->module = m;
    return prog;
}

std::unique_ptr<Program>
compileSource(const std::string &source, obj::ObjSpace &space)
{
    Module mod = parse(source);
    return compile(mod, space);
}

} // namespace minipy
} // namespace xlvm
