/**
 * @file
 * MiniPy code objects and compiled programs.
 */

#ifndef XLVM_MINIPY_CODE_H
#define XLVM_MINIPY_CODE_H

#include <memory>
#include <string>
#include <vector>

#include "gc/heap.h"
#include "obj/wobject.h"

namespace xlvm {
namespace minipy {

/** Bytecode operations (CPython-flavored). */
enum class Op : uint8_t
{
    LoadConst,  ///< arg = const index
    LoadFast,   ///< arg = local index
    StoreFast,
    LoadGlobal, ///< arg = name index
    StoreGlobal,
    LoadAttr,   ///< arg = name index
    StoreAttr,

    BinAdd,
    BinSub,
    BinMul,
    BinTrueDiv,
    BinFloorDiv,
    BinMod,
    BinPow,
    BinAnd,
    BinOr,
    BinXor,
    BinLshift,
    BinRshift,
    UnaryNeg,
    UnaryNot,

    CmpLt,
    CmpLe,
    CmpEq,
    CmpNe,
    CmpGt,
    CmpGe,
    CmpIs,
    CmpIsNot,
    CmpIn,
    CmpNotIn,

    BinSubscr,
    StoreSubscr,
    LoadSlice,  ///< obj, lo, hi on stack (None = open end)
    StoreSlice, ///< value, obj, lo, hi on stack

    Jump,           ///< arg = absolute target
    JumpBack,       ///< arg = absolute target (loop back edge)
    PopJumpIfFalse, ///< arg = absolute target
    PopJumpIfTrue,
    JumpIfFalseOrPop,
    JumpIfTrueOrPop,

    GetIter,
    ForIter, ///< arg = loop-exit target; pushes next or jumps

    CallFunction, ///< arg = positional arg count
    ReturnValue,
    PopTop,
    DupTop,
    DupTopTwo,
    RotTwo,
    RotThree, ///< [a b c] -> [c a b]

    BuildList,  ///< arg = element count
    BuildTuple,
    BuildMap,   ///< arg = pair count
    BuildSet,
    UnpackSequence, ///< arg = target count

    MakeFunction, ///< arg = code index (defaults on stack per code)
    MakeClass,    ///< arg = class-spec index

    Nop,
    NumOps
};

const char *opName(Op op);

struct Instr
{
    Op op = Op::Nop;
    int32_t arg = 0;
};

struct Code
{
    std::string name;
    std::vector<Instr> instrs;
    std::vector<obj::W_Object *> consts;
    std::vector<obj::W_Str *> names;
    std::vector<std::string> localNames;
    uint32_t numParams = 0;
    uint32_t numDefaults = 0;
    /** pcs that are targets of backward jumps (app-level loop headers). */
    std::vector<bool> isLoopHeader;
};

struct ClassSpec
{
    std::string name;
    std::string baseName; ///< empty if none
    std::vector<std::pair<std::string, Code *>> methods;
};

/**
 * A compiled module: owns every code object and class spec; consts are
 * GC objects pinned through rootProvider registration by the runner.
 */
struct Program : public gc::RootProvider
{
    std::vector<std::unique_ptr<Code>> codes;
    std::vector<ClassSpec> classes;
    Code *module = nullptr;

    void
    forEachRoot(gc::GcVisitor &v) override
    {
        for (const auto &c : codes) {
            for (obj::W_Object *w : c->consts)
                v.visit(w);
            for (obj::W_Str *w : c->names)
                v.visit(w);
        }
    }
};

} // namespace minipy
} // namespace xlvm

#endif // XLVM_MINIPY_CODE_H
