/**
 * @file
 * MiniPy recursive-descent parser.
 */

#ifndef XLVM_MINIPY_PARSER_H
#define XLVM_MINIPY_PARSER_H

#include "minipy/ast.h"
#include "minipy/lexer.h"

namespace xlvm {
namespace minipy {

/** Parse source text into a Module. Fatal on syntax errors. */
Module parse(const std::string &source);

} // namespace minipy
} // namespace xlvm

#endif // XLVM_MINIPY_PARSER_H
