/**
 * @file
 * The MiniPy bytecode interpreter, written against the meta-tracing
 * framework the way an RPython interpreter is:
 *
 *  - every dispatch-loop iteration emits the kDispatch cross-layer
 *    annotation (the paper's unit of completed work);
 *  - backward jumps are can_enter_jit points with hot-loop counters;
 *  - when a loop gets hot the interpreter keeps executing while the
 *    recorder captures every object-space operation (meta-tracing);
 *  - compiled loops are entered at their merge points; guard failures
 *    return deoptimized frame states that the interpreter resumes;
 *  - hot guard exits trigger bridge tracing; inner compiled loops
 *    encountered while tracing become call_assembler ops.
 */

#ifndef XLVM_MINIPY_INTERP_H
#define XLVM_MINIPY_INTERP_H

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "jit/bailout.h"
#include "minipy/code.h"
#include "vm/context.h"

namespace xlvm {
namespace jit {
struct OptParams;
}
namespace minipy {

/** Builtin function ids (W_NativeFunc::builtinId). */
enum BuiltinId : uint32_t
{
    kBiPrint = 0,
    kBiRange,
    kBiLen,
    kBiAbs,
    kBiMin,
    kBiMax,
    kBiInt,
    kBiFloat,
    kBiStr,
    kBiBool,
    kBiChr,
    kBiOrd,
    kBiList,
    kBiTuple,
    kBiDict,
    kBiSet,
    kBiSqrt,
    kBiSin,
    kBiCos,
    kBiExp,
    kBiLog,
    kBiFloor,
    kBiPow,
    kBiJsonEscape,
    // methods
    kBiListAppend,
    kBiListPop,
    kBiListSort,
    kBiListReverse,
    kBiListExtend,
    kBiListIndex,
    kBiListInsert,
    kBiStrJoin,
    kBiStrSplit,
    kBiStrReplace,
    kBiStrFind,
    kBiStrLower,
    kBiStrUpper,
    kBiStrStrip,
    kBiStrStartswith,
    kBiStrEndswith,
    kBiStrCount,
    kBiDictGet,
    kBiDictKeys,
    kBiDictValues,
    kBiDictPop,
    kBiSetAdd,
    kBiSetDiscard,
    kBiSetIssubset,
    kBiSetUnion,
    kBiSetIntersection,
    kBiSetDifference,
    // MiniRkt support
    kBiDisplay,
    kBiNewline,
    kBiCons,
    kBiCar,
    kBiCdr,
    kBiMakeVector,
    kBiNumBuiltins
};

class Interp : public gc::RootProvider
{
  public:
    Interp(vm::VmContext &ctx, Program &program);
    ~Interp() override;

    /**
     * Execute the module body. Returns false if the instruction budget
     * ran out before completion.
     */
    bool run();

    /** Accumulated print() output. */
    const std::string &output() const { return printed; }

    obj::W_Dict *globals() { return globalsDict; }

    void forEachRoot(gc::GcVisitor &v) override;

    // ---- statistics -----------------------------------------------------
    uint64_t dispatchCount = 0;
    /** Bytecodes actually executed (excludes merge-point re-dispatches). */
    uint64_t executedCount = 0;
    uint64_t tracesStarted = 0;
    uint64_t tracesCompleted = 0;
    uint64_t tracesAbortedCount = 0;
    uint64_t bridgesCompleted = 0;
    /** Tier-1 traces re-optimized to tier 2 (multi-tier mode). */
    uint64_t promotionsPerformed = 0;

  private:
    struct Frame
    {
        Code *code = nullptr;
        uint32_t pc = 0;
        std::vector<obj::W_Object *> locals;
        std::vector<obj::W_Object *> stack;
        /**
         * Shadow encodings, maintained only while tracing: the IR
         * encoding of each local / stack slot, captured when the value
         * entered the slot (slot-accurate, unlike identity lookup).
         */
        std::vector<int32_t> localEnc;
        std::vector<int32_t> stackEnc;
        /** Class-instantiation frames discard their return value. */
        bool discardReturn = false;

        obj::W_Object *top() { return stack.back(); }
    };

    /** Push/pop carrying shadow encodings (kNoArg = capture now). */
    void pushV(Frame &f, obj::W_Object *w, int32_t enc = jit::kNoArg);
    obj::W_Object *popV(Frame &f, int32_t *enc = nullptr);

    // ---- main loop -------------------------------------------------------
    bool loop();
    void pushFrame(Code *code, std::vector<obj::W_Object *> args,
                   std::vector<int32_t> arg_encs, obj::W_Func *fn,
                   bool discard_return);
    void callValue(Frame &f, obj::W_Object *callee, int32_t callee_enc,
                   std::vector<obj::W_Object *> args,
                   std::vector<int32_t> arg_encs);
    friend obj::W_Object *callBuiltin(Interp &in, uint32_t id,
                                      std::vector<obj::W_Object *> &args);

    // ---- JIT glue ---------------------------------------------------------
    void bumpLoopCounter(Code *code, uint32_t target_pc);
    void startLoopTrace(Code *code, uint32_t pc);
    void startBridgeTrace(uint32_t parent_trace, uint32_t guard_idx,
                          size_t root_depth);
    /** Discard the active recording and fall back to the interpreter. */
    void abortTrace(jit::AbortReason reason);
    /** Abort bookkeeping shared with registration-time failures:
     *  counters, merge-point penalty, kTraceAborted annotation. */
    void noteAbort(jit::AbortReason reason);
    void finishLoopTrace();
    void finishBridgeTrace(jit::Trace *target);
    bool maybeEnterCompiledTrace(Frame &f);
    /** Returns true if an inner compiled trace was executed. */
    bool maybeCallAssembler(Frame &f);
    void applyDeopt(const vm::DeoptResult &res, size_t root_depth);
    jit::Snapshot captureSnapshot();
    std::vector<int32_t> frameSlotEncodings(Frame &f);
    void emitTracingCost();
    /** Returns false when the recording was discarded (verification
     *  failure, injected backend fault, trace-cache exhaustion); the
     *  abort is already accounted via noteAbort. */
    bool registerAndAttach(jit::Trace &&raw, bool is_bridge,
                           jit::Trace *bridge_target);
    /** Deopt-storm detection / blacklist cooldown for a compiled root;
     *  returns false while the trace is demoted to the interpreter. */
    bool checkBlacklist(jit::Trace *t);
    void noteTraceProgress(jit::Trace *t, uint64_t iters);
    /** Trace-cache pressure: evict cold roots until a slot is free.
     *  Returns false when nothing is evictable. */
    bool ensureTraceCacheCapacity();
    bool evictColdestRoot();
    /** Modeled compile-cost instruction loop at the tracing cost site,
     *  sampled under a Compile context for @p trace_id. */
    void emitCompileCost(uint64_t work, uint32_t trace_id);
    jit::OptParams optParams() const;
    /** Apply queued tier-ups (multi-tier mode; no-op while tracing). */
    void drainPromotions();
    void promoteTrace(uint32_t trace_id);

    // ---- helpers ------------------------------------------------------
    void emitDispatch(uint8_t opcode);
    obj::ObjSpace &space() { return ctx.space; }
    jit::Recorder *rec() { return ctx.env.recorder(); }
    bool tracing() const { return recorder != nullptr; }

    vm::VmContext &ctx;
    Program &prog;
    obj::W_Dict *globalsDict = nullptr;
    std::vector<std::unique_ptr<Frame>> frames;
    std::string printed;

    /** Hot-loop counters keyed by (code, pc). */
    std::unordered_map<uint64_t, uint32_t> loopCounters;
    /** Trace ids pinned against eviction during one registration. */
    std::unordered_set<uint32_t> evictionPins;
    /** Merge points blacklisted after aborts (penalty countdown). */
    std::unordered_map<uint64_t, uint32_t> abortPenalty;

    // Active recording state.
    std::unique_ptr<jit::Recorder> recorder;
    Frame *traceRootFrame = nullptr;
    size_t traceRootDepth = 0;
    Code *traceAnchorCode = nullptr;
    uint32_t traceAnchorPc = 0;
    bool recordingBridge = false;
    uint32_t bridgeParentTrace = 0;
    uint32_t bridgeGuardIdx = 0;
    uint32_t lastRecordedOps = 0;
    /** Re-arm guard: one interpreted dispatch required between two
     *  call_assembler attempts at the same merge point. */
    uint64_t lastCallAsmDispatch = ~0ull;
    void *lastCallAsmFrame = nullptr;
    uint32_t lastCallAsmPc = 0;

    // Synthetic code sites.
    uint64_t dispatchPc = 0;
    uint64_t tracingCostPc = 0;
    std::vector<uint64_t> handlerPc;
};

/** Perform one builtin call (implemented in builtins.cc). */
obj::W_Object *callBuiltin(Interp &in, uint32_t id,
                           std::vector<obj::W_Object *> &args);

/** Install builtin functions into a globals dict. */
void installBuiltins(obj::ObjSpace &space, obj::W_Dict *globals);

/** Builtin method lookup for non-instance receivers; 0 if unknown. */
uint32_t builtinMethodFor(uint16_t type_id, const std::string &name);

} // namespace minipy
} // namespace xlvm

#endif // XLVM_MINIPY_INTERP_H
