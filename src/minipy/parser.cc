#include "minipy/parser.h"

#include "common/logging.h"

namespace xlvm {
namespace minipy {

namespace {

class Parser
{
  public:
    explicit Parser(std::vector<Token> toks) : tokens(std::move(toks)) {}

    Module
    run()
    {
        Module m;
        skipNewlines();
        while (!check(Tok::End)) {
            m.body.push_back(statement());
            skipNewlines();
        }
        return m;
    }

  private:
    // ---- token helpers -------------------------------------------------

    const Token &peek(int k = 0) const { return tokens[pos + k]; }
    bool check(Tok t) const { return peek().kind == t; }

    bool
    accept(Tok t)
    {
        if (check(t)) {
            ++pos;
            return true;
        }
        return false;
    }

    const Token &
    expect(Tok t, const char *what)
    {
        XLVM_ASSERT(check(t), "parse error at line ", peek().line,
                    ": expected ", what, ", got ", tokName(peek().kind));
        return tokens[pos++];
    }

    void
    skipNewlines()
    {
        while (accept(Tok::Newline)) {
        }
    }

    ExprPtr
    makeExpr(ExprKind k)
    {
        auto e = std::make_unique<Expr>();
        e->kind = k;
        e->line = peek().line;
        return e;
    }

    StmtPtr
    makeStmt(StmtKind k)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = k;
        s->line = peek().line;
        return s;
    }

    // ---- statements ------------------------------------------------------

    std::vector<StmtPtr>
    block()
    {
        expect(Tok::Colon, "':'");
        expect(Tok::Newline, "newline");
        skipNewlines();
        expect(Tok::Indent, "indented block");
        std::vector<StmtPtr> body;
        skipNewlines();
        while (!check(Tok::Dedent) && !check(Tok::End)) {
            body.push_back(statement());
            skipNewlines();
        }
        accept(Tok::Dedent);
        return body;
    }

    StmtPtr
    statement()
    {
        switch (peek().kind) {
          case Tok::KwDef:
            return defStatement();
          case Tok::KwClass:
            return classStatement();
          case Tok::KwIf:
            return ifStatement();
          case Tok::KwWhile:
            return whileStatement();
          case Tok::KwFor:
            return forStatement();
          case Tok::KwReturn: {
            auto s = makeStmt(StmtKind::Return);
            ++pos;
            if (!check(Tok::Newline))
                s->value = expression();
            expect(Tok::Newline, "newline");
            return s;
          }
          case Tok::KwBreak: {
            auto s = makeStmt(StmtKind::Break);
            ++pos;
            expect(Tok::Newline, "newline");
            return s;
          }
          case Tok::KwContinue: {
            auto s = makeStmt(StmtKind::Continue);
            ++pos;
            expect(Tok::Newline, "newline");
            return s;
          }
          case Tok::KwPass: {
            auto s = makeStmt(StmtKind::Pass);
            ++pos;
            expect(Tok::Newline, "newline");
            return s;
          }
          case Tok::KwGlobal: {
            auto s = makeStmt(StmtKind::Global);
            ++pos;
            s->globalNames.push_back(
                expect(Tok::Name, "name").text);
            while (accept(Tok::Comma))
                s->globalNames.push_back(
                    expect(Tok::Name, "name").text);
            expect(Tok::Newline, "newline");
            return s;
          }
          default:
            return exprOrAssignStatement();
        }
    }

    StmtPtr
    defStatement()
    {
        auto s = makeStmt(StmtKind::Def);
        expect(Tok::KwDef, "def");
        s->name = expect(Tok::Name, "function name").text;
        expect(Tok::LParen, "'('");
        if (!check(Tok::RParen)) {
            do {
                s->params.push_back(expect(Tok::Name, "parameter").text);
                if (accept(Tok::Assign))
                    s->defaults.push_back(expression());
            } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "')'");
        s->body = block();
        return s;
    }

    StmtPtr
    classStatement()
    {
        auto s = makeStmt(StmtKind::ClassDef);
        expect(Tok::KwClass, "class");
        s->name = expect(Tok::Name, "class name").text;
        if (accept(Tok::LParen)) {
            if (!check(Tok::RParen))
                s->globalNames.push_back(
                    expect(Tok::Name, "base class").text);
            expect(Tok::RParen, "')'");
        }
        auto body = block();
        for (auto &st : body) {
            if (st->kind == StmtKind::Def) {
                s->methods.push_back(std::move(st));
            } else {
                XLVM_ASSERT(st->kind == StmtKind::Pass,
                            "only methods allowed in class body, line ",
                            st->line);
            }
        }
        return s;
    }

    StmtPtr
    ifStatement()
    {
        auto s = makeStmt(StmtKind::If);
        ++pos; // if / elif
        s->target = expression();
        s->body = block();
        skipNewlines();
        if (check(Tok::KwElif)) {
            s->orelse.push_back(ifStatement());
        } else if (accept(Tok::KwElse)) {
            s->orelse = block();
        }
        return s;
    }

    StmtPtr
    whileStatement()
    {
        auto s = makeStmt(StmtKind::While);
        expect(Tok::KwWhile, "while");
        s->target = expression();
        s->body = block();
        return s;
    }

    StmtPtr
    forStatement()
    {
        auto s = makeStmt(StmtKind::For);
        expect(Tok::KwFor, "for");
        s->targets.push_back(namedTarget());
        while (accept(Tok::Comma))
            s->targets.push_back(namedTarget());
        expect(Tok::KwIn, "in");
        s->value = expression();
        s->body = block();
        return s;
    }

    ExprPtr
    namedTarget()
    {
        auto e = makeExpr(ExprKind::Name);
        e->strValue = expect(Tok::Name, "loop variable").text;
        return e;
    }

    StmtPtr
    exprOrAssignStatement()
    {
        ExprPtr first = expression();

        // Tuple-unpack assignment: a, b = expr
        if (check(Tok::Comma)) {
            auto s = makeStmt(StmtKind::Assign);
            s->targets.push_back(std::move(first));
            while (accept(Tok::Comma))
                s->targets.push_back(expression());
            expect(Tok::Assign, "'='");
            s->value = expression();
            // Allow "a, b = c, d": pack RHS tuple.
            if (check(Tok::Comma)) {
                auto tup = makeExpr(ExprKind::TupleDisplay);
                tup->items.push_back(std::move(s->value));
                while (accept(Tok::Comma))
                    tup->items.push_back(expression());
                s->value = std::move(tup);
            }
            expect(Tok::Newline, "newline");
            return s;
        }

        if (accept(Tok::Assign)) {
            auto s = makeStmt(StmtKind::Assign);
            s->target = std::move(first);
            s->value = expression();
            if (check(Tok::Comma)) {
                auto tup = makeExpr(ExprKind::TupleDisplay);
                tup->items.push_back(std::move(s->value));
                while (accept(Tok::Comma))
                    tup->items.push_back(expression());
                s->value = std::move(tup);
            }
            expect(Tok::Newline, "newline");
            return s;
        }

        static const struct
        {
            Tok tok;
            const char *op;
        } kAug[] = {
            {Tok::PlusEq, "+"},        {Tok::MinusEq, "-"},
            {Tok::StarEq, "*"},        {Tok::SlashEq, "/"},
            {Tok::SlashSlashEq, "//"}, {Tok::PercentEq, "%"},
            {Tok::AmpEq, "&"},         {Tok::PipeEq, "|"},
            {Tok::CaretEq, "^"},       {Tok::LtLtEq, "<<"},
            {Tok::GtGtEq, ">>"},
        };
        for (const auto &aug : kAug) {
            if (accept(aug.tok)) {
                auto s = makeStmt(StmtKind::AugAssign);
                s->name = aug.op;
                s->target = std::move(first);
                s->value = expression();
                expect(Tok::Newline, "newline");
                return s;
            }
        }

        auto s = makeStmt(StmtKind::ExprStmt);
        s->value = std::move(first);
        expect(Tok::Newline, "newline");
        return s;
    }

    // ---- expressions (precedence climbing) -----------------------------

    ExprPtr
    expression()
    {
        return orExpr();
    }

    ExprPtr
    orExpr()
    {
        ExprPtr e = andExpr();
        while (check(Tok::KwOr)) {
            ++pos;
            auto n = makeExpr(ExprKind::BoolOp);
            n->strValue = "or";
            n->a = std::move(e);
            n->b = andExpr();
            e = std::move(n);
        }
        return e;
    }

    ExprPtr
    andExpr()
    {
        ExprPtr e = notExpr();
        while (check(Tok::KwAnd)) {
            ++pos;
            auto n = makeExpr(ExprKind::BoolOp);
            n->strValue = "and";
            n->a = std::move(e);
            n->b = notExpr();
            e = std::move(n);
        }
        return e;
    }

    ExprPtr
    notExpr()
    {
        if (accept(Tok::KwNot)) {
            auto n = makeExpr(ExprKind::UnaryOp);
            n->strValue = "not";
            n->a = notExpr();
            return n;
        }
        return comparison();
    }

    ExprPtr
    comparison()
    {
        ExprPtr e = bitOrExpr();
        const char *op = nullptr;
        switch (peek().kind) {
          case Tok::Lt: op = "<"; break;
          case Tok::Le: op = "<="; break;
          case Tok::EqEq: op = "=="; break;
          case Tok::NotEq: op = "!="; break;
          case Tok::Gt: op = ">"; break;
          case Tok::Ge: op = ">="; break;
          case Tok::KwIs: op = "is"; break;
          case Tok::KwIsNot: op = "isnot"; break;
          case Tok::KwIn: op = "in"; break;
          case Tok::KwNotIn: op = "notin"; break;
          default: return e;
        }
        ++pos;
        auto n = makeExpr(ExprKind::Compare);
        n->strValue = op;
        n->a = std::move(e);
        n->b = bitOrExpr();
        return n;
    }

    ExprPtr
    binOp(ExprPtr lhs, const char *op, ExprPtr rhs)
    {
        auto n = std::make_unique<Expr>();
        n->kind = ExprKind::BinOp;
        n->line = lhs->line;
        n->strValue = op;
        n->a = std::move(lhs);
        n->b = std::move(rhs);
        return n;
    }

    ExprPtr
    bitOrExpr()
    {
        ExprPtr e = bitXorExpr();
        while (accept(Tok::Pipe))
            e = binOp(std::move(e), "|", bitXorExpr());
        return e;
    }

    ExprPtr
    bitXorExpr()
    {
        ExprPtr e = bitAndExpr();
        while (accept(Tok::Caret))
            e = binOp(std::move(e), "^", bitAndExpr());
        return e;
    }

    ExprPtr
    bitAndExpr()
    {
        ExprPtr e = shiftExpr();
        while (accept(Tok::Amp))
            e = binOp(std::move(e), "&", shiftExpr());
        return e;
    }

    ExprPtr
    shiftExpr()
    {
        ExprPtr e = arith();
        while (true) {
            if (accept(Tok::LtLt))
                e = binOp(std::move(e), "<<", arith());
            else if (accept(Tok::GtGt))
                e = binOp(std::move(e), ">>", arith());
            else
                return e;
        }
    }

    ExprPtr
    arith()
    {
        ExprPtr e = term();
        while (true) {
            if (accept(Tok::Plus))
                e = binOp(std::move(e), "+", term());
            else if (accept(Tok::Minus))
                e = binOp(std::move(e), "-", term());
            else
                return e;
        }
    }

    ExprPtr
    term()
    {
        ExprPtr e = factor();
        while (true) {
            if (accept(Tok::Star))
                e = binOp(std::move(e), "*", factor());
            else if (accept(Tok::Slash))
                e = binOp(std::move(e), "/", factor());
            else if (accept(Tok::SlashSlash))
                e = binOp(std::move(e), "//", factor());
            else if (accept(Tok::Percent))
                e = binOp(std::move(e), "%", factor());
            else
                return e;
        }
    }

    ExprPtr
    factor()
    {
        if (accept(Tok::Minus)) {
            auto n = makeExpr(ExprKind::UnaryOp);
            n->strValue = "-";
            n->a = factor();
            return n;
        }
        if (accept(Tok::Plus))
            return factor();
        return power();
    }

    ExprPtr
    power()
    {
        ExprPtr e = postfix();
        if (accept(Tok::StarStar))
            return binOp(std::move(e), "**", factor()); // right assoc
        return e;
    }

    ExprPtr
    postfix()
    {
        ExprPtr e = atom();
        while (true) {
            if (accept(Tok::Dot)) {
                auto n = makeExpr(ExprKind::Attribute);
                n->strValue = expect(Tok::Name, "attribute").text;
                n->a = std::move(e);
                e = std::move(n);
            } else if (accept(Tok::LParen)) {
                auto n = makeExpr(ExprKind::Call);
                n->a = std::move(e);
                if (!check(Tok::RParen)) {
                    do {
                        n->items.push_back(expression());
                    } while (accept(Tok::Comma));
                }
                expect(Tok::RParen, "')'");
                e = std::move(n);
            } else if (accept(Tok::LBracket)) {
                // Subscript or slice.
                ExprPtr lo, hi;
                bool isSlice = false;
                if (!check(Tok::Colon))
                    lo = expression();
                if (accept(Tok::Colon)) {
                    isSlice = true;
                    if (!check(Tok::RBracket))
                        hi = expression();
                }
                expect(Tok::RBracket, "']'");
                auto n = makeExpr(isSlice ? ExprKind::Slice
                                          : ExprKind::Subscript);
                n->a = std::move(e);
                n->b = std::move(lo);
                n->c = std::move(hi);
                e = std::move(n);
            } else {
                return e;
            }
        }
    }

    ExprPtr
    atom()
    {
        const Token &t = peek();
        switch (t.kind) {
          case Tok::Int: {
            auto e = makeExpr(ExprKind::IntLit);
            e->intValue = t.intValue;
            ++pos;
            return e;
          }
          case Tok::Float: {
            auto e = makeExpr(ExprKind::FloatLit);
            e->floatValue = t.floatValue;
            ++pos;
            return e;
          }
          case Tok::Str: {
            auto e = makeExpr(ExprKind::StrLit);
            e->strValue = t.text;
            ++pos;
            // Adjacent string literal concatenation.
            while (check(Tok::Str)) {
                e->strValue += peek().text;
                ++pos;
            }
            return e;
          }
          case Tok::KwTrue:
          case Tok::KwFalse: {
            auto e = makeExpr(ExprKind::BoolLit);
            e->boolValue = t.kind == Tok::KwTrue;
            ++pos;
            return e;
          }
          case Tok::KwNone: {
            auto e = makeExpr(ExprKind::NoneLit);
            ++pos;
            return e;
          }
          case Tok::Name: {
            auto e = makeExpr(ExprKind::Name);
            e->strValue = t.text;
            ++pos;
            return e;
          }
          case Tok::LParen: {
            ++pos;
            if (check(Tok::RParen)) {
                ++pos;
                return makeExpr(ExprKind::TupleDisplay);
            }
            ExprPtr e = expression();
            if (check(Tok::Comma)) {
                auto tup = makeExpr(ExprKind::TupleDisplay);
                tup->items.push_back(std::move(e));
                while (accept(Tok::Comma)) {
                    if (check(Tok::RParen))
                        break;
                    tup->items.push_back(expression());
                }
                expect(Tok::RParen, "')'");
                return tup;
            }
            expect(Tok::RParen, "')'");
            return e;
          }
          case Tok::LBracket: {
            ++pos;
            auto e = makeExpr(ExprKind::ListDisplay);
            if (!check(Tok::RBracket)) {
                do {
                    if (check(Tok::RBracket))
                        break;
                    e->items.push_back(expression());
                } while (accept(Tok::Comma));
            }
            expect(Tok::RBracket, "']'");
            return e;
          }
          case Tok::LBrace: {
            ++pos;
            if (check(Tok::RBrace)) {
                ++pos;
                return makeExpr(ExprKind::DictDisplay);
            }
            ExprPtr first = expression();
            if (accept(Tok::Colon)) {
                auto e = makeExpr(ExprKind::DictDisplay);
                e->items.push_back(std::move(first));
                e->values.push_back(expression());
                while (accept(Tok::Comma)) {
                    if (check(Tok::RBrace))
                        break;
                    e->items.push_back(expression());
                    expect(Tok::Colon, "':'");
                    e->values.push_back(expression());
                }
                expect(Tok::RBrace, "'}'");
                return e;
            }
            auto e = makeExpr(ExprKind::SetDisplay);
            e->items.push_back(std::move(first));
            while (accept(Tok::Comma)) {
                if (check(Tok::RBrace))
                    break;
                e->items.push_back(expression());
            }
            expect(Tok::RBrace, "'}'");
            return e;
          }
          default:
            XLVM_FATAL("parse error at line ", t.line,
                       ": unexpected token ", tokName(t.kind));
        }
    }

    std::vector<Token> tokens;
    size_t pos = 0;
};

} // namespace

Module
parse(const std::string &source)
{
    return Parser(tokenize(source)).run();
}

} // namespace minipy
} // namespace xlvm
