#include "minipy/interp.h"

#include <algorithm>
#include <unordered_set>

#include "jit/opt.h"
#include "xlayer/annot.h"

// The event profiler bins kTraceAborted payloads without seeing the
// jit layer; its fixed array must fit every reason.
static_assert(xlvm::jit::kNumAbortReasons <=
                  xlvm::xlayer::EventProfiler::kNumAbortReasons,
              "EventProfiler abort-reason array too small");

namespace xlvm {
namespace minipy {

using jit::BoxType;
using jit::IrOp;
using jit::kNoArg;
using obj::CmpOp;
using obj::W_BoundMethod;
using obj::W_Class;
using obj::W_Dict;
using obj::W_Func;
using obj::W_Instance;
using obj::W_List;
using obj::W_NativeFunc;
using obj::W_Object;
using obj::W_Str;
using obj::W_Tuple;

namespace {

uint64_t
mergeKey(const Code *code, uint32_t pc)
{
    return reinterpret_cast<uint64_t>(code) ^
           (uint64_t(pc) * 0x9e3779b97f4a7c15ull);
}

} // namespace

Interp::Interp(vm::VmContext &context, Program &program)
    : ctx(context), prog(program)
{
    ctx.heap.addRootProvider(this);
    ctx.heap.addRootProvider(&prog);
    globalsDict = ctx.space.newDict();
    installBuiltins(ctx.space, globalsDict);
    dispatchPc = ctx.env.allocSite(64);
    tracingCostPc = ctx.env.allocSite(64);
    handlerPc.resize(size_t(Op::NumOps));
    for (size_t i = 0; i < handlerPc.size(); ++i)
        handlerPc[i] = ctx.env.allocSite(96);
}

Interp::~Interp()
{
    ctx.heap.removeRootProvider(&prog);
    ctx.heap.removeRootProvider(this);
}

void
Interp::forEachRoot(gc::GcVisitor &v)
{
    v.visit(globalsDict);
    for (const auto &f : frames) {
        for (W_Object *w : f->locals)
            v.visit(w);
        for (W_Object *w : f->stack)
            v.visit(w);
    }
    if (recorder) {
        recorder->forEachLiveRef([&](void *p) {
            v.visit(static_cast<gc::GcObject *>(p));
        });
    }
}

bool
Interp::run()
{
    pushFrame(prog.module, {}, {}, nullptr, false);
    return loop();
}

void
Interp::pushFrame(Code *code, std::vector<W_Object *> args,
                  std::vector<int32_t> arg_encs, W_Func *fn,
                  bool discard_return)
{
    auto f = std::make_unique<Frame>();
    f->code = code;
    f->locals.assign(code->localNames.size(), nullptr);
    XLVM_ASSERT(args.size() <= code->numParams, "too many args to ",
                code->name);
    uint32_t missing = code->numParams - uint32_t(args.size());
    XLVM_ASSERT(missing <= code->numDefaults, "missing args to ",
                code->name, " (got ", args.size(), ", want ",
                code->numParams, ")");
    for (size_t i = 0; i < args.size(); ++i)
        f->locals[i] = args[i];
    if (missing && fn) {
        size_t base = fn->defaults.size() - missing;
        for (uint32_t i = 0; i < missing; ++i)
            f->locals[args.size() + i] = fn->defaults[base + i];
    }
    if (recorder) {
        f->localEnc.assign(f->locals.size(),
                           recorder->constRef(nullptr));
        for (size_t i = 0; i < args.size(); ++i) {
            f->localEnc[i] = i < arg_encs.size() &&
                                     arg_encs[i] != jit::kNoArg
                                 ? arg_encs[i]
                                 : recorder->refEncoding(args[i]);
        }
        if (missing && fn) {
            size_t base = fn->defaults.size() - missing;
            for (uint32_t i = 0; i < missing; ++i) {
                f->localEnc[args.size() + i] =
                    recorder->refEncoding(fn->defaults[base + i]);
            }
        }
    }
    f->discardReturn = discard_return;
    frames.push_back(std::move(f));
}

// ---------------------------------------------------------------- JIT glue

void
Interp::bumpLoopCounter(Code *code, uint32_t target_pc)
{
    if (!ctx.config.jit.enableJit || tracing())
        return;
    uint64_t key = mergeKey(code, target_pc);
    auto pen = abortPenalty.find(key);
    if (pen != abortPenalty.end()) {
        if (--pen->second > 0)
            return;
        abortPenalty.erase(pen);
    }
    const vm::JitParams &jp = ctx.config.jit;
    // Baseline tiers trace earlier: cheap compiles shift the warmup
    // tradeoff toward "compile sooner, run slower" (multi-tier JIT).
    uint32_t threshold = (jp.tierMode == vm::TierMode::Tier1 ||
                          jp.tierMode == vm::TierMode::Multi)
                             ? jp.tier1Threshold
                             : jp.loopThreshold;
    uint32_t &ctr = loopCounters[key];
    if (++ctr >= threshold) {
        ctr = 0;
        if (!ctx.registry.loopFor(code, target_pc))
            startLoopTrace(code, target_pc);
    }
}

void
Interp::startLoopTrace(Code *code, uint32_t pc)
{
    recorder = std::make_unique<jit::Recorder>(
        code, pc, /*bridge=*/false,
        jit::RecorderLimits{ctx.config.jit.maxTraceOps});
    traceRootFrame = frames.back().get();
    traceRootDepth = frames.size() - 1;
    traceAnchorCode = code;
    traceAnchorPc = pc;
    recordingBridge = false;
    lastRecordedOps = 0;
    ++tracesStarted;

    // Inputs: root frame locals + stack; each slot's shadow encoding is
    // its own input box.
    recorder->setAnchorLocals(uint32_t(traceRootFrame->locals.size()));
    Frame &rf = *traceRootFrame;
    rf.localEnc.clear();
    rf.stackEnc.clear();
    for (W_Object *w : rf.locals)
        rf.localEnc.push_back(recorder->addInputRef(w));
    for (W_Object *w : rf.stack)
        rf.stackEnc.push_back(recorder->addInputRef(w));

    ctx.env.setRecorder(recorder.get());
    sim::BlockEmitter e(ctx.core, tracingCostPc);
    e.annot(xlayer::kPhaseEnter, uint32_t(xlayer::Phase::Tracing));
}

void
Interp::startBridgeTrace(uint32_t parent_trace, uint32_t guard_idx,
                         size_t root_depth)
{
    recorder = std::make_unique<jit::Recorder>(
        frames[root_depth]->code, frames[root_depth]->pc, /*bridge=*/true,
        jit::RecorderLimits{ctx.config.jit.maxTraceOps});
    traceRootFrame = frames[root_depth].get();
    traceRootDepth = root_depth;
    traceAnchorCode = nullptr;
    traceAnchorPc = 0;
    recordingBridge = true;
    bridgeParentTrace = parent_trace;
    bridgeGuardIdx = guard_idx;
    lastRecordedOps = 0;
    ++tracesStarted;

    // Inputs: every slot of every frame from the bridge root to the top,
    // matching TraceExecutor's flattenState order; slot shadows are the
    // input boxes.
    for (size_t d = root_depth; d < frames.size(); ++d) {
        Frame &bf = *frames[d];
        bf.localEnc.clear();
        bf.stackEnc.clear();
        for (W_Object *w : bf.locals)
            bf.localEnc.push_back(recorder->addInputRef(w));
        for (W_Object *w : bf.stack)
            bf.stackEnc.push_back(recorder->addInputRef(w));
    }

    ctx.env.setRecorder(recorder.get());
    sim::BlockEmitter e(ctx.core, tracingCostPc);
    e.annot(xlayer::kPhaseEnter, uint32_t(xlayer::Phase::Tracing));
}

void
Interp::noteAbort(jit::AbortReason reason)
{
    ++tracesAbortedCount;
    if (traceAnchorCode) {
        abortPenalty[mergeKey(traceAnchorCode, traceAnchorPc)] =
            ctx.config.jit.abortPenalty;
    }
    sim::BlockEmitter e(ctx.core, tracingCostPc);
    e.annot(xlayer::kTraceAborted, uint32_t(reason));
    e.annot(xlayer::kPhaseExit, uint32_t(xlayer::Phase::Tracing));
}

void
Interp::abortTrace(jit::AbortReason reason)
{
#ifdef XLVM_DEBUG_TRACE
    std::fprintf(stderr, "ABORT: %s (bridge=%d)\n",
                 jit::abortReasonName(reason), int(recordingBridge));
#endif
    noteAbort(reason);
    ctx.env.setRecorder(nullptr);
    recorder.reset();
}

void
Interp::emitCompileCost(uint64_t work, uint32_t trace_id)
{
    // Sampler context: the modeled compile loop is attributable to the
    // trace being compiled, not to whatever interp context surrounds it.
    const uint64_t savedCtx = ctx.core.profileContext();
    ctx.core.setProfileContext(
        sim::sampleCtxPack(sim::SampleCtxKind::Compile, 0, trace_id));
    for (uint64_t i = 0; i < work; i += 4) {
        sim::BlockEmitter body(ctx.core, tracingCostPc + 32);
        body.load(tracingCostPc + (i % 256) * 8, 1);
        body.alu(2);
        body.branch(i % 16 == 0);
    }
    ctx.core.setProfileContext(savedCtx);
}

jit::OptParams
Interp::optParams() const
{
    jit::OptParams op;
    op.foldConstants = ctx.config.jit.optFoldConstants;
    op.elideGuards = ctx.config.jit.optElideGuards;
    op.heapCache = ctx.config.jit.optHeapCache;
    op.virtualize = ctx.config.jit.optVirtualize;
    op.classOf = [](void *p) {
        return p ? uint32_t(static_cast<W_Object *>(p)->typeId()) : 0u;
    };
    return op;
}

bool
Interp::registerAndAttach(jit::Trace &&raw, bool is_bridge,
                          jit::Trace *bridge_target)
{
    (void)bridge_target;
    const vm::JitParams &jp = ctx.config.jit;
    const bool baseline = jp.tierMode == vm::TierMode::Tier1 ||
                          jp.tierMode == vm::TierMode::Multi;
    uint32_t rawOps = uint32_t(raw.ops.size());
#ifdef XLVM_DEBUG_TRACE
    raw.id = ctx.registry.nextId();
    std::fprintf(stderr, "=== RAW %s\n", raw.dump().c_str());
#endif

    // Containment gate 1: never hand a malformed recording to the
    // backend — a structurally broken trace would corrupt the heap at
    // execution time. Discard it and keep interpreting.
    {
        jit::VerifyResult vr =
            jit::verifyTrace(raw, jit::AbortReason::kMalformedTrace);
        if (!vr.ok) {
            XLVM_WARN("recording rejected (safe bailout): ", vr.detail);
            noteAbort(vr.reason);
            return false;
        }
    }

    // Containment gate 2: an injected backend failure discards the
    // recording exactly like a real code-emission failure would.
    if (ctx.faults.shouldFire(rt::FaultSite::kBackend)) {
        noteAbort(jit::AbortReason::kInjected);
        return false;
    }

    // Containment gate 3: trace-cache pressure. Evict cold roots to
    // make room; abort the registration when nothing is evictable. An
    // injected trace-cache fault exercises the same abort path. Traces
    // the incoming recording references (call_assembler targets, the
    // close-jump loop, the bridge's parent) are pinned for this pass.
    evictionPins.clear();
    for (const jit::ResOp &op : raw.ops) {
        if (op.op == IrOp::CallAssembler)
            evictionPins.insert(op.aux);
        else if (op.op == IrOp::Jump && op.aux != 0)
            evictionPins.insert(op.aux - 1);
    }
    if (is_bridge)
        evictionPins.insert(bridgeParentTrace);
    bool cacheFault = ctx.faults.shouldFire(rt::FaultSite::kTraceCache);
    if (cacheFault || !ensureTraceCacheCapacity()) {
        noteAbort(jit::AbortReason::kTraceCacheFull);
        return false;
    }

    uint32_t id = ctx.registry.nextId();

    // Graceful degradation: an over-budget, injected-faulty or
    // verification-failing optimization retries at tier 1 (baseline
    // lowering of the same recording) instead of discarding it.
    jit::AbortReason downgrade = jit::AbortReason::kNone;
    if (!baseline) {
        if (jp.compileBudgetOps && rawOps > jp.compileBudgetOps)
            downgrade = jit::AbortReason::kCompileBudget;
        else if (ctx.faults.shouldFire(rt::FaultSite::kOptimizer))
            downgrade = jit::AbortReason::kInjected;
    }

    // Compile (tier by mode) and charge the modeled compile cost to the
    // Tracing phase, proportional to the recorded trace length.
    std::unique_ptr<jit::Trace> compiled;
    std::unique_ptr<jit::Trace> retained;
    uint64_t work;
    if (!baseline && downgrade == jit::AbortReason::kNone) {
        auto opt = std::make_unique<jit::Trace>(
            jit::optimize(raw, optParams(), nullptr));
        opt->id = id;
        jit::VerifyResult vr =
            jit::verifyTrace(*opt, jit::AbortReason::kOptimizerFailure);
        if (vr.ok) {
            compiled = std::move(opt);
        } else {
            XLVM_WARN("optimizer output rejected (tier-1 retry): ",
                      vr.detail);
            downgrade = jit::AbortReason::kOptimizerFailure;
        }
    }
    if (compiled) {
        ctx.backend.compile(*compiled);
        work = uint64_t(rawOps) * ctx.env.costs().optPerOpInsts;
        ctx.backend.addCompileCost(2, work);
    } else {
        // Tier-1 baseline: lower the raw recording directly, skipping
        // the optimizer entirely — the mode default or a downgrade
        // retry. Multi mode keeps a copy of the raw ops so a later
        // tier-up can re-optimize from the original.
        if (jp.tierMode == vm::TierMode::Multi)
            retained = std::make_unique<jit::Trace>(raw);
        compiled = std::make_unique<jit::Trace>(std::move(raw));
        compiled->id = id;
        ctx.backend.compileBaseline(*compiled);
        work = uint64_t(rawOps) * ctx.env.costs().tier1PerOpInsts;
        ctx.backend.addCompileCost(1, work);
    }
    emitCompileCost(work, id);

    sim::BlockEmitter e(ctx.core, tracingCostPc);
    if (downgrade != jit::AbortReason::kNone)
        e.annot(xlayer::kCompileDowngrade, id);
    if (compiled->tier == 1)
        e.annot(xlayer::kTier1Compile, id);
    e.annot(is_bridge ? xlayer::kBridgeCompiled : xlayer::kLoopCompiled,
            id);
    e.annot(xlayer::kPhaseExit, uint32_t(xlayer::Phase::Tracing));

    ctx.registry.add(std::move(compiled));
    if (retained)
        ctx.registry.retainRaw(id, std::move(retained));
    return true;
}

bool
Interp::ensureTraceCacheCapacity()
{
    const vm::JitParams &jp = ctx.config.jit;
    if (!jp.maxTraces)
        return true;
    while (ctx.registry.liveCount() >= jp.maxTraces) {
        if (!evictColdestRoot())
            return false;
    }
    return true;
}

bool
Interp::evictColdestRoot()
{
    // Cross-trace references: call_assembler targets and bridge
    // close-jumps into loop headers. A trace referenced from outside
    // its own bridge closure must not be evicted (its id would dangle
    // in live compiled code).
    std::vector<std::pair<uint32_t, uint32_t>> edges; // (from, to)
    for (const auto &tp : ctx.registry.all()) {
        if (!tp)
            continue;
        for (const jit::ResOp &op : tp->ops) {
            if (op.op == IrOp::CallAssembler)
                edges.emplace_back(tp->id, op.aux);
            else if (op.op == IrOp::Jump && op.aux != 0)
                edges.emplace_back(tp->id, op.aux - 1);
        }
    }

    jit::Trace *best = nullptr;
    std::vector<uint32_t> bestClosure;
    for (const auto &tp : ctx.registry.all()) {
        jit::Trace *t = tp.get();
        if (!t || t->isBridge)
            continue;
        // The root plus every bridge reachable through its guard exits
        // (bridges of bridges included) leave together.
        std::unordered_set<uint32_t> closure;
        std::vector<jit::Trace *> work{t};
        closure.insert(t->id);
        while (!work.empty()) {
            jit::Trace *cur = work.back();
            work.pop_back();
            for (const jit::GuardState &gs : cur->guardStates) {
                if (gs.bridgeTraceId < 0)
                    continue;
                jit::Trace *b =
                    ctx.registry.byId(uint32_t(gs.bridgeTraceId));
                if (b && closure.insert(b->id).second)
                    work.push_back(b);
            }
        }
        bool pinnedOrReferenced = false;
        for (uint32_t id : closure) {
            if (evictionPins.count(id)) {
                pinnedOrReferenced = true;
                break;
            }
        }
        for (const auto &[from, to] : edges) {
            if (pinnedOrReferenced)
                break;
            if (closure.count(to) && !closure.count(from))
                pinnedOrReferenced = true;
        }
        if (pinnedOrReferenced)
            continue;
        if (!best || t->executions < best->executions ||
            (t->executions == best->executions && t->id < best->id)) {
            best = t;
            bestClosure.assign(closure.begin(), closure.end());
        }
    }
    if (!best)
        return false;

    std::sort(bestClosure.begin(), bestClosure.end());
    sim::BlockEmitter e(ctx.core, tracingCostPc);
    for (uint32_t id : bestClosure) {
        e.annot(xlayer::kTraceEvicted, id);
        ctx.registry.evict(id);
        // Drop pending executor work against the evicted ids.
        auto &promos = ctx.executor.pendingPromotions;
        promos.erase(std::remove(promos.begin(), promos.end(), id),
                     promos.end());
        auto &hot = ctx.executor.hotGuards;
        hot.erase(std::remove_if(hot.begin(), hot.end(),
                                 [id](const auto &hg) {
                                     return hg.first == id;
                                 }),
                  hot.end());
    }
    return true;
}

void
Interp::drainPromotions()
{
    if (ctx.executor.pendingPromotions.empty() || tracing())
        return;
    std::vector<uint32_t> ids;
    ids.swap(ctx.executor.pendingPromotions);
    for (uint32_t id : ids)
        promoteTrace(id);
}

void
Interp::promoteTrace(uint32_t trace_id)
{
    jit::Trace *t = ctx.registry.byId(trace_id);
    if (!t || t->tier != 1)
        return; // evicted since the request, or already promoted
    std::unique_ptr<jit::Trace> raw = ctx.registry.takeRaw(trace_id);
    if (!raw)
        return; // no retained recording (tier1-only mode)
    const vm::JitParams &jp = ctx.config.jit;
    if ((jp.compileBudgetOps && raw->ops.size() > jp.compileBudgetOps) ||
        ctx.faults.shouldFire(rt::FaultSite::kOptimizer)) {
        // Over budget or injected optimizer fault: stay at tier 1 (the
        // baseline program keeps running; promotionRequested stays set
        // so the request is not re-queued).
        sim::BlockEmitter e(ctx.core, tracingCostPc);
        e.annot(xlayer::kCompileDowngrade, trace_id);
        return;
    }

    // Re-optimize the original recording and swap the trace's program
    // in place; the trace keeps its id, anchor and hotness, so the
    // registry index and every call_assembler reference stay valid.
    // Bridges attached to tier-1 guard indices are detached by the
    // recompile (guard indices are meaningless across tiers).
    {
        sim::BlockEmitter e(ctx.core, tracingCostPc);
        e.annot(xlayer::kPhaseEnter, uint32_t(xlayer::Phase::Tracing));
    }
    uint32_t rawOps = uint32_t(raw->ops.size());
    jit::Trace optimized = jit::optimize(*raw, optParams(), nullptr);
    optimized.id = trace_id;
    jit::VerifyResult vr =
        jit::verifyTrace(optimized, jit::AbortReason::kOptimizerFailure);
    if (!vr.ok) {
        // Keep running the verified tier-1 program instead.
        XLVM_WARN("promotion output rejected (staying tier-1): ",
                  vr.detail);
        sim::BlockEmitter fin(ctx.core, tracingCostPc);
        fin.annot(xlayer::kCompileDowngrade, trace_id);
        fin.annot(xlayer::kPhaseExit, uint32_t(xlayer::Phase::Tracing));
        return;
    }
    ctx.backend.promote(*t, std::move(optimized));

    uint64_t work = uint64_t(rawOps) * ctx.env.costs().optPerOpInsts;
    ctx.backend.addCompileCost(2, work);
    emitCompileCost(work, trace_id);
    ++promotionsPerformed;

    sim::BlockEmitter e(ctx.core, tracingCostPc);
    e.annot(xlayer::kTierUp, trace_id);
    e.annot(xlayer::kPhaseExit, uint32_t(xlayer::Phase::Tracing));
}

std::vector<int32_t>
Interp::frameSlotEncodings(Frame &f)
{
    XLVM_ASSERT(f.localEnc.size() == f.locals.size() &&
                    f.stackEnc.size() == f.stack.size(),
                "shadow stacks out of sync in ", f.code->name);
    std::vector<int32_t> out;
    out.reserve(f.localEnc.size() + f.stackEnc.size());
    out.insert(out.end(), f.localEnc.begin(), f.localEnc.end());
    out.insert(out.end(), f.stackEnc.begin(), f.stackEnc.end());
    return out;
}

void
Interp::finishLoopTrace()
{
    recorder->closeLoop(frameSlotEncodings(*traceRootFrame));
    jit::Trace raw = recorder->take();
    ctx.env.setRecorder(nullptr);
    recorder.reset();
    if (registerAndAttach(std::move(raw), false, nullptr))
        ++tracesCompleted;
}

void
Interp::finishBridgeTrace(jit::Trace *target)
{
    recorder->closeBridge(target->id,
                          frameSlotEncodings(*traceRootFrame));
    jit::Trace raw = recorder->take();
    ctx.env.setRecorder(nullptr);
    recorder.reset();
    uint32_t bridgeId = ctx.registry.nextId();
    if (!registerAndAttach(std::move(raw), true, target))
        return;
    ++bridgesCompleted;
    ctx.registry.byId(bridgeParentTrace)
        ->guardStates[bridgeGuardIdx]
        .bridgeTraceId = int32_t(bridgeId);
}

jit::Snapshot
Interp::captureSnapshot()
{
    jit::Snapshot snap;
    for (size_t d = traceRootDepth; d < frames.size(); ++d) {
        Frame &f = *frames[d];
        XLVM_ASSERT(f.localEnc.size() == f.locals.size() &&
                        f.stackEnc.size() == f.stack.size(),
                    "shadow stacks out of sync in ", f.code->name);
        jit::FrameSnapshot fs;
        fs.code = f.code;
        fs.pc = f.pc;
        fs.locals = f.localEnc;
        fs.stack = f.stackEnc;
        snap.frames.push_back(std::move(fs));
    }
    return snap;
}

bool
Interp::checkBlacklist(jit::Trace *t)
{
    if (!t->blacklisted)
        return true;
    // Demoted to the interpreter: each merge-point visit burns one
    // cooldown tick; at zero the trace is re-armed for another try.
    if (t->cooldownRemaining > 0 && --t->cooldownRemaining == 0) {
        t->blacklisted = false;
        t->stormScore = 0;
        sim::BlockEmitter e(ctx.core, tracingCostPc);
        e.annot(xlayer::kTraceRearmed, t->id);
        return true;
    }
    return false;
}

void
Interp::noteTraceProgress(jit::Trace *t, uint64_t iters)
{
    const vm::JitParams &jp = ctx.config.jit;
    if (!jp.stormThreshold)
        return;
    if (iters > 0) {
        t->stormScore = 0;
        return;
    }
    // Zero-progress entry: the run failed a guard before completing a
    // single back-edge. A storm of these means the compiled code no
    // longer matches the live types and every entry is pure overhead.
    if (++t->stormScore < jp.stormThreshold)
        return;
    t->blacklisted = true;
    t->stormScore = 0;
    uint32_t gen = ++t->blacklistGen;
    uint32_t shift = std::min(gen - 1, jp.blacklistBackoffCap);
    t->cooldownRemaining = uint64_t(jp.blacklistCooldown) << shift;
    sim::BlockEmitter e(ctx.core, tracingCostPc);
    e.annot(xlayer::kTraceBlacklisted, t->id);
}

bool
Interp::maybeEnterCompiledTrace(Frame &f)
{
    // Apply queued tier-ups first so the program swap is atomic between
    // trace runs (never under a live register file).
    drainPromotions();
    jit::Trace *t = ctx.registry.loopFor(f.code, f.pc);
    if (!t)
        return false;
    if (!checkBlacklist(t))
        return false;
    if (t->numInputs != f.locals.size() + f.stack.size())
        return false;
    std::vector<jit::RtVal> inputs;
    inputs.reserve(t->numInputs);
    for (W_Object *w : f.locals)
        inputs.push_back(jit::RtVal::fromRef(w));
    for (W_Object *w : f.stack)
        inputs.push_back(jit::RtVal::fromRef(w));

    size_t rootDepth = frames.size() - 1;
    uint64_t itersBefore = ctx.executor.iterationCount();
    vm::DeoptResult res = ctx.executor.run(*t, std::move(inputs));
    noteTraceProgress(t, ctx.executor.iterationCount() - itersBefore);
    applyDeopt(res, rootDepth);

    // Bridge requests from hot guard exits. A trace that is about to
    // tier up keeps its guards only until the recompile, so recording a
    // bridge against its tier-1 guard indices would be dead on arrival:
    // the promotion wins the race and the bridge request is dropped.
    if (!ctx.executor.hotGuards.empty()) {
        auto [tid, gidx] = ctx.executor.hotGuards.back();
        ctx.executor.hotGuards.clear();
        bool promoPending =
            std::find(ctx.executor.pendingPromotions.begin(),
                      ctx.executor.pendingPromotions.end(),
                      tid) != ctx.executor.pendingPromotions.end();
        if (!tracing() && !promoPending && tid == res.traceId &&
            gidx == res.guardOpIdx) {
            size_t bridgeRoot = frames.size() - res.frames.size();
            startBridgeTrace(tid, gidx, bridgeRoot);
        }
    }
    return true;
}

void
Interp::applyDeopt(const vm::DeoptResult &res, size_t root_depth)
{
    XLVM_ASSERT(!res.frames.empty(), "empty deopt state");
    XLVM_ASSERT(root_depth < frames.size(), "bad deopt root depth");
    // The outermost deopt frame replaces the frame the trace was entered
    // from; inlined frames are pushed above it.
    frames.resize(root_depth + 1);
    Frame &base = *frames[root_depth];
    XLVM_ASSERT(base.code == static_cast<Code *>(res.frames[0].code),
                "deopt code mismatch");
    base.pc = res.frames[0].pc;
    base.locals = res.frames[0].locals;
    base.stack = res.frames[0].stack;
    for (size_t i = 1; i < res.frames.size(); ++i) {
        auto nf = std::make_unique<Frame>();
        nf->code = static_cast<Code *>(res.frames[i].code);
        nf->pc = res.frames[i].pc;
        nf->locals = res.frames[i].locals;
        nf->stack = res.frames[i].stack;
        frames.push_back(std::move(nf));
    }
}

bool
Interp::maybeCallAssembler(Frame &f)
{
    // While tracing, an inner compiled loop becomes call_assembler.
    jit::Trace *t = ctx.registry.loopFor(f.code, f.pc);
    if (!t)
        return false;
    if (t->blacklisted)
        return false; // storming inner loop: keep interpreting it
    if (t->numInputs != f.locals.size() + f.stack.size())
        return false;
    // If an inner trace entered here deopts without advancing (e.g., an
    // exhausted iterator at the header), re-running it would loop
    // forever without ever reaching the trace-length check. Require one
    // interpreted dispatch in between.
    if (lastCallAsmDispatch == executedCount &&
        lastCallAsmFrame == &f && lastCallAsmPc == f.pc)
        return false;
    lastCallAsmDispatch = executedCount;
    lastCallAsmFrame = &f;
    lastCallAsmPc = f.pc;

    // Capture input encodings before executing.
    std::vector<int32_t> inEncs = frameSlotEncodings(f);
    std::vector<jit::RtVal> inputs;
    inputs.reserve(t->numInputs);
    for (W_Object *w : f.locals)
        inputs.push_back(jit::RtVal::fromRef(w));
    for (W_Object *w : f.stack)
        inputs.push_back(jit::RtVal::fromRef(w));

    size_t depthBefore = frames.size() - 1;
    vm::DeoptResult res = ctx.executor.run(*t, std::move(inputs));
    ctx.executor.hotGuards.clear(); // no bridges while tracing

    if (res.frames.size() != 1 ||
        static_cast<Code *>(res.frames[0].code) != f.code) {
        // Exit state not expressible as call_assembler: the real state
        // has advanced, so the recording is no longer a prefix — abort.
        abortTrace(jit::AbortReason::kCallAssemblerExit);
        applyDeopt(res, depthBefore);
        return true;
    }

    // Record the call with input refs, fresh output boxes, and (from
    // frames[2] on) a resume snapshot of the *outer* frames so an
    // unexpected inner exit can reconstruct the full interpreter state.
    jit::Snapshot io;
    jit::FrameSnapshot inF;
    inF.stack = std::move(inEncs);
    io.frames.push_back(std::move(inF));
    // Capture the outer resume frames with their PRE-call encodings,
    // before any live object is rebound to the call's fresh output
    // boxes below: on an unexpected inner exit those boxes are never
    // written, so a snapshot referencing them would materialize stale
    // or default register values into the rebuilt frames.
    std::vector<jit::FrameSnapshot> outerFs;
    for (size_t d = traceRootDepth; d + 1 < frames.size(); ++d) {
        Frame &outer = *frames[d];
        jit::FrameSnapshot ofs;
        ofs.code = outer.code;
        ofs.pc = outer.pc;
        for (W_Object *w : outer.locals) {
            ofs.locals.push_back(w ? recorder->refEncoding(w)
                                   : recorder->constRef(nullptr));
        }
        for (W_Object *w : outer.stack)
            ofs.stack.push_back(recorder->refEncoding(w));
        outerFs.push_back(std::move(ofs));
    }
    jit::FrameSnapshot outF;
    outF.code = res.frames[0].code;
    outF.pc = res.frames[0].pc;
    for (W_Object *w : res.frames[0].locals) {
        int32_t box = recorder->newRefBox();
        if (w)
            recorder->mapRef(w, box);
        outF.locals.push_back(box);
    }
    for (W_Object *w : res.frames[0].stack) {
        int32_t box = recorder->newRefBox();
        if (w)
            recorder->mapRef(w, box);
        outF.stack.push_back(box);
    }
    io.frames.push_back(std::move(outF));
    for (jit::FrameSnapshot &ofs : outerFs)
        io.frames.push_back(std::move(ofs));
    // Keep a copy of the output encodings to restore slot shadows.
    std::vector<int32_t> outLocalEnc = io.frames[1].locals;
    std::vector<int32_t> outStackEnc = io.frames[1].stack;
    recorder->recordCallAssembler(t->id, std::move(io),
                                  res.frames[0].pc);

    applyDeopt(res, depthBefore);
    Frame &restored = *frames.back();
    restored.localEnc = std::move(outLocalEnc);
    restored.stackEnc = std::move(outStackEnc);
    return true;
}

void
Interp::emitTracingCost()
{
    uint32_t ops = recorder->numOps();
    uint32_t delta = ops - lastRecordedOps;
    lastRecordedOps = ops;
    uint64_t work =
        uint64_t(delta) * ctx.env.costs().tracePerOpInsts;
    for (uint64_t i = 0; i < work; i += 5) {
        sim::BlockEmitter e(ctx.core, tracingCostPc + 16);
        e.load(tracingCostPc + (i % 128) * 8, 2);
        e.alu(2);
        e.store(tracingCostPc + 0x400 + (i % 128) * 8);
        e.branch(i % 10 == 0);
    }
}

void
Interp::emitDispatch(uint8_t opcode)
{
    const obj::CostParams &c = ctx.env.costs();
    sim::BlockEmitter e(ctx.core, dispatchPc);
    e.annot(xlayer::kDispatch, opcode);
    for (uint32_t i = 0; i < c.dispatchLoads; ++i)
        e.loadPtr(this, c.interpLoadStall);
    e.alu(c.dispatchAlus);
    if (ctx.env.isRPython()) {
        e.alu(c.rpyDispatchExtraAlus);
        for (uint32_t i = 0; i < c.rpyDispatchExtraLoads; ++i)
            e.loadPtr(&frames, 1);
    }
    e.indirectJump(handlerPc[opcode]);
    sim::BlockEmitter h(ctx.core, handlerPc[opcode]);
    h.alu(c.handlerEntryAlus);
}

} // namespace minipy
} // namespace xlvm
