#include "minipy/interp.h"

#include <algorithm>

#include "jit/opt.h"
#include "xlayer/annot.h"

namespace xlvm {
namespace minipy {

using jit::BoxType;
using jit::IrOp;
using jit::kNoArg;
using obj::CmpOp;
using obj::W_BoundMethod;
using obj::W_Class;
using obj::W_Dict;
using obj::W_Func;
using obj::W_Instance;
using obj::W_List;
using obj::W_NativeFunc;
using obj::W_Object;
using obj::W_Str;
using obj::W_Tuple;

namespace {

uint64_t
mergeKey(const Code *code, uint32_t pc)
{
    return reinterpret_cast<uint64_t>(code) ^
           (uint64_t(pc) * 0x9e3779b97f4a7c15ull);
}

} // namespace

Interp::Interp(vm::VmContext &context, Program &program)
    : ctx(context), prog(program)
{
    ctx.heap.addRootProvider(this);
    ctx.heap.addRootProvider(&prog);
    globalsDict = ctx.space.newDict();
    installBuiltins(ctx.space, globalsDict);
    dispatchPc = ctx.env.allocSite(64);
    tracingCostPc = ctx.env.allocSite(64);
    handlerPc.resize(size_t(Op::NumOps));
    for (size_t i = 0; i < handlerPc.size(); ++i)
        handlerPc[i] = ctx.env.allocSite(96);
}

Interp::~Interp()
{
    ctx.heap.removeRootProvider(&prog);
    ctx.heap.removeRootProvider(this);
}

void
Interp::forEachRoot(gc::GcVisitor &v)
{
    v.visit(globalsDict);
    for (const auto &f : frames) {
        for (W_Object *w : f->locals)
            v.visit(w);
        for (W_Object *w : f->stack)
            v.visit(w);
    }
    if (recorder) {
        recorder->forEachLiveRef([&](void *p) {
            v.visit(static_cast<gc::GcObject *>(p));
        });
    }
}

bool
Interp::run()
{
    pushFrame(prog.module, {}, {}, nullptr, false);
    return loop();
}

void
Interp::pushFrame(Code *code, std::vector<W_Object *> args,
                  std::vector<int32_t> arg_encs, W_Func *fn,
                  bool discard_return)
{
    auto f = std::make_unique<Frame>();
    f->code = code;
    f->locals.assign(code->localNames.size(), nullptr);
    XLVM_ASSERT(args.size() <= code->numParams, "too many args to ",
                code->name);
    uint32_t missing = code->numParams - uint32_t(args.size());
    XLVM_ASSERT(missing <= code->numDefaults, "missing args to ",
                code->name, " (got ", args.size(), ", want ",
                code->numParams, ")");
    for (size_t i = 0; i < args.size(); ++i)
        f->locals[i] = args[i];
    if (missing && fn) {
        size_t base = fn->defaults.size() - missing;
        for (uint32_t i = 0; i < missing; ++i)
            f->locals[args.size() + i] = fn->defaults[base + i];
    }
    if (recorder) {
        f->localEnc.assign(f->locals.size(),
                           recorder->constRef(nullptr));
        for (size_t i = 0; i < args.size(); ++i) {
            f->localEnc[i] = i < arg_encs.size() &&
                                     arg_encs[i] != jit::kNoArg
                                 ? arg_encs[i]
                                 : recorder->refEncoding(args[i]);
        }
        if (missing && fn) {
            size_t base = fn->defaults.size() - missing;
            for (uint32_t i = 0; i < missing; ++i) {
                f->localEnc[args.size() + i] =
                    recorder->refEncoding(fn->defaults[base + i]);
            }
        }
    }
    f->discardReturn = discard_return;
    frames.push_back(std::move(f));
}

// ---------------------------------------------------------------- JIT glue

void
Interp::bumpLoopCounter(Code *code, uint32_t target_pc)
{
    if (!ctx.config.jit.enableJit || tracing())
        return;
    uint64_t key = mergeKey(code, target_pc);
    auto pen = abortPenalty.find(key);
    if (pen != abortPenalty.end()) {
        if (--pen->second > 0)
            return;
        abortPenalty.erase(pen);
    }
    const vm::JitParams &jp = ctx.config.jit;
    // Baseline tiers trace earlier: cheap compiles shift the warmup
    // tradeoff toward "compile sooner, run slower" (multi-tier JIT).
    uint32_t threshold = (jp.tierMode == vm::TierMode::Tier1 ||
                          jp.tierMode == vm::TierMode::Multi)
                             ? jp.tier1Threshold
                             : jp.loopThreshold;
    uint32_t &ctr = loopCounters[key];
    if (++ctr >= threshold) {
        ctr = 0;
        if (!ctx.registry.loopFor(code, target_pc))
            startLoopTrace(code, target_pc);
    }
}

void
Interp::startLoopTrace(Code *code, uint32_t pc)
{
    recorder = std::make_unique<jit::Recorder>(
        code, pc, /*bridge=*/false,
        jit::RecorderLimits{ctx.config.jit.maxTraceOps});
    traceRootFrame = frames.back().get();
    traceRootDepth = frames.size() - 1;
    traceAnchorCode = code;
    traceAnchorPc = pc;
    recordingBridge = false;
    lastRecordedOps = 0;
    ++tracesStarted;

    // Inputs: root frame locals + stack; each slot's shadow encoding is
    // its own input box.
    recorder->setAnchorLocals(uint32_t(traceRootFrame->locals.size()));
    Frame &rf = *traceRootFrame;
    rf.localEnc.clear();
    rf.stackEnc.clear();
    for (W_Object *w : rf.locals)
        rf.localEnc.push_back(recorder->addInputRef(w));
    for (W_Object *w : rf.stack)
        rf.stackEnc.push_back(recorder->addInputRef(w));

    ctx.env.setRecorder(recorder.get());
    sim::BlockEmitter e(ctx.core, tracingCostPc);
    e.annot(xlayer::kPhaseEnter, uint32_t(xlayer::Phase::Tracing));
}

void
Interp::startBridgeTrace(uint32_t parent_trace, uint32_t guard_idx,
                         size_t root_depth)
{
    recorder = std::make_unique<jit::Recorder>(
        frames[root_depth]->code, frames[root_depth]->pc, /*bridge=*/true,
        jit::RecorderLimits{ctx.config.jit.maxTraceOps});
    traceRootFrame = frames[root_depth].get();
    traceRootDepth = root_depth;
    traceAnchorCode = nullptr;
    traceAnchorPc = 0;
    recordingBridge = true;
    bridgeParentTrace = parent_trace;
    bridgeGuardIdx = guard_idx;
    lastRecordedOps = 0;
    ++tracesStarted;

    // Inputs: every slot of every frame from the bridge root to the top,
    // matching TraceExecutor's flattenState order; slot shadows are the
    // input boxes.
    for (size_t d = root_depth; d < frames.size(); ++d) {
        Frame &bf = *frames[d];
        bf.localEnc.clear();
        bf.stackEnc.clear();
        for (W_Object *w : bf.locals)
            bf.localEnc.push_back(recorder->addInputRef(w));
        for (W_Object *w : bf.stack)
            bf.stackEnc.push_back(recorder->addInputRef(w));
    }

    ctx.env.setRecorder(recorder.get());
    sim::BlockEmitter e(ctx.core, tracingCostPc);
    e.annot(xlayer::kPhaseEnter, uint32_t(xlayer::Phase::Tracing));
}

void
Interp::abortTrace(const char *reason)
{
#ifdef XLVM_DEBUG_TRACE
    std::fprintf(stderr, "ABORT: %s (bridge=%d)\n", reason,
                 int(recordingBridge));
#endif
    (void)reason;
    ++tracesAbortedCount;
    if (traceAnchorCode) {
        abortPenalty[mergeKey(traceAnchorCode, traceAnchorPc)] =
            ctx.config.jit.abortPenalty;
    }
    sim::BlockEmitter e(ctx.core, tracingCostPc);
    e.annot(xlayer::kTraceAborted, 0);
    e.annot(xlayer::kPhaseExit, uint32_t(xlayer::Phase::Tracing));
    ctx.env.setRecorder(nullptr);
    recorder.reset();
}

void
Interp::emitCompileCost(uint64_t work, uint32_t trace_id)
{
    // Sampler context: the modeled compile loop is attributable to the
    // trace being compiled, not to whatever interp context surrounds it.
    const uint64_t savedCtx = ctx.core.profileContext();
    ctx.core.setProfileContext(
        sim::sampleCtxPack(sim::SampleCtxKind::Compile, 0, trace_id));
    for (uint64_t i = 0; i < work; i += 4) {
        sim::BlockEmitter body(ctx.core, tracingCostPc + 32);
        body.load(tracingCostPc + (i % 256) * 8, 1);
        body.alu(2);
        body.branch(i % 16 == 0);
    }
    ctx.core.setProfileContext(savedCtx);
}

jit::OptParams
Interp::optParams() const
{
    jit::OptParams op;
    op.foldConstants = ctx.config.jit.optFoldConstants;
    op.elideGuards = ctx.config.jit.optElideGuards;
    op.heapCache = ctx.config.jit.optHeapCache;
    op.virtualize = ctx.config.jit.optVirtualize;
    op.classOf = [](void *p) {
        return p ? uint32_t(static_cast<W_Object *>(p)->typeId()) : 0u;
    };
    return op;
}

void
Interp::registerAndAttach(jit::Trace &&raw, bool is_bridge,
                          jit::Trace *bridge_target)
{
    (void)bridge_target;
    uint32_t id = ctx.registry.nextId();
    const vm::JitParams &jp = ctx.config.jit;
    const bool baseline = jp.tierMode == vm::TierMode::Tier1 ||
                          jp.tierMode == vm::TierMode::Multi;
    uint32_t rawOps = uint32_t(raw.ops.size());
#ifdef XLVM_DEBUG_TRACE
    raw.id = id;
    std::fprintf(stderr, "=== RAW %s\n", raw.dump().c_str());
#endif

    // Compile (tier by mode) and charge the modeled compile cost to the
    // Tracing phase, proportional to the recorded trace length.
    std::unique_ptr<jit::Trace> compiled;
    std::unique_ptr<jit::Trace> retained;
    uint64_t work;
    if (baseline) {
        // Tier-1 baseline: lower the raw recording directly, skipping
        // the optimizer entirely. Multi mode keeps a copy of the raw
        // ops so a later tier-up can re-optimize from the original.
        if (jp.tierMode == vm::TierMode::Multi)
            retained = std::make_unique<jit::Trace>(raw);
        compiled = std::make_unique<jit::Trace>(std::move(raw));
        compiled->id = id;
        ctx.backend.compileBaseline(*compiled);
        work = uint64_t(rawOps) * ctx.env.costs().tier1PerOpInsts;
        ctx.backend.addCompileCost(1, work);
    } else {
        compiled = std::make_unique<jit::Trace>(
            jit::optimize(raw, optParams(), nullptr));
        compiled->id = id;
        ctx.backend.compile(*compiled);
        work = uint64_t(rawOps) * ctx.env.costs().optPerOpInsts;
        ctx.backend.addCompileCost(2, work);
    }
    emitCompileCost(work, id);

    sim::BlockEmitter e(ctx.core, tracingCostPc);
    if (baseline)
        e.annot(xlayer::kTier1Compile, id);
    e.annot(is_bridge ? xlayer::kBridgeCompiled : xlayer::kLoopCompiled,
            id);
    e.annot(xlayer::kPhaseExit, uint32_t(xlayer::Phase::Tracing));

    ctx.registry.add(std::move(compiled));
    if (retained)
        ctx.registry.retainRaw(id, std::move(retained));
}

void
Interp::drainPromotions()
{
    if (ctx.executor.pendingPromotions.empty() || tracing())
        return;
    std::vector<uint32_t> ids;
    ids.swap(ctx.executor.pendingPromotions);
    for (uint32_t id : ids)
        promoteTrace(id);
}

void
Interp::promoteTrace(uint32_t trace_id)
{
    jit::Trace *t = ctx.registry.byId(trace_id);
    if (t->tier != 1)
        return;
    std::unique_ptr<jit::Trace> raw = ctx.registry.takeRaw(trace_id);
    if (!raw)
        return; // no retained recording (tier1-only mode)

    // Re-optimize the original recording and swap the trace's program
    // in place; the trace keeps its id, anchor and hotness, so the
    // registry index and every call_assembler reference stay valid.
    // Bridges attached to tier-1 guard indices are detached by the
    // recompile (guard indices are meaningless across tiers).
    {
        sim::BlockEmitter e(ctx.core, tracingCostPc);
        e.annot(xlayer::kPhaseEnter, uint32_t(xlayer::Phase::Tracing));
    }
    uint32_t rawOps = uint32_t(raw->ops.size());
    jit::Trace optimized = jit::optimize(*raw, optParams(), nullptr);
    optimized.id = trace_id;
    ctx.backend.promote(*t, std::move(optimized));

    uint64_t work = uint64_t(rawOps) * ctx.env.costs().optPerOpInsts;
    ctx.backend.addCompileCost(2, work);
    emitCompileCost(work, trace_id);
    ++promotionsPerformed;

    sim::BlockEmitter e(ctx.core, tracingCostPc);
    e.annot(xlayer::kTierUp, trace_id);
    e.annot(xlayer::kPhaseExit, uint32_t(xlayer::Phase::Tracing));
}

std::vector<int32_t>
Interp::frameSlotEncodings(Frame &f)
{
    XLVM_ASSERT(f.localEnc.size() == f.locals.size() &&
                    f.stackEnc.size() == f.stack.size(),
                "shadow stacks out of sync in ", f.code->name);
    std::vector<int32_t> out;
    out.reserve(f.localEnc.size() + f.stackEnc.size());
    out.insert(out.end(), f.localEnc.begin(), f.localEnc.end());
    out.insert(out.end(), f.stackEnc.begin(), f.stackEnc.end());
    return out;
}

void
Interp::finishLoopTrace()
{
    recorder->closeLoop(frameSlotEncodings(*traceRootFrame));
    jit::Trace raw = recorder->take();
    ctx.env.setRecorder(nullptr);
    recorder.reset();
    ++tracesCompleted;
    registerAndAttach(std::move(raw), false, nullptr);
}

void
Interp::finishBridgeTrace(jit::Trace *target)
{
    recorder->closeBridge(target->id,
                          frameSlotEncodings(*traceRootFrame));
    jit::Trace raw = recorder->take();
    ctx.env.setRecorder(nullptr);
    recorder.reset();
    ++bridgesCompleted;
    uint32_t bridgeId = ctx.registry.nextId();
    registerAndAttach(std::move(raw), true, target);
    ctx.registry.byId(bridgeParentTrace)
        ->guardStates[bridgeGuardIdx]
        .bridgeTraceId = int32_t(bridgeId);
}

jit::Snapshot
Interp::captureSnapshot()
{
    jit::Snapshot snap;
    for (size_t d = traceRootDepth; d < frames.size(); ++d) {
        Frame &f = *frames[d];
        XLVM_ASSERT(f.localEnc.size() == f.locals.size() &&
                        f.stackEnc.size() == f.stack.size(),
                    "shadow stacks out of sync in ", f.code->name);
        jit::FrameSnapshot fs;
        fs.code = f.code;
        fs.pc = f.pc;
        fs.locals = f.localEnc;
        fs.stack = f.stackEnc;
        snap.frames.push_back(std::move(fs));
    }
    return snap;
}

bool
Interp::maybeEnterCompiledTrace(Frame &f)
{
    // Apply queued tier-ups first so the program swap is atomic between
    // trace runs (never under a live register file).
    drainPromotions();
    jit::Trace *t = ctx.registry.loopFor(f.code, f.pc);
    if (!t)
        return false;
    if (t->numInputs != f.locals.size() + f.stack.size())
        return false;
    std::vector<jit::RtVal> inputs;
    inputs.reserve(t->numInputs);
    for (W_Object *w : f.locals)
        inputs.push_back(jit::RtVal::fromRef(w));
    for (W_Object *w : f.stack)
        inputs.push_back(jit::RtVal::fromRef(w));

    size_t rootDepth = frames.size() - 1;
    vm::DeoptResult res = ctx.executor.run(*t, std::move(inputs));
    applyDeopt(res, rootDepth);

    // Bridge requests from hot guard exits. A trace that is about to
    // tier up keeps its guards only until the recompile, so recording a
    // bridge against its tier-1 guard indices would be dead on arrival:
    // the promotion wins the race and the bridge request is dropped.
    if (!ctx.executor.hotGuards.empty()) {
        auto [tid, gidx] = ctx.executor.hotGuards.back();
        ctx.executor.hotGuards.clear();
        bool promoPending =
            std::find(ctx.executor.pendingPromotions.begin(),
                      ctx.executor.pendingPromotions.end(),
                      tid) != ctx.executor.pendingPromotions.end();
        if (!tracing() && !promoPending && tid == res.traceId &&
            gidx == res.guardOpIdx) {
            size_t bridgeRoot = frames.size() - res.frames.size();
            startBridgeTrace(tid, gidx, bridgeRoot);
        }
    }
    return true;
}

void
Interp::applyDeopt(const vm::DeoptResult &res, size_t root_depth)
{
    XLVM_ASSERT(!res.frames.empty(), "empty deopt state");
    XLVM_ASSERT(root_depth < frames.size(), "bad deopt root depth");
    // The outermost deopt frame replaces the frame the trace was entered
    // from; inlined frames are pushed above it.
    frames.resize(root_depth + 1);
    Frame &base = *frames[root_depth];
    XLVM_ASSERT(base.code == static_cast<Code *>(res.frames[0].code),
                "deopt code mismatch");
    base.pc = res.frames[0].pc;
    base.locals = res.frames[0].locals;
    base.stack = res.frames[0].stack;
    for (size_t i = 1; i < res.frames.size(); ++i) {
        auto nf = std::make_unique<Frame>();
        nf->code = static_cast<Code *>(res.frames[i].code);
        nf->pc = res.frames[i].pc;
        nf->locals = res.frames[i].locals;
        nf->stack = res.frames[i].stack;
        frames.push_back(std::move(nf));
    }
}

bool
Interp::maybeCallAssembler(Frame &f)
{
    // While tracing, an inner compiled loop becomes call_assembler.
    jit::Trace *t = ctx.registry.loopFor(f.code, f.pc);
    if (!t)
        return false;
    if (t->numInputs != f.locals.size() + f.stack.size())
        return false;
    // If an inner trace entered here deopts without advancing (e.g., an
    // exhausted iterator at the header), re-running it would loop
    // forever without ever reaching the trace-length check. Require one
    // interpreted dispatch in between.
    if (lastCallAsmDispatch == executedCount &&
        lastCallAsmFrame == &f && lastCallAsmPc == f.pc)
        return false;
    lastCallAsmDispatch = executedCount;
    lastCallAsmFrame = &f;
    lastCallAsmPc = f.pc;

    // Capture input encodings before executing.
    std::vector<int32_t> inEncs = frameSlotEncodings(f);
    std::vector<jit::RtVal> inputs;
    inputs.reserve(t->numInputs);
    for (W_Object *w : f.locals)
        inputs.push_back(jit::RtVal::fromRef(w));
    for (W_Object *w : f.stack)
        inputs.push_back(jit::RtVal::fromRef(w));

    size_t depthBefore = frames.size() - 1;
    vm::DeoptResult res = ctx.executor.run(*t, std::move(inputs));
    ctx.executor.hotGuards.clear(); // no bridges while tracing

    if (res.frames.size() != 1 ||
        static_cast<Code *>(res.frames[0].code) != f.code) {
        // Exit state not expressible as call_assembler: the real state
        // has advanced, so the recording is no longer a prefix — abort.
        abortTrace("call_assembler multi-frame exit");
        applyDeopt(res, depthBefore);
        return true;
    }

    // Record the call with input refs, fresh output boxes, and (from
    // frames[2] on) a resume snapshot of the *outer* frames so an
    // unexpected inner exit can reconstruct the full interpreter state.
    jit::Snapshot io;
    jit::FrameSnapshot inF;
    inF.stack = std::move(inEncs);
    io.frames.push_back(std::move(inF));
    jit::FrameSnapshot outF;
    outF.code = res.frames[0].code;
    outF.pc = res.frames[0].pc;
    for (W_Object *w : res.frames[0].locals) {
        int32_t box = recorder->newRefBox();
        if (w)
            recorder->mapRef(w, box);
        outF.locals.push_back(box);
    }
    for (W_Object *w : res.frames[0].stack) {
        int32_t box = recorder->newRefBox();
        if (w)
            recorder->mapRef(w, box);
        outF.stack.push_back(box);
    }
    io.frames.push_back(std::move(outF));
    for (size_t d = traceRootDepth; d + 1 < frames.size(); ++d) {
        Frame &outer = *frames[d];
        jit::FrameSnapshot ofs;
        ofs.code = outer.code;
        ofs.pc = outer.pc;
        for (W_Object *w : outer.locals) {
            ofs.locals.push_back(w ? recorder->refEncoding(w)
                                   : recorder->constRef(nullptr));
        }
        for (W_Object *w : outer.stack)
            ofs.stack.push_back(recorder->refEncoding(w));
        io.frames.push_back(std::move(ofs));
    }
    // Keep a copy of the output encodings to restore slot shadows.
    std::vector<int32_t> outLocalEnc = io.frames[1].locals;
    std::vector<int32_t> outStackEnc = io.frames[1].stack;
    recorder->recordCallAssembler(t->id, std::move(io),
                                  res.frames[0].pc);

    applyDeopt(res, depthBefore);
    Frame &restored = *frames.back();
    restored.localEnc = std::move(outLocalEnc);
    restored.stackEnc = std::move(outStackEnc);
    return true;
}

void
Interp::emitTracingCost()
{
    uint32_t ops = recorder->numOps();
    uint32_t delta = ops - lastRecordedOps;
    lastRecordedOps = ops;
    uint64_t work =
        uint64_t(delta) * ctx.env.costs().tracePerOpInsts;
    for (uint64_t i = 0; i < work; i += 5) {
        sim::BlockEmitter e(ctx.core, tracingCostPc + 16);
        e.load(tracingCostPc + (i % 128) * 8, 2);
        e.alu(2);
        e.store(tracingCostPc + 0x400 + (i % 128) * 8);
        e.branch(i % 10 == 0);
    }
}

void
Interp::emitDispatch(uint8_t opcode)
{
    const obj::CostParams &c = ctx.env.costs();
    sim::BlockEmitter e(ctx.core, dispatchPc);
    e.annot(xlayer::kDispatch, opcode);
    for (uint32_t i = 0; i < c.dispatchLoads; ++i)
        e.loadPtr(this, c.interpLoadStall);
    e.alu(c.dispatchAlus);
    if (ctx.env.isRPython()) {
        e.alu(c.rpyDispatchExtraAlus);
        for (uint32_t i = 0; i < c.rpyDispatchExtraLoads; ++i)
            e.loadPtr(&frames, 1);
    }
    e.indirectJump(handlerPc[opcode]);
    sim::BlockEmitter h(ctx.core, handlerPc[opcode]);
    h.alu(c.handlerEntryAlus);
}

} // namespace minipy
} // namespace xlvm
