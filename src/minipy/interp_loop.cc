/**
 * @file
 * The MiniPy dispatch loop: bytecode handlers plus the merge-point logic
 * of the meta-tracing framework (hot counters, trace closure, trace
 * entry, call_assembler detection).
 *
 * While tracing, every stack/local slot carries its IR encoding (shadow
 * stacks), captured at push time when the recorder's object-identity
 * mapping is guaranteed fresh. Handlers hint operand encodings to the
 * object space so shared objects (None/bool singletons, interned
 * strings) never resolve through a stale identity mapping.
 */

#include "minipy/interp.h"
#include "xlayer/annot.h"

namespace xlvm {
namespace minipy {

using jit::BoxType;
using jit::IrOp;
using jit::kNoArg;
using obj::CmpOp;
using obj::W_BoundMethod;
using obj::W_Class;
using obj::W_Dict;
using obj::W_Func;
using obj::W_Instance;
using obj::W_List;
using obj::W_NativeFunc;
using obj::W_Object;
using obj::W_Str;
using obj::W_Tuple;

namespace {

constexpr int64_t kHugeStop = int64_t(1) << 40;

} // namespace

void
Interp::pushV(Frame &f, W_Object *w, int32_t enc)
{
    f.stack.push_back(w);
    if (recorder) {
        if (enc == kNoArg)
            enc = w ? recorder->refEncoding(w)
                    : recorder->constRef(nullptr);
        f.stackEnc.push_back(enc);
    }
}

W_Object *
Interp::popV(Frame &f, int32_t *enc)
{
    W_Object *w = f.stack.back();
    f.stack.pop_back();
    int32_t e = kNoArg;
    if (recorder) {
        XLVM_ASSERT(!f.stackEnc.empty(), "shadow stack underflow");
        e = f.stackEnc.back();
        f.stackEnc.pop_back();
    }
    if (enc)
        *enc = e;
    return w;
}

void
Interp::callValue(Frame &f, W_Object *callee, int32_t callee_enc,
                  std::vector<W_Object *> args,
                  std::vector<int32_t> arg_encs)
{
    switch (callee->typeId()) {
      case obj::kTypeFunc: {
        auto *fn = static_cast<W_Func *>(callee);
        if (tracing() && !jit::isConstRef(callee_enc))
            recorder->guardValueRef(callee_enc, callee);
        pushFrame(static_cast<Code *>(fn->code), std::move(args),
                  std::move(arg_encs), fn, false);
        return;
      }
      case obj::kTypeBoundMethod: {
        auto *bm = static_cast<W_BoundMethod *>(callee);
        int32_t selfEnc = kNoArg;
        int32_t fnEnc = kNoArg;
        if (tracing()) {
            if (!jit::isConstRef(callee_enc)) {
                recorder->guardClass(callee_enc, obj::kTypeBoundMethod);
                selfEnc = recorder->emitTyped(
                    IrOp::GetfieldGc, BoxType::Ref, callee_enc, kNoArg,
                    kNoArg, obj::kFieldBoundSelf);
                fnEnc = recorder->emitTyped(
                    IrOp::GetfieldGc, BoxType::Ref, callee_enc, kNoArg,
                    kNoArg, obj::kFieldBoundFunc);
                recorder->guardValueRef(fnEnc, bm->func);
            } else {
                selfEnc = recorder->refEncoding(bm->self);
                fnEnc = recorder->constRef(bm->func);
            }
        }
        args.insert(args.begin(), bm->self);
        arg_encs.insert(arg_encs.begin(), selfEnc);
        callValue(f, bm->func, fnEnc, std::move(args),
                  std::move(arg_encs));
        return;
      }
      case obj::kTypeNativeFunc: {
        auto *nf = static_cast<W_NativeFunc *>(callee);
        if (tracing() && !jit::isConstRef(callee_enc))
            recorder->guardValueRef(callee_enc, callee);
        if (tracing()) {
            space().hintClear();
            for (size_t i = 0; i < args.size(); ++i)
                space().hintOperand(args[i], arg_encs[i]);
        }
        W_Object *res = callBuiltin(*this, nf->builtinId, args);
        if (res)
            pushV(f, res);
        return;
      }
      case obj::kTypeClass: {
        auto *cls = static_cast<W_Class *>(callee);
        if (tracing() && !jit::isConstRef(callee_enc))
            recorder->guardValueRef(callee_enc, callee);
        W_Instance *inst = space().instantiate(cls);
        pushV(f, inst);
        W_Object *init = cls->findMethod(space().intern("__init__"));
        if (init) {
            int32_t instEnc =
                tracing() ? recorder->refEncoding(inst) : kNoArg;
            args.insert(args.begin(), inst);
            arg_encs.insert(arg_encs.begin(), instEnc);
            auto *initFn = static_cast<W_Func *>(init);
            pushFrame(static_cast<Code *>(initFn->code),
                      std::move(args), std::move(arg_encs), initFn,
                      /*discard_return=*/true);
        }
        return;
      }
      default:
        XLVM_FATAL("object of type ", obj::typeName(callee->typeId()),
                   " is not callable");
    }
}

bool
Interp::loop()
{
    obj::ObjSpace &sp = space();

    while (!frames.empty()) {
        Frame &f = *frames.back();
        XLVM_ASSERT(f.pc < f.code->instrs.size(), "pc out of range in ",
                    f.code->name);

        // Budget check (coarse).
        if ((dispatchCount & 255) == 0 && ctx.budgetExhausted()) {
            if (tracing())
                abortTrace(jit::AbortReason::kBudgetExhausted);
            return false;
        }
        ++dispatchCount;

        // GC safepoint: full root set is visible here.
        ctx.heap.safepoint();

        // Fault-injection trigger points (zero-cost when disarmed: one
        // predictable branch). Trigger counters are deterministic: they
        // tick per dispatch (gc_hook, sim_memo) or per traced dispatch
        // (recorder), never on wall-clock or sampled state.
        if (ctx.faults.armed()) {
            if (tracing() &&
                ctx.faults.shouldFire(rt::FaultSite::kRecorder)) {
                // Simulated recorder type-confusion: safe bailout.
                abortTrace(jit::AbortReason::kInjected);
            }
            if (ctx.faults.shouldFire(rt::FaultSite::kGcHook) &&
                tracing()) {
                // A GC hook misbehaving mid-recording invalidates the
                // recorder's object identities: discard the recording.
                abortTrace(jit::AbortReason::kInjected);
            }
            if (ctx.faults.shouldFire(rt::FaultSite::kSimMemo)) {
                // Host-side only: drop every memoized block. Modeled
                // counters are invariant by the memo contract.
                ctx.core.memoInvalidateEntries();
            }
        }

        // Merge-point logic while tracing. Note: compiled traces are
        // *entered* only from backward jumps (the can_enter_jit point in
        // the JumpBack handler), never on mere arrival at a header — a
        // deopt that resumes at the header must re-execute the loop
        // bytecode before the trace can be tried again.
        if (ctx.config.jit.enableJit && tracing() &&
            f.pc < f.code->isLoopHeader.size() &&
            f.code->isLoopHeader[f.pc]) {
            bool justFinished = false;
            if (!recordingBridge && &f == traceRootFrame &&
                f.code == traceAnchorCode && f.pc == traceAnchorPc &&
                recorder->numOps() > 1) {
                finishLoopTrace();
                justFinished = true;
            } else if (recordingBridge && &f == traceRootFrame &&
                       recorder->numOps() > 1) {
                jit::Trace *target = ctx.registry.loopFor(f.code, f.pc);
                if (target &&
                    target->numInputs ==
                        f.locals.size() + f.stack.size()) {
                    finishBridgeTrace(target);
                    justFinished = true;
                }
            } else if (!(recordingBridge && &f == traceRootFrame) &&
                       maybeCallAssembler(f)) {
                // Inner compiled loop in a *different* context becomes
                // call_assembler. A bridge-root frame never takes this
                // path: a bridge starting at a header records one full
                // iteration and closes with a jump instead (otherwise
                // bridge -> call_assembler(parent) -> bridge would nest
                // unboundedly). The inner trace advanced the frame
                // state; restart dispatch.
                continue;
            }
            // A freshly compiled trace is entered immediately (we got
            // here via a backward jump while recording it).
            if (justFinished && !tracing() &&
                maybeEnterCompiledTrace(*frames.back()))
                continue;
        }

        Frame &fr = *frames.back();
        const Instr ins = fr.code->instrs[fr.pc];
        ++executedCount;
        emitDispatch(uint8_t(ins.op));

        if (tracing()) {
            emitTracingCost();
            // Snapshot state must be the bytecode-START state (pc not
            // yet advanced, operands still on the stack) so deopts
            // re-execute the current bytecode. Capture eagerly.
            jit::Snapshot snap = captureSnapshot();
            if (!recorder->atMergePoint(
                    uint8_t(ins.op),
                    [s = std::move(snap)] { return s; })) {
                abortTrace(jit::AbortReason::kTraceTooLong);
            }
        }

        ++fr.pc;
        sim::BlockEmitter h(ctx.core, handlerPc[size_t(ins.op)] + 16);
        sp.hintClear();

        switch (ins.op) {
          case Op::LoadConst: {
            W_Object *w = fr.code->consts[ins.arg];
            h.loadPtr(w, 1);
            // Code constants always encode as constants; identity lookup
            // could alias them to a dynamic box holding the same object.
            pushV(fr, w,
                  tracing() ? recorder->constRef(w) : kNoArg);
            break;
          }
          case Op::LoadFast: {
            W_Object *w = fr.locals[ins.arg];
            XLVM_ASSERT(w, "unbound local '",
                        fr.code->localNames[ins.arg], "' in ",
                        fr.code->name);
            h.loadPtr(w, 1);
            h.alu(1);
            pushV(fr, w,
                  tracing() ? fr.localEnc[ins.arg] : kNoArg);
            break;
          }
          case Op::StoreFast: {
            h.alu(2);
            int32_t e;
            fr.locals[ins.arg] = popV(fr, &e);
            if (tracing())
                fr.localEnc[ins.arg] = e;
            break;
          }
          case Op::LoadGlobal: {
            W_Str *name = fr.code->names[ins.arg];
            W_Object *w = sp.getGlobal(globalsDict, name);
            XLVM_ASSERT(w, "NameError: ", name->value);
            pushV(fr, w);
            break;
          }
          case Op::StoreGlobal: {
            W_Str *name = fr.code->names[ins.arg];
            int32_t e;
            W_Object *w = popV(fr, &e);
            sp.hintOperand(w, e);
            sp.setGlobal(globalsDict, name, w);
            break;
          }
          case Op::LoadAttr: {
            int32_t e;
            W_Object *objv = popV(fr, &e);
            sp.hintOperand(objv, e);
            W_Str *name = fr.code->names[ins.arg];
            if (objv->typeId() == obj::kTypeInstance) {
                pushV(fr, sp.getattr(objv, name));
            } else {
                uint32_t bi = builtinMethodFor(objv->typeId(),
                                               name->value);
                XLVM_ASSERT(bi, "no attribute '", name->value, "' on ",
                            obj::typeName(objv->typeId()));
                W_NativeFunc *nf = ctx.heap.alloc<W_NativeFunc>(
                    bi, name->value);
                W_BoundMethod *bm =
                    ctx.heap.alloc<W_BoundMethod>(objv, nf);
                if (tracing()) {
                    // The method is determined by the receiver type,
                    // which we guard; the bound method is a fresh
                    // (virtualizable) allocation.
                    sp.recGuardType(objv);
                    int32_t fnc = recorder->constRef(nf);
                    int32_t box = recorder->emit(IrOp::NewWithVtable,
                                                 kNoArg, kNoArg, kNoArg,
                                                 obj::kTypeBoundMethod);
                    recorder->emit(IrOp::SetfieldGc, box,
                                   sp.recRef(objv), kNoArg,
                                   obj::kFieldBoundSelf);
                    recorder->emit(IrOp::SetfieldGc, box, fnc, kNoArg,
                                   obj::kFieldBoundFunc);
                    recorder->mapRef(bm, box);
                }
                pushV(fr, bm);
            }
            break;
          }
          case Op::StoreAttr: {
            int32_t eo, ev;
            W_Object *objv = popV(fr, &eo);
            W_Object *value = popV(fr, &ev);
            sp.hintOperand(objv, eo);
            sp.hintOperand(value, ev);
            sp.setattr(objv, fr.code->names[ins.arg], value);
            break;
          }

          case Op::BinAdd:
          case Op::BinSub:
          case Op::BinMul:
          case Op::BinTrueDiv:
          case Op::BinFloorDiv:
          case Op::BinMod:
          case Op::BinPow:
          case Op::BinAnd:
          case Op::BinOr:
          case Op::BinXor:
          case Op::BinLshift:
          case Op::BinRshift: {
            int32_t el, er;
            W_Object *r = popV(fr, &er);
            W_Object *l = popV(fr, &el);
            sp.hintOperand(l, el);
            sp.hintOperand(r, er);
            W_Object *res = nullptr;
            switch (ins.op) {
              case Op::BinAdd: res = sp.add(l, r); break;
              case Op::BinSub: res = sp.sub(l, r); break;
              case Op::BinMul: res = sp.mul(l, r); break;
              case Op::BinTrueDiv: res = sp.truediv(l, r); break;
              case Op::BinFloorDiv: res = sp.floordiv(l, r); break;
              case Op::BinMod: res = sp.mod(l, r); break;
              case Op::BinPow: res = sp.pow_(l, r); break;
              case Op::BinAnd: res = sp.bitAnd(l, r); break;
              case Op::BinOr: res = sp.bitOr(l, r); break;
              case Op::BinXor: res = sp.bitXor(l, r); break;
              case Op::BinLshift: res = sp.lshift(l, r); break;
              case Op::BinRshift: res = sp.rshift(l, r); break;
              default: break;
            }
            pushV(fr, res);
            break;
          }
          case Op::UnaryNeg: {
            int32_t e;
            W_Object *w = popV(fr, &e);
            sp.hintOperand(w, e);
            pushV(fr, sp.neg(w));
            break;
          }
          case Op::UnaryNot: {
            int32_t e;
            W_Object *w = popV(fr, &e);
            sp.hintOperand(w, e);
            pushV(fr, sp.boolNot(w));
            break;
          }

          case Op::CmpLt:
          case Op::CmpLe:
          case Op::CmpEq:
          case Op::CmpNe:
          case Op::CmpGt:
          case Op::CmpGe:
          case Op::CmpIs:
          case Op::CmpIsNot:
          case Op::CmpIn:
          case Op::CmpNotIn: {
            static const CmpOp kMap[] = {
                CmpOp::Lt, CmpOp::Le, CmpOp::Eq,    CmpOp::Ne,
                CmpOp::Gt, CmpOp::Ge, CmpOp::Is,    CmpOp::IsNot,
                CmpOp::In, CmpOp::NotIn};
            int32_t el, er;
            W_Object *r = popV(fr, &er);
            W_Object *l = popV(fr, &el);
            sp.hintOperand(l, el);
            sp.hintOperand(r, er);
            CmpOp c = kMap[int(ins.op) - int(Op::CmpLt)];
            pushV(fr, sp.cmp(c, l, r));
            break;
          }

          case Op::BinSubscr: {
            int32_t ei, eo;
            W_Object *idx = popV(fr, &ei);
            W_Object *objv = popV(fr, &eo);
            sp.hintOperand(objv, eo);
            sp.hintOperand(idx, ei);
            pushV(fr, sp.getitem(objv, idx));
            break;
          }
          case Op::StoreSubscr: {
            int32_t ei, eo, ev;
            W_Object *idx = popV(fr, &ei);
            W_Object *objv = popV(fr, &eo);
            W_Object *value = popV(fr, &ev);
            sp.hintOperand(objv, eo);
            sp.hintOperand(idx, ei);
            sp.hintOperand(value, ev);
            sp.setitem(objv, idx, value);
            break;
          }
          case Op::LoadSlice: {
            int32_t eh, el2, eo;
            W_Object *hi = popV(fr, &eh);
            W_Object *lo = popV(fr, &el2);
            W_Object *objv = popV(fr, &eo);
            sp.hintOperand(objv, eo);
            sp.hintOperand(lo, el2);
            sp.hintOperand(hi, eh);
            int64_t start = 0, stop = kHugeStop;
            int32_t se = kNoArg, pe = kNoArg;
            if (lo->typeId() != obj::kTypeNone) {
                start = sp.unwrapInt(lo);
                if (tracing()) {
                    sp.recGuardType(lo);
                    se = sp.recUnboxInt(lo);
                }
            } else if (tracing()) {
                se = recorder->constInt(0);
            }
            if (hi->typeId() != obj::kTypeNone) {
                stop = sp.unwrapInt(hi);
                if (tracing()) {
                    sp.recGuardType(hi);
                    pe = sp.recUnboxInt(hi);
                }
            } else if (tracing()) {
                pe = recorder->constInt(kHugeStop);
            }
            if (objv->typeId() == obj::kTypeList) {
                if (tracing())
                    sp.recGuardType(objv);
                pushV(fr, sp.listSlice(static_cast<W_List *>(objv),
                                       start, stop, se, pe));
            } else if (objv->typeId() == obj::kTypeStr) {
                if (tracing())
                    sp.recGuardType(objv);
                pushV(fr, sp.strSlice(static_cast<W_Str *>(objv), start,
                                      stop, se, pe));
            } else {
                XLVM_FATAL("cannot slice ",
                           obj::typeName(objv->typeId()));
            }
            break;
          }
          case Op::StoreSlice: {
            int32_t eh, el2, eo, ev;
            W_Object *hi = popV(fr, &eh);
            W_Object *lo = popV(fr, &el2);
            W_Object *objv = popV(fr, &eo);
            W_Object *value = popV(fr, &ev);
            sp.hintOperand(objv, eo);
            sp.hintOperand(lo, el2);
            sp.hintOperand(hi, eh);
            sp.hintOperand(value, ev);
            XLVM_ASSERT(objv->typeId() == obj::kTypeList &&
                            value->typeId() == obj::kTypeList,
                        "slice assignment requires lists");
            int64_t start = 0, stop = kHugeStop;
            int32_t se = kNoArg, pe = kNoArg;
            if (lo->typeId() != obj::kTypeNone) {
                start = sp.unwrapInt(lo);
                if (tracing()) {
                    sp.recGuardType(lo);
                    se = sp.recUnboxInt(lo);
                }
            } else if (tracing()) {
                se = recorder->constInt(0);
            }
            if (hi->typeId() != obj::kTypeNone) {
                stop = sp.unwrapInt(hi);
                if (tracing()) {
                    sp.recGuardType(hi);
                    pe = sp.recUnboxInt(hi);
                }
            } else if (tracing()) {
                pe = recorder->constInt(kHugeStop);
            }
            if (tracing()) {
                sp.recGuardType(objv);
                sp.recGuardType(value);
            }
            int64_t n = int64_t(static_cast<W_List *>(objv)->length());
            if (stop > n)
                stop = n;
            sp.listSetSlice(static_cast<W_List *>(objv), start, stop,
                            static_cast<W_List *>(value), se, pe);
            break;
          }

          case Op::Jump:
            h.alu(1);
            fr.pc = uint32_t(ins.arg);
            break;
          case Op::JumpBack:
            h.alu(1);
            fr.pc = uint32_t(ins.arg);
            // can_enter_jit: enter a compiled loop or bump its counter.
            if (ctx.config.jit.enableJit && !tracing()) {
                if (!maybeEnterCompiledTrace(fr))
                    bumpLoopCounter(fr.code, uint32_t(ins.arg));
            }
            break;
          case Op::PopJumpIfFalse: {
            int32_t e;
            W_Object *c = popV(fr, &e);
            sp.hintOperand(c, e);
            if (!sp.isTrueAndGuard(c))
                fr.pc = uint32_t(ins.arg);
            break;
          }
          case Op::PopJumpIfTrue: {
            int32_t e;
            W_Object *c = popV(fr, &e);
            sp.hintOperand(c, e);
            if (sp.isTrueAndGuard(c))
                fr.pc = uint32_t(ins.arg);
            break;
          }
          case Op::JumpIfFalseOrPop: {
            W_Object *c = fr.top();
            if (tracing())
                sp.hintOperand(c, fr.stackEnc.back());
            if (!sp.isTrueAndGuard(c))
                fr.pc = uint32_t(ins.arg);
            else
                popV(fr);
            break;
          }
          case Op::JumpIfTrueOrPop: {
            W_Object *c = fr.top();
            if (tracing())
                sp.hintOperand(c, fr.stackEnc.back());
            if (sp.isTrueAndGuard(c))
                fr.pc = uint32_t(ins.arg);
            else
                popV(fr);
            break;
          }

          case Op::GetIter: {
            int32_t e;
            W_Object *w = popV(fr, &e);
            sp.hintOperand(w, e);
            pushV(fr, sp.iter(w));
            break;
          }
          case Op::ForIter: {
            W_Object *it = fr.top();
            if (tracing())
                sp.hintOperand(it, fr.stackEnc.back());
            W_Object *next = sp.iterNext(it);
            if (next)
                pushV(fr, next);
            else
                fr.pc = uint32_t(ins.arg);
            break;
          }

          case Op::CallFunction: {
            std::vector<W_Object *> args(ins.arg);
            std::vector<int32_t> argEncs(ins.arg, kNoArg);
            for (int i = ins.arg - 1; i >= 0; --i)
                args[i] = popV(fr, &argEncs[i]);
            int32_t calleeEnc;
            W_Object *callee = popV(fr, &calleeEnc);
            callValue(fr, callee, calleeEnc, std::move(args),
                      std::move(argEncs));
            break;
          }
          case Op::ReturnValue: {
            int32_t e;
            W_Object *result = popV(fr, &e);
            bool discard = fr.discardReturn;
            if (tracing()) {
                if (frames.size() - 1 == traceRootDepth) {
                    abortTrace(jit::AbortReason::kRootEscape);
                    e = kNoArg;
                } else if (frames.size() - 1 < traceRootDepth) {
                    XLVM_PANIC("trace root below current frame");
                }
            }
            frames.pop_back();
            if (!frames.empty() && !discard)
                pushV(*frames.back(), result, e);
            break;
          }
          case Op::PopTop:
            h.alu(1);
            popV(fr);
            break;
          case Op::DupTop: {
            h.alu(1);
            int32_t e = tracing() ? fr.stackEnc.back() : kNoArg;
            pushV(fr, fr.top(), e);
            break;
          }
          case Op::DupTopTwo: {
            h.alu(2);
            size_t n = fr.stack.size();
            W_Object *a = fr.stack[n - 2];
            W_Object *b = fr.stack[n - 1];
            int32_t ea = kNoArg, eb = kNoArg;
            if (tracing()) {
                ea = fr.stackEnc[n - 2];
                eb = fr.stackEnc[n - 1];
            }
            pushV(fr, a, ea);
            pushV(fr, b, eb);
            break;
          }
          case Op::RotTwo: {
            h.alu(2);
            size_t n = fr.stack.size();
            std::swap(fr.stack[n - 1], fr.stack[n - 2]);
            if (tracing())
                std::swap(fr.stackEnc[n - 1], fr.stackEnc[n - 2]);
            break;
          }
          case Op::RotThree: {
            h.alu(3);
            size_t n = fr.stack.size();
            W_Object *top = fr.stack[n - 1];
            fr.stack[n - 1] = fr.stack[n - 2];
            fr.stack[n - 2] = fr.stack[n - 3];
            fr.stack[n - 3] = top;
            if (tracing()) {
                int32_t et = fr.stackEnc[n - 1];
                fr.stackEnc[n - 1] = fr.stackEnc[n - 2];
                fr.stackEnc[n - 2] = fr.stackEnc[n - 3];
                fr.stackEnc[n - 3] = et;
            }
            break;
          }

          case Op::BuildList: {
            W_List *lst = sp.newList();
            if (tracing()) {
                int32_t enc = sp.recCall(IrOp::Call,
                                         rt::kAotAllocContainer,
                                         BoxType::Ref, kNoArg, kNoArg,
                                         kNoArg, obj::kSemNewList);
                recorder->mapRef(lst, enc);
            }
            std::vector<W_Object *> items(ins.arg);
            std::vector<int32_t> encs(ins.arg, kNoArg);
            for (int i = ins.arg - 1; i >= 0; --i)
                items[i] = popV(fr, &encs[i]);
            for (int i = 0; i < ins.arg; ++i) {
                sp.hintClear();
                sp.hintOperand(items[i], encs[i]);
                sp.listAppend(lst, items[i]);
            }
            pushV(fr, lst);
            break;
          }
          case Op::BuildTuple: {
            std::vector<W_Object *> items(ins.arg);
            std::vector<int32_t> encs(ins.arg, kNoArg);
            for (int i = ins.arg - 1; i >= 0; --i)
                items[i] = popV(fr, &encs[i]);
            if (tracing() && ins.arg > jit::kMaxOpArgs)
                abortTrace(jit::AbortReason::kUnsupportedOp);
            W_Tuple *t;
            if (tracing()) {
                int32_t a[jit::kMaxOpArgs] = {kNoArg, kNoArg, kNoArg,
                                              kNoArg};
                for (int i = 0; i < ins.arg; ++i)
                    a[i] = encs[i];
                t = sp.newTuple(std::move(items));
                int32_t enc = sp.recCall(
                    IrOp::Call, rt::kAotAllocContainer, BoxType::Ref,
                    a[0], a[1], a[2], obj::kSemNewTuple, a[3]);
                recorder->mapRef(t, enc);
            } else {
                t = sp.newTuple(std::move(items));
            }
            pushV(fr, t);
            break;
          }
          case Op::BuildMap: {
            W_Dict *d = sp.newDict();
            if (tracing()) {
                int32_t enc = sp.recCall(IrOp::Call,
                                         rt::kAotAllocContainer,
                                         BoxType::Ref, kNoArg, kNoArg,
                                         kNoArg, obj::kSemNewDict);
                recorder->mapRef(d, enc);
            }
            std::vector<W_Object *> kv(ins.arg * 2);
            std::vector<int32_t> encs(ins.arg * 2, kNoArg);
            for (int i = ins.arg * 2 - 1; i >= 0; --i)
                kv[i] = popV(fr, &encs[i]);
            for (int i = 0; i < ins.arg; ++i) {
                sp.hintClear();
                sp.hintOperand(kv[i * 2], encs[i * 2]);
                sp.hintOperand(kv[i * 2 + 1], encs[i * 2 + 1]);
                sp.dictSet(d, kv[i * 2], kv[i * 2 + 1]);
            }
            pushV(fr, d);
            break;
          }
          case Op::BuildSet: {
            obj::W_Set *s = sp.newSet();
            if (tracing()) {
                int32_t enc = sp.recCall(IrOp::Call,
                                         rt::kAotAllocContainer,
                                         BoxType::Ref, kNoArg, kNoArg,
                                         kNoArg, obj::kSemNewSet);
                recorder->mapRef(s, enc);
            }
            std::vector<W_Object *> items(ins.arg);
            std::vector<int32_t> encs(ins.arg, kNoArg);
            for (int i = ins.arg - 1; i >= 0; --i)
                items[i] = popV(fr, &encs[i]);
            for (int i = 0; i < ins.arg; ++i) {
                sp.hintClear();
                sp.hintOperand(items[i], encs[i]);
                sp.setAdd(s, items[i]);
            }
            pushV(fr, s);
            break;
          }
          case Op::UnpackSequence: {
            int32_t es;
            W_Object *seq = popV(fr, &es);
            sp.hintOperand(seq, es);
            int n = ins.arg;
            if (seq->typeId() == obj::kTypeTuple) {
                auto *t = static_cast<W_Tuple *>(seq);
                XLVM_ASSERT(int(t->items.size()) == n,
                            "unpack arity mismatch");
                std::vector<int32_t> encs(n, kNoArg);
                if (tracing()) {
                    sp.recGuardType(seq);
                    int32_t sref = sp.recRef(seq);
                    for (int i = 0; i < n; ++i) {
                        encs[i] = recorder->emitTyped(
                            IrOp::GetarrayitemGc, BoxType::Ref, sref,
                            recorder->constInt(i));
                        recorder->mapRef(t->items[i], encs[i]);
                    }
                }
                for (int i = n - 1; i >= 0; --i)
                    pushV(fr, t->items[i], encs[i]);
            } else if (seq->typeId() == obj::kTypeList) {
                auto *lst = static_cast<W_List *>(seq);
                XLVM_ASSERT(int(lst->length()) == n,
                            "unpack arity mismatch");
                std::vector<W_Object *> items;
                for (int i = 0; i < n; ++i) {
                    W_Object *idx = sp.newInt(i);
                    if (tracing()) {
                        sp.hintClear();
                        sp.hintOperand(seq, es);
                        sp.hintOperand(idx, recorder->constRef(idx));
                    }
                    items.push_back(sp.getitem(seq, idx));
                }
                for (int i = n - 1; i >= 0; --i)
                    pushV(fr, items[i]);
            } else {
                XLVM_FATAL("cannot unpack ",
                           obj::typeName(seq->typeId()));
            }
            break;
          }

          case Op::MakeFunction: {
            if (tracing())
                abortTrace(jit::AbortReason::kUnsupportedOp);
            Code *code = prog.codes[ins.arg].get();
            W_Func *fn = ctx.heap.alloc<W_Func>(code, globalsDict,
                                                code->name);
            for (uint32_t i = 0; i < code->numDefaults; ++i)
                fn->defaults.insert(fn->defaults.begin(), popV(fr));
            pushV(fr, fn);
            break;
          }
          case Op::MakeClass: {
            if (tracing())
                abortTrace(jit::AbortReason::kUnsupportedOp);
            const ClassSpec &spec = prog.classes[ins.arg];
            W_Class *cls = ctx.heap.alloc<W_Class>(spec.name);
            if (!spec.baseName.empty()) {
                W_Object *base = sp.getGlobal(
                    globalsDict, sp.intern(spec.baseName));
                XLVM_ASSERT(base &&
                                base->typeId() == obj::kTypeClass,
                            "unknown base class ", spec.baseName);
                cls->base = static_cast<W_Class *>(base);
            }
            cls->instanceMap = ctx.heap.alloc<obj::W_Map>();
            cls->instanceMap->ownerClass = cls;
            ctx.heap.writeBarrier(cls);
            for (const auto &[mname, mcode] : spec.methods) {
                W_Func *m = ctx.heap.alloc<W_Func>(mcode, globalsDict,
                                                   mname);
                W_Str *key = sp.intern(mname);
                cls->methods.set(key, key->hash(), m);
                ctx.heap.writeBarrier(cls);
            }
            pushV(fr, cls);
            break;
          }

          case Op::Nop:
            break;
          default:
            XLVM_PANIC("unhandled opcode ", int(ins.op));
        }
    }
    return true;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::LoadConst: return "LOAD_CONST";
      case Op::LoadFast: return "LOAD_FAST";
      case Op::StoreFast: return "STORE_FAST";
      case Op::LoadGlobal: return "LOAD_GLOBAL";
      case Op::StoreGlobal: return "STORE_GLOBAL";
      case Op::LoadAttr: return "LOAD_ATTR";
      case Op::StoreAttr: return "STORE_ATTR";
      case Op::BinAdd: return "BINARY_ADD";
      case Op::BinSub: return "BINARY_SUB";
      case Op::BinMul: return "BINARY_MUL";
      case Op::BinTrueDiv: return "BINARY_TRUEDIV";
      case Op::BinFloorDiv: return "BINARY_FLOORDIV";
      case Op::BinMod: return "BINARY_MOD";
      case Op::BinPow: return "BINARY_POW";
      case Op::CallFunction: return "CALL_FUNCTION";
      case Op::ReturnValue: return "RETURN_VALUE";
      case Op::ForIter: return "FOR_ITER";
      case Op::JumpBack: return "JUMP_BACK";
      default: return "OP";
    }
}

} // namespace minipy
} // namespace xlvm
