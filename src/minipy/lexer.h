/**
 * @file
 * MiniPy lexer: a Python-style tokenizer with INDENT/DEDENT tracking.
 */

#ifndef XLVM_MINIPY_LEXER_H
#define XLVM_MINIPY_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace xlvm {
namespace minipy {

enum class Tok : uint8_t
{
    End,
    Newline,
    Indent,
    Dedent,
    Name,
    Int,
    Float,
    Str,
    // keywords
    KwDef,
    KwClass,
    KwIf,
    KwElif,
    KwElse,
    KwWhile,
    KwFor,
    KwIn,
    KwNotIn, // synthesized
    KwReturn,
    KwPass,
    KwBreak,
    KwContinue,
    KwAnd,
    KwOr,
    KwNot,
    KwTrue,
    KwFalse,
    KwNone,
    KwGlobal,
    KwIs,
    KwIsNot, // synthesized
    // punctuation / operators
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Dot,
    Assign,
    Plus,
    Minus,
    Star,
    StarStar,
    Slash,
    SlashSlash,
    Percent,
    Amp,
    Pipe,
    Caret,
    LtLt,
    GtGt,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    NotEq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    SlashSlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    LtLtEq,
    GtGtEq,
};

struct Token
{
    Tok kind = Tok::End;
    std::string text;   ///< for Name/Str
    int64_t intValue = 0;
    double floatValue = 0.0;
    int line = 0;
};

/**
 * Tokenize MiniPy source. Throws via XLVM_FATAL on malformed input.
 * Handles comments, line continuation inside brackets, and indentation.
 */
std::vector<Token> tokenize(const std::string &source);

const char *tokName(Tok t);

} // namespace minipy
} // namespace xlvm

#endif // XLVM_MINIPY_LEXER_H
