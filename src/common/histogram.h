/**
 * @file
 * Log-bucketed (HDR-style) histogram for modeled-cycle latencies.
 *
 * Values land in log-linear buckets: 16 linear sub-buckets per
 * power-of-two octave, so relative resolution stays ~6% across the
 * whole 64-bit range while the table stays under 1000 buckets. Small
 * values (< 16) are exact. Recording is branch-light and allocation
 * happens lazily on the first record, so an unused histogram costs one
 * empty vector.
 *
 * Histograms are mergeable (same bucket layout by construction), which
 * is what lets per-run latency distributions aggregate across a sweep
 * without storing raw samples. Everything is deterministic: the same
 * value stream produces the same buckets, counts, and percentile
 * answers on every host.
 */

#ifndef XLVM_COMMON_HISTOGRAM_H
#define XLVM_COMMON_HISTOGRAM_H

#include <cstdint>
#include <vector>

namespace xlvm {
namespace common {

class Histogram
{
  public:
    /** log2 of the linear sub-buckets per octave. */
    static constexpr uint32_t kSubBits = 4;
    static constexpr uint32_t kSubCount = 1u << kSubBits;
    /** Total bucket count covering the full uint64 range. */
    static constexpr uint32_t kNumBuckets =
        (64 - kSubBits) * kSubCount + kSubCount;

    /** Bucket index of @p v. Contiguous: values < kSubCount map to
     *  themselves, then each octave contributes kSubCount buckets. */
    static uint32_t
    bucketIndex(uint64_t v)
    {
        if (v < kSubCount)
            return uint32_t(v);
        const uint32_t exp = 63u - uint32_t(__builtin_clzll(v));
        const uint32_t shift = exp - kSubBits;
        const uint32_t sub = uint32_t(v >> shift) & (kSubCount - 1);
        return (shift + 1) * kSubCount + sub;
    }

    /** Largest value mapping to bucket @p idx (the reported
     *  representative, so percentiles never under-state). */
    static uint64_t
    bucketHigh(uint32_t idx)
    {
        if (idx < kSubCount)
            return idx;
        const uint32_t shift = idx / kSubCount - 1;
        const uint64_t sub = idx % kSubCount;
        return (((sub | kSubCount) + 1) << shift) - 1;
    }

    /** Smallest value mapping to bucket @p idx. */
    static uint64_t
    bucketLow(uint32_t idx)
    {
        if (idx < kSubCount)
            return idx;
        const uint32_t shift = idx / kSubCount - 1;
        const uint64_t sub = idx % kSubCount;
        return (sub | kSubCount) << shift;
    }

    void
    record(uint64_t v)
    {
        recordN(v, 1);
    }

    void
    recordN(uint64_t v, uint64_t n)
    {
        if (n == 0)
            return;
        if (counts_.empty())
            counts_.assign(kNumBuckets, 0);
        counts_[bucketIndex(v)] += n;
        count_ += n;
        sum_ += v * n;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    /** Add every count of @p other into this histogram. */
    void merge(const Histogram &other);

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return max_; }
    double mean() const;

    /**
     * Value at percentile @p p (0..100]: the upper bound of the bucket
     * holding the rank-⌈p/100·count⌉ sample, clamped into [min, max]
     * so exact extremes are never over-stated. 0 when empty.
     */
    uint64_t percentile(double p) const;

    /** One populated bucket, for structured export. */
    struct Bucket
    {
        uint64_t lo = 0;
        uint64_t hi = 0;
        uint64_t count = 0;
    };

    /** The populated buckets in ascending value order. */
    std::vector<Bucket> nonzeroBuckets() const;

    void clear();

  private:
    std::vector<uint64_t> counts_; ///< empty until the first record
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = UINT64_MAX;
    uint64_t max_ = 0;
};

} // namespace common
} // namespace xlvm

#endif // XLVM_COMMON_HISTOGRAM_H
