#include "common/stats.h"

#include <cstdio>

namespace xlvm {

std::string
formatFixed(double x, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, x);
    return buf;
}

std::string
formatCount(uint64_t n)
{
    std::string digits = std::to_string(n);
    std::string out;
    int cnt = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (cnt && cnt % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++cnt;
    }
    return {out.rbegin(), out.rend()};
}

} // namespace xlvm
