/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the workloads and simulators flows through
 * SplitMix64 so that runs are bit-reproducible across platforms; we never
 * use std::rand or hardware entropy.
 */

#ifndef XLVM_COMMON_RNG_H
#define XLVM_COMMON_RNG_H

#include <cstdint>

namespace xlvm {

/** SplitMix64: tiny, fast, high-quality 64-bit generator. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    uint64_t
    nextBelow(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    void reseed(uint64_t seed) { state = seed; }

  private:
    uint64_t state;
};

} // namespace xlvm

#endif // XLVM_COMMON_RNG_H
