/**
 * @file
 * Lightweight statistics helpers shared across the simulator layers.
 */

#ifndef XLVM_COMMON_STATS_H
#define XLVM_COMMON_STATS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace xlvm {

/**
 * Running scalar statistic: count/sum/min/max/mean/stddev. Variance uses
 * Welford's online algorithm: the naive sumSq/n - mean^2 form cancels
 * catastrophically for large-mean/small-variance inputs (it can go
 * negative and silently clamp to zero).
 */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++n;
        sum += x;
        double delta = x - runMean;
        runMean += delta / double(n);
        m2 += delta * (x - runMean);
        minV = std::min(minV, x);
        maxV = std::max(maxV, x);
    }

    uint64_t count() const { return n; }
    double total() const { return sum; }
    double mean() const { return n ? runMean : 0.0; }

    double
    stddev() const
    {
        if (n < 2)
            return 0.0;
        double var = m2 / double(n);
        return var > 0 ? std::sqrt(var) : 0.0;
    }

    double minimum() const { return n ? minV : 0.0; }
    double maximum() const { return n ? maxV : 0.0; }

    void
    reset()
    {
        n = 0;
        sum = runMean = m2 = 0.0;
        minV = 1e300;
        maxV = -1e300;
    }

  private:
    uint64_t n = 0;
    double sum = 0.0;
    double runMean = 0.0;
    double m2 = 0.0; ///< sum of squared deviations from the running mean
    double minV = 1e300;
    double maxV = -1e300;
};

/** Geometric mean over a vector of strictly positive values. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / xs.size());
}

/** Format a double with the given number of significant-ish decimals. */
std::string formatFixed(double x, int decimals);

/** Human-friendly big-number formatting: 12,345,678. */
std::string formatCount(uint64_t n);

} // namespace xlvm

#endif // XLVM_COMMON_STATS_H
