/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in xlvm itself).
 * fatal()  — the user supplied an impossible configuration or program.
 * warn()   — something is suspicious but execution can continue.
 */

#ifndef XLVM_COMMON_LOGGING_H
#define XLVM_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace xlvm {

namespace detail {

[[noreturn]] inline void
panicExit(const char *kind, const char *file, int line,
          const std::string &msg)
{
    std::fprintf(stderr, "xlvm: %s: %s:%d: %s\n", kind, file, line,
                 msg.c_str());
    std::abort();
}

/** Build a message from a variadic pack via ostringstream. */
template <typename... Args>
std::string
formatMsg(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

} // namespace xlvm

#define XLVM_PANIC(...)                                                     \
    ::xlvm::detail::panicExit("panic", __FILE__, __LINE__,                  \
                              ::xlvm::detail::formatMsg(__VA_ARGS__))

#define XLVM_FATAL(...)                                                     \
    ::xlvm::detail::panicExit("fatal", __FILE__, __LINE__,                  \
                              ::xlvm::detail::formatMsg(__VA_ARGS__))

#define XLVM_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            XLVM_PANIC("assertion failed: " #cond " ",                      \
                       ::xlvm::detail::formatMsg(__VA_ARGS__));             \
        }                                                                   \
    } while (0)

#define XLVM_WARN(...)                                                      \
    std::fprintf(stderr, "xlvm: warn: %s\n",                                \
                 ::xlvm::detail::formatMsg(__VA_ARGS__).c_str())

#endif // XLVM_COMMON_LOGGING_H
