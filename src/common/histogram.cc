#include "common/histogram.h"

#include <algorithm>

namespace xlvm {
namespace common {

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    if (counts_.empty())
        counts_.assign(kNumBuckets, 0);
    for (uint32_t i = 0; i < kNumBuckets; ++i)
        counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
Histogram::mean() const
{
    return count_ ? double(sum_) / double(count_) : 0.0;
}

uint64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    p = std::clamp(p, 0.0, 100.0);
    // Rank of the requested sample, 1-based; p=0 answers the minimum.
    uint64_t rank = uint64_t(p / 100.0 * double(count_) + 0.5);
    if (rank < 1)
        rank = 1;
    if (rank > count_)
        rank = count_;
    uint64_t seen = 0;
    for (uint32_t i = 0; i < kNumBuckets; ++i) {
        seen += counts_[i];
        if (seen >= rank)
            return std::clamp(bucketHigh(i), min_, max_);
    }
    return max_;
}

std::vector<Histogram::Bucket>
Histogram::nonzeroBuckets() const
{
    std::vector<Bucket> out;
    for (uint32_t i = 0; i < kNumBuckets && count_; ++i) {
        if (counts_[i] == 0)
            continue;
        out.push_back({bucketLow(i), bucketHigh(i), counts_[i]});
    }
    return out;
}

void
Histogram::clear()
{
    counts_.clear();
    count_ = 0;
    sum_ = 0;
    min_ = UINT64_MAX;
    max_ = 0;
}

} // namespace common
} // namespace xlvm
