/**
 * @file
 * Thread-pool harness for running independent benchmark configurations
 * concurrently. Each run gets its own VmContext, so the simulated
 * counters are bit-identical regardless of job count or interleaving.
 */

#ifndef XLVM_DRIVER_PARALLEL_H
#define XLVM_DRIVER_PARALLEL_H

#include <vector>

#include "driver/runner.h"

namespace xlvm {
namespace driver {

/**
 * Number of worker threads to use by default: the XLVM_JOBS environment
 * variable if set to a positive integer, else hardware_concurrency()
 * (min 1).
 */
unsigned defaultJobs();

/**
 * Parse a --jobs N / --jobs=N / -j N override from argv; returns
 * defaultJobs() when absent or malformed.
 */
unsigned jobsFromArgs(int argc, char **argv);

/**
 * Run every configuration in `runs` and return results in the same
 * order. Racket-family VM kinds are dispatched to runRktWorkload, the
 * rest to runWorkload. A run that throws is reported as a RunResult
 * with completed=false and `error` set to the exception text; sibling
 * runs are unaffected. jobs==0 means defaultJobs(); jobs is clamped to
 * runs.size(), and jobs<=1 executes inline on the calling thread.
 */
std::vector<RunResult> runWorkloadsParallel(const std::vector<RunOptions> &runs,
                                            unsigned jobs = 0);

} // namespace driver
} // namespace xlvm

#endif // XLVM_DRIVER_PARALLEL_H
