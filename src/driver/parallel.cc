#include "driver/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>

#include "rt/aot_registry.h"
#include "workloads/workloads.h"

namespace xlvm {
namespace driver {

namespace {

RunResult
runOne(const RunOptions &opts)
{
    RunResult res;
    try {
        if (opts.vm == VmKind::RacketLike || opts.vm == VmKind::PycketJit)
            res = runRktWorkload(opts);
        else
            res = runWorkload(opts);
    } catch (const std::exception &e) {
        res = RunResult();
        res.error = e.what();
    } catch (...) {
        res = RunResult();
        res.error = "unknown error";
    }
    return res;
}

/**
 * Touch every function-local static the runs will share. Magic-static
 * initialization is thread-safe, but warming them here keeps the first
 * batch of workers from serializing on the init locks.
 */
void
warmShared()
{
    rt::AotRegistry::instance();
    workloads::pypySuite();
    workloads::clbgSuite();
}

} // namespace

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("XLVM_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

unsigned
jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string val;
        if (arg == "--jobs" || arg == "-j") {
            if (i + 1 < argc)
                val = argv[i + 1];
        } else if (arg.rfind("--jobs=", 0) == 0) {
            val = arg.substr(7);
        } else {
            continue;
        }
        char *end = nullptr;
        long v = std::strtol(val.c_str(), &end, 10);
        if (!val.empty() && end != val.c_str() && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        return defaultJobs();
    }
    return defaultJobs();
}

std::vector<RunResult>
runWorkloadsParallel(const std::vector<RunOptions> &runs, unsigned jobs)
{
    std::vector<RunResult> results(runs.size());
    if (runs.empty())
        return results;

    if (jobs == 0)
        jobs = defaultJobs();
    if (jobs > runs.size())
        jobs = static_cast<unsigned>(runs.size());

    if (jobs <= 1) {
        for (size_t i = 0; i < runs.size(); ++i)
            results[i] = runOne(runs[i]);
        return results;
    }

    warmShared();

    std::atomic<size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= runs.size())
                return;
            results[i] = runOne(runs[i]);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    return results;
}

} // namespace driver
} // namespace xlvm
