#include "driver/runner.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/logging.h"
#include "minipy/compiler.h"
#include "sim/block_memo.h"
#include "minipy/interp.h"
#include "minirkt/compiler.h"
#include "vm/context.h"
#include "workloads/workloads.h"

namespace xlvm {
namespace driver {

const char *
vmKindName(VmKind k)
{
    switch (k) {
      case VmKind::CPythonLike:
        return "CPython*";
      case VmKind::PyPyNoJit:
        return "PyPy*-nojit";
      case VmKind::PyPyJit:
        return "PyPy*";
      case VmKind::RacketLike:
        return "Racket*";
      case VmKind::PycketJit:
        return "Pycket*";
    }
    return "?";
}

namespace {

/** XLVM_TIER_MODE env hatch: overrides RunOptions::tierMode when set
 *  (same precedence as the other escape hatches; unknown values warn
 *  once and are ignored so a typo cannot silently change the mode). */
vm::TierMode
tierModeWithEnv(vm::TierMode from_opts)
{
    const char *e = std::getenv("XLVM_TIER_MODE");
    if (!e || !*e)
        return from_opts;
    vm::TierMode m;
    if (vm::tierModeFromString(e, &m))
        return m;
    static bool warned = false;
    if (!warned) {
        warned = true;
        std::fprintf(stderr,
                     "xlvm: XLVM_TIER_MODE='%s' unknown (want "
                     "off|tier1|tier2|multi), ignored\n",
                     e);
    }
    return from_opts;
}

/** XLVM_INJECT env hatch: overrides RunOptions::inject when set (the
 *  same precedence as the other hatches; "none"/"off" disarm, useful
 *  to neutralize a spec baked into a sweep script). */
std::string
injectWithEnv(const std::string &from_opts)
{
    const char *e = std::getenv("XLVM_INJECT");
    if (!e)
        return from_opts;
    std::string s(e);
    if (s == "none" || s == "off")
        return std::string();
    return s;
}

vm::VmConfig
configFor(const RunOptions &opts)
{
    vm::VmConfig cfg;
    switch (opts.vm) {
      case VmKind::CPythonLike:
        cfg.flavor = obj::VmFlavor::RefInterp;
        cfg.jit.enableJit = false;
        break;
      case VmKind::PyPyNoJit:
        cfg.flavor = obj::VmFlavor::RPython;
        cfg.jit.enableJit = false;
        break;
      case VmKind::RacketLike:
        // Custom method-JIT VM analog: compiled-code-quality dispatch,
        // no meta-tracing.
        cfg.flavor = obj::VmFlavor::RefInterp;
        cfg.jit.enableJit = false;
        break;
      case VmKind::PyPyJit:
      case VmKind::PycketJit:
        cfg.flavor = obj::VmFlavor::RPython;
        cfg.jit.enableJit = true;
        break;
    }
    cfg.jit.loopThreshold = opts.loopThreshold;
    cfg.jit.bridgeThreshold = opts.bridgeThreshold;
    cfg.jit.irNodeAnnotations = opts.irAnnotations;
    cfg.jit.fuseMicroOps = opts.jitFuseMicroOps;
    cfg.jit.optVirtualize = opts.optVirtualize;
    cfg.jit.optHeapCache = opts.optHeapCache;
    cfg.jit.optElideGuards = opts.optElideGuards;
    cfg.jit.optFoldConstants = opts.optFoldConstants;
    cfg.jit.tierMode = tierModeWithEnv(opts.tierMode);
    cfg.jit.tier1Threshold = opts.tier1Threshold;
    cfg.jit.tier2Threshold = opts.tier2Threshold;
    if (cfg.jit.tierMode == vm::TierMode::Off)
        cfg.jit.enableJit = false;
    cfg.jit.stormThreshold = opts.stormThreshold;
    cfg.jit.blacklistCooldown = opts.blacklistCooldown;
    cfg.jit.compileBudgetOps = opts.compileBudgetOps;
    cfg.jit.maxTraces = opts.maxTraces;
    cfg.inject = injectWithEnv(opts.inject);
    {
        // Validate here so a malformed spec is a clean per-run error
        // (RunResult::error via the invalid_argument path) instead of
        // the VmContext constructor's XLVM_FATAL.
        rt::FaultEngine probe;
        std::string err;
        if (!probe.configure(cfg.inject, &err))
            throw std::invalid_argument("bad --inject spec: " + err);
    }
    cfg.core.simMemo = opts.simMemo;
    cfg.core.simSuperblock = opts.simSuperblock;
    cfg.maxInstructions = opts.maxInstructions;
    cfg.phaseTimelineBin = opts.timelineBin;
    cfg.workSampleInstrs = opts.workSampleInstrs;
    cfg.tracer.capacityEvents = opts.traceBufferEvents;
    cfg.tracer.tagMask = opts.traceTagMask;
    cfg.tracer.runId = uint8_t(opts.traceRunId);
    cfg.sampler.intervalCycles = opts.profileIntervalCycles;
    return cfg;
}

void
collect(vm::VmContext &ctx, RunResult &out)
{
    ctx.work.finalize();

    sim::PerfCounters total = ctx.core.totalCounters();
    out.cycles = total.cycles();
    out.seconds = ctx.core.seconds();
    out.instructions = total.instructions;
    out.ipc = total.ipc();
    out.branchMpki = total.mpki();
    out.branchRate = total.branchRate();
    out.branchMissRate = total.branchMissRate();

    out.phaseShares = ctx.phases.phaseCycleShares();
    for (uint32_t p = 0; p < xlayer::kNumPhases; ++p) {
        out.phaseCounters[p] =
            ctx.phases.phaseCounters(xlayer::Phase(p));
    }
    out.timeline = ctx.phases.timeline();

    out.work = ctx.work.totalWork();
    out.warmupCurve = ctx.work.samples();

    out.trace = ctx.tracer.take();
    out.phaseUnderflows = ctx.phases.phaseUnderflows();

    out.loopsCompiled = ctx.events.loopsCompiled;
    out.bridgesCompiled = ctx.events.bridgesCompiled;
    out.tracesAborted = ctx.events.tracesAborted;
    out.traceEnters = ctx.events.traceEnters;
    out.deopts = ctx.events.deopts;
    out.gcMinor = ctx.events.gcMinor;
    out.gcMajor = ctx.events.gcMajor;

    out.icacheHits = ctx.core.icacheUnit().hits();
    out.icacheMisses = ctx.core.icacheUnit().misses();
    out.dcacheHits = ctx.core.dcacheUnit().hits();
    out.dcacheMisses = ctx.core.dcacheUnit().misses();

    sim::MemoStats ms = ctx.core.memoStats();
    out.memoBlocksCached = ms.blocksCached;
    out.memoHits = ms.hits;
    out.memoMisses = ms.misses;
    out.memoInvalidations = ms.invalidations;
    out.memoReplayedInstructions = ms.replayedInstructions;
    out.memoReplayedCyclesFp = ms.replayedCyclesFp;
    out.memoHitRate = ms.hitRate();

    sim::SuperblockStats sb = ctx.core.superblockStats();
    out.sbSegmentsCached = sb.segmentsCached;
    out.sbHits = sb.hits;
    out.sbMisses = sb.misses;
    out.sbInvalidations = sb.invalidations;
    out.sbDivergences = sb.divergences;
    out.sbIterations = sb.iterations;
    out.sbReplayedInstructions = sb.replayedInstructions;
    out.sbReplayedCyclesFp = sb.replayedCyclesFp;
    out.sbHitRate = sb.hitRate();

    const gc::Heap::HeapStats &hs = ctx.heap.stats();
    out.gcAllocations = hs.allocations;
    out.gcPromotedBytes = hs.totalPromotedBytes;
    out.gcFreedObjects = hs.totalFreed;
    out.gcLiveYoungBytes = ctx.heap.youngByteCount();
    out.gcLiveOldBytes = ctx.heap.oldByteCount();
    out.gcLiveYoungObjects = ctx.heap.youngObjectCount();
    out.gcLiveOldObjects = ctx.heap.oldObjectCount();
    out.spaceOps = ctx.space.opCount();

    const jit::TierStats &ts = ctx.backend.tierStats();
    out.tier1Compiles = ts.tier1Compiles;
    out.tier2Compiles = ts.tier2Compiles;
    out.tierPromotions = ts.promotions;
    out.tierUps = ctx.events.tierUps;
    out.tier1CodeBytes = ts.tier1CodeBytes;
    out.tier2CodeBytes = ts.tier2CodeBytes;
    out.tier1RetiredBytes = ts.tier1RetiredBytes;
    out.tier1CompileInsts = ts.tier1CompileInsts;
    out.tier2CompileInsts = ts.tier2CompileInsts;
    out.tier1CyclesFp = ctx.executor.tierCyclesFp(1);
    out.tier2CyclesFp = ctx.executor.tierCyclesFp(2);

    out.irNodesCompiled = ctx.backend.totalIrNodesCompiled();
    out.irNodeMeta = ctx.backend.nodeMeta();
    out.irExecCounts = ctx.irProfiler.execCounts();
    out.irExecCounts.resize(out.irNodeMeta.size(), 0);

    out.aotFunctions = ctx.aotProfiler.significantFunctions(0.0);

    out.iterationLatency = ctx.executor.iterationLatency();
    out.executionLength = ctx.executor.executionLength();

    if (ctx.sampler.enabled())
        out.profile = ctx.sampler.take();

    for (uint32_t r = 0; r < jit::kNumAbortReasons; ++r)
        out.abortReasons[r] = ctx.events.abortReasons[r];
    out.tracesBlacklisted = ctx.events.tracesBlacklisted;
    out.tracesRearmed = ctx.events.tracesRearmed;
    out.tracesEvicted = ctx.events.tracesEvicted;
    out.compileDowngrades = ctx.events.compileDowngrades;
    out.liveTraces = ctx.registry.liveCount();
    out.faultsArmed = ctx.faults.armed();
    for (uint32_t s = 0; s < rt::kNumFaultSites; ++s) {
        out.faultVisits[s] = ctx.faults.visits(rt::FaultSite(s));
        out.faultFired[s] = ctx.faults.fired(rt::FaultSite(s));
    }

    // Deopt attribution: join each program's lowering-time guard
    // provenance with the trace's runtime fail counters, symbolized
    // here so report-layer consumers carry no jit dependencies. After
    // a tier promotion guardStates are re-sized (counters reset) — the
    // table reflects the current program, like a real deopt log would.
    // Evicted registry slots hold nullptr and are skipped.
    for (const auto &t : ctx.registry.all()) {
        if (!t)
            continue;
        const jit::MicroProgram &prog = ctx.backend.program(t->id);
        for (const jit::GuardProvenance &g : prog.guards) {
            if (g.guardIdx >= t->guardStates.size())
                continue;
            const jit::GuardState &gs = t->guardStates[g.guardIdx];
            if (gs.failCount == 0)
                continue;
            DeoptSite site;
            site.traceId = t->id;
            site.traceIsBridge = t->isBridge;
            site.tier = t->tier;
            site.guardIdx = g.guardIdx;
            site.guardOp = jit::irOpName(g.op);
            site.mop = jit::mopName(jit::MOp(g.mop));
            site.fused = g.fused;
            site.originPc = g.originPc;
            site.failCount = gs.failCount;
            site.bridgeTraceId = gs.bridgeTraceId;
            out.deoptSites.push_back(std::move(site));
        }
        TraceSymbol sym;
        sym.traceId = t->id;
        sym.isBridge = t->isBridge;
        sym.tier = t->tier;
        sym.codePc = t->codePc;
        sym.codeInsts = t->codeInsts;
        sym.anchorPc = t->anchorPc;
        out.traceSymbols.push_back(sym);
    }
}

} // namespace

RunResult
runRktWorkload(const RunOptions &opts)
{
    const workloads::Workload *w = nullptr;
    for (const workloads::Workload &c : workloads::clbgSuite()) {
        if (c.name == opts.workload)
            w = &c;
    }
    if (!w || w->rktSource.empty()) {
        throw std::invalid_argument("no MiniRkt translation for " +
                                    opts.workload);
    }

    RunResult out;
    vm::VmConfig cfg = configFor(opts);
    vm::VmContext ctx(cfg);
    workloads::Workload tmp = *w;
    tmp.source = tmp.rktSource;
    std::string src = workloads::instantiate(tmp, opts.scale);
    auto prog = minirkt::compileRkt(src, ctx.space);
    minipy::Interp interp(ctx, *prog);
    out.completed = interp.run();
    out.output = interp.output();
    collect(ctx, out);
    return out;
}

RunResult
runWorkload(const RunOptions &opts)
{
    const workloads::Workload *w = workloads::findWorkload(opts.workload);
    if (!w)
        throw std::invalid_argument("unknown workload " + opts.workload);
    if (opts.vm == VmKind::RacketLike || opts.vm == VmKind::PycketJit) {
        throw std::invalid_argument(
            "use runRktWorkload for the Racket-family VMs");
    }

    RunResult out;
    vm::VmConfig cfg = configFor(opts);
    vm::VmContext ctx(cfg);

    std::string src = workloads::instantiate(*w, opts.scale);
    auto prog = minipy::compileSource(src, ctx.space);
    minipy::Interp interp(ctx, *prog);
    out.completed = interp.run();
    out.output = interp.output();
    collect(ctx, out);
    return out;
}

} // namespace driver
} // namespace xlvm
