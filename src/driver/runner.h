/**
 * @file
 * Benchmark runner: executes one workload on one modeled VM and collects
 * every metric the paper's tables and figures report.
 */

#ifndef XLVM_DRIVER_RUNNER_H
#define XLVM_DRIVER_RUNNER_H

#include <array>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "jit/backend.h"
#include "jit/bailout.h"
#include "rt/faults.h"
#include "vm/registry.h"
#include "xlayer/aot_profiler.h"
#include "xlayer/phase_profiler.h"
#include "xlayer/sampler.h"
#include "xlayer/tracer.h"
#include "xlayer/work_profiler.h"

namespace xlvm {
namespace driver {

/** The VM configurations of Section III. */
enum class VmKind
{
    CPythonLike, ///< hand-written C interpreter analog (refcount costs)
    PyPyNoJit,   ///< translated RPython interpreter, JIT disabled
    PyPyJit,     ///< translated RPython interpreter + meta-tracing JIT
    RacketLike,  ///< custom method-JIT VM analog (MiniRkt)
    PycketJit,   ///< MiniRkt on the meta-tracing framework
};

const char *vmKindName(VmKind k);

struct RunOptions
{
    VmKind vm = VmKind::PyPyJit;
    std::string workload;
    int64_t scale = 0;          ///< 0 = workload default
    uint64_t maxInstructions = 0;
    bool irAnnotations = false; ///< per-IR-node profiling (Figs 6, 8)
    uint64_t timelineBin = 0;   ///< phase timeline bin (Fig 3)
    uint64_t workSampleInstrs = 50000;
    uint32_t loopThreshold = 1039;
    uint32_t bridgeThreshold = 200;
    /** Superinstruction fusion in the trace execution engine (host
     *  dispatch only; modeled counters are invariant). */
    bool jitFuseMicroOps = true;
    /** Basic-block cost memoization in the simulated core (host-side
     *  replay only; modeled counters are invariant — CI gates the
     *  goldens with it both on and off). XLVM_NO_SIM_MEMO overrides. */
    bool simMemo = true;
    /** Trace-level superblock replay + batched sweep on top of the
     *  block memo (host-side only; modeled counters are invariant — CI
     *  gates the goldens with it on and off). Requires simMemo; the
     *  XLVM_NO_SIM_SUPERBLOCK env hatch overrides it to off. */
    bool simSuperblock = true;
    /** Optimizer ablation toggles. */
    bool optVirtualize = true;
    bool optHeapCache = true;
    bool optElideGuards = true;
    bool optFoldConstants = true;
    /**
     * Compilation-tier policy (vm::TierMode). Tier2 is the pre-tiering
     * default; Tier1/Multi compile raw traces at tier1Threshold without
     * the optimizer, Multi promotes at tier2Threshold executions. The
     * XLVM_TIER_MODE env hatch overrides (off|tier1|tier2|multi).
     */
    vm::TierMode tierMode = vm::TierMode::Tier2;
    uint32_t tier1Threshold = 130;
    uint32_t tier2Threshold = 100;
    /**
     * Streaming event-tracer ring capacity in events (0 = tracing off).
     * When full the ring wraps: the newest events survive, overwritten
     * ones are counted in RunResult::trace.droppedEvents.
     */
    uint64_t traceBufferEvents = 0;
    /** Which AnnotTags the tracer records (bit per tag). */
    uint32_t traceTagMask = xlayer::kDefaultTraceTagMask;
    /** Run identity stamped into every trace record (sweep index). */
    uint32_t traceRunId = 0;
    /**
     * Cycle-driven sampling profiler interval in modeled cycles (0 =
     * off). Sampling is pure host-side observation: every modeled
     * counter is bit-identical with it on or off, and for a fixed
     * configuration the profile itself is deterministic — independent
     * of --jobs, process count, or repetition.
     */
    uint64_t profileIntervalCycles = 0;
    /**
     * Fault-injection spec (rt::FaultEngine grammar: "site:nth" entries,
     * comma-separated); empty = disarmed, zero-cost. The XLVM_INJECT
     * env hatch overrides. Trigger counters are visit-based, so an
     * injected failure is deterministic and --jobs-invariant.
     */
    std::string inject;
    /** Fault-containment policies (vm::JitParams analogs). */
    uint32_t stormThreshold = 600;
    uint32_t blacklistCooldown = 4000;
    uint32_t compileBudgetOps = 0; ///< 0 = unlimited
    uint32_t maxTraces = 0;        ///< 0 = unlimited
};

/**
 * One guard site's deopt attribution: lowering-time provenance
 * (jit::GuardProvenance) joined with the trace's runtime fail counter
 * and bridge attachment, symbolized so report-layer consumers need no
 * jit includes. Only sites that failed at least once are collected.
 */
struct DeoptSite
{
    uint32_t traceId = 0;
    bool traceIsBridge = false;
    uint8_t tier = 2;          ///< tier of the owning trace at collection
    uint32_t guardIdx = 0;     ///< Trace::ops index of the guard
    std::string guardOp;       ///< IR opcode name (e.g. "guard_true")
    std::string mop;           ///< executing micro-op (fused pair name)
    bool fused = false;        ///< dispatched as a superinstruction
    uint32_t originPc = 0;     ///< bytecode pc of the producing site
    uint64_t failCount = 0;
    int32_t bridgeTraceId = -1; ///< attached bridge, or -1
};

/** Code-object symbol for one compiled trace (profile symbolization). */
struct TraceSymbol
{
    uint32_t traceId = 0;
    bool isBridge = false;
    uint8_t tier = 2;
    uint64_t codePc = 0;    ///< base address in the JIT code arena
    uint32_t codeInsts = 0; ///< modeled code footprint (instructions)
    uint32_t anchorPc = 0;  ///< anchor bytecode pc (loop merge point)
};

struct RunResult
{
    bool completed = false;
    std::string output;
    /** Non-empty if the run failed (exception text); see runWorkloadsParallel. */
    std::string error;

    // Overall machine-level metrics (Table I / II).
    double seconds = 0.0;
    double cycles = 0.0;
    uint64_t instructions = 0;
    double ipc = 0.0;
    double branchMpki = 0.0;
    double branchRate = 0.0;
    double branchMissRate = 0.0;

    // Phase breakdown (Figure 2 / 4) and per-phase counters (Table IV).
    std::array<double, xlayer::kNumPhases> phaseShares{};
    std::array<sim::PerfCounters, xlayer::kNumPhases> phaseCounters{};
    std::vector<xlayer::PhaseTimelineBin> timeline;

    // Interpreter-level (Figure 5).
    uint64_t work = 0; ///< dispatch quanta completed
    std::vector<xlayer::WorkSample> warmupCurve;

    // Streaming event tracer (empty unless traceBufferEvents > 0).
    xlayer::TraceLog trace;
    /** Malformed kPhaseExit events rejected by the phase profiler. */
    uint64_t phaseUnderflows = 0;

    // Framework events.
    uint64_t loopsCompiled = 0;
    uint64_t bridgesCompiled = 0;
    uint64_t tracesAborted = 0;
    uint64_t traceEnters = 0;
    uint64_t deopts = 0;
    uint64_t gcMinor = 0;
    uint64_t gcMajor = 0;

    // Machine-level structure counters (caches; metrics reports).
    uint64_t icacheHits = 0;
    uint64_t icacheMisses = 0;
    uint64_t dcacheHits = 0;
    uint64_t dcacheMisses = 0;

    // Sim-layer block memoization (host-side; schema v3 sim_memo).
    uint64_t memoBlocksCached = 0;
    uint64_t memoHits = 0;
    uint64_t memoMisses = 0;
    uint64_t memoInvalidations = 0;
    uint64_t memoReplayedInstructions = 0;
    uint64_t memoReplayedCyclesFp = 0;
    double memoHitRate = 0.0;

    // Sim-layer superblock replay (host-side; schema v5 sim_superblock).
    uint64_t sbSegmentsCached = 0;
    uint64_t sbHits = 0;
    uint64_t sbMisses = 0;
    uint64_t sbInvalidations = 0;
    uint64_t sbDivergences = 0;
    uint64_t sbIterations = 0;
    uint64_t sbReplayedInstructions = 0;
    uint64_t sbReplayedCyclesFp = 0;
    double sbHitRate = 0.0;

    // GC heap / object-space level (metrics reports).
    uint64_t gcAllocations = 0;
    uint64_t gcPromotedBytes = 0;
    uint64_t gcFreedObjects = 0;
    uint64_t gcLiveYoungBytes = 0;
    uint64_t gcLiveOldBytes = 0;
    uint64_t gcLiveYoungObjects = 0;
    uint64_t gcLiveOldObjects = 0;
    uint64_t spaceOps = 0; ///< object-space operations emitted

    // Multi-tier JIT (schema v4 jit_tiers section).
    uint64_t tier1Compiles = 0;
    uint64_t tier2Compiles = 0;
    uint64_t tierPromotions = 0;
    uint64_t tierUps = 0; ///< annotation-stream cross-check
    uint64_t tier1CodeBytes = 0;
    uint64_t tier2CodeBytes = 0;
    uint64_t tier1RetiredBytes = 0;
    uint64_t tier1CompileInsts = 0;
    uint64_t tier2CompileInsts = 0;
    uint64_t tier1CyclesFp = 0;
    uint64_t tier2CyclesFp = 0;

    // Fault containment (schema v7 jit_robustness section). The abort
    // counters are modeled (annotation-stream derived, golden-gated);
    // the fault_* telemetry is host-side trigger bookkeeping and is
    // excluded from golden comparison (--ignore-section jit_robustness
    // in the armed golden pass).
    std::array<uint64_t, jit::kNumAbortReasons> abortReasons{};
    uint64_t tracesBlacklisted = 0;
    uint64_t tracesRearmed = 0;
    uint64_t tracesEvicted = 0;
    uint64_t compileDowngrades = 0;
    uint64_t liveTraces = 0; ///< registry slots still holding a trace
    bool faultsArmed = false;
    std::array<uint64_t, rt::kNumFaultSites> faultVisits{};
    std::array<uint64_t, rt::kNumFaultSites> faultFired{};

    // JIT-IR level (Figures 6-9).
    uint32_t irNodesCompiled = 0;
    std::vector<jit::IrNodeMeta> irNodeMeta;
    std::vector<uint64_t> irExecCounts;

    // AOT-call attribution (Table III).
    std::vector<xlayer::AotFunctionStats> aotFunctions;

    // Latency distributions (schema v6 latency section; always on —
    // host-side histograms of modeled cycles, invariant under every
    // replay/fusion/sampling toggle, so they are golden-gated).
    common::Histogram iterationLatency; ///< back-edge to back-edge
    common::Histogram executionLength;  ///< trace entry to exit

    // Sampling profiler (empty unless profileIntervalCycles > 0).
    xlayer::SampleProfile profile;
    /** Guard sites with at least one failure (deopt attribution). */
    std::vector<DeoptSite> deoptSites;
    /** Per-trace code symbols for profile symbolization. */
    std::vector<TraceSymbol> traceSymbols;
};

/**
 * Run one workload on one VM configuration.
 * @throws std::invalid_argument for an unknown workload name or a VM
 *         kind this entry point cannot model (internal invariant
 *         violations still abort via XLVM_ASSERT).
 */
RunResult runWorkload(const RunOptions &opts);

/**
 * Run a CLBG workload's MiniRkt translation. VmKind::RacketLike models
 * the custom method-JIT VM with compiled-code-quality costs (RefInterp
 * flavor); VmKind::PycketJit runs MiniRkt on the meta-tracing framework.
 */
RunResult runRktWorkload(const RunOptions &opts);

} // namespace driver
} // namespace xlvm

#endif // XLVM_DRIVER_RUNNER_H
