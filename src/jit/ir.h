/**
 * @file
 * Trace intermediate representation.
 *
 * The IR vocabulary deliberately mirrors RPython's ResOperation set so
 * the JIT-IR-level characterization (Figures 6–9) speaks the paper's
 * language: getfield_gc / setfield_gc memory ops, guard_* operations,
 * call / call_may_force / call_assembler, new_with_vtable, int_*_ovf, and
 * debug_merge_point carrying the interpreter's dispatch annotation.
 *
 * A trace is a linear SSA sequence: boxes are trace-local value indices,
 * constants live in a per-trace table, and operand references encode
 * "box i" as i >= 0 and "const k" as -(k+1).
 */

#ifndef XLVM_JIT_IR_H
#define XLVM_JIT_IR_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace xlvm {
namespace jit {

/** Runtime value: unboxed int/float or an object reference. */
struct RtVal
{
    enum class Kind : uint8_t { Int, Float, Ref };

    Kind kind = Kind::Int;
    union
    {
        int64_t i;
        double f;
        void *r;
    };

    RtVal() : i(0) {}

    static RtVal
    fromInt(int64_t v)
    {
        RtVal x;
        x.kind = Kind::Int;
        x.i = v;
        return x;
    }

    static RtVal
    fromFloat(double v)
    {
        RtVal x;
        x.kind = Kind::Float;
        x.f = v;
        return x;
    }

    static RtVal
    fromRef(void *p)
    {
        RtVal x;
        x.kind = Kind::Ref;
        x.r = p;
        return x;
    }

    bool
    bitsEqual(const RtVal &o) const
    {
        return kind == o.kind && i == o.i;
    }
};

using BoxType = RtVal::Kind;

/** IR operations (RPython ResOperation analog). */
enum class IrOp : uint8_t
{
    // control
    Label,
    Jump,
    Finish,
    DebugMergePoint,

    // guards
    GuardTrue,
    GuardFalse,
    GuardClass,
    GuardValue,
    GuardNonnull,
    GuardIsnull,
    GuardNoOverflow,

    // integer
    IntAdd,
    IntSub,
    IntMul,
    IntFloordiv,
    IntMod,
    IntAnd,
    IntOr,
    IntXor,
    IntLshift,
    IntRshift,
    IntNeg,
    IntAddOvf,
    IntSubOvf,
    IntMulOvf,
    IntLt,
    IntLe,
    IntEq,
    IntNe,
    IntGt,
    IntGe,
    IntIsZero,
    IntIsTrue,

    // float
    FloatAdd,
    FloatSub,
    FloatMul,
    FloatTruediv,
    FloatNeg,
    FloatAbs,
    FloatLt,
    FloatLe,
    FloatEq,
    FloatNe,
    FloatGt,
    FloatGe,
    CastIntToFloat,
    CastFloatToInt,

    // memory
    GetfieldGc,
    SetfieldGc,
    GetarrayitemGc,
    SetarrayitemGc,
    ArraylenGc,

    // string
    Strgetitem,
    Strlen,

    // allocation
    NewWithVtable,
    NewArray,

    // pointer
    PtrEq,
    PtrNe,
    SameAs,

    // calls
    Call,
    CallPure,
    CallMayForce,
    CallAssembler,

    NumOps
};

constexpr uint32_t kNumIrOps = static_cast<uint32_t>(IrOp::NumOps);

/** Categories used in the Figure 7 breakdown. */
enum class IrCategory : uint8_t
{
    Ctrl,
    Guard,
    Int,
    Float,
    MemOp,
    Str,
    New,
    Ptr,
    CallOverhead,
    NumCategories
};

constexpr uint32_t kNumIrCategories =
    static_cast<uint32_t>(IrCategory::NumCategories);

IrCategory irCategory(IrOp op);
const char *irOpName(IrOp op);
const char *irCategoryName(IrCategory c);
bool isGuard(IrOp op);
bool isCall(IrOp op);
/** Pure ops are safe to constant-fold / CSE / dead-code-eliminate. */
bool isPure(IrOp op);

/** Operand encoding helpers. */
constexpr int32_t kNoArg = INT32_MIN;

/**
 * Encoding ranges: boxes are >= 0; constants occupy [-2^24, -1]; the
 * range below that is reserved for snapshot virtual references (see
 * jit/opt.h) and the kNoArg sentinel.
 */
constexpr int32_t kMinConstRef = -(1 << 24);

constexpr bool
isConstRef(int32_t ref)
{
    return ref < 0 && ref >= kMinConstRef;
}
constexpr int32_t constIndex(int32_t ref) { return -(ref + 1); }
constexpr int32_t makeConstRef(int32_t idx) { return -(idx + 1); }

/** Number of operand slots per op. */
constexpr int kMaxOpArgs = 4;

/** One IR operation. */
struct ResOp
{
    IrOp op = IrOp::Label;
    int32_t args[kMaxOpArgs] = {kNoArg, kNoArg, kNoArg, kNoArg};
    int32_t result = -1; ///< box index or -1

    /**
     * Operation-specific immediate:
     *  - GuardClass / NewWithVtable: type id
     *  - GetfieldGc / SetfieldGc: field index
     *  - Call*: AOT function id; CallAssembler: target trace id
     *  - DebugMergePoint: dispatch opcode payload
     */
    uint32_t aux = 0;

    /** Guards: index into Trace::snapshots. */
    int32_t snapshotIdx = -1;

    /**
     * GuardValue: expected constant (bit pattern).
     * Call*: the language-layer call-semantic tag that tells the trace
     * executor which runtime behaviour this call performs.
     * CallAssembler: expected exit pc of the target trace.
     */
    uint64_t expect = 0;
};

/**
 * Resume information for one interpreter frame. The code pointer is
 * opaque to the JIT (the language layer owns it).
 */
struct FrameSnapshot
{
    void *code = nullptr;
    uint32_t pc = 0;
    std::vector<int32_t> locals; ///< operand encodings
    std::vector<int32_t> stack;
};

/** Resume state at a guard: the virtualizable frame stack. */
struct Snapshot
{
    std::vector<FrameSnapshot> frames; ///< outermost first
};

/**
 * A virtual object created by allocation sinking: blackhole materializes
 * it from the type id and field operand encodings.
 */
struct VirtualObj
{
    uint32_t typeId = 0;
    uint32_t numFields = 0;
    std::vector<int32_t> fieldRefs; ///< per field index, kNoArg if unset
    bool isArray = false;
    std::vector<int32_t> arrayRefs; ///< for NewArray virtuals
};

/** Per-guard runtime bookkeeping (fail counters, bridges). */
struct GuardState
{
    uint32_t failCount = 0;
    int32_t bridgeTraceId = -1;
};

struct Trace
{
    uint32_t id = 0;
    bool isBridge = false;
    /** Merge-point key this trace starts at (loop) or guard origin. */
    void *anchorCode = nullptr;
    uint32_t anchorPc = 0;
    /** Number of frame locals at the anchor (inputs = locals + stack). */
    uint32_t anchorNumLocals = 0;

    std::vector<ResOp> ops;
    std::vector<RtVal> consts;
    std::vector<BoxType> boxTypes; ///< boxTypes.size() == number of boxes
    std::vector<Snapshot> snapshots;
    uint32_t numInputs = 0; ///< boxes [0, numInputs) are trace inputs

    /**
     * Virtual objects introduced by the optimizer. boxToVirtual[i] >= 0
     * maps box i to an index into virtuals.
     */
    std::vector<VirtualObj> virtuals;
    std::vector<int32_t> boxToVirtual;

    /** Backend artifacts. */
    uint64_t codePc = 0;
    uint32_t codeInsts = 0;
    uint32_t irNodeBase = 0; ///< first global IR-node id for this trace

    /** Runtime state. */
    std::vector<GuardState> guardStates; ///< parallel to ops (guards only)
    uint64_t executions = 0;
    /** Compilation tier: 1 = baseline (raw lowering), 2 = optimizing. */
    uint8_t tier = 2;
    /** Set once the executor queued this trace for promotion. */
    bool promotionRequested = false;

    /**
     * Deopt-storm containment (see JitParams::stormThreshold).
     * stormScore counts consecutive zero-progress entries; blacklisted
     * demotes the trace to the interpreter until cooldownRemaining
     * merge-point visits pass, with the cooldown doubling per
     * blacklistGen (exponential backoff).
     */
    uint32_t stormScore = 0;
    bool blacklisted = false;
    uint32_t blacklistGen = 0;
    uint64_t cooldownRemaining = 0;

    int32_t
    newBox(BoxType t)
    {
        boxTypes.push_back(t);
        return static_cast<int32_t>(boxTypes.size() - 1);
    }

    int32_t
    addConst(const RtVal &v)
    {
        for (size_t i = 0; i < consts.size(); ++i) {
            if (consts[i].bitsEqual(v))
                return makeConstRef(static_cast<int32_t>(i));
        }
        consts.push_back(v);
        return makeConstRef(static_cast<int32_t>(consts.size() - 1));
    }

    const RtVal &
    constAt(int32_t ref) const
    {
        XLVM_ASSERT(isConstRef(ref), "not a const ref");
        return consts[constIndex(ref)];
    }

    /** Count ops excluding pure debug markers (Figure 6 "IR nodes"). */
    uint32_t countIrNodes() const;

    /** Human-readable dump (the PyPy Log analog). */
    std::string dump() const;
};

} // namespace jit
} // namespace xlvm

#endif // XLVM_JIT_IR_H
