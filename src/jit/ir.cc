#include "jit/ir.h"

#include <sstream>

namespace xlvm {
namespace jit {

IrCategory
irCategory(IrOp op)
{
    switch (op) {
      case IrOp::Label:
      case IrOp::Jump:
      case IrOp::Finish:
      case IrOp::DebugMergePoint:
        return IrCategory::Ctrl;

      case IrOp::GuardTrue:
      case IrOp::GuardFalse:
      case IrOp::GuardClass:
      case IrOp::GuardValue:
      case IrOp::GuardNonnull:
      case IrOp::GuardIsnull:
      case IrOp::GuardNoOverflow:
        return IrCategory::Guard;

      case IrOp::IntAdd:
      case IrOp::IntSub:
      case IrOp::IntMul:
      case IrOp::IntFloordiv:
      case IrOp::IntMod:
      case IrOp::IntAnd:
      case IrOp::IntOr:
      case IrOp::IntXor:
      case IrOp::IntLshift:
      case IrOp::IntRshift:
      case IrOp::IntNeg:
      case IrOp::IntAddOvf:
      case IrOp::IntSubOvf:
      case IrOp::IntMulOvf:
      case IrOp::IntLt:
      case IrOp::IntLe:
      case IrOp::IntEq:
      case IrOp::IntNe:
      case IrOp::IntGt:
      case IrOp::IntGe:
      case IrOp::IntIsZero:
      case IrOp::IntIsTrue:
        return IrCategory::Int;

      case IrOp::FloatAdd:
      case IrOp::FloatSub:
      case IrOp::FloatMul:
      case IrOp::FloatTruediv:
      case IrOp::FloatNeg:
      case IrOp::FloatAbs:
      case IrOp::FloatLt:
      case IrOp::FloatLe:
      case IrOp::FloatEq:
      case IrOp::FloatNe:
      case IrOp::FloatGt:
      case IrOp::FloatGe:
      case IrOp::CastIntToFloat:
      case IrOp::CastFloatToInt:
        return IrCategory::Float;

      case IrOp::GetfieldGc:
      case IrOp::SetfieldGc:
      case IrOp::GetarrayitemGc:
      case IrOp::SetarrayitemGc:
      case IrOp::ArraylenGc:
        return IrCategory::MemOp;

      case IrOp::Strgetitem:
      case IrOp::Strlen:
        return IrCategory::Str;

      case IrOp::NewWithVtable:
      case IrOp::NewArray:
        return IrCategory::New;

      case IrOp::PtrEq:
      case IrOp::PtrNe:
      case IrOp::SameAs:
        return IrCategory::Ptr;

      case IrOp::Call:
      case IrOp::CallPure:
      case IrOp::CallMayForce:
      case IrOp::CallAssembler:
        return IrCategory::CallOverhead;

      default:
        return IrCategory::Ctrl;
    }
}

const char *
irOpName(IrOp op)
{
    switch (op) {
      case IrOp::Label: return "label";
      case IrOp::Jump: return "jump";
      case IrOp::Finish: return "finish";
      case IrOp::DebugMergePoint: return "debug_merge_point";
      case IrOp::GuardTrue: return "guard_true";
      case IrOp::GuardFalse: return "guard_false";
      case IrOp::GuardClass: return "guard_class";
      case IrOp::GuardValue: return "guard_value";
      case IrOp::GuardNonnull: return "guard_nonnull";
      case IrOp::GuardIsnull: return "guard_isnull";
      case IrOp::GuardNoOverflow: return "guard_no_overflow";
      case IrOp::IntAdd: return "int_add";
      case IrOp::IntSub: return "int_sub";
      case IrOp::IntMul: return "int_mul";
      case IrOp::IntFloordiv: return "int_floordiv";
      case IrOp::IntMod: return "int_mod";
      case IrOp::IntAnd: return "int_and";
      case IrOp::IntOr: return "int_or";
      case IrOp::IntXor: return "int_xor";
      case IrOp::IntLshift: return "int_lshift";
      case IrOp::IntRshift: return "int_rshift";
      case IrOp::IntNeg: return "int_neg";
      case IrOp::IntAddOvf: return "int_add_ovf";
      case IrOp::IntSubOvf: return "int_sub_ovf";
      case IrOp::IntMulOvf: return "int_mul_ovf";
      case IrOp::IntLt: return "int_lt";
      case IrOp::IntLe: return "int_le";
      case IrOp::IntEq: return "int_eq";
      case IrOp::IntNe: return "int_ne";
      case IrOp::IntGt: return "int_gt";
      case IrOp::IntGe: return "int_ge";
      case IrOp::IntIsZero: return "int_is_zero";
      case IrOp::IntIsTrue: return "int_is_true";
      case IrOp::FloatAdd: return "float_add";
      case IrOp::FloatSub: return "float_sub";
      case IrOp::FloatMul: return "float_mul";
      case IrOp::FloatTruediv: return "float_truediv";
      case IrOp::FloatNeg: return "float_neg";
      case IrOp::FloatAbs: return "float_abs";
      case IrOp::FloatLt: return "float_lt";
      case IrOp::FloatLe: return "float_le";
      case IrOp::FloatEq: return "float_eq";
      case IrOp::FloatNe: return "float_ne";
      case IrOp::FloatGt: return "float_gt";
      case IrOp::FloatGe: return "float_ge";
      case IrOp::CastIntToFloat: return "cast_int_to_float";
      case IrOp::CastFloatToInt: return "cast_float_to_int";
      case IrOp::GetfieldGc: return "getfield_gc";
      case IrOp::SetfieldGc: return "setfield_gc";
      case IrOp::GetarrayitemGc: return "getarrayitem_gc";
      case IrOp::SetarrayitemGc: return "setarrayitem_gc";
      case IrOp::ArraylenGc: return "arraylen_gc";
      case IrOp::Strgetitem: return "strgetitem";
      case IrOp::Strlen: return "strlen";
      case IrOp::NewWithVtable: return "new_with_vtable";
      case IrOp::NewArray: return "new_array";
      case IrOp::PtrEq: return "ptr_eq";
      case IrOp::PtrNe: return "ptr_ne";
      case IrOp::SameAs: return "same_as";
      case IrOp::Call: return "call";
      case IrOp::CallPure: return "call_pure";
      case IrOp::CallMayForce: return "call_may_force";
      case IrOp::CallAssembler: return "call_assembler";
      default: return "?";
    }
}

const char *
irCategoryName(IrCategory c)
{
    switch (c) {
      case IrCategory::Ctrl: return "ctrl";
      case IrCategory::Guard: return "guard";
      case IrCategory::Int: return "int";
      case IrCategory::Float: return "float";
      case IrCategory::MemOp: return "memop";
      case IrCategory::Str: return "str";
      case IrCategory::New: return "new";
      case IrCategory::Ptr: return "ptr";
      case IrCategory::CallOverhead: return "call";
      default: return "?";
    }
}

bool
isGuard(IrOp op)
{
    return irCategory(op) == IrCategory::Guard;
}

bool
isCall(IrOp op)
{
    return irCategory(op) == IrCategory::CallOverhead;
}

bool
isPure(IrOp op)
{
    switch (irCategory(op)) {
      case IrCategory::Int:
      case IrCategory::Float:
      case IrCategory::Ptr:
      case IrCategory::Str:
        // Strgetitem/Strlen read immutable strings: pure.
        return op != IrOp::IntFloordiv && op != IrOp::IntMod;
      default:
        return op == IrOp::CallPure;
    }
}

uint32_t
Trace::countIrNodes() const
{
    uint32_t n = 0;
    for (const ResOp &op : ops) {
        if (op.op != IrOp::DebugMergePoint && op.op != IrOp::Label)
            ++n;
    }
    return n;
}

namespace {

void
dumpRef(std::ostringstream &oss, const Trace &t, int32_t ref)
{
    if (ref == kNoArg) {
        oss << "_";
    } else if (isConstRef(ref)) {
        const RtVal &v = t.constAt(ref);
        switch (v.kind) {
          case RtVal::Kind::Int:
            oss << "ConstInt(" << v.i << ")";
            break;
          case RtVal::Kind::Float:
            oss << "ConstFloat(" << v.f << ")";
            break;
          case RtVal::Kind::Ref:
            oss << "ConstPtr(" << v.r << ")";
            break;
        }
    } else {
        char prefix = 'i';
        switch (t.boxTypes[ref]) {
          case BoxType::Int:
            prefix = 'i';
            break;
          case BoxType::Float:
            prefix = 'f';
            break;
          case BoxType::Ref:
            prefix = 'p';
            break;
        }
        oss << prefix << ref;
    }
}

} // namespace

std::string
Trace::dump() const
{
    std::ostringstream oss;
    oss << (isBridge ? "# bridge " : "# loop ") << id << " ("
        << countIrNodes() << " nodes, " << numInputs << " inputs)\n";
    for (size_t opIdx = 0; opIdx < ops.size(); ++opIdx) {
        const ResOp &op = ops[opIdx];
        oss << "  [" << opIdx << "] ";
        if (op.result >= 0) {
            dumpRef(oss, *this, op.result);
            oss << " = ";
        }
        oss << irOpName(op.op) << "(";
        bool first = true;
        for (int32_t a : op.args) {
            if (a == kNoArg)
                continue;
            if (!first)
                oss << ", ";
            first = false;
            dumpRef(oss, *this, a);
        }
        oss << ")";
        if (op.op == IrOp::GuardValue)
            oss << " [expect=" << op.expect << "]";
        if (op.op == IrOp::GuardClass || op.op == IrOp::NewWithVtable)
            oss << " [type=" << op.aux << "]";
        else if (op.op == IrOp::GetfieldGc || op.op == IrOp::SetfieldGc)
            oss << " [field=" << op.aux << "]";
        else if (isCall(op.op))
            oss << " [fn=" << op.aux << "]";
        if (op.snapshotIdx >= 0)
            oss << " <snap " << op.snapshotIdx << ">";
        oss << "\n";
    }
    for (size_t si = 0; si < snapshots.size(); ++si) {
        oss << "  snap " << si << ":";
        for (const FrameSnapshot &f : snapshots[si].frames) {
            oss << " {pc=" << f.pc << " L[";
            for (int32_t r : f.locals) {
                oss << " ";
                if (r < kMinConstRef && r != kNoArg) {
                    oss << "virt" << (r - (INT32_MIN + 1));
                } else {
                    dumpRef(oss, *this, r);
                }
            }
            oss << "] S[";
            for (int32_t r : f.stack) {
                oss << " ";
                if (r < kMinConstRef && r != kNoArg) {
                    oss << "virt" << (r - (INT32_MIN + 1));
                } else {
                    dumpRef(oss, *this, r);
                }
            }
            oss << "]}";
        }
        oss << "\n";
    }
    for (size_t vi = 0; vi < virtuals.size(); ++vi) {
        oss << "  virt" << vi << ": type=" << virtuals[vi].typeId
            << " fields[";
        for (int32_t r : virtuals[vi].fieldRefs) {
            oss << " ";
            if (r == kNoArg) {
                oss << "_";
            } else if (r < kMinConstRef) {
                oss << "virt" << (r - (INT32_MIN + 1));
            } else {
                dumpRef(oss, *this, r);
            }
        }
        oss << "]\n";
    }
    return oss.str();
}

} // namespace jit
} // namespace xlvm
