#include "jit/recorder.h"

#include "jit/eval.h"

namespace xlvm {
namespace jit {

namespace {

/** Default result type for an op, kNoResult encoded as -1 via hasResult. */
bool
opHasResult(IrOp op)
{
    switch (op) {
      case IrOp::Label:
      case IrOp::Jump:
      case IrOp::Finish:
      case IrOp::DebugMergePoint:
      case IrOp::SetfieldGc:
      case IrOp::SetarrayitemGc:
        return false;
      default:
        return !isGuard(op);
    }
}

BoxType
defaultResultType(IrOp op)
{
    switch (irCategory(op)) {
      case IrCategory::Float:
        return op == IrOp::FloatLt || op == IrOp::FloatLe ||
                       op == IrOp::FloatEq || op == IrOp::FloatNe ||
                       op == IrOp::FloatGt || op == IrOp::FloatGe ||
                       op == IrOp::CastFloatToInt
                   ? BoxType::Int
                   : BoxType::Float;
      case IrCategory::New:
        return BoxType::Ref;
      case IrCategory::Ptr:
        return op == IrOp::SameAs ? BoxType::Ref : BoxType::Int;
      case IrCategory::MemOp:
      case IrCategory::CallOverhead:
        return BoxType::Ref; // callers override via emitTyped
      default:
        return BoxType::Int;
    }
}

} // namespace

Recorder::Recorder(void *anchor_code, uint32_t anchor_pc, bool is_bridge,
                   const RecorderLimits &lims)
    : limits(lims)
{
    trace_.anchorCode = anchor_code;
    trace_.anchorPc = anchor_pc;
    trace_.isBridge = is_bridge;
    ResOp label;
    label.op = IrOp::Label;
    trace_.ops.push_back(label);
}

int32_t
Recorder::addInputRef(void *obj)
{
    int32_t box = trace_.newBox(BoxType::Ref);
    trace_.numInputs = uint32_t(trace_.boxTypes.size());
    if (obj) {
        auto it = refMap.find(obj);
        if (it != refMap.end()) {
            // Two input slots hold the same object right now. Identity
            // tracking must not conflate the slots (they can diverge on
            // later entries), so keep the first mapping and pin the
            // observed aliasing with a ptr_eq guard at the first merge
            // point.
            pendingAliases.emplace_back(it->second, box);
        } else {
            refMap[obj] = box;
        }
    }
    return box;
}

int32_t
Recorder::refEncoding(void *obj)
{
    auto it = refMap.find(obj);
    if (it != refMap.end())
        return it->second;
    return constRef(obj);
}

int32_t
Recorder::emitTyped(IrOp op, BoxType result_type, int32_t a, int32_t b,
                    int32_t c, uint32_t aux, int32_t d, uint64_t expect)
{
    // Record-time constant folding for pure ops on constants.
    if (isPure(op) && a != kNoArg && isConstRef(a) &&
        (b == kNoArg || isConstRef(b)) && c == kNoArg &&
        op != IrOp::CallPure && op != IrOp::Strgetitem &&
        op != IrOp::Strlen) {
        RtVal out;
        RtVal bv = b == kNoArg ? RtVal() : trace_.constAt(b);
        if (evalPure(op, trace_.constAt(a), bv, &out))
            return trace_.addConst(out);
    }

    ResOp r;
    r.op = op;
    r.args[0] = a;
    r.args[1] = b;
    r.args[2] = c;
    r.args[3] = d;
    r.aux = aux;
    r.expect = expect;
    if (opHasResult(op))
        r.result = trace_.newBox(result_type);
    trace_.ops.push_back(r);
    if (op == IrOp::NewWithVtable)
        knownClasses[r.result] = aux;
    return r.result >= 0 ? r.result : kNoArg;
}

int32_t
Recorder::emit(IrOp op, int32_t a, int32_t b, int32_t c, uint32_t aux)
{
    return emitTyped(op, defaultResultType(op), a, b, c, aux);
}

int32_t
Recorder::currentSnapshotIdx()
{
    if (cachedSnapshotIdx < 0) {
        XLVM_ASSERT(snapshotFn, "guard recorded before first merge point");
        trace_.snapshots.push_back(snapshotFn());
        cachedSnapshotIdx = int32_t(trace_.snapshots.size() - 1);
    }
    return cachedSnapshotIdx;
}

void
Recorder::recordGuard(IrOp op, int32_t a, uint32_t aux, uint64_t expect)
{
    ResOp r;
    r.op = op;
    r.args[0] = a;
    r.aux = aux;
    r.expect = expect;
    r.snapshotIdx = currentSnapshotIdx();
    trace_.ops.push_back(r);
}

void
Recorder::guardClass(int32_t ref, uint32_t type_id)
{
    if (isConstRef(ref))
        return; // a constant's class never changes
    auto it = knownClasses.find(ref);
    if (it != knownClasses.end() && it->second == type_id)
        return;
    recordGuard(IrOp::GuardClass, ref, type_id, 0);
    knownClasses[ref] = type_id;
    knownNonnull[ref] = true;
}

void
Recorder::guardTrue(int32_t ref)
{
    if (isConstRef(ref))
        return;
    recordGuard(IrOp::GuardTrue, ref, 0, 0);
}

void
Recorder::guardFalse(int32_t ref)
{
    if (isConstRef(ref))
        return;
    recordGuard(IrOp::GuardFalse, ref, 0, 0);
}

void
Recorder::guardNonnull(int32_t ref)
{
    if (isConstRef(ref))
        return;
    auto it = knownNonnull.find(ref);
    if (it != knownNonnull.end() && it->second)
        return;
    recordGuard(IrOp::GuardNonnull, ref, 0, 0);
    knownNonnull[ref] = true;
}

void
Recorder::guardIsnull(int32_t ref)
{
    if (isConstRef(ref))
        return;
    recordGuard(IrOp::GuardIsnull, ref, 0, 0);
}

void
Recorder::guardNoOverflow()
{
    recordGuard(IrOp::GuardNoOverflow, kNoArg, 0, 0);
}

void
Recorder::guardValueInt(int32_t ref, int64_t expected)
{
    if (isConstRef(ref))
        return;
    recordGuard(IrOp::GuardValue, ref, 0, uint64_t(expected));
}

void
Recorder::guardValueRef(int32_t ref, void *expected)
{
    if (isConstRef(ref))
        return;
    // Pin the expected object in the const table so trace-root
    // enumeration keeps it alive for the lifetime of the trace.
    constRef(expected);
    recordGuard(IrOp::GuardValue, ref, 1,
                reinterpret_cast<uint64_t>(expected));
    // After a guard_value the box is as good as a constant; remember
    // its class knowledge implicitly via the mapping below.
    knownNonnull[ref] = expected != nullptr;
}

void
Recorder::setKnownClass(int32_t box, uint32_t type_id)
{
    knownClasses[box] = type_id;
    knownNonnull[box] = true;
}

bool
Recorder::knownClassOf(int32_t ref, uint32_t *type_id) const
{
    auto it = knownClasses.find(ref);
    if (it == knownClasses.end())
        return false;
    *type_id = it->second;
    return true;
}

bool
Recorder::atMergePoint(uint32_t payload,
                       std::function<Snapshot()> snapshot_fn)
{
    if (trace_.ops.size() >= limits.maxOps)
        return false;
    snapshotFn = std::move(snapshot_fn);
    cachedSnapshotIdx = -1;
    emit(IrOp::DebugMergePoint, kNoArg, kNoArg, kNoArg, payload);
    if (!pendingAliases.empty()) {
        for (auto [a, b] : pendingAliases) {
            int32_t eq = emit(IrOp::PtrEq, a, b);
            guardTrue(eq);
        }
        pendingAliases.clear();
    }
    return true;
}

void
Recorder::closeLoop(const std::vector<int32_t> &jump_args)
{
    ResOp r;
    r.op = IrOp::Jump;
    // Jump args don't fit in args[3]; stash them in a snapshot-like
    // frame appended to the snapshot table.
    Snapshot s;
    FrameSnapshot fs;
    fs.stack = jump_args;
    s.frames.push_back(fs);
    trace_.snapshots.push_back(s);
    r.snapshotIdx = int32_t(trace_.snapshots.size() - 1);
    trace_.ops.push_back(r);
    closed_ = true;
}

void
Recorder::closeBridge(uint32_t target_trace,
                      const std::vector<int32_t> &jump_args)
{
    ResOp r;
    r.op = IrOp::Jump;
    r.aux = target_trace + 1; // 0 means self-loop
    Snapshot s;
    FrameSnapshot fs;
    fs.stack = jump_args;
    s.frames.push_back(fs);
    trace_.snapshots.push_back(s);
    r.snapshotIdx = int32_t(trace_.snapshots.size() - 1);
    trace_.ops.push_back(r);
    closed_ = true;
}

Trace
Recorder::take()
{
    XLVM_ASSERT(closed_, "taking an unclosed trace");
    return std::move(trace_);
}

void
Recorder::forEachLiveRef(const std::function<void(void *)> &cb) const
{
    for (const auto &[obj, box] : refMap) {
        (void)box;
        cb(obj);
    }
    for (const RtVal &v : trace_.consts) {
        if (v.kind == RtVal::Kind::Ref && v.r)
            cb(v.r);
    }
}

} // namespace jit
} // namespace xlvm
