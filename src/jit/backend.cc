#include "jit/backend.h"

#include <cstdlib>
#include <cstring>

namespace xlvm {
namespace jit {

bool
fusionDisabledByEnv()
{
    const char *e = std::getenv("XLVM_NO_FUSE");
    return e && *e && std::strcmp(e, "0") != 0;
}

uint32_t
loweredInstCount(IrOp op)
{
    switch (op) {
      case IrOp::Label:
        return 0;
      case IrOp::Jump:
        return 1;
      case IrOp::Finish:
        return 2;
      case IrOp::DebugMergePoint:
        return 0; // pure annotation

      case IrOp::GuardTrue:
      case IrOp::GuardFalse:
      case IrOp::GuardValue:
      case IrOp::GuardNonnull:
      case IrOp::GuardIsnull:
        return 2;
      case IrOp::GuardClass:
        return 3; // load type word, cmp, branch
      case IrOp::GuardNoOverflow:
        return 1; // jo

      case IrOp::IntAdd:
      case IrOp::IntSub:
      case IrOp::IntMul:
      case IrOp::IntAnd:
      case IrOp::IntOr:
      case IrOp::IntXor:
      case IrOp::IntLshift:
      case IrOp::IntRshift:
      case IrOp::IntNeg:
      case IrOp::IntAddOvf:
      case IrOp::IntSubOvf:
      case IrOp::IntMulOvf:
        return 1;
      case IrOp::IntFloordiv:
      case IrOp::IntMod:
        return 4; // idiv + floor fixups
      case IrOp::IntLt:
      case IrOp::IntLe:
      case IrOp::IntEq:
      case IrOp::IntNe:
      case IrOp::IntGt:
      case IrOp::IntGe:
      case IrOp::IntIsZero:
      case IrOp::IntIsTrue:
        return 2; // cmp + setcc

      case IrOp::FloatAdd:
      case IrOp::FloatSub:
      case IrOp::FloatMul:
      case IrOp::FloatTruediv:
      case IrOp::FloatNeg:
      case IrOp::FloatAbs:
      case IrOp::CastIntToFloat:
      case IrOp::CastFloatToInt:
        return 1;
      case IrOp::FloatLt:
      case IrOp::FloatLe:
      case IrOp::FloatEq:
      case IrOp::FloatNe:
      case IrOp::FloatGt:
      case IrOp::FloatGe:
        return 2;

      case IrOp::GetfieldGc:
        return 1;
      case IrOp::SetfieldGc:
        return 3; // store + write-barrier check
      case IrOp::GetarrayitemGc:
        return 2;
      case IrOp::SetarrayitemGc:
        return 3;
      case IrOp::ArraylenGc:
        return 1;

      case IrOp::Strgetitem:
        return 2;
      case IrOp::Strlen:
        return 1;

      case IrOp::NewWithVtable:
        return 8; // nursery bump, limit check, header init
      case IrOp::NewArray:
        return 10;

      case IrOp::PtrEq:
      case IrOp::PtrNe:
        return 2;
      case IrOp::SameAs:
        return 1;

      case IrOp::Call:
      case IrOp::CallPure:
        return 16; // arg shuffle, spills, call, restore
      case IrOp::CallMayForce:
        return 20;
      case IrOp::CallAssembler:
        return 34; // full frame handoff between assembler units

      default:
        return 1;
    }
}

void
Backend::compile(Trace &trace)
{
    compileAtTier(trace, 2);
}

void
Backend::compileBaseline(Trace &trace)
{
    compileAtTier(trace, 1);
}

void
Backend::promote(Trace &trace, Trace &&optimized)
{
    // Move the re-optimized IR content into the registered trace object
    // so its identity (id, anchor, hotness, registry/bridge references)
    // survives the swap; the recompile below re-derives every backend
    // artifact (codePc, offsets, program, guardStates) from scratch.
    XLVM_ASSERT(trace.tier == 1, "promoting a non-baseline trace");
    uint64_t oldBytes = (uint64_t(trace.codeInsts + 8) * 4 + 15) & ~15ull;
    tiers.tier1CodeBytes -= oldBytes;
    tiers.tier1RetiredBytes += oldBytes;

    trace.ops = std::move(optimized.ops);
    trace.consts = std::move(optimized.consts);
    trace.boxTypes = std::move(optimized.boxTypes);
    trace.snapshots = std::move(optimized.snapshots);
    trace.numInputs = optimized.numInputs;
    trace.virtuals = std::move(optimized.virtuals);
    trace.boxToVirtual = std::move(optimized.boxToVirtual);
    trace.promotionRequested = false;

    compileAtTier(trace, 2);
    ++tiers.promotions;
}

void
Backend::addCompileCost(uint8_t tier, uint64_t insts)
{
    if (tier == 1)
        tiers.tier1CompileInsts += insts;
    else
        tiers.tier2CompileInsts += insts;
}

void
Backend::compileAtTier(Trace &trace, uint8_t tier)
{
    std::vector<uint32_t> offs;
    std::vector<int32_t> ids;
    offs.reserve(trace.ops.size());
    ids.reserve(trace.ops.size());

    uint32_t cursor = 0;
    trace.irNodeBase = uint32_t(nodes.size());
    for (const ResOp &op : trace.ops) {
        offs.push_back(cursor);
        cursor += loweredInstCount(op.op);
        if (op.op != IrOp::DebugMergePoint && op.op != IrOp::Label) {
            ids.push_back(int32_t(nodes.size()));
            IrNodeMeta m;
            m.op = op.op;
            m.traceId = trace.id;
            nodes.push_back(m);
        } else {
            ids.push_back(-1);
        }
    }

    trace.codeInsts = cursor;
    trace.codePc =
        codeSpace.alloc(sim::CodeSegment::JitArena, cursor + 8);
    trace.guardStates.assign(trace.ops.size(), GuardState());
    if (trace.boxToVirtual.empty())
        trace.boxToVirtual.assign(trace.boxTypes.size(), -1);

    trace.tier = tier;
    uint64_t bytes = (uint64_t(cursor + 8) * 4 + 15) & ~15ull;
    if (tier == 1) {
        ++tiers.tier1Compiles;
        tiers.tier1CodeBytes += bytes;
    } else {
        ++tiers.tier2Compiles;
        tiers.tier2CodeBytes += bytes;
    }

    if (offsets.size() <= trace.id) {
        offsets.resize(trace.id + 1);
        nodeIds.resize(trace.id + 1);
        programs.resize(trace.id + 1);
    }
    programs[trace.id] =
        lowerTrace(trace, offs, ids, fuseMicroOps && !fusionDisabledByEnv(),
                   loadStall, irNodeAnnots);
    offsets[trace.id] = std::move(offs);
    nodeIds[trace.id] = std::move(ids);
}

MicroProgram &
Backend::program(uint32_t trace_id)
{
    XLVM_ASSERT(trace_id < programs.size(), "trace not compiled");
    return programs[trace_id];
}

const std::vector<int32_t> &
Backend::opNodeIds(uint32_t trace_id) const
{
    XLVM_ASSERT(trace_id < nodeIds.size(), "trace not compiled");
    return nodeIds[trace_id];
}

const std::vector<uint32_t> &
Backend::opOffsets(uint32_t trace_id) const
{
    XLVM_ASSERT(trace_id < offsets.size(), "trace not compiled");
    return offsets[trace_id];
}

} // namespace jit
} // namespace xlvm
