/**
 * @file
 * Trace pre-lowering: the micro-op execution format.
 *
 * At Backend::compile time every optimized trace is translated once into
 * a compact linear micro-op program — one fixed-size struct per op with
 * the dispatch handler slot pre-resolved (patched to a computed-goto
 * label by the executor on first entry), operand references pre-decoded
 * to direct register-file indices (trace constants are materialized into
 * the tail of the register file, so operand fetch is a single indexed
 * load with no const/box branch), and all per-op simulation metadata
 * (code offsets, global IR-node ids, guard/snapshot indices) baked in.
 *
 * A fusion pass collapses the dominant adjacent IR pairs into
 * superinstructions with a single dispatch:
 *
 *   int_lt/le/eq/ne/gt/ge/is_zero/is_true  ->  guard_true/guard_false
 *   getfield_gc                            ->  guard_class
 *   int_add_ovf/int_sub_ovf/int_mul_ovf    ->  guard_no_overflow
 *
 * Fusion changes host dispatch only: a fused handler emits the exact
 * same simulated instruction sequence (same PCs, same order) as the two
 * unfused handlers would, so every cross-layer counter is bit-identical
 * with fusion on or off (tests/test_microop.cc proves this differentially
 * and the tests/golden/ gate proves it against the pre-rewrite engine).
 */

#ifndef XLVM_JIT_LOWER_H
#define XLVM_JIT_LOWER_H

#include <vector>

#include "jit/ir.h"

namespace xlvm {
namespace jit {

/**
 * Micro-opcodes. The first block mirrors the IrOp vocabulary 1:1; the
 * second block holds the fused superinstructions; the trailing entries
 * are engine-internal.
 */
enum class MOp : uint16_t
{
    // control
    Label,
    DebugMergePoint,
    Jump,
    Finish,

    // guards
    GuardTrue,
    GuardFalse,
    GuardClass,
    GuardValue,
    GuardNonnull,
    GuardIsnull,
    GuardNoOverflow,

    // integer
    IntAdd,
    IntSub,
    IntMul,
    IntFloordiv,
    IntMod,
    IntAnd,
    IntOr,
    IntXor,
    IntLshift,
    IntRshift,
    IntNeg,
    IntAddOvf,
    IntSubOvf,
    IntMulOvf,
    IntLt,
    IntLe,
    IntEq,
    IntNe,
    IntGt,
    IntGe,
    IntIsZero,
    IntIsTrue,

    // float
    FloatAdd,
    FloatSub,
    FloatMul,
    FloatTruediv,
    FloatNeg,
    FloatAbs,
    FloatLt,
    FloatLe,
    FloatEq,
    FloatNe,
    FloatGt,
    FloatGe,
    CastIntToFloat,
    CastFloatToInt,

    // pointer
    PtrEq,
    PtrNe,
    SameAs,

    // memory
    GetfieldGc,
    SetfieldGc,
    GetarrayitemGc,
    SetarrayitemGc,
    ArraylenGc,
    Strlen,
    Strgetitem,

    // allocation
    NewWithVtable,

    // calls
    Call,
    CallPure,
    CallMayForce,
    CallAssembler,

    // ---- superinstructions -----------------------------------------
    FuseLtGuardTrue,
    FuseLtGuardFalse,
    FuseLeGuardTrue,
    FuseLeGuardFalse,
    FuseEqGuardTrue,
    FuseEqGuardFalse,
    FuseNeGuardTrue,
    FuseNeGuardFalse,
    FuseGtGuardTrue,
    FuseGtGuardFalse,
    FuseGeGuardTrue,
    FuseGeGuardFalse,
    FuseIsZeroGuardTrue,
    FuseIsZeroGuardFalse,
    FuseIsTrueGuardTrue,
    FuseIsTrueGuardFalse,
    FuseGetfieldGuardClass,
    FuseAddOvfGuard,
    FuseSubOvfGuard,
    FuseMulOvfGuard,

    // ---- engine-internal --------------------------------------------
    Unimpl,  ///< IR op with no executor semantics (panics if reached)
    TrapEnd, ///< sentinel after the last op (catches fall-through)

    NumMOps
};

constexpr uint32_t kNumMOps = static_cast<uint32_t>(MOp::NumMOps);

const char *mopName(MOp m);

/** True for superinstructions produced by the fusion pass. */
bool isFusedMOp(MOp m);

/**
 * One pre-decoded micro-op (fixed size, cache-line friendly). Operand
 * slots index the unified register file directly; everything the
 * executor needs per dispatch is inline.
 */
struct MicroOp
{
    /** Dispatch handler; patched by the executor on first program entry
     *  (computed-goto label address, or unused in switch fallback). */
    const void *handler = nullptr;
    uint16_t opcode = 0; ///< MOp
    uint8_t argMask = 0; ///< bit i set when ResOp arg i was present
    uint8_t callInsts = 0; ///< loweredInstCount for Call* ops
    uint32_t arg[kMaxOpArgs] = {0, 0, 0, 0}; ///< register-file indices
    int32_t res = -1;    ///< result register, or -1
    uint32_t aux = 0;    ///< first constituent's immediate
    uint32_t aux2 = 0;   ///< fused guard's immediate (e.g. class id)
    uint64_t expect = 0; ///< GuardValue bits / call semantic tag
    uint32_t pcOff = 0;  ///< byte offset of the op's code from codePc
    uint32_t pcOff2 = 0; ///< byte offset of the fused guard's code
    int32_t nodeId = -1; ///< global IR-node id (-1: not counted)
    int32_t nodeId2 = -1; ///< fused guard's IR-node id
    int32_t snapshotIdx = -1;
    uint32_t origIdx = 0;  ///< index of the op in Trace::ops
    uint32_t guardIdx = 0; ///< Trace::ops index of the guard constituent
    uint32_t extraOff = 0; ///< into MicroProgram::extra (jump/call args)
    uint32_t extraLen = 0;
};

/**
 * The program's simulated-instruction stream, baked at lowering time in
 * structure-of-arrays form: one entry per emission *record* (a single
 * Inst, one straight-line run, or one annotation) of a full happy-path
 * iteration — every guard passing, every branch on its fast path.
 *
 * `sigs` is the fused class/latency/run-length stream packed with the
 * sim-layer's memoization signature encoding (sim::BlockMemo::sigInst /
 * sigStraight / sigAnnot), `pcOff` is the pc stream (byte offset of each
 * record's first instruction from the trace's codePc), and `memIdx`
 * lists the records that are memory operations (the ones whose d-cache
 * access must stay live at replay). The memo layer uses estRecords to
 * size its record scratch; tests/test_sim_memo.cc proves the baked
 * stream equals what live recording observes, record for record.
 */
struct SimStream
{
    std::vector<uint64_t> sigs;
    std::vector<uint32_t> pcOff;
    std::vector<uint32_t> memIdx;
    uint32_t estRecords = 0;
    /**
     * Bake identity: process-unique, assigned at bake time. Two bakes
     * never share an id, so the superblock layer can prove a stream
     * unchanged across re-lowering / tier promotion with one compare
     * (see sim::StreamView::streamId). 0 = never baked.
     */
    uint64_t streamId = 0;
    /** False when the program emits call-class instructions (RAS/BTB
     *  state is not memoized) or contains unimplemented ops. */
    bool memoEligible = true;
};

/**
 * Provenance for one guard site, recorded at lowering time so deopt
 * attribution can name the guard (IR op), point back at the bytecode
 * that produced it (the nearest preceding debug_merge_point's dispatch
 * payload), and say how the executor actually dispatches it (fused
 * superinstruction or standalone). Joined at collection time with the
 * trace's GuardState fail counters — see report/profile_export.h.
 */
struct GuardProvenance
{
    uint32_t guardIdx = 0; ///< Trace::ops index of the guard constituent
    IrOp op = IrOp::GuardTrue; ///< the guard's IR opcode
    /** Bytecode pc of the nearest preceding merge point (0 when the
     *  guard precedes the first merge point, e.g. entry type guards). */
    uint32_t originPc = 0;
    bool fused = false; ///< consumed by a superinstruction
    uint16_t mop = 0;   ///< executing MOp (the superinstruction if fused)
};

/** The pre-lowered form of one compiled trace. */
struct MicroProgram
{
    std::vector<MicroOp> ops;
    /** Pre-decoded register indices for Jump / CallAssembler argument
     *  lists (the anchor snapshot's frames[0].stack refs). */
    std::vector<uint32_t> extra;
    SimStream sim; ///< baked emission stream (see SimStream)
    /** One entry per guard site, in trace order (see GuardProvenance). */
    std::vector<GuardProvenance> guards;
    uint32_t numRegs = 0;   ///< boxes + materialized consts
    uint32_t constBase = 0; ///< first constant register (== num boxes)
    uint32_t numConsts = 0; ///< consts materialized at trace entry
    uint32_t fusedPairs = 0;
    bool resolved = false; ///< handler pointers patched
};

/**
 * Lower @p trace into a micro-op program. @p offsets / @p node_ids are
 * the backend's per-op code offsets and global IR-node ids (parallel to
 * trace.ops). @p fuse enables the superinstruction pass. @p load_stall
 * and @p annotate must match the executor's runtime configuration
 * (jitLoadStall cost, irNodeAnnotations) so the baked SimStream mirrors
 * the emitted stream exactly.
 */
MicroProgram lowerTrace(const Trace &trace,
                        const std::vector<uint32_t> &offsets,
                        const std::vector<int32_t> &node_ids, bool fuse,
                        uint8_t load_stall = 1, bool annotate = false);

} // namespace jit
} // namespace xlvm

#endif // XLVM_JIT_LOWER_H
