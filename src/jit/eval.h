/**
 * @file
 * Constant evaluation of pure IR operations, shared by the recorder
 * (record-time folding) and the optimizer (constant propagation).
 */

#ifndef XLVM_JIT_EVAL_H
#define XLVM_JIT_EVAL_H

#include "jit/ir.h"

namespace xlvm {
namespace jit {

/**
 * Evaluate a pure op on constants. Returns false when the op is not
 * evaluatable (not pure, overflow would occur, division by zero, ...).
 */
bool evalPure(IrOp op, const RtVal &a, const RtVal &b, RtVal *out);

} // namespace jit
} // namespace xlvm

#endif // XLVM_JIT_EVAL_H
