/**
 * @file
 * Trace optimizer.
 *
 * A single forward rewriting pass over the recorded trace implementing
 * the RPython optimizer stages the paper's characterization depends on:
 *
 *  - constant folding / propagation of pure ops;
 *  - redundant guard elimination (known-class / known-nonnull /
 *    guard_value dedup);
 *  - heap caching: forwarding getfield_gc through earlier setfield_gc /
 *    getfield_gc, invalidated by calls and aliasing stores;
 *  - escape analysis (allocation sinking): new_with_vtable whose result
 *    never escapes is removed together with its setfields/getfields;
 *    guards' resume snapshots describe such objects as *virtuals* that
 *    the blackhole interpreter rematerializes on deoptimization. This is
 *    the optimization responsible for the paper's observation that "GC is
 *    used more heavily before the JIT phase" (Section V-B).
 */

#ifndef XLVM_JIT_OPT_H
#define XLVM_JIT_OPT_H

#include <functional>

#include "jit/ir.h"

namespace xlvm {
namespace jit {

struct OptParams
{
    bool foldConstants = true;
    bool elideGuards = true;
    bool heapCache = true;
    bool virtualize = true;
    /** Resolves a constant object reference to its class id. */
    std::function<uint32_t(void *)> classOf;
};

struct OptStats
{
    uint32_t inputOps = 0;
    uint32_t outputOps = 0;
    uint32_t foldedOps = 0;
    uint32_t elidedGuards = 0;
    uint32_t forwardedLoads = 0;
    uint32_t removedAllocations = 0;
    uint32_t forcedAllocations = 0;
};

/** Optimize @p in, producing a new trace; preserves id/anchor fields. */
Trace optimize(const Trace &in, const OptParams &params,
               OptStats *stats = nullptr);

/** Snapshot virtual-reference encoding. */
constexpr int32_t kVirtualRefBase = INT32_MIN + 1;
constexpr int32_t makeVirtualRef(int32_t idx) { return kVirtualRefBase + idx; }
constexpr bool
isVirtualRef(int32_t ref)
{
    return ref != kNoArg && ref < 0 && ref >= kVirtualRefBase &&
           ref < kVirtualRefBase + (1 << 24);
}
constexpr int32_t virtualIndex(int32_t ref) { return ref - kVirtualRefBase; }

} // namespace jit
} // namespace xlvm

#endif // XLVM_JIT_OPT_H
