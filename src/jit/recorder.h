/**
 * @file
 * The meta-interpreter's trace recorder.
 *
 * While tracing, the interpreter executes normally but every operation it
 * performs through the object space is also recorded here as IR, exactly
 * as RPython's meta-interpreter records the interpreter's RPython-level
 * operations. The recorder:
 *
 *  - maps runtime object identities to SSA boxes (trace inputs, New
 *    results, call results, promoted constants);
 *  - folds operations on constants at record time;
 *  - elides guards already implied by earlier guards in the trace
 *    (known-class / known-nonnull caches);
 *  - attaches resume snapshots (captured lazily, once per dispatched
 *    bytecode) to every guard for later deoptimization.
 */

#ifndef XLVM_JIT_RECORDER_H
#define XLVM_JIT_RECORDER_H

#include <functional>
#include <unordered_map>

#include "jit/ir.h"

namespace xlvm {
namespace jit {

struct RecorderLimits
{
    uint32_t maxOps = 6000;
};

class Recorder
{
  public:
    Recorder(void *anchor_code, uint32_t anchor_pc, bool is_bridge,
             const RecorderLimits &limits = RecorderLimits());

    // ---- input setup -----------------------------------------------

    /** Add one trace input holding an object reference. */
    int32_t addInputRef(void *obj);

    /** Record how many anchor-frame slots are locals (rest: stack). */
    void setAnchorLocals(uint32_t n) { trace_.anchorNumLocals = n; }

    // ---- value references ------------------------------------------

    bool knownRef(void *obj) const { return refMap.count(obj) != 0; }

    /**
     * Encoding for an object reference: its box if tracked, otherwise a
     * constant (legitimate only for process-lifetime constants — code
     * objects, interned values, promoted globals).
     */
    int32_t refEncoding(void *obj);

    int32_t constInt(int64_t v) { return trace_.addConst(RtVal::fromInt(v)); }
    int32_t constFloat(double v)
    {
        return trace_.addConst(RtVal::fromFloat(v));
    }
    int32_t constRef(void *p) { return trace_.addConst(RtVal::fromRef(p)); }

    /** Associate an object's identity with a box (New / call results). */
    void mapRef(void *obj, int32_t box) { refMap[obj] = box; }

    /** Forget an identity mapping (object mutated to a new variant). */
    void unmapRef(void *obj) { refMap.erase(obj); }

    // ---- op recording ----------------------------------------------

    /**
     * Record an operation, folding constants for pure ops. Returns the
     * operand encoding of the result (box or const), or kNoArg if the op
     * has no result.
     */
    int32_t emit(IrOp op, int32_t a = kNoArg, int32_t b = kNoArg,
                 int32_t c = kNoArg, uint32_t aux = 0);

    /** Result box type override (defaults derived from the op). */
    int32_t emitTyped(IrOp op, BoxType result_type, int32_t a = kNoArg,
                      int32_t b = kNoArg, int32_t c = kNoArg,
                      uint32_t aux = 0, int32_t d = kNoArg,
                      uint64_t expect = 0);

    // ---- guards ----------------------------------------------------

    /** guard_class, elided when the box's class is already known. */
    void guardClass(int32_t ref, uint32_t type_id);

    void guardTrue(int32_t ref);
    void guardFalse(int32_t ref);
    void guardNonnull(int32_t ref);
    void guardIsnull(int32_t ref);
    void guardNoOverflow();
    /** guard_value pinning @p ref to the observed constant. */
    void guardValueInt(int32_t ref, int64_t expected);
    void guardValueRef(int32_t ref, void *expected);

    /** Class knowledge cache (also fed by New and guard elision). */
    void setKnownClass(int32_t box, uint32_t type_id);
    bool knownClassOf(int32_t ref, uint32_t *type_id) const;

    // ---- merge points & snapshots ----------------------------------

    /**
     * Called by the dispatch loop at the start of every bytecode while
     * tracing. @p payload is the dispatch-annotation payload (opcode);
     * @p snapshot_fn lazily captures the resume state for guards recorded
     * during this bytecode. Returns false when the trace has exceeded its
     * length budget (caller should abort).
     */
    bool atMergePoint(uint32_t payload,
                      std::function<Snapshot()> snapshot_fn);

    /** Close the trace as a loop jumping back to its own label. */
    void closeLoop(const std::vector<int32_t> &jump_args);

    /**
     * Close the trace as a bridge jumping into an existing loop trace.
     * @p target_trace id; @p jump_args map to the target's inputs.
     */
    void closeBridge(uint32_t target_trace,
                     const std::vector<int32_t> &jump_args);

    /** Fresh Ref box not produced by any op (call_assembler outputs). */
    int32_t newRefBox() { return trace_.newBox(BoxType::Ref); }

    /**
     * Record a call_assembler to an existing trace. @p io holds the
     * input argument encodings (frames[0].stack) and the expected exit
     * frame with output boxes (frames[1]); @p exit_pc is the bytecode pc
     * the inner trace is expected to deoptimize at.
     */
    void
    recordCallAssembler(uint32_t target_trace, Snapshot io,
                        uint64_t exit_pc)
    {
        trace_.snapshots.push_back(std::move(io));
        ResOp r;
        r.op = IrOp::CallAssembler;
        r.aux = target_trace;
        r.expect = exit_pc;
        r.snapshotIdx = int32_t(trace_.snapshots.size() - 1);
        trace_.ops.push_back(r);
    }

    // ---- lifecycle --------------------------------------------------

    bool closed() const { return closed_; }
    uint32_t numOps() const { return uint32_t(trace_.ops.size()); }
    Trace take();
    const Trace &trace() const { return trace_; }

    /** Iterate object refs the recorder must keep alive (GC roots). */
    void forEachLiveRef(const std::function<void(void *)> &cb) const;

    /** Runtime value the interpreter observed for a const ref. */
    const RtVal &constVal(int32_t ref) const { return trace_.constAt(ref); }

  private:
    int32_t currentSnapshotIdx();
    void recordGuard(IrOp op, int32_t a, uint32_t aux, uint64_t expect);

    Trace trace_;
    RecorderLimits limits;
    std::unordered_map<void *, int32_t> refMap;
    std::unordered_map<int32_t, uint32_t> knownClasses;
    std::unordered_map<int32_t, bool> knownNonnull;
    std::function<Snapshot()> snapshotFn;
    int32_t cachedSnapshotIdx = -1;
    /** Input slots observed aliased; guarded at the first merge point. */
    std::vector<std::pair<int32_t, int32_t>> pendingAliases;
    bool closed_ = false;
};

} // namespace jit
} // namespace xlvm

#endif // XLVM_JIT_RECORDER_H
