#include "jit/eval.h"

#include <cmath>

namespace xlvm {
namespace jit {

namespace {

bool
addOvf(int64_t a, int64_t b, int64_t *out)
{
    return __builtin_add_overflow(a, b, out);
}

bool
subOvf(int64_t a, int64_t b, int64_t *out)
{
    return __builtin_sub_overflow(a, b, out);
}

bool
mulOvf(int64_t a, int64_t b, int64_t *out)
{
    return __builtin_mul_overflow(a, b, out);
}

} // namespace

bool
evalPure(IrOp op, const RtVal &a, const RtVal &b, RtVal *out)
{
    int64_t r;
    switch (op) {
      case IrOp::IntAdd:
        *out = RtVal::fromInt(int64_t(uint64_t(a.i) + uint64_t(b.i)));
        return true;
      case IrOp::IntSub:
        *out = RtVal::fromInt(int64_t(uint64_t(a.i) - uint64_t(b.i)));
        return true;
      case IrOp::IntMul:
        *out = RtVal::fromInt(int64_t(uint64_t(a.i) * uint64_t(b.i)));
        return true;
      case IrOp::IntAddOvf:
        if (addOvf(a.i, b.i, &r))
            return false;
        *out = RtVal::fromInt(r);
        return true;
      case IrOp::IntSubOvf:
        if (subOvf(a.i, b.i, &r))
            return false;
        *out = RtVal::fromInt(r);
        return true;
      case IrOp::IntMulOvf:
        if (mulOvf(a.i, b.i, &r))
            return false;
        *out = RtVal::fromInt(r);
        return true;
      case IrOp::IntAnd:
        *out = RtVal::fromInt(a.i & b.i);
        return true;
      case IrOp::IntOr:
        *out = RtVal::fromInt(a.i | b.i);
        return true;
      case IrOp::IntXor:
        *out = RtVal::fromInt(a.i ^ b.i);
        return true;
      case IrOp::IntLshift:
        if (b.i < 0 || b.i >= 64)
            return false;
        *out = RtVal::fromInt(int64_t(uint64_t(a.i) << b.i));
        return true;
      case IrOp::IntRshift:
        if (b.i < 0 || b.i >= 64)
            return false;
        *out = RtVal::fromInt(a.i >> b.i);
        return true;
      case IrOp::IntNeg:
        *out = RtVal::fromInt(-a.i);
        return true;
      case IrOp::IntLt:
        *out = RtVal::fromInt(a.i < b.i);
        return true;
      case IrOp::IntLe:
        *out = RtVal::fromInt(a.i <= b.i);
        return true;
      case IrOp::IntEq:
        *out = RtVal::fromInt(a.i == b.i);
        return true;
      case IrOp::IntNe:
        *out = RtVal::fromInt(a.i != b.i);
        return true;
      case IrOp::IntGt:
        *out = RtVal::fromInt(a.i > b.i);
        return true;
      case IrOp::IntGe:
        *out = RtVal::fromInt(a.i >= b.i);
        return true;
      case IrOp::IntIsZero:
        *out = RtVal::fromInt(a.i == 0);
        return true;
      case IrOp::IntIsTrue:
        *out = RtVal::fromInt(a.i != 0);
        return true;

      case IrOp::FloatAdd:
        *out = RtVal::fromFloat(a.f + b.f);
        return true;
      case IrOp::FloatSub:
        *out = RtVal::fromFloat(a.f - b.f);
        return true;
      case IrOp::FloatMul:
        *out = RtVal::fromFloat(a.f * b.f);
        return true;
      case IrOp::FloatTruediv:
        if (b.f == 0.0)
            return false;
        *out = RtVal::fromFloat(a.f / b.f);
        return true;
      case IrOp::FloatNeg:
        *out = RtVal::fromFloat(-a.f);
        return true;
      case IrOp::FloatAbs:
        *out = RtVal::fromFloat(std::fabs(a.f));
        return true;
      case IrOp::FloatLt:
        *out = RtVal::fromInt(a.f < b.f);
        return true;
      case IrOp::FloatLe:
        *out = RtVal::fromInt(a.f <= b.f);
        return true;
      case IrOp::FloatEq:
        *out = RtVal::fromInt(a.f == b.f);
        return true;
      case IrOp::FloatNe:
        *out = RtVal::fromInt(a.f != b.f);
        return true;
      case IrOp::FloatGt:
        *out = RtVal::fromInt(a.f > b.f);
        return true;
      case IrOp::FloatGe:
        *out = RtVal::fromInt(a.f >= b.f);
        return true;
      case IrOp::CastIntToFloat:
        *out = RtVal::fromFloat(double(a.i));
        return true;
      case IrOp::CastFloatToInt:
        *out = RtVal::fromInt(int64_t(a.f));
        return true;

      case IrOp::PtrEq:
        *out = RtVal::fromInt(a.r == b.r);
        return true;
      case IrOp::PtrNe:
        *out = RtVal::fromInt(a.r != b.r);
        return true;
      case IrOp::SameAs:
        *out = a;
        return true;

      default:
        return false;
    }
}

} // namespace jit
} // namespace xlvm
