#include "jit/bailout.h"

#include <sstream>
#include <unordered_set>
#include <vector>

#include "jit/opt.h"

namespace xlvm {
namespace jit {

const char *
abortReasonName(AbortReason r)
{
    switch (r) {
      case AbortReason::kNone: return "none";
      case AbortReason::kTraceTooLong: return "trace_too_long";
      case AbortReason::kRootEscape: return "root_escape";
      case AbortReason::kUnsupportedOp: return "unsupported_op";
      case AbortReason::kCallAssemblerExit: return "call_assembler_exit";
      case AbortReason::kMalformedTrace: return "malformed_trace";
      case AbortReason::kOptimizerFailure: return "optimizer_failure";
      case AbortReason::kCompileBudget: return "compile_budget";
      case AbortReason::kTraceCacheFull: return "trace_cache_full";
      case AbortReason::kBudgetExhausted: return "budget_exhausted";
      case AbortReason::kInjected: return "injected";
      case AbortReason::kNumAbortReasons: break;
    }
    return "unknown";
}

AbortReason
abortReasonFromPayload(uint32_t payload)
{
    if (payload >= kNumAbortReasons)
        return AbortReason::kNone;
    return static_cast<AbortReason>(payload);
}

namespace {

/** Verification walk over one trace; collects the first defect. */
class Verifier
{
  public:
    Verifier(const Trace &t, AbortReason failed_reason)
        : t_(t), failedReason_(failed_reason)
    {
    }

    VerifyResult
    run()
    {
        if (t_.numInputs > t_.boxTypes.size()) {
            fail(-1, "numInputs ", t_.numInputs, " exceeds box count ",
                 t_.boxTypes.size());
            return std::move(result_);
        }
        bound_ = static_cast<int32_t>(t_.numInputs);
        for (size_t i = 0; i < t_.ops.size(); ++i) {
            const ResOp &op = t_.ops[i];
            int opIdx = static_cast<int>(i);
            if (op.snapshotIdx >= 0 &&
                size_t(op.snapshotIdx) >= t_.snapshots.size()) {
                fail(opIdx, "snapshot index ", op.snapshotIdx,
                     " out of range (", t_.snapshots.size(), ")");
                return std::move(result_);
            }
            if (op.op == IrOp::CallAssembler) {
                if (!checkCallAssembler(op, opIdx))
                    return std::move(result_);
                continue;
            }
            for (int a = 0; a < kMaxOpArgs; ++a) {
                if (!checkUse(op.args[a], opIdx, "arg",
                              /*allow_virtual=*/false))
                    return std::move(result_);
            }
            if (op.snapshotIdx >= 0) {
                const Snapshot &s = t_.snapshots[op.snapshotIdx];
                for (const FrameSnapshot &f : s.frames) {
                    if (!checkFrameUses(f, opIdx))
                        return std::move(result_);
                }
            }
            if (op.result >= 0) {
                if (size_t(op.result) >= t_.boxTypes.size()) {
                    fail(opIdx, "result box ", op.result,
                         " outside box table (", t_.boxTypes.size(), ")");
                    return std::move(result_);
                }
                if (op.result < bound_) {
                    fail(opIdx, "result box ", op.result,
                         " redefines an existing box (bound ", bound_,
                         ")");
                    return std::move(result_);
                }
                bound_ = op.result + 1;
            }
        }
        return std::move(result_);
    }

  private:
    /**
     * call_assembler io snapshot: frames[0] holds the inner-call args
     * and frames[2..] the outer resume frames — both are uses of
     * already-defined boxes (the executor rebuilds outer frames from
     * frames[2..] BEFORE performing the frames[1] writeback on a
     * mismatched inner exit, so they must not reference the exit
     * contract's fresh boxes). Only frames[1] defines new boxes.
     */
    bool
    checkCallAssembler(const ResOp &op, int op_idx)
    {
        if (op.snapshotIdx < 0)
            return fail2(op_idx, "call_assembler without io snapshot");
        const Snapshot &s = t_.snapshots[op.snapshotIdx];
        if (s.frames.size() < 2) {
            return fail2(op_idx,
                         "call_assembler io snapshot needs >= 2 frames");
        }
        if (!checkFrameUses(s.frames[0], op_idx))
            return false;
        for (size_t fi = 2; fi < s.frames.size(); ++fi) {
            if (!checkFrameUses(s.frames[fi], op_idx))
                return false;
        }
        int32_t newBound = bound_;
        const FrameSnapshot &exitF = s.frames[1];
        auto define = [&](int32_t ref) {
            if (ref == kNoArg)
                return true;
            if (ref < 0 || size_t(ref) >= t_.boxTypes.size()) {
                return fail(op_idx, "call_assembler exit box ", ref,
                            " outside box table (", t_.boxTypes.size(),
                            ")");
            }
            if (ref < bound_) {
                return fail(op_idx, "call_assembler exit box ", ref,
                            " is not fresh (bound ", bound_, ")");
            }
            if (ref + 1 > newBound)
                newBound = ref + 1;
            return true;
        };
        for (int32_t ref : exitF.locals) {
            if (!define(ref))
                return false;
        }
        for (int32_t ref : exitF.stack) {
            if (!define(ref))
                return false;
        }
        bound_ = newBound;
        if (op.result >= 0)
            return fail2(op_idx, "call_assembler must not have a result");
        return true;
    }

    bool
    checkFrameUses(const FrameSnapshot &f, int op_idx)
    {
        for (int32_t ref : f.locals) {
            if (!checkUse(ref, op_idx, "snapshot", /*allow_virtual=*/true))
                return false;
        }
        for (int32_t ref : f.stack) {
            if (!checkUse(ref, op_idx, "snapshot", /*allow_virtual=*/true))
                return false;
        }
        return true;
    }

    bool
    checkUse(int32_t ref, int op_idx, const char *where, bool allow_virtual)
    {
        if (ref == kNoArg)
            return true;
        if (isConstRef(ref)) {
            if (size_t(constIndex(ref)) >= t_.consts.size()) {
                return fail(op_idx, where, " const ref ", constIndex(ref),
                            " outside const table (", t_.consts.size(),
                            ")");
            }
            return true;
        }
        if (isVirtualRef(ref)) {
            if (!allow_virtual) {
                return fail(op_idx, where, " operand is a virtual ref (",
                            virtualIndex(ref), ")");
            }
            return checkVirtual(virtualIndex(ref), op_idx, where);
        }
        if (ref < 0)
            return fail(op_idx, where, " has invalid encoding ", ref);
        if (ref >= bound_) {
            return fail(op_idx, where, " box ", ref,
                        " used before definition (bound ", bound_, ")");
        }
        return true;
    }

    bool
    checkVirtual(int32_t vidx, int op_idx, const char *where)
    {
        if (size_t(vidx) >= t_.virtuals.size()) {
            return fail(op_idx, where, " virtual ", vidx,
                        " outside virtual table (", t_.virtuals.size(),
                        ")");
        }
        // Cyclic virtuals are legal (self-referential structures); the
        // visited set terminates the recursion.
        if (!visitedVirtuals_.insert(vidx).second)
            return true;
        const VirtualObj &v = t_.virtuals[vidx];
        for (int32_t ref : v.fieldRefs) {
            if (!checkUse(ref, op_idx, where, /*allow_virtual=*/true))
                return false;
        }
        for (int32_t ref : v.arrayRefs) {
            if (!checkUse(ref, op_idx, where, /*allow_virtual=*/true))
                return false;
        }
        return true;
    }

    template <typename... Args>
    bool
    fail(int op_idx, Args &&...args)
    {
        if (!result_.ok)
            return false; // keep the first defect
        std::ostringstream os;
        os << "op " << op_idx;
        if (op_idx >= 0 && size_t(op_idx) < t_.ops.size())
            os << " (" << irOpName(t_.ops[op_idx].op) << ")";
        os << ": ";
        (os << ... << args);
        result_.ok = false;
        result_.reason = failedReason_;
        result_.detail = os.str();
        return false;
    }

    bool
    fail2(int op_idx, const char *msg)
    {
        return fail(op_idx, msg);
    }

    const Trace &t_;
    AbortReason failedReason_;
    int32_t bound_ = 0;
    std::unordered_set<int32_t> visitedVirtuals_;
    VerifyResult result_;
};

} // namespace

VerifyResult
verifyTrace(const Trace &t, AbortReason failed_reason)
{
    Verifier v(t, failed_reason);
    return v.run();
}

} // namespace jit
} // namespace xlvm
