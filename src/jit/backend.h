/**
 * @file
 * Trace backend: "assembles" optimized traces.
 *
 * Each IR node lowers to a fixed-shape sequence of synthetic
 * instructions; the per-op expansion lengths are the model behind
 * Figure 9 (x86 instructions per IR node type — call_assembler > 30,
 * other calls > 15, most nodes 1–2). The backend allocates a region in
 * the JIT code arena, precomputes per-op code offsets, assigns global IR
 * node ids for the IR-node profiler, and initializes guard bookkeeping.
 *
 * The trace *executor* (vm layer) replays these expansions with live
 * memory addresses and branch outcomes; it consumes the same tables, so
 * static (Figure 9) and dynamic (Figures 6–8) statistics agree by
 * construction.
 */

#ifndef XLVM_JIT_BACKEND_H
#define XLVM_JIT_BACKEND_H

#include <vector>

#include "jit/ir.h"
#include "jit/lower.h"
#include "sim/code_space.h"

namespace xlvm {
namespace jit {

/** Synthetic instructions in the lowering of one IR op. */
uint32_t loweredInstCount(IrOp op);

/** True when the XLVM_NO_FUSE escape hatch disables superinstruction
 *  fusion for the whole process (differential testing / debugging). */
bool fusionDisabledByEnv();

/** Metadata for one compiled (countable) IR node. */
struct IrNodeMeta
{
    IrOp op = IrOp::Label;
    uint32_t traceId = 0;
};

class Backend
{
  public:
    /**
     * @param load_stall     the executor's jitLoadStall cost, baked into
     *                       the programs' SimStreams (must match runtime)
     * @param ir_node_annots the executor's irNodeAnnotations setting
     *                       (kIrNode annots consume pc slots)
     */
    explicit Backend(sim::CodeSpace &cs, bool fuse_micro_ops = true,
                     uint8_t load_stall = 1, bool ir_node_annots = false)
        : codeSpace(cs), fuseMicroOps(fuse_micro_ops),
          loadStall(load_stall), irNodeAnnots(ir_node_annots)
    {
    }

    /**
     * Assemble @p trace: assigns codePc / codeInsts / opPc offsets /
     * irNodeBase, registers node metadata, sizes guardStates, and
     * pre-lowers the trace into its micro-op program (jit/lower.h).
     */
    void compile(Trace &trace);

    /** Per-op code offsets (parallel to trace.ops), for the executor. */
    const std::vector<uint32_t> &opOffsets(uint32_t trace_id) const;

    /** Per-op global IR-node id (-1 for labels/debug markers). */
    const std::vector<int32_t> &opNodeIds(uint32_t trace_id) const;

    /** The pre-lowered micro-op program the executor dispatches over.
     *  Mutable: the executor patches handler pointers on first entry. */
    MicroProgram &program(uint32_t trace_id);

    /** All compiled IR nodes across all traces, indexed by global id. */
    const std::vector<IrNodeMeta> &nodeMeta() const { return nodes; }

    uint32_t totalIrNodesCompiled() const { return uint32_t(nodes.size()); }

    bool fusionEnabled() const { return fuseMicroOps; }

  private:
    sim::CodeSpace &codeSpace;
    bool fuseMicroOps;
    uint8_t loadStall;
    bool irNodeAnnots;
    std::vector<IrNodeMeta> nodes;
    std::vector<std::vector<uint32_t>> offsets; ///< per trace id
    std::vector<std::vector<int32_t>> nodeIds;  ///< per trace id
    std::vector<MicroProgram> programs;         ///< per trace id
};

} // namespace jit
} // namespace xlvm

#endif // XLVM_JIT_BACKEND_H
