/**
 * @file
 * Trace backend: "assembles" optimized traces.
 *
 * Each IR node lowers to a fixed-shape sequence of synthetic
 * instructions; the per-op expansion lengths are the model behind
 * Figure 9 (x86 instructions per IR node type — call_assembler > 30,
 * other calls > 15, most nodes 1–2). The backend allocates a region in
 * the JIT code arena, precomputes per-op code offsets, assigns global IR
 * node ids for the IR-node profiler, and initializes guard bookkeeping.
 *
 * The trace *executor* (vm layer) replays these expansions with live
 * memory addresses and branch outcomes; it consumes the same tables, so
 * static (Figure 9) and dynamic (Figures 6–8) statistics agree by
 * construction.
 */

#ifndef XLVM_JIT_BACKEND_H
#define XLVM_JIT_BACKEND_H

#include <vector>

#include "jit/ir.h"
#include "jit/lower.h"
#include "sim/code_space.h"

namespace xlvm {
namespace jit {

/** Synthetic instructions in the lowering of one IR op. */
uint32_t loweredInstCount(IrOp op);

/** True when the XLVM_NO_FUSE escape hatch disables superinstruction
 *  fusion for the whole process (differential testing / debugging). */
bool fusionDisabledByEnv();

/** Metadata for one compiled (countable) IR node. */
struct IrNodeMeta
{
    IrOp op = IrOp::Label;
    uint32_t traceId = 0;
};

/** Per-tier compile/residency accounting (metrics jit_tiers section). */
struct TierStats
{
    uint64_t tier1Compiles = 0;
    uint64_t tier2Compiles = 0; ///< promotions recompile at tier 2 too
    uint64_t promotions = 0;
    /** Live code bytes per tier. The arena is monotonic, so promotion
     *  moves a trace's footprint to tier 2 and retires the old region. */
    uint64_t tier1CodeBytes = 0;
    uint64_t tier2CodeBytes = 0;
    uint64_t tier1RetiredBytes = 0;
    /** Modeled compile-cost instructions charged per tier. */
    uint64_t tier1CompileInsts = 0;
    uint64_t tier2CompileInsts = 0;
};

class Backend
{
  public:
    /**
     * @param load_stall     the executor's jitLoadStall cost, baked into
     *                       the programs' SimStreams (must match runtime)
     * @param ir_node_annots the executor's irNodeAnnotations setting
     *                       (kIrNode annots consume pc slots)
     */
    explicit Backend(sim::CodeSpace &cs, bool fuse_micro_ops = true,
                     uint8_t load_stall = 1, bool ir_node_annots = false)
        : codeSpace(cs), fuseMicroOps(fuse_micro_ops),
          loadStall(load_stall), irNodeAnnots(ir_node_annots)
    {
    }

    /**
     * Assemble @p trace at the optimizing tier: assigns codePc /
     * codeInsts / opPc offsets / irNodeBase, registers node metadata,
     * sizes guardStates, and pre-lowers the trace into its micro-op
     * program (jit/lower.h).
     */
    void compile(Trace &trace);

    /**
     * Assemble @p trace at the baseline tier (tier 1): the trace is the
     * raw recording, lowered through the exact same pipeline — the only
     * difference is bookkeeping (trace.tier, per-tier byte accounting).
     */
    void compileBaseline(Trace &trace);

    /**
     * Promote @p trace to the optimizing tier: move @p optimized's IR
     * content into the registered trace object (preserving its id,
     * anchor and hotness so every registry/bridge reference stays
     * valid) and recompile. The old tier-1 code region is abandoned
     * (the arena is monotonic) and counted as retired; guardStates are
     * re-sized by the recompile, which detaches any bridges attached to
     * the tier-1 guard indices — dependent code invalidation.
     */
    void promote(Trace &trace, Trace &&optimized);

    /** Charge modeled compile-cost instructions to @p tier's account. */
    void addCompileCost(uint8_t tier, uint64_t insts);

    const TierStats &tierStats() const { return tiers; }

    /** Per-op code offsets (parallel to trace.ops), for the executor. */
    const std::vector<uint32_t> &opOffsets(uint32_t trace_id) const;

    /** Per-op global IR-node id (-1 for labels/debug markers). */
    const std::vector<int32_t> &opNodeIds(uint32_t trace_id) const;

    /** The pre-lowered micro-op program the executor dispatches over.
     *  Mutable: the executor patches handler pointers on first entry. */
    MicroProgram &program(uint32_t trace_id);

    /** All compiled IR nodes across all traces, indexed by global id. */
    const std::vector<IrNodeMeta> &nodeMeta() const { return nodes; }

    uint32_t totalIrNodesCompiled() const { return uint32_t(nodes.size()); }

    bool fusionEnabled() const { return fuseMicroOps; }

  private:
    void compileAtTier(Trace &trace, uint8_t tier);

    sim::CodeSpace &codeSpace;
    bool fuseMicroOps;
    uint8_t loadStall;
    bool irNodeAnnots;
    TierStats tiers;
    std::vector<IrNodeMeta> nodes;
    std::vector<std::vector<uint32_t>> offsets; ///< per trace id
    std::vector<std::vector<int32_t>> nodeIds;  ///< per trace id
    std::vector<MicroProgram> programs;         ///< per trace id
};

} // namespace jit
} // namespace xlvm

#endif // XLVM_JIT_BACKEND_H
