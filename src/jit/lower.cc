#include "jit/lower.h"

#include <atomic>

#include "jit/backend.h"
#include "sim/block_memo.h"
#include "sim/inst.h"
#include "xlayer/annot.h"

namespace xlvm {
namespace jit {

namespace {

/**
 * Bake the program's happy-path emission stream (see SimStream) by
 * mirroring the executor's handler templates record for record: same
 * classes, same run lengths, same extra latencies, same pc slots —
 * including the pc consumed by an optional kIrNode annotation and the
 * not-taken outcome of every guard/write-barrier branch. Kept next to
 * lowerTrace so the two views of a handler cannot drift silently; the
 * differential test in tests/test_sim_memo.cc enforces the mirror
 * against live recording.
 */
void
bakeSimStream(MicroProgram &prog, uint8_t load_stall, bool annotate)
{
    using sim::BlockMemo;
    using sim::InstClass;

    SimStream &s = prog.sim;
    uint32_t off = 0; ///< current emission pc offset (bytes from codePc)

    auto inst = [&](InstClass cls, uint8_t lat = 0) {
        if (cls == InstClass::Load || cls == InstClass::Store)
            s.memIdx.push_back(uint32_t(s.sigs.size()));
        s.sigs.push_back(BlockMemo::sigInst(cls, lat, false));
        s.pcOff.push_back(off);
        off += 4;
    };
    auto straight = [&](InstClass cls, uint32_t n, uint8_t lat = 0) {
        if (n == 0)
            return; // consumeStraight(n == 0) emits nothing
        s.sigs.push_back(BlockMemo::sigStraight(cls, lat, n));
        s.pcOff.push_back(off);
        off += 4 * n;
    };
    auto alu = [&](uint32_t n) { straight(InstClass::IntAlu, n); };
    auto annot = [&](uint32_t tag, uint32_t payload) {
        s.sigs.push_back(
            BlockMemo::sigAnnot(sim::encodeAnnot(tag, payload)));
        s.pcOff.push_back(off);
        off += 4;
    };
    auto branch = [&]() { inst(InstClass::Branch); };

    for (const MicroOp &m : prog.ops) {
        const MOp op = MOp(m.opcode);
        if (op == MOp::TrapEnd)
            break;

        // BEGIN(): emitter at the op's code address + optional IR-node
        // annotation (which consumes the first pc slot).
        off = m.pcOff;
        if (op != MOp::DebugMergePoint && annotate && m.nodeId >= 0)
            annot(xlayer::kIrNode, uint32_t(m.nodeId));
        // BEGIN2() for fused pairs: re-anchors at the guard's offset.
        auto begin2 = [&]() {
            off = m.pcOff2;
            if (annotate && m.nodeId2 >= 0)
                annot(xlayer::kIrNode, uint32_t(m.nodeId2));
        };

        switch (op) {
          case MOp::Label:
            break;
          case MOp::DebugMergePoint:
            annot(xlayer::kDispatch, m.aux);
            break;
          case MOp::Jump:
            inst(InstClass::Jump);
            break;
          case MOp::Finish:
            alu(2);
            break;

          case MOp::GuardTrue:
          case MOp::GuardFalse:
          case MOp::GuardValue:
          case MOp::GuardNonnull:
          case MOp::GuardIsnull:
            alu(1);
            branch();
            break;
          case MOp::GuardClass:
            inst(InstClass::Load, load_stall);
            alu(1);
            branch();
            break;
          case MOp::GuardNoOverflow:
            branch();
            break;

          case MOp::IntAdd:
          case MOp::IntSub:
          case MOp::IntAnd:
          case MOp::IntOr:
          case MOp::IntXor:
          case MOp::IntLshift:
          case MOp::IntRshift:
          case MOp::IntNeg:
          case MOp::IntAddOvf:
          case MOp::IntSubOvf:
          case MOp::IntMulOvf:
            alu(1);
            break;
          case MOp::IntMul:
            inst(InstClass::IntMul);
            break;
          case MOp::IntFloordiv:
          case MOp::IntMod:
            inst(InstClass::IntDiv);
            alu(3);
            break;
          case MOp::IntLt:
          case MOp::IntLe:
          case MOp::IntEq:
          case MOp::IntNe:
          case MOp::IntGt:
          case MOp::IntGe:
          case MOp::IntIsZero:
          case MOp::IntIsTrue:
            alu(2);
            break;

          case MOp::FloatAdd:
          case MOp::FloatSub:
          case MOp::FloatNeg:
          case MOp::FloatAbs:
          case MOp::CastIntToFloat:
          case MOp::CastFloatToInt:
            straight(InstClass::FpAlu, 1);
            break;
          case MOp::FloatMul:
            inst(InstClass::FpMul);
            break;
          case MOp::FloatTruediv:
            inst(InstClass::FpDiv);
            break;
          case MOp::FloatLt:
          case MOp::FloatLe:
          case MOp::FloatEq:
          case MOp::FloatNe:
          case MOp::FloatGt:
          case MOp::FloatGe:
            straight(InstClass::FpAlu, 1);
            alu(1);
            break;

          case MOp::PtrEq:
          case MOp::PtrNe:
            alu(2);
            break;
          case MOp::SameAs:
            alu(1);
            break;

          case MOp::GetfieldGc:
            inst(InstClass::Load, load_stall);
            break;
          case MOp::SetfieldGc:
            inst(InstClass::Store);
            alu(1);
            branch(); // write-barrier fast path
            break;
          case MOp::GetarrayitemGc:
            alu(1);
            inst(InstClass::Load, load_stall);
            break;
          case MOp::SetarrayitemGc:
            alu(1);
            inst(InstClass::Store);
            branch();
            break;
          case MOp::ArraylenGc:
          case MOp::Strlen:
            inst(InstClass::Load, 1);
            break;
          case MOp::Strgetitem:
            alu(1);
            inst(InstClass::Load, 1);
            break;

          case MOp::NewWithVtable:
            inst(InstClass::Load, 1);
            alu(3);
            branch();
            inst(InstClass::Store);
            inst(InstClass::Store);
            alu(1);
            break;

          case MOp::Call:
          case MOp::CallPure:
          case MOp::CallMayForce:
          case MOp::CallAssembler: {
            // Call-class instructions touch RAS/BTB state the memo layer
            // does not fingerprint; the stream stays useful as metadata.
            s.memoEligible = false;
            const uint32_t n = m.callInsts;
            alu(n / 2 - 1);
            inst(InstClass::Call);
            off = m.pcOff + (n / 2 + 1) * 4;
            inst(InstClass::Ret);
            alu(n - n / 2 - 2);
            break;
          }

          // Fused pairs: both constituents' expansions around one
          // dispatch, the guard re-anchored at pcOff2.
          case MOp::FuseLtGuardTrue:
          case MOp::FuseLtGuardFalse:
          case MOp::FuseLeGuardTrue:
          case MOp::FuseLeGuardFalse:
          case MOp::FuseEqGuardTrue:
          case MOp::FuseEqGuardFalse:
          case MOp::FuseNeGuardTrue:
          case MOp::FuseNeGuardFalse:
          case MOp::FuseGtGuardTrue:
          case MOp::FuseGtGuardFalse:
          case MOp::FuseGeGuardTrue:
          case MOp::FuseGeGuardFalse:
          case MOp::FuseIsZeroGuardTrue:
          case MOp::FuseIsZeroGuardFalse:
          case MOp::FuseIsTrueGuardTrue:
          case MOp::FuseIsTrueGuardFalse:
            alu(2);
            begin2();
            alu(1);
            branch();
            break;
          case MOp::FuseGetfieldGuardClass:
            inst(InstClass::Load, load_stall);
            begin2();
            inst(InstClass::Load, load_stall);
            alu(1);
            branch();
            break;
          case MOp::FuseAddOvfGuard:
          case MOp::FuseSubOvfGuard:
          case MOp::FuseMulOvfGuard:
            alu(1);
            begin2();
            branch();
            break;

          case MOp::Unimpl:
          default:
            s.memoEligible = false;
            break;
        }
    }

    s.estRecords = uint32_t(s.sigs.size());

    // Process-unique bake identity. Atomic for the parallel harness;
    // the per-run id *sequence* is deterministic per workload, and ids
    // only ever feed identity compares, so counters stay invariant
    // across --jobs.
    static std::atomic<uint64_t> nextStreamId{1};
    s.streamId = nextStreamId.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

namespace {

/** 1:1 micro-opcode for an unfused IR op (Unimpl when the executor has
 *  no semantics for it — e.g. NewArray, which is always virtualized). */
MOp
directMOp(IrOp op)
{
    switch (op) {
      case IrOp::Label:           return MOp::Label;
      case IrOp::DebugMergePoint: return MOp::DebugMergePoint;
      case IrOp::Jump:            return MOp::Jump;
      case IrOp::Finish:          return MOp::Finish;

      case IrOp::GuardTrue:       return MOp::GuardTrue;
      case IrOp::GuardFalse:      return MOp::GuardFalse;
      case IrOp::GuardClass:      return MOp::GuardClass;
      case IrOp::GuardValue:      return MOp::GuardValue;
      case IrOp::GuardNonnull:    return MOp::GuardNonnull;
      case IrOp::GuardIsnull:     return MOp::GuardIsnull;
      case IrOp::GuardNoOverflow: return MOp::GuardNoOverflow;

      case IrOp::IntAdd:      return MOp::IntAdd;
      case IrOp::IntSub:      return MOp::IntSub;
      case IrOp::IntMul:      return MOp::IntMul;
      case IrOp::IntFloordiv: return MOp::IntFloordiv;
      case IrOp::IntMod:      return MOp::IntMod;
      case IrOp::IntAnd:      return MOp::IntAnd;
      case IrOp::IntOr:       return MOp::IntOr;
      case IrOp::IntXor:      return MOp::IntXor;
      case IrOp::IntLshift:   return MOp::IntLshift;
      case IrOp::IntRshift:   return MOp::IntRshift;
      case IrOp::IntNeg:      return MOp::IntNeg;
      case IrOp::IntAddOvf:   return MOp::IntAddOvf;
      case IrOp::IntSubOvf:   return MOp::IntSubOvf;
      case IrOp::IntMulOvf:   return MOp::IntMulOvf;
      case IrOp::IntLt:       return MOp::IntLt;
      case IrOp::IntLe:       return MOp::IntLe;
      case IrOp::IntEq:       return MOp::IntEq;
      case IrOp::IntNe:       return MOp::IntNe;
      case IrOp::IntGt:       return MOp::IntGt;
      case IrOp::IntGe:       return MOp::IntGe;
      case IrOp::IntIsZero:   return MOp::IntIsZero;
      case IrOp::IntIsTrue:   return MOp::IntIsTrue;

      case IrOp::FloatAdd:       return MOp::FloatAdd;
      case IrOp::FloatSub:       return MOp::FloatSub;
      case IrOp::FloatMul:       return MOp::FloatMul;
      case IrOp::FloatTruediv:   return MOp::FloatTruediv;
      case IrOp::FloatNeg:       return MOp::FloatNeg;
      case IrOp::FloatAbs:       return MOp::FloatAbs;
      case IrOp::FloatLt:        return MOp::FloatLt;
      case IrOp::FloatLe:        return MOp::FloatLe;
      case IrOp::FloatEq:        return MOp::FloatEq;
      case IrOp::FloatNe:        return MOp::FloatNe;
      case IrOp::FloatGt:        return MOp::FloatGt;
      case IrOp::FloatGe:        return MOp::FloatGe;
      case IrOp::CastIntToFloat: return MOp::CastIntToFloat;
      case IrOp::CastFloatToInt: return MOp::CastFloatToInt;

      case IrOp::PtrEq:  return MOp::PtrEq;
      case IrOp::PtrNe:  return MOp::PtrNe;
      case IrOp::SameAs: return MOp::SameAs;

      case IrOp::GetfieldGc:     return MOp::GetfieldGc;
      case IrOp::SetfieldGc:     return MOp::SetfieldGc;
      case IrOp::GetarrayitemGc: return MOp::GetarrayitemGc;
      case IrOp::SetarrayitemGc: return MOp::SetarrayitemGc;
      case IrOp::ArraylenGc:     return MOp::ArraylenGc;
      case IrOp::Strlen:         return MOp::Strlen;
      case IrOp::Strgetitem:     return MOp::Strgetitem;

      case IrOp::NewWithVtable: return MOp::NewWithVtable;

      case IrOp::Call:          return MOp::Call;
      case IrOp::CallPure:      return MOp::CallPure;
      case IrOp::CallMayForce:  return MOp::CallMayForce;
      case IrOp::CallAssembler: return MOp::CallAssembler;

      default:
        return MOp::Unimpl;
    }
}

/** Superinstruction for (first, guard) when the pair is fusible. */
MOp
fusedMOp(const ResOp &first, const ResOp &guard)
{
    // The guard must consume the producing op's result directly; for the
    // overflow guards the pairing is by the architectural flags instead.
    bool consumes =
        first.result >= 0 && guard.args[0] == first.result;

    switch (first.op) {
      case IrOp::IntLt:
        if (!consumes) return MOp::Unimpl;
        if (guard.op == IrOp::GuardTrue)  return MOp::FuseLtGuardTrue;
        if (guard.op == IrOp::GuardFalse) return MOp::FuseLtGuardFalse;
        return MOp::Unimpl;
      case IrOp::IntLe:
        if (!consumes) return MOp::Unimpl;
        if (guard.op == IrOp::GuardTrue)  return MOp::FuseLeGuardTrue;
        if (guard.op == IrOp::GuardFalse) return MOp::FuseLeGuardFalse;
        return MOp::Unimpl;
      case IrOp::IntEq:
        if (!consumes) return MOp::Unimpl;
        if (guard.op == IrOp::GuardTrue)  return MOp::FuseEqGuardTrue;
        if (guard.op == IrOp::GuardFalse) return MOp::FuseEqGuardFalse;
        return MOp::Unimpl;
      case IrOp::IntNe:
        if (!consumes) return MOp::Unimpl;
        if (guard.op == IrOp::GuardTrue)  return MOp::FuseNeGuardTrue;
        if (guard.op == IrOp::GuardFalse) return MOp::FuseNeGuardFalse;
        return MOp::Unimpl;
      case IrOp::IntGt:
        if (!consumes) return MOp::Unimpl;
        if (guard.op == IrOp::GuardTrue)  return MOp::FuseGtGuardTrue;
        if (guard.op == IrOp::GuardFalse) return MOp::FuseGtGuardFalse;
        return MOp::Unimpl;
      case IrOp::IntGe:
        if (!consumes) return MOp::Unimpl;
        if (guard.op == IrOp::GuardTrue)  return MOp::FuseGeGuardTrue;
        if (guard.op == IrOp::GuardFalse) return MOp::FuseGeGuardFalse;
        return MOp::Unimpl;
      case IrOp::IntIsZero:
        if (!consumes) return MOp::Unimpl;
        if (guard.op == IrOp::GuardTrue)  return MOp::FuseIsZeroGuardTrue;
        if (guard.op == IrOp::GuardFalse) return MOp::FuseIsZeroGuardFalse;
        return MOp::Unimpl;
      case IrOp::IntIsTrue:
        if (!consumes) return MOp::Unimpl;
        if (guard.op == IrOp::GuardTrue)  return MOp::FuseIsTrueGuardTrue;
        if (guard.op == IrOp::GuardFalse) return MOp::FuseIsTrueGuardFalse;
        return MOp::Unimpl;

      case IrOp::GetfieldGc:
        if (consumes && guard.op == IrOp::GuardClass)
            return MOp::FuseGetfieldGuardClass;
        return MOp::Unimpl;

      case IrOp::IntAddOvf:
        if (guard.op == IrOp::GuardNoOverflow) return MOp::FuseAddOvfGuard;
        return MOp::Unimpl;
      case IrOp::IntSubOvf:
        if (guard.op == IrOp::GuardNoOverflow) return MOp::FuseSubOvfGuard;
        return MOp::Unimpl;
      case IrOp::IntMulOvf:
        if (guard.op == IrOp::GuardNoOverflow) return MOp::FuseMulOvfGuard;
        return MOp::Unimpl;

      default:
        return MOp::Unimpl;
    }
}

} // namespace

bool
isFusedMOp(MOp m)
{
    return m >= MOp::FuseLtGuardTrue && m <= MOp::FuseMulOvfGuard;
}

const char *
mopName(MOp m)
{
    switch (m) {
      case MOp::Label:              return "label";
      case MOp::DebugMergePoint:    return "debug_merge_point";
      case MOp::Jump:               return "jump";
      case MOp::Finish:             return "finish";
      case MOp::GuardTrue:          return "guard_true";
      case MOp::GuardFalse:         return "guard_false";
      case MOp::GuardClass:         return "guard_class";
      case MOp::GuardValue:         return "guard_value";
      case MOp::GuardNonnull:       return "guard_nonnull";
      case MOp::GuardIsnull:        return "guard_isnull";
      case MOp::GuardNoOverflow:    return "guard_no_overflow";
      case MOp::IntAdd:             return "int_add";
      case MOp::IntSub:             return "int_sub";
      case MOp::IntMul:             return "int_mul";
      case MOp::IntFloordiv:        return "int_floordiv";
      case MOp::IntMod:             return "int_mod";
      case MOp::IntAnd:             return "int_and";
      case MOp::IntOr:              return "int_or";
      case MOp::IntXor:             return "int_xor";
      case MOp::IntLshift:          return "int_lshift";
      case MOp::IntRshift:          return "int_rshift";
      case MOp::IntNeg:             return "int_neg";
      case MOp::IntAddOvf:          return "int_add_ovf";
      case MOp::IntSubOvf:          return "int_sub_ovf";
      case MOp::IntMulOvf:          return "int_mul_ovf";
      case MOp::IntLt:              return "int_lt";
      case MOp::IntLe:              return "int_le";
      case MOp::IntEq:              return "int_eq";
      case MOp::IntNe:              return "int_ne";
      case MOp::IntGt:              return "int_gt";
      case MOp::IntGe:              return "int_ge";
      case MOp::IntIsZero:          return "int_is_zero";
      case MOp::IntIsTrue:          return "int_is_true";
      case MOp::FloatAdd:           return "float_add";
      case MOp::FloatSub:           return "float_sub";
      case MOp::FloatMul:           return "float_mul";
      case MOp::FloatTruediv:       return "float_truediv";
      case MOp::FloatNeg:           return "float_neg";
      case MOp::FloatAbs:           return "float_abs";
      case MOp::FloatLt:            return "float_lt";
      case MOp::FloatLe:            return "float_le";
      case MOp::FloatEq:            return "float_eq";
      case MOp::FloatNe:            return "float_ne";
      case MOp::FloatGt:            return "float_gt";
      case MOp::FloatGe:            return "float_ge";
      case MOp::CastIntToFloat:     return "cast_int_to_float";
      case MOp::CastFloatToInt:     return "cast_float_to_int";
      case MOp::PtrEq:              return "ptr_eq";
      case MOp::PtrNe:              return "ptr_ne";
      case MOp::SameAs:             return "same_as";
      case MOp::GetfieldGc:         return "getfield_gc";
      case MOp::SetfieldGc:         return "setfield_gc";
      case MOp::GetarrayitemGc:     return "getarrayitem_gc";
      case MOp::SetarrayitemGc:     return "setarrayitem_gc";
      case MOp::ArraylenGc:         return "arraylen_gc";
      case MOp::Strlen:             return "strlen";
      case MOp::Strgetitem:         return "strgetitem";
      case MOp::NewWithVtable:      return "new_with_vtable";
      case MOp::Call:               return "call";
      case MOp::CallPure:           return "call_pure";
      case MOp::CallMayForce:       return "call_may_force";
      case MOp::CallAssembler:      return "call_assembler";
      case MOp::FuseLtGuardTrue:    return "int_lt+guard_true";
      case MOp::FuseLtGuardFalse:   return "int_lt+guard_false";
      case MOp::FuseLeGuardTrue:    return "int_le+guard_true";
      case MOp::FuseLeGuardFalse:   return "int_le+guard_false";
      case MOp::FuseEqGuardTrue:    return "int_eq+guard_true";
      case MOp::FuseEqGuardFalse:   return "int_eq+guard_false";
      case MOp::FuseNeGuardTrue:    return "int_ne+guard_true";
      case MOp::FuseNeGuardFalse:   return "int_ne+guard_false";
      case MOp::FuseGtGuardTrue:    return "int_gt+guard_true";
      case MOp::FuseGtGuardFalse:   return "int_gt+guard_false";
      case MOp::FuseGeGuardTrue:    return "int_ge+guard_true";
      case MOp::FuseGeGuardFalse:   return "int_ge+guard_false";
      case MOp::FuseIsZeroGuardTrue:  return "int_is_zero+guard_true";
      case MOp::FuseIsZeroGuardFalse: return "int_is_zero+guard_false";
      case MOp::FuseIsTrueGuardTrue:  return "int_is_true+guard_true";
      case MOp::FuseIsTrueGuardFalse: return "int_is_true+guard_false";
      case MOp::FuseGetfieldGuardClass: return "getfield_gc+guard_class";
      case MOp::FuseAddOvfGuard:    return "int_add_ovf+guard_no_overflow";
      case MOp::FuseSubOvfGuard:    return "int_sub_ovf+guard_no_overflow";
      case MOp::FuseMulOvfGuard:    return "int_mul_ovf+guard_no_overflow";
      case MOp::Unimpl:             return "unimpl";
      case MOp::TrapEnd:            return "trap_end";
      default:                      return "?";
    }
}

MicroProgram
lowerTrace(const Trace &trace, const std::vector<uint32_t> &offsets,
           const std::vector<int32_t> &node_ids, bool fuse,
           uint8_t load_stall, bool annotate)
{
    XLVM_ASSERT(offsets.size() == trace.ops.size(),
                "offsets not parallel to ops");
    XLVM_ASSERT(node_ids.size() == trace.ops.size(),
                "node ids not parallel to ops");

    MicroProgram prog;
    prog.constBase = uint32_t(trace.boxTypes.size());
    prog.numConsts = uint32_t(trace.consts.size());
    prog.numRegs = prog.constBase + prog.numConsts;
    prog.ops.reserve(trace.ops.size() + 1);

    auto decode = [&](int32_t ref) -> uint32_t {
        if (ref >= 0) {
            XLVM_ASSERT(uint32_t(ref) < prog.constBase,
                        "operand box out of range");
            return uint32_t(ref);
        }
        XLVM_ASSERT(isConstRef(ref),
                    "operand is neither a box nor a constant");
        return prog.constBase + uint32_t(constIndex(ref));
    };

    auto decodeArgs = [&](const ResOp &op, MicroOp &m) {
        for (int i = 0; i < kMaxOpArgs; ++i) {
            if (op.args[i] == kNoArg)
                continue;
            m.argMask |= uint8_t(1u << i);
            m.arg[i] = decode(op.args[i]);
        }
    };

    auto decodeSnapshotArgs = [&](const ResOp &op, MicroOp &m) {
        // Jump / CallAssembler pass the anchor snapshot's frames[0]
        // stack as arguments; pre-decode those refs once.
        const Snapshot &snap = trace.snapshots[op.snapshotIdx];
        const std::vector<int32_t> &refs = snap.frames[0].stack;
        m.extraOff = uint32_t(prog.extra.size());
        m.extraLen = uint32_t(refs.size());
        for (int32_t r : refs)
            prog.extra.push_back(decode(r));
    };

    // Deopt-attribution provenance: guards inherit the bytecode pc of
    // the nearest preceding merge point (its aux is the dispatch pc).
    uint32_t lastMergePc = 0;

    for (size_t i = 0; i < trace.ops.size(); ++i) {
        const ResOp &op = trace.ops[i];
        if (op.op == IrOp::DebugMergePoint)
            lastMergePc = op.aux;
        MicroOp m;
        m.aux = op.aux;
        m.expect = op.expect;
        m.snapshotIdx = op.snapshotIdx;
        m.pcOff = offsets[i] * 4;
        m.pcOff2 = m.pcOff; // guards: deopt annot lands at own pc + 8
        m.nodeId = node_ids[i];
        m.origIdx = uint32_t(i);
        m.guardIdx = uint32_t(i);
        m.res = op.result;
        decodeArgs(op, m);

        MOp fused = MOp::Unimpl;
        if (fuse && i + 1 < trace.ops.size())
            fused = fusedMOp(op, trace.ops[i + 1]);
        if (fused != MOp::Unimpl) {
            const ResOp &g = trace.ops[i + 1];
            m.opcode = uint16_t(fused);
            m.aux2 = g.aux;
            m.expect = g.expect;
            m.snapshotIdx = g.snapshotIdx;
            m.pcOff2 = offsets[i + 1] * 4;
            m.nodeId2 = node_ids[i + 1];
            m.guardIdx = uint32_t(i + 1);
            ++prog.fusedPairs;
            prog.guards.push_back(
                {uint32_t(i + 1), g.op, lastMergePc, true, m.opcode});
            prog.ops.push_back(m);
            ++i; // the guard is consumed
            continue;
        }

        m.opcode = uint16_t(directMOp(op.op));
        if (isGuard(op.op))
            prog.guards.push_back(
                {uint32_t(i), op.op, lastMergePc, false, m.opcode});
        switch (op.op) {
          case IrOp::Jump:
            decodeSnapshotArgs(op, m);
            break;
          case IrOp::CallAssembler:
            decodeSnapshotArgs(op, m);
            m.callInsts = uint8_t(loweredInstCount(op.op));
            break;
          case IrOp::Call:
          case IrOp::CallPure:
          case IrOp::CallMayForce:
            m.callInsts = uint8_t(loweredInstCount(op.op));
            break;
          default:
            break;
        }
        if (m.opcode == uint16_t(MOp::Unimpl))
            m.aux2 = uint32_t(op.op); // for the panic message
        prog.ops.push_back(m);
    }

    // Sentinel: a well-formed trace ends in Jump/Finish and never falls
    // through, but a corrupt program should trap loudly, not run wild.
    MicroOp trap;
    trap.opcode = uint16_t(MOp::TrapEnd);
    prog.ops.push_back(trap);

    bakeSimStream(prog, load_stall, annotate);
    return prog;
}

} // namespace jit
} // namespace xlvm
