/**
 * @file
 * Safe-bailout layer: structured trace-abort reasons and a linear-SSA
 * trace verifier.
 *
 * A meta-tracing VM must never die because one recording went wrong —
 * the interpreter is always a correct fallback. Every way a recording
 * or compilation can be discarded is enumerated in AbortReason; the
 * reason code rides the kTraceAborted annotation payload into the
 * tracer, the metrics registry (jit_robustness section) and xlvm-prof
 * provenance, so failure behavior is itself a measurable cross-layer
 * workload dimension.
 *
 * verifyTrace() is the containment check run on every recording before
 * it reaches the backend (and on every optimizer output before it
 * replaces a baseline body): instead of executing a malformed trace and
 * corrupting the heap, the VM aborts with kMalformedTrace /
 * kOptimizerFailure and keeps interpreting.
 */

#ifndef XLVM_JIT_BAILOUT_H
#define XLVM_JIT_BAILOUT_H

#include <cstdint>
#include <string>

#include "jit/ir.h"

namespace xlvm {
namespace jit {

/**
 * Why a recording / compilation was discarded. Stable numbering: the
 * value is the kTraceAborted annotation payload and the index into the
 * per-reason counters in the jit_robustness metrics section.
 */
enum class AbortReason : uint8_t
{
    kNone = 0,          ///< not an abort (payload of pre-v7 streams)
    kTraceTooLong = 1,  ///< recording exceeded maxTraceOps
    kRootEscape = 2,    ///< return escaped the trace root frame
    kUnsupportedOp = 3, ///< bytecode/builtin the recorder cannot model
    kCallAssemblerExit = 4, ///< inner call left through an unexpected exit
    kMalformedTrace = 5,    ///< recording rejected by verifyTrace
    kOptimizerFailure = 6,  ///< optimized body rejected; tier-1 retry
    kCompileBudget = 7,     ///< compile budget cap hit; tier-1 retry
    kTraceCacheFull = 8,    ///< trace cache full and nothing evictable
    kBudgetExhausted = 9,   ///< global instruction budget ran out
    kInjected = 10,         ///< deterministic fault injection fired
    kNumAbortReasons
};

constexpr uint32_t kNumAbortReasons =
    static_cast<uint32_t>(AbortReason::kNumAbortReasons);

/** Stable snake_case name (metrics keys, tooling). */
const char *abortReasonName(AbortReason r);

/** Clamp an annotation payload back to a reason (unknown -> kNone). */
AbortReason abortReasonFromPayload(uint32_t payload);

/** Verdict from verifyTrace. */
struct VerifyResult
{
    bool ok = true;
    AbortReason reason = AbortReason::kNone;
    std::string detail; ///< one-line diagnostic, empty when ok
};

/**
 * Structural verification of a linear SSA trace.
 *
 * Checks, in op order:
 *  - every operand box was defined before use (inputs occupy
 *    [0, numInputs); op results are allocated monotonically, so a
 *    running bound suffices), const refs index the const table, and
 *    virtual refs only appear in snapshots and index trace.virtuals
 *    (fields checked recursively, cycle-safe);
 *  - snapshot indices are in range;
 *  - call_assembler io snapshots have the frames[0]=args /
 *    frames[1]=exit contract / frames[2..]=outer resume shape, where
 *    frames[0] and frames[2..] are USES against the pre-call bound
 *    (the executor materializes outer frames before the frames[1]
 *    writeback on a mismatched exit) and only frames[1] defines new
 *    boxes;
 *  - results are fresh monotone box indices inside boxTypes.
 *
 * @p failed_reason selects what a failure is reported as: the caller
 * passes kMalformedTrace for raw recordings and kOptimizerFailure for
 * optimizer output.
 */
VerifyResult verifyTrace(const Trace &t,
                         AbortReason failed_reason =
                             AbortReason::kMalformedTrace);

} // namespace jit
} // namespace xlvm

#endif // XLVM_JIT_BAILOUT_H
