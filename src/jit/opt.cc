#include "jit/opt.h"

#include <unordered_map>

#include "jit/eval.h"

namespace xlvm {
namespace jit {

namespace {

/** Per-box virtual-object state during optimization. */
struct VState
{
    uint32_t typeId = 0;
    std::unordered_map<uint32_t, int32_t> fields; ///< fieldIdx -> out ref
    bool escaped = false;
};

class Optimizer
{
  public:
    Optimizer(const Trace &in, const OptParams &p, OptStats *stats)
        : in_(in), params(p), stats_(stats)
    {
    }

    Trace run();

  private:
    // ---- ref plumbing ------------------------------------------------

    /** Map an input-trace operand encoding to an output encoding. */
    int32_t
    mapRef(int32_t ref)
    {
        if (ref == kNoArg)
            return kNoArg;
        if (isConstRef(ref))
            return out.addConst(in_.constAt(ref));
        XLVM_ASSERT(ref >= 0 && size_t(ref) < env.size(),
                    "unmapped box ", ref);
        return env[ref];
    }

    bool
    constValOf(int32_t out_ref, RtVal *v)
    {
        if (!isConstRef(out_ref))
            return false;
        *v = out.constAt(out_ref);
        return true;
    }

    int32_t
    defineBox(int32_t in_box, BoxType t)
    {
        int32_t b = out.newBox(t);
        if (in_box >= 0)
            env[in_box] = b;
        return b;
    }

    // ---- virtuals ------------------------------------------------------

    VState *
    virtualOf(int32_t out_ref)
    {
        if (out_ref < 0)
            return nullptr;
        auto it = virtuals.find(out_ref);
        if (it == virtuals.end() || it->second.escaped)
            return nullptr;
        return &it->second;
    }

    /** Force (materialize) a virtual before an escape point. */
    int32_t
    force(int32_t out_ref)
    {
        VState *v = virtualOf(out_ref);
        if (!v)
            return out_ref;
        v->escaped = true;
        if (stats_)
            ++stats_->forcedAllocations;
        // Allocate for real, then initialize the fields. Field values may
        // themselves be virtuals: force them first (cycles terminate
        // because we set escaped above).
        ResOp alloc;
        alloc.op = IrOp::NewWithVtable;
        alloc.aux = v->typeId;
        int32_t real = out.newBox(BoxType::Ref);
        alloc.result = real;
        out.ops.push_back(alloc);
        knownClass[real] = v->typeId;
        for (auto &[idx, val] : v->fields) {
            int32_t fv = force(val);
            ResOp st;
            st.op = IrOp::SetfieldGc;
            st.args[0] = real;
            st.args[1] = fv;
            st.aux = idx;
            out.ops.push_back(st);
        }
        // Alias the virtual box to the real object from here on.
        forced[out_ref] = real;
        return real;
    }

    /** Resolve a possibly-forced virtual alias. */
    int32_t
    resolve(int32_t out_ref)
    {
        auto it = forced.find(out_ref);
        return it == forced.end() ? out_ref : it->second;
    }

    // ---- snapshots -----------------------------------------------------

    int32_t rewriteSnapshotRef(int32_t in_ref,
                               std::unordered_map<int32_t, int32_t> &memo);
    /** Like rewriteSnapshotRef but for refs already in out-space
     *  (virtual field values are stored as out encodings). */
    int32_t rewriteOutRef(int32_t out_ref,
                          std::unordered_map<int32_t, int32_t> &memo);
    int32_t rewriteSnapshot(int32_t in_snap_idx);

    // ---- op handlers -----------------------------------------------------

    void processGuard(const ResOp &op);
    void processHeapOp(const ResOp &op);
    void processCall(const ResOp &op);
    void processCallAssembler(const ResOp &op);
    void processJump(const ResOp &op);
    void passThrough(const ResOp &op, bool clears_heap_cache = false);

    const Trace &in_;
    const OptParams &params;
    OptStats *stats_;
    Trace out;

    std::vector<int32_t> env; ///< in box -> out encoding
    std::unordered_map<int32_t, uint32_t> knownClass; ///< out box -> type
    /** guard_value already established: out box -> pinned bits. */
    std::unordered_map<int32_t, uint64_t> knownValue;
    std::unordered_map<int32_t, VState> virtuals;     ///< out box -> state
    std::unordered_map<int32_t, int32_t> forced;      ///< virtual -> real
    /** Heap cache: (base out box, field) -> out value encoding. */
    std::unordered_map<uint64_t, int32_t> heapCache;
    /** Array cache: (base out box, const index) -> out value encoding. */
    std::unordered_map<uint64_t, int32_t> arrayCache;

    static uint64_t
    hkey(int32_t base, uint32_t field)
    {
        return (uint64_t(uint32_t(base)) << 32) | field;
    }

    void
    invalidateFieldAliases(uint32_t field, int32_t keep_base)
    {
        for (auto it = heapCache.begin(); it != heapCache.end();) {
            if ((it->first & 0xffffffffull) == field &&
                int32_t(it->first >> 32) != keep_base) {
                it = heapCache.erase(it);
            } else {
                ++it;
            }
        }
    }

    void
    clearMemoryCaches()
    {
        heapCache.clear();
        arrayCache.clear();
    }
};

int32_t
Optimizer::rewriteOutRef(int32_t out_ref,
                         std::unordered_map<int32_t, int32_t> &memo)
{
    if (out_ref == kNoArg)
        return kNoArg;
    if (isConstRef(out_ref))
        return out_ref; // already an out-space constant
    int32_t r = resolve(out_ref);
    VState *v = r >= 0 ? virtualOf(r) : nullptr;
    if (!v)
        return r;

    // The box is a live virtual: describe it for the blackhole.
    auto it = memo.find(r);
    if (it != memo.end())
        return makeVirtualRef(it->second);
    int32_t vidx = int32_t(out.virtuals.size());
    memo[r] = vidx;
    out.virtuals.emplace_back();
    out.virtuals[vidx].typeId = v->typeId;
    // Two-phase fill so cyclic virtuals terminate via the memo.
    std::vector<std::pair<uint32_t, int32_t>> fieldRefs;
    for (auto &[idx, val] : v->fields)
        fieldRefs.emplace_back(idx, val);
    for (auto &[idx, val] : fieldRefs) {
        int32_t enc = rewriteOutRef(val, memo);
        VirtualObj &vo = out.virtuals[vidx];
        if (vo.fieldRefs.size() <= idx)
            vo.fieldRefs.resize(idx + 1, kNoArg);
        vo.fieldRefs[idx] = enc;
        vo.numFields = uint32_t(vo.fieldRefs.size());
    }
    return makeVirtualRef(vidx);
}

int32_t
Optimizer::rewriteSnapshotRef(int32_t in_ref,
                              std::unordered_map<int32_t, int32_t> &memo)
{
    if (in_ref == kNoArg)
        return kNoArg;
    if (isConstRef(in_ref))
        return out.addConst(in_.constAt(in_ref));
    return rewriteOutRef(mapRef(in_ref), memo);
}

int32_t
Optimizer::rewriteSnapshot(int32_t in_snap_idx)
{
    if (in_snap_idx < 0)
        return -1;
    const Snapshot &src = in_.snapshots[in_snap_idx];
    Snapshot dst;
    std::unordered_map<int32_t, int32_t> memo;
    for (const FrameSnapshot &f : src.frames) {
        FrameSnapshot nf;
        nf.code = f.code;
        nf.pc = f.pc;
        nf.locals.reserve(f.locals.size());
        for (int32_t r : f.locals)
            nf.locals.push_back(rewriteSnapshotRef(r, memo));
        nf.stack.reserve(f.stack.size());
        for (int32_t r : f.stack)
            nf.stack.push_back(rewriteSnapshotRef(r, memo));
        dst.frames.push_back(std::move(nf));
    }
    out.snapshots.push_back(std::move(dst));
    return int32_t(out.snapshots.size() - 1);
}

void
Optimizer::processGuard(const ResOp &op)
{
    int32_t a = op.args[0] == kNoArg
                    ? kNoArg
                    : resolve(mapRef(op.args[0]));

    if (params.elideGuards) {
        RtVal cv;
        switch (op.op) {
          case IrOp::GuardClass: {
            VState *v = a >= 0 ? virtualOf(a) : nullptr;
            if (v) {
                // Virtual classes are statically known.
                if (stats_)
                    ++stats_->elidedGuards;
                return;
            }
            auto it = a >= 0 ? knownClass.find(a) : knownClass.end();
            if (it != knownClass.end() && it->second == op.aux) {
                if (stats_)
                    ++stats_->elidedGuards;
                return;
            }
            if (constValOf(a, &cv) && params.classOf &&
                params.classOf(cv.r) == op.aux) {
                if (stats_)
                    ++stats_->elidedGuards;
                return;
            }
            break;
          }
          case IrOp::GuardTrue:
            if (constValOf(a, &cv) && cv.i != 0) {
                if (stats_)
                    ++stats_->elidedGuards;
                return;
            }
            break;
          case IrOp::GuardFalse:
            if (constValOf(a, &cv) && cv.i == 0) {
                if (stats_)
                    ++stats_->elidedGuards;
                return;
            }
            break;
          case IrOp::GuardNonnull:
            if (a >= 0 && (virtualOf(a) || knownClass.count(a))) {
                if (stats_)
                    ++stats_->elidedGuards;
                return;
            }
            if (constValOf(a, &cv) && cv.r != nullptr) {
                if (stats_)
                    ++stats_->elidedGuards;
                return;
            }
            break;
          case IrOp::GuardValue: {
            if (constValOf(a, &cv) && cv.i == int64_t(op.expect)) {
                if (stats_)
                    ++stats_->elidedGuards;
                return;
            }
            auto it = a >= 0 ? knownValue.find(a) : knownValue.end();
            if (it != knownValue.end() && it->second == op.expect) {
                if (stats_)
                    ++stats_->elidedGuards;
                return;
            }
            break;
          }
          default:
            break;
        }
    }

    ResOp g = op;
    g.args[0] = a >= 0 ? force(a) : a;
    g.snapshotIdx = rewriteSnapshot(op.snapshotIdx);
    out.ops.push_back(g);

    // Post-guard knowledge.
    if (op.op == IrOp::GuardClass && g.args[0] >= 0)
        knownClass[g.args[0]] = op.aux;
    if (op.op == IrOp::GuardValue && g.args[0] >= 0)
        knownValue[g.args[0]] = op.expect;
}

void
Optimizer::processHeapOp(const ResOp &op)
{
    switch (op.op) {
      case IrOp::NewWithVtable: {
        if (params.virtualize) {
            // Optimistically virtual; forced on escape.
            int32_t vbox = out.newBox(BoxType::Ref);
            env[op.result] = vbox;
            VState vs;
            vs.typeId = op.aux;
            virtuals[vbox] = vs;
            if (stats_)
                ++stats_->removedAllocations;
            return;
        }
        ResOp r = op;
        r.result = defineBox(op.result, BoxType::Ref);
        out.ops.push_back(r);
        knownClass[r.result] = op.aux;
        return;
      }
      case IrOp::GetfieldGc: {
        int32_t base = resolve(mapRef(op.args[0]));
        if (VState *v = virtualOf(base)) {
            auto it = v->fields.find(op.aux);
            int32_t val;
            if (it != v->fields.end()) {
                val = it->second;
            } else {
                // Unset field: typed default (0 / 0.0 / null).
                switch (in_.boxTypes[op.result]) {
                  case BoxType::Int:
                    val = out.addConst(RtVal::fromInt(0));
                    break;
                  case BoxType::Float:
                    val = out.addConst(RtVal::fromFloat(0.0));
                    break;
                  default:
                    val = out.addConst(RtVal::fromRef(nullptr));
                    break;
                }
            }
            env[op.result] = resolve(val);
            if (stats_)
                ++stats_->forwardedLoads;
            return;
        }
        if (params.heapCache) {
            auto it = heapCache.find(hkey(base, op.aux));
            if (it != heapCache.end()) {
                env[op.result] = resolve(it->second);
                if (stats_)
                    ++stats_->forwardedLoads;
                return;
            }
        }
        ResOp r = op;
        r.args[0] = force(base);
        r.result = defineBox(op.result, in_.boxTypes[op.result]);
        out.ops.push_back(r);
        if (params.heapCache)
            heapCache[hkey(r.args[0], op.aux)] = r.result;
        return;
      }
      case IrOp::SetfieldGc: {
        int32_t base = resolve(mapRef(op.args[0]));
        int32_t val = resolve(mapRef(op.args[1]));
        if (VState *v = virtualOf(base)) {
            v->fields[op.aux] = val;
            return;
        }
        ResOp r = op;
        r.args[0] = force(base);
        r.args[1] = force(val);
        out.ops.push_back(r);
        if (params.heapCache) {
            invalidateFieldAliases(op.aux, r.args[0]);
            heapCache[hkey(r.args[0], op.aux)] = r.args[1];
        }
        return;
      }
      case IrOp::GetarrayitemGc: {
        int32_t base = force(resolve(mapRef(op.args[0])));
        int32_t idx = force(resolve(mapRef(op.args[1])));
        if (params.heapCache && isConstRef(idx)) {
            uint64_t key = hkey(base, uint32_t(out.constAt(idx).i));
            auto it = arrayCache.find(key);
            if (it != arrayCache.end()) {
                env[op.result] = resolve(it->second);
                if (stats_)
                    ++stats_->forwardedLoads;
                return;
            }
        }
        ResOp r = op;
        r.args[0] = base;
        r.args[1] = idx;
        r.result = defineBox(op.result, in_.boxTypes[op.result]);
        out.ops.push_back(r);
        if (params.heapCache && isConstRef(idx)) {
            arrayCache[hkey(base, uint32_t(out.constAt(idx).i))] =
                r.result;
        }
        return;
      }
      case IrOp::SetarrayitemGc: {
        ResOp r = op;
        r.args[0] = force(resolve(mapRef(op.args[0])));
        r.args[1] = force(resolve(mapRef(op.args[1])));
        r.args[2] = force(resolve(mapRef(op.args[2])));
        out.ops.push_back(r);
        // Conservative: any array store invalidates the array cache.
        arrayCache.clear();
        return;
      }
      default:
        passThrough(op);
        return;
    }
}

void
Optimizer::processCall(const ResOp &op)
{
    ResOp r = op;
    for (int i = 0; i < kMaxOpArgs; ++i) {
        if (op.args[i] != kNoArg)
            r.args[i] = force(resolve(mapRef(op.args[i])));
    }
    if (op.result >= 0)
        r.result = defineBox(op.result, in_.boxTypes[op.result]);
    out.ops.push_back(r);
    if (op.op != IrOp::CallPure)
        clearMemoryCaches();
}

void
Optimizer::processCallAssembler(const ResOp &op)
{
    // Inputs live in snapshot frames[0].stack; outputs are fresh boxes
    // in frames[1]. Virtuals among the inputs must be forced (the inner
    // trace receives real objects).
    const Snapshot &src = in_.snapshots[op.snapshotIdx];
    Snapshot dst;
    FrameSnapshot inF;
    inF.stack.reserve(src.frames[0].stack.size());
    for (int32_t r : src.frames[0].stack) {
        inF.stack.push_back(r == kNoArg
                                ? kNoArg
                                : force(resolve(mapRef(r))));
    }
    dst.frames.push_back(std::move(inF));

    FrameSnapshot outF;
    outF.code = src.frames[1].code;
    outF.pc = src.frames[1].pc;
    for (int32_t b : src.frames[1].locals)
        outF.locals.push_back(b >= 0 ? defineBox(b, BoxType::Ref) : b);
    for (int32_t b : src.frames[1].stack)
        outF.stack.push_back(b >= 0 ? defineBox(b, BoxType::Ref) : b);
    dst.frames.push_back(std::move(outF));

    // frames[2..]: outer-frame resume state (regular snapshot refs).
    std::unordered_map<int32_t, int32_t> memo;
    for (size_t fi = 2; fi < src.frames.size(); ++fi) {
        const FrameSnapshot &f = src.frames[fi];
        FrameSnapshot nf;
        nf.code = f.code;
        nf.pc = f.pc;
        for (int32_t r : f.locals)
            nf.locals.push_back(rewriteSnapshotRef(r, memo));
        for (int32_t r : f.stack)
            nf.stack.push_back(rewriteSnapshotRef(r, memo));
        dst.frames.push_back(std::move(nf));
    }

    out.snapshots.push_back(std::move(dst));
    ResOp r = op;
    for (int i = 0; i < kMaxOpArgs; ++i)
        r.args[i] = kNoArg;
    r.snapshotIdx = int32_t(out.snapshots.size() - 1);
    out.ops.push_back(r);
    clearMemoryCaches();
}

void
Optimizer::processJump(const ResOp &op)
{
    ResOp r = op;
    // Jump args live in a snapshot frame; rewrite and force virtuals
    // (no cross-iteration virtuals in this implementation).
    const Snapshot &src = in_.snapshots[op.snapshotIdx];
    Snapshot dst;
    FrameSnapshot nf;
    for (int32_t ref : src.frames[0].stack) {
        int32_t v = ref == kNoArg ? kNoArg
                                  : force(resolve(mapRef(ref)));
        nf.stack.push_back(v);
    }
    dst.frames.push_back(std::move(nf));
    out.snapshots.push_back(std::move(dst));
    r.snapshotIdx = int32_t(out.snapshots.size() - 1);
    out.ops.push_back(r);
}

void
Optimizer::passThrough(const ResOp &op, bool clears_heap_cache)
{
    // Pure op: try folding first.
    if (params.foldConstants && isPure(op.op) && op.result >= 0) {
        int32_t a = op.args[0] == kNoArg ? kNoArg
                                         : resolve(mapRef(op.args[0]));
        int32_t b = op.args[1] == kNoArg ? kNoArg
                                         : resolve(mapRef(op.args[1]));
        RtVal av, bv, outv;
        bool aConst = a != kNoArg && constValOf(a, &av);
        bool bConst = b == kNoArg || constValOf(b, &bv);
        if (aConst && bConst && op.args[2] == kNoArg &&
            evalPure(op.op, av, b == kNoArg ? RtVal() : bv, &outv)) {
            env[op.result] = out.addConst(outv);
            if (stats_)
                ++stats_->foldedOps;
            return;
        }
        ResOp r = op;
        r.args[0] = a == kNoArg ? kNoArg : force(a);
        r.args[1] = b == kNoArg ? kNoArg : force(b);
        if (op.args[2] != kNoArg)
            r.args[2] = force(resolve(mapRef(op.args[2])));
        r.result = defineBox(op.result, in_.boxTypes[op.result]);
        out.ops.push_back(r);
        return;
    }

    ResOp r = op;
    for (int i = 0; i < kMaxOpArgs; ++i) {
        if (op.args[i] != kNoArg)
            r.args[i] = force(resolve(mapRef(op.args[i])));
    }
    if (op.result >= 0)
        r.result = defineBox(op.result, in_.boxTypes[op.result]);
    if (op.snapshotIdx >= 0 && !isGuard(op.op) && op.op != IrOp::Jump)
        r.snapshotIdx = rewriteSnapshot(op.snapshotIdx);
    out.ops.push_back(r);
    if (clears_heap_cache)
        clearMemoryCaches();
}

Trace
Optimizer::run()
{
    out.id = in_.id;
    out.isBridge = in_.isBridge;
    out.anchorCode = in_.anchorCode;
    out.anchorPc = in_.anchorPc;
    out.anchorNumLocals = in_.anchorNumLocals;

    env.assign(in_.boxTypes.size(), kNoArg);

    // Inputs map one-to-one.
    for (uint32_t i = 0; i < in_.numInputs; ++i) {
        int32_t b = out.newBox(in_.boxTypes[i]);
        env[i] = b;
    }
    out.numInputs = in_.numInputs;

    if (stats_)
        stats_->inputOps = uint32_t(in_.ops.size());

    for (const ResOp &op : in_.ops) {
        switch (op.op) {
          case IrOp::Label:
            out.ops.push_back(op);
            break;
          case IrOp::Jump:
            processJump(op);
            break;
          case IrOp::Finish:
          case IrOp::DebugMergePoint:
            passThrough(op);
            break;
          case IrOp::NewWithVtable:
          case IrOp::GetfieldGc:
          case IrOp::SetfieldGc:
          case IrOp::GetarrayitemGc:
          case IrOp::SetarrayitemGc:
            processHeapOp(op);
            break;
          case IrOp::Call:
          case IrOp::CallPure:
          case IrOp::CallMayForce:
            processCall(op);
            break;
          case IrOp::CallAssembler:
            processCallAssembler(op);
            break;
          default:
            if (isGuard(op.op)) {
                processGuard(op);
            } else {
                passThrough(op);
            }
            break;
        }
    }

    if (stats_)
        stats_->outputOps = uint32_t(out.ops.size());
    return std::move(out);
}

} // namespace

Trace
optimize(const Trace &in, const OptParams &params, OptStats *stats)
{
    Optimizer opt(in, params, stats);
    return opt.run();
}

} // namespace jit
} // namespace xlvm
