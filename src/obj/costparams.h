/**
 * @file
 * Central cost-model constants.
 *
 * Everything tunable about the modeled machine-level behaviour of the VM
 * stack lives here so calibration experiments and ablation benches have a
 * single knob surface. All counts are synthetic instructions unless noted.
 */

#ifndef XLVM_OBJ_COSTPARAMS_H
#define XLVM_OBJ_COSTPARAMS_H

#include <cstdint>

namespace xlvm {
namespace obj {

struct CostParams
{
    // ---- bytecode dispatch (per dispatch-loop iteration) -------------
    /** Loads in fetch/decode (bytecode fetch, handler table, frame). */
    uint32_t dispatchLoads = 3;
    /** ALU ops in fetch/decode (pc bump, masks, bounds). */
    uint32_t dispatchAlus = 3;

    /**
     * Extra per-dispatch and per-space-op instructions for the
     * RPython-translated interpreter relative to the hand-written C
     * interpreter. Models the paper's observation that CPython is ~2x
     * faster than PyPy-without-JIT (Section V-A): the translated code is
     * less dense and does more redundant work.
     */
    uint32_t rpyDispatchExtraAlus = 5;
    uint32_t rpyDispatchExtraLoads = 3;
    uint32_t rpyOpExtraAlus = 3;
    uint32_t rpyOpExtraLoads = 2;

    /** Per-handler entry overhead (push/pop of interpreter state). */
    uint32_t handlerEntryAlus = 2;

    /** CPython-analog refcount traffic per object operation. */
    uint32_t refcountAlusPerOp = 2;

    // ---- meta-tracing ------------------------------------------------
    /** Meta-interpreter work per recorded IR op (record + bookkeeping). */
    uint32_t tracePerOpInsts = 70;
    /** Optimizer + assembler work per op of the recorded trace. */
    uint32_t optPerOpInsts = 140;
    /**
     * Baseline-tier assembler work per op: the tier-1 compiler lowers
     * the raw recording directly (no const-fold, no guard elision, no
     * heap cache), so its per-op cost is a fraction of optPerOpInsts.
     */
    uint32_t tier1PerOpInsts = 30;

    // ---- deoptimization -----------------------------------------------
    /** Blackhole per reconstructed frame slot. */
    uint32_t blackholePerSlotInsts = 35;
    /** Blackhole fixed overhead per deopt. */
    uint32_t blackholeFixedInsts = 180;

    // ---- garbage collection -------------------------------------------
    double gcPerScannedObjInsts = 9.0;
    double gcPerPromotedByteInsts = 0.5;
    uint32_t gcMinorFixedInsts = 500;
    uint32_t gcMajorFixedInsts = 4000;
    double gcMajorPerByteInsts = 0.12;

    // ---- AOT runtime calls ----------------------------------------------
    /** Call/return sequence overhead at an AOT entry point. */
    uint32_t aotFixedInsts = 18;
    /** Instructions per reported work unit inside AOT functions. */
    uint32_t aotPerUnitInsts = 3;

    // ---- trace execution -------------------------------------------------
    /**
     * Dependence-stall hint attached to loads in interpreter code
     * (pointer chasing) vs JIT code (type-specialized, denser).
     */
    uint8_t interpLoadStall = 2;
    uint8_t jitLoadStall = 1;
};

} // namespace obj
} // namespace xlvm

#endif // XLVM_OBJ_COSTPARAMS_H
