/**
 * @file
 * The object space: every operation the interpreters perform on objects.
 *
 * This is the C++ analog of PyPy's ObjSpace. Each operation has three
 * simultaneous responsibilities:
 *
 *  1. *Execute*: perform the dynamic-language semantics on W_ objects.
 *  2. *Account*: emit the interpreter-level instruction cost into the
 *     simulated core (type-dispatch loads/branches, the operation body,
 *     refcount traffic for the CPython-flavored VM).
 *  3. *Record*: when the meta-interpreter is tracing (env.recorder() is
 *     non-null), record the RPython-level operations — guard_class on the
 *     observed types, getfield/setfield unboxing, int_*_ovf arithmetic,
 *     new_with_vtable boxing, and Call ops into AOT runtime functions —
 *     exactly the "trace the interpreter, not the application" mechanism
 *     of meta-tracing.
 *
 * Non-inlinable operations (dict lookups, string building, bignum
 * arithmetic, list reallocation, set algebra) are routed through
 * ExecEnv::aotCall with work-unit costs from the rt layer; those are the
 * functions that populate Table III.
 */

#ifndef XLVM_OBJ_SPACE_H
#define XLVM_OBJ_SPACE_H

#include <string>
#include <unordered_map>
#include <vector>

#include "obj/execenv.h"
#include "obj/wobject.h"

namespace xlvm {
namespace obj {

/** Comparison selector for ObjSpace::cmp. */
enum class CmpOp : uint8_t { Lt, Le, Eq, Ne, Gt, Ge, Is, IsNot, In, NotIn };

/**
 * Call-semantic tags recorded into Call ops (ResOp::expect) so the trace
 * executor knows which runtime behaviour to perform when the same AOT
 * entry point backs several operations. kSemDefault means "the obvious
 * behaviour of the function id".
 */
enum RtSem : uint32_t
{
    kSemDefault = 0,
    kSemBigIntFloorDiv, ///< divmod -> quotient
    kSemBigIntMod,      ///< divmod -> remainder
    kSemBigIntTrueDiv,  ///< divmod -> float quotient
    kSemNegate,         ///< sub -> unary negate
    kSemFloatMod,       ///< pow entry -> fmod semantics
    kSemPow,            ///< pow entry -> pow semantics
    kSemGenericEq,      ///< streq entry -> objEq semantics
    kSemDictLen,
    kSemDictIterNew,
    kSemDictIterNext,
    kSemSetLen,
    kSemSetIterNew,
    kSemChr,            ///< strgetitem result -> 1-char string
    kSemStrSlice,
    kSemListConcat,
    kSemListRepeat,
    kSemTupleConcat,
    kSemListExtend,
    kSemStr,            ///< generic str() conversion
    kSemContains,       ///< membership test
    kSemListReverse,
    kSemSetDiscard,
    kSemNewList,        ///< allocate empty containers (BUILD_* opcodes)
    kSemNewTuple,       ///< args = up to 4 elements
    kSemNewDict,
    kSemNewSet,
    kSemListToTuple,
    kSemStrStartswith,
    kSemStrEndswith,
    kSemStrCount,
    kSemMakeVector, ///< list of n copies of fill
};

class ObjSpace : public gc::RootProvider
{
  public:
    explicit ObjSpace(ExecEnv &env);
    ~ObjSpace() override;

    ExecEnv &env() { return env_; }
    gc::Heap &heap() { return env_.heap(); }

    // ---- singletons & constructors ------------------------------------
    W_None *none() const { return noneSingleton; }
    W_Bool *trueObj() const { return trueSingleton; }
    W_Bool *falseObj() const { return falseSingleton; }
    W_Object *newBool(bool v);

    W_Int *newInt(int64_t v);
    W_Float *newFloat(double v);
    W_Str *newStr(std::string s);
    W_BigInt *newBigInt(rt::RBigInt v);
    W_List *newList();
    W_Tuple *newTuple(std::vector<W_Object *> items);
    W_Dict *newDict();
    W_Set *newSet();

    /** Interned string (identity-stable; used for attribute names). */
    W_Str *intern(const std::string &s);

    // ---- arithmetic -----------------------------------------------------
    W_Object *add(W_Object *l, W_Object *r);
    W_Object *sub(W_Object *l, W_Object *r);
    W_Object *mul(W_Object *l, W_Object *r);
    W_Object *truediv(W_Object *l, W_Object *r);
    W_Object *floordiv(W_Object *l, W_Object *r);
    W_Object *mod(W_Object *l, W_Object *r);
    W_Object *pow_(W_Object *l, W_Object *r);
    W_Object *neg(W_Object *w);
    W_Object *abs_(W_Object *w);
    W_Object *bitAnd(W_Object *l, W_Object *r);
    W_Object *bitOr(W_Object *l, W_Object *r);
    W_Object *bitXor(W_Object *l, W_Object *r);
    W_Object *lshift(W_Object *l, W_Object *r);
    W_Object *rshift(W_Object *l, W_Object *r);
    W_Object *boolNot(W_Object *w);

    // ---- comparisons ------------------------------------------------------
    W_Object *cmp(CmpOp op, W_Object *l, W_Object *r);

    /**
     * Truthiness + guard: evaluates the object's truth value and, while
     * tracing, records the guard pinning the taken direction.
     */
    bool isTrueAndGuard(W_Object *w);

    // ---- containers -----------------------------------------------------
    W_Object *getitem(W_Object *obj, W_Object *idx);
    void setitem(W_Object *obj, W_Object *idx, W_Object *val);
    W_Object *len(W_Object *obj);
    bool containsBool(W_Object *container, W_Object *item);

    void listAppend(W_List *lst, W_Object *item);
    /** @param idx_enc recorded encoding of the index while tracing. */
    W_Object *listPop(W_List *lst, int64_t idx,
                      int32_t idx_enc = jit::kNoArg);
    void listExtend(W_List *dst, W_Object *iterable);
    W_List *listSlice(W_List *lst, int64_t start, int64_t stop,
                      int32_t start_enc = jit::kNoArg,
                      int32_t stop_enc = jit::kNoArg);
    void listSetSlice(W_List *dst, int64_t start, int64_t stop,
                      W_List *src, int32_t start_enc = jit::kNoArg,
                      int32_t stop_enc = jit::kNoArg);
    void listSort(W_List *lst);
    void listReverse(W_List *lst);
    int64_t listIndexOf(W_List *lst, W_Object *item);
    /** Element access boxing primitives (no cost accounting). */
    W_Object *listGetRaw(W_List *lst, int64_t idx);

    W_Object *dictGet(W_Dict *d, W_Object *key, W_Object *fallback);
    void dictSet(W_Dict *d, W_Object *key, W_Object *val);
    bool dictDel(W_Dict *d, W_Object *key);
    W_List *dictKeys(W_Dict *d);
    W_List *dictValues(W_Dict *d);

    void setAdd(W_Set *s, W_Object *item);
    bool setContains(W_Set *s, W_Object *item);
    W_Set *setDifference(W_Set *a, W_Set *b);
    W_Set *setIntersect(W_Set *a, W_Set *b);
    W_Set *setUnion(W_Set *a, W_Set *b);
    bool setIsSubset(W_Set *a, W_Set *b);
    void setDiscard(W_Set *s, W_Object *item);

    // ---- strings -----------------------------------------------------------
    W_Str *strConcat(W_Str *a, W_Str *b);
    W_Str *strJoin(W_Str *sep, W_List *parts);
    W_List *strSplit(W_Str *s, W_Str *sep);
    W_Str *strReplace(W_Str *s, W_Str *from, W_Str *to);
    W_Object *strFind(W_Str *s, W_Str *needle, int64_t start,
                      int32_t start_enc = jit::kNoArg);
    W_Str *strSlice(W_Str *s, int64_t start, int64_t stop,
                    int32_t start_enc = jit::kNoArg,
                    int32_t stop_enc = jit::kNoArg);
    W_Str *strLower(W_Str *s);
    W_Str *strUpper(W_Str *s);
    W_Str *strStrip(W_Str *s);
    W_Str *strMul(W_Str *s, int64_t n, int32_t n_enc = jit::kNoArg);
    W_Str *str(W_Object *w); ///< str() conversion
    W_Str *repr(W_Object *w);

    // ---- iteration ------------------------------------------------------
    W_Object *iter(W_Object *obj);
    /** Returns nullptr when exhausted (guarded while tracing). */
    W_Object *iterNext(W_Object *it);

    // ---- attributes -----------------------------------------------------
    W_Object *getattr(W_Object *obj, W_Str *name);
    void setattr(W_Object *obj, W_Str *name, W_Object *val);

    // ---- instances ----------------------------------------------------
    W_Instance *instantiate(W_Class *cls);

    // ---- global namespaces (versioned-dict JIT folding) ---------------
    W_Object *getGlobal(W_Dict *globals, W_Str *name);
    void setGlobal(W_Dict *globals, W_Str *name, W_Object *val);

    // ---- conversions ------------------------------------------------------
    int64_t unwrapInt(W_Object *w) const;
    double unwrapFloat(W_Object *w) const;
    const std::string &unwrapStr(W_Object *w) const;
    double toDouble(W_Object *w) const;

    // ---- recording helpers (used by interpreters too) ------------------
    jit::Recorder *rec() { return env_.recorder(); }

    /**
     * Operand-encoding hints. Object-identity lookup alone goes stale
     * for shared objects (None/bool singletons, interned strings): two
     * stack slots may hold the same object now but diverge on later
     * trace entries. The dispatch loop knows each operand's
     * slot-accurate encoding (captured when the value was pushed) and
     * hints it here before invoking the operation; recRef prefers hints.
     */
    void
    hintClear()
    {
        nHints = 0;
    }

    void
    hintOperand(W_Object *w, int32_t enc)
    {
        if (w && enc != jit::kNoArg && nHints < kMaxHints) {
            hintObjs[nHints] = w;
            hintEncs[nHints] = enc;
            hintUsed[nHints] = false;
            ++nHints;
        }
    }

    int32_t recRef(W_Object *w);

    /**
     * Positional hint consumption: value-unboxing uses each operand's
     * hint exactly once, in operand order, so two operands that happen
     * to be the *same* object (e.g. `r + 1` while r holds the interned
     * 1) still read their own slots' encodings.
     */
    int32_t
    takeHint(W_Object *w)
    {
        for (int i = 0; i < nHints; ++i) {
            if (!hintUsed[i] && hintObjs[i] == w) {
                hintUsed[i] = true;
                return hintEncs[i];
            }
        }
        return jit::kNoArg;
    }
    /** guard_class on the observed type. */
    void recGuardType(W_Object *w);
    /** Unbox an int/float/bool value as an IR encoding. */
    int32_t recUnboxInt(W_Object *w);
    int32_t recUnboxFloat(W_Object *w);
    /** Box a fresh W_Int/W_Float and record New+Setfield; maps identity. */
    W_Int *recBoxInt(int64_t v, int32_t enc);
    W_Float *recBoxFloat(double v, int32_t enc);
    /** Record a Call op tagged with its runtime semantic. */
    int32_t recCall(jit::IrOp kind, uint32_t fn_id, jit::BoxType ret,
                    int32_t a = jit::kNoArg, int32_t b = jit::kNoArg,
                    int32_t c = jit::kNoArg, uint32_t sem = kSemDefault,
                    int32_t d = jit::kNoArg);

    // ---- GC roots -----------------------------------------------------
    void forEachRoot(gc::GcVisitor &v) override;

    /** Number of emitted space operations (stats/tests). */
    uint64_t opCount() const { return nOps; }

  private:
    /** Stable code sites for cost emission. */
    enum Site : uint32_t
    {
        kSiteArith = 0,
        kSiteCmp,
        kSiteTruth,
        kSiteItem,
        kSiteIter,
        kSiteAttr,
        kSiteStrOp,
        kSiteDictOp,
        kSiteListOp,
        kSiteSetOp,
        kSiteAlloc,
        kSiteGlobal,
        kSiteConvert,
        kNumSites
    };

    sim::BlockEmitter siteEmitter(Site s);
    /** Binary-dispatch cost pattern: type loads + compare + branch. */
    void emitDispatchCost(sim::BlockEmitter &e, W_Object *l,
                          W_Object *r = nullptr);

    W_Object *intArith(jit::IrOp op, jit::IrOp ovf_op, int64_t a,
                       int64_t b, W_Object *l, W_Object *r);
    W_Object *floatArith(jit::IrOp op, double a, double b, W_Object *l,
                         W_Object *r);
    W_Object *bigIntArith(uint32_t fn, W_Object *l, W_Object *r,
                          uint32_t sem = kSemDefault);
    rt::RBigInt toBigInt(W_Object *w) const;
    W_Object *normalizeBigInt(const rt::RBigInt &v, int32_t enc);

    /** List strategy helpers. */
    void listEnsureStrategyFor(W_List *lst, W_Object *item);
    W_Object *listGet(W_List *lst, int64_t idx);
    void listSet(W_List *lst, int64_t idx, W_Object *val);
    void setEnsureStrategyFor(W_Set *s, W_Object *item);

    ExecEnv &env_;
    W_None *noneSingleton = nullptr;
    W_Bool *trueSingleton = nullptr;
    W_Bool *falseSingleton = nullptr;
    std::unordered_map<std::string, W_Str *> internTable;
    std::vector<uint64_t> sitePcs;
    uint64_t nOps = 0;

    static constexpr int kMaxHints = 8;
    W_Object *hintObjs[kMaxHints] = {};
    int32_t hintEncs[kMaxHints] = {};
    bool hintUsed[kMaxHints] = {};
    int nHints = 0;

    /** While tracing, fresh W_Bool results so guards bind to their op. */
    W_Bool *newTracedBool(bool v, int32_t enc);
};

} // namespace obj
} // namespace xlvm

#endif // XLVM_OBJ_SPACE_H
