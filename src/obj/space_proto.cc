/**
 * @file
 * ObjSpace: dicts, sets, strings, iteration protocol, attributes with
 * maps, versioned-dict globals, and str()/repr().
 */

#include <algorithm>

#include "common/logging.h"
#include "obj/space.h"
#include "rt/rstr.h"

namespace xlvm {
namespace obj {

using jit::BoxType;
using jit::IrOp;
using jit::kNoArg;
using jit::Recorder;

// ------------------------------------------------------------ dict ops

W_Object *
ObjSpace::dictGet(W_Dict *d, W_Object *key, W_Object *fallback)
{
    auto e = siteEmitter(kSiteDictOp);
    emitDispatchCost(e, d, key);
    rt::LookupCost cost;
    W_Object **v = d->table.get(key, objHash(key), &cost);
    env_.aotCall(rt::kAotDictLookup, cost.probes * 4 + 12);
    W_Object *out = v ? *v : fallback;
    if (Recorder *recd = rec()) {
        recd->guardClass(recRef(d), kTypeDict);
        int32_t enc = recCall(IrOp::Call, rt::kAotDictLookup, BoxType::Ref,
                              recRef(d), recRef(key));
        if (v) {
            recd->guardNonnull(enc);
            recd->mapRef(out, enc);
        } else {
            recd->guardIsnull(enc);
        }
    }
    return out;
}

void
ObjSpace::dictSet(W_Dict *d, W_Object *key, W_Object *val)
{
    auto e = siteEmitter(kSiteDictOp);
    emitDispatchCost(e, d, key);
    rt::LookupCost cost;
    size_t slotsBefore = d->table.slotCount();
    bool fresh = d->table.set(key, objHash(key), val, &cost);
    if (fresh)
        heap().noteExtraBytes(40);
    heap().writeBarrier(d);
    env_.aotCall(rt::kAotDictSetitem, cost.probes * 4 + 14);
    if (d->table.slotCount() != slotsBefore)
        env_.aotCall(rt::kAotDictResize, d->table.slotCount());
    if (rec()) {
        rec()->guardClass(recRef(d), kTypeDict);
        recCall(IrOp::Call, rt::kAotDictSetitem, BoxType::Ref, recRef(d),
                recRef(key), recRef(val));
    }
}

bool
ObjSpace::dictDel(W_Dict *d, W_Object *key)
{
    auto e = siteEmitter(kSiteDictOp);
    emitDispatchCost(e, d, key);
    bool removed = d->table.erase(key, objHash(key));
    env_.aotCall(rt::kAotDictDelitem, 4);
    if (Recorder *recd = rec()) {
        recd->guardClass(recRef(d), kTypeDict);
        int32_t enc = recCall(IrOp::Call, rt::kAotDictDelitem,
                              BoxType::Int, recRef(d), recRef(key));
        if (removed)
            recd->guardTrue(enc);
        else
            recd->guardFalse(enc);
    }
    return removed;
}

W_List *
ObjSpace::dictKeys(W_Dict *d)
{
    W_List *out = newList();
    for (const auto &entry : d->table.rawEntries()) {
        if (entry.live)
            listAppend(out, entry.key);
    }
    return out;
}

W_List *
ObjSpace::dictValues(W_Dict *d)
{
    W_List *out = newList();
    for (const auto &entry : d->table.rawEntries()) {
        if (entry.live)
            listAppend(out, entry.value);
    }
    return out;
}

// ------------------------------------------------------------ set ops

void
ObjSpace::setEnsureStrategyFor(W_Set *s, W_Object *item)
{
    SetStrategy want;
    switch (item->typeId()) {
      case kTypeInt:
        want = SetStrategy::Int;
        break;
      case kTypeStr:
        want = SetStrategy::Bytes;
        break;
      default:
        want = SetStrategy::Object;
        break;
    }
    if (s->strategy == SetStrategy::Empty)
        s->strategy = want;
    else if (s->strategy != want)
        s->strategy = SetStrategy::Object;
}

void
ObjSpace::setAdd(W_Set *s, W_Object *item)
{
    auto e = siteEmitter(kSiteSetOp);
    emitDispatchCost(e, s, item);
    setEnsureStrategyFor(s, item);
    rt::LookupCost cost;
    bool fresh = s->table.set(item, objHash(item),
                              static_cast<W_Object *>(noneSingleton),
                              &cost);
    if (fresh)
        heap().noteExtraBytes(40);
    heap().writeBarrier(s);
    env_.aotCall(rt::kAotSetAdd, cost.probes + 2);
    if (rec()) {
        rec()->guardClass(recRef(s), kTypeSet);
        recCall(IrOp::Call, rt::kAotSetAdd, BoxType::Ref, recRef(s),
                recRef(item));
    }
}

bool
ObjSpace::setContains(W_Set *s, W_Object *item)
{
    return containsBool(s, item);
}

void
ObjSpace::setDiscard(W_Set *s, W_Object *item)
{
    auto e = siteEmitter(kSiteSetOp);
    emitDispatchCost(e, s, item);
    s->table.erase(item, objHash(item));
    env_.aotCall(rt::kAotSetAdd, 4);
    if (rec()) {
        rec()->guardClass(recRef(s), kTypeSet);
        recCall(IrOp::Call, rt::kAotSetAdd, BoxType::Ref, recRef(s),
                recRef(item), jit::kNoArg, kSemSetDiscard);
    }
}

W_Set *
ObjSpace::setDifference(W_Set *a, W_Set *b)
{
    auto e = siteEmitter(kSiteSetOp);
    emitDispatchCost(e, a, b);
    W_Set *out = newSet();
    out->strategy = a->strategy;
    uint64_t probes = 0;
    for (const auto &entry : a->table.rawEntries()) {
        if (!entry.live)
            continue;
        rt::LookupCost cost;
        if (!b->table.get(entry.key, entry.hash, &cost)) {
            out->table.set(entry.key, entry.hash,
                           static_cast<W_Object *>(noneSingleton),
                           nullptr);
        }
        probes += cost.probes;
    }
    heap().noteExtraBytes(out->table.size() * 40);
    env_.aotCall(rt::kAotSetDifference, a->table.size() + probes + 1);
    if (Recorder *recd = rec()) {
        recd->guardClass(recRef(a), kTypeSet);
        recd->guardClass(recRef(b), kTypeSet);
        int32_t enc = recCall(IrOp::Call, rt::kAotSetDifference,
                              BoxType::Ref, recRef(a), recRef(b));
        recd->mapRef(out, enc);
    }
    return out;
}

W_Set *
ObjSpace::setIntersect(W_Set *a, W_Set *b)
{
    auto e = siteEmitter(kSiteSetOp);
    emitDispatchCost(e, a, b);
    W_Set *out = newSet();
    out->strategy = a->strategy;
    const W_Set *small = a->table.size() <= b->table.size() ? a : b;
    const W_Set *big = small == a ? b : a;
    for (const auto &entry : small->table.rawEntries()) {
        if (!entry.live)
            continue;
        if (big->table.get(entry.key, entry.hash, nullptr)) {
            out->table.set(entry.key, entry.hash,
                           static_cast<W_Object *>(noneSingleton),
                           nullptr);
        }
    }
    heap().noteExtraBytes(out->table.size() * 40);
    env_.aotCall(rt::kAotSetIntersect, small->table.size() + 1);
    if (Recorder *recd = rec()) {
        recd->guardClass(recRef(a), kTypeSet);
        recd->guardClass(recRef(b), kTypeSet);
        int32_t enc = recCall(IrOp::Call, rt::kAotSetIntersect,
                              BoxType::Ref, recRef(a), recRef(b));
        recd->mapRef(out, enc);
    }
    return out;
}

W_Set *
ObjSpace::setUnion(W_Set *a, W_Set *b)
{
    auto e = siteEmitter(kSiteSetOp);
    emitDispatchCost(e, a, b);
    W_Set *out = newSet();
    out->strategy = a->strategy;
    for (const W_Set *src : {a, b}) {
        for (const auto &entry : src->table.rawEntries()) {
            if (entry.live) {
                out->table.set(entry.key, entry.hash,
                               static_cast<W_Object *>(noneSingleton),
                               nullptr);
            }
        }
    }
    heap().noteExtraBytes(out->table.size() * 40);
    env_.aotCall(rt::kAotSetUnion, a->table.size() + b->table.size() + 1);
    if (Recorder *recd = rec()) {
        recd->guardClass(recRef(a), kTypeSet);
        recd->guardClass(recRef(b), kTypeSet);
        int32_t enc = recCall(IrOp::Call, rt::kAotSetUnion, BoxType::Ref,
                              recRef(a), recRef(b));
        recd->mapRef(out, enc);
    }
    return out;
}

bool
ObjSpace::setIsSubset(W_Set *a, W_Set *b)
{
    auto e = siteEmitter(kSiteSetOp);
    emitDispatchCost(e, a, b);
    bool res = true;
    for (const auto &entry : a->table.rawEntries()) {
        if (entry.live && !b->table.get(entry.key, entry.hash, nullptr)) {
            res = false;
            break;
        }
    }
    env_.aotCall(rt::kAotSetIssubset, a->table.size() + 1);
    if (Recorder *recd = rec()) {
        recd->guardClass(recRef(a), kTypeSet);
        recd->guardClass(recRef(b), kTypeSet);
        int32_t enc = recCall(IrOp::Call, rt::kAotSetIssubset,
                              BoxType::Int, recRef(a), recRef(b));
        if (res)
            recd->guardTrue(enc);
        else
            recd->guardFalse(enc);
    }
    return res;
}

// ------------------------------------------------------------ strings

W_Str *
ObjSpace::strConcat(W_Str *a, W_Str *b)
{
    auto e = siteEmitter(kSiteStrOp);
    emitDispatchCost(e, a, b);
    W_Str *out = newStr(a->value + b->value);
    env_.aotCall(rt::kAotStrConcat, out->value.size() + 1);
    if (Recorder *recd = rec()) {
        int32_t enc = recCall(IrOp::Call, rt::kAotStrConcat, BoxType::Ref,
                              recRef(a), recRef(b));
        recd->mapRef(out, enc);
    }
    return out;
}

W_Str *
ObjSpace::strJoin(W_Str *sep, W_List *parts)
{
    auto e = siteEmitter(kSiteStrOp);
    emitDispatchCost(e, sep, parts);
    std::vector<std::string> pieces;
    pieces.reserve(parts->length());
    for (size_t i = 0; i < parts->length(); ++i) {
        W_Object *p = listGetRaw(parts, int64_t(i));
        pieces.push_back(unwrapStr(p));
    }
    uint64_t cost;
    W_Str *out = newStr(rt::join(sep->value, pieces, &cost));
    env_.aotCall(rt::kAotStrJoin, cost);
    if (Recorder *recd = rec()) {
        recd->guardClass(recRef(sep), kTypeStr);
        recd->guardClass(recRef(parts), kTypeList);
        int32_t enc = recCall(IrOp::Call, rt::kAotStrJoin, BoxType::Ref,
                              recRef(sep), recRef(parts));
        recd->mapRef(out, enc);
    }
    return out;
}

W_List *
ObjSpace::strSplit(W_Str *s, W_Str *sep)
{
    auto e = siteEmitter(kSiteStrOp);
    emitDispatchCost(e, s, sep);
    uint64_t cost;
    XLVM_ASSERT(sep->value.size() == 1, "only 1-char split supported");
    auto parts = rt::split(s->value, sep->value[0], &cost);
    env_.aotCall(rt::kAotStrSplit, cost);
    W_List *out = newList();
    for (auto &p : parts)
        listAppend(out, newStr(std::move(p)));
    if (Recorder *recd = rec()) {
        int32_t enc = recCall(IrOp::Call, rt::kAotStrSplit, BoxType::Ref,
                              recRef(s), recRef(sep));
        recd->mapRef(out, enc);
    }
    return out;
}

W_Str *
ObjSpace::strReplace(W_Str *s, W_Str *from, W_Str *to)
{
    auto e = siteEmitter(kSiteStrOp);
    emitDispatchCost(e, s, from);
    uint64_t cost;
    W_Str *out = newStr(rt::replace(s->value, from->value, to->value,
                                    &cost));
    env_.aotCall(rt::kAotStrReplace, cost);
    if (Recorder *recd = rec()) {
        int32_t enc = recCall(IrOp::Call, rt::kAotStrReplace, BoxType::Ref,
                              recRef(s), recRef(from), recRef(to));
        recd->mapRef(out, enc);
    }
    return out;
}

W_Object *
ObjSpace::strFind(W_Str *s, W_Str *needle, int64_t start,
                  int32_t start_enc)
{
    auto e = siteEmitter(kSiteStrOp);
    emitDispatchCost(e, s, needle);
    uint64_t cost;
    int64_t pos;
    uint32_t fn;
    if (needle->value.size() == 1) {
        pos = rt::findChar(s->value, needle->value[0], start, &cost);
        fn = rt::kAotStrFindChar;
    } else {
        pos = rt::find(s->value, needle->value, start, &cost);
        fn = rt::kAotStrFind;
    }
    env_.aotCall(fn, cost);
    if (Recorder *recd = rec()) {
        int32_t se = start_enc != kNoArg ? start_enc
                                         : recd->constInt(start);
        // Result is a boxed int object (Ref-typed call).
        int32_t enc = recCall(IrOp::Call, fn, BoxType::Ref, recRef(s),
                              recRef(needle), se);
        W_Int *out = newInt(pos);
        recd->mapRef(out, enc);
        return out;
    }
    return newInt(pos);
}

W_Str *
ObjSpace::strSlice(W_Str *s, int64_t start, int64_t stop,
                   int32_t start_enc, int32_t stop_enc)
{
    auto e = siteEmitter(kSiteStrOp);
    emitDispatchCost(e, s);
    int64_t n = int64_t(s->value.size());
    if (start < 0)
        start += n;
    if (stop < 0)
        stop += n;
    start = std::clamp<int64_t>(start, 0, n);
    stop = std::clamp<int64_t>(stop, start, n);
    W_Str *out = newStr(s->value.substr(start, stop - start));
    env_.aotCall(rt::kAotStrSlice, uint64_t(stop - start) + 1);
    if (Recorder *recd = rec()) {
        int32_t se = start_enc != kNoArg ? start_enc
                                         : recd->constInt(start);
        int32_t pe = stop_enc != kNoArg ? stop_enc : recd->constInt(stop);
        int32_t enc = recCall(IrOp::Call, rt::kAotStrSlice, BoxType::Ref,
                              recRef(s), se, pe, kSemStrSlice);
        recd->mapRef(out, enc);
    }
    return out;
}

W_Str *
ObjSpace::strLower(W_Str *s)
{
    uint64_t cost;
    W_Str *out = newStr(rt::toLower(s->value, &cost));
    env_.aotCall(rt::kAotStrLower, cost);
    if (Recorder *recd = rec()) {
        int32_t enc = recCall(IrOp::Call, rt::kAotStrLower, BoxType::Ref,
                              recRef(s));
        recd->mapRef(out, enc);
    }
    return out;
}

W_Str *
ObjSpace::strUpper(W_Str *s)
{
    uint64_t cost;
    W_Str *out = newStr(rt::toUpper(s->value, &cost));
    env_.aotCall(rt::kAotStrUpper, cost);
    if (Recorder *recd = rec()) {
        int32_t enc = recCall(IrOp::Call, rt::kAotStrUpper, BoxType::Ref,
                              recRef(s));
        recd->mapRef(out, enc);
    }
    return out;
}

W_Str *
ObjSpace::strStrip(W_Str *s)
{
    uint64_t cost;
    W_Str *out = newStr(rt::strip(s->value, &cost));
    env_.aotCall(rt::kAotStrStrip, cost);
    if (Recorder *recd = rec()) {
        int32_t enc = recCall(IrOp::Call, rt::kAotStrStrip, BoxType::Ref,
                              recRef(s));
        recd->mapRef(out, enc);
    }
    return out;
}

W_Str *
ObjSpace::strMul(W_Str *s, int64_t n, int32_t n_enc)
{
    std::string out;
    if (n > 0) {
        out.reserve(s->value.size() * n);
        for (int64_t i = 0; i < n; ++i)
            out += s->value;
    }
    env_.aotCall(rt::kAotStrMul, out.size() + 1);
    W_Str *w = newStr(std::move(out));
    if (Recorder *recd = rec()) {
        int32_t ne = n_enc != kNoArg ? n_enc : recd->constInt(n);
        int32_t enc = recCall(IrOp::Call, rt::kAotStrMul, BoxType::Ref,
                              recRef(s), ne);
        recd->mapRef(w, enc);
    }
    return w;
}

// ------------------------------------------------------------ str/repr

W_Str *
ObjSpace::str(W_Object *w)
{
    auto e = siteEmitter(kSiteConvert);
    emitDispatchCost(e, w);
    std::string out;
    uint32_t fn = rt::kAotInt2Dec;
    uint64_t cost = 4;
    switch (w->typeId()) {
      case kTypeStr:
        // Identity specialization: the observed class must be guarded,
        // otherwise later snapshots would embed an unconverted value.
        if (rec())
            recGuardType(w);
        return static_cast<W_Str *>(w);
      case kTypeInt:
        out = rt::int2dec(static_cast<W_Int *>(w)->value, &cost);
        fn = rt::kAotInt2Dec;
        break;
      case kTypeBool:
        out = static_cast<W_Bool *>(w)->value ? "True" : "False";
        break;
      case kTypeNone:
        out = "None";
        break;
      case kTypeFloat: {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.12g", unwrapFloat(w));
        out = buf;
        fn = rt::kAotFloatToStr;
        cost = 20;
        break;
      }
      case kTypeBigInt:
        out = static_cast<W_BigInt *>(w)->value.toDecimal();
        fn = rt::kAotBigIntToStr;
        cost = static_cast<W_BigInt *>(w)->value.toDecimalCostUnits();
        break;
      case kTypeList: {
        auto *lst = static_cast<W_List *>(w);
        out = "[";
        for (size_t i = 0; i < lst->length(); ++i) {
            if (i)
                out += ", ";
            out += repr(listGetRaw(lst, int64_t(i)))->value;
        }
        out += "]";
        fn = rt::kAotStrJoin;
        cost = out.size();
        break;
      }
      case kTypeTuple: {
        auto *t = static_cast<W_Tuple *>(w);
        out = "(";
        for (size_t i = 0; i < t->items.size(); ++i) {
            if (i)
                out += ", ";
            out += repr(t->items[i])->value;
        }
        out += ")";
        fn = rt::kAotStrJoin;
        cost = out.size();
        break;
      }
      case kTypeDict: {
        auto *d = static_cast<W_Dict *>(w);
        out = "{";
        bool first = true;
        for (const auto &entry : d->table.rawEntries()) {
            if (!entry.live)
                continue;
            if (!first)
                out += ", ";
            first = false;
            out += repr(entry.key)->value + ": " +
                   repr(entry.value)->value;
        }
        out += "}";
        fn = rt::kAotStrJoin;
        cost = out.size();
        break;
      }
      case kTypeInstance: {
        auto *inst = static_cast<W_Instance *>(w);
        out = "<" + inst->cls->name + " object>";
        break;
      }
      case kTypeFunc:
        out = "<function " + static_cast<W_Func *>(w)->name + ">";
        break;
      case kTypeClass:
        out = "<class " + static_cast<W_Class *>(w)->name + ">";
        break;
      default:
        out = std::string("<") + typeName(w->typeId()) + ">";
        break;
    }
    env_.aotCall(fn, cost);
    W_Str *res = newStr(std::move(out));
    if (Recorder *recd = rec()) {
        int32_t enc = recCall(IrOp::Call, fn, BoxType::Ref, recRef(w),
                              jit::kNoArg, jit::kNoArg, kSemStr);
        recd->mapRef(res, enc);
    }
    return res;
}

W_Str *
ObjSpace::repr(W_Object *w)
{
    if (w->typeId() == kTypeStr) {
        W_Str *s = static_cast<W_Str *>(w);
        return newStr("'" + s->value + "'");
    }
    return str(w);
}

// ------------------------------------------------------------ iteration

W_Object *
ObjSpace::iter(W_Object *obj)
{
    auto e = siteEmitter(kSiteIter);
    emitDispatchCost(e, obj);
    Recorder *recd = rec();
    switch (obj->typeId()) {
      case kTypeList: {
        W_ListIter *it = heap().alloc<W_ListIter>(obj);
        if (recd) {
            recGuardType(obj);
            int32_t box = recd->emit(IrOp::NewWithVtable, kNoArg, kNoArg,
                                     kNoArg, kTypeListIter);
            recd->emit(IrOp::SetfieldGc, box, recd->constInt(0), kNoArg,
                       kFieldIterIndex);
            recd->emit(IrOp::SetfieldGc, box, recRef(obj), kNoArg,
                       kFieldIterTarget);
            recd->mapRef(it, box);
        }
        return it;
      }
      case kTypeRange: {
        auto *r = static_cast<W_Range *>(obj);
        W_RangeIter *it =
            heap().alloc<W_RangeIter>(r->begin, r->end, r->step);
        if (recd) {
            recGuardType(obj);
            int32_t rref = recRef(obj);
            int32_t b = recd->emitTyped(IrOp::GetfieldGc, BoxType::Int,
                                        rref, kNoArg, kNoArg,
                                        kFieldRangeCur);
            int32_t s2 = recd->emitTyped(IrOp::GetfieldGc, BoxType::Int,
                                         rref, kNoArg, kNoArg,
                                         kFieldRangeStop);
            int32_t st = recd->emitTyped(IrOp::GetfieldGc, BoxType::Int,
                                         rref, kNoArg, kNoArg,
                                         kFieldRangeStep);
            int32_t box = recd->emit(IrOp::NewWithVtable, kNoArg, kNoArg,
                                     kNoArg, kTypeRangeIter);
            recd->emit(IrOp::SetfieldGc, box, b, kNoArg, kFieldRangeCur);
            recd->emit(IrOp::SetfieldGc, box, s2, kNoArg,
                       kFieldRangeStop);
            recd->emit(IrOp::SetfieldGc, box, st, kNoArg,
                       kFieldRangeStep);
            recd->mapRef(it, box);
        }
        return it;
      }
      case kTypeTuple: {
        W_TupleIter *it =
            heap().alloc<W_TupleIter>(static_cast<W_Tuple *>(obj));
        if (recd) {
            recGuardType(obj);
            int32_t box = recd->emit(IrOp::NewWithVtable, kNoArg, kNoArg,
                                     kNoArg, kTypeTupleIter);
            recd->emit(IrOp::SetfieldGc, box, recd->constInt(0), kNoArg,
                       kFieldIterIndex);
            recd->emit(IrOp::SetfieldGc, box, recRef(obj), kNoArg,
                       kFieldIterTarget);
            recd->mapRef(it, box);
        }
        return it;
      }
      case kTypeStr: {
        W_StrIter *it =
            heap().alloc<W_StrIter>(static_cast<W_Str *>(obj));
        if (recd) {
            recGuardType(obj);
            int32_t box = recd->emit(IrOp::NewWithVtable, kNoArg, kNoArg,
                                     kNoArg, kTypeStrIter);
            recd->emit(IrOp::SetfieldGc, box, recd->constInt(0), kNoArg,
                       kFieldIterIndex);
            recd->emit(IrOp::SetfieldGc, box, recRef(obj), kNoArg,
                       kFieldIterTarget);
            recd->mapRef(it, box);
        }
        return it;
      }
      case kTypeDict: {
        W_DictIter *it =
            heap().alloc<W_DictIter>(obj, W_DictIter::Kind::Keys);
        if (recd) {
            recGuardType(obj);
            int32_t enc = recCall(IrOp::Call, rt::kAotDictLookup,
                                  BoxType::Ref, recRef(obj), jit::kNoArg,
                                  jit::kNoArg, kSemDictIterNew);
            recd->mapRef(it, enc);
        }
        return it;
      }
      case kTypeSet: {
        W_DictIter *it =
            heap().alloc<W_DictIter>(obj, W_DictIter::Kind::Keys);
        if (recd) {
            recGuardType(obj);
            int32_t enc = recCall(IrOp::Call, rt::kAotSetContains,
                                  BoxType::Ref, recRef(obj), jit::kNoArg,
                                  jit::kNoArg, kSemSetIterNew);
            recd->mapRef(it, enc);
        }
        return it;
      }
      case kTypeListIter:
      case kTypeRangeIter:
      case kTypeDictIter:
      case kTypeStrIter:
      case kTypeTupleIter:
        if (recd)
            recGuardType(obj);
        return obj;
      default:
        XLVM_FATAL("unsupported iter() on ", typeName(obj->typeId()));
    }
}

W_Object *
ObjSpace::iterNext(W_Object *it)
{
    auto e = siteEmitter(kSiteIter);
    emitDispatchCost(e, it);
    e.branch(true);
    Recorder *recd = rec();

    switch (it->typeId()) {
      case kTypeRangeIter: {
        auto *ri = static_cast<W_RangeIter *>(it);
        bool has = ri->step > 0 ? ri->cur < ri->stop : ri->cur > ri->stop;
        if (recd) {
            recGuardType(it);
            int32_t iref = recRef(it);
            int32_t cur = recd->emitTyped(IrOp::GetfieldGc, BoxType::Int,
                                          iref, kNoArg, kNoArg,
                                          kFieldRangeCur);
            int32_t stop = recd->emitTyped(IrOp::GetfieldGc, BoxType::Int,
                                           iref, kNoArg, kNoArg,
                                           kFieldRangeStop);
            int32_t hasEnc = recd->emit(
                ri->step > 0 ? IrOp::IntLt : IrOp::IntGt, cur, stop);
            if (has)
                recd->guardTrue(hasEnc);
            else
                recd->guardFalse(hasEnc);
            if (!has)
                return nullptr;
            int32_t step = recd->emitTyped(IrOp::GetfieldGc, BoxType::Int,
                                           iref, kNoArg, kNoArg,
                                           kFieldRangeStep);
            int32_t next = recd->emit(IrOp::IntAdd, cur, step);
            recd->emit(IrOp::SetfieldGc, iref, next, kNoArg,
                       kFieldRangeCur);
            int64_t value = ri->cur;
            ri->cur += ri->step;
            return recBoxInt(value, cur);
        }
        if (!has)
            return nullptr;
        int64_t value = ri->cur;
        ri->cur += ri->step;
        return newInt(value);
      }
      case kTypeListIter: {
        auto *li = static_cast<W_ListIter *>(it);
        auto *lst = static_cast<W_List *>(li->list);
        bool has = size_t(li->index) < lst->length();
        if (recd) {
            recGuardType(it);
            int32_t iref = recRef(it);
            int32_t idx = recd->emitTyped(IrOp::GetfieldGc, BoxType::Int,
                                          iref, kNoArg, kNoArg,
                                          kFieldIterIndex);
            int32_t lref = recd->emitTyped(IrOp::GetfieldGc, BoxType::Ref,
                                           iref, kNoArg, kNoArg,
                                           kFieldIterTarget);
            recd->guardClass(lref, kTypeList);
            int32_t strat = recd->emitTyped(IrOp::GetfieldGc,
                                            BoxType::Int, lref, kNoArg,
                                            kNoArg, kFieldStrategy);
            recd->guardValueInt(strat, int64_t(lst->strategy));
            int32_t lenEnc = recd->emitTyped(IrOp::GetfieldGc,
                                             BoxType::Int, lref, kNoArg,
                                             kNoArg, kFieldLength);
            int32_t hasEnc = recd->emit(IrOp::IntLt, idx, lenEnc);
            if (has)
                recd->guardTrue(hasEnc);
            else
                recd->guardFalse(hasEnc);
            if (!has)
                return nullptr;
            BoxType bt = lst->strategy == ListStrategy::Int
                             ? BoxType::Int
                             : lst->strategy == ListStrategy::Float
                                   ? BoxType::Float
                                   : BoxType::Ref;
            int32_t item = recd->emitTyped(IrOp::GetarrayitemGc, bt, lref,
                                           idx);
            int32_t next = recd->emit(IrOp::IntAdd, idx,
                                      recd->constInt(1));
            recd->emit(IrOp::SetfieldGc, iref, next, kNoArg,
                       kFieldIterIndex);
            int64_t i = li->index++;
            switch (lst->strategy) {
              case ListStrategy::Int:
                return recBoxInt(lst->ints[i], item);
              case ListStrategy::Float:
                return recBoxFloat(lst->floats[i], item);
              default: {
                W_Object *w = lst->objs[i];
                recd->mapRef(w, item);
                return w;
              }
            }
        }
        if (!has)
            return nullptr;
        return listGet(lst, li->index++);
      }
      case kTypeTupleIter: {
        auto *ti = static_cast<W_TupleIter *>(it);
        bool has = size_t(ti->index) < ti->tuple->items.size();
        if (recd) {
            recGuardType(it);
            int32_t iref = recRef(it);
            int32_t idx = recd->emitTyped(IrOp::GetfieldGc, BoxType::Int,
                                          iref, kNoArg, kNoArg,
                                          kFieldIterIndex);
            int32_t tref = recd->emitTyped(IrOp::GetfieldGc, BoxType::Ref,
                                           iref, kNoArg, kNoArg,
                                           kFieldIterTarget);
            int32_t lenEnc = recd->emitTyped(IrOp::ArraylenGc,
                                             BoxType::Int, tref);
            int32_t hasEnc = recd->emit(IrOp::IntLt, idx, lenEnc);
            if (has)
                recd->guardTrue(hasEnc);
            else
                recd->guardFalse(hasEnc);
            if (!has)
                return nullptr;
            int32_t item = recd->emitTyped(IrOp::GetarrayitemGc,
                                           BoxType::Ref, tref, idx);
            int32_t next = recd->emit(IrOp::IntAdd, idx,
                                      recd->constInt(1));
            recd->emit(IrOp::SetfieldGc, iref, next, kNoArg,
                       kFieldIterIndex);
            W_Object *w = ti->tuple->items[ti->index++];
            recd->mapRef(w, item);
            return w;
        }
        if (!has)
            return nullptr;
        return ti->tuple->items[ti->index++];
      }
      case kTypeStrIter: {
        auto *si = static_cast<W_StrIter *>(it);
        bool has = size_t(si->index) < si->str->value.size();
        if (recd) {
            recGuardType(it);
            int32_t iref = recRef(it);
            int32_t idx = recd->emitTyped(IrOp::GetfieldGc, BoxType::Int,
                                          iref, kNoArg, kNoArg,
                                          kFieldIterIndex);
            int32_t sref = recd->emitTyped(IrOp::GetfieldGc, BoxType::Ref,
                                           iref, kNoArg, kNoArg,
                                           kFieldIterTarget);
            int32_t lenEnc = recd->emitTyped(IrOp::Strlen, BoxType::Int,
                                             sref);
            int32_t hasEnc = recd->emit(IrOp::IntLt, idx, lenEnc);
            if (has)
                recd->guardTrue(hasEnc);
            else
                recd->guardFalse(hasEnc);
            if (!has)
                return nullptr;
            int32_t ch = recd->emitTyped(IrOp::Strgetitem, BoxType::Int,
                                         sref, idx);
            int32_t next = recd->emit(IrOp::IntAdd, idx,
                                      recd->constInt(1));
            recd->emit(IrOp::SetfieldGc, iref, next, kNoArg,
                       kFieldIterIndex);
            int32_t enc = recCall(IrOp::Call, rt::kAotStrSlice,
                                  BoxType::Ref, sref, ch, jit::kNoArg,
                                  kSemChr);
            W_Str *w = newStr(std::string(1, si->str->value[si->index]));
            ++si->index;
            recd->mapRef(w, enc);
            return w;
        }
        if (!has)
            return nullptr;
        return newStr(std::string(1, si->str->value[si->index++]));
      }
      case kTypeDictIter: {
        auto *di = static_cast<W_DictIter *>(it);
        const auto &entries =
            di->dict->typeId() == kTypeDict
                ? static_cast<W_Dict *>(di->dict)->table.rawEntries()
                : static_cast<W_Set *>(di->dict)->table.rawEntries();
        while (size_t(di->index) < entries.size() &&
               !entries[di->index].live) {
            ++di->index;
        }
        bool has = size_t(di->index) < entries.size();
        env_.aotCall(rt::kAotDictLookup, 2);
        if (recd) {
            recGuardType(it);
            int32_t enc = recCall(IrOp::Call, rt::kAotDictLookup,
                                  BoxType::Ref, recRef(it), jit::kNoArg,
                                  jit::kNoArg, kSemDictIterNext);
            if (has)
                recd->guardNonnull(enc);
            else
                recd->guardIsnull(enc);
            if (!has)
                return nullptr;
            W_Object *w = entries[di->index++].key;
            recd->mapRef(w, enc);
            return w;
        }
        if (!has)
            return nullptr;
        return entries[di->index++].key;
      }
      default:
        XLVM_FATAL("unsupported next() on ", typeName(it->typeId()));
    }
}

// ------------------------------------------------------------ attributes

W_Object *
ObjSpace::getattr(W_Object *obj, W_Str *name)
{
    auto e = siteEmitter(kSiteAttr);
    emitDispatchCost(e, obj, name);
    Recorder *recd = rec();

    XLVM_ASSERT(obj->typeId() == kTypeInstance, "getattr on ",
                typeName(obj->typeId()));
    auto *inst = static_cast<W_Instance *>(obj);

    // 1. Instance attribute through the map (shape).
    int32_t slot = inst->map->indexOf(name);
    if (slot >= 0) {
        e.loadPtr(inst->map, 2);
        W_Object *w = inst->storage[slot];
        if (recd) {
            recGuardType(obj);
            int32_t iref = recRef(obj);
            int32_t mapEnc = recd->emitTyped(IrOp::GetfieldGc,
                                             BoxType::Ref, iref, kNoArg,
                                             kNoArg, kFieldMap);
            recd->guardValueRef(mapEnc, inst->map);
            // Slot index is now a constant: typed array read.
            int32_t enc = recd->emitTyped(IrOp::GetarrayitemGc,
                                          BoxType::Ref, iref,
                                          recd->constInt(slot));
            recd->mapRef(w, enc);
        }
        return w;
    }

    // 2. Class method lookup (bound method creation).
    W_Object *m = inst->cls->findMethod(name);
    env_.aotCall(rt::kAotDictLookup, 4);
    XLVM_ASSERT(m, "AttributeError: ", name->value);
    W_BoundMethod *bm = heap().alloc<W_BoundMethod>(inst, m);
    if (recd) {
        recGuardType(obj);
        int32_t iref = recRef(obj);
        int32_t mapEnc = recd->emitTyped(IrOp::GetfieldGc, BoxType::Ref,
                                         iref, kNoArg, kNoArg, kFieldMap);
        recd->guardValueRef(mapEnc, inst->map);
        // Method lookup folds to a constant behind the map guard (the
        // map determines the class layout in our model); the bound
        // method is a fresh allocation (virtualizable).
        int32_t box = recd->emit(IrOp::NewWithVtable, kNoArg, kNoArg,
                                 kNoArg, kTypeBoundMethod);
        recd->emit(IrOp::SetfieldGc, box, iref, kNoArg, kFieldBoundSelf);
        recd->emit(IrOp::SetfieldGc, box, recd->constRef(m), kNoArg,
                   kFieldBoundFunc);
        recd->mapRef(bm, box);
    }
    return bm;
}

void
ObjSpace::setattr(W_Object *obj, W_Str *name, W_Object *val)
{
    auto e = siteEmitter(kSiteAttr);
    emitDispatchCost(e, obj, name);
    Recorder *recd = rec();
    XLVM_ASSERT(obj->typeId() == kTypeInstance, "setattr on ",
                typeName(obj->typeId()));
    auto *inst = static_cast<W_Instance *>(obj);

    int32_t slot = inst->map->indexOf(name);
    if (slot >= 0) {
        e.storePtrOff(inst, 24);
        if (recd) {
            recGuardType(obj);
            int32_t iref = recRef(obj);
            int32_t mapEnc = recd->emitTyped(IrOp::GetfieldGc,
                                             BoxType::Ref, iref, kNoArg,
                                             kNoArg, kFieldMap);
            recd->guardValueRef(mapEnc, inst->map);
            recd->emit(IrOp::SetarrayitemGc, iref, recd->constInt(slot),
                       recRef(val));
        }
        inst->storage[slot] = val;
        heap().writeBarrier(inst);
        return;
    }

    // New attribute: map transition.
    W_Map *oldMap = inst->map;
    W_Map *newMap = oldMap->withAttr(name, heap());
    if (recd) {
        recGuardType(obj);
        int32_t iref = recRef(obj);
        int32_t mapEnc = recd->emitTyped(IrOp::GetfieldGc, BoxType::Ref,
                                         iref, kNoArg, kNoArg, kFieldMap);
        recd->guardValueRef(mapEnc, oldMap);
        recd->emit(IrOp::SetarrayitemGc, iref,
                   recd->constInt(int32_t(inst->storage.size())),
                   recRef(val));
        recd->emit(IrOp::SetfieldGc, iref, recd->constRef(newMap), kNoArg,
                   kFieldMap);
    }
    inst->map = newMap;
    inst->storage.push_back(val);
    heap().writeBarrier(inst);
    heap().noteExtraBytes(8);
    env_.aotCall(rt::kAotDictLookup, 3);
}

W_Instance *
ObjSpace::instantiate(W_Class *cls)
{
    auto e = siteEmitter(kSiteAlloc);
    emitDispatchCost(e, cls);
    if (!cls->instanceMap) {
        cls->instanceMap = heap().alloc<W_Map>();
        heap().writeBarrier(cls);
    }
    W_Instance *inst = heap().alloc<W_Instance>(cls, cls->instanceMap);
    if (Recorder *recd = rec()) {
        int32_t box = recd->emit(IrOp::NewWithVtable, kNoArg, kNoArg,
                                 kNoArg, kTypeInstance);
        recd->emit(IrOp::SetfieldGc, box,
                   recd->constRef(cls->instanceMap), kNoArg, kFieldMap);
        recd->mapRef(inst, box);
    }
    return inst;
}

// ------------------------------------------------------------ globals

W_Object *
ObjSpace::getGlobal(W_Dict *globals, W_Str *name)
{
    // Module dicts store cells (PyPy's celldict): the dict structure is
    // stable so its version guard folds the *cell* to a constant, and
    // only a getfield of the cell's value remains in the trace. Plain
    // value updates mutate the cell, not the dict.
    auto e = siteEmitter(kSiteGlobal);
    emitDispatchCost(e, globals, name);
    rt::LookupCost cost;
    W_Object **v = globals->table.get(name, name->hash(), &cost);
    env_.aotCall(rt::kAotDictLookup, cost.probes + 2);
    if (!v)
        return nullptr;
    XLVM_ASSERT((*v)->typeId() == kTypeCell, "globals hold cells");
    W_Cell *cell = static_cast<W_Cell *>(*v);
    if (Recorder *recd = rec()) {
        recd->guardClass(recRef(globals), kTypeDict);
        int32_t ver = recd->emitTyped(IrOp::GetfieldGc, BoxType::Int,
                                      recRef(globals), kNoArg, kNoArg,
                                      kFieldDictVersion);
        recd->guardValueInt(ver, int64_t(globals->table.version()));
        int32_t valEnc = recd->emitTyped(IrOp::GetfieldGc, BoxType::Ref,
                                         recd->constRef(cell), kNoArg,
                                         kNoArg, kFieldValue);
        recd->mapRef(cell->value, valEnc);
    }
    return cell->value;
}

void
ObjSpace::setGlobal(W_Dict *globals, W_Str *name, W_Object *val)
{
    auto e = siteEmitter(kSiteGlobal);
    emitDispatchCost(e, globals, name);
    rt::LookupCost cost;
    W_Object **v = globals->table.get(name, name->hash(), &cost);
    env_.aotCall(rt::kAotDictLookup, cost.probes + 2);
    if (v) {
        W_Cell *cell = static_cast<W_Cell *>(*v);
        cell->value = val;
        heap().writeBarrier(cell);
        if (Recorder *recd = rec()) {
            recd->guardClass(recRef(globals), kTypeDict);
            int32_t ver = recd->emitTyped(IrOp::GetfieldGc, BoxType::Int,
                                          recRef(globals), kNoArg,
                                          kNoArg, kFieldDictVersion);
            recd->guardValueInt(ver,
                                int64_t(globals->table.version()));
            recd->emit(IrOp::SetfieldGc, recd->constRef(cell),
                       recRef(val), kNoArg, kFieldValue);
        }
        return;
    }
    // New global: dict structure changes (version bump).
    W_Cell *cell = heap().alloc<W_Cell>(val);
    globals->table.set(name, name->hash(), cell, nullptr);
    heap().writeBarrier(globals);
    heap().noteExtraBytes(48);
    if (rec()) {
        rec()->guardClass(recRef(globals), kTypeDict);
        recCall(IrOp::Call, rt::kAotDictSetitem, BoxType::Ref,
                recRef(globals), recRef(name), recRef(val));
    }
}

} // namespace obj
} // namespace xlvm
