/**
 * @file
 * ObjSpace: containers, strings, iteration, attributes, globals.
 */

#include <algorithm>

#include "common/logging.h"
#include "obj/space.h"
#include "rt/rstr.h"

namespace xlvm {
namespace obj {

using jit::BoxType;
using jit::IrOp;
using jit::kNoArg;
using jit::Recorder;

// ------------------------------------------------------------ list core

void
ObjSpace::listEnsureStrategyFor(W_List *lst, W_Object *item)
{
    ListStrategy want;
    switch (item->typeId()) {
      case kTypeInt:
        want = ListStrategy::Int;
        break;
      case kTypeFloat:
        want = ListStrategy::Float;
        break;
      default:
        want = ListStrategy::Object;
        break;
    }
    if (lst->strategy == want)
        return;
    if (lst->strategy == ListStrategy::Empty) {
        lst->strategy = want;
        return;
    }
    if (lst->strategy == ListStrategy::Object)
        return;
    // Generalize to object strategy: rewrap elements (AOT work).
    size_t n = lst->length();
    env_.aotCall(rt::kAotListStrategySwitch, n + 1);
    std::vector<W_Object *> objs;
    objs.reserve(n);
    if (lst->strategy == ListStrategy::Int) {
        for (int64_t v : lst->ints)
            objs.push_back(newInt(v));
        lst->ints.clear();
    } else {
        for (double v : lst->floats)
            objs.push_back(newFloat(v));
        lst->floats.clear();
    }
    lst->objs = std::move(objs);
    lst->strategy = ListStrategy::Object;
    heap().writeBarrier(lst);
    heap().noteExtraBytes(n * 8);
    // Strategy switches invalidate recorded strategy guards downstream;
    // the recorder keeps going (the old guard simply fails later).
    if (Recorder *r = rec())
        r->unmapRef(lst);
}

W_Object *
ObjSpace::listGet(W_List *lst, int64_t idx)
{
    switch (lst->strategy) {
      case ListStrategy::Int:
        return newInt(lst->ints[idx]);
      case ListStrategy::Float:
        return newFloat(lst->floats[idx]);
      case ListStrategy::Object:
        return lst->objs[idx];
      default:
        XLVM_FATAL("index into empty list");
    }
}

void
ObjSpace::listSet(W_List *lst, int64_t idx, W_Object *val)
{
    listEnsureStrategyFor(lst, val);
    switch (lst->strategy) {
      case ListStrategy::Int:
        lst->ints[idx] = unwrapInt(val);
        break;
      case ListStrategy::Float:
        lst->floats[idx] = unwrapFloat(val);
        break;
      case ListStrategy::Object:
        lst->objs[idx] = val;
        heap().writeBarrier(lst);
        break;
      default:
        XLVM_FATAL("setitem on empty list");
    }
}

// ------------------------------------------------------------ getitem

W_Object *
ObjSpace::getitem(W_Object *obj, W_Object *idx)
{
    auto e = siteEmitter(kSiteItem);
    emitDispatchCost(e, obj, idx);
    Recorder *recd = rec();

    switch (obj->typeId()) {
      case kTypeList: {
        auto *lst = static_cast<W_List *>(obj);
        int64_t i = unwrapInt(idx);
        int64_t n = int64_t(lst->length());
        if (i < 0)
            i += n;
        XLVM_ASSERT(i >= 0 && i < n, "list index out of range");
        e.loadPtrOff(lst, 16, 2);
        if (recd) {
            recGuardType(obj);
            recGuardType(idx);
            int32_t lref = recRef(obj);
            int32_t strat = recd->emitTyped(IrOp::GetfieldGc,
                                            BoxType::Int, lref, kNoArg,
                                            kNoArg, kFieldStrategy);
            recd->guardValueInt(strat, int64_t(lst->strategy));
            int32_t iv = recUnboxInt(idx);
            if (unwrapInt(idx) < 0) {
                int32_t len = recd->emitTyped(IrOp::GetfieldGc,
                                              BoxType::Int, lref, kNoArg,
                                              kNoArg, kFieldLength);
                iv = recd->emit(IrOp::IntAdd, iv, len);
            }
            int32_t len2 = recd->emitTyped(IrOp::GetfieldGc, BoxType::Int,
                                           lref, kNoArg, kNoArg,
                                           kFieldLength);
            int32_t inBound = recd->emit(IrOp::IntLt, iv, len2);
            recd->guardTrue(inBound);
            BoxType bt = lst->strategy == ListStrategy::Int
                             ? BoxType::Int
                             : lst->strategy == ListStrategy::Float
                                   ? BoxType::Float
                                   : BoxType::Ref;
            int32_t item = recd->emitTyped(IrOp::GetarrayitemGc, bt, lref,
                                           iv);
            switch (lst->strategy) {
              case ListStrategy::Int:
                return recBoxInt(lst->ints[i], item);
              case ListStrategy::Float:
                return recBoxFloat(lst->floats[i], item);
              default: {
                W_Object *w = lst->objs[i];
                recd->mapRef(w, item);
                return w;
              }
            }
        }
        return listGet(lst, i);
      }
      case kTypeTuple: {
        auto *t = static_cast<W_Tuple *>(obj);
        int64_t i = unwrapInt(idx);
        if (i < 0)
            i += int64_t(t->items.size());
        XLVM_ASSERT(i >= 0 && size_t(i) < t->items.size(),
                    "tuple index out of range");
        e.loadPtrOff(t, 16, 2);
        W_Object *w = t->items[i];
        if (recd) {
            recGuardType(obj);
            recGuardType(idx);
            int32_t item = recd->emitTyped(IrOp::GetarrayitemGc,
                                           BoxType::Ref, recRef(obj),
                                           recUnboxInt(idx));
            recd->mapRef(w, item);
        }
        return w;
      }
      case kTypeStr: {
        auto *s = static_cast<W_Str *>(obj);
        int64_t i = unwrapInt(idx);
        if (i < 0)
            i += int64_t(s->value.size());
        XLVM_ASSERT(i >= 0 && size_t(i) < s->value.size(),
                    "str index out of range");
        W_Str *w = newStr(std::string(1, s->value[i]));
        if (recd) {
            recGuardType(obj);
            recGuardType(idx);
            int32_t ch = recd->emitTyped(IrOp::Strgetitem, BoxType::Int,
                                         recRef(obj), recUnboxInt(idx));
            // Wrapping the char is a runtime helper call.
            int32_t enc = recCall(IrOp::Call, rt::kAotStrSlice,
                                  BoxType::Ref, recRef(obj), ch,
                                  jit::kNoArg, kSemChr);
            recd->mapRef(w, enc);
        }
        return w;
      }
      case kTypeDict: {
        auto *d = static_cast<W_Dict *>(obj);
        rt::LookupCost cost;
        W_Object **v = d->table.get(idx, objHash(idx), &cost);
        env_.aotCall(rt::kAotDictLookup, cost.probes * 4 + 12);
        XLVM_ASSERT(v, "KeyError");
        if (recd) {
            recGuardType(obj);
            int32_t enc = recCall(IrOp::Call, rt::kAotDictLookup,
                                  BoxType::Ref, recRef(obj), recRef(idx));
            recd->guardNonnull(enc);
            recd->mapRef(*v, enc);
        }
        return *v;
      }
      default:
        XLVM_FATAL("unsupported [] on ", typeName(obj->typeId()));
    }
}

void
ObjSpace::setitem(W_Object *obj, W_Object *idx, W_Object *val)
{
    auto e = siteEmitter(kSiteItem);
    emitDispatchCost(e, obj, idx);
    Recorder *recd = rec();

    switch (obj->typeId()) {
      case kTypeList: {
        auto *lst = static_cast<W_List *>(obj);
        int64_t i = unwrapInt(idx);
        int64_t n = int64_t(lst->length());
        if (i < 0)
            i += n;
        XLVM_ASSERT(i >= 0 && i < n, "list assignment out of range");
        e.storePtrOff(lst, 16);
        ListStrategy before = lst->strategy;
        if (recd) {
            recGuardType(obj);
            recGuardType(idx);
            recGuardType(val);
        }
        listSet(lst, i, val);
        if (recd) {
            if (lst->strategy == before) {
                int32_t lref = recRef(obj);
                int32_t strat = recd->emitTyped(IrOp::GetfieldGc,
                                                BoxType::Int, lref,
                                                kNoArg, kNoArg,
                                                kFieldStrategy);
                recd->guardValueInt(strat, int64_t(before));
                int32_t iv = recUnboxInt(idx);
                int32_t vv;
                switch (lst->strategy) {
                  case ListStrategy::Int:
                    vv = recUnboxInt(val);
                    break;
                  case ListStrategy::Float:
                    vv = recUnboxFloat(val);
                    break;
                  default:
                    vv = recRef(val);
                    break;
                }
                recd->emit(IrOp::SetarrayitemGc, lref, iv, vv);
            } else {
                // Strategy switch: opaque call.
                recCall(IrOp::Call, rt::kAotListStrategySwitch,
                        BoxType::Ref, recRef(obj), recRef(idx),
                        recRef(val));
            }
        }
        return;
      }
      case kTypeDict: {
        dictSet(static_cast<W_Dict *>(obj), idx, val);
        return;
      }
      default:
        XLVM_FATAL("unsupported []= on ", typeName(obj->typeId()));
    }
}

W_Object *
ObjSpace::len(W_Object *obj)
{
    auto e = siteEmitter(kSiteItem);
    emitDispatchCost(e, obj);
    Recorder *recd = rec();
    int64_t n;
    switch (obj->typeId()) {
      case kTypeList:
        n = int64_t(static_cast<W_List *>(obj)->length());
        if (recd) {
            recGuardType(obj);
            int32_t enc = recd->emitTyped(IrOp::GetfieldGc, BoxType::Int,
                                          recRef(obj), kNoArg, kNoArg,
                                          kFieldLength);
            return recBoxInt(n, enc);
        }
        break;
      case kTypeStr:
        n = int64_t(static_cast<W_Str *>(obj)->value.size());
        if (recd) {
            recGuardType(obj);
            int32_t enc = recd->emitTyped(IrOp::Strlen, BoxType::Int,
                                          recRef(obj));
            return recBoxInt(n, enc);
        }
        break;
      case kTypeTuple:
        n = int64_t(static_cast<W_Tuple *>(obj)->items.size());
        if (recd) {
            recGuardType(obj);
            int32_t enc = recd->emitTyped(IrOp::ArraylenGc, BoxType::Int,
                                          recRef(obj));
            return recBoxInt(n, enc);
        }
        break;
      case kTypeDict:
        n = int64_t(static_cast<W_Dict *>(obj)->table.size());
        if (recd) {
            recGuardType(obj);
            int32_t enc = recCall(IrOp::Call, rt::kAotDictLookup,
                                  BoxType::Int, recRef(obj), jit::kNoArg,
                                  jit::kNoArg, kSemDictLen);
            return recBoxInt(n, enc);
        }
        break;
      case kTypeSet:
        n = int64_t(static_cast<W_Set *>(obj)->table.size());
        if (recd) {
            recGuardType(obj);
            int32_t enc = recCall(IrOp::Call, rt::kAotSetContains,
                                  BoxType::Int, recRef(obj), jit::kNoArg,
                                  jit::kNoArg, kSemSetLen);
            return recBoxInt(n, enc);
        }
        break;
      case kTypeRange:
        n = static_cast<W_Range *>(obj)->rtLen();
        break;
      default:
        XLVM_FATAL("unsupported len() on ", typeName(obj->typeId()));
    }
    return newInt(n);
}

bool
ObjSpace::containsBool(W_Object *container, W_Object *item)
{
    auto e = siteEmitter(kSiteItem);
    emitDispatchCost(e, container, item);
    Recorder *recd = rec();
    bool res = false;
    uint32_t fn = rt::kAotListContains;

    switch (container->typeId()) {
      case kTypeList: {
        auto *lst = static_cast<W_List *>(container);
        size_t n = lst->length();
        env_.aotCall(rt::kAotListContains, n + 1);
        fn = rt::kAotListContains;
        for (size_t i = 0; i < n; ++i) {
            W_Object *el = lst->strategy == ListStrategy::Object
                               ? lst->objs[i]
                               : nullptr;
            if (lst->strategy == ListStrategy::Int) {
                if (item->typeId() == kTypeInt &&
                    lst->ints[i] == static_cast<W_Int *>(item)->value) {
                    res = true;
                    break;
                }
            } else if (lst->strategy == ListStrategy::Float) {
                if (item->typeId() == kTypeFloat &&
                    lst->floats[i] ==
                        static_cast<W_Float *>(item)->value) {
                    res = true;
                    break;
                }
            } else if (el && objEq(el, item)) {
                res = true;
                break;
            }
        }
        break;
      }
      case kTypeSet: {
        auto *s = static_cast<W_Set *>(container);
        rt::LookupCost cost;
        res = s->table.get(item, objHash(item), &cost) != nullptr;
        env_.aotCall(rt::kAotSetContains, cost.probes + 2);
        fn = rt::kAotSetContains;
        break;
      }
      case kTypeDict: {
        auto *d = static_cast<W_Dict *>(container);
        rt::LookupCost cost;
        res = d->table.get(item, objHash(item), &cost) != nullptr;
        env_.aotCall(rt::kAotDictLookup, cost.probes + 2);
        fn = rt::kAotDictLookup;
        break;
      }
      case kTypeStr: {
        const std::string &hay =
            static_cast<W_Str *>(container)->value;
        const std::string &needle = unwrapStr(item);
        uint64_t cost;
        res = rt::find(hay, needle, 0, &cost) >= 0;
        env_.aotCall(rt::kAotStrContains, cost);
        fn = rt::kAotStrContains;
        break;
      }
      case kTypeTuple: {
        auto *t = static_cast<W_Tuple *>(container);
        env_.aotCall(rt::kAotListContains, t->items.size() + 1);
        for (W_Object *el : t->items) {
            if (objEq(el, item)) {
                res = true;
                break;
            }
        }
        break;
      }
      default:
        XLVM_FATAL("unsupported `in` on ", typeName(container->typeId()));
    }

    if (recd) {
        recGuardType(container);
        int32_t enc = recCall(IrOp::Call, fn, BoxType::Int,
                              recRef(container), recRef(item),
                              jit::kNoArg, kSemContains);
        // Pin the observed membership outcome.
        if (res)
            recd->guardTrue(enc);
        else
            recd->guardFalse(enc);
    }
    return res;
}

// ------------------------------------------------------------ list ops

void
ObjSpace::listAppend(W_List *lst, W_Object *item)
{
    auto e = siteEmitter(kSiteListOp);
    emitDispatchCost(e, lst, item);
    ListStrategy before = lst->strategy;
    listEnsureStrategyFor(lst, item);
    bool regrow = false;
    switch (lst->strategy) {
      case ListStrategy::Int:
        regrow = lst->ints.size() == lst->ints.capacity();
        lst->ints.push_back(unwrapInt(item));
        break;
      case ListStrategy::Float:
        regrow = lst->floats.size() == lst->floats.capacity();
        lst->floats.push_back(unwrapFloat(item));
        break;
      case ListStrategy::Object:
        regrow = lst->objs.size() == lst->objs.capacity();
        lst->objs.push_back(item);
        heap().writeBarrier(lst);
        break;
      default:
        XLVM_PANIC("append left list empty");
    }
    if (regrow)
        heap().noteExtraBytes(lst->length() * 8);
    env_.aotCall(rt::kAotListAppendGrow, regrow ? lst->length() / 4 + 2 : 2);
    if (Recorder *recd = rec()) {
        recd->guardClass(recRef(lst), kTypeList);
        recGuardType(item);
        (void)before;
        recCall(IrOp::Call, rt::kAotListAppendGrow, BoxType::Ref,
                recRef(lst), recRef(item));
    }
}

W_Object *
ObjSpace::listPop(W_List *lst, int64_t idx, int32_t idx_enc)
{
    auto e = siteEmitter(kSiteListOp);
    emitDispatchCost(e, lst);
    int64_t n = int64_t(lst->length());
    XLVM_ASSERT(n > 0, "pop from empty list");
    if (idx < 0)
        idx += n;
    XLVM_ASSERT(idx >= 0 && idx < n, "pop index out of range");
    W_Object *out = listGet(lst, idx);
    uint64_t moved = uint64_t(n - idx);
    switch (lst->strategy) {
      case ListStrategy::Int:
        lst->ints.erase(lst->ints.begin() + idx);
        break;
      case ListStrategy::Float:
        lst->floats.erase(lst->floats.begin() + idx);
        break;
      case ListStrategy::Object:
        lst->objs.erase(lst->objs.begin() + idx);
        break;
      default:
        break;
    }
    env_.aotCall(rt::kAotListPop, moved + 1);
    if (Recorder *recd = rec()) {
        recd->guardClass(recRef(lst), kTypeList);
        int32_t ie = idx_enc != kNoArg ? idx_enc : recd->constInt(idx);
        int32_t enc = recCall(IrOp::Call, rt::kAotListPop, BoxType::Ref,
                              recRef(lst), ie);
        recd->mapRef(out, enc);
    }
    return out;
}

void
ObjSpace::listExtend(W_List *dst, W_Object *iterable)
{
    auto e = siteEmitter(kSiteListOp);
    emitDispatchCost(e, dst, iterable);
    uint64_t added = 0;
    if (iterable->typeId() == kTypeList) {
        auto *src = static_cast<W_List *>(iterable);
        added = src->length();
        for (size_t i = 0; i < added; ++i) {
            W_Object *item = listGetRaw(src, int64_t(i));
            listEnsureStrategyFor(dst, item);
            switch (dst->strategy) {
              case ListStrategy::Int:
                dst->ints.push_back(unwrapInt(item));
                break;
              case ListStrategy::Float:
                dst->floats.push_back(unwrapFloat(item));
                break;
              case ListStrategy::Object:
                dst->objs.push_back(item);
                break;
              default:
                break;
            }
        }
        if (dst->strategy == ListStrategy::Object)
            heap().writeBarrier(dst);
    } else if (iterable->typeId() == kTypeTuple) {
        auto *src = static_cast<W_Tuple *>(iterable);
        added = src->items.size();
        for (W_Object *item : src->items) {
            listEnsureStrategyFor(dst, item);
            switch (dst->strategy) {
              case ListStrategy::Int:
                dst->ints.push_back(unwrapInt(item));
                break;
              case ListStrategy::Float:
                dst->floats.push_back(unwrapFloat(item));
                break;
              case ListStrategy::Object:
                dst->objs.push_back(item);
                break;
              default:
                break;
            }
        }
        if (dst->strategy == ListStrategy::Object)
            heap().writeBarrier(dst);
    } else {
        XLVM_FATAL("extend with ", typeName(iterable->typeId()));
    }
    heap().noteExtraBytes(added * 8);
    env_.aotCall(rt::kAotListExtend, added + 1);
    if (rec()) {
        recCall(IrOp::Call, rt::kAotListExtend, BoxType::Ref, recRef(dst),
                recRef(iterable), jit::kNoArg, kSemListExtend);
    }
}

W_List *
ObjSpace::listSlice(W_List *lst, int64_t start, int64_t stop,
                    int32_t start_enc, int32_t stop_enc)
{
    int64_t n = int64_t(lst->length());
    if (start < 0)
        start += n;
    if (stop < 0)
        stop += n;
    start = std::clamp<int64_t>(start, 0, n);
    stop = std::clamp<int64_t>(stop, start, n);
    W_List *out = newList();
    out->strategy = lst->strategy;
    switch (lst->strategy) {
      case ListStrategy::Int:
        out->ints.assign(lst->ints.begin() + start,
                         lst->ints.begin() + stop);
        break;
      case ListStrategy::Float:
        out->floats.assign(lst->floats.begin() + start,
                           lst->floats.begin() + stop);
        break;
      case ListStrategy::Object:
        out->objs.assign(lst->objs.begin() + start,
                         lst->objs.begin() + stop);
        break;
      default:
        break;
    }
    heap().noteExtraBytes(uint64_t(stop - start) * 8);
    env_.aotCall(rt::kAotListFillSliced, uint64_t(stop - start) + 1);
    if (Recorder *recd = rec()) {
        recd->guardClass(recRef(lst), kTypeList);
        int32_t se = start_enc != kNoArg ? start_enc
                                         : recd->constInt(start);
        int32_t pe = stop_enc != kNoArg ? stop_enc : recd->constInt(stop);
        int32_t enc = recCall(IrOp::Call, rt::kAotListFillSliced,
                              BoxType::Ref, recRef(lst), se, pe);
        recd->mapRef(out, enc);
    }
    return out;
}

void
ObjSpace::listSetSlice(W_List *dst, int64_t start, int64_t stop,
                       W_List *src, int32_t start_enc, int32_t stop_enc)
{
    int64_t n = int64_t(dst->length());
    if (start < 0)
        start += n;
    if (stop < 0)
        stop += n;
    start = std::clamp<int64_t>(start, 0, n);
    stop = std::clamp<int64_t>(stop, start, n);
    // Normalize both to a common strategy by materializing objects if
    // they differ (rare in the benchmarks).
    if (dst->strategy == src->strategy) {
        switch (dst->strategy) {
          case ListStrategy::Int:
            dst->ints.erase(dst->ints.begin() + start,
                            dst->ints.begin() + stop);
            dst->ints.insert(dst->ints.begin() + start, src->ints.begin(),
                             src->ints.end());
            break;
          case ListStrategy::Float:
            dst->floats.erase(dst->floats.begin() + start,
                              dst->floats.begin() + stop);
            dst->floats.insert(dst->floats.begin() + start,
                               src->floats.begin(), src->floats.end());
            break;
          case ListStrategy::Object:
            dst->objs.erase(dst->objs.begin() + start,
                            dst->objs.begin() + stop);
            dst->objs.insert(dst->objs.begin() + start, src->objs.begin(),
                             src->objs.end());
            heap().writeBarrier(dst);
            break;
          default:
            break;
        }
    } else {
        // Generalize via pops/appends.
        for (int64_t i = stop - 1; i >= start; --i)
            listPop(dst, i);
        for (size_t i = 0; i < src->length(); ++i) {
            W_Object *item = listGetRaw(src, int64_t(i));
            listEnsureStrategyFor(dst, item);
            int64_t at = start + int64_t(i);
            switch (dst->strategy) {
              case ListStrategy::Int:
                dst->ints.insert(dst->ints.begin() + at, unwrapInt(item));
                break;
              case ListStrategy::Float:
                dst->floats.insert(dst->floats.begin() + at,
                                   unwrapFloat(item));
                break;
              case ListStrategy::Object:
                dst->objs.insert(dst->objs.begin() + at, item);
                break;
              default:
                break;
            }
        }
    }
    env_.aotCall(rt::kAotListSetslice,
                 uint64_t(n - start) + src->length() + 1);
    if (Recorder *recd = rec()) {
        int32_t se = start_enc != kNoArg ? start_enc
                                         : recd->constInt(start);
        int32_t pe = stop_enc != kNoArg ? stop_enc : recd->constInt(stop);
        recCall(IrOp::Call, rt::kAotListSetslice, BoxType::Ref,
                recRef(dst), recRef(src), se, kSemDefault, pe);
    }
}

void
ObjSpace::listSort(W_List *lst)
{
    size_t n = lst->length();
    uint64_t units = n ? uint64_t(n) * (64 - __builtin_clzll(n)) : 1;
    env_.aotCall(rt::kAotListSort, units);
    switch (lst->strategy) {
      case ListStrategy::Int:
        std::stable_sort(lst->ints.begin(), lst->ints.end());
        break;
      case ListStrategy::Float:
        std::stable_sort(lst->floats.begin(), lst->floats.end());
        break;
      case ListStrategy::Object: {
        // Sort by generic ordering (ints/floats/strs).
        std::stable_sort(
            lst->objs.begin(), lst->objs.end(),
            [this](W_Object *a, W_Object *b) {
                if (a->typeId() == kTypeStr && b->typeId() == kTypeStr) {
                    return static_cast<W_Str *>(a)->value <
                           static_cast<W_Str *>(b)->value;
                }
                return toDouble(a) < toDouble(b);
            });
        break;
      }
      default:
        break;
    }
    if (rec())
        recCall(IrOp::Call, rt::kAotListSort, BoxType::Ref, recRef(lst));
}

void
ObjSpace::listReverse(W_List *lst)
{
    env_.aotCall(rt::kAotListSetslice, lst->length() + 1);
    switch (lst->strategy) {
      case ListStrategy::Int:
        std::reverse(lst->ints.begin(), lst->ints.end());
        break;
      case ListStrategy::Float:
        std::reverse(lst->floats.begin(), lst->floats.end());
        break;
      case ListStrategy::Object:
        std::reverse(lst->objs.begin(), lst->objs.end());
        break;
      default:
        break;
    }
    if (rec())
        recCall(IrOp::Call, rt::kAotListSetslice, BoxType::Ref,
                recRef(lst), jit::kNoArg, jit::kNoArg, kSemListReverse);
}

int64_t
ObjSpace::listIndexOf(W_List *lst, W_Object *item)
{
    size_t n = lst->length();
    env_.aotCall(rt::kAotListSafeFind, n + 1);
    int64_t found = -1;
    for (size_t i = 0; i < n; ++i) {
        W_Object *el = listGetRaw(lst, int64_t(i));
        if (objEq(el, item)) {
            found = int64_t(i);
            break;
        }
    }
    if (Recorder *recd = rec()) {
        int32_t enc = recCall(IrOp::Call, rt::kAotListSafeFind,
                              BoxType::Int, recRef(lst), recRef(item));
        recd->guardValueInt(enc, found);
    }
    return found;
}

/**
 * Raw element access without boxing cost accounting (internal helper);
 * objects strategy returns the element, prim strategies box fresh.
 */
W_Object *
ObjSpace::listGetRaw(W_List *lst, int64_t idx)
{
    return listGet(lst, idx);
}

} // namespace obj
} // namespace xlvm
