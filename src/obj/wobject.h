/**
 * @file
 * The boxed object model shared by the modeled VMs.
 *
 * Mirrors PyPy's object space: everything is a W_Object with a type id;
 * lists and sets use storage strategies; user instances use maps (shapes)
 * with transition caching; dicts are insertion-ordered with a version
 * counter (the versioned-dict mechanism behind JIT global folding).
 *
 * Field and array accessors (rtGetField / rtSetField / rtGetItem /
 * rtSetItem) give the trace executor raw, dispatch-free access to object
 * state — the reflection layer that getfield_gc / getarrayitem_gc IR ops
 * operate through.
 */

#ifndef XLVM_OBJ_WOBJECT_H
#define XLVM_OBJ_WOBJECT_H

#include <string>
#include <unordered_map>
#include <vector>

#include "gc/heap.h"
#include "jit/ir.h"
#include "rt/rbigint.h"
#include "rt/rdict.h"

namespace xlvm {
namespace obj {

/** Type ids; stable, used in guard_class / new_with_vtable IR. */
enum TypeId : uint16_t
{
    kTypeInvalid = 0,
    kTypeNone,
    kTypeBool,
    kTypeInt,
    kTypeBigInt,
    kTypeFloat,
    kTypeStr,
    kTypeTuple,
    kTypeList,
    kTypeDict,
    kTypeSet,
    kTypeFunc,
    kTypeNativeFunc,
    kTypeBoundMethod,
    kTypeClass,
    kTypeInstance,
    kTypeMap,
    kTypeCell,
    kTypeRange,
    kTypeListIter,
    kTypeRangeIter,
    kTypeDictIter,
    kTypeStrIter,
    kTypeTupleIter,
    kTypeSetIter,
    kTypePair,
    kTypeSymbol,
    kTypeChar,
    kTypeClosure,
    kNumTypeIds
};

const char *typeName(uint16_t type_id);

/** Well-known field indices for rtGetField/rtSetField. */
enum FieldIdx : uint32_t
{
    kFieldValue = 0,      ///< W_Int/W_Float/W_Bool value, W_Cell value
    kFieldMap = 0,        ///< W_Instance map
    kFieldStrategy = 0,   ///< W_List/W_Set strategy
    kFieldLength = 1,     ///< W_List length
    kFieldIterIndex = 0,  ///< iterator position
    kFieldIterTarget = 1, ///< iterator target object
    kFieldRangeCur = 0,
    kFieldRangeStop = 1,
    kFieldRangeStep = 2,
    kFieldCar = 0, ///< W_Pair
    kFieldCdr = 1,
    kFieldDictVersion = 7, ///< W_Dict version counter
    kFieldBoundSelf = 0,   ///< W_BoundMethod
    kFieldBoundFunc = 1,
};

class W_Object : public gc::GcObject
{
  public:
    explicit W_Object(uint16_t type_id) { gcTypeId = type_id; }

    uint16_t typeId() const { return gcTypeId; }

    /** Raw field access for the trace executor. */
    virtual jit::RtVal rtGetField(uint32_t idx) const;
    virtual void rtSetField(uint32_t idx, const jit::RtVal &v,
                            gc::Heap &heap);
    /** Raw array-element access for the trace executor. */
    virtual jit::RtVal rtGetItem(int64_t idx) const;
    virtual void rtSetItem(int64_t idx, const jit::RtVal &v,
                           gc::Heap &heap);
    virtual int64_t rtLen() const;

    // GcObject defaults: leaf object.
    void traceRefs(gc::GcVisitor &) override {}
    size_t heapBytes() const override { return 32; }
};

// ----------------------------------------------------------------- atoms

class W_None : public W_Object
{
  public:
    W_None() : W_Object(kTypeNone) {}
};

class W_Bool : public W_Object
{
  public:
    explicit W_Bool(bool v) : W_Object(kTypeBool), value(v ? 1 : 0) {}
    jit::RtVal rtGetField(uint32_t idx) const override;
    void rtSetField(uint32_t idx, const jit::RtVal &v,
                    gc::Heap &heap) override;
    int64_t value;
};

class W_Int : public W_Object
{
  public:
    explicit W_Int(int64_t v = 0) : W_Object(kTypeInt), value(v) {}
    jit::RtVal rtGetField(uint32_t idx) const override;
    void rtSetField(uint32_t idx, const jit::RtVal &v,
                    gc::Heap &heap) override;
    int64_t value;
};

class W_BigInt : public W_Object
{
  public:
    explicit W_BigInt(rt::RBigInt v = rt::RBigInt())
        : W_Object(kTypeBigInt), value(std::move(v))
    {
    }
    size_t
    heapBytes() const override
    {
        return sizeof(W_BigInt) + value.numDigits() * 4;
    }
    rt::RBigInt value;
};

class W_Float : public W_Object
{
  public:
    explicit W_Float(double v = 0.0) : W_Object(kTypeFloat), value(v) {}
    jit::RtVal rtGetField(uint32_t idx) const override;
    void rtSetField(uint32_t idx, const jit::RtVal &v,
                    gc::Heap &heap) override;
    double value;
};

class W_Str : public W_Object
{
  public:
    explicit W_Str(std::string v = "") : W_Object(kTypeStr),
                                          value(std::move(v))
    {
    }
    size_t
    heapBytes() const override
    {
        return sizeof(W_Str) + value.size();
    }
    int64_t rtLen() const override { return int64_t(value.size()); }
    jit::RtVal rtGetItem(int64_t idx) const override;

    /** Lazily computed, cached hash (ll_strhash semantics). */
    uint64_t hash() const;

    std::string value;

  private:
    mutable uint64_t cachedHash = 0;
};

class W_Symbol : public W_Object
{
  public:
    explicit W_Symbol(std::string n) : W_Object(kTypeSymbol),
                                        name(std::move(n))
    {
    }
    size_t
    heapBytes() const override
    {
        return sizeof(W_Symbol) + name.size();
    }
    std::string name;
};

class W_Char : public W_Object
{
  public:
    explicit W_Char(char v) : W_Object(kTypeChar), value(v) {}
    jit::RtVal rtGetField(uint32_t idx) const override;
    char value;
};

// --------------------------------------------------------------- containers

class W_Tuple : public W_Object
{
  public:
    explicit W_Tuple(std::vector<W_Object *> it = {})
        : W_Object(kTypeTuple), items(std::move(it))
    {
    }
    void traceRefs(gc::GcVisitor &v) override;
    size_t
    heapBytes() const override
    {
        return sizeof(W_Tuple) + items.size() * 8;
    }
    int64_t rtLen() const override { return int64_t(items.size()); }
    jit::RtVal rtGetItem(int64_t idx) const override;

    std::vector<W_Object *> items;
};

/** List storage strategies (PyPy list strategies). */
enum class ListStrategy : uint8_t
{
    Empty = 0,
    Int,
    Float,
    Object
};

class W_List : public W_Object
{
  public:
    W_List() : W_Object(kTypeList) {}

    void traceRefs(gc::GcVisitor &v) override;
    size_t heapBytes() const override;

    jit::RtVal rtGetField(uint32_t idx) const override;
    int64_t rtLen() const override;
    jit::RtVal rtGetItem(int64_t idx) const override;
    void rtSetItem(int64_t idx, const jit::RtVal &v,
                   gc::Heap &heap) override;

    ListStrategy strategy = ListStrategy::Empty;
    std::vector<int64_t> ints;
    std::vector<double> floats;
    std::vector<W_Object *> objs;

    size_t
    length() const
    {
        switch (strategy) {
          case ListStrategy::Empty:
            return 0;
          case ListStrategy::Int:
            return ints.size();
          case ListStrategy::Float:
            return floats.size();
          case ListStrategy::Object:
            return objs.size();
        }
        return 0;
    }
};

/** Object hashing/equality for dict and set keys. */
uint64_t objHash(const W_Object *o);
bool objEq(const W_Object *a, const W_Object *b);

struct WKeyTraits
{
    static bool
    equal(W_Object *a, W_Object *b)
    {
        return objEq(a, b);
    }
};

class W_Dict : public W_Object
{
  public:
    W_Dict() : W_Object(kTypeDict) {}

    void traceRefs(gc::GcVisitor &v) override;
    size_t heapBytes() const override;
    int64_t rtLen() const override { return int64_t(table.size()); }
    jit::RtVal rtGetField(uint32_t idx) const override;

    rt::ROrderedDict<W_Object *, W_Object *, WKeyTraits> table;
};

/** Set storage strategies (PyPy set strategies). */
enum class SetStrategy : uint8_t
{
    Empty = 0,
    Int,
    Bytes, ///< string elements
    Object
};

class W_Set : public W_Object
{
  public:
    W_Set() : W_Object(kTypeSet) {}
    void traceRefs(gc::GcVisitor &v) override;
    size_t heapBytes() const override;
    int64_t rtLen() const override { return int64_t(table.size()); }
    jit::RtVal rtGetField(uint32_t idx) const override;

    SetStrategy strategy = SetStrategy::Empty;
    rt::ROrderedDict<W_Object *, W_Object *, WKeyTraits> table;
};

// --------------------------------------------------------------- callables

class W_Func : public W_Object
{
  public:
    W_Func(void *code_obj, W_Dict *globals_dict, std::string fn_name)
        : W_Object(kTypeFunc), code(code_obj), globals(globals_dict),
          name(std::move(fn_name))
    {
    }
    void traceRefs(gc::GcVisitor &v) override;
    size_t
    heapBytes() const override
    {
        return sizeof(W_Func) + name.size();
    }

    void *code;      ///< language-layer code object (not GC-managed)
    W_Dict *globals; ///< module globals
    std::string name;
    std::vector<W_Object *> defaults;
};

class W_NativeFunc : public W_Object
{
  public:
    W_NativeFunc(uint32_t builtin, std::string fn_name)
        : W_Object(kTypeNativeFunc), builtinId(builtin),
          name(std::move(fn_name))
    {
    }
    size_t
    heapBytes() const override
    {
        return sizeof(W_NativeFunc) + name.size();
    }
    uint32_t builtinId;
    std::string name;
};

class W_BoundMethod : public W_Object
{
  public:
    W_BoundMethod(W_Object *s, W_Object *fn)
        : W_Object(kTypeBoundMethod), self(s), func(fn)
    {
    }
    void traceRefs(gc::GcVisitor &v) override;
    jit::RtVal rtGetField(uint32_t idx) const override;
    void rtSetField(uint32_t idx, const jit::RtVal &v,
                    gc::Heap &heap) override;

    W_Object *self;
    W_Object *func;
};

// --------------------------------------------------------------- instances

class W_Class;

/** Shape of a set of attribute names (PyPy map / V8 hidden class). */
class W_Map : public W_Object
{
  public:
    W_Map() : W_Object(kTypeMap) {}
    void traceRefs(gc::GcVisitor &v) override;
    size_t heapBytes() const override;

    /** Attribute slot index or -1. */
    int32_t indexOf(W_Str *name) const;
    /** Map after adding @p name (cached transition). */
    W_Map *withAttr(W_Str *name, gc::Heap &heap);

    std::vector<W_Str *> attrNames; ///< slot order
    std::unordered_map<W_Str *, W_Map *> transitions;
    /** Class whose instances use this map family (for deopt rebuild). */
    W_Class *ownerClass = nullptr;
};

class W_Class : public W_Object
{
  public:
    explicit W_Class(std::string class_name)
        : W_Object(kTypeClass), name(std::move(class_name))
    {
    }
    void traceRefs(gc::GcVisitor &v) override;
    size_t heapBytes() const override;

    /** Method lookup through the MRO (single inheritance). */
    W_Object *findMethod(W_Str *name) const;

    std::string name;
    W_Class *base = nullptr;
    rt::ROrderedDict<W_Object *, W_Object *, WKeyTraits> methods;
    /** Version for JIT method-lookup folding. */
    uint64_t version = 0;
    /** Root map for fresh instances of this class. */
    W_Map *instanceMap = nullptr;
};

class W_Instance : public W_Object
{
  public:
    explicit W_Instance(W_Class *c, W_Map *m)
        : W_Object(kTypeInstance), cls(c), map(m)
    {
    }
    void traceRefs(gc::GcVisitor &v) override;
    size_t
    heapBytes() const override
    {
        return sizeof(W_Instance) + storage.size() * 8;
    }
    jit::RtVal rtGetField(uint32_t idx) const override;
    void rtSetField(uint32_t idx, const jit::RtVal &v,
                    gc::Heap &heap) override;
    jit::RtVal rtGetItem(int64_t idx) const override;
    void rtSetItem(int64_t idx, const jit::RtVal &v,
                   gc::Heap &heap) override;

    W_Class *cls;
    W_Map *map;
    std::vector<W_Object *> storage;
};

// --------------------------------------------------------------- iteration

class W_Cell : public W_Object
{
  public:
    explicit W_Cell(W_Object *v = nullptr) : W_Object(kTypeCell), value(v)
    {
    }
    void traceRefs(gc::GcVisitor &v) override;
    jit::RtVal rtGetField(uint32_t idx) const override;
    void rtSetField(uint32_t idx, const jit::RtVal &v,
                    gc::Heap &heap) override;
    W_Object *value;
};

class W_Range : public W_Object
{
  public:
    W_Range(int64_t b, int64_t e, int64_t s)
        : W_Object(kTypeRange), begin(b), end(e), step(s)
    {
    }
    jit::RtVal rtGetField(uint32_t idx) const override;
    int64_t rtLen() const override;
    int64_t begin, end, step;
};

class W_RangeIter : public W_Object
{
  public:
    W_RangeIter(int64_t c, int64_t e, int64_t s)
        : W_Object(kTypeRangeIter), cur(c), stop(e), step(s)
    {
    }
    jit::RtVal rtGetField(uint32_t idx) const override;
    void rtSetField(uint32_t idx, const jit::RtVal &v,
                    gc::Heap &heap) override;
    int64_t cur, stop, step;
};

class W_ListIter : public W_Object
{
  public:
    explicit W_ListIter(W_Object *target) : W_Object(kTypeListIter),
                                             list(target)
    {
    }
    void traceRefs(gc::GcVisitor &v) override;
    jit::RtVal rtGetField(uint32_t idx) const override;
    void rtSetField(uint32_t idx, const jit::RtVal &v,
                    gc::Heap &heap) override;
    int64_t index = 0;
    W_Object *list;
};

class W_TupleIter : public W_Object
{
  public:
    explicit W_TupleIter(W_Tuple *target) : W_Object(kTypeTupleIter),
                                             tuple(target)
    {
    }
    void traceRefs(gc::GcVisitor &v) override;
    jit::RtVal rtGetField(uint32_t idx) const override;
    void rtSetField(uint32_t idx, const jit::RtVal &v,
                    gc::Heap &heap) override;
    int64_t index = 0;
    W_Tuple *tuple;
};

class W_StrIter : public W_Object
{
  public:
    explicit W_StrIter(W_Str *target) : W_Object(kTypeStrIter), str(target)
    {
    }
    void traceRefs(gc::GcVisitor &v) override;
    jit::RtVal rtGetField(uint32_t idx) const override;
    void rtSetField(uint32_t idx, const jit::RtVal &v,
                    gc::Heap &heap) override;
    int64_t index = 0;
    W_Str *str;
};

/** Iterates dict keys (or set elements) in insertion order. */
class W_DictIter : public W_Object
{
  public:
    enum class Kind : uint8_t { Keys, Values, Items };
    W_DictIter(W_Object *target, Kind k)
        : W_Object(kTypeDictIter), dict(target), kind(k)
    {
    }
    void traceRefs(gc::GcVisitor &v) override;
    int64_t index = 0;
    W_Object *dict; ///< W_Dict or W_Set
    Kind kind;
};

// --------------------------------------------------------------- scheme

class W_Pair : public W_Object
{
  public:
    W_Pair(W_Object *a, W_Object *d) : W_Object(kTypePair), car(a), cdr(d)
    {
    }
    void traceRefs(gc::GcVisitor &v) override;
    jit::RtVal rtGetField(uint32_t idx) const override;
    void rtSetField(uint32_t idx, const jit::RtVal &v,
                    gc::Heap &heap) override;
    W_Object *car;
    W_Object *cdr;
};

class W_Closure : public W_Object
{
  public:
    W_Closure(void *lambda_node, W_Object *environment)
        : W_Object(kTypeClosure), lambda(lambda_node), env(environment)
    {
    }
    void traceRefs(gc::GcVisitor &v) override;
    void *lambda;  ///< language-layer AST node
    W_Object *env; ///< environment chain (language-defined)
};

} // namespace obj
} // namespace xlvm

#endif // XLVM_OBJ_WOBJECT_H
