#include "obj/wobject.h"

#include "common/logging.h"
#include "rt/rstr.h"

namespace xlvm {
namespace obj {

using jit::RtVal;

const char *
typeName(uint16_t type_id)
{
    switch (type_id) {
      case kTypeNone: return "NoneType";
      case kTypeBool: return "bool";
      case kTypeInt: return "int";
      case kTypeBigInt: return "long";
      case kTypeFloat: return "float";
      case kTypeStr: return "str";
      case kTypeTuple: return "tuple";
      case kTypeList: return "list";
      case kTypeDict: return "dict";
      case kTypeSet: return "set";
      case kTypeFunc: return "function";
      case kTypeNativeFunc: return "builtin";
      case kTypeBoundMethod: return "method";
      case kTypeClass: return "type";
      case kTypeInstance: return "object";
      case kTypeMap: return "map";
      case kTypeCell: return "cell";
      case kTypeRange: return "range";
      case kTypeListIter: return "list_iterator";
      case kTypeRangeIter: return "range_iterator";
      case kTypeDictIter: return "dict_iterator";
      case kTypeStrIter: return "str_iterator";
      case kTypeTupleIter: return "tuple_iterator";
      case kTypeSetIter: return "set_iterator";
      case kTypePair: return "pair";
      case kTypeSymbol: return "symbol";
      case kTypeChar: return "char";
      case kTypeClosure: return "closure";
      default: return "?";
    }
}

// ------------------------------------------------------------- W_Object

RtVal
W_Object::rtGetField(uint32_t idx) const
{
    XLVM_PANIC("rtGetField(", idx, ") unsupported on ",
               typeName(typeId()));
}

void
W_Object::rtSetField(uint32_t idx, const RtVal &, gc::Heap &)
{
    XLVM_PANIC("rtSetField(", idx, ") unsupported on ",
               typeName(typeId()));
}

RtVal
W_Object::rtGetItem(int64_t idx) const
{
    XLVM_PANIC("rtGetItem(", idx, ") unsupported on ",
               typeName(typeId()));
}

void
W_Object::rtSetItem(int64_t idx, const RtVal &, gc::Heap &)
{
    XLVM_PANIC("rtSetItem(", idx, ") unsupported on ",
               typeName(typeId()));
}

int64_t
W_Object::rtLen() const
{
    XLVM_PANIC("rtLen unsupported on ", typeName(typeId()));
}

// ------------------------------------------------------------- atoms

RtVal
W_Bool::rtGetField(uint32_t idx) const
{
    XLVM_ASSERT(idx == kFieldValue, "bad W_Bool field");
    return RtVal::fromInt(value);
}

void
W_Bool::rtSetField(uint32_t idx, const RtVal &v, gc::Heap &)
{
    XLVM_ASSERT(idx == kFieldValue, "bad W_Bool field");
    value = v.i;
}

RtVal
W_Int::rtGetField(uint32_t idx) const
{
    XLVM_ASSERT(idx == kFieldValue, "bad W_Int field");
    return RtVal::fromInt(value);
}

void
W_Int::rtSetField(uint32_t idx, const RtVal &v, gc::Heap &)
{
    XLVM_ASSERT(idx == kFieldValue, "bad W_Int field");
    value = v.i;
}

RtVal
W_Float::rtGetField(uint32_t idx) const
{
    XLVM_ASSERT(idx == kFieldValue, "bad W_Float field");
    return RtVal::fromFloat(value);
}

void
W_Float::rtSetField(uint32_t idx, const RtVal &v, gc::Heap &)
{
    XLVM_ASSERT(idx == kFieldValue, "bad W_Float field");
    value = v.f;
}

RtVal
W_Str::rtGetItem(int64_t idx) const
{
    XLVM_ASSERT(idx >= 0 && size_t(idx) < value.size(),
                "str index out of range");
    return RtVal::fromInt(uint8_t(value[idx]));
}

uint64_t
W_Str::hash() const
{
    if (cachedHash == 0) {
        uint64_t cost;
        cachedHash = rt::strHash(value, &cost);
    }
    return cachedHash;
}

RtVal
W_Char::rtGetField(uint32_t idx) const
{
    XLVM_ASSERT(idx == kFieldValue, "bad W_Char field");
    return RtVal::fromInt(uint8_t(value));
}

// ------------------------------------------------------------- tuple

void
W_Tuple::traceRefs(gc::GcVisitor &v)
{
    for (W_Object *o : items)
        v.visit(o);
}

RtVal
W_Tuple::rtGetItem(int64_t idx) const
{
    XLVM_ASSERT(idx >= 0 && size_t(idx) < items.size(),
                "tuple index out of range");
    return RtVal::fromRef(items[idx]);
}

// ------------------------------------------------------------- list

void
W_List::traceRefs(gc::GcVisitor &v)
{
    for (W_Object *o : objs)
        v.visit(o);
}

size_t
W_List::heapBytes() const
{
    return sizeof(W_List) + ints.capacity() * 8 +
           floats.capacity() * 8 + objs.capacity() * 8;
}

RtVal
W_List::rtGetField(uint32_t idx) const
{
    switch (idx) {
      case kFieldStrategy:
        return RtVal::fromInt(int64_t(strategy));
      case kFieldLength:
        return RtVal::fromInt(int64_t(length()));
      default:
        XLVM_PANIC("bad W_List field ", idx);
    }
}

int64_t
W_List::rtLen() const
{
    return int64_t(length());
}

RtVal
W_List::rtGetItem(int64_t idx) const
{
    XLVM_ASSERT(idx >= 0 && size_t(idx) < length(),
                "list index out of range");
    switch (strategy) {
      case ListStrategy::Int:
        return RtVal::fromInt(ints[idx]);
      case ListStrategy::Float:
        return RtVal::fromFloat(floats[idx]);
      case ListStrategy::Object:
        return RtVal::fromRef(objs[idx]);
      default:
        XLVM_PANIC("getitem on empty-strategy list");
    }
}

void
W_List::rtSetItem(int64_t idx, const RtVal &v, gc::Heap &heap)
{
    XLVM_ASSERT(idx >= 0 && size_t(idx) < length(),
                "list index out of range");
    switch (strategy) {
      case ListStrategy::Int:
        ints[idx] = v.i;
        break;
      case ListStrategy::Float:
        floats[idx] = v.f;
        break;
      case ListStrategy::Object:
        objs[idx] = static_cast<W_Object *>(v.r);
        heap.writeBarrier(this);
        break;
      default:
        XLVM_PANIC("setitem on empty-strategy list");
    }
}

// ------------------------------------------------------------- hashing

uint64_t
objHash(const W_Object *o)
{
    switch (o->typeId()) {
      case kTypeInt:
        return uint64_t(static_cast<const W_Int *>(o)->value) *
               0x9e3779b97f4a7c15ull;
      case kTypeBool:
        return static_cast<const W_Bool *>(o)->value ? 0x517cc1b7ull
                                                     : 0x27220a95ull;
      case kTypeNone:
        return 0xdeadcafeull;
      case kTypeFloat: {
        double d = static_cast<const W_Float *>(o)->value;
        // Integral floats hash like their int (Python invariant).
        int64_t i = int64_t(d);
        if (double(i) == d)
            return uint64_t(i) * 0x9e3779b97f4a7c15ull;
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        return bits * 0xff51afd7ed558ccdull;
      }
      case kTypeStr:
        return static_cast<const W_Str *>(o)->hash();
      case kTypeChar:
        return 0x100 + uint8_t(static_cast<const W_Char *>(o)->value);
      case kTypeSymbol: {
        uint64_t cost;
        return rt::strHash(static_cast<const W_Symbol *>(o)->name, &cost) ^
               0x5ull;
      }
      case kTypeTuple: {
        uint64_t h = 0x345678;
        for (W_Object *it : static_cast<const W_Tuple *>(o)->items)
            h = h * 1000003 ^ objHash(it);
        return h ? h : 1;
      }
      default:
        // Identity hash: the heap allocation ordinal, not the host
        // address, so probe sequences are reproducible across runs.
        return o->allocId() * 0x9e3779b97f4a7c15ull;
    }
}

bool
objEq(const W_Object *a, const W_Object *b)
{
    if (a == b)
        return true;
    if (a->typeId() != b->typeId()) {
        // int/float cross-type equality
        if (a->typeId() == kTypeInt && b->typeId() == kTypeFloat) {
            return double(static_cast<const W_Int *>(a)->value) ==
                   static_cast<const W_Float *>(b)->value;
        }
        if (a->typeId() == kTypeFloat && b->typeId() == kTypeInt) {
            return objEq(b, a);
        }
        return false;
    }
    switch (a->typeId()) {
      case kTypeInt:
        return static_cast<const W_Int *>(a)->value ==
               static_cast<const W_Int *>(b)->value;
      case kTypeBool:
        return static_cast<const W_Bool *>(a)->value ==
               static_cast<const W_Bool *>(b)->value;
      case kTypeNone:
        return true;
      case kTypeFloat:
        return static_cast<const W_Float *>(a)->value ==
               static_cast<const W_Float *>(b)->value;
      case kTypeStr:
        return static_cast<const W_Str *>(a)->value ==
               static_cast<const W_Str *>(b)->value;
      case kTypeChar:
        return static_cast<const W_Char *>(a)->value ==
               static_cast<const W_Char *>(b)->value;
      case kTypeSymbol:
        return static_cast<const W_Symbol *>(a)->name ==
               static_cast<const W_Symbol *>(b)->name;
      case kTypeTuple: {
        const auto *ta = static_cast<const W_Tuple *>(a);
        const auto *tb = static_cast<const W_Tuple *>(b);
        if (ta->items.size() != tb->items.size())
            return false;
        for (size_t i = 0; i < ta->items.size(); ++i) {
            if (!objEq(ta->items[i], tb->items[i]))
                return false;
        }
        return true;
      }
      default:
        return false;
    }
}

// ------------------------------------------------------------- dict/set

void
W_Dict::traceRefs(gc::GcVisitor &v)
{
    for (auto &e : table.rawEntriesMut()) {
        if (e.live) {
            v.visit(e.key);
            v.visit(e.value);
        }
    }
}

size_t
W_Dict::heapBytes() const
{
    return sizeof(W_Dict) + table.rawEntries().capacity() * 32 +
           table.slotCount() * 4;
}

RtVal
W_Dict::rtGetField(uint32_t idx) const
{
    XLVM_ASSERT(idx == kFieldDictVersion, "bad W_Dict field ", idx);
    return RtVal::fromInt(int64_t(table.version()));
}

void
W_Set::traceRefs(gc::GcVisitor &v)
{
    for (auto &e : table.rawEntriesMut()) {
        if (e.live)
            v.visit(e.key);
    }
}

size_t
W_Set::heapBytes() const
{
    return sizeof(W_Set) + table.rawEntries().capacity() * 32 +
           table.slotCount() * 4;
}

RtVal
W_Set::rtGetField(uint32_t idx) const
{
    if (idx == kFieldStrategy)
        return RtVal::fromInt(int64_t(strategy));
    XLVM_ASSERT(idx == kFieldDictVersion, "bad W_Set field ", idx);
    return RtVal::fromInt(int64_t(table.version()));
}

// ------------------------------------------------------------- callables

void
W_Func::traceRefs(gc::GcVisitor &v)
{
    v.visit(globals);
    for (W_Object *d : defaults)
        v.visit(d);
}

void
W_BoundMethod::traceRefs(gc::GcVisitor &v)
{
    v.visit(self);
    v.visit(func);
}

RtVal
W_BoundMethod::rtGetField(uint32_t idx) const
{
    switch (idx) {
      case kFieldBoundSelf:
        return RtVal::fromRef(self);
      case kFieldBoundFunc:
        return RtVal::fromRef(func);
      default:
        XLVM_PANIC("bad W_BoundMethod field ", idx);
    }
}

void
W_BoundMethod::rtSetField(uint32_t idx, const RtVal &v, gc::Heap &heap)
{
    switch (idx) {
      case kFieldBoundSelf:
        self = static_cast<W_Object *>(v.r);
        break;
      case kFieldBoundFunc:
        func = static_cast<W_Object *>(v.r);
        break;
      default:
        XLVM_PANIC("bad W_BoundMethod field ", idx);
    }
    heap.writeBarrier(this);
}

// ------------------------------------------------------------- maps

void
W_Map::traceRefs(gc::GcVisitor &v)
{
    for (W_Str *s : attrNames)
        v.visit(s);
    for (auto &[k, m] : transitions) {
        v.visit(k);
        v.visit(m);
    }
    v.visit(ownerClass);
}

size_t
W_Map::heapBytes() const
{
    return sizeof(W_Map) + attrNames.size() * 8 + transitions.size() * 32;
}

int32_t
W_Map::indexOf(W_Str *name) const
{
    for (size_t i = 0; i < attrNames.size(); ++i) {
        if (attrNames[i] == name ||
            attrNames[i]->value == name->value) {
            return int32_t(i);
        }
    }
    return -1;
}

W_Map *
W_Map::withAttr(W_Str *name, gc::Heap &heap)
{
    auto it = transitions.find(name);
    if (it != transitions.end())
        return it->second;
    W_Map *next = heap.alloc<W_Map>();
    next->attrNames = attrNames;
    next->attrNames.push_back(name);
    next->ownerClass = ownerClass;
    transitions[name] = next;
    heap.writeBarrier(this);
    return next;
}

// ------------------------------------------------------------- class/inst

void
W_Class::traceRefs(gc::GcVisitor &v)
{
    v.visit(base);
    v.visit(instanceMap);
    for (auto &e : methods.rawEntriesMut()) {
        if (e.live) {
            v.visit(e.key);
            v.visit(e.value);
        }
    }
}

size_t
W_Class::heapBytes() const
{
    return sizeof(W_Class) + methods.rawEntries().capacity() * 32;
}

W_Object *
W_Class::findMethod(W_Str *name) const
{
    const W_Class *c = this;
    while (c) {
        auto *v = c->methods.get(const_cast<W_Str *>(name), name->hash());
        if (v)
            return *v;
        c = c->base;
    }
    return nullptr;
}

void
W_Instance::traceRefs(gc::GcVisitor &v)
{
    v.visit(cls);
    v.visit(map);
    for (W_Object *o : storage)
        v.visit(o);
}

RtVal
W_Instance::rtGetField(uint32_t idx) const
{
    XLVM_ASSERT(idx == kFieldMap, "bad W_Instance field ", idx);
    return RtVal::fromRef(map);
}

void
W_Instance::rtSetField(uint32_t idx, const RtVal &v, gc::Heap &heap)
{
    XLVM_ASSERT(idx == kFieldMap, "bad W_Instance field ", idx);
    map = static_cast<W_Map *>(v.r);
    // The map family carries the class, so instances rebuilt by the
    // blackhole recover their class from the map.
    if (map && map->ownerClass)
        cls = map->ownerClass;
    heap.writeBarrier(this);
}

RtVal
W_Instance::rtGetItem(int64_t idx) const
{
    XLVM_ASSERT(idx >= 0 && size_t(idx) < storage.size(),
                "instance slot out of range");
    return RtVal::fromRef(storage[idx]);
}

void
W_Instance::rtSetItem(int64_t idx, const RtVal &v, gc::Heap &heap)
{
    XLVM_ASSERT(idx >= 0 && size_t(idx) <= storage.size(),
                "instance slot out of range");
    if (size_t(idx) == storage.size())
        storage.push_back(static_cast<W_Object *>(v.r));
    else
        storage[idx] = static_cast<W_Object *>(v.r);
    heap.writeBarrier(this);
}

// ------------------------------------------------------------- iterators

void
W_Cell::traceRefs(gc::GcVisitor &v)
{
    v.visit(value);
}

RtVal
W_Cell::rtGetField(uint32_t idx) const
{
    XLVM_ASSERT(idx == kFieldValue, "bad W_Cell field");
    return RtVal::fromRef(value);
}

void
W_Cell::rtSetField(uint32_t idx, const RtVal &v, gc::Heap &heap)
{
    XLVM_ASSERT(idx == kFieldValue, "bad W_Cell field");
    value = static_cast<W_Object *>(v.r);
    heap.writeBarrier(this);
}

RtVal
W_Range::rtGetField(uint32_t idx) const
{
    switch (idx) {
      case kFieldRangeCur:
        return RtVal::fromInt(begin);
      case kFieldRangeStop:
        return RtVal::fromInt(end);
      case kFieldRangeStep:
        return RtVal::fromInt(step);
      default:
        XLVM_PANIC("bad W_Range field ", idx);
    }
}

int64_t
W_Range::rtLen() const
{
    if (step > 0)
        return end > begin ? (end - begin + step - 1) / step : 0;
    return begin > end ? (begin - end - step - 1) / (-step) : 0;
}

RtVal
W_RangeIter::rtGetField(uint32_t idx) const
{
    switch (idx) {
      case kFieldRangeCur:
        return RtVal::fromInt(cur);
      case kFieldRangeStop:
        return RtVal::fromInt(stop);
      case kFieldRangeStep:
        return RtVal::fromInt(step);
      default:
        XLVM_PANIC("bad W_RangeIter field ", idx);
    }
}

void
W_RangeIter::rtSetField(uint32_t idx, const RtVal &v, gc::Heap &)
{
    switch (idx) {
      case kFieldRangeCur:
        cur = v.i;
        return;
      case kFieldRangeStop:
        stop = v.i;
        return;
      case kFieldRangeStep:
        step = v.i;
        return;
      default:
        XLVM_PANIC("bad W_RangeIter field ", idx);
    }
}

void
W_ListIter::traceRefs(gc::GcVisitor &v)
{
    v.visit(list);
}

RtVal
W_ListIter::rtGetField(uint32_t idx) const
{
    switch (idx) {
      case kFieldIterIndex:
        return RtVal::fromInt(index);
      case kFieldIterTarget:
        return RtVal::fromRef(list);
      default:
        XLVM_PANIC("bad W_ListIter field ", idx);
    }
}

void
W_ListIter::rtSetField(uint32_t idx, const RtVal &v, gc::Heap &heap)
{
    if (idx == kFieldIterIndex) {
        index = v.i;
    } else {
        XLVM_ASSERT(idx == kFieldIterTarget, "bad W_ListIter field");
        list = static_cast<W_Object *>(v.r);
        heap.writeBarrier(this);
    }
}

void
W_TupleIter::traceRefs(gc::GcVisitor &v)
{
    v.visit(tuple);
}

RtVal
W_TupleIter::rtGetField(uint32_t idx) const
{
    switch (idx) {
      case kFieldIterIndex:
        return RtVal::fromInt(index);
      case kFieldIterTarget:
        return RtVal::fromRef(tuple);
      default:
        XLVM_PANIC("bad W_TupleIter field ", idx);
    }
}

void
W_TupleIter::rtSetField(uint32_t idx, const RtVal &v, gc::Heap &heap)
{
    if (idx == kFieldIterIndex) {
        index = v.i;
    } else {
        XLVM_ASSERT(idx == kFieldIterTarget, "bad W_TupleIter field");
        tuple = static_cast<W_Tuple *>(v.r);
        heap.writeBarrier(this);
    }
}

void
W_StrIter::traceRefs(gc::GcVisitor &v)
{
    v.visit(str);
}

RtVal
W_StrIter::rtGetField(uint32_t idx) const
{
    switch (idx) {
      case kFieldIterIndex:
        return RtVal::fromInt(index);
      case kFieldIterTarget:
        return RtVal::fromRef(str);
      default:
        XLVM_PANIC("bad W_StrIter field ", idx);
    }
}

void
W_StrIter::rtSetField(uint32_t idx, const RtVal &v, gc::Heap &heap)
{
    if (idx == kFieldIterIndex) {
        index = v.i;
    } else {
        XLVM_ASSERT(idx == kFieldIterTarget, "bad W_StrIter field");
        str = static_cast<W_Str *>(v.r);
        heap.writeBarrier(this);
    }
}

void
W_DictIter::traceRefs(gc::GcVisitor &v)
{
    v.visit(dict);
}

// ------------------------------------------------------------- scheme

void
W_Pair::traceRefs(gc::GcVisitor &v)
{
    v.visit(car);
    v.visit(cdr);
}

RtVal
W_Pair::rtGetField(uint32_t idx) const
{
    switch (idx) {
      case kFieldCar:
        return RtVal::fromRef(car);
      case kFieldCdr:
        return RtVal::fromRef(cdr);
      default:
        XLVM_PANIC("bad W_Pair field ", idx);
    }
}

void
W_Pair::rtSetField(uint32_t idx, const RtVal &v, gc::Heap &heap)
{
    switch (idx) {
      case kFieldCar:
        car = static_cast<W_Object *>(v.r);
        break;
      case kFieldCdr:
        cdr = static_cast<W_Object *>(v.r);
        break;
      default:
        XLVM_PANIC("bad W_Pair field ", idx);
    }
    heap.writeBarrier(this);
}

void
W_Closure::traceRefs(gc::GcVisitor &v)
{
    v.visit(env);
}

} // namespace obj
} // namespace xlvm
