#include "obj/space.h"

#include <cmath>

#include "common/logging.h"
#include "rt/rstr.h"

namespace xlvm {
namespace obj {

using jit::BoxType;
using jit::IrOp;
using jit::kNoArg;
using jit::Recorder;
using jit::RtVal;

ObjSpace::ObjSpace(ExecEnv &env) : env_(env)
{
    sitePcs.resize(kNumSites);
    for (uint32_t i = 0; i < kNumSites; ++i)
        sitePcs[i] = env_.allocSite(64);
    noneSingleton = heap().alloc<W_None>();
    trueSingleton = heap().alloc<W_Bool>(true);
    falseSingleton = heap().alloc<W_Bool>(false);
    heap().addRootProvider(this);
}

ObjSpace::~ObjSpace()
{
    heap().removeRootProvider(this);
}

void
ObjSpace::forEachRoot(gc::GcVisitor &v)
{
    v.visit(noneSingleton);
    v.visit(trueSingleton);
    v.visit(falseSingleton);
    for (auto &[s, w] : internTable) {
        (void)s;
        v.visit(w);
    }
}

sim::BlockEmitter
ObjSpace::siteEmitter(Site s)
{
    ++nOps;
    return sim::BlockEmitter(env_.core(), sitePcs[s]);
}

void
ObjSpace::emitDispatchCost(sim::BlockEmitter &e, W_Object *l, W_Object *r)
{
    const CostParams &c = env_.costs();
    // Load type words and dispatch.
    e.loadPtr(l, c.interpLoadStall);
    if (r)
        e.loadPtr(r, c.interpLoadStall);
    e.alu(2);
    e.branch(false);
    if (env_.isRPython()) {
        e.alu(c.rpyOpExtraAlus);
        for (uint32_t i = 0; i < c.rpyOpExtraLoads; ++i)
            e.loadPtr(this, 1);
    } else {
        e.alu(c.refcountAlusPerOp);
    }
}

// ------------------------------------------------------------ constructors

W_Object *
ObjSpace::newBool(bool v)
{
    return v ? static_cast<W_Object *>(trueSingleton)
             : static_cast<W_Object *>(falseSingleton);
}

W_Bool *
ObjSpace::newTracedBool(bool v, int32_t enc)
{
    W_Bool *w = heap().alloc<W_Bool>(v);
    if (Recorder *r = rec()) {
        int32_t box = r->emit(IrOp::NewWithVtable, kNoArg, kNoArg, kNoArg,
                              kTypeBool);
        r->emit(IrOp::SetfieldGc, box, enc, kNoArg, kFieldValue);
        r->mapRef(w, box);
    }
    return w;
}

W_Int *
ObjSpace::newInt(int64_t v)
{
    return heap().alloc<W_Int>(v);
}

W_Float *
ObjSpace::newFloat(double v)
{
    return heap().alloc<W_Float>(v);
}

W_Str *
ObjSpace::newStr(std::string s)
{
    return heap().alloc<W_Str>(std::move(s));
}

W_BigInt *
ObjSpace::newBigInt(rt::RBigInt v)
{
    return heap().alloc<W_BigInt>(std::move(v));
}

W_List *
ObjSpace::newList()
{
    return heap().alloc<W_List>();
}

W_Tuple *
ObjSpace::newTuple(std::vector<W_Object *> items)
{
    return heap().alloc<W_Tuple>(std::move(items));
}

W_Dict *
ObjSpace::newDict()
{
    return heap().alloc<W_Dict>();
}

W_Set *
ObjSpace::newSet()
{
    return heap().alloc<W_Set>();
}

W_Str *
ObjSpace::intern(const std::string &s)
{
    auto it = internTable.find(s);
    if (it != internTable.end())
        return it->second;
    W_Str *w = newStr(s);
    internTable[s] = w;
    return w;
}

// ----------------------------------------------------------- rec helpers

int32_t
ObjSpace::recRef(W_Object *w)
{
    for (int i = 0; i < nHints; ++i) {
        if (hintObjs[i] == w)
            return hintEncs[i];
    }
    return rec()->refEncoding(w);
}

void
ObjSpace::recGuardType(W_Object *w)
{
    rec()->guardClass(recRef(w), w->typeId());
}

int32_t
ObjSpace::recUnboxInt(W_Object *w)
{
    Recorder *r = rec();
    int32_t ref = takeHint(w);
    if (ref == kNoArg)
        ref = recRef(w);
    int64_t actual = 0;
    switch (w->typeId()) {
      case kTypeInt:
        actual = static_cast<W_Int *>(w)->value;
        break;
      case kTypeBool:
        actual = static_cast<W_Bool *>(w)->value;
        break;
      default:
        XLVM_PANIC("recUnboxInt on ", typeName(w->typeId()));
    }
    if (jit::isConstRef(ref)) {
        // getfield_gc_pure on a constant folds to the value.
        return r->constInt(actual);
    }
    return r->emitTyped(IrOp::GetfieldGc, BoxType::Int, ref, kNoArg,
                        kNoArg, kFieldValue);
}

int32_t
ObjSpace::recUnboxFloat(W_Object *w)
{
    Recorder *r = rec();
    int32_t ref = takeHint(w);
    if (ref == kNoArg)
        ref = recRef(w);
    XLVM_ASSERT(w->typeId() == kTypeFloat, "recUnboxFloat on ",
                typeName(w->typeId()));
    if (jit::isConstRef(ref))
        return r->constFloat(static_cast<W_Float *>(w)->value);
    return r->emitTyped(IrOp::GetfieldGc, BoxType::Float, ref, kNoArg,
                        kNoArg, kFieldValue);
}

W_Int *
ObjSpace::recBoxInt(int64_t v, int32_t enc)
{
    W_Int *w = newInt(v);
    if (Recorder *r = rec()) {
        int32_t box = r->emit(IrOp::NewWithVtable, kNoArg, kNoArg, kNoArg,
                              kTypeInt);
        r->emit(IrOp::SetfieldGc, box, enc, kNoArg, kFieldValue);
        r->mapRef(w, box);
    }
    return w;
}

W_Float *
ObjSpace::recBoxFloat(double v, int32_t enc)
{
    W_Float *w = newFloat(v);
    if (Recorder *r = rec()) {
        int32_t box = r->emit(IrOp::NewWithVtable, kNoArg, kNoArg, kNoArg,
                              kTypeFloat);
        r->emit(IrOp::SetfieldGc, box, enc, kNoArg, kFieldValue);
        r->mapRef(w, box);
    }
    return w;
}

int32_t
ObjSpace::recCall(IrOp kind, uint32_t fn_id, BoxType ret, int32_t a,
                  int32_t b, int32_t c, uint32_t sem, int32_t d)
{
    return rec()->emitTyped(kind, ret, a, b, c, fn_id, d, sem);
}

// ------------------------------------------------------------ conversions

int64_t
ObjSpace::unwrapInt(W_Object *w) const
{
    switch (w->typeId()) {
      case kTypeInt:
        return static_cast<W_Int *>(w)->value;
      case kTypeBool:
        return static_cast<W_Bool *>(w)->value;
      case kTypeBigInt: {
        const auto *b = static_cast<W_BigInt *>(w);
        XLVM_ASSERT(b->value.fitsInt64(), "bigint too large for index");
        return b->value.toInt64();
      }
      default:
        XLVM_FATAL("expected int, got ", typeName(w->typeId()));
    }
}

double
ObjSpace::unwrapFloat(W_Object *w) const
{
    XLVM_ASSERT(w->typeId() == kTypeFloat, "expected float, got ",
                typeName(w->typeId()));
    return static_cast<W_Float *>(w)->value;
}

const std::string &
ObjSpace::unwrapStr(W_Object *w) const
{
    XLVM_ASSERT(w->typeId() == kTypeStr, "expected str, got ",
                typeName(w->typeId()));
    return static_cast<W_Str *>(w)->value;
}

double
ObjSpace::toDouble(W_Object *w) const
{
    switch (w->typeId()) {
      case kTypeInt:
        return double(static_cast<W_Int *>(w)->value);
      case kTypeBool:
        return double(static_cast<W_Bool *>(w)->value);
      case kTypeFloat:
        return static_cast<W_Float *>(w)->value;
      case kTypeBigInt:
        return static_cast<W_BigInt *>(w)->value.toDouble();
      default:
        XLVM_FATAL("cannot convert ", typeName(w->typeId()), " to float");
    }
}

rt::RBigInt
ObjSpace::toBigInt(W_Object *w) const
{
    switch (w->typeId()) {
      case kTypeInt:
        return rt::RBigInt::fromInt64(static_cast<W_Int *>(w)->value);
      case kTypeBool:
        return rt::RBigInt::fromInt64(static_cast<W_Bool *>(w)->value);
      case kTypeBigInt:
        return static_cast<W_BigInt *>(w)->value;
      default:
        XLVM_FATAL("cannot convert ", typeName(w->typeId()), " to bigint");
    }
}

W_Object *
ObjSpace::normalizeBigInt(const rt::RBigInt &v, int32_t enc)
{
    // Demote back to a machine int when possible (PyPy does the same).
    if (v.fitsInt64()) {
        W_Int *w = newInt(v.toInt64());
        if (Recorder *r = rec())
            r->mapRef(w, enc);
        return w;
    }
    W_BigInt *w = newBigInt(v);
    if (Recorder *r = rec())
        r->mapRef(w, enc);
    return w;
}

// ------------------------------------------------------------ arithmetic

W_Object *
ObjSpace::intArith(IrOp op, IrOp ovf_op, int64_t a, int64_t b,
                   W_Object *l, W_Object *r)
{
    Recorder *recd = rec();
    int64_t res = 0;
    bool overflow = false;
    switch (op) {
      case IrOp::IntAdd:
        overflow = __builtin_add_overflow(a, b, &res);
        break;
      case IrOp::IntSub:
        overflow = __builtin_sub_overflow(a, b, &res);
        break;
      case IrOp::IntMul:
        overflow = __builtin_mul_overflow(a, b, &res);
        break;
      case IrOp::IntAnd:
        res = a & b;
        break;
      case IrOp::IntOr:
        res = a | b;
        break;
      case IrOp::IntXor:
        res = a ^ b;
        break;
      case IrOp::IntLshift:
        if (b < 0)
            XLVM_FATAL("negative shift count");
        overflow = b >= 63 || (a != 0 && (a >> (62 - b)) != 0 &&
                               (a >> (62 - b)) != -1);
        if (!overflow)
            res = a << b;
        break;
      case IrOp::IntRshift:
        if (b < 0)
            XLVM_FATAL("negative shift count");
        res = b >= 63 ? (a < 0 ? -1 : 0) : (a >> b);
        break;
      case IrOp::IntFloordiv:
        if (b == 0)
            XLVM_FATAL("integer division by zero");
        res = a / b;
        if ((a % b != 0) && ((a < 0) != (b < 0)))
            --res;
        break;
      case IrOp::IntMod:
        if (b == 0)
            XLVM_FATAL("integer modulo by zero");
        res = a % b;
        if (res != 0 && ((res < 0) != (b < 0)))
            res += b;
        break;
      default:
        XLVM_PANIC("bad intArith op");
    }

    if (overflow) {
        // Promote to bignum: the interpreter calls rbigint (AOT).
        uint32_t fn = op == IrOp::IntMul ? rt::kAotBigIntMul
                                         : op == IrOp::IntSub
                                               ? rt::kAotBigIntSub
                                               : op == IrOp::IntLshift
                                                     ? rt::kAotBigIntLshift
                                                     : rt::kAotBigIntAdd;
        return bigIntArith(fn, l, r);
    }

    if (recd) {
        int32_t ea = recUnboxInt(l);
        int32_t eb = recUnboxInt(r);
        bool useOvf = ovf_op != IrOp::Label;
        int32_t er = recd->emit(useOvf ? ovf_op : op, ea, eb);
        if (useOvf && !jit::isConstRef(er))
            recd->guardNoOverflow();
        return recBoxInt(res, er);
    }
    return newInt(res);
}

W_Object *
ObjSpace::floatArith(IrOp op, double a, double b, W_Object *l, W_Object *r)
{
    Recorder *recd = rec();
    double res = 0;
    switch (op) {
      case IrOp::FloatAdd:
        res = a + b;
        break;
      case IrOp::FloatSub:
        res = a - b;
        break;
      case IrOp::FloatMul:
        res = a * b;
        break;
      case IrOp::FloatTruediv:
        if (b == 0.0)
            XLVM_FATAL("float division by zero");
        res = a / b;
        break;
      default:
        XLVM_PANIC("bad floatArith op");
    }
    if (recd) {
        auto unboxAsFloat = [&](W_Object *w) -> int32_t {
            if (w->typeId() == kTypeFloat)
                return recUnboxFloat(w);
            int32_t iv = recUnboxInt(w);
            return recd->emit(IrOp::CastIntToFloat, iv);
        };
        int32_t ea = unboxAsFloat(l);
        int32_t eb = unboxAsFloat(r);
        int32_t er = recd->emit(op, ea, eb);
        return recBoxFloat(res, er);
    }
    return newFloat(res);
}

W_Object *
ObjSpace::bigIntArith(uint32_t fn, W_Object *l, W_Object *r, uint32_t sem)
{
    rt::RBigInt a = toBigInt(l);
    rt::RBigInt b = toBigInt(r);
    rt::RBigInt out;
    uint64_t units = 1;
    switch (fn) {
      case rt::kAotBigIntAdd:
        out = rt::RBigInt::add(a, b);
        units = rt::RBigInt::addCostUnits(a, b);
        break;
      case rt::kAotBigIntSub:
        out = rt::RBigInt::sub(a, b);
        units = rt::RBigInt::addCostUnits(a, b);
        break;
      case rt::kAotBigIntMul:
        out = rt::RBigInt::mul(a, b);
        units = rt::RBigInt::mulCostUnits(a, b);
        break;
      case rt::kAotBigIntDivMod: {
        rt::RBigInt q, rem;
        rt::RBigInt::divmod(a, b, q, rem);
        out = q;
        units = rt::RBigInt::divmodCostUnits(a, b);
        break;
      }
      case rt::kAotBigIntLshift:
        out = a.lshift(uint32_t(b.toInt64()));
        units = rt::RBigInt::shiftCostUnits(a, uint32_t(b.toInt64()));
        break;
      case rt::kAotBigIntRshift:
        out = a.rshift(uint32_t(b.toInt64()));
        units = rt::RBigInt::shiftCostUnits(a, uint32_t(b.toInt64()));
        break;
      default:
        XLVM_PANIC("bad bigint fn ", fn);
    }
    env_.aotCall(fn, units);
    int32_t enc = kNoArg;
    if (rec()) {
        recGuardType(l);
        recGuardType(r);
        enc = recCall(IrOp::Call, fn, BoxType::Ref, recRef(l), recRef(r),
                      jit::kNoArg, sem);
    }
    return normalizeBigInt(out, enc);
}

namespace {

bool
bothIntLike(W_Object *l, W_Object *r)
{
    auto ok = [](uint16_t t) { return t == kTypeInt || t == kTypeBool; };
    return ok(l->typeId()) && ok(r->typeId());
}

bool
eitherFloat(W_Object *l, W_Object *r)
{
    auto num = [](uint16_t t) {
        return t == kTypeInt || t == kTypeBool || t == kTypeFloat;
    };
    return (l->typeId() == kTypeFloat || r->typeId() == kTypeFloat) &&
           num(l->typeId()) && num(r->typeId());
}

bool
eitherBigInt(W_Object *l, W_Object *r)
{
    auto num = [](uint16_t t) {
        return t == kTypeInt || t == kTypeBool || t == kTypeBigInt;
    };
    return (l->typeId() == kTypeBigInt || r->typeId() == kTypeBigInt) &&
           num(l->typeId()) && num(r->typeId());
}

} // namespace

W_Object *
ObjSpace::add(W_Object *l, W_Object *r)
{
    auto e = siteEmitter(kSiteArith);
    emitDispatchCost(e, l, r);
    if (bothIntLike(l, r)) {
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
        }
        e.alu(1);
        return intArith(IrOp::IntAdd, IrOp::IntAddOvf, unwrapInt(l),
                        unwrapInt(r), l, r);
    }
    if (eitherFloat(l, r)) {
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
        }
        e.fpAlu(1);
        return floatArith(IrOp::FloatAdd, toDouble(l), toDouble(r), l, r);
    }
    if (eitherBigInt(l, r))
        return bigIntArith(rt::kAotBigIntAdd, l, r);
    if (l->typeId() == kTypeStr && r->typeId() == kTypeStr) {
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
        }
        return strConcat(static_cast<W_Str *>(l), static_cast<W_Str *>(r));
    }
    if (l->typeId() == kTypeList && r->typeId() == kTypeList) {
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
        }
        W_List *out = newList();
        listExtend(out, l);
        listExtend(out, r);
        if (rec())
            rec()->mapRef(out, recCall(IrOp::Call, rt::kAotListExtend,
                                       BoxType::Ref, recRef(l), recRef(r),
                                       jit::kNoArg, kSemListConcat));
        return out;
    }
    if (l->typeId() == kTypeTuple && r->typeId() == kTypeTuple) {
        auto *lt = static_cast<W_Tuple *>(l);
        auto *rt_ = static_cast<W_Tuple *>(r);
        std::vector<W_Object *> items = lt->items;
        items.insert(items.end(), rt_->items.begin(), rt_->items.end());
        W_Tuple *out = newTuple(std::move(items));
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
            rec()->mapRef(out, recCall(IrOp::Call, rt::kAotListExtend,
                                       BoxType::Ref, recRef(l), recRef(r),
                                       jit::kNoArg, kSemTupleConcat));
        }
        return out;
    }
    XLVM_FATAL("unsupported + between ", typeName(l->typeId()), " and ",
               typeName(r->typeId()));
}

W_Object *
ObjSpace::sub(W_Object *l, W_Object *r)
{
    auto e = siteEmitter(kSiteArith);
    emitDispatchCost(e, l, r);
    if (bothIntLike(l, r)) {
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
        }
        e.alu(1);
        return intArith(IrOp::IntSub, IrOp::IntSubOvf, unwrapInt(l),
                        unwrapInt(r), l, r);
    }
    if (eitherFloat(l, r)) {
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
        }
        e.fpAlu(1);
        return floatArith(IrOp::FloatSub, toDouble(l), toDouble(r), l, r);
    }
    if (eitherBigInt(l, r))
        return bigIntArith(rt::kAotBigIntSub, l, r);
    if (l->typeId() == kTypeSet && r->typeId() == kTypeSet)
        return setDifference(static_cast<W_Set *>(l),
                             static_cast<W_Set *>(r));
    XLVM_FATAL("unsupported - between ", typeName(l->typeId()), " and ",
               typeName(r->typeId()));
}

W_Object *
ObjSpace::mul(W_Object *l, W_Object *r)
{
    auto e = siteEmitter(kSiteArith);
    emitDispatchCost(e, l, r);
    if (bothIntLike(l, r)) {
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
        }
        e.mul();
        return intArith(IrOp::IntMul, IrOp::IntMulOvf, unwrapInt(l),
                        unwrapInt(r), l, r);
    }
    if (eitherFloat(l, r)) {
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
        }
        e.fpMul();
        return floatArith(IrOp::FloatMul, toDouble(l), toDouble(r), l, r);
    }
    if (eitherBigInt(l, r))
        return bigIntArith(rt::kAotBigIntMul, l, r);
    if (l->typeId() == kTypeStr && r->typeId() == kTypeInt) {
        int32_t ne = kNoArg;
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
            ne = recUnboxInt(r);
        }
        return strMul(static_cast<W_Str *>(l), unwrapInt(r), ne);
    }
    if (l->typeId() == kTypeList && r->typeId() == kTypeInt) {
        auto *src = static_cast<W_List *>(l);
        int64_t n = unwrapInt(r);
        W_List *out = newList();
        for (int64_t i = 0; i < n; ++i)
            listExtend(out, src);
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
            rec()->mapRef(out, recCall(IrOp::Call, rt::kAotListExtend,
                                       BoxType::Ref, recRef(l), recRef(r),
                                       jit::kNoArg, kSemListRepeat));
        }
        return out;
    }
    XLVM_FATAL("unsupported * between ", typeName(l->typeId()), " and ",
               typeName(r->typeId()));
}

W_Object *
ObjSpace::truediv(W_Object *l, W_Object *r)
{
    auto e = siteEmitter(kSiteArith);
    emitDispatchCost(e, l, r);
    if (rec()) {
        recGuardType(l);
        recGuardType(r);
    }
    e.fpDiv();
    if (eitherBigInt(l, r)) {
        double res = toBigInt(l).toDouble() / toBigInt(r).toDouble();
        int32_t enc = kNoArg;
        if (rec())
            enc = recCall(IrOp::Call, rt::kAotBigIntDivMod, BoxType::Ref,
                          recRef(l), recRef(r), jit::kNoArg,
                          kSemBigIntTrueDiv);
        W_Float *w = newFloat(res);
        if (rec())
            rec()->mapRef(w, enc);
        return w;
    }
    return floatArith(IrOp::FloatTruediv, toDouble(l), toDouble(r), l, r);
}

W_Object *
ObjSpace::floordiv(W_Object *l, W_Object *r)
{
    auto e = siteEmitter(kSiteArith);
    emitDispatchCost(e, l, r);
    if (bothIntLike(l, r)) {
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
        }
        e.div();
        return intArith(IrOp::IntFloordiv, IrOp::Label, unwrapInt(l),
                        unwrapInt(r), l, r);
    }
    if (eitherFloat(l, r)) {
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
        }
        e.fpDiv();
        double res = std::floor(toDouble(l) / toDouble(r));
        int32_t enc = kNoArg;
        if (Recorder *recd = rec()) {
            int32_t ea = l->typeId() == kTypeFloat
                             ? recUnboxFloat(l)
                             : recd->emit(IrOp::CastIntToFloat,
                                          recUnboxInt(l));
            int32_t eb = r->typeId() == kTypeFloat
                             ? recUnboxFloat(r)
                             : recd->emit(IrOp::CastIntToFloat,
                                          recUnboxInt(r));
            enc = recd->emit(IrOp::FloatTruediv, ea, eb);
        }
        return recBoxFloat(res, enc);
    }
    if (eitherBigInt(l, r))
        return bigIntArith(rt::kAotBigIntDivMod, l, r, kSemBigIntFloorDiv);
    XLVM_FATAL("unsupported // between ", typeName(l->typeId()), " and ",
               typeName(r->typeId()));
}

W_Object *
ObjSpace::mod(W_Object *l, W_Object *r)
{
    auto e = siteEmitter(kSiteArith);
    emitDispatchCost(e, l, r);
    if (bothIntLike(l, r)) {
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
        }
        e.div();
        return intArith(IrOp::IntMod, IrOp::Label, unwrapInt(l),
                        unwrapInt(r), l, r);
    }
    if (eitherFloat(l, r)) {
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
        }
        double a = toDouble(l), b = toDouble(r);
        if (b == 0.0)
            XLVM_FATAL("float modulo by zero");
        double res = std::fmod(a, b);
        if (res != 0.0 && ((res < 0) != (b < 0)))
            res += b;
        env_.aotCall(rt::kAotCPow, 12);
        W_Float *w = newFloat(res);
        if (rec()) {
            int32_t enc = recCall(IrOp::Call, rt::kAotCPow, BoxType::Ref,
                                  recRef(l), recRef(r), jit::kNoArg,
                                  kSemFloatMod);
            rec()->mapRef(w, enc);
        }
        return w;
    }
    if (eitherBigInt(l, r)) {
        rt::RBigInt q, rem;
        rt::RBigInt a = toBigInt(l), b = toBigInt(r);
        rt::RBigInt::divmod(a, b, q, rem);
        env_.aotCall(rt::kAotBigIntDivMod,
                     rt::RBigInt::divmodCostUnits(a, b));
        int32_t enc = kNoArg;
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
            enc = recCall(IrOp::Call, rt::kAotBigIntDivMod, BoxType::Ref,
                          recRef(l), recRef(r), jit::kNoArg,
                          kSemBigIntMod);
        }
        return normalizeBigInt(rem, enc);
    }
    XLVM_FATAL("unsupported %% between ", typeName(l->typeId()), " and ",
               typeName(r->typeId()));
}

W_Object *
ObjSpace::pow_(W_Object *l, W_Object *r)
{
    auto e = siteEmitter(kSiteArith);
    emitDispatchCost(e, l, r);
    if (bothIntLike(l, r) && unwrapInt(r) >= 0) {
        // Integer power via bigint to handle overflow uniformly.
        rt::RBigInt out =
            rt::RBigInt::pow(toBigInt(l), uint64_t(unwrapInt(r)));
        env_.aotCall(rt::kAotBigIntPow,
                     out.numDigits() * (uint64_t(unwrapInt(r)) + 1));
        int32_t enc = kNoArg;
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
            enc = recCall(IrOp::Call, rt::kAotBigIntPow, BoxType::Ref,
                          recRef(l), recRef(r), jit::kNoArg, kSemPow);
        }
        return normalizeBigInt(out, enc);
    }
    // float pow via C library (software libm: expensive).
    double res = std::pow(toDouble(l), toDouble(r));
    env_.aotCall(rt::kAotCPow, 48);
    int32_t enc = kNoArg;
    if (rec()) {
        recGuardType(l);
        recGuardType(r);
        enc = recCall(IrOp::Call, rt::kAotCPow, BoxType::Ref, recRef(l),
                      recRef(r), jit::kNoArg, kSemPow);
    }
    W_Float *w = newFloat(res);
    if (rec())
        rec()->mapRef(w, enc);
    return w;
}

W_Object *
ObjSpace::neg(W_Object *w)
{
    auto e = siteEmitter(kSiteArith);
    emitDispatchCost(e, w);
    switch (w->typeId()) {
      case kTypeInt:
      case kTypeBool: {
        if (rec())
            recGuardType(w);
        int64_t v = unwrapInt(w);
        if (v == INT64_MIN)
            return bigIntArith(rt::kAotBigIntSub, newInt(0), w);
        int32_t enc = kNoArg;
        if (Recorder *recd = rec())
            enc = recd->emit(IrOp::IntNeg, recUnboxInt(w));
        return recBoxInt(-v, enc);
      }
      case kTypeFloat: {
        if (rec())
            recGuardType(w);
        int32_t enc = kNoArg;
        if (Recorder *recd = rec())
            enc = recd->emit(IrOp::FloatNeg, recUnboxFloat(w));
        return recBoxFloat(-unwrapFloat(w), enc);
      }
      case kTypeBigInt: {
        int32_t enc = kNoArg;
        if (rec()) {
            recGuardType(w);
            enc = recCall(IrOp::Call, rt::kAotBigIntSub, BoxType::Ref,
                          recRef(w), jit::kNoArg, jit::kNoArg,
                          kSemNegate);
        }
        env_.aotCall(rt::kAotBigIntSub, 1);
        return normalizeBigInt(static_cast<W_BigInt *>(w)->value.neg(),
                               enc);
      }
      default:
        XLVM_FATAL("unsupported unary - on ", typeName(w->typeId()));
    }
}

W_Object *
ObjSpace::abs_(W_Object *w)
{
    switch (w->typeId()) {
      case kTypeInt:
      case kTypeBool: {
        int64_t v = unwrapInt(w);
        if (Recorder *recd = rec()) {
            recGuardType(w);
            // Pin the sign so the identity/negate specialization holds.
            int32_t nonneg = recd->emit(IrOp::IntGe, recUnboxInt(w),
                                        recd->constInt(0));
            if (v >= 0)
                recd->guardTrue(nonneg);
            else
                recd->guardFalse(nonneg);
        }
        return v < 0 ? neg(w) : w;
      }
      case kTypeFloat: {
        auto e = siteEmitter(kSiteArith);
        emitDispatchCost(e, w);
        if (rec())
            recGuardType(w);
        int32_t enc = kNoArg;
        if (Recorder *recd = rec())
            enc = recd->emit(IrOp::FloatAbs, recUnboxFloat(w));
        return recBoxFloat(std::fabs(unwrapFloat(w)), enc);
      }
      case kTypeBigInt:
        return normalizeBigInt(static_cast<W_BigInt *>(w)->value.abs(),
                               kNoArg);
      default:
        XLVM_FATAL("unsupported abs on ", typeName(w->typeId()));
    }
}

W_Object *
ObjSpace::bitAnd(W_Object *l, W_Object *r)
{
    auto e = siteEmitter(kSiteArith);
    emitDispatchCost(e, l, r);
    if (bothIntLike(l, r)) {
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
        }
        return intArith(IrOp::IntAnd, IrOp::Label, unwrapInt(l),
                        unwrapInt(r), l, r);
    }
    if (l->typeId() == kTypeSet && r->typeId() == kTypeSet)
        return setIntersect(static_cast<W_Set *>(l),
                            static_cast<W_Set *>(r));
    XLVM_FATAL("unsupported & between ", typeName(l->typeId()), " and ",
               typeName(r->typeId()));
}

W_Object *
ObjSpace::bitOr(W_Object *l, W_Object *r)
{
    auto e = siteEmitter(kSiteArith);
    emitDispatchCost(e, l, r);
    if (bothIntLike(l, r)) {
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
        }
        return intArith(IrOp::IntOr, IrOp::Label, unwrapInt(l),
                        unwrapInt(r), l, r);
    }
    if (l->typeId() == kTypeSet && r->typeId() == kTypeSet)
        return setUnion(static_cast<W_Set *>(l), static_cast<W_Set *>(r));
    XLVM_FATAL("unsupported | between ", typeName(l->typeId()), " and ",
               typeName(r->typeId()));
}

W_Object *
ObjSpace::bitXor(W_Object *l, W_Object *r)
{
    auto e = siteEmitter(kSiteArith);
    emitDispatchCost(e, l, r);
    if (bothIntLike(l, r)) {
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
        }
        return intArith(IrOp::IntXor, IrOp::Label, unwrapInt(l),
                        unwrapInt(r), l, r);
    }
    XLVM_FATAL("unsupported ^");
}

W_Object *
ObjSpace::lshift(W_Object *l, W_Object *r)
{
    auto e = siteEmitter(kSiteArith);
    emitDispatchCost(e, l, r);
    if (bothIntLike(l, r)) {
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
        }
        return intArith(IrOp::IntLshift, IrOp::Label, unwrapInt(l),
                        unwrapInt(r), l, r);
    }
    if (eitherBigInt(l, r))
        return bigIntArith(rt::kAotBigIntLshift, l, r);
    XLVM_FATAL("unsupported <<");
}

W_Object *
ObjSpace::rshift(W_Object *l, W_Object *r)
{
    auto e = siteEmitter(kSiteArith);
    emitDispatchCost(e, l, r);
    if (bothIntLike(l, r)) {
        if (rec()) {
            recGuardType(l);
            recGuardType(r);
        }
        return intArith(IrOp::IntRshift, IrOp::Label, unwrapInt(l),
                        unwrapInt(r), l, r);
    }
    if (eitherBigInt(l, r))
        return bigIntArith(rt::kAotBigIntRshift, l, r);
    XLVM_FATAL("unsupported >>");
}

W_Object *
ObjSpace::boolNot(W_Object *w)
{
    bool v = isTrueAndGuard(w);
    return newBool(!v);
}

// ------------------------------------------------------------ comparisons

W_Object *
ObjSpace::cmp(CmpOp op, W_Object *l, W_Object *r)
{
    auto e = siteEmitter(kSiteCmp);
    emitDispatchCost(e, l, r);
    e.alu(1);
    Recorder *recd = rec();

    if (op == CmpOp::Is || op == CmpOp::IsNot) {
        bool same = l == r;
        bool res = op == CmpOp::Is ? same : !same;
        if (recd) {
            int32_t enc = recd->emit(op == CmpOp::Is ? IrOp::PtrEq
                                                     : IrOp::PtrNe,
                                     recRef(l), recRef(r));
            return newTracedBool(res, enc);
        }
        return newBool(res);
    }
    if (op == CmpOp::In || op == CmpOp::NotIn) {
        bool in = containsBool(r, l);
        bool res = op == CmpOp::In ? in : !in;
        // containsBool records; wrap plain bool here.
        if (recd) {
            // The contains call result already guards; result is const
            // for this trace.
            return newTracedBool(res, recd->constInt(res));
        }
        return newBool(res);
    }

    if (bothIntLike(l, r)) {
        if (recd) {
            recGuardType(l);
            recGuardType(r);
        }
        int64_t a = unwrapInt(l);
        int64_t b = unwrapInt(r);
        bool res = false;
        IrOp irop = IrOp::IntEq;
        switch (op) {
          case CmpOp::Lt:
            res = a < b;
            irop = IrOp::IntLt;
            break;
          case CmpOp::Le:
            res = a <= b;
            irop = IrOp::IntLe;
            break;
          case CmpOp::Eq:
            res = a == b;
            irop = IrOp::IntEq;
            break;
          case CmpOp::Ne:
            res = a != b;
            irop = IrOp::IntNe;
            break;
          case CmpOp::Gt:
            res = a > b;
            irop = IrOp::IntGt;
            break;
          case CmpOp::Ge:
            res = a >= b;
            irop = IrOp::IntGe;
            break;
          default:
            break;
        }
        if (recd) {
            int32_t enc = recd->emit(irop, recUnboxInt(l), recUnboxInt(r));
            return newTracedBool(res, enc);
        }
        return newBool(res);
    }

    if (eitherFloat(l, r)) {
        if (recd) {
            recGuardType(l);
            recGuardType(r);
        }
        double a = toDouble(l);
        double b = toDouble(r);
        bool res = false;
        IrOp irop = IrOp::FloatEq;
        switch (op) {
          case CmpOp::Lt:
            res = a < b;
            irop = IrOp::FloatLt;
            break;
          case CmpOp::Le:
            res = a <= b;
            irop = IrOp::FloatLe;
            break;
          case CmpOp::Eq:
            res = a == b;
            irop = IrOp::FloatEq;
            break;
          case CmpOp::Ne:
            res = a != b;
            irop = IrOp::FloatNe;
            break;
          case CmpOp::Gt:
            res = a > b;
            irop = IrOp::FloatGt;
            break;
          case CmpOp::Ge:
            res = a >= b;
            irop = IrOp::FloatGe;
            break;
          default:
            break;
        }
        if (recd) {
            auto unboxAsFloat = [&](W_Object *w) -> int32_t {
                if (w->typeId() == kTypeFloat)
                    return recUnboxFloat(w);
                return recd->emit(IrOp::CastIntToFloat, recUnboxInt(w));
            };
            int32_t enc = recd->emit(irop, unboxAsFloat(l),
                                     unboxAsFloat(r));
            return newTracedBool(res, enc);
        }
        return newBool(res);
    }

    if (eitherBigInt(l, r)) {
        int c = rt::RBigInt::compare(toBigInt(l), toBigInt(r));
        env_.aotCall(rt::kAotBigIntCmp,
                     toBigInt(l).numDigits() + toBigInt(r).numDigits());
        bool res = false;
        switch (op) {
          case CmpOp::Lt: res = c < 0; break;
          case CmpOp::Le: res = c <= 0; break;
          case CmpOp::Eq: res = c == 0; break;
          case CmpOp::Ne: res = c != 0; break;
          case CmpOp::Gt: res = c > 0; break;
          case CmpOp::Ge: res = c >= 0; break;
          default: break;
        }
        if (recd) {
            recGuardType(l);
            recGuardType(r);
            // The call returns the three-way compare; derive the boolean.
            int32_t call = recCall(IrOp::Call, rt::kAotBigIntCmp,
                                   BoxType::Int, recRef(l), recRef(r));
            IrOp irop = IrOp::IntEq;
            switch (op) {
              case CmpOp::Lt: irop = IrOp::IntLt; break;
              case CmpOp::Le: irop = IrOp::IntLe; break;
              case CmpOp::Eq: irop = IrOp::IntEq; break;
              case CmpOp::Ne: irop = IrOp::IntNe; break;
              case CmpOp::Gt: irop = IrOp::IntGt; break;
              case CmpOp::Ge: irop = IrOp::IntGe; break;
              default: break;
            }
            int32_t enc = recd->emit(irop, call, recd->constInt(0));
            return newTracedBool(res, enc);
        }
        return newBool(res);
    }

    if (l->typeId() == kTypeStr && r->typeId() == kTypeStr) {
        const std::string &a = static_cast<W_Str *>(l)->value;
        const std::string &b = static_cast<W_Str *>(r)->value;
        uint64_t units = std::min(a.size(), b.size()) + 1;
        bool res = false;
        switch (op) {
          case CmpOp::Lt: res = a < b; break;
          case CmpOp::Le: res = a <= b; break;
          case CmpOp::Eq: res = a == b; break;
          case CmpOp::Ne: res = a != b; break;
          case CmpOp::Gt: res = a > b; break;
          case CmpOp::Ge: res = a >= b; break;
          default: break;
        }
        uint32_t fn = (op == CmpOp::Eq || op == CmpOp::Ne)
                          ? rt::kAotStrEq
                          : rt::kAotStrCmp;
        env_.aotCall(fn, units);
        if (recd) {
            recGuardType(l);
            recGuardType(r);
            // ll_streq returns 0/1; ll_strcmp returns the three-way sign.
            int32_t call = recCall(IrOp::Call, fn, BoxType::Int,
                                   recRef(l), recRef(r));
            int32_t enc;
            if (fn == rt::kAotStrEq) {
                enc = op == CmpOp::Eq
                          ? call
                          : recd->emit(IrOp::IntIsZero, call);
            } else {
                IrOp irop = IrOp::IntEq;
                switch (op) {
                  case CmpOp::Lt: irop = IrOp::IntLt; break;
                  case CmpOp::Le: irop = IrOp::IntLe; break;
                  case CmpOp::Gt: irop = IrOp::IntGt; break;
                  case CmpOp::Ge: irop = IrOp::IntGe; break;
                  default: break;
                }
                enc = recd->emit(irop, call, recd->constInt(0));
            }
            return newTracedBool(res, enc);
        }
        return newBool(res);
    }

    // Structural equality fallbacks.
    if (op == CmpOp::Eq || op == CmpOp::Ne) {
        bool eq = objEq(l, r);
        bool res = op == CmpOp::Eq ? eq : !eq;
        if (recd) {
            // Generic equality is an opaque runtime call returning 0/1.
            int32_t call = recCall(IrOp::Call, rt::kAotStrEq, BoxType::Int,
                                   recRef(l), recRef(r), jit::kNoArg,
                                   kSemGenericEq);
            int32_t enc = op == CmpOp::Eq
                              ? call
                              : recd->emit(IrOp::IntIsZero, call);
            return newTracedBool(res, enc);
        }
        return newBool(res);
    }

    // Tuple/list ordering for sort support.
    XLVM_FATAL("unsupported comparison between ", typeName(l->typeId()),
               " and ", typeName(r->typeId()));
}

// ------------------------------------------------------------ truthiness

bool
ObjSpace::isTrueAndGuard(W_Object *w)
{
    auto e = siteEmitter(kSiteTruth);
    emitDispatchCost(e, w);
    e.branch(true);
    Recorder *recd = rec();
    bool res;
    switch (w->typeId()) {
      case kTypeBool: {
        res = static_cast<W_Bool *>(w)->value != 0;
        if (recd) {
            int32_t ref = recRef(w);
            if (jit::isConstRef(ref)) {
                // Singleton bool from outside the trace: pin identity.
            } else {
                recd->guardClass(ref, kTypeBool);
                int32_t v = recUnboxInt(w);
                if (res)
                    recd->guardTrue(v);
                else
                    recd->guardFalse(v);
            }
        }
        return res;
      }
      case kTypeNone:
        if (recd)
            recd->guardValueRef(recRef(w), noneSingleton);
        return false;
      case kTypeInt: {
        res = static_cast<W_Int *>(w)->value != 0;
        if (recd) {
            recGuardType(w);
            int32_t v = recd->emit(IrOp::IntIsTrue, recUnboxInt(w));
            if (res)
                recd->guardTrue(v);
            else
                recd->guardFalse(v);
        }
        return res;
      }
      case kTypeFloat: {
        res = static_cast<W_Float *>(w)->value != 0.0;
        if (recd) {
            recGuardType(w);
            int32_t v = recd->emit(IrOp::FloatNe, recUnboxFloat(w),
                                   recd->constFloat(0.0));
            if (res)
                recd->guardTrue(v);
            else
                recd->guardFalse(v);
        }
        return res;
      }
      case kTypeBigInt:
        return !static_cast<W_BigInt *>(w)->value.isZero();
      case kTypeStr: {
        res = !static_cast<W_Str *>(w)->value.empty();
        if (recd) {
            recGuardType(w);
            int32_t n = recd->emitTyped(IrOp::Strlen, BoxType::Int,
                                        recRef(w));
            int32_t v = recd->emit(IrOp::IntIsTrue, n);
            if (res)
                recd->guardTrue(v);
            else
                recd->guardFalse(v);
        }
        return res;
      }
      case kTypeList: {
        auto *lst = static_cast<W_List *>(w);
        res = lst->length() != 0;
        if (recd) {
            recGuardType(w);
            int32_t n = recd->emitTyped(IrOp::GetfieldGc, BoxType::Int,
                                        recRef(w), kNoArg, kNoArg,
                                        kFieldLength);
            int32_t v = recd->emit(IrOp::IntIsTrue, n);
            if (res)
                recd->guardTrue(v);
            else
                recd->guardFalse(v);
        }
        return res;
      }
      case kTypeTuple:
        return static_cast<W_Tuple *>(w)->items.size() != 0;
      case kTypeDict:
        return static_cast<W_Dict *>(w)->table.size() != 0;
      case kTypeSet:
        return static_cast<W_Set *>(w)->table.size() != 0;
      default:
        // Objects are truthy.
        if (recd)
            recd->guardNonnull(recRef(w));
        return true;
    }
}

} // namespace obj
} // namespace xlvm
