/**
 * @file
 * Execution environment threaded through object-space operations.
 *
 * Bundles the simulated core (for cost emission), the code space, the GC
 * heap, the active trace recorder (non-null while the meta-interpreter is
 * tracing), and the cost model. The flavor field selects between the
 * CPython-analog cost model (hand-written C interpreter, refcounting) and
 * the RPython-analog one (translated interpreter, tracing JIT, real GC).
 */

#ifndef XLVM_OBJ_EXECENV_H
#define XLVM_OBJ_EXECENV_H

#include "gc/heap.h"
#include "jit/recorder.h"
#include "obj/costparams.h"
#include "rt/aot_registry.h"
#include "sim/code_space.h"
#include "sim/core.h"
#include "sim/emitter.h"
#include "xlayer/annot.h"
#include "xlayer/phase.h"

namespace xlvm {
namespace obj {

enum class VmFlavor : uint8_t
{
    RefInterp, ///< CPython analog: direct C interpreter, refcount costs
    RPython    ///< translated interpreter + meta-tracing framework
};

class ExecEnv
{
  public:
    ExecEnv(sim::Core &core, sim::CodeSpace &code_space, gc::Heap &heap,
            VmFlavor flavor, const CostParams &costs = CostParams())
        : core_(core), codeSpace_(code_space), heap_(heap),
          flavor_(flavor), costs_(costs)
    {
    }

    sim::Core &core() { return core_; }
    sim::CodeSpace &codeSpace() { return codeSpace_; }
    gc::Heap &heap() { return heap_; }
    VmFlavor flavor() const { return flavor_; }
    const CostParams &costs() const { return costs_; }
    CostParams &mutableCosts() { return costs_; }

    bool isRPython() const { return flavor_ == VmFlavor::RPython; }

    /** Active trace recorder, or nullptr when not tracing. */
    jit::Recorder *recorder() { return rec; }
    void setRecorder(jit::Recorder *r) { rec = r; }
    bool tracing() const { return rec != nullptr; }

    /** True while executing JIT-compiled trace code. */
    bool inJitCode() const { return inJit; }
    void setInJitCode(bool v) { inJit = v; }

    /** Allocate a stable synthetic code site in the interpreter text. */
    uint64_t
    allocSite(uint32_t insts)
    {
        return codeSpace_.alloc(sim::CodeSegment::Interp, insts);
    }

    /** Stable code site for the blackhole interpreter's text. */
    uint64_t
    blackholeSite()
    {
        if (!bhSite)
            bhSite = allocSite(512);
        return bhSite;
    }

    /**
     * Execute an AOT runtime function's cost: call overhead plus work
     * proportional to @p work_units, attributed to the JIT-call phase
     * when invoked from JIT-compiled code. Emits kAotEnter/kAotExit so
     * the AOT-call profiler (Table III) sees the entry points.
     */
    void
    aotCall(uint32_t fn_id, uint64_t work_units)
    {
        const rt::AotFunction &fn = rt::AotRegistry::instance().fn(fn_id);
        sim::BlockEmitter e(core_, fn.codePc);
        bool fromJit = inJit;
        if (fromJit) {
            e.annot(xlayer::kPhaseEnter,
                    uint32_t(xlayer::Phase::JitCall));
        }
        e.annot(xlayer::kAotEnter, fn_id);
        // Entry overhead: spills, argument marshalling.
        e.alu(costs_.aotFixedInsts / 2);
        e.loadPtr(this, 1);
        // Work body: a load + alu + loop branch per few units. The body
        // loops within the function's code region, as real runtime
        // functions do.
        uint64_t units = work_units ? work_units : 1;
        uint64_t body = units * costs_.aotPerUnitInsts;
        uint64_t bodyPc = fn.codePc + 0x100;
        for (uint64_t i = 0; i < body; i += 3) {
            sim::BlockEmitter be(core_, bodyPc);
            be.load(fn.codePc + 0x800 + (i % 512) * 8, 1);
            be.alu(1);
            be.branch(i + 3 < body);
        }
        e.alu(costs_.aotFixedInsts / 2);
        e.annot(xlayer::kAotExit, fn_id);
        if (fromJit)
            e.annot(xlayer::kPhaseExit, uint32_t(xlayer::Phase::JitCall));
    }

  private:
    sim::Core &core_;
    sim::CodeSpace &codeSpace_;
    gc::Heap &heap_;
    VmFlavor flavor_;
    CostParams costs_;
    jit::Recorder *rec = nullptr;
    bool inJit = false;
    uint64_t bhSite = 0;
};

} // namespace obj
} // namespace xlvm

#endif // XLVM_OBJ_EXECENV_H
