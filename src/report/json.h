/**
 * @file
 * Dependency-free JSON document model, serializer, and parser.
 *
 * Purpose-built for the metrics-export subsystem: object members keep
 * insertion order (so a report serializes to a byte-stable layout),
 * unsigned/signed 64-bit integers are first-class kinds emitted without
 * any double round-trip (counters up to 2^64-1 survive exactly), and
 * doubles are printed with the shortest decimal form that parses back
 * to the identical bit pattern.
 */

#ifndef XLVM_REPORT_JSON_H
#define XLVM_REPORT_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace xlvm {
namespace report {

class Json
{
  public:
    enum class Kind : uint8_t
    {
        Null,
        Bool,
        UInt,
        Int,
        Float,
        String,
        Array,
        Object
    };

    Json() : kind_(Kind::Null) {}
    Json(bool v) : kind_(Kind::Bool), b(v) {}
    Json(uint64_t v) : kind_(Kind::UInt), u(v) {}
    Json(int64_t v) : kind_(Kind::Int), i(v) {}
    Json(int v) : kind_(Kind::Int), i(v) {}
    Json(unsigned v) : kind_(Kind::UInt), u(v) {}
    Json(double v) : kind_(Kind::Float), d(v) {}
    Json(std::string v) : kind_(Kind::String), str(std::move(v)) {}
    Json(const char *v) : kind_(Kind::String), str(v) {}

    static Json
    array()
    {
        Json j;
        j.kind_ = Kind::Array;
        return j;
    }

    static Json
    object()
    {
        Json j;
        j.kind_ = Kind::Object;
        return j;
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    bool
    isNumber() const
    {
        return kind_ == Kind::UInt || kind_ == Kind::Int ||
               kind_ == Kind::Float;
    }

    /** True for the integer kinds (exact-comparison counters). */
    bool isInteger() const { return kind_ == Kind::UInt || kind_ == Kind::Int; }

    bool asBool() const { return b; }
    uint64_t asUInt() const { return kind_ == Kind::Int ? uint64_t(i) : u; }
    int64_t asInt() const { return kind_ == Kind::UInt ? int64_t(u) : i; }
    const std::string &asString() const { return str; }

    /** Numeric value widened to double (lossy above 2^53). */
    double
    asDouble() const
    {
        switch (kind_) {
          case Kind::UInt:
            return double(u);
          case Kind::Int:
            return double(i);
          case Kind::Float:
            return d;
          default:
            return 0.0;
        }
    }

    // ---- object interface (insertion-ordered) -------------------------

    /** Set a member, replacing in place if the key already exists. */
    Json &set(const std::string &key, Json value);

    /** Member lookup; nullptr when absent or not an object. */
    const Json *get(const std::string &key) const;

    const std::vector<std::pair<std::string, Json>> &
    members() const
    {
        return obj;
    }

    // ---- array interface ----------------------------------------------

    Json &push(Json value);
    size_t size() const { return kind_ == Kind::Array ? arr.size() : obj.size(); }
    const Json &at(size_t idx) const { return arr[idx]; }
    const std::vector<Json> &items() const { return arr; }

    // ---- serialization -------------------------------------------------

    /**
     * Serialize with the given indent width (0 = compact single line).
     * Object members appear in insertion order; output is byte-stable
     * for equal documents.
     */
    std::string dump(int indent = 2) const;

    /**
     * Parse a JSON text. On failure returns a Null value and, when
     * @p error is non-null, stores a "line:col: message" description.
     * Integers without fraction/exponent parse to UInt (or Int when
     * negative); everything else numeric parses to Float.
     */
    static Json parse(const std::string &text, std::string *error = nullptr);

    /** Format a double exactly as dump() would (shortest round-trip). */
    static std::string formatDouble(double v);

    /** Append the JSON string-escape of @p s (with quotes) to @p out. */
    static void escape(const std::string &s, std::string &out);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool b = false;
    uint64_t u = 0;
    int64_t i = 0;
    double d = 0.0;
    std::string str;
    std::vector<Json> arr;
    std::vector<std::pair<std::string, Json>> obj;
};

} // namespace report
} // namespace xlvm

#endif // XLVM_REPORT_JSON_H
