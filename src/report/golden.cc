#include "report/golden.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace xlvm {
namespace report {

namespace {

std::string
renderValue(const Json &v)
{
    switch (v.kind()) {
      case Json::Kind::String:
        return v.asString();
      default:
        return v.dump(0);
    }
}

struct Comparator
{
    const GoldenOptions &opts;
    std::vector<Drift> drifts;

    bool
    ignored(const std::string &key) const
    {
        for (const std::string &k : opts.ignoreKeys) {
            if (k == key)
                return true;
        }
        return false;
    }

    void
    drift(const std::string &path, const Json *g, const Json *f,
          std::string note)
    {
        Drift d;
        d.path = path;
        d.golden = g ? renderValue(*g) : "<missing>";
        d.fresh = f ? renderValue(*f) : "<missing>";
        d.note = std::move(note);
        drifts.push_back(std::move(d));
    }

    /** Label an array element: prefer workload/vm identity when present. */
    static std::string
    elementLabel(const Json &el, size_t idx)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%zu", idx);
        if (el.isObject()) {
            const Json *w = el.get("workload");
            const Json *vm = el.get("vm");
            if (w && vm)
                return std::string(buf) + ":" + w->asString() + "/" +
                       vm->asString();
        }
        return buf;
    }

    void
    compare(const std::string &path, const Json &g, const Json &f)
    {
        // Numbers: exact for integer-vs-integer, tolerant otherwise.
        if (g.isNumber() && f.isNumber()) {
            if (g.isInteger() && f.isInteger()) {
                // Compare through the signed/unsigned union exactly.
                bool gNeg = g.kind() == Json::Kind::Int && g.asInt() < 0;
                bool fNeg = f.kind() == Json::Kind::Int && f.asInt() < 0;
                if (gNeg != fNeg || (gNeg ? g.asInt() != f.asInt()
                                          : g.asUInt() != f.asUInt())) {
                    drift(path, &g, &f, "integer counter drift");
                }
                return;
            }
            double a = g.asDouble(), b = f.asDouble();
            double diff = std::fabs(a - b);
            double scale = std::max(std::fabs(a), std::fabs(b));
            if (diff > opts.atol && diff > opts.rtol * scale) {
                char note[64];
                std::snprintf(note, sizeof(note), "rel err %.3g",
                              scale > 0 ? diff / scale : diff);
                drift(path, &g, &f, note);
            }
            return;
        }

        if (g.kind() != f.kind()) {
            drift(path, &g, &f, "type mismatch");
            return;
        }

        switch (g.kind()) {
          case Json::Kind::Null:
            return;
          case Json::Kind::Bool:
            if (g.asBool() != f.asBool())
                drift(path, &g, &f, "bool drift");
            return;
          case Json::Kind::String:
            if (g.asString() != f.asString())
                drift(path, &g, &f, "string drift");
            return;
          case Json::Kind::Array: {
            size_t n = std::min(g.size(), f.size());
            for (size_t k = 0; k < n; ++k) {
                std::string label = elementLabel(g.at(k), k);
                compare(path + "[" + label + "]", g.at(k), f.at(k));
            }
            for (size_t k = n; k < g.size(); ++k)
                drift(path + "[" + elementLabel(g.at(k), k) + "]",
                      &g.at(k), nullptr, "element missing from fresh");
            for (size_t k = n; k < f.size(); ++k)
                drift(path + "[" + elementLabel(f.at(k), k) + "]", nullptr,
                      &f.at(k), "element missing from golden");
            return;
          }
          case Json::Kind::Object: {
            for (const auto &kv : g.members()) {
                if (ignored(kv.first))
                    continue;
                std::string sub =
                    path.empty() ? kv.first : path + "." + kv.first;
                const Json *other = f.get(kv.first);
                if (!other)
                    drift(sub, &kv.second, nullptr, "key missing from fresh");
                else
                    compare(sub, kv.second, *other);
            }
            for (const auto &kv : f.members()) {
                if (ignored(kv.first))
                    continue;
                if (!g.get(kv.first)) {
                    std::string sub =
                        path.empty() ? kv.first : path + "." + kv.first;
                    drift(sub, nullptr, &kv.second,
                          "key missing from golden");
                }
            }
            return;
          }
          default:
            return;
        }
    }
};

} // namespace

std::vector<Drift>
compareReports(const Json &golden, const Json &fresh,
               const GoldenOptions &opts)
{
    Comparator c{opts, {}};
    c.compare("", golden, fresh);
    return c.drifts;
}

std::string
formatDriftDiff(const std::string &golden_name, const std::string &fresh_name,
                const std::vector<Drift> &drifts)
{
    std::string out;
    out += "--- " + golden_name + " (golden)\n";
    out += "+++ " + fresh_name + " (fresh)\n";
    for (const Drift &d : drifts) {
        out += "@@ " + d.path;
        if (!d.note.empty())
            out += "  [" + d.note + "]";
        out += "\n";
        if (d.golden != "<missing>")
            out += "-" + d.path + " = " + d.golden + "\n";
        if (d.fresh != "<missing>")
            out += "+" + d.path + " = " + d.fresh + "\n";
    }
    return out;
}

bool
loadReport(const std::string &path, Json *out, std::string *err)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        if (err)
            *err = "cannot open " + path;
        return false;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    if (f.bad()) {
        if (err)
            *err = "read error on " + path;
        return false;
    }
    std::string text = ss.str();
    if (text.find_first_not_of(" \t\r\n") == std::string::npos) {
        if (err)
            *err = path + ": empty report (truncated write?)";
        return false;
    }
    std::string parseErr;
    Json doc = Json::parse(text, &parseErr);
    if (!parseErr.empty()) {
        if (err)
            *err = path + ":" + parseErr;
        return false;
    }
    // A bare literal ("null", "42", an array) parses cleanly but is not
    // a report; comparing against one would vacuously pass, hiding a
    // corrupt golden. Insist on the top-level object shape.
    if (!doc.isObject()) {
        if (err)
            *err = path + ": not a JSON report object";
        return false;
    }
    *out = std::move(doc);
    return true;
}

} // namespace report
} // namespace xlvm
