/**
 * @file
 * Golden-snapshot comparison for metrics reports.
 *
 * Structural diff between a freshly generated report and a committed
 * golden: integer counters must match exactly (the stack is
 * deterministic, so any drift is a real behavior change), derived
 * floats (IPC, MPKI, shares, AOT cycles) compare under a configurable
 * relative tolerance, and strings/bools/shape must be identical.
 * Drifts carry a human-readable path like
 * "runs[2:richards/PyPy*].metrics.phases.jit.instructions".
 */

#ifndef XLVM_REPORT_GOLDEN_H
#define XLVM_REPORT_GOLDEN_H

#include <string>
#include <vector>

#include "report/json.h"

namespace xlvm {
namespace report {

struct GoldenOptions
{
    /** Relative tolerance for float-vs-float comparison. */
    double rtol = 1e-6;
    /** Absolute floor below which two floats always compare equal. */
    double atol = 1e-12;
    /**
     * Object keys to skip wherever they appear (both sides): a key
     * listed here never produces a drift, whether its values differ or
     * it is missing from one report entirely. Used by the memo-off CI
     * pass to exclude the host-side "sim_memo" section whose counters
     * legitimately differ between the two gate runs.
     */
    std::vector<std::string> ignoreKeys;
};

/** One drifted counter (or shape mismatch). */
struct Drift
{
    std::string path;
    std::string golden; ///< rendered golden value, or "<missing>"
    std::string fresh;  ///< rendered fresh value, or "<missing>"
    std::string note;   ///< e.g. "rel err 3.1e-4" or "type mismatch"
};

/**
 * Compare @p fresh against @p golden; returns every drift in document
 * order (empty = reports agree).
 */
std::vector<Drift> compareReports(const Json &golden, const Json &fresh,
                                  const GoldenOptions &opts = GoldenOptions());

/**
 * Render drifts as a unified-diff-style listing: "-" lines show the
 * golden value, "+" lines the fresh value, one hunk per drifted path.
 */
std::string formatDriftDiff(const std::string &golden_name,
                            const std::string &fresh_name,
                            const std::vector<Drift> &drifts);

/**
 * Load a JSON report from @p path. Returns false and sets @p err on
 * missing file or parse failure.
 */
bool loadReport(const std::string &path, Json *out, std::string *err);

} // namespace report
} // namespace xlvm

#endif // XLVM_REPORT_GOLDEN_H
