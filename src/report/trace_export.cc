#include "report/trace_export.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <vector>

#include "sim/core.h"
#include "xlayer/phase.h"

namespace xlvm {
namespace report {

namespace {

/** Thread ids within one run's process. */
constexpr int kTidPhases = 0;
constexpr int kTidTraces = 1;
constexpr int kTidEvents = 2;

/** Timeline entries kept by summarize before truncation. */
constexpr size_t kTimelineCap = 200;

double
tsMicros(uint64_t cycles_fp, double freq_ghz)
{
    return double(cycles_fp) / (double(sim::kCycleFp) * freq_ghz * 1e3);
}

Json
metaEvent(int pid, int tid, const char *kind, const std::string &name)
{
    Json ev = Json::object();
    ev.set("name", Json(kind));
    ev.set("ph", Json("M"));
    ev.set("pid", Json(pid));
    ev.set("tid", Json(tid));
    Json args = Json::object();
    args.set("name", Json(name));
    ev.set("args", std::move(args));
    return ev;
}

Json
recordEvent(const char *ph, const std::string &name, int pid, int tid,
            uint64_t cycles_fp, double freq_ghz, uint32_t tag,
            uint32_t payload, const char *phase, bool synth = false)
{
    Json ev = Json::object();
    ev.set("name", Json(name));
    ev.set("ph", Json(ph));
    if (ph[0] == 'i')
        ev.set("s", Json("t")); // thread-scoped instant
    ev.set("ts", Json(tsMicros(cycles_fp, freq_ghz)));
    ev.set("pid", Json(pid));
    ev.set("tid", Json(tid));
    Json args = Json::object();
    args.set("tag", Json(uint64_t(tag)));
    args.set("payload", Json(uint64_t(payload)));
    args.set("phase", Json(phase));
    args.set("cfp", Json(cycles_fp));
    if (synth)
        args.set("synth", Json(uint64_t(1)));
    ev.set("args", std::move(args));
    return ev;
}

std::string
traceName(uint32_t trace_id)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "trace#%u", trace_id);
    return buf;
}

const Json *
eventArg(const Json &ev, const char *key)
{
    const Json *args = ev.get("args");
    return args ? args->get(key) : nullptr;
}

bool
isSynthetic(const Json &ev)
{
    const Json *s = eventArg(ev, "synth");
    return s && s->asUInt() != 0;
}

} // namespace

const char *
annotTagName(uint32_t tag)
{
    using namespace xlayer;
    switch (tag) {
      case kPhaseEnter:
        return "phase_enter";
      case kPhaseExit:
        return "phase_exit";
      case kDispatch:
        return "dispatch";
      case kLoopCompiled:
        return "loop_compiled";
      case kBridgeCompiled:
        return "bridge_compiled";
      case kTraceAborted:
        return "trace_aborted";
      case kTraceEnter:
        return "trace_enter";
      case kTraceLeave:
        return "trace_leave";
      case kDeopt:
        return "deopt";
      case kGcMinor:
        return "gc_minor";
      case kGcMajor:
        return "gc_major";
      case kAotEnter:
        return "aot_enter";
      case kAotExit:
        return "aot_exit";
      case kIrNode:
        return "ir_node";
      case kAppEvent:
        return "app_event";
      case kMemoHit:
        return "memo_hit";
      case kMemoInvalidate:
        return "memo_invalidate";
      case kMemoMiss:
        return "memo_miss";
      case kTierUp:
        return "tier_up";
      case kTier1Compile:
        return "tier1_compile";
      case kSuperblockHit:
        return "superblock_hit";
      case kSuperblockDiverge:
        return "superblock_diverge";
      default:
        return nullptr;
    }
}

std::string
annotTagLabel(uint32_t tag)
{
    const char *name = annotTagName(tag);
    if (name)
        return name;
    // Tags minted after this build of the tool: keep them visible and
    // distinguishable rather than collapsing them into one "unknown".
    return "tag<" + std::to_string(tag) + ">";
}

int32_t
annotTagFromString(const std::string &s)
{
    if (s.empty())
        return -1;
    if (s.find_first_not_of("0123456789") == std::string::npos)
        return int32_t(std::strtoul(s.c_str(), nullptr, 10));
    for (uint32_t tag = 1; tag < 32; ++tag) {
        if (s == annotTagLabel(tag))
            return int32_t(tag);
    }
    return -1;
}

ChromeTraceBuilder::ChromeTraceBuilder(double frequency_ghz)
    : freqGhz_(frequency_ghz),
      events_(Json::array()),
      runsMeta_(Json::array())
{
}

void
ChromeTraceBuilder::setProvenance(Json provenance)
{
    provenance_ = std::move(provenance);
    hasProvenance_ = true;
}

int
ChromeTraceBuilder::addRun(const std::string &workload,
                           const std::string &vm,
                           const xlayer::TraceLog &log,
                           const Json *provenance)
{
    using namespace xlayer;

    const int pid = nextPid_++;
    dropped_ += log.droppedEvents;

    events_.push(metaEvent(pid, kTidPhases, "process_name",
                           workload + " @ " + vm));
    events_.push(metaEvent(pid, kTidPhases, "thread_name", "phases"));
    events_.push(metaEvent(pid, kTidTraces, "thread_name", "traces"));
    events_.push(metaEvent(pid, kTidEvents, "thread_name", "events"));

    Json meta = Json::object();
    meta.set("pid", Json(pid));
    meta.set("workload", Json(workload));
    meta.set("vm", Json(vm));
    meta.set("recorded_events", Json(log.recordedEvents));
    meta.set("dropped_events", Json(log.droppedEvents));
    meta.set("capacity_events", Json(log.capacityEvents));
    meta.set("counter_samples", Json(uint64_t(log.counters.size())));
    meta.set("dropped_counter_samples", Json(log.droppedCounters));
    if (provenance)
        meta.set("provenance", *provenance);
    runsMeta_.push(std::move(meta));

    const uint64_t firstFp =
        log.events.empty() ? 0 : log.events.front().cyclesFp;
    uint64_t lastFp = firstFp;

    // Replay the phase and trace nesting so head-truncated logs (ring
    // wraparound dropped the matching begins) still produce a balanced
    // B/E document: unmatched exits get a synthetic begin at the first
    // surviving timestamp, unmatched begins a synthetic end at the last.
    std::vector<uint32_t> phaseStack;
    std::vector<uint32_t> traceStack;

    for (const TraceRecord &r : log.events) {
        lastFp = r.cyclesFp;
        const char *phaseStr = phaseName(Phase(r.phase));
        switch (r.tag) {
          case kPhaseEnter:
            phaseStack.push_back(r.payload);
            events_.push(recordEvent("B", phaseName(Phase(r.payload)),
                                     pid, kTidPhases, r.cyclesFp,
                                     freqGhz_, r.tag, r.payload,
                                     phaseName(Phase(r.payload))));
            break;
          case kPhaseExit:
            if (phaseStack.empty()) {
                events_.push(recordEvent(
                    "B", phaseName(Phase(r.payload)), pid, kTidPhases,
                    firstFp, freqGhz_, kPhaseEnter, r.payload,
                    phaseName(Phase(r.payload)), true));
            } else {
                phaseStack.pop_back();
            }
            events_.push(recordEvent("E", phaseName(Phase(r.payload)),
                                     pid, kTidPhases, r.cyclesFp,
                                     freqGhz_, r.tag, r.payload,
                                     phaseName(Phase(r.payload))));
            break;
          case kTraceEnter:
            traceStack.push_back(r.payload);
            events_.push(recordEvent("B", traceName(r.payload), pid,
                                     kTidTraces, r.cyclesFp, freqGhz_,
                                     r.tag, r.payload, phaseStr));
            break;
          case kTraceLeave:
            if (traceStack.empty()) {
                events_.push(recordEvent("B", traceName(r.payload), pid,
                                         kTidTraces, firstFp, freqGhz_,
                                         kTraceEnter, r.payload,
                                         phaseStr, true));
            } else {
                traceStack.pop_back();
            }
            events_.push(recordEvent("E", traceName(r.payload), pid,
                                     kTidTraces, r.cyclesFp, freqGhz_,
                                     r.tag, r.payload, phaseStr));
            break;
          default:
            events_.push(recordEvent("i", annotTagLabel(r.tag), pid,
                                     kTidEvents, r.cyclesFp, freqGhz_,
                                     r.tag, r.payload, phaseStr));
            break;
        }
    }

    while (!traceStack.empty()) {
        uint32_t id = traceStack.back();
        traceStack.pop_back();
        events_.push(recordEvent("E", traceName(id), pid, kTidTraces,
                                 lastFp, freqGhz_, xlayer::kTraceLeave,
                                 id, "", true));
    }
    while (!phaseStack.empty()) {
        uint32_t p = phaseStack.back();
        phaseStack.pop_back();
        events_.push(recordEvent("E", phaseName(Phase(p)), pid,
                                 kTidPhases, lastFp, freqGhz_,
                                 xlayer::kPhaseExit, p,
                                 phaseName(Phase(p)), true));
    }

    for (const TraceCounterSample &s : log.counters) {
        Json heap = Json::object();
        heap.set("name", Json("heap_bytes"));
        heap.set("ph", Json("C"));
        heap.set("ts", Json(tsMicros(s.cyclesFp, freqGhz_)));
        heap.set("pid", Json(pid));
        heap.set("tid", Json(kTidPhases));
        Json hargs = Json::object();
        hargs.set("bytes", Json(s.heapBytes));
        hargs.set("cfp", Json(s.cyclesFp));
        heap.set("args", std::move(hargs));
        events_.push(std::move(heap));

        Json cache = Json::object();
        cache.set("name", Json("trace_cache_bytes"));
        cache.set("ph", Json("C"));
        cache.set("ts", Json(tsMicros(s.cyclesFp, freqGhz_)));
        cache.set("pid", Json(pid));
        cache.set("tid", Json(kTidPhases));
        Json cargs = Json::object();
        cargs.set("bytes", Json(s.traceCacheBytes));
        cargs.set("cfp", Json(s.cyclesFp));
        cache.set("args", std::move(cargs));
        events_.push(std::move(cache));
    }

    return pid;
}

Json
ChromeTraceBuilder::toJson() const
{
    Json doc = Json::object();
    doc.set("displayTimeUnit", Json("ms"));
    Json other = Json::object();
    other.set("generator", Json("xlvm"));
    other.set("frequency_ghz", Json(freqGhz_));
    other.set("time_unit", Json("simulated microseconds"));
    if (hasProvenance_)
        other.set("provenance", provenance_);
    other.set("runs", runsMeta_);
    doc.set("otherData", std::move(other));
    doc.set("traceEvents", events_);
    return doc;
}

bool
writeChromeTrace(const Json &doc, const std::string &path,
                 std::string *err)
{
    std::string payload = doc.dump(1) + "\n";
    if (path == "-") {
        std::fwrite(payload.data(), 1, payload.size(), stdout);
        return true;
    }
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) {
        if (err)
            *err = "cannot open " + path + " for writing";
        return false;
    }
    f.write(payload.data(), std::streamsize(payload.size()));
    f.flush();
    if (!f) {
        if (err)
            *err = "write failed for " + path;
        return false;
    }
    return true;
}

Json
filterChromeTrace(const Json &doc, const TraceFilter &f)
{
    Json out = Json::object();
    for (const auto &member : doc.members()) {
        if (member.first != "traceEvents")
            out.set(member.first, member.second);
    }
    Json kept = Json::array();
    const Json *events = doc.get("traceEvents");
    if (events && events->isArray()) {
        for (const Json &ev : events->items()) {
            const Json *ph = ev.get("ph");
            if (ph && ph->asString() == "M") {
                kept.push(ev);
                continue;
            }
            if (f.tag >= 0) {
                const Json *tag = eventArg(ev, "tag");
                if (!tag || tag->asUInt() != uint64_t(f.tag))
                    continue;
            }
            if (!f.phase.empty()) {
                const Json *phase = eventArg(ev, "phase");
                if (!phase || phase->asString() != f.phase)
                    continue;
            }
            if (f.cycleMin != 0 || f.cycleMax != UINT64_MAX) {
                const Json *cfp = eventArg(ev, "cfp");
                if (!cfp)
                    continue;
                uint64_t cycles = cfp->asUInt() / sim::kCycleFp;
                if (cycles < f.cycleMin || cycles > f.cycleMax)
                    continue;
            }
            kept.push(ev);
        }
    }
    out.set("traceEvents", std::move(kept));
    return out;
}

std::string
dumpChromeTrace(const Json &doc)
{
    std::string out;
    const Json *events = doc.get("traceEvents");
    if (!events || !events->isArray())
        return out;
    char buf[160];
    for (const Json &ev : events->items()) {
        const Json *ph = ev.get("ph");
        const Json *name = ev.get("name");
        const Json *pid = ev.get("pid");
        if (!ph || !name || !pid)
            continue;
        if (ph->asString() == "M") {
            const Json *arg = eventArg(ev, "name");
            std::snprintf(buf, sizeof(buf), "pid=%llu M %s=%s\n",
                          (unsigned long long)pid->asUInt(),
                          name->asString().c_str(),
                          arg ? arg->asString().c_str() : "");
            out += buf;
            continue;
        }
        const Json *ts = ev.get("ts");
        const Json *tag = eventArg(ev, "tag");
        const Json *payload = eventArg(ev, "payload");
        const Json *phase = eventArg(ev, "phase");
        const Json *cfp = eventArg(ev, "cfp");
        const Json *bytes = eventArg(ev, "bytes");
        std::snprintf(buf, sizeof(buf),
                      "pid=%llu ts=%.3fus %s %s", //
                      (unsigned long long)pid->asUInt(),
                      ts ? ts->asDouble() : 0.0, ph->asString().c_str(),
                      name->asString().c_str());
        out += buf;
        if (tag) {
            std::snprintf(buf, sizeof(buf), " tag=%llu payload=%llu",
                          (unsigned long long)tag->asUInt(),
                          (unsigned long long)
                              (payload ? payload->asUInt() : 0));
            out += buf;
        }
        if (bytes) {
            std::snprintf(buf, sizeof(buf), " bytes=%llu",
                          (unsigned long long)bytes->asUInt());
            out += buf;
        }
        if (phase && !phase->asString().empty())
            out += " phase=" + phase->asString();
        if (cfp) {
            std::snprintf(buf, sizeof(buf), " cycles=%llu",
                          (unsigned long long)(cfp->asUInt() /
                                               sim::kCycleFp));
            out += buf;
        }
        if (isSynthetic(ev))
            out += " synth=1";
        out.push_back('\n');
    }
    return out;
}

Json
summarizeChromeTrace(const Json &doc, size_t top_n)
{
    using namespace xlayer;

    Json summary = Json::object();

    uint64_t droppedTotal = 0;
    Json runs = Json::array();
    if (const Json *other = doc.get("otherData")) {
        if (const Json *r = other->get("runs")) {
            runs = *r;
            for (const Json &run : r->items()) {
                if (const Json *d = run.get("dropped_events"))
                    droppedTotal += d->asUInt();
            }
        }
    }
    summary.set("runs", std::move(runs));

    std::map<std::string, std::pair<uint64_t, uint64_t>> phaseCounts;
    std::map<std::string, uint64_t> instantCounts;
    std::map<uint64_t, uint64_t> guardFailures;
    /** phase name -> {hits, misses, invalidations, superblock hits,
     *  superblock divergences} (sim memoization + superblock replay). */
    std::map<std::string, std::array<uint64_t, 5>> memoByPhase;
    Json timeline = Json::array();
    uint64_t timelineTruncated = 0;
    uint64_t counterSamples = 0;
    uint64_t totalEvents = 0;

    const Json *events = doc.get("traceEvents");
    if (events && events->isArray()) {
        for (const Json &ev : events->items()) {
            const Json *phj = ev.get("ph");
            if (!phj)
                continue;
            const std::string &ph = phj->asString();
            if (ph == "M")
                continue;
            ++totalEvents;
            if (ph == "C") {
                ++counterSamples;
                continue;
            }
            if (isSynthetic(ev))
                continue;
            const Json *tagj = eventArg(ev, "tag");
            uint32_t tag = tagj ? uint32_t(tagj->asUInt()) : 0;
            const Json *payloadj = eventArg(ev, "payload");
            uint64_t payload = payloadj ? payloadj->asUInt() : 0;

            if (tag == kPhaseEnter || tag == kPhaseExit) {
                // Corrupt/hand-edited documents may drop the name;
                // bucket those events instead of crashing on them.
                const Json *namej = ev.get("name");
                auto &pc = phaseCounts[namej ? namej->asString()
                                             : std::string("?")];
                if (tag == kPhaseEnter)
                    ++pc.first;
                else
                    ++pc.second;
                continue;
            }
            if (ph == "i")
                ++instantCounts[annotTagLabel(tag)];
            if (tag == kMemoHit || tag == kMemoMiss ||
                tag == kMemoInvalidate || tag == kSuperblockHit ||
                tag == kSuperblockDiverge) {
                const Json *phasej = eventArg(ev, "phase");
                std::string phase =
                    phasej ? phasej->asString() : std::string("?");
                auto &mc = memoByPhase[phase];
                if (tag == kMemoHit)
                    ++mc[0];
                else if (tag == kMemoMiss)
                    ++mc[1];
                else if (tag == kMemoInvalidate)
                    ++mc[2];
                else if (tag == kSuperblockHit)
                    ++mc[3];
                else
                    ++mc[4];
            }
            if (tag == kDeopt)
                ++guardFailures[payload];
            if (tag == kLoopCompiled || tag == kBridgeCompiled ||
                tag == kTraceAborted || tag == kDeopt ||
                tag == kTierUp || tag == kTier1Compile) {
                if (timeline.size() < kTimelineCap) {
                    Json entry = Json::object();
                    const Json *ts = ev.get("ts");
                    entry.set("ts_us", Json(ts ? ts->asDouble() : 0.0));
                    entry.set("event", Json(annotTagLabel(tag)));
                    entry.set("payload", Json(payload));
                    timeline.push(std::move(entry));
                } else {
                    ++timelineTruncated;
                }
            }
        }
    }

    Json phases = Json::object();
    for (const auto &pc : phaseCounts) {
        Json counts = Json::object();
        counts.set("enters", Json(pc.second.first));
        counts.set("exits", Json(pc.second.second));
        phases.set(pc.first, std::move(counts));
    }
    summary.set("phase_events", std::move(phases));

    Json instants = Json::object();
    for (const auto &ic : instantCounts)
        instants.set(ic.first, Json(ic.second));
    summary.set("instants", std::move(instants));

    std::vector<std::pair<uint64_t, uint64_t>> guards(
        guardFailures.begin(), guardFailures.end());
    std::sort(guards.begin(), guards.end(),
              [](const auto &a, const auto &b) {
                  return a.second != b.second ? a.second > b.second
                                              : a.first < b.first;
              });
    if (guards.size() > top_n)
        guards.resize(top_n);
    Json topGuards = Json::array();
    for (const auto &g : guards) {
        Json entry = Json::object();
        entry.set("guard", Json(g.first));
        entry.set("count", Json(g.second));
        topGuards.push(std::move(entry));
    }
    summary.set("top_guard_failures", std::move(topGuards));

    Json memo = Json::object();
    for (const auto &mc : memoByPhase) {
        Json counts = Json::object();
        counts.set("hits", Json(mc.second[0]));
        counts.set("misses", Json(mc.second[1]));
        counts.set("invalidations", Json(mc.second[2]));
        counts.set("superblock_hits", Json(mc.second[3]));
        counts.set("superblock_divergences", Json(mc.second[4]));
        memo.set(mc.first, std::move(counts));
    }
    summary.set("memo_by_phase", std::move(memo));

    summary.set("compile_deopt_timeline", std::move(timeline));
    summary.set("timeline_truncated", Json(timelineTruncated));
    summary.set("counter_samples", Json(counterSamples));
    summary.set("total_events", Json(totalEvents));
    summary.set("dropped_events", Json(droppedTotal));
    return summary;
}

std::string
formatTraceSummary(const Json &summary)
{
    std::string out;
    char buf[256];

    const Json *runs = summary.get("runs");
    std::snprintf(buf, sizeof(buf), "runs: %zu\n",
                  runs ? runs->size() : size_t(0));
    out += buf;
    if (runs) {
        for (const Json &run : runs->items()) {
            auto u = [&run](const char *k) -> unsigned long long {
                const Json *v = run.get(k);
                return v ? (unsigned long long)v->asUInt() : 0;
            };
            auto s = [&run](const char *k) -> std::string {
                const Json *v = run.get(k);
                return v ? v->asString() : std::string();
            };
            std::snprintf(buf, sizeof(buf),
                          "  pid %llu: %s @ %s  recorded=%llu "
                          "dropped=%llu capacity=%llu\n",
                          u("pid"), s("workload").c_str(),
                          s("vm").c_str(), u("recorded_events"),
                          u("dropped_events"), u("capacity_events"));
            out += buf;
        }
    }

    out += "phase events (enter/exit):\n";
    if (const Json *phases = summary.get("phase_events")) {
        for (const auto &m : phases->members()) {
            auto pu = [&m](const char *k) -> unsigned long long {
                const Json *v = m.second.get(k);
                return v ? (unsigned long long)v->asUInt() : 0;
            };
            std::snprintf(buf, sizeof(buf), "  %-10s %llu/%llu\n",
                          m.first.c_str(), pu("enters"), pu("exits"));
            out += buf;
        }
    }

    out += "instant events:\n";
    if (const Json *instants = summary.get("instants")) {
        for (const auto &m : instants->members()) {
            std::snprintf(buf, sizeof(buf), "  %-16s %llu\n",
                          m.first.c_str(),
                          (unsigned long long)m.second.asUInt());
            out += buf;
        }
    }

    if (const Json *guards = summary.get("top_guard_failures")) {
        if (guards->size() > 0) {
            out += "top guard failures:\n";
            for (const Json &g : guards->items()) {
                const Json *id = g.get("guard");
                const Json *n = g.get("count");
                std::snprintf(
                    buf, sizeof(buf), "  guard %llu: %llu\n",
                    (unsigned long long)(id ? id->asUInt() : 0),
                    (unsigned long long)(n ? n->asUInt() : 0));
                out += buf;
            }
        }
    }

    if (const Json *memo = summary.get("memo_by_phase")) {
        if (memo->size() > 0) {
            out += "sim memoization by phase "
                   "(hit/miss/invalidate, sb hit/diverge):\n";
            for (const auto &m : memo->members()) {
                auto mu = [&m](const char *k) -> unsigned long long {
                    const Json *v = m.second.get(k);
                    return v ? (unsigned long long)v->asUInt() : 0;
                };
                std::snprintf(buf, sizeof(buf),
                              "  %-10s %llu/%llu/%llu, %llu/%llu\n",
                              m.first.c_str(), mu("hits"), mu("misses"),
                              mu("invalidations"), mu("superblock_hits"),
                              mu("superblock_divergences"));
                out += buf;
            }
        }
    }

    if (const Json *tl = summary.get("compile_deopt_timeline")) {
        if (tl->size() > 0) {
            std::snprintf(buf, sizeof(buf),
                          "compile/deopt timeline (first %zu):\n",
                          tl->size());
            out += buf;
            for (const Json &e : tl->items()) {
                const Json *ts = e.get("ts_us");
                const Json *name = e.get("event");
                const Json *payload = e.get("payload");
                std::snprintf(
                    buf, sizeof(buf), "  %12.3fus %-16s #%llu\n",
                    ts ? ts->asDouble() : 0.0,
                    name ? name->asString().c_str() : "?",
                    (unsigned long long)
                        (payload ? payload->asUInt() : 0));
                out += buf;
            }
            const Json *trunc = summary.get("timeline_truncated");
            if (trunc && trunc->asUInt() > 0) {
                std::snprintf(buf, sizeof(buf),
                              "  ... %llu more entries not shown\n",
                              (unsigned long long)trunc->asUInt());
                out += buf;
            }
        }
    }

    auto total = [&summary](const char *k) -> unsigned long long {
        const Json *v = summary.get(k);
        return v ? (unsigned long long)v->asUInt() : 0;
    };
    std::snprintf(buf, sizeof(buf),
                  "events: %llu  counter samples: %llu  dropped: %llu\n",
                  total("total_events"), total("counter_samples"),
                  total("dropped_events"));
    out += buf;
    return out;
}

} // namespace report
} // namespace xlvm
