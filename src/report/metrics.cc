#include "report/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "rt/aot_registry.h"
#include "xlayer/phase.h"

namespace xlvm {
namespace report {

bool
targetsFromArgs(int argc, char **argv, const std::string &default_stem,
                std::vector<ReportTarget> *out, std::string *err)
{
    auto parseSpec = [&](const std::string &spec) -> bool {
        ReportTarget t;
        std::string fmt = spec;
        size_t colon = spec.find(':');
        if (colon != std::string::npos) {
            fmt = spec.substr(0, colon);
            t.path = spec.substr(colon + 1);
        }
        if (fmt == "json") {
            t.format = ReportTarget::Format::Json;
        } else if (fmt == "csv") {
            t.format = ReportTarget::Format::Csv;
        } else {
            if (err)
                *err = "unknown report format '" + fmt +
                       "' (expected json or csv)";
            return false;
        }
        if (t.path.empty())
            t.path = default_stem +
                     (t.format == ReportTarget::Format::Json ? ".json"
                                                             : ".csv");
        out->push_back(std::move(t));
        return true;
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--report") == 0) {
            if (i + 1 >= argc) {
                if (err)
                    *err = "--report requires an argument";
                return false;
            }
            if (!parseSpec(argv[++i]))
                return false;
        } else if (std::strncmp(a, "--report=", 9) == 0) {
            if (!parseSpec(a + 9))
                return false;
        }
    }
    return true;
}

MetricsRegistry::MetricsRegistry(std::string report_name)
    : name_(std::move(report_name))
{
}

void
MetricsRegistry::addRun(const driver::RunOptions &opts,
                        const driver::RunResult &r)
{
    Run run;
    run.workload = opts.workload;
    run.vm = driver::vmKindName(opts.vm);
    run.completed = r.completed;
    run.error = r.error;

    std::vector<Metric> &m = run.metrics;
    auto addU = [&m](const char *section, const char *name, uint64_t v) {
        Metric e;
        e.section = section;
        e.name = name;
        e.u = v;
        m.push_back(std::move(e));
    };
    auto addF = [&m](const char *section, const char *name, double v) {
        Metric e;
        e.section = section;
        e.name = name;
        e.isFloat = true;
        e.d = v;
        m.push_back(std::move(e));
    };

    // The effective configuration, so a golden also pins what was run.
    addU("config", "scale", uint64_t(opts.scale));
    addU("config", "loop_threshold", opts.loopThreshold);
    addU("config", "bridge_threshold", opts.bridgeThreshold);
    addU("config", "max_instructions", opts.maxInstructions);
    addU("config", "work_sample_instrs", opts.workSampleInstrs);
    addU("config", "timeline_bin", opts.timelineBin);
    addU("config", "ir_annotations", opts.irAnnotations);
    addU("config", "opt_virtualize", opts.optVirtualize);
    addU("config", "opt_heap_cache", opts.optHeapCache);
    addU("config", "opt_elide_guards", opts.optElideGuards);
    addU("config", "opt_fold_constants", opts.optFoldConstants);
    addU("config", "trace_buffer_events", opts.traceBufferEvents);
    addU("config", "tier_mode", uint64_t(opts.tierMode));
    addU("config", "tier1_threshold", opts.tier1Threshold);
    addU("config", "tier2_threshold", opts.tier2Threshold);
    addU("config", "storm_threshold", opts.stormThreshold);
    addU("config", "blacklist_cooldown", opts.blacklistCooldown);
    addU("config", "compile_budget_ops", opts.compileBudgetOps);
    addU("config", "max_traces", opts.maxTraces);

    // Machine level: whole-run counters and derived ratios (Tables I/II).
    uint64_t totalInstrs = 0;
    {
        // Totals are re-derivable from the per-phase buckets, but the
        // paper's headline numbers are whole-run, so emit them directly.
        sim::PerfCounters total{};
        for (uint32_t p = 0; p < xlayer::kNumPhases; ++p)
            total.accumulate(r.phaseCounters[p]);
        totalInstrs = total.instructions;
        addU("totals", "instructions", total.instructions);
        addU("totals", "cycles_fp", total.cyclesFp);
        addU("totals", "branches", total.branches);
        addU("totals", "cond_branches", total.condBranches);
        addU("totals", "mispredicts", total.mispredicts);
        addU("totals", "loads", total.loads);
        addU("totals", "stores", total.stores);
        addU("totals", "icache_misses", total.icacheMisses);
        addU("totals", "dcache_misses", total.dcacheMisses);
        addU("totals", "annotations", total.annotations);
        addF("totals", "seconds", r.seconds);
        addF("totals", "ipc", r.ipc);
        addF("totals", "branch_mpki", r.branchMpki);
        addF("totals", "branch_rate", r.branchRate);
        addF("totals", "branch_miss_rate", r.branchMissRate);
    }

    // Framework level: per-phase µarch counters (Fig 2/4, Table IV).
    for (uint32_t p = 0; p < xlayer::kNumPhases; ++p) {
        const sim::PerfCounters &pc = r.phaseCounters[p];
        std::string section =
            std::string("phases/") + xlayer::phaseName(xlayer::Phase(p));
        const char *sec = section.c_str();
        Metric e;
        auto add = [&](const char *name, uint64_t v) {
            e = Metric();
            e.section = sec;
            e.name = name;
            e.u = v;
            m.push_back(e);
        };
        add("instructions", pc.instructions);
        add("cycles_fp", pc.cyclesFp);
        add("branches", pc.branches);
        add("cond_branches", pc.condBranches);
        add("mispredicts", pc.mispredicts);
        add("loads", pc.loads);
        add("stores", pc.stores);
        add("icache_misses", pc.icacheMisses);
        add("dcache_misses", pc.dcacheMisses);
        add("annotations", pc.annotations);
        e = Metric();
        e.section = sec;
        e.name = "cycle_share";
        e.isFloat = true;
        e.d = r.phaseShares[p];
        m.push_back(e);
    }

    // Framework events: JIT and GC lifecycle counts.
    addU("events", "loops_compiled", r.loopsCompiled);
    addU("events", "bridges_compiled", r.bridgesCompiled);
    addU("events", "traces_aborted", r.tracesAborted);
    addU("events", "trace_enters", r.traceEnters);
    addU("events", "deopts", r.deopts);
    addU("events", "gc_minor", r.gcMinor);
    addU("events", "gc_major", r.gcMajor);
    addU("events", "phase_underflows", r.phaseUnderflows);
    addU("events", "tier_ups", r.tierUps);
    addU("events", "tier1_compiles", r.tier1Compiles);

    // Streaming event tracer: ring occupancy and loss accounting.
    addU("tracer", "capacity_events", r.trace.capacityEvents);
    addU("tracer", "events_recorded", r.trace.recordedEvents);
    addU("tracer", "events_dropped", r.trace.droppedEvents);
    addU("tracer", "counter_samples", uint64_t(r.trace.counters.size()));
    addU("tracer", "counter_samples_dropped", r.trace.droppedCounters);

    // GC heap / object space.
    addU("gc", "allocations", r.gcAllocations);
    addU("gc", "promoted_bytes", r.gcPromotedBytes);
    addU("gc", "freed_objects", r.gcFreedObjects);
    addU("gc", "live_young_bytes", r.gcLiveYoungBytes);
    addU("gc", "live_old_bytes", r.gcLiveOldBytes);
    addU("gc", "live_young_objects", r.gcLiveYoungObjects);
    addU("gc", "live_old_objects", r.gcLiveOldObjects);
    addU("gc", "space_ops", r.spaceOps);

    // Machine structures: L1 caches (whole-run hit/miss).
    addU("caches", "icache_hits", r.icacheHits);
    addU("caches", "icache_misses", r.icacheMisses);
    addU("caches", "dcache_hits", r.dcacheHits);
    addU("caches", "dcache_misses", r.dcacheMisses);

    // Sim-layer block memoization (host-side accelerator telemetry; the
    // modeled counters above are invariant to it by construction).
    addU("sim_memo", "blocks_cached", r.memoBlocksCached);
    addU("sim_memo", "hits", r.memoHits);
    addU("sim_memo", "misses", r.memoMisses);
    addU("sim_memo", "invalidations", r.memoInvalidations);
    addU("sim_memo", "replayed_instructions", r.memoReplayedInstructions);
    addU("sim_memo", "replayed_cycles_fp", r.memoReplayedCyclesFp);
    addF("sim_memo", "hit_rate", r.memoHitRate);

    // Sim-layer superblock replay (host-side accelerator telemetry, one
    // level above sim_memo: whole trace iterations instead of blocks).
    addU("sim_superblock", "segments_cached", r.sbSegmentsCached);
    addU("sim_superblock", "hits", r.sbHits);
    addU("sim_superblock", "misses", r.sbMisses);
    addU("sim_superblock", "invalidations", r.sbInvalidations);
    addU("sim_superblock", "divergences", r.sbDivergences);
    addU("sim_superblock", "iterations", r.sbIterations);
    addU("sim_superblock", "replayed_instructions",
         r.sbReplayedInstructions);
    addU("sim_superblock", "replayed_cycles_fp", r.sbReplayedCyclesFp);
    addF("sim_superblock", "hit_rate", r.sbHitRate);

    // Multi-tier JIT: per-tier compile counts, modeled compile cost,
    // resident code bytes, promotions, and execution-cycle attribution.
    // The tier1/multi golden sets exclude this section from comparison
    // (--ignore-section jit_tiers) so mode-specific telemetry churn
    // cannot mask modeled-counter regressions.
    addU("jit_tiers", "tier1_compiles", r.tier1Compiles);
    addU("jit_tiers", "tier2_compiles", r.tier2Compiles);
    addU("jit_tiers", "promotions", r.tierPromotions);
    addU("jit_tiers", "tier1_code_bytes", r.tier1CodeBytes);
    addU("jit_tiers", "tier2_code_bytes", r.tier2CodeBytes);
    addU("jit_tiers", "tier1_retired_bytes", r.tier1RetiredBytes);
    addU("jit_tiers", "tier1_compile_insts", r.tier1CompileInsts);
    addU("jit_tiers", "tier2_compile_insts", r.tier2CompileInsts);
    addU("jit_tiers", "tier1_cycles_fp", r.tier1CyclesFp);
    addU("jit_tiers", "tier2_cycles_fp", r.tier2CyclesFp);

    // Fault containment (schema v7). Abort reasons and the blacklist /
    // eviction / downgrade counts are modeled (annotation-derived) and
    // deterministic; every reason key is always emitted so goldens pin
    // the full vocabulary. The fault_* trigger telemetry is host-side
    // bookkeeping — visit counters move when a spec is merely armed —
    // so the armed golden CI pass ignores this section wholesale.
    for (uint32_t rr = 1; rr < jit::kNumAbortReasons; ++rr) {
        std::string key =
            std::string("aborted_") +
            jit::abortReasonName(jit::AbortReason(rr));
        Metric e;
        e.section = "jit_robustness";
        e.name = key;
        e.u = r.abortReasons[rr];
        m.push_back(std::move(e));
    }
    addU("jit_robustness", "traces_blacklisted", r.tracesBlacklisted);
    addU("jit_robustness", "traces_rearmed", r.tracesRearmed);
    addU("jit_robustness", "traces_evicted", r.tracesEvicted);
    addU("jit_robustness", "compile_downgrades", r.compileDowngrades);
    addU("jit_robustness", "live_traces", r.liveTraces);
    addU("jit_robustness", "faults_armed", r.faultsArmed);
    for (uint32_t s = 0; s < rt::kNumFaultSites; ++s) {
        std::string base =
            std::string("fault_") + rt::faultSiteName(rt::FaultSite(s));
        Metric e;
        e.section = "jit_robustness";
        e.name = base + "_visits";
        e.u = r.faultVisits[s];
        m.push_back(e);
        e = Metric();
        e.section = "jit_robustness";
        e.name = base + "_fired";
        e.u = r.faultFired[s];
        m.push_back(std::move(e));
    }

    // Latency distributions: percentiles of the always-on host-side
    // histograms (whole modeled cycles). Deterministic and invariant
    // under memo/superblock/fusion/sampling, hence golden-gated.
    auto addHist = [&](const char *prefix,
                       const common::Histogram &h) {
        std::string section = std::string("latency/") + prefix;
        const char *sec = section.c_str();
        Metric e;
        auto add = [&](const char *name, uint64_t v) {
            e = Metric();
            e.section = sec;
            e.name = name;
            e.u = v;
            m.push_back(e);
        };
        add("count", h.count());
        add("min", h.min());
        add("max", h.max());
        add("p50", h.percentile(50.0));
        add("p90", h.percentile(90.0));
        add("p99", h.percentile(99.0));
        e = Metric();
        e.section = sec;
        e.name = "mean";
        e.isFloat = true;
        e.d = h.mean();
        m.push_back(e);
    };
    addHist("iteration", r.iterationLatency);
    addHist("execution", r.executionLength);

    // Deopt attribution: guard sites with at least one failure (the
    // full table is exported by the profiler; the count is invariant
    // and golden-gated).
    addU("events", "deopt_sites", uint64_t(r.deoptSites.size()));

    // Sampling profiler (host-side observation; all-zero when off).
    // The profiler-on differential CI pass ignores this section — the
    // interval is recorded here, NOT under config, precisely so the
    // rest of the document stays bit-identical with sampling on.
    addU("profiler", "interval_cycles", r.profile.intervalCycles);
    addU("profiler", "samples", r.profile.samples);
    addU("profiler", "distinct_sites", uint64_t(r.profile.sites.size()));

    // Interpreter level: completed work and warmup curve (Fig 5).
    addU("interp", "total_work", r.work);
    addU("interp", "warmup_samples", uint64_t(r.warmupCurve.size()));
    addU("interp", "timeline_bins", uint64_t(r.timeline.size()));
    addF("interp", "work_per_kinstr",
         totalInstrs ? 1000.0 * double(r.work) / double(totalInstrs) : 0.0);

    // JIT-IR level (Figs 6-9).
    uint64_t irExecTotal = 0;
    for (uint64_t c : r.irExecCounts)
        irExecTotal += c;
    addU("jit_ir", "nodes_compiled", r.irNodesCompiled);
    addU("jit_ir", "node_exec_total", irExecTotal);

    // AOT-call attribution (Table III), outermost-entry cycles.
    const rt::AotRegistry &reg = rt::AotRegistry::instance();
    for (const xlayer::AotFunctionStats &fs : r.aotFunctions) {
        std::string section = "aot/" + reg.fn(fs.fnId).name;
        Metric e;
        e.section = section;
        e.name = "calls";
        e.u = fs.calls;
        m.push_back(e);
        e = Metric();
        e.section = section;
        e.name = "cycles";
        e.isFloat = true;
        e.d = fs.cycles;
        m.push_back(e);
    }

    runs_.push_back(std::move(run));
}

Json
MetricsRegistry::toJson() const
{
    Json doc = Json::object();
    doc.set("schema_version", Json(kSchemaVersion));
    doc.set("generator", Json("xlvm"));
    doc.set("report", Json(name_));
    Json runsArr = Json::array();
    for (const Run &run : runs_) {
        Json jr = Json::object();
        jr.set("workload", Json(run.workload));
        jr.set("vm", Json(run.vm));
        jr.set("completed", Json(run.completed));
        if (!run.error.empty())
            jr.set("error", Json(run.error));
        Json metrics = Json::object();
        for (const Metric &e : run.metrics) {
            // Resolve the '/'-nested section path, creating objects.
            Json *node = &metrics;
            std::string rest = e.section;
            while (!rest.empty()) {
                size_t slash = rest.find('/');
                std::string head = rest.substr(0, slash);
                rest = slash == std::string::npos ? ""
                                                  : rest.substr(slash + 1);
                Json *child = const_cast<Json *>(node->get(head));
                node = child ? child : &node->set(head, Json::object());
            }
            node->set(e.name, e.isFloat ? Json(e.d) : Json(e.u));
        }
        jr.set("metrics", std::move(metrics));
        runsArr.push(std::move(jr));
    }
    doc.set("runs", std::move(runsArr));
    return doc;
}

std::string
MetricsRegistry::toCsv() const
{
    std::string out = "workload,vm,run,section,counter,value\n";
    char buf[64];
    for (size_t i = 0; i < runs_.size(); ++i) {
        const Run &run = runs_[i];
        for (const Metric &e : run.metrics) {
            out += run.workload;
            out.push_back(',');
            out += run.vm;
            out.push_back(',');
            std::snprintf(buf, sizeof(buf), "%zu", i);
            out += buf;
            out.push_back(',');
            out += e.section;
            out.push_back(',');
            out += e.name;
            out.push_back(',');
            if (e.isFloat) {
                out += Json::formatDouble(e.d);
            } else {
                std::snprintf(buf, sizeof(buf), "%" PRIu64, e.u);
                out += buf;
            }
            out.push_back('\n');
        }
    }
    return out;
}

bool
MetricsRegistry::write(const ReportTarget &target, std::string *err) const
{
    std::string payload;
    if (target.format == ReportTarget::Format::Json)
        payload = toJson().dump(2) + "\n";
    else
        payload = toCsv();

    if (target.path == "-") {
        std::fwrite(payload.data(), 1, payload.size(), stdout);
        return true;
    }
    std::ofstream f(target.path, std::ios::binary | std::ios::trunc);
    if (!f) {
        if (err)
            *err = "cannot open " + target.path + " for writing";
        return false;
    }
    f.write(payload.data(), std::streamsize(payload.size()));
    f.flush();
    if (!f) {
        if (err)
            *err = "write failed for " + target.path;
        return false;
    }
    return true;
}

bool
MetricsRegistry::writeAll(const std::vector<ReportTarget> &targets,
                          std::string *err) const
{
    for (const ReportTarget &t : targets) {
        if (!write(t, err))
            return false;
    }
    return true;
}

} // namespace report
} // namespace xlvm
