#include "report/profile_export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <fstream>

#include "report/metrics.h"
#include "sim/core.h"
#include "xlayer/phase.h"

namespace xlvm {
namespace report {

namespace {

std::string
fmt(const char *f, ...)
{
    char buf[128];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof(buf), f, ap);
    va_end(ap);
    return buf;
}

/** Histogram → JSON: summary stats plus the populated buckets. */
Json
histJson(const common::Histogram &h)
{
    Json j = Json::object();
    j.set("count", Json(h.count()));
    j.set("min", Json(h.min()));
    j.set("max", Json(h.max()));
    j.set("mean", Json(h.mean()));
    j.set("p50", Json(h.percentile(50.0)));
    j.set("p90", Json(h.percentile(90.0)));
    j.set("p99", Json(h.percentile(99.0)));
    Json buckets = Json::array();
    for (const common::Histogram::Bucket &b : h.nonzeroBuckets()) {
        Json e = Json::array();
        e.push(Json(b.lo));
        e.push(Json(b.hi));
        e.push(Json(b.count));
        buckets.push(std::move(e));
    }
    j.set("buckets", std::move(buckets));
    return j;
}

} // namespace

Json
runProvenance(const driver::RunOptions &opts)
{
    Json p = Json::object();
    p.set("generator", Json("xlvm"));
    p.set("schema_version", Json(MetricsRegistry::kSchemaVersion));
    p.set("tier_mode", Json(vm::tierModeName(opts.tierMode)));
    p.set("interval_cycles", Json(opts.profileIntervalCycles));
    p.set("workload", Json(opts.workload));
    p.set("vm", Json(driver::vmKindName(opts.vm)));
    p.set("scale", Json(uint64_t(opts.scale)));
    p.set("loop_threshold", Json(opts.loopThreshold));
    p.set("bridge_threshold", Json(opts.bridgeThreshold));
    p.set("fuse_micro_ops", Json(opts.jitFuseMicroOps));
    p.set("ir_annotations", Json(opts.irAnnotations));
    p.set("inject", Json(opts.inject.empty() ? "off" : opts.inject));
    return p;
}

namespace {

const char *
phaseLabel(uint32_t phase)
{
    return phase < xlayer::kNumPhases
               ? xlayer::phaseName(xlayer::Phase(phase))
               : "?";
}

/** Emit one run's provenance as '# key: value' folded-header lines. */
void
foldedHeader(const Json &run, std::string &out)
{
    const Json *prov = run.get("provenance");
    if (!prov || !prov->isObject())
        return;
    for (const auto &kv : prov->members()) {
        out += "# ";
        out += kv.first;
        out += ": ";
        switch (kv.second.kind()) {
          case Json::Kind::String:
            out += kv.second.asString();
            break;
          case Json::Kind::Bool:
            out += kv.second.asBool() ? "true" : "false";
            break;
          case Json::Kind::Float:
            out += Json::formatDouble(kv.second.asDouble());
            break;
          default:
            out += fmt("%" PRIu64, kv.second.asUInt());
            break;
        }
        out.push_back('\n');
    }
}

uint64_t
getU(const Json &j, const char *key)
{
    const Json *v = j.get(key);
    return v && v->isNumber() ? v->asUInt() : 0;
}

std::string
getS(const Json &j, const char *key)
{
    const Json *v = j.get(key);
    return v && v->kind() == Json::Kind::String ? v->asString() : "";
}

/** runs array of a profile document, or nullptr if malformed. */
const Json *
docRuns(const Json &doc)
{
    const Json *runs = doc.get("runs");
    return runs && runs->isArray() ? runs : nullptr;
}

} // namespace

std::string
sampleCtxLabel(uint64_t ctx)
{
    const uint32_t id = sim::sampleCtxId(ctx);
    const uint32_t tier = sim::sampleCtxTier(ctx);
    switch (sim::sampleCtxKind(ctx)) {
      case sim::SampleCtxKind::Interp:
        return "interp";
      case sim::SampleCtxKind::Trace:
        return fmt("trace:%u@t%u", id, tier);
      case sim::SampleCtxKind::Bridge:
        return fmt("bridge:%u@t%u", id, tier);
      case sim::SampleCtxKind::Gc:
        return fmt("gc:%u", id);
      case sim::SampleCtxKind::Compile:
        return fmt("compile:%u", id);
    }
    return fmt("ctx:%" PRIu64, ctx);
}

ProfileBuilder::ProfileBuilder(std::string report_name)
    : name_(std::move(report_name)), runs_(Json::array())
{
}

void
ProfileBuilder::addRun(const driver::RunOptions &opts,
                       const driver::RunResult &r)
{
    Json run = Json::object();
    run.set("workload", Json(opts.workload));
    run.set("vm", Json(driver::vmKindName(opts.vm)));
    run.set("provenance", runProvenance(opts));
    run.set("interval_cycles", Json(r.profile.intervalCycles));
    run.set("samples", Json(r.profile.samples));

    Json sites = Json::array();
    for (const xlayer::SampleSite &s : r.profile.sites) {
        Json e = Json::object();
        e.set("phase", Json(phaseLabel(s.phase)));
        e.set("phase_id", Json(uint64_t(s.phase)));
        e.set("context", Json(sampleCtxLabel(s.ctx)));
        e.set("ctx", Json(s.ctx));
        e.set("pc", Json(s.pc));
        e.set("count", Json(s.count));
        sites.push(std::move(e));
    }
    run.set("sites", std::move(sites));

    Json seq = Json::array();
    for (const auto &pr : r.profile.phaseSeq) {
        Json e = Json::array();
        e.push(Json(uint64_t(pr.first)));
        e.push(Json(pr.second));
        seq.push(std::move(e));
    }
    run.set("phase_seq", std::move(seq));

    Json deopts = Json::array();
    for (const driver::DeoptSite &d : r.deoptSites) {
        Json e = Json::object();
        e.set("trace", Json(uint64_t(d.traceId)));
        e.set("bridge", Json(d.traceIsBridge));
        e.set("tier", Json(uint64_t(d.tier)));
        e.set("guard_idx", Json(uint64_t(d.guardIdx)));
        e.set("guard_op", Json(d.guardOp));
        e.set("mop", Json(d.mop));
        e.set("fused", Json(d.fused));
        e.set("origin_pc", Json(uint64_t(d.originPc)));
        e.set("fail_count", Json(d.failCount));
        e.set("bridge_trace", Json(int64_t(d.bridgeTraceId)));
        deopts.push(std::move(e));
    }
    run.set("deopts", std::move(deopts));

    Json syms = Json::array();
    for (const driver::TraceSymbol &s : r.traceSymbols) {
        Json e = Json::object();
        e.set("trace", Json(uint64_t(s.traceId)));
        e.set("bridge", Json(s.isBridge));
        e.set("tier", Json(uint64_t(s.tier)));
        e.set("code_pc", Json(s.codePc));
        e.set("code_insts", Json(uint64_t(s.codeInsts)));
        e.set("anchor_pc", Json(uint64_t(s.anchorPc)));
        syms.push(std::move(e));
    }
    run.set("symbols", std::move(syms));

    Json latency = Json::object();
    latency.set("iteration", histJson(r.iterationLatency));
    latency.set("execution", histJson(r.executionLength));
    run.set("latency", std::move(latency));

    // Failure provenance (schema v7): why recordings died and which
    // containment paths ran, so a deopt-heavy profile can be read next
    // to its abort story. Only non-zero reasons are emitted.
    Json rob = Json::object();
    Json aborts = Json::object();
    for (uint32_t rr = 1; rr < jit::kNumAbortReasons; ++rr) {
        if (r.abortReasons[rr]) {
            aborts.set(jit::abortReasonName(jit::AbortReason(rr)),
                       Json(r.abortReasons[rr]));
        }
    }
    rob.set("aborts", std::move(aborts));
    rob.set("traces_blacklisted", Json(r.tracesBlacklisted));
    rob.set("traces_rearmed", Json(r.tracesRearmed));
    rob.set("traces_evicted", Json(r.tracesEvicted));
    rob.set("compile_downgrades", Json(r.compileDowngrades));
    rob.set("live_traces", Json(r.liveTraces));
    run.set("robustness", std::move(rob));

    runs_.push(std::move(run));
}

Json
ProfileBuilder::toJson() const
{
    Json doc = Json::object();
    doc.set("kind", Json("xlvm-profile"));
    doc.set("schema_version", Json(MetricsRegistry::kSchemaVersion));
    doc.set("generator", Json("xlvm"));
    doc.set("report", Json(name_));
    doc.set("runs", runs_);
    return doc;
}

std::string
ProfileBuilder::toFolded() const
{
    return profileFolded(toJson());
}

bool
ProfileBuilder::write(const std::string &path, std::string *err) const
{
    return writeProfileText(toJson().dump(2) + "\n", path, err);
}

bool
writeProfileText(const std::string &text, const std::string &path,
                 std::string *err)
{
    if (path == "-") {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return true;
    }
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) {
        if (err)
            *err = "cannot open " + path + " for writing";
        return false;
    }
    f.write(text.data(), std::streamsize(text.size()));
    f.flush();
    if (!f) {
        if (err)
            *err = "write failed for " + path;
        return false;
    }
    return true;
}

std::string
profileFolded(const Json &doc)
{
    std::string out;
    const Json *runs = docRuns(doc);
    if (!runs)
        return out;
    for (const Json &run : runs->items()) {
        foldedHeader(run, out);
        const std::string stackBase =
            getS(run, "workload") + "@" + getS(run, "vm");
        const Json *sites = run.get("sites");
        if (!sites || !sites->isArray())
            continue;
        for (const Json &s : sites->items()) {
            out += stackBase;
            out.push_back(';');
            out += getS(s, "phase");
            out.push_back(';');
            out += getS(s, "context");
            out.push_back(';');
            out += fmt("pc:0x%" PRIx64, getU(s, "pc"));
            out.push_back(' ');
            out += fmt("%" PRIu64, getU(s, "count"));
            out.push_back('\n');
        }
    }
    return out;
}

Json
profileChromeCounters(const Json &doc, double frequency_ghz)
{
    Json events = Json::array();
    Json runsMeta = Json::array();
    const Json *runs = docRuns(doc);
    int pid = 0;
    if (runs) {
        for (const Json &run : runs->items()) {
            const uint64_t interval = getU(run, "interval_cycles");
            const std::string name =
                getS(run, "workload") + " @ " + getS(run, "vm");

            Json meta = Json::object();
            meta.set("name", Json("process_name"));
            meta.set("ph", Json("M"));
            meta.set("pid", Json(pid));
            Json margs = Json::object();
            margs.set("name", Json(name));
            meta.set("args", std::move(margs));
            events.push(std::move(meta));

            // One counter series per phase: at each run-length boundary
            // of the sample sequence emit the number of samples the
            // ending run contributed, so Perfetto shows phase pressure
            // over simulated time.
            const Json *seq = run.get("phase_seq");
            uint64_t sampleOrd = 0;
            if (seq && seq->isArray() && interval) {
                for (const Json &rl : seq->items()) {
                    if (!rl.isArray() || rl.size() != 2)
                        continue;
                    const uint32_t phase = uint32_t(rl.at(0).asUInt());
                    const uint64_t len = rl.at(1).asUInt();
                    const uint64_t startCycle = (sampleOrd + 1) * interval;
                    Json c = Json::object();
                    c.set("name", Json(std::string("samples:") +
                                       phaseLabel(phase)));
                    c.set("ph", Json("C"));
                    c.set("pid", Json(pid));
                    c.set("ts", Json(double(startCycle) /
                                     (frequency_ghz * 1e3)));
                    Json cargs = Json::object();
                    cargs.set("value", Json(len));
                    c.set("args", std::move(cargs));
                    events.push(std::move(c));
                    sampleOrd += len;
                }
            }

            Json rm = Json::object();
            rm.set("pid", Json(pid));
            rm.set("name", Json(name));
            const Json *prov = run.get("provenance");
            if (prov)
                rm.set("provenance", *prov);
            runsMeta.push(std::move(rm));
            ++pid;
        }
    }

    Json out = Json::object();
    out.set("traceEvents", std::move(events));
    out.set("displayTimeUnit", Json("ms"));
    Json other = Json::object();
    other.set("generator", Json("xlvm"));
    other.set("kind", Json("xlvm-profile-counters"));
    other.set("schema_version", Json(MetricsRegistry::kSchemaVersion));
    other.set("frequency_ghz", Json(frequency_ghz));
    other.set("runs", std::move(runsMeta));
    out.set("otherData", std::move(other));
    return out;
}

Json
profileTop(const Json &doc, size_t top_n)
{
    struct Cell
    {
        std::string workload, vm, phase, context;
        uint64_t count = 0;
        uint64_t runSamples = 0;
    };
    std::vector<Cell> cells;
    const Json *runs = docRuns(doc);
    if (runs) {
        for (const Json &run : runs->items()) {
            const uint64_t samples = getU(run, "samples");
            const Json *sites = run.get("sites");
            if (!sites || !sites->isArray())
                continue;
            for (const Json &s : sites->items()) {
                const std::string phase = getS(s, "phase");
                const std::string context = getS(s, "context");
                Cell *hit = nullptr;
                for (Cell &c : cells) {
                    if (c.phase == phase && c.context == context &&
                        c.workload == getS(run, "workload") &&
                        c.vm == getS(run, "vm")) {
                        hit = &c;
                        break;
                    }
                }
                if (!hit) {
                    cells.push_back({getS(run, "workload"),
                                     getS(run, "vm"), phase, context, 0,
                                     samples});
                    hit = &cells.back();
                }
                hit->count += getU(s, "count");
            }
        }
    }
    std::stable_sort(cells.begin(), cells.end(),
                     [](const Cell &a, const Cell &b) {
                         return a.count > b.count;
                     });
    if (top_n && cells.size() > top_n)
        cells.resize(top_n);

    Json out = Json::array();
    for (const Cell &c : cells) {
        Json e = Json::object();
        e.set("workload", Json(c.workload));
        e.set("vm", Json(c.vm));
        e.set("phase", Json(c.phase));
        e.set("context", Json(c.context));
        e.set("count", Json(c.count));
        e.set("share", Json(c.runSamples
                                ? double(c.count) / double(c.runSamples)
                                : 0.0));
        out.push(std::move(e));
    }
    return out;
}

Json
profileTree(const Json &doc)
{
    Json out = Json::array();
    const Json *runs = docRuns(doc);
    if (!runs)
        return out;
    for (const Json &run : runs->items()) {
        Json jr = Json::object();
        jr.set("workload", Json(getS(run, "workload")));
        jr.set("vm", Json(getS(run, "vm")));
        jr.set("samples", Json(getU(run, "samples")));

        // Sites arrive in ascending (phase, ctx, pc) order, so one
        // linear walk builds the phase → context → pc hierarchy.
        struct PcCell
        {
            uint64_t pc, count;
        };
        struct CtxCell
        {
            std::string context;
            uint64_t count = 0;
            std::vector<PcCell> pcs;
        };
        struct PhaseCell
        {
            std::string phase;
            uint64_t count = 0;
            std::vector<CtxCell> ctxs;
        };
        std::vector<PhaseCell> cells;
        const Json *sites = run.get("sites");
        if (sites && sites->isArray()) {
            for (const Json &s : sites->items()) {
                const std::string phase = getS(s, "phase");
                const std::string context = getS(s, "context");
                if (cells.empty() || cells.back().phase != phase) {
                    cells.push_back(PhaseCell());
                    cells.back().phase = phase;
                }
                PhaseCell &pc = cells.back();
                if (pc.ctxs.empty() ||
                    pc.ctxs.back().context != context) {
                    pc.ctxs.push_back(CtxCell());
                    pc.ctxs.back().context = context;
                }
                const uint64_t n = getU(s, "count");
                pc.count += n;
                pc.ctxs.back().count += n;
                pc.ctxs.back().pcs.push_back({getU(s, "pc"), n});
            }
        }
        Json phases = Json::array();
        for (const PhaseCell &p : cells) {
            Json jp = Json::object();
            jp.set("phase", Json(p.phase));
            jp.set("count", Json(p.count));
            Json ctxs = Json::array();
            for (const CtxCell &c : p.ctxs) {
                Json jc = Json::object();
                jc.set("context", Json(c.context));
                jc.set("count", Json(c.count));
                Json pcs = Json::array();
                for (const PcCell &e : c.pcs) {
                    Json jpc = Json::object();
                    jpc.set("pc", Json(e.pc));
                    jpc.set("count", Json(e.count));
                    pcs.push(std::move(jpc));
                }
                jc.set("pcs", std::move(pcs));
                ctxs.push(std::move(jc));
            }
            jp.set("contexts", std::move(ctxs));
            phases.push(std::move(jp));
        }
        jr.set("phases", std::move(phases));
        out.push(std::move(jr));
    }
    return out;
}

Json
profileTopDeopts(const Json &doc, size_t top_n)
{
    Json all = Json::array();
    const Json *runs = docRuns(doc);
    if (runs) {
        for (const Json &run : runs->items()) {
            const Json *deopts = run.get("deopts");
            if (!deopts || !deopts->isArray())
                continue;
            for (const Json &d : deopts->items()) {
                Json e = d;
                e.set("workload", Json(getS(run, "workload")));
                e.set("vm", Json(getS(run, "vm")));
                all.push(std::move(e));
            }
        }
    }
    std::vector<Json> items = all.items();
    std::stable_sort(items.begin(), items.end(),
                     [](const Json &a, const Json &b) {
                         return getU(a, "fail_count") >
                                getU(b, "fail_count");
                     });
    if (top_n && items.size() > top_n)
        items.resize(top_n);
    Json out = Json::array();
    for (Json &e : items)
        out.push(std::move(e));
    return out;
}

std::string
formatProfileTop(const Json &top)
{
    std::string out =
        fmt("%-12s %-10s %-10s %-16s %10s %8s\n", "workload", "vm",
            "phase", "context", "samples", "share");
    for (const Json &e : top.items()) {
        out += fmt("%-12s %-10s %-10s %-16s %10" PRIu64 " %7.2f%%\n",
                   getS(e, "workload").c_str(), getS(e, "vm").c_str(),
                   getS(e, "phase").c_str(), getS(e, "context").c_str(),
                   getU(e, "count"),
                   100.0 * (e.get("share") ? e.get("share")->asDouble()
                                           : 0.0));
    }
    return out;
}

std::string
formatProfileTree(const Json &tree)
{
    std::string out;
    for (const Json &run : tree.items()) {
        out += fmt("%s @ %s (%" PRIu64 " samples)\n",
                   getS(run, "workload").c_str(), getS(run, "vm").c_str(),
                   getU(run, "samples"));
        const uint64_t total = getU(run, "samples");
        const Json *phases = run.get("phases");
        if (!phases)
            continue;
        for (const Json &p : phases->items()) {
            const uint64_t pc = getU(p, "count");
            out += fmt("  %-10s %10" PRIu64 "  %5.1f%%\n",
                       getS(p, "phase").c_str(), pc,
                       total ? 100.0 * double(pc) / double(total) : 0.0);
            const Json *ctxs = p.get("contexts");
            if (!ctxs)
                continue;
            for (const Json &c : ctxs->items()) {
                out += fmt("    %-14s %8" PRIu64 "\n",
                           getS(c, "context").c_str(), getU(c, "count"));
            }
        }
    }
    return out;
}

std::string
formatProfileDeopts(const Json &deopts)
{
    std::string out = fmt("%-12s %6s %5s %6s %-18s %-28s %10s %8s %7s\n",
                          "workload", "trace", "tier", "guard", "guard_op",
                          "mop", "origin_pc", "fails", "bridge");
    for (const Json &e : deopts.items()) {
        const int64_t bridge =
            e.get("bridge_trace") ? e.get("bridge_trace")->asInt() : -1;
        out += fmt("%-12s %6" PRIu64 " %5" PRIu64 " %6" PRIu64
                   " %-18s %-28s %10" PRIu64 " %8" PRIu64 " %7s\n",
                   getS(e, "workload").c_str(), getU(e, "trace"),
                   getU(e, "tier"), getU(e, "guard_idx"),
                   getS(e, "guard_op").c_str(), getS(e, "mop").c_str(),
                   getU(e, "origin_pc"), getU(e, "fail_count"),
                   bridge >= 0 ? fmt("%" PRId64, bridge).c_str() : "-");
    }
    return out;
}

std::string
formatProfileDump(const Json &doc)
{
    std::string out;
    const Json *runs = docRuns(doc);
    if (!runs)
        return out;
    for (const Json &run : runs->items()) {
        const Json *sites = run.get("sites");
        if (!sites || !sites->isArray())
            continue;
        for (const Json &s : sites->items()) {
            out += fmt("%-12s %-10s %-10s %-16s pc=0x%-10" PRIx64
                       " %8" PRIu64 "\n",
                       getS(run, "workload").c_str(),
                       getS(run, "vm").c_str(), getS(s, "phase").c_str(),
                       getS(s, "context").c_str(), getU(s, "pc"),
                       getU(s, "count"));
        }
    }
    return out;
}

} // namespace report
} // namespace xlvm
