/**
 * @file
 * Sampling-profile export and inspection.
 *
 * ProfileBuilder turns one or more runs' xlayer::SampleProfile (plus
 * the deopt-attribution table and trace symbols the runner collects)
 * into a single self-describing JSON document:
 *
 *   { "kind": "xlvm-profile", "schema_version": N, "report": <name>,
 *     "runs": [ { "workload", "vm", "provenance": {...},
 *                 "samples", "interval_cycles",
 *                 "sites": [...], "phase_seq": [[phase, len], ...],
 *                 "deopts": [...], "symbols": [...],
 *                 "latency": { "iteration": {...}, "execution": {...} }
 *               } ] }
 *
 * Every run carries its own provenance block (schema version, tier
 * mode, sampler interval, the workload/VM configuration that produced
 * it), so a profile file is interpretable years later without the
 * invocation that made it. The same document feeds every inspector:
 *
 *  - profileFolded: collapsed-stack text (flamegraph.pl / speedscope),
 *    stack = workload@vm;phase;context;pc, with the provenance repeated
 *    as '# key: value' header comments;
 *  - profileChromeCounters: Chrome trace-event counter tracks (one
 *    series per phase, timestamps reconstructed from the phase
 *    sequence — open in ui.perfetto.dev);
 *  - profileTop / profileTree / profileTopDeopts: aggregations behind
 *    the xlvm-prof subcommands.
 *
 * Profiles are deterministic (the sample clock is the modeled cycle
 * counter), so equal runs export byte-identical documents.
 */

#ifndef XLVM_REPORT_PROFILE_EXPORT_H
#define XLVM_REPORT_PROFILE_EXPORT_H

#include <cstdint>
#include <string>

#include "driver/runner.h"
#include "report/json.h"

namespace xlvm {
namespace report {

/** Human label for a packed sample-context word: "interp",
 *  "trace:7@t2", "bridge:9@t2", "gc:3", "compile:5". */
std::string sampleCtxLabel(uint64_t ctx);

/** One run's provenance block (schema version, tier mode, sampler
 *  interval, workload/VM config) — shared by the profile document,
 *  the folded-stack headers, and the Chrome-trace export. */
Json runProvenance(const driver::RunOptions &opts);

class ProfileBuilder
{
  public:
    explicit ProfileBuilder(std::string report_name);

    /** Append one run's profile, deopt table, symbols and latency. */
    void addRun(const driver::RunOptions &opts,
                const driver::RunResult &result);

    size_t runCount() const { return size_t(runs_.size()); }

    /** Full profile document (stable member order). */
    Json toJson() const;

    /** Collapsed-stack text for every run (see profileFolded). */
    std::string toFolded() const;

    /** Serialize the JSON document to @p path ("-" = stdout). */
    bool write(const std::string &path, std::string *err) const;

  private:
    std::string name_;
    Json runs_;
};

/** Serialize any profile-layer document to @p path ("-" = stdout). */
bool writeProfileText(const std::string &text, const std::string &path,
                      std::string *err);

/**
 * Collapsed-stack rendering of an exported profile document: one
 * "frame1;frame2;... count" line per site, preceded by '# key: value'
 * provenance header comments (flamegraph.pl and speedscope both accept
 * and ignore '#' comments).
 */
std::string profileFolded(const Json &doc);

/** Chrome trace-event document with one counter track per phase,
 *  timestamps in simulated microseconds at @p frequency_ghz. */
Json profileChromeCounters(const Json &doc, double frequency_ghz = 3.0);

/**
 * Aggregate sites by (phase, context) across all runs, descending by
 * sample count: [{ "workload", "vm", "phase", "context", "count",
 * "share" }]. Every sample carries both keys, so the shares sum to 1
 * per run (the attribution-coverage guarantee xlvm-prof top reports).
 */
Json profileTop(const Json &doc, size_t top_n = 10);

/** Per-run phase → context → pc hierarchy with rolled-up counts. */
Json profileTree(const Json &doc);

/** Deopt table across all runs, descending by fail count. */
Json profileTopDeopts(const Json &doc, size_t top_n = 10);

/** Human-readable renderings of the aggregations above. */
std::string formatProfileTop(const Json &top);
std::string formatProfileTree(const Json &tree);
std::string formatProfileDeopts(const Json &deopts);

/** One line per site: workload, vm, phase, context, pc, count. */
std::string formatProfileDump(const Json &doc);

} // namespace report
} // namespace xlvm

#endif // XLVM_REPORT_PROFILE_EXPORT_H
