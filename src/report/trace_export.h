/**
 * @file
 * Chrome trace-event export and inspection for streamed event traces.
 *
 * ChromeTraceBuilder turns one or more runs' xlayer::TraceLog into a
 * single Chrome trace-event / Perfetto JSON document (open it in
 * ui.perfetto.dev or chrome://tracing):
 *
 *  - each run becomes one process (pid), named "<workload> @ <vm>";
 *  - phase transitions become B/E duration events on the "phases"
 *    thread; trace entry/exit become B/E events on the "traces" thread;
 *  - GC / compile / abort / deopt become instant events on "events";
 *  - heap bytes and trace-cache size become counter ("C") tracks;
 *  - every event carries full-fidelity args (tag, payload, phase,
 *    exact cyclesFp) so the document round-trips through the
 *    xlvm-trace inspector without loss.
 *
 * Timestamps are simulated microseconds at the core frequency. When a
 * run's ring buffer wrapped, head-truncated duration pairs are repaired
 * with synthetic begin/end events marked args.synth=1 so the document
 * stays balanced for Perfetto.
 *
 * The filter / dump / summarize helpers operate on the exported
 * document itself, so the same JSON file is both the archival trace
 * format and the Perfetto input.
 */

#ifndef XLVM_REPORT_TRACE_EXPORT_H
#define XLVM_REPORT_TRACE_EXPORT_H

#include <cstdint>
#include <string>

#include "report/json.h"
#include "xlayer/tracer.h"

namespace xlvm {
namespace report {

/** Short stable name for an annotation tag ("deopt", "gc_minor", ...),
 *  or nullptr for a tag this build has no name for. */
const char *annotTagName(uint32_t tag);

/** annotTagName, with unknown tags rendered as "tag<N>" so records from
 *  newer engines stay visible in summaries instead of being collapsed. */
std::string annotTagLabel(uint32_t tag);

/** Parse a tag from a name or decimal number; -1 if unrecognized. */
int32_t annotTagFromString(const std::string &s);

class ChromeTraceBuilder
{
  public:
    explicit ChromeTraceBuilder(double frequency_ghz = 3.0);

    /**
     * Document-level provenance header (schema version, tier mode,
     * sampler interval, ...), emitted as otherData.provenance so the
     * export is interpretable without the invocation that made it.
     */
    void setProvenance(Json provenance);

    /** Append one run's trace; returns the pid assigned to it. An
     *  optional per-run @p provenance object (workload/VM config) is
     *  embedded in that run's otherData.runs entry. */
    int addRun(const std::string &workload, const std::string &vm,
               const xlayer::TraceLog &log,
               const Json *provenance = nullptr);

    /** Full trace-event document (stable member order). */
    Json toJson() const;

    size_t runCount() const { return size_t(nextPid_); }

    /** Events lost to ring wraparound, summed over all runs. */
    uint64_t droppedEvents() const { return dropped_; }

  private:
    double freqGhz_;
    int nextPid_ = 0;
    uint64_t dropped_ = 0;
    Json events_;
    Json runsMeta_;
    Json provenance_;
    bool hasProvenance_ = false;
};

/** Serialize @p doc to @p path ("-" = stdout). */
bool writeChromeTrace(const Json &doc, const std::string &path,
                      std::string *err);

/** Event predicate for the inspector commands. */
struct TraceFilter
{
    int32_t tag = -1;     ///< -1 = any tag
    std::string phase;    ///< empty = any phase
    uint64_t cycleMin = 0;
    uint64_t cycleMax = UINT64_MAX;

    bool
    active() const
    {
        return tag >= 0 || !phase.empty() || cycleMin != 0 ||
               cycleMax != UINT64_MAX;
    }
};

/**
 * New document holding only the events matching @p f. Metadata ("M")
 * events are always kept. Counter events carry no tag/phase, so a
 * tag or phase filter drops them; the cycle range applies to all.
 */
Json filterChromeTrace(const Json &doc, const TraceFilter &f);

/** One line per event: ts, pid, ph, name, tag, payload, phase. */
std::string dumpChromeTrace(const Json &doc);

/**
 * Structured summary: per-run metadata, per-phase enter/exit counts
 * (synthetic repair events excluded), instant-event counts, top-N
 * guard failures by deopt payload, and the compile/deopt timeline.
 */
Json summarizeChromeTrace(const Json &doc, size_t top_n = 10);

/** Human-readable rendering of summarizeChromeTrace's result. */
std::string formatTraceSummary(const Json &summary);

} // namespace report
} // namespace xlvm

#endif // XLVM_REPORT_TRACE_EXPORT_H
