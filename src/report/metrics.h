/**
 * @file
 * Machine-readable metrics export (the paper-as-data subsystem).
 *
 * MetricsRegistry walks every layer's counters for each completed run —
 * the xlayer phase/event/IR-node/AOT/work profilers, the sim core,
 * cache, and branch-predictor statistics, the GC heap and object-space
 * accounting, and the JIT trace/bridge/deopt counts — and flattens them
 * into one stable, versioned schema:
 *
 *   { "schema_version": N, "report": <name>,
 *     "runs": [ { "workload", "vm", "completed",
 *                 "metrics": { section -> { counter -> value } } } ] }
 *
 * Deterministic integer counters stay 64-bit integers end to end (no
 * double round-trip); derived ratios (IPC, MPKI, phase shares) are
 * floats. Section names may nest with '/'. The same flat walk feeds the
 * JSON and CSV serializers, so both formats always agree on coverage.
 */

#ifndef XLVM_REPORT_METRICS_H
#define XLVM_REPORT_METRICS_H

#include <cstdint>
#include <string>
#include <vector>

#include "driver/runner.h"
#include "report/json.h"

namespace xlvm {
namespace report {

/** One "--report fmt[:path]" destination. */
struct ReportTarget
{
    enum class Format
    {
        Json,
        Csv
    };
    Format format = Format::Json;
    /** Output file; empty means "<default_stem>.<ext>" in the cwd. */
    std::string path;
};

/**
 * Collect every "--report json[:path]" / "--report csv[:path]" (also
 * the --report=... spelling) from argv. Empty paths are defaulted to
 * "<default_stem>.json|csv". Returns false and sets @p err on a
 * malformed or unknown format.
 */
bool targetsFromArgs(int argc, char **argv, const std::string &default_stem,
                     std::vector<ReportTarget> *out, std::string *err);

class MetricsRegistry
{
  public:
    /**
     * Bump when the counter walk changes shape; goldens pin this.
     * v2: added config/trace_buffer_events, events/phase_underflows,
     * and the tracer drop/overflow section.
     * v3: added the sim_memo section (block-memoization host-side
     * counters; excluded from golden comparison in the memo-off CI
     * pass via --ignore-section).
     * v4: added config/tier_mode + tier thresholds, events/tier_ups +
     * tier1_compiles, and the jit_tiers section (multi-tier JIT
     * per-tier compiles/bytes/promotions; the tier1/multi golden sets
     * compare with --ignore-section jit_tiers).
     * v5: added the sim_superblock section (trace-level superblock
     * replay host-side counters; the superblock-off and memo-off CI
     * passes exclude it via --ignore-section).
     * v6: added the latency section (iteration / trace-execution
     * modeled-cycle percentiles from always-on host-side histograms —
     * invariant under every replay toggle, so golden-gated) and the
     * profiler section (sampling-profiler telemetry; only non-zero
     * when profiling is on, so the profiler-on differential CI pass
     * compares goldens with --ignore-section profiler).
     * v7: added config/storm_threshold + blacklist_cooldown +
     * compile_budget_ops + max_traces and the jit_robustness section
     * (per-reason trace-abort counters, blacklist/re-arm/eviction/
     * downgrade counts — all modeled and golden-gated — plus the
     * fault-injection trigger telemetry, which is host-side: the armed
     * golden CI pass compares with --ignore-section jit_robustness).
     */
    static constexpr uint64_t kSchemaVersion = 7;

    explicit MetricsRegistry(std::string report_name);

    /** Record one run: walks all layers' counters out of @p result. */
    void addRun(const driver::RunOptions &opts,
                const driver::RunResult &result);

    size_t runCount() const { return runs_.size(); }

    /** Full report document (stable member order). */
    Json toJson() const;

    /** Flat CSV: workload,vm,run,section,counter,value. */
    std::string toCsv() const;

    /**
     * Serialize to @p target ("-" as path = stdout). Returns false and
     * sets @p err on I/O failure.
     */
    bool write(const ReportTarget &target, std::string *err) const;
    bool writeAll(const std::vector<ReportTarget> &targets,
                  std::string *err) const;

  private:
    struct Metric
    {
        std::string section; ///< '/'-nested, e.g. "phases/interp"
        std::string name;
        bool isFloat = false;
        uint64_t u = 0;
        double d = 0.0;
    };

    struct Run
    {
        std::string workload;
        std::string vm;
        bool completed = false;
        std::string error;
        std::vector<Metric> metrics;
    };

    std::string name_;
    std::vector<Run> runs_;
};

} // namespace report
} // namespace xlvm

#endif // XLVM_REPORT_METRICS_H
