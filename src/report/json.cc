#include "report/json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace xlvm {
namespace report {

Json &
Json::set(const std::string &key, Json value)
{
    kind_ = Kind::Object;
    for (auto &kv : obj) {
        if (kv.first == key) {
            kv.second = std::move(value);
            return kv.second;
        }
    }
    obj.emplace_back(key, std::move(value));
    return obj.back().second;
}

const Json *
Json::get(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &kv : obj) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

Json &
Json::push(Json value)
{
    kind_ = Kind::Array;
    arr.push_back(std::move(value));
    return arr.back();
}

void
Json::escape(const std::string &s, std::string &out)
{
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(char(c));
            }
        }
    }
    out.push_back('"');
}

std::string
Json::formatDouble(double v)
{
    if (std::isnan(v))
        return "null"; // JSON has no NaN; counters never produce one
    if (std::isinf(v))
        return v > 0 ? "1e999" : "-1e999";
    // Shortest form that round-trips to the identical bit pattern, so
    // equal doubles always serialize to equal bytes.
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    // Make sure the token reads back as a float, not an integer.
    if (!std::strpbrk(buf, ".eEn")) {
        size_t len = std::strlen(buf);
        buf[len] = '.';
        buf[len + 1] = '0';
        buf[len + 2] = '\0';
    }
    return buf;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad =
        indent > 0 ? "\n" + std::string(size_t(indent) * (depth + 1), ' ')
                   : "";
    const std::string padClose =
        indent > 0 ? "\n" + std::string(size_t(indent) * depth, ' ') : "";
    const char *colon = indent > 0 ? ": " : ":";

    char buf[32];
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += b ? "true" : "false";
        break;
      case Kind::UInt:
        std::snprintf(buf, sizeof(buf), "%" PRIu64, u);
        out += buf;
        break;
      case Kind::Int:
        std::snprintf(buf, sizeof(buf), "%" PRId64, i);
        out += buf;
        break;
      case Kind::Float:
        out += formatDouble(d);
        break;
      case Kind::String:
        escape(str, out);
        break;
      case Kind::Array:
        if (arr.empty()) {
            out += "[]";
            break;
        }
        out.push_back('[');
        for (size_t k = 0; k < arr.size(); ++k) {
            if (k)
                out.push_back(',');
            out += pad;
            arr[k].dumpTo(out, indent, depth + 1);
        }
        out += padClose;
        out.push_back(']');
        break;
      case Kind::Object:
        if (obj.empty()) {
            out += "{}";
            break;
        }
        out.push_back('{');
        for (size_t k = 0; k < obj.size(); ++k) {
            if (k)
                out.push_back(',');
            out += pad;
            escape(obj[k].first, out);
            out += colon;
            obj[k].second.dumpTo(out, indent, depth + 1);
        }
        out += padClose;
        out.push_back('}');
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// ---- parser -------------------------------------------------------------

namespace {

class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : s(text), err(error)
    {
    }

    Json
    run()
    {
        Json v = parseValue();
        if (failed)
            return Json();
        skipWs();
        if (pos != s.size()) {
            fail("trailing characters after JSON value");
            return Json();
        }
        return v;
    }

    bool ok() const { return !failed; }

  private:
    void
    fail(const std::string &msg)
    {
        if (failed)
            return;
        failed = true;
        if (err) {
            size_t line = 1, col = 1;
            for (size_t k = 0; k < pos && k < s.size(); ++k) {
                if (s[k] == '\n') {
                    ++line;
                    col = 1;
                } else {
                    ++col;
                }
            }
            *err = std::to_string(line) + ":" + std::to_string(col) + ": " +
                   msg;
        }
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    Json
    parseValue()
    {
        skipWs();
        if (pos >= s.size()) {
            fail("unexpected end of input");
            return Json();
        }
        char c = s[pos];
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
            return parseLiteral("true", Json(true));
          case 'f':
            return parseLiteral("false", Json(false));
          case 'n':
            return parseLiteral("null", Json());
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber();
            fail(std::string("unexpected character '") + c + "'");
            return Json();
        }
    }

    Json
    parseLiteral(const char *word, Json value)
    {
        size_t n = std::strlen(word);
        if (s.compare(pos, n, word) == 0) {
            pos += n;
            return value;
        }
        fail(std::string("invalid literal, expected ") + word);
        return Json();
    }

    Json
    parseObject()
    {
        ++pos; // '{'
        Json o = Json::object();
        skipWs();
        if (consume('}'))
            return o;
        while (!failed) {
            skipWs();
            if (pos >= s.size() || s[pos] != '"') {
                fail("expected object key string");
                return Json();
            }
            Json key = parseString();
            if (failed)
                return Json();
            skipWs();
            if (!consume(':')) {
                fail("expected ':' after object key");
                return Json();
            }
            Json val = parseValue();
            if (failed)
                return Json();
            o.set(key.asString(), std::move(val));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return o;
            fail("expected ',' or '}' in object");
        }
        return Json();
    }

    Json
    parseArray()
    {
        ++pos; // '['
        Json a = Json::array();
        skipWs();
        if (consume(']'))
            return a;
        while (!failed) {
            Json val = parseValue();
            if (failed)
                return Json();
            a.push(std::move(val));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return a;
            fail("expected ',' or ']' in array");
        }
        return Json();
    }

    Json
    parseString()
    {
        ++pos; // opening quote
        std::string out;
        while (pos < s.size()) {
            char c = s[pos];
            if (c == '"') {
                ++pos;
                return Json(std::move(out));
            }
            if (c == '\\') {
                if (pos + 1 >= s.size())
                    break;
                char e = s[pos + 1];
                pos += 2;
                switch (e) {
                  case '"':
                    out.push_back('"');
                    break;
                  case '\\':
                    out.push_back('\\');
                    break;
                  case '/':
                    out.push_back('/');
                    break;
                  case 'b':
                    out.push_back('\b');
                    break;
                  case 'f':
                    out.push_back('\f');
                    break;
                  case 'n':
                    out.push_back('\n');
                    break;
                  case 'r':
                    out.push_back('\r');
                    break;
                  case 't':
                    out.push_back('\t');
                    break;
                  case 'u': {
                    if (pos + 4 > s.size()) {
                        fail("truncated \\u escape");
                        return Json();
                    }
                    unsigned cp = 0;
                    for (int k = 0; k < 4; ++k) {
                        char h = s[pos + size_t(k)];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= unsigned(h - 'A' + 10);
                        else {
                            fail("invalid \\u escape digit");
                            return Json();
                        }
                    }
                    pos += 4;
                    // Encode the BMP code point as UTF-8 (surrogate
                    // pairs are passed through as two 3-byte units).
                    if (cp < 0x80) {
                        out.push_back(char(cp));
                    } else if (cp < 0x800) {
                        out.push_back(char(0xC0 | (cp >> 6)));
                        out.push_back(char(0x80 | (cp & 0x3F)));
                    } else {
                        out.push_back(char(0xE0 | (cp >> 12)));
                        out.push_back(char(0x80 | ((cp >> 6) & 0x3F)));
                        out.push_back(char(0x80 | (cp & 0x3F)));
                    }
                    break;
                  }
                  default:
                    fail("unknown escape sequence");
                    return Json();
                }
                continue;
            }
            out.push_back(c);
            ++pos;
        }
        fail("unterminated string");
        return Json();
    }

    Json
    parseNumber()
    {
        size_t start = pos;
        bool negative = consume('-');
        bool integral = true;
        while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9')
            ++pos;
        if (pos < s.size() && (s[pos] == '.' || s[pos] == 'e' ||
                               s[pos] == 'E')) {
            integral = false;
            while (pos < s.size() &&
                   (s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                    s[pos] == '+' || s[pos] == '-' ||
                    (s[pos] >= '0' && s[pos] <= '9')))
                ++pos;
        }
        std::string tok = s.substr(start, pos - start);
        if (tok.empty() || tok == "-") {
            fail("invalid number");
            return Json();
        }
        if (integral) {
            errno = 0;
            if (negative) {
                int64_t v = std::strtoll(tok.c_str(), nullptr, 10);
                if (errno != ERANGE)
                    return Json(v);
            } else {
                uint64_t v = std::strtoull(tok.c_str(), nullptr, 10);
                if (errno != ERANGE)
                    return Json(v);
            }
            // Out of 64-bit range: fall back to double.
        }
        return Json(std::strtod(tok.c_str(), nullptr));
    }

    const std::string &s;
    std::string *err;
    size_t pos = 0;
    bool failed = false;
};

} // namespace

Json
Json::parse(const std::string &text, std::string *error)
{
    Parser p(text, error);
    return p.run();
}

} // namespace report
} // namespace xlvm
