/**
 * @file
 * Registry of AOT-compiled runtime entry points.
 *
 * Every runtime function that JIT-compiled traces can call is registered
 * here with the name and source classification used in Table III:
 * R = RPython type-system intrinsics, L = RPython standard library,
 * C = external C stdlib, I = interpreter-defined, M = module-defined.
 *
 * The registry assigns stable integer ids (the kAotEnter/kAotExit
 * annotation payloads) and a synthetic code address for each function so
 * calls exercise the BTB and I-cache like real runtime calls.
 */

#ifndef XLVM_RT_AOT_REGISTRY_H
#define XLVM_RT_AOT_REGISTRY_H

#include <cstdint>
#include <string>
#include <vector>

namespace xlvm {
namespace rt {

/** Source classification per Table III. */
enum class AotSource : uint8_t
{
    TypeIntrinsic, ///< R: rordereddict, rstr, rbuilder, ...
    StdLib,        ///< L: RPython std lib (rbigint, runicode, ...)
    CLib,          ///< C: external C library (pow, memcpy, ...)
    Interp,        ///< I: interpreter-defined (list strategies, ...)
    Module         ///< M: VM module (_pypyjson, ...)
};

inline char
aotSourceTag(AotSource s)
{
    switch (s) {
      case AotSource::TypeIntrinsic:
        return 'R';
      case AotSource::StdLib:
        return 'L';
      case AotSource::CLib:
        return 'C';
      case AotSource::Interp:
        return 'I';
      case AotSource::Module:
        return 'M';
    }
    return '?';
}

struct AotFunction
{
    uint32_t id = 0;
    std::string name;
    AotSource source = AotSource::StdLib;
    uint64_t codePc = 0; ///< synthetic entry address
};

/**
 * Well-known AOT function ids. Kept as an enum so call sites are cheap
 * and typo-proof; the registry provides names/sources for reporting.
 */
enum AotFnId : uint32_t
{
    kAotDictLookup = 0,       // rordereddict.ll_call_lookup_function
    kAotDictResize,           // rordereddict.ll_dict_resize
    kAotStrJoin,              // rstr.ll_join
    kAotStrFindChar,          // rstr.ll_find_char
    kAotStrFind,              // rstr.ll_find
    kAotStrReplace,           // rstring.replace
    kAotStrHash,              // rstr.ll_strhash
    kAotStrSplit,             // rstring.split
    kAotStrTranslate,         // W_UnicodeObject.descr_translate
    kAotStrLower,             // rstr.ll_lower
    kAotStrUpper,             // rstr.ll_upper
    kAotStrStrip,             // rstring.strip
    kAotStrConcat,            // rstr.ll_strconcat
    kAotStrEq,                // rstr.ll_streq
    kAotStrCmp,               // rstr.ll_strcmp
    kAotStrSlice,             // rstr.ll_stringslice
    kAotStrMul,               // rstr.ll_str_mul
    kAotInt2Dec,              // ll_str.ll_int2dec
    kAotStringToInt,          // rarithmetic.string_to_int
    kAotStringToFloat,        // rfloat.string_to_float
    kAotFloatToStr,           // rfloat.float_to_str
    kAotBuilderAppend,        // rbuilder.ll_append
    kAotBuilderBuild,         // rbuilder.ll_build
    kAotBigIntAdd,            // rbigint.add
    kAotBigIntSub,            // rbigint.sub
    kAotBigIntMul,            // rbigint.mul
    kAotBigIntDivMod,         // rbigint.divmod
    kAotBigIntLshift,         // rbigint.lshift
    kAotBigIntRshift,         // rbigint.rshift
    kAotBigIntPow,            // rbigint.pow
    kAotBigIntToStr,          // rbigint.str
    kAotBigIntCmp,            // rbigint.cmp
    kAotListSetslice,         // IntegerListStrategy.setslice
    kAotListFillSliced,       // IntegerListStrategy.fill_in_with_sliced
    kAotListSafeFind,         // IntegerListStrategy.safe_find
    kAotListAppendGrow,       // ListStrategy.append_grow
    kAotListStrategySwitch,   // W_List.switch_strategy
    kAotListSort,             // listsort.sort
    kAotListExtend,           // ListStrategy.extend
    kAotListPop,              // ListStrategy.pop
    kAotListContains,         // ListStrategy.find
    kAotSetDifference,        // BytesSetStrategy.difference_unwrapped
    kAotSetIssubset,          // BytesSetStrategy.issubset_unwrapped
    kAotSetIntersect,         // SetStrategy.intersect
    kAotSetUnion,             // SetStrategy.union
    kAotSetGetStorage,        // setobject.get_storage_from_list
    kAotCPow,                 // C pow
    kAotCMemcpy,              // C memcpy
    kAotCSqrt,                // C sqrt
    kAotCSin,                 // C sin
    kAotCCos,                 // C cos
    kAotCExp,                 // C exp
    kAotCLog,                 // C log
    kAotJsonEscape,           // _pypyjson.raw_encode_basestring_ascii
    kAotReMatch,              // rsre.match (regex engine)
    kAotGcCollectHook,        // framework minor-collection entry
    kAotDictSetitem,          // rordereddict.ll_dict_setitem
    kAotDictDelitem,          // rordereddict.ll_dict_delitem
    kAotSetAdd,               // SetStrategy.add
    kAotSetContains,          // SetStrategy.contains
    kAotStrContains,          // rstr.ll_contains
    kAotAllocContainer,       // interp.alloc_container
    kAotNumFunctions
};

/** Global, immutable table of the functions above. */
class AotRegistry
{
  public:
    /** Singleton accessor (construct-on-first-use). */
    static const AotRegistry &instance();

    const AotFunction &fn(uint32_t id) const;
    size_t size() const { return fns.size(); }

  private:
    AotRegistry();
    std::vector<AotFunction> fns;
};

} // namespace rt
} // namespace xlvm

#endif // XLVM_RT_AOT_REGISTRY_H
