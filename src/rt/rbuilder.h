/**
 * @file
 * String builder — the analog of RPython's rbuilder (ll_append), which
 * appears in Table III for json_bench and spitfire.
 */

#ifndef XLVM_RT_RBUILDER_H
#define XLVM_RT_RBUILDER_H

#include <cstdint>
#include <string>

namespace xlvm {
namespace rt {

class RBuilder
{
  public:
    /** Append a piece; returns cost units (chars copied + realloc work). */
    uint64_t
    append(const std::string &piece)
    {
        uint64_t cost = piece.size() + 1;
        if (buf.capacity() < buf.size() + piece.size())
            cost += buf.size() / 4; // amortized realloc copy
        buf.append(piece);
        return cost;
    }

    uint64_t
    appendChar(char c)
    {
        buf.push_back(c);
        return 1;
    }

    const std::string &view() const { return buf; }
    std::string take() { return std::move(buf); }
    size_t size() const { return buf.size(); }

  private:
    std::string buf;
};

} // namespace rt
} // namespace xlvm

#endif // XLVM_RT_RBUILDER_H
