#include "rt/rstr.h"

#include <cctype>

namespace xlvm {
namespace rt {

int64_t
findChar(const std::string &s, char ch, int64_t start, uint64_t *cost_units)
{
    if (start < 0)
        start = 0;
    for (size_t i = start; i < s.size(); ++i) {
        if (s[i] == ch) {
            *cost_units = i - start + 1;
            return static_cast<int64_t>(i);
        }
    }
    *cost_units = s.size() >= size_t(start) ? s.size() - start + 1 : 1;
    return -1;
}

int64_t
find(const std::string &s, const std::string &needle, int64_t start,
     uint64_t *cost_units)
{
    if (start < 0)
        start = 0;
    if (needle.empty()) {
        *cost_units = 1;
        return start <= int64_t(s.size()) ? start : -1;
    }
    size_t pos = s.find(needle, start);
    if (pos == std::string::npos) {
        *cost_units = (s.size() - start) + needle.size() + 1;
        return -1;
    }
    *cost_units = (pos - start) + needle.size() + 1;
    return static_cast<int64_t>(pos);
}

std::string
replace(const std::string &s, const std::string &from, const std::string &to,
        uint64_t *cost_units)
{
    *cost_units = s.size() + 1;
    if (from.empty())
        return s;
    std::string out;
    out.reserve(s.size());
    size_t pos = 0;
    while (true) {
        size_t hit = s.find(from, pos);
        if (hit == std::string::npos) {
            out.append(s, pos, std::string::npos);
            break;
        }
        out.append(s, pos, hit - pos);
        out.append(to);
        *cost_units += to.size();
        pos = hit + from.size();
    }
    return out;
}

std::string
join(const std::string &sep, const std::vector<std::string> &parts,
     uint64_t *cost_units)
{
    std::string out;
    size_t total = 0;
    for (const auto &p : parts)
        total += p.size() + sep.size();
    out.reserve(total);
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out.append(sep);
        out.append(parts[i]);
    }
    *cost_units = out.size() + parts.size() + 1;
    return out;
}

std::vector<std::string>
split(const std::string &s, char sep, uint64_t *cost_units)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    *cost_units = s.size() + out.size() + 1;
    return out;
}

uint64_t
strHash(const std::string &s, uint64_t *cost_units)
{
    // RPython's ll_strhash uses the CPython -5381-style multiplicative
    // hash; reproduce its structure.
    uint64_t x = s.empty() ? 0 : (uint64_t(uint8_t(s[0])) << 7);
    for (char c : s)
        x = (1000003ull * x) ^ uint8_t(c);
    x ^= s.size();
    *cost_units = s.size() + 1;
    return x ? x : 1;
}

std::string
int2dec(int64_t v, uint64_t *cost_units)
{
    std::string s = std::to_string(v);
    *cost_units = s.size() + 2;
    return s;
}

bool
stringToInt(const std::string &s, int64_t *out, uint64_t *cost_units)
{
    *cost_units = s.size() + 2;
    size_t i = 0, n = s.size();
    while (i < n && std::isspace(uint8_t(s[i])))
        ++i;
    bool neg = false;
    if (i < n && (s[i] == '+' || s[i] == '-')) {
        neg = s[i] == '-';
        ++i;
    }
    if (i >= n || !std::isdigit(uint8_t(s[i])))
        return false;
    int64_t acc = 0;
    for (; i < n && std::isdigit(uint8_t(s[i])); ++i)
        acc = acc * 10 + (s[i] - '0');
    while (i < n && std::isspace(uint8_t(s[i])))
        ++i;
    if (i != n)
        return false;
    *out = neg ? -acc : acc;
    return true;
}

std::string
toLower(const std::string &s, uint64_t *cost_units)
{
    *cost_units = s.size() + 1;
    std::string out = s;
    for (char &c : out)
        c = char(std::tolower(uint8_t(c)));
    return out;
}

std::string
toUpper(const std::string &s, uint64_t *cost_units)
{
    *cost_units = s.size() + 1;
    std::string out = s;
    for (char &c : out)
        c = char(std::toupper(uint8_t(c)));
    return out;
}

std::string
strip(const std::string &s, uint64_t *cost_units)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(uint8_t(s[b])))
        ++b;
    while (e > b && std::isspace(uint8_t(s[e - 1])))
        --e;
    *cost_units = s.size() + 1;
    return s.substr(b, e - b);
}

int64_t
count(const std::string &s, const std::string &needle, uint64_t *cost_units)
{
    *cost_units = s.size() + 1;
    if (needle.empty())
        return int64_t(s.size()) + 1;
    int64_t n = 0;
    size_t pos = 0;
    while ((pos = s.find(needle, pos)) != std::string::npos) {
        ++n;
        pos += needle.size();
    }
    return n;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string
translate(const std::string &s, const std::string &table256,
          uint64_t *cost_units)
{
    std::string out = s;
    if (table256.size() >= 256) {
        for (char &c : out)
            c = table256[uint8_t(c)];
    }
    *cost_units = s.size() + 1;
    return out;
}

std::string
jsonEscape(const std::string &s, uint64_t *cost_units)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (uint8_t(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    *cost_units = out.size() + 1;
    return out;
}

} // namespace rt
} // namespace xlvm
