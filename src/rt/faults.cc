#include "rt/faults.h"

#include <cstdlib>

namespace xlvm {
namespace rt {

const char *
faultSiteName(FaultSite s)
{
    switch (s) {
      case FaultSite::kRecorder: return "recorder";
      case FaultSite::kOptimizer: return "optimizer";
      case FaultSite::kBackend: return "backend";
      case FaultSite::kTraceCache: return "trace_cache";
      case FaultSite::kGcHook: return "gc_hook";
      case FaultSite::kSimMemo: return "sim_memo";
      case FaultSite::kNumFaultSites: break;
    }
    return "unknown";
}

bool
faultSiteFromString(const std::string &name, FaultSite *out)
{
    for (uint32_t i = 0; i < kNumFaultSites; ++i) {
        FaultSite s = static_cast<FaultSite>(i);
        if (name == faultSiteName(s)) {
            *out = s;
            return true;
        }
    }
    return false;
}

bool
FaultEngine::configure(const std::string &spec, std::string *err)
{
    armed_ = false;
    for (auto &st : sites_)
        st = SiteState();
    if (spec.empty())
        return true;

    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string entry = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (entry.empty())
            continue;

        // Optional "fault@" prefix (the only fault kind today).
        size_t at = entry.find('@');
        if (at != std::string::npos) {
            std::string kind = entry.substr(0, at);
            if (kind != "fault") {
                if (err)
                    *err = "--inject: unknown fault kind '" + kind + "'";
                armed_ = false;
                return false;
            }
            entry = entry.substr(at + 1);
        }

        std::string siteName = entry;
        uint64_t nth = 1;
        size_t colon = entry.find(':');
        if (colon != std::string::npos) {
            siteName = entry.substr(0, colon);
            std::string nthStr = entry.substr(colon + 1);
            char *end = nullptr;
            unsigned long long v =
                std::strtoull(nthStr.c_str(), &end, 10);
            if (nthStr.empty() || end == nullptr || *end != '\0' ||
                v == 0) {
                if (err) {
                    *err = "--inject: bad visit ordinal '" + nthStr +
                           "' (want a positive integer)";
                }
                armed_ = false;
                return false;
            }
            nth = v;
        }

        FaultSite site;
        if (!faultSiteFromString(siteName, &site)) {
            if (err) {
                *err = "--inject: unknown site '" + siteName +
                       "' (recorder|optimizer|backend|trace_cache|"
                       "gc_hook|sim_memo)";
            }
            armed_ = false;
            return false;
        }
        SiteState &st = sites_[static_cast<uint32_t>(site)];
        st.active = true;
        st.nth = nth;
        armed_ = true;
    }
    return true;
}

bool
FaultEngine::tick(FaultSite s)
{
    SiteState &st = sites_[static_cast<uint32_t>(s)];
    ++st.visits;
    if (!st.active || st.visits != st.nth)
        return false;
    ++st.fired;
    return true;
}

uint64_t
FaultEngine::totalFired() const
{
    uint64_t n = 0;
    for (const auto &st : sites_)
        n += st.fired;
    return n;
}

} // namespace rt
} // namespace xlvm
