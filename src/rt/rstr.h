/**
 * @file
 * String runtime operations — the analog of RPython's rstr/rstring
 * modules (ll_find_char, ll_join, replace, ll_strhash, ll_int2dec, ...).
 *
 * Each function returns its result plus enough information (via
 * *cost_units) for the caller to charge instruction cost proportional to
 * the characters actually touched, which is what makes string-heavy
 * benchmarks (spitfire, django, bm_mako) AOT-call-bound as in Table III.
 */

#ifndef XLVM_RT_RSTR_H
#define XLVM_RT_RSTR_H

#include <cstdint>
#include <string>
#include <vector>

namespace xlvm {
namespace rt {

/** Find first occurrence of @p ch at/after @p start; -1 if absent. */
int64_t findChar(const std::string &s, char ch, int64_t start,
                 uint64_t *cost_units);

/** Find first occurrence of @p needle at/after @p start; -1 if absent. */
int64_t find(const std::string &s, const std::string &needle, int64_t start,
             uint64_t *cost_units);

/** Replace all occurrences of @p from with @p to. */
std::string replace(const std::string &s, const std::string &from,
                    const std::string &to, uint64_t *cost_units);

/** Join parts with a separator. */
std::string join(const std::string &sep,
                 const std::vector<std::string> &parts,
                 uint64_t *cost_units);

/** Split on a single-character separator. */
std::vector<std::string> split(const std::string &s, char sep,
                               uint64_t *cost_units);

/** Deterministic string hash (RPython-style multiplicative). */
uint64_t strHash(const std::string &s, uint64_t *cost_units);

/** Decimal rendering of a signed 64-bit integer (ll_int2dec). */
std::string int2dec(int64_t v, uint64_t *cost_units);

/**
 * Parse a decimal integer with optional sign and surrounding spaces
 * (rarithmetic.string_to_int). Returns false on malformed input.
 */
bool stringToInt(const std::string &s, int64_t *out, uint64_t *cost_units);

/** Lower-case ASCII copy. */
std::string toLower(const std::string &s, uint64_t *cost_units);

/** Upper-case ASCII copy. */
std::string toUpper(const std::string &s, uint64_t *cost_units);

/** Strip ASCII whitespace from both ends. */
std::string strip(const std::string &s, uint64_t *cost_units);

/**
 * Count non-overlapping occurrences of @p needle.
 */
int64_t count(const std::string &s, const std::string &needle,
              uint64_t *cost_units);

/** startswith/endswith. */
bool startsWith(const std::string &s, const std::string &prefix);
bool endsWith(const std::string &s, const std::string &suffix);

/**
 * Translate characters through a 256-entry map (W_Unicode.descr_translate
 * analog used by html5lib).
 */
std::string translate(const std::string &s, const std::string &table256,
                      uint64_t *cost_units);

/**
 * Encode to "ascii with escapes" the way a JSON encoder would
 * (_pypyjson.raw_encode_basestring_ascii analog).
 */
std::string jsonEscape(const std::string &s, uint64_t *cost_units);

} // namespace rt
} // namespace xlvm

#endif // XLVM_RT_RSTR_H
