/**
 * @file
 * Insertion-ordered hash dictionary — the analog of RPython's
 * rordereddict, whose ll_call_lookup_function is the single most common
 * significant AOT function in Table III.
 *
 * Layout mirrors rordereddict/CPython 3.6+: a sparse index table of
 * entry indices (open addressing, perturb probing) plus a dense,
 * insertion-ordered entry array. Deletions tombstone the dense entry and
 * are compacted when more than half the entries are dead.
 *
 * The template is generic over key/value and a traits class providing
 * hash/equality so the same code backs W_Dict (object keys), string maps
 * (interpreter namespaces), and internal tables.
 */

#ifndef XLVM_RT_RDICT_H
#define XLVM_RT_RDICT_H

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace xlvm {
namespace rt {

/** Statistics/cost feedback from one lookup. */
struct LookupCost
{
    uint32_t probes = 0;   ///< index-table probes performed
    bool keyCompared = 0;  ///< at least one full key comparison ran
};

template <typename K, typename V, typename Traits>
class ROrderedDict
{
  public:
    struct Entry
    {
        K key{};
        V value{};
        uint64_t hash = 0;
        bool live = false;
    };

    ROrderedDict() { indexTable.assign(kInitialSlots, kEmpty); }

    size_t size() const { return numLive; }
    bool empty() const { return numLive == 0; }

    /**
     * Core probing routine (ll_call_lookup_function). Returns the dense
     * entry index for the key or -1.
     */
    int64_t
    lookup(const K &key, uint64_t hash, LookupCost *cost) const
    {
        size_t mask = indexTable.size() - 1;
        size_t slot = hash & mask;
        uint64_t perturb = hash;
        uint32_t probes = 0;
        bool compared = false;
        while (true) {
            ++probes;
            int32_t idx = indexTable[slot];
            if (idx == kEmpty) {
                if (cost)
                    *cost = {probes, compared};
                return -1;
            }
            if (idx != kTombstone) {
                const Entry &e = entries[idx];
                if (e.live && e.hash == hash) {
                    compared = true;
                    if (Traits::equal(e.key, key)) {
                        if (cost)
                            *cost = {probes, compared};
                        return idx;
                    }
                }
            }
            perturb >>= 5;
            slot = (slot * 5 + perturb + 1) & mask;
        }
    }

    /** Lookup returning value pointer or nullptr. */
    V *
    get(const K &key, uint64_t hash, LookupCost *cost = nullptr)
    {
        int64_t idx = lookup(key, hash, cost);
        return idx < 0 ? nullptr : &entries[idx].value;
    }

    const V *
    get(const K &key, uint64_t hash, LookupCost *cost = nullptr) const
    {
        int64_t idx = lookup(key, hash, cost);
        return idx < 0 ? nullptr : &entries[idx].value;
    }

    /**
     * Insert or update. Returns true if a new key was inserted.
     * @param cost accumulates probing cost if non-null.
     */
    bool
    set(const K &key, uint64_t hash, const V &value,
        LookupCost *cost = nullptr)
    {
        int64_t idx = lookup(key, hash, cost);
        if (idx >= 0) {
            entries[idx].value = value;
            return false;
        }
        if ((entries.size() + 1) * 3 >= indexTable.size() * 2)
            grow();
        int32_t newIdx = static_cast<int32_t>(entries.size());
        entries.push_back(Entry{key, value, hash, true});
        insertIndex(hash, newIdx);
        ++numLive;
        ++version_;
        return true;
    }

    /** Delete a key; returns true if it was present. */
    bool
    erase(const K &key, uint64_t hash)
    {
        int64_t idx = lookup(key, hash, nullptr);
        if (idx < 0)
            return false;
        entries[idx].live = false;
        entries[idx].value = V{};
        --numLive;
        ++version_;
        if (numLive * 2 < entries.size())
            compact();
        return true;
    }

    /**
     * Dense entries in insertion order; dead entries have live == false.
     * Iteration must skip them.
     */
    const std::vector<Entry> &rawEntries() const { return entries; }

    /** Mutable access for GC tracing of keys/values. */
    std::vector<Entry> &rawEntriesMut() { return entries; }

    /**
     * Monotonic mutation counter: the versioned-dict mechanism the JIT
     * uses to constant-fold global lookups behind a guard.
     */
    uint64_t version() const { return version_; }

    void
    clear()
    {
        entries.clear();
        indexTable.assign(kInitialSlots, kEmpty);
        numLive = 0;
        ++version_;
    }

    size_t slotCount() const { return indexTable.size(); }

  private:
    static constexpr int32_t kEmpty = -1;
    static constexpr int32_t kTombstone = -2;
    static constexpr size_t kInitialSlots = 8;

    void
    insertIndex(uint64_t hash, int32_t idx)
    {
        size_t mask = indexTable.size() - 1;
        size_t slot = hash & mask;
        uint64_t perturb = hash;
        while (indexTable[slot] != kEmpty &&
               indexTable[slot] != kTombstone) {
            perturb >>= 5;
            slot = (slot * 5 + perturb + 1) & mask;
        }
        indexTable[slot] = idx;
    }

    void
    rebuildIndex()
    {
        for (auto &s : indexTable)
            s = kEmpty;
        for (size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].live)
                insertIndex(entries[i].hash, static_cast<int32_t>(i));
        }
    }

    void
    grow()
    {
        size_t target = indexTable.size() * 2;
        while (entries.size() * 3 >= target * 2)
            target *= 2;
        indexTable.assign(target, kEmpty);
        compactEntries();
        rebuildIndex();
    }

    void
    compact()
    {
        compactEntries();
        rebuildIndex();
    }

    void
    compactEntries()
    {
        std::vector<Entry> dense;
        dense.reserve(numLive);
        for (auto &e : entries) {
            if (e.live)
                dense.push_back(e);
        }
        entries.swap(dense);
    }

    std::vector<int32_t> indexTable;
    std::vector<Entry> entries;
    size_t numLive = 0;
    uint64_t version_ = 0;
};

} // namespace rt
} // namespace xlvm

#endif // XLVM_RT_RDICT_H
