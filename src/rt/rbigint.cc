#include "rt/rbigint.h"

#include <algorithm>

#include "common/logging.h"

namespace xlvm {
namespace rt {

namespace {

constexpr uint64_t kBase = 1ull << RBigInt::kShift;

} // namespace

void
RBigInt::normalize()
{
    while (!digits.empty() && digits.back() == 0)
        digits.pop_back();
    if (digits.empty())
        sign_ = 1;
}

RBigInt
RBigInt::fromInt64(int64_t v)
{
    RBigInt r;
    if (v == 0)
        return r;
    r.sign_ = v < 0 ? -1 : 1;
    // Careful with INT64_MIN: negate in unsigned space.
    uint64_t mag = v < 0 ? ~static_cast<uint64_t>(v) + 1
                         : static_cast<uint64_t>(v);
    while (mag) {
        r.digits.push_back(static_cast<Digit>(mag & kMask));
        mag >>= kShift;
    }
    return r;
}

RBigInt
RBigInt::fromDecimal(const std::string &s)
{
    RBigInt r;
    size_t i = 0;
    int sign = 1;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) {
        sign = s[i] == '-' ? -1 : 1;
        ++i;
    }
    XLVM_ASSERT(i < s.size(), "empty bigint literal");
    RBigInt ten = fromInt64(10);
    for (; i < s.size(); ++i) {
        XLVM_ASSERT(s[i] >= '0' && s[i] <= '9', "bad digit in ", s);
        r = mul(r, ten);
        r = add(r, fromInt64(s[i] - '0'));
    }
    if (sign < 0)
        r = r.neg();
    return r;
}

int
RBigInt::compareMagnitude(const RBigInt &a, const RBigInt &b)
{
    if (a.digits.size() != b.digits.size())
        return a.digits.size() < b.digits.size() ? -1 : 1;
    for (size_t i = a.digits.size(); i-- > 0;) {
        if (a.digits[i] != b.digits[i])
            return a.digits[i] < b.digits[i] ? -1 : 1;
    }
    return 0;
}

int
RBigInt::compare(const RBigInt &a, const RBigInt &b)
{
    int sa = a.sign();
    int sb = b.sign();
    if (sa != sb)
        return sa < sb ? -1 : 1;
    int mag = compareMagnitude(a, b);
    return sa >= 0 ? mag : -mag;
}

RBigInt
RBigInt::addMagnitude(const RBigInt &a, const RBigInt &b)
{
    RBigInt r;
    const auto &big = a.digits.size() >= b.digits.size() ? a : b;
    const auto &small = a.digits.size() >= b.digits.size() ? b : a;
    r.digits.reserve(big.digits.size() + 1);
    uint64_t carry = 0;
    for (size_t i = 0; i < big.digits.size(); ++i) {
        uint64_t v = carry + big.digits[i] +
                     (i < small.digits.size() ? small.digits[i] : 0);
        r.digits.push_back(static_cast<Digit>(v & kMask));
        carry = v >> kShift;
    }
    if (carry)
        r.digits.push_back(static_cast<Digit>(carry));
    return r;
}

RBigInt
RBigInt::subMagnitude(const RBigInt &a, const RBigInt &b)
{
    RBigInt r;
    r.digits.reserve(a.digits.size());
    int64_t borrow = 0;
    for (size_t i = 0; i < a.digits.size(); ++i) {
        int64_t v = int64_t(a.digits[i]) - borrow -
                    (i < b.digits.size() ? int64_t(b.digits[i]) : 0);
        if (v < 0) {
            v += kBase;
            borrow = 1;
        } else {
            borrow = 0;
        }
        r.digits.push_back(static_cast<Digit>(v));
    }
    XLVM_ASSERT(borrow == 0, "subMagnitude underflow");
    r.normalize();
    return r;
}

RBigInt
RBigInt::add(const RBigInt &a, const RBigInt &b)
{
    if (a.isZero())
        return b;
    if (b.isZero())
        return a;
    RBigInt r;
    if (a.sign_ == b.sign_) {
        r = addMagnitude(a, b);
        r.sign_ = a.sign_;
    } else {
        int cmp = compareMagnitude(a, b);
        if (cmp == 0)
            return RBigInt();
        if (cmp > 0) {
            r = subMagnitude(a, b);
            r.sign_ = a.sign_;
        } else {
            r = subMagnitude(b, a);
            r.sign_ = b.sign_;
        }
    }
    r.normalize();
    return r;
}

RBigInt
RBigInt::sub(const RBigInt &a, const RBigInt &b)
{
    return add(a, b.neg());
}

RBigInt
RBigInt::mul(const RBigInt &a, const RBigInt &b)
{
    if (a.isZero() || b.isZero())
        return RBigInt();
    RBigInt r;
    r.digits.assign(a.digits.size() + b.digits.size(), 0);
    for (size_t i = 0; i < a.digits.size(); ++i) {
        uint64_t carry = 0;
        uint64_t ai = a.digits[i];
        for (size_t j = 0; j < b.digits.size(); ++j) {
            uint64_t v = uint64_t(r.digits[i + j]) + ai * b.digits[j] +
                         carry;
            r.digits[i + j] = static_cast<Digit>(v & kMask);
            carry = v >> kShift;
        }
        size_t k = i + b.digits.size();
        while (carry) {
            uint64_t v = uint64_t(r.digits[k]) + carry;
            r.digits[k] = static_cast<Digit>(v & kMask);
            carry = v >> kShift;
            ++k;
        }
    }
    r.sign_ = a.sign_ * b.sign_;
    r.normalize();
    return r;
}

RBigInt::Digit
RBigInt::divremSmall(const RBigInt &a, Digit d, RBigInt &q)
{
    q.digits.assign(a.digits.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.digits.size(); i-- > 0;) {
        uint64_t cur = (rem << kShift) | a.digits[i];
        q.digits[i] = static_cast<Digit>(cur / d);
        rem = cur % d;
    }
    q.normalize();
    return static_cast<Digit>(rem);
}

void
RBigInt::divmod(const RBigInt &a, const RBigInt &b, RBigInt &q, RBigInt &r)
{
    XLVM_ASSERT(!b.isZero(), "bigint division by zero");

    // Magnitude division first (truncating), then fix up for floor
    // semantics with mixed signs.
    RBigInt qm; // |a| / |b|
    RBigInt rm; // |a| % |b|

    int magcmp = compareMagnitude(a, b);
    if (a.isZero() || magcmp < 0) {
        qm = RBigInt();
        rm = a.abs();
    } else if (b.digits.size() == 1) {
        Digit rem = divremSmall(a, b.digits[0], qm);
        rm = fromInt64(rem);
    } else {
        // Knuth Algorithm D on base-2^30 digits.
        uint32_t shift = 0;
        Digit top = b.digits.back();
        while ((top << shift & ~kMask) == 0 &&
               ((top << shift) & (1u << (kShift - 1))) == 0)
            ++shift;
        RBigInt u = a.abs().lshift(shift);
        RBigInt v = b.abs().lshift(shift);
        size_t n = v.digits.size();
        size_t m = u.digits.size() - n;
        u.digits.push_back(0); // u has m+n+1 digits
        qm.digits.assign(m + 1, 0);

        uint64_t vtop = v.digits[n - 1];
        uint64_t vsecond = n >= 2 ? v.digits[n - 2] : 0;

        for (size_t j = m + 1; j-- > 0;) {
            uint64_t num = (uint64_t(u.digits[j + n]) << kShift) |
                           u.digits[j + n - 1];
            uint64_t qhat = num / vtop;
            uint64_t rhat = num % vtop;
            while (qhat >= kBase ||
                   qhat * vsecond >
                       ((rhat << kShift) |
                        (n >= 2 ? u.digits[j + n - 2] : 0))) {
                --qhat;
                rhat += vtop;
                if (rhat >= kBase)
                    break;
            }
            // Multiply-subtract qhat*v from u[j..j+n].
            int64_t borrow = 0;
            uint64_t carry = 0;
            for (size_t i = 0; i < n; ++i) {
                uint64_t p = qhat * v.digits[i] + carry;
                carry = p >> kShift;
                int64_t t = int64_t(u.digits[i + j]) -
                            int64_t(p & kMask) - borrow;
                if (t < 0) {
                    t += kBase;
                    borrow = 1;
                } else {
                    borrow = 0;
                }
                u.digits[i + j] = static_cast<Digit>(t);
            }
            int64_t t = int64_t(u.digits[j + n]) - int64_t(carry) - borrow;
            if (t < 0) {
                // qhat was one too large: add back v.
                t += kBase;
                --qhat;
                uint64_t c2 = 0;
                for (size_t i = 0; i < n; ++i) {
                    uint64_t s = uint64_t(u.digits[i + j]) + v.digits[i] +
                                 c2;
                    u.digits[i + j] = static_cast<Digit>(s & kMask);
                    c2 = s >> kShift;
                }
                t += int64_t(c2);
                t &= int64_t(kMask);
            }
            u.digits[j + n] = static_cast<Digit>(t);
            qm.digits[j] = static_cast<Digit>(qhat);
        }
        qm.normalize();
        u.digits.resize(n);
        u.normalize();
        u.sign_ = 1;
        rm = u.rshift(shift);
    }

    qm.normalize();
    rm.normalize();

    int sa = a.sign() == 0 ? 1 : a.sign();
    int sb = b.sign();
    if (sa == sb) {
        q = qm;
        if (!q.isZero())
            q.sign_ = 1;
        r = rm;
        if (!r.isZero())
            r.sign_ = sb;
    } else if (rm.isZero()) {
        q = qm;
        if (!q.isZero())
            q.sign_ = -1;
        r = RBigInt();
    } else {
        // Floor division with mixed signs: q = -(qm+1), r = b_sign*(|b|-rm)
        q = add(qm, fromInt64(1)).neg();
        r = subMagnitude(b.abs(), rm);
        if (!r.isZero())
            r.sign_ = sb;
    }
}

RBigInt
RBigInt::lshift(uint32_t bits) const
{
    if (isZero() || bits == 0)
        return *this;
    uint32_t wordShift = bits / kShift;
    uint32_t bitShift = bits % kShift;
    RBigInt r;
    r.sign_ = sign_;
    r.digits.assign(digits.size() + wordShift + 1, 0);
    for (size_t i = 0; i < digits.size(); ++i) {
        uint64_t v = uint64_t(digits[i]) << bitShift;
        r.digits[i + wordShift] |= static_cast<Digit>(v & kMask);
        r.digits[i + wordShift + 1] |= static_cast<Digit>(v >> kShift);
    }
    r.normalize();
    return r;
}

RBigInt
RBigInt::rshift(uint32_t bits) const
{
    if (isZero() || bits == 0)
        return *this;
    uint32_t wordShift = bits / kShift;
    uint32_t bitShift = bits % kShift;
    if (wordShift >= digits.size())
        return RBigInt();
    RBigInt r;
    r.sign_ = sign_;
    size_t n = digits.size() - wordShift;
    r.digits.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
        uint64_t v = digits[i + wordShift] >> bitShift;
        if (bitShift && i + wordShift + 1 < digits.size()) {
            v |= (uint64_t(digits[i + wordShift + 1])
                  << (kShift - bitShift)) &
                 kMask;
        }
        r.digits[i] = static_cast<Digit>(v);
    }
    r.normalize();
    return r;
}

RBigInt
RBigInt::neg() const
{
    RBigInt r = *this;
    if (!r.isZero())
        r.sign_ = -r.sign_;
    return r;
}

RBigInt
RBigInt::abs() const
{
    RBigInt r = *this;
    r.sign_ = 1;
    return r;
}

RBigInt
RBigInt::pow(const RBigInt &base, uint64_t exp)
{
    RBigInt result = fromInt64(1);
    RBigInt acc = base;
    while (exp) {
        if (exp & 1)
            result = mul(result, acc);
        exp >>= 1;
        if (exp)
            acc = mul(acc, acc);
    }
    return result;
}

bool
RBigInt::fitsInt64() const
{
    if (digits.size() > 3)
        return false;
    if (digits.size() < 3)
        return true;
    // 3 digits = up to 90 bits; check against int64 range.
    unsigned __int128 mag = 0;
    for (size_t i = digits.size(); i-- > 0;)
        mag = (mag << kShift) | digits[i];
    if (sign_ > 0)
        return mag <= static_cast<unsigned __int128>(INT64_MAX);
    return mag <= static_cast<unsigned __int128>(INT64_MAX) + 1;
}

int64_t
RBigInt::toInt64() const
{
    XLVM_ASSERT(fitsInt64(), "bigint does not fit int64");
    uint64_t mag = 0;
    for (size_t i = digits.size(); i-- > 0;)
        mag = (mag << kShift) | digits[i];
    return sign() < 0 ? -static_cast<int64_t>(mag)
                      : static_cast<int64_t>(mag);
}

double
RBigInt::toDouble() const
{
    double v = 0;
    for (size_t i = digits.size(); i-- > 0;)
        v = v * double(kBase) + digits[i];
    return sign() < 0 ? -v : v;
}

std::string
RBigInt::toDecimal() const
{
    if (isZero())
        return "0";
    std::string out;
    RBigInt cur = abs();
    // Divide by 10^9 chunks for fewer passes.
    constexpr Digit kChunk = 1000000000u;
    while (!cur.isZero()) {
        RBigInt q;
        Digit rem = divremSmall(cur, kChunk, q);
        bool last = q.isZero();
        for (int k = 0; k < 9 && (!last || rem); ++k) {
            out.push_back('0' + rem % 10);
            rem /= 10;
        }
        if (last && out.empty())
            out.push_back('0');
        cur = q;
    }
    if (sign() < 0)
        out.push_back('-');
    std::reverse(out.begin(), out.end());
    return out;
}

uint64_t
RBigInt::addCostUnits(const RBigInt &a, const RBigInt &b)
{
    return std::max(a.numDigits(), b.numDigits()) + 1;
}

uint64_t
RBigInt::mulCostUnits(const RBigInt &a, const RBigInt &b)
{
    return a.numDigits() * b.numDigits() + 1;
}

uint64_t
RBigInt::divmodCostUnits(const RBigInt &a, const RBigInt &b)
{
    size_t n = b.numDigits();
    size_t m = a.numDigits() > n ? a.numDigits() - n : 0;
    return (m + 1) * (n + 1);
}

uint64_t
RBigInt::shiftCostUnits(const RBigInt &a, uint32_t bits)
{
    return a.numDigits() + bits / kShift + 1;
}

uint64_t
RBigInt::toDecimalCostUnits() const
{
    return numDigits() * numDigits() / 9 + numDigits() + 1;
}

} // namespace rt
} // namespace xlvm
