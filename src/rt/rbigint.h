/**
 * @file
 * Arbitrary-precision integer arithmetic — the analog of RPython's
 * rbigint module.
 *
 * These are the AOT-compiled runtime functions that dominate benchmarks
 * like pidigits in Table III of the paper (rbigint.add / divmod / lshift /
 * mul). The implementation is a real bignum (sign-magnitude, base 2^30
 * digits, schoolbook multiplication, Knuth-style long division); callers
 * account execution cost from the digit counts via costUnits() hints.
 */

#ifndef XLVM_RT_RBIGINT_H
#define XLVM_RT_RBIGINT_H

#include <cstdint>
#include <string>
#include <vector>

namespace xlvm {
namespace rt {

class RBigInt
{
  public:
    /** Base-2^30 digits, little-endian; empty means zero. */
    using Digit = uint32_t;
    static constexpr uint32_t kShift = 30;
    static constexpr Digit kMask = (1u << kShift) - 1;

    RBigInt() = default;

    static RBigInt fromInt64(int64_t v);
    static RBigInt fromDecimal(const std::string &s);

    bool isZero() const { return digits.empty(); }
    int sign() const { return digits.empty() ? 0 : sign_; }

    /** Number of base-2^30 digits. */
    size_t numDigits() const { return digits.size(); }

    /** -1 / 0 / +1 comparison. */
    static int compare(const RBigInt &a, const RBigInt &b);

    static RBigInt add(const RBigInt &a, const RBigInt &b);
    static RBigInt sub(const RBigInt &a, const RBigInt &b);
    static RBigInt mul(const RBigInt &a, const RBigInt &b);

    /**
     * Floor divmod (Python semantics: remainder has divisor's sign).
     * @pre !b.isZero()
     */
    static void divmod(const RBigInt &a, const RBigInt &b, RBigInt &q,
                       RBigInt &r);

    RBigInt lshift(uint32_t bits) const;
    RBigInt rshift(uint32_t bits) const;

    RBigInt neg() const;
    RBigInt abs() const;

    /** Nonnegative small exponent power. */
    static RBigInt pow(const RBigInt &base, uint64_t exp);

    /** True iff the value fits in int64. */
    bool fitsInt64() const;
    int64_t toInt64() const;
    double toDouble() const;

    std::string toDecimal() const;

    bool
    equals(const RBigInt &o) const
    {
        return compare(*this, o) == 0;
    }

    /**
     * Work-unit hints for the cost model: roughly the number of digit
     * operations the last-constructed result implies. Callers charge
     * instruction cost proportional to these.
     */
    static uint64_t addCostUnits(const RBigInt &a, const RBigInt &b);
    static uint64_t mulCostUnits(const RBigInt &a, const RBigInt &b);
    static uint64_t divmodCostUnits(const RBigInt &a, const RBigInt &b);
    static uint64_t shiftCostUnits(const RBigInt &a, uint32_t bits);
    uint64_t toDecimalCostUnits() const;

  private:
    static RBigInt addMagnitude(const RBigInt &a, const RBigInt &b);
    /** @pre |a| >= |b| */
    static RBigInt subMagnitude(const RBigInt &a, const RBigInt &b);
    static int compareMagnitude(const RBigInt &a, const RBigInt &b);
    /** Divide magnitude by a single digit; returns remainder. */
    static Digit divremSmall(const RBigInt &a, Digit d, RBigInt &q);
    void normalize();

    std::vector<Digit> digits;
    int sign_ = 1; ///< meaningful only when digits nonempty
};

} // namespace rt
} // namespace xlvm

#endif // XLVM_RT_RBIGINT_H
