#include "rt/aot_registry.h"

#include "common/logging.h"

namespace xlvm {
namespace rt {

namespace {

struct FnDef
{
    AotFnId id;
    const char *name;
    AotSource src;
};

const FnDef kDefs[] = {
    {kAotDictLookup, "rordereddict.ll_call_lookup_function",
     AotSource::TypeIntrinsic},
    {kAotDictResize, "rordereddict.ll_dict_resize",
     AotSource::TypeIntrinsic},
    {kAotStrJoin, "rstr.ll_join", AotSource::TypeIntrinsic},
    {kAotStrFindChar, "rstr.ll_find_char", AotSource::TypeIntrinsic},
    {kAotStrFind, "rstr.ll_find", AotSource::TypeIntrinsic},
    {kAotStrReplace, "rstring.replace", AotSource::StdLib},
    {kAotStrHash, "rstr.ll_strhash", AotSource::TypeIntrinsic},
    {kAotStrSplit, "rstring.split", AotSource::StdLib},
    {kAotStrTranslate, "W_UnicodeObject.descr_translate",
     AotSource::Interp},
    {kAotStrLower, "rstr.ll_lower", AotSource::TypeIntrinsic},
    {kAotStrUpper, "rstr.ll_upper", AotSource::TypeIntrinsic},
    {kAotStrStrip, "rstring.strip", AotSource::StdLib},
    {kAotStrConcat, "rstr.ll_strconcat", AotSource::TypeIntrinsic},
    {kAotStrEq, "rstr.ll_streq", AotSource::TypeIntrinsic},
    {kAotStrCmp, "rstr.ll_strcmp", AotSource::TypeIntrinsic},
    {kAotStrSlice, "rstr.ll_stringslice", AotSource::TypeIntrinsic},
    {kAotStrMul, "rstr.ll_str_mul", AotSource::TypeIntrinsic},
    {kAotInt2Dec, "ll_str.ll_int2dec", AotSource::TypeIntrinsic},
    {kAotStringToInt, "rarithmetic.string_to_int", AotSource::StdLib},
    {kAotStringToFloat, "rfloat.string_to_float", AotSource::StdLib},
    {kAotFloatToStr, "rfloat.float_to_str", AotSource::StdLib},
    {kAotBuilderAppend, "rbuilder.ll_append", AotSource::TypeIntrinsic},
    {kAotBuilderBuild, "rbuilder.ll_build", AotSource::TypeIntrinsic},
    {kAotBigIntAdd, "rbigint.add", AotSource::StdLib},
    {kAotBigIntSub, "rbigint.sub", AotSource::StdLib},
    {kAotBigIntMul, "rbigint.mul", AotSource::StdLib},
    {kAotBigIntDivMod, "rbigint.divmod", AotSource::StdLib},
    {kAotBigIntLshift, "rbigint.lshift", AotSource::StdLib},
    {kAotBigIntRshift, "rbigint.rshift", AotSource::StdLib},
    {kAotBigIntPow, "rbigint.pow", AotSource::StdLib},
    {kAotBigIntToStr, "rbigint.str", AotSource::StdLib},
    {kAotBigIntCmp, "rbigint.cmp", AotSource::StdLib},
    {kAotListSetslice, "IntegerListStrategy.setslice", AotSource::Interp},
    {kAotListFillSliced, "IntegerListStrategy.fill_in_with_sliced",
     AotSource::Interp},
    {kAotListSafeFind, "IntegerListStrategy.safe_find", AotSource::Interp},
    {kAotListAppendGrow, "ListStrategy.append_grow", AotSource::Interp},
    {kAotListStrategySwitch, "W_List.switch_strategy", AotSource::Interp},
    {kAotListSort, "listsort.sort", AotSource::Interp},
    {kAotListExtend, "ListStrategy.extend", AotSource::Interp},
    {kAotListPop, "ListStrategy.pop", AotSource::Interp},
    {kAotListContains, "ListStrategy.find", AotSource::Interp},
    {kAotSetDifference, "BytesSetStrategy.difference_unwrapped",
     AotSource::Interp},
    {kAotSetIssubset, "BytesSetStrategy.issubset_unwrapped",
     AotSource::Interp},
    {kAotSetIntersect, "SetStrategy.intersect", AotSource::Interp},
    {kAotSetUnion, "SetStrategy.union", AotSource::Interp},
    {kAotSetGetStorage, "setobject.get_storage_from_list",
     AotSource::Interp},
    {kAotCPow, "pow", AotSource::CLib},
    {kAotCMemcpy, "memcpy", AotSource::CLib},
    {kAotCSqrt, "sqrt", AotSource::CLib},
    {kAotCSin, "sin", AotSource::CLib},
    {kAotCCos, "cos", AotSource::CLib},
    {kAotCExp, "exp", AotSource::CLib},
    {kAotCLog, "log", AotSource::CLib},
    {kAotJsonEscape, "_pypyjson.raw_encode_basestring_ascii",
     AotSource::Module},
    {kAotReMatch, "rsre.match", AotSource::StdLib},
    {kAotGcCollectHook, "gc.collect_nursery", AotSource::StdLib},
    {kAotDictSetitem, "rordereddict.ll_dict_setitem",
     AotSource::TypeIntrinsic},
    {kAotDictDelitem, "rordereddict.ll_dict_delitem",
     AotSource::TypeIntrinsic},
    {kAotSetAdd, "SetStrategy.add", AotSource::Interp},
    {kAotSetContains, "SetStrategy.contains", AotSource::Interp},
    {kAotStrContains, "rstr.ll_contains", AotSource::TypeIntrinsic},
    {kAotAllocContainer, "interp.alloc_container", AotSource::Interp},
};

} // namespace

AotRegistry::AotRegistry()
{
    fns.resize(kAotNumFunctions);
    uint64_t pc = 0x00a00000ull; // runtime text segment
    for (const FnDef &d : kDefs) {
        AotFunction f;
        f.id = d.id;
        f.name = d.name;
        f.source = d.src;
        f.codePc = pc;
        pc += 0x1000;
        fns[d.id] = f;
    }
    for (uint32_t i = 0; i < fns.size(); ++i) {
        XLVM_ASSERT(!fns[i].name.empty(),
                    "AOT function id ", i, " missing a definition");
    }
}

const AotRegistry &
AotRegistry::instance()
{
    static AotRegistry reg;
    return reg;
}

const AotFunction &
AotRegistry::fn(uint32_t id) const
{
    XLVM_ASSERT(id < fns.size(), "bad AOT fn id ", id);
    return fns[id];
}

} // namespace rt
} // namespace xlvm
