/**
 * @file
 * Deterministic fault-injection engine.
 *
 * Chaos testing for the JIT's containment paths: a FaultEngine is a
 * set of counter-based trigger points ("the Nth time the recorder site
 * is visited, fail") armed from a spec string (`--inject` /
 * XLVM_INJECT). Because triggers are visit-counter based — never
 * time or randomness based — an injected failure is bit-reproducible
 * across runs and independent of --jobs (each VmContext owns its own
 * engine, like the sampler).
 *
 * Zero-cost when disarmed: every site probe starts with a single
 * predictable branch on armed(); a VM run without --inject executes
 * the exact same instruction stream as one built without the engine,
 * so modeled counters stay bit-identical (enforced by the fifth
 * check_goldens.sh pass, which arms a never-firing trigger).
 *
 * Spec grammar (comma-separated, later entries win per site):
 *     spec  := entry ("," entry)*
 *     entry := ["fault@"] site [":" nth]
 *     site  := recorder | optimizer | backend | trace_cache | gc_hook
 *              | sim_memo
 *     nth   := 1-based visit ordinal (default 1); the trigger is
 *              one-shot — it fires on exactly that visit.
 */

#ifndef XLVM_RT_FAULTS_H
#define XLVM_RT_FAULTS_H

#include <cstdint>
#include <string>

namespace xlvm {
namespace rt {

/** Where a fault can be injected. Stable numbering (metrics keys). */
enum class FaultSite : uint8_t
{
    kRecorder = 0,   ///< per traced dispatch: recording aborts
    kOptimizer = 1,  ///< trace optimization fails -> tier-1 retry
    kBackend = 2,    ///< backend compile fails -> recording discarded
    kTraceCache = 3, ///< registration sees cache pressure -> eviction/abort
    kGcHook = 4,     ///< GC safepoint misbehaves -> abort if recording
    kSimMemo = 5,    ///< host-side memo invalidation (counters invariant)
    kNumFaultSites
};

constexpr uint32_t kNumFaultSites =
    static_cast<uint32_t>(FaultSite::kNumFaultSites);

/** Stable snake_case name (metrics keys, spec strings). */
const char *faultSiteName(FaultSite s);

/** Parse a site name; returns false on unknown names. */
bool faultSiteFromString(const std::string &name, FaultSite *out);

class FaultEngine
{
  public:
    /**
     * Arm from a spec string (see file comment). An empty spec leaves
     * the engine disarmed. Returns false (and fills @p err with a
     * one-line message) on a malformed spec, leaving the engine
     * disarmed.
     */
    bool configure(const std::string &spec, std::string *err);

    bool armed() const { return armed_; }

    /**
     * Probe a trigger point. The disarmed path is one predictable
     * branch. When armed, every probe counts a visit (telemetry) and
     * returns true exactly once: on the visit ordinal the site was
     * armed for.
     */
    bool
    shouldFire(FaultSite s)
    {
        if (!armed_)
            return false;
        return tick(s);
    }

    /** Telemetry: probes seen / faults delivered per site. */
    uint64_t visits(FaultSite s) const
    {
        return sites_[static_cast<uint32_t>(s)].visits;
    }
    uint64_t fired(FaultSite s) const
    {
        return sites_[static_cast<uint32_t>(s)].fired;
    }
    uint64_t totalFired() const;

  private:
    bool tick(FaultSite s);

    struct SiteState
    {
        bool active = false; ///< a trigger is armed for this site
        uint64_t nth = 0;    ///< 1-based firing ordinal
        uint64_t visits = 0;
        uint64_t fired = 0;
    };

    bool armed_ = false;
    SiteState sites_[kNumFaultSites];
};

} // namespace rt
} // namespace xlvm

#endif // XLVM_RT_FAULTS_H
