/**
 * @file
 * Statically compiled C++ reference implementations of the CLBG kernels
 * (the paper's C/C++ column in Table II).
 */

#ifndef XLVM_NATIVE_CLBG_NATIVE_H
#define XLVM_NATIVE_CLBG_NATIVE_H

#include <string>

namespace xlvm {
namespace native {

/**
 * Run the native implementation of @p workload at its registry scale on
 * the simulated core (Native phase) and return simulated seconds, or
 * -1 if no native implementation exists.
 */
double runNative(const std::string &workload);

/** Output of the last runNative call (for agreement checks). */
const std::string &lastNativeOutput();

} // namespace native
} // namespace xlvm

#endif // XLVM_NATIVE_CLBG_NATIVE_H
