#include "native/clbg_native.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "sim/code_space.h"
#include "sim/core.h"
#include "sim/emitter.h"
#include "workloads/workloads.h"
#include "xlayer/annot.h"
#include "xlayer/phase.h"

namespace xlvm {
namespace native {

namespace {

std::string gLastOutput;

/**
 * Cost accounting for straight-line compiled code: real algorithms run
 * in C++, and each inner-loop step charges a small, dense instruction
 * pattern (the statically compiled contrast to interpreters: no
 * dispatch, direct branches, register-resident values).
 */
class NativeRun
{
  public:
    NativeRun() : core(params())
    {
        pc = space.alloc(sim::CodeSegment::Interp, 4096);
        sim::BlockEmitter e(core, pc);
        e.annot(xlayer::kPhaseEnter, uint32_t(xlayer::Phase::Native));
    }

    static sim::CoreParams
    params()
    {
        return sim::CoreParams();
    }

    /** Charge one loop step: a few ALU ops, a load, a taken branch. */
    void
    step(uint32_t alu = 3, bool load = false, bool fp = false)
    {
        sim::BlockEmitter e(core, pc + 64);
        if (fp)
            e.fpAlu(alu);
        else
            e.alu(alu);
        if (load)
            e.load(pc + 0x1000 + (steps % 512) * 8, 0);
        e.branch((steps & 7) != 0);
        ++steps;
    }

    double
    seconds()
    {
        sim::BlockEmitter e(core, pc + 128);
        e.annot(xlayer::kPhaseExit, uint32_t(xlayer::Phase::Native));
        return core.seconds();
    }

    sim::CodeSpace space;
    sim::Core core;
    uint64_t pc = 0;
    uint64_t steps = 0;
};

int64_t
scaleOf(const std::string &name)
{
    for (const workloads::Workload &w : workloads::clbgSuite()) {
        if (w.name == name)
            return w.defaultScale;
    }
    return 0;
}

// ---- kernels ----------------------------------------------------------

double
nativeBinarytrees(NativeRun &run, int64_t maxdepth)
{
    struct Node
    {
        Node *l = nullptr;
        Node *r = nullptr;
    };
    std::vector<Node> pool;
    pool.reserve(1u << (maxdepth + 2));

    // Recursive build/check via explicit lambdas.
    std::function<Node *(int)> make = [&](int d) -> Node * {
        run.step(4, true);
        pool.emplace_back();
        Node *n = &pool.back();
        if (d > 0) {
            n->l = make(d - 1);
            n->r = make(d - 1);
        }
        return n;
    };
    std::function<int64_t(Node *)> check = [&](Node *n) -> int64_t {
        run.step(2, true);
        if (!n->l)
            return 1;
        return 1 + check(n->l) + check(n->r);
    };

    pool.clear();
    int64_t total = check(make(int(maxdepth) + 1));
    pool.clear();
    Node *longlived = make(int(maxdepth));
    for (int64_t depth = 4; depth <= maxdepth; depth += 2) {
        int64_t iters = int64_t(1) << (maxdepth - depth + 4);
        for (int64_t i = 0; i < iters; ++i) {
            size_t mark = pool.size();
            total += check(make(int(depth)));
            pool.resize(mark > 0 ? mark : 0);
        }
    }
    total += check(longlived);
    gLastOutput = std::to_string(total) + "\n";
    return run.seconds();
}

double
nativeMandelbrot(NativeRun &run, int64_t size)
{
    int64_t total = 0;
    for (int64_t y = 0; y < size; ++y) {
        double ci = 2.0 * y / size - 1.0;
        for (int64_t x = 0; x < size; ++x) {
            double cr = 2.0 * x / size - 1.5;
            double zr = 0, zi = 0;
            bool inside = true;
            for (int i = 0; i < 50; ++i) {
                run.step(5, false, true);
                double zr2 = zr * zr, zi2 = zi * zi;
                if (zr2 + zi2 > 4.0) {
                    inside = false;
                    break;
                }
                zi = 2.0 * zr * zi + ci;
                zr = zr2 - zi2 + cr;
            }
            if (inside)
                ++total;
        }
    }
    gLastOutput = std::to_string(total) + "\n";
    return run.seconds();
}

double
nativeFannkuch(NativeRun &run, int64_t n)
{
    std::vector<int> perm1(n), perm(n), count(n, 0);
    for (int64_t i = 0; i < n; ++i)
        perm1[i] = int(i);
    int64_t maxFlips = 0, checksum = 0, sign = 1;
    while (true) {
        if (perm1[0] != 0) {
            perm = perm1;
            int64_t flips = 0;
            int k = perm[0];
            while (k != 0) {
                run.step(3, true);
                std::reverse(perm.begin(), perm.begin() + k + 1);
                ++flips;
                k = perm[0];
            }
            if (flips > maxFlips)
                maxFlips = flips;
            checksum += sign * flips;
        }
        sign = -sign;
        int64_t r = 1;
        while (true) {
            run.step(2, true);
            if (r == n) {
                gLastOutput = std::to_string(maxFlips * 100000 +
                                             ((checksum % 100000) +
                                              100000) %
                                                 100000) +
                              "\n";
                return run.seconds();
            }
            int first = perm1[0];
            for (int64_t i = 0; i < r; ++i)
                perm1[i] = perm1[i + 1];
            perm1[r] = first;
            if (++count[r] <= r)
                break;
            count[r] = 0;
            ++r;
        }
    }
}

double
nativeSpectralnorm(NativeRun &run, int64_t n)
{
    auto evalA = [](int64_t i, int64_t j) {
        return 1.0 / ((i + j) * (i + j + 1) / 2.0 + i + 1.0);
    };
    std::vector<double> u(n, 1.0), v(n, 0.0), w(n, 0.0);
    for (int k = 0; k < 6; ++k) {
        for (int64_t i = 0; i < n; ++i) {
            double s = 0;
            for (int64_t j = 0; j < n; ++j) {
                run.step(3, true, true);
                s += evalA(i, j) * u[j];
            }
            w[i] = s;
        }
        for (int64_t i = 0; i < n; ++i) {
            double s = 0;
            for (int64_t j = 0; j < n; ++j) {
                run.step(3, true, true);
                s += evalA(j, i) * w[j];
            }
            v[i] = s;
        }
        u = v;
    }
    double vBv = 0, vv = 0;
    for (int64_t i = 0; i < n; ++i) {
        vBv += u[i] * v[i];
        vv += v[i] * v[i];
    }
    gLastOutput =
        std::to_string(int64_t(std::sqrt(vBv / vv) * 1000000)) + "\n";
    return run.seconds();
}

double
nativeThreadring(NativeRun &run, int64_t token)
{
    const int ring = 503;
    std::vector<int64_t> counts(ring, 0);
    int pos = 0;
    while (token > 0) {
        run.step(2, true);
        ++counts[pos];
        pos = (pos + 1) % ring;
        --token;
    }
    gLastOutput = std::to_string(pos + 1) + "\n";
    return run.seconds();
}

double
nativeFasta(NativeRun &run, int64_t n)
{
    const char alu[] = "GGCCGGGCGCGGTGGCTCACGCCTGTAATCCCAGCACTTTGG"
                       "GAGGCCGAGG";
    int64_t aluLen = int64_t(std::strlen(alu));
    int64_t lines = 0;
    // repeat_fasta analog.
    int64_t produced = 0, pos = 0;
    while (produced < n * 2) {
        int64_t take = std::min<int64_t>(60, n * 2 - produced);
        for (int64_t k = 0; k < take; ++k) {
            run.step(2, true);
            pos = (pos + 1) % aluLen;
        }
        produced += take;
        ++lines;
    }
    // random_fasta analog.
    int64_t seed = 42;
    int64_t line = 0;
    for (int64_t i = 0; i < n * 3; ++i) {
        run.step(4, false);
        seed = (seed * 3877 + 29573) % 139968;
        if (++line == 60) {
            line = 0;
            ++lines;
        }
    }
    if (line)
        ++lines;
    gLastOutput = std::to_string(lines) + "\n";
    return run.seconds();
}

} // namespace

double
runNative(const std::string &workload)
{
    int64_t scale = scaleOf(workload);
    if (scale <= 0)
        return -1;
    NativeRun run;
    if (workload == "binarytrees")
        return nativeBinarytrees(run, scale);
    if (workload == "mandelbrot")
        return nativeMandelbrot(run, scale);
    if (workload == "fannkuchredux")
        return nativeFannkuch(run, scale);
    if (workload == "spectralnorm")
        return nativeSpectralnorm(run, scale);
    if (workload == "threadring")
        return nativeThreadring(run, scale);
    if (workload == "fasta")
        return nativeFasta(run, scale);
    return -1;
}

const std::string &
lastNativeOutput()
{
    return gLastOutput;
}

} // namespace native
} // namespace xlvm
