/**
 * @file
 * MiniRkt s-expression reader.
 */

#ifndef XLVM_MINIRKT_READER_H
#define XLVM_MINIRKT_READER_H

#include <memory>
#include <string>
#include <vector>

namespace xlvm {
namespace minirkt {

/** One datum: atom or list. */
struct Sexp
{
    enum class Kind : uint8_t { Symbol, Int, Float, Str, List };

    Kind kind = Kind::List;
    std::string text;   ///< symbol name / string value
    int64_t intValue = 0;
    double floatValue = 0.0;
    std::vector<Sexp> items;

    bool isSym(const char *s) const
    {
        return kind == Kind::Symbol && text == s;
    }
};

/** Parse a sequence of top-level forms. */
std::vector<Sexp> readProgram(const std::string &source);

} // namespace minirkt
} // namespace xlvm

#endif // XLVM_MINIRKT_READER_H
