/**
 * @file
 * MiniRkt compiler: Scheme subset -> MiniPy bytecode.
 *
 * The Pycket analog: a second language front end on the same
 * meta-tracing framework. Named-let / define tail self-calls compile to
 * backward jumps, so Scheme loops hit exactly the same can_enter_jit
 * merge points as Python loops — the Scheme flavor of "write the
 * interpreter, get the JIT for free".
 *
 * Supported forms: define (variables and functions), let, named let,
 * lambda-free tail recursion, if, cond-free (use nested if), begin,
 * set!, quote '(), and / or, numeric tower (fixnum/flonum/bignum via
 * the shared object model), pairs (cons/car/cdr/null?), vectors
 * (mapped to lists), hash tables (mapped to dicts), strings, display.
 */

#ifndef XLVM_MINIRKT_COMPILER_H
#define XLVM_MINIRKT_COMPILER_H

#include <memory>

#include "minipy/code.h"
#include "obj/space.h"

namespace xlvm {
namespace minirkt {

/** Compile MiniRkt source into an executable MiniPy program. */
std::unique_ptr<minipy::Program> compileRkt(const std::string &source,
                                            obj::ObjSpace &space);

} // namespace minirkt
} // namespace xlvm

#endif // XLVM_MINIRKT_COMPILER_H
