#include "minirkt/reader.h"

#include <cctype>

#include "common/logging.h"

namespace xlvm {
namespace minirkt {

namespace {

class Reader
{
  public:
    explicit Reader(const std::string &src) : s(src) {}

    std::vector<Sexp>
    run()
    {
        std::vector<Sexp> out;
        skipWs();
        while (pos < s.size()) {
            out.push_back(readDatum());
            skipWs();
        }
        return out;
    }

  private:
    void
    skipWs()
    {
        while (pos < s.size()) {
            char c = s[pos];
            if (c == ';') {
                while (pos < s.size() && s[pos] != '\n')
                    ++pos;
            } else if (std::isspace(uint8_t(c))) {
                ++pos;
            } else {
                break;
            }
        }
    }

    Sexp
    readDatum()
    {
        skipWs();
        XLVM_ASSERT(pos < s.size(), "unexpected end of input");
        char c = s[pos];
        if (c == '(' || c == '[') {
            char close = c == '(' ? ')' : ']';
            ++pos;
            Sexp list;
            list.kind = Sexp::Kind::List;
            skipWs();
            while (pos < s.size() && s[pos] != close) {
                list.items.push_back(readDatum());
                skipWs();
            }
            XLVM_ASSERT(pos < s.size(), "missing '", close, "'");
            ++pos;
            return list;
        }
        if (c == '\'') {
            ++pos;
            Sexp quote;
            quote.kind = Sexp::Kind::List;
            Sexp q;
            q.kind = Sexp::Kind::Symbol;
            q.text = "quote";
            quote.items.push_back(std::move(q));
            quote.items.push_back(readDatum());
            return quote;
        }
        if (c == '"') {
            ++pos;
            Sexp str;
            str.kind = Sexp::Kind::Str;
            while (pos < s.size() && s[pos] != '"') {
                if (s[pos] == '\\' && pos + 1 < s.size()) {
                    ++pos;
                    str.text.push_back(s[pos] == 'n' ? '\n' : s[pos]);
                } else {
                    str.text.push_back(s[pos]);
                }
                ++pos;
            }
            XLVM_ASSERT(pos < s.size(), "unterminated string");
            ++pos;
            return str;
        }
        // Atom: number or symbol.
        size_t start = pos;
        while (pos < s.size() && !std::isspace(uint8_t(s[pos])) &&
               s[pos] != '(' && s[pos] != ')' && s[pos] != '[' &&
               s[pos] != ']' && s[pos] != ';')
            ++pos;
        std::string text = s.substr(start, pos - start);
        // Numeric?
        bool maybeNum = !text.empty() &&
                        (std::isdigit(uint8_t(text[0])) ||
                         ((text[0] == '-' || text[0] == '+') &&
                          text.size() > 1 &&
                          std::isdigit(uint8_t(text[1]))));
        if (maybeNum) {
            Sexp num;
            if (text.find('.') != std::string::npos ||
                text.find('e') != std::string::npos) {
                num.kind = Sexp::Kind::Float;
                num.floatValue = std::stod(text);
            } else {
                num.kind = Sexp::Kind::Int;
                num.intValue = int64_t(std::stoll(text));
            }
            return num;
        }
        Sexp sym;
        sym.kind = Sexp::Kind::Symbol;
        sym.text = std::move(text);
        return sym;
    }

    const std::string &s;
    size_t pos = 0;
};

} // namespace

std::vector<Sexp>
readProgram(const std::string &source)
{
    return Reader(source).run();
}

} // namespace minirkt
} // namespace xlvm
