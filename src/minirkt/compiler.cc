#include "minirkt/compiler.h"

#include <unordered_map>

#include "common/logging.h"
#include "minipy/interp.h"
#include "minirkt/reader.h"

namespace xlvm {
namespace minirkt {

using minipy::Code;
using minipy::Instr;
using minipy::Op;
using minipy::Program;

namespace {

/** Innermost enclosing tail-callable loop (named let or define). */
struct TailLoop
{
    std::string name;
    int labelPc = 0;
    std::vector<int32_t> paramLocals;
};

class FnCompiler
{
  public:
    FnCompiler(Program &prog, obj::ObjSpace &space, std::string name,
               bool is_module)
        : program(prog), space_(space), isModule(is_module)
    {
        code = std::make_unique<Code>();
        code->name = std::move(name);
    }

    Code *
    finish()
    {
        emit(Op::LoadConst, constIdx(space_.none()));
        emit(Op::ReturnValue);
        code->isLoopHeader.assign(code->instrs.size() + 1, false);
        for (const Instr &ins : code->instrs) {
            if (ins.op == Op::JumpBack)
                code->isLoopHeader[ins.arg] = true;
        }
        Code *raw = code.get();
        program.codes.push_back(std::move(code));
        return raw;
    }

    std::unique_ptr<Code> code;
    std::vector<std::pair<std::string, int32_t>> scope; ///< name -> local
    std::vector<TailLoop> tailLoops;
    Program &program;
    obj::ObjSpace &space_;
    bool isModule;
    int tempCounter = 0;

    // ---- emission -------------------------------------------------------

    int
    emit(Op op, int32_t arg = 0)
    {
        code->instrs.push_back(Instr{op, arg});
        return int(code->instrs.size() - 1);
    }

    int here() const { return int(code->instrs.size()); }
    void patch(int at, int32_t v) { code->instrs[at].arg = v; }

    int32_t
    constIdx(obj::W_Object *w)
    {
        for (size_t i = 0; i < code->consts.size(); ++i) {
            if (code->consts[i] == w)
                return int32_t(i);
        }
        code->consts.push_back(w);
        return int32_t(code->consts.size() - 1);
    }

    int32_t
    nameIdx(const std::string &n)
    {
        obj::W_Str *w = space_.intern(n);
        for (size_t i = 0; i < code->names.size(); ++i) {
            if (code->names[i] == w)
                return int32_t(i);
        }
        code->names.push_back(w);
        return int32_t(code->names.size() - 1);
    }

    int32_t
    newLocal(const std::string &n)
    {
        code->localNames.push_back(n + "$" +
                                   std::to_string(tempCounter++));
        int32_t idx = int32_t(code->localNames.size() - 1);
        scope.emplace_back(n, idx);
        return idx;
    }

    int32_t
    lookupLocal(const std::string &n) const
    {
        for (auto it = scope.rbegin(); it != scope.rend(); ++it) {
            if (it->first == n)
                return it->second;
        }
        return -1;
    }

    // ---- expression compilation ----------------------------------------

    void
    compileBody(const std::vector<Sexp> &forms, size_t from, bool tail)
    {
        XLVM_ASSERT(forms.size() > from, "empty body");
        for (size_t i = from; i < forms.size(); ++i) {
            bool last = i + 1 == forms.size();
            expr(forms[i], tail && last);
            if (!last)
                emit(Op::PopTop);
        }
    }

    void
    expr(const Sexp &e, bool tail)
    {
        switch (e.kind) {
          case Sexp::Kind::Int:
            emit(Op::LoadConst, constIdx(space_.newInt(e.intValue)));
            return;
          case Sexp::Kind::Float:
            emit(Op::LoadConst,
                 constIdx(space_.newFloat(e.floatValue)));
            return;
          case Sexp::Kind::Str:
            emit(Op::LoadConst, constIdx(space_.intern(e.text)));
            return;
          case Sexp::Kind::Symbol: {
            int32_t loc = lookupLocal(e.text);
            if (loc >= 0)
                emit(Op::LoadFast, loc);
            else
                emit(Op::LoadGlobal, nameIdx(e.text));
            return;
          }
          case Sexp::Kind::List:
            list(e, tail);
            return;
        }
    }

    void
    list(const Sexp &e, bool tail)
    {
        XLVM_ASSERT(!e.items.empty(), "empty application");
        const Sexp &head = e.items[0];
        if (head.kind == Sexp::Kind::Symbol) {
            const std::string &op = head.text;
            if (op == "define") {
                compileDefine(e);
                emit(Op::LoadConst, constIdx(space_.none()));
                return;
            }
            if (op == "let") {
                compileLet(e, tail);
                return;
            }
            if (op == "if") {
                XLVM_ASSERT(e.items.size() == 4,
                            "(if c t e) requires both branches");
                expr(e.items[1], false);
                int jf = emit(Op::PopJumpIfFalse, -1);
                expr(e.items[2], tail);
                int jend = emit(Op::Jump, -1);
                patch(jf, here());
                expr(e.items[3], tail);
                patch(jend, here());
                return;
            }
            if (op == "begin") {
                compileBody(e.items, 1, tail);
                return;
            }
            if (op == "set!") {
                expr(e.items[2], false);
                int32_t loc = lookupLocal(e.items[1].text);
                if (loc >= 0)
                    emit(Op::StoreFast, loc);
                else
                    emit(Op::StoreGlobal, nameIdx(e.items[1].text));
                emit(Op::LoadConst, constIdx(space_.none()));
                return;
            }
            if (op == "quote") {
                XLVM_ASSERT(e.items[1].kind == Sexp::Kind::List &&
                                e.items[1].items.empty(),
                            "only '() literals supported");
                emit(Op::LoadConst, constIdx(space_.none()));
                return;
            }
            if (op == "and" || op == "or") {
                expr(e.items[1], false);
                for (size_t i = 2; i < e.items.size(); ++i) {
                    int j = emit(op == "and" ? Op::JumpIfFalseOrPop
                                             : Op::JumpIfTrueOrPop,
                                 -1);
                    expr(e.items[i], false);
                    patch(j, here());
                }
                return;
            }
            if (compileBuiltin(e, op))
                return;

            // Tail self-call of the innermost matching loop?
            if (tail) {
                for (auto it = tailLoops.rbegin();
                     it != tailLoops.rend(); ++it) {
                    if (it->name == op) {
                        XLVM_ASSERT(e.items.size() - 1 ==
                                        it->paramLocals.size(),
                                    "tail-call arity mismatch for ", op);
                        for (size_t i = 1; i < e.items.size(); ++i)
                            expr(e.items[i], false);
                        for (size_t i = it->paramLocals.size(); i-- > 0;)
                            emit(Op::StoreFast, it->paramLocals[i]);
                        emit(Op::JumpBack, it->labelPc);
                        // Control never falls through; the loop's value
                        // comes from a non-recursive branch. Keep the
                        // stack shape consistent for the compiler.
                        emit(Op::LoadConst, constIdx(space_.none()));
                        return;
                    }
                }
            }
        }

        // Plain call.
        expr(head, false);
        for (size_t i = 1; i < e.items.size(); ++i)
            expr(e.items[i], false);
        emit(Op::CallFunction, int32_t(e.items.size() - 1));
    }

    /** Built-in operators; returns false if not one. */
    bool
    compileBuiltin(const Sexp &e, const std::string &op)
    {
        size_t n = e.items.size() - 1;
        auto binFold = [&](Op bop) {
            XLVM_ASSERT(n >= 2, op, " needs >= 2 args");
            expr(e.items[1], false);
            for (size_t i = 2; i <= n; ++i) {
                expr(e.items[i], false);
                emit(bop);
            }
        };
        auto cmp2 = [&](Op cop) {
            XLVM_ASSERT(n == 2, op, " needs 2 args");
            expr(e.items[1], false);
            expr(e.items[2], false);
            emit(cop);
        };

        if (op == "+") {
            binFold(Op::BinAdd);
            return true;
        }
        if (op == "-") {
            if (n == 1) {
                expr(e.items[1], false);
                emit(Op::UnaryNeg);
                return true;
            }
            binFold(Op::BinSub);
            return true;
        }
        if (op == "*") {
            binFold(Op::BinMul);
            return true;
        }
        if (op == "/") {
            binFold(Op::BinTrueDiv);
            return true;
        }
        if (op == "modulo") {
            cmp2(Op::BinMod);
            return true;
        }
        if (op == "quotient") {
            cmp2(Op::BinFloorDiv);
            return true;
        }
        if (op == "expt") {
            cmp2(Op::BinPow);
            return true;
        }
        if (op == "<") {
            cmp2(Op::CmpLt);
            return true;
        }
        if (op == "<=") {
            cmp2(Op::CmpLe);
            return true;
        }
        if (op == "=") {
            cmp2(Op::CmpEq);
            return true;
        }
        if (op == ">") {
            cmp2(Op::CmpGt);
            return true;
        }
        if (op == ">=") {
            cmp2(Op::CmpGe);
            return true;
        }
        if (op == "eq?") {
            cmp2(Op::CmpIs);
            return true;
        }
        if (op == "not") {
            expr(e.items[1], false);
            emit(Op::UnaryNot);
            return true;
        }
        if (op == "null?") {
            expr(e.items[1], false);
            emit(Op::LoadConst, constIdx(space_.none()));
            emit(Op::CmpIs);
            return true;
        }
        if (op == "arithmetic-shift") {
            cmp2(Op::BinLshift);
            return true;
        }
        if (op == "bitwise-and") {
            cmp2(Op::BinAnd);
            return true;
        }
        if (op == "bitwise-ior") {
            cmp2(Op::BinOr);
            return true;
        }
        if (op == "bitwise-not") {
            // ~x == -x - 1
            emit(Op::LoadConst, constIdx(space_.newInt(0)));
            expr(e.items[1], false);
            emit(Op::BinSub);
            emit(Op::LoadConst, constIdx(space_.newInt(1)));
            emit(Op::BinSub);
            return true;
        }
        if (op == "vector") {
            for (size_t i = 1; i <= n; ++i)
                expr(e.items[i], false);
            emit(Op::BuildList, int32_t(n));
            return true;
        }
        if (op == "vector-ref") {
            expr(e.items[1], false);
            expr(e.items[2], false);
            emit(Op::BinSubscr);
            return true;
        }
        if (op == "vector-set!") {
            // StoreSubscr pops idx, obj, value.
            expr(e.items[3], false);
            expr(e.items[1], false);
            expr(e.items[2], false);
            emit(Op::StoreSubscr);
            emit(Op::LoadConst, constIdx(space_.none()));
            return true;
        }
        if (op == "hash-ref") {
            // h.get(k, default)
            expr(e.items[1], false);
            emit(Op::LoadAttr, nameIdx("get"));
            expr(e.items[2], false);
            expr(e.items[3], false);
            emit(Op::CallFunction, 2);
            return true;
        }
        if (op == "hash-set!") {
            expr(e.items[3], false);
            expr(e.items[1], false);
            expr(e.items[2], false);
            emit(Op::StoreSubscr);
            emit(Op::LoadConst, constIdx(space_.none()));
            return true;
        }
        if (op == "hash-count" || op == "vector-length" ||
            op == "string-length") {
            emit(Op::LoadGlobal, nameIdx("len"));
            expr(e.items[1], false);
            emit(Op::CallFunction, 1);
            return true;
        }
        if (op == "string-ref") {
            expr(e.items[1], false);
            expr(e.items[2], false);
            emit(Op::BinSubscr);
            return true;
        }
        if (op == "char->integer") {
            emit(Op::LoadGlobal, nameIdx("ord"));
            expr(e.items[1], false);
            emit(Op::CallFunction, 1);
            return true;
        }
        if (op == "string-append") {
            binFold(Op::BinAdd);
            return true;
        }
        if (op == "number->string") {
            emit(Op::LoadGlobal, nameIdx("str"));
            expr(e.items[1], false);
            emit(Op::CallFunction, 1);
            return true;
        }
        if (op == "floor") {
            emit(Op::LoadGlobal, nameIdx("floor"));
            expr(e.items[1], false);
            emit(Op::CallFunction, 1);
            return true;
        }
        if (op == "inexact->exact") {
            emit(Op::LoadGlobal, nameIdx("int"));
            expr(e.items[1], false);
            emit(Op::CallFunction, 1);
            return true;
        }
        if (op == "sqrt") {
            emit(Op::LoadGlobal, nameIdx("sqrt"));
            expr(e.items[1], false);
            emit(Op::CallFunction, 1);
            return true;
        }
        if (op == "make-vector") {
            emit(Op::LoadGlobal, nameIdx("make_vector"));
            expr(e.items[1], false);
            if (n >= 2)
                expr(e.items[2], false);
            else
                emit(Op::LoadConst, constIdx(space_.newInt(0)));
            emit(Op::CallFunction, 2);
            return true;
        }
        if (op == "make-hash") {
            emit(Op::LoadGlobal, nameIdx("dict"));
            emit(Op::CallFunction, 0);
            return true;
        }
        if (op == "cons") {
            emit(Op::LoadGlobal, nameIdx("cons"));
            expr(e.items[1], false);
            expr(e.items[2], false);
            emit(Op::CallFunction, 2);
            return true;
        }
        if (op == "car" || op == "cdr") {
            emit(Op::LoadGlobal, nameIdx(op));
            expr(e.items[1], false);
            emit(Op::CallFunction, 1);
            return true;
        }
        if (op == "display") {
            emit(Op::LoadGlobal, nameIdx("display"));
            expr(e.items[1], false);
            emit(Op::CallFunction, 1);
            return true;
        }
        if (op == "newline") {
            emit(Op::LoadGlobal, nameIdx("newline"));
            emit(Op::CallFunction, 0);
            return true;
        }
        return false;
    }

    void
    compileLet(const Sexp &e, bool tail)
    {
        size_t bindIdx = 1;
        bool named = e.items[1].kind == Sexp::Kind::Symbol;
        if (named)
            bindIdx = 2;
        const Sexp &binds = e.items[bindIdx];
        XLVM_ASSERT(binds.kind == Sexp::Kind::List, "bad let bindings");

        // Evaluate inits left-to-right, then bind.
        for (const Sexp &b : binds.items)
            expr(b.items[1], false);
        size_t scopeMark = scope.size();
        std::vector<int32_t> locals;
        for (const Sexp &b : binds.items)
            locals.push_back(newLocal(b.items[0].text));
        for (size_t i = binds.items.size(); i-- > 0;)
            emit(Op::StoreFast, locals[i]);

        if (named) {
            TailLoop loop;
            loop.name = e.items[1].text;
            loop.labelPc = here();
            loop.paramLocals = locals;
            tailLoops.push_back(loop);
            compileBody(e.items, bindIdx + 1, true);
            tailLoops.pop_back();
        } else {
            compileBody(e.items, bindIdx + 1, tail);
        }
        scope.resize(scopeMark);
    }

    void
    compileDefine(const Sexp &e)
    {
        XLVM_ASSERT(isModule, "define only at top level");
        const Sexp &target = e.items[1];
        if (target.kind == Sexp::Kind::Symbol) {
            // (define name expr)
            expr(e.items[2], false);
            emit(Op::StoreGlobal, nameIdx(target.text));
            return;
        }
        // (define (f a b) body...)
        XLVM_ASSERT(target.kind == Sexp::Kind::List &&
                        !target.items.empty(),
                    "bad define");
        std::string fname = target.items[0].text;
        FnCompiler sub(program, space_, fname, /*module=*/false);
        TailLoop self;
        self.name = fname;
        for (size_t i = 1; i < target.items.size(); ++i) {
            int32_t loc = sub.newLocal(target.items[i].text);
            self.paramLocals.push_back(loc);
        }
        sub.code->numParams = uint32_t(target.items.size() - 1);
        // Function entry is a tail-recursion merge point.
        self.labelPc = 0;
        sub.tailLoops.push_back(self);
        // Body: last expression is the return value.
        for (size_t i = 2; i < e.items.size(); ++i) {
            bool last = i + 1 == e.items.size();
            sub.expr(e.items[i], last);
            if (!last)
                sub.emit(Op::PopTop);
        }
        sub.emit(Op::ReturnValue);
        sub.code->isLoopHeader.assign(sub.code->instrs.size() + 1,
                                      false);
        for (const Instr &ins : sub.code->instrs) {
            if (ins.op == Op::JumpBack)
                sub.code->isLoopHeader[ins.arg] = true;
        }
        Code *raw = sub.code.get();
        program.codes.push_back(std::move(sub.code));
        int32_t codeIdx = -1;
        for (size_t i = 0; i < program.codes.size(); ++i) {
            if (program.codes[i].get() == raw)
                codeIdx = int32_t(i);
        }
        emit(Op::MakeFunction, codeIdx);
        emit(Op::StoreGlobal, nameIdx(fname));
    }
};

} // namespace

std::unique_ptr<Program>
compileRkt(const std::string &source, obj::ObjSpace &space)
{
    std::vector<Sexp> forms = readProgram(source);
    auto prog = std::make_unique<Program>();
    FnCompiler top(*prog, space, "<module>", /*module=*/true);
    for (const Sexp &f : forms) {
        top.expr(f, false);
        top.emit(Op::PopTop);
    }
    prog->module = top.finish();
    return prog;
}

} // namespace minirkt
} // namespace xlvm
