/**
 * @file
 * Stress workloads: adversarial inputs for the fault-containment
 * subsystem. These are deliberately NOT part of pypySuite()/clbgSuite()
 * — they exist to provoke pathologies (deopt storms, guard churn) that
 * the paper's benchmark miniatures are tuned to avoid, so they are
 * resolvable through findWorkload() (tests, chaos CI, EXPERIMENTS.md
 * sweeps) without perturbing the figure sweeps or the golden sets.
 */

#include "workloads/suites.h"

namespace xlvm {
namespace workloads {

std::vector<Workload>
stressPart()
{
    std::vector<Workload> out;

    // Deopt-storm generator. Phase 1 ({hot} outer iterations) runs the
    // inner loop with flag=1, so it traces and compiles with a guard on
    // the hot if-branch. Phase 2 flips flag=0: the loop still iterates
    // (trace entry happens at the backward jump, so a loop that stops
    // iterating would simply never be entered), but every entry now
    // fails the flag guard before completing a single back edge — a
    // zero-progress entry. Without storm blacklisting the VM pays
    // trace-entry + deopt overhead on every inner iteration for the
    // rest of the run; with it, the trace is demoted to the interpreter
    // after stormThreshold consecutive zero-progress entries and
    // re-armed on an exponential cooldown. The wide tuples are
    // deliberate tracing poison (BuildTuple beyond kMaxOpArgs aborts
    // the recorder): the one in the outer body keeps the OUTER loop
    // interpreted, so the storm stays visible at the interpreter's
    // merge point instead of being absorbed into an outer compiled
    // trace; the one on the cold if-branch makes any bridge recorded
    // from the storming guard abort, so no bridge rescues the churn.
    // The final accumulator only depends on phase 1, so the printed
    // line is invariant under scale and every containment policy.
    out.push_back({
        "guard_churn", "stress",
        R"PY(
def kernel(reps, hot):
    acc = 0
    r = 0
    while r < reps:
        poison = (r, r, r, r, r)
        if r < hot:
            flag = 1
        else:
            flag = 0
        j = 0
        while j < 64:
            if flag:
                acc = acc + j
            else:
                trap = (j, j, j, j, j)
            j = j + 1
        r = r + 1
    return acc

print(kernel({N}, 400))
)PY",
        "", // no MiniRkt translation
        "adversarial deopt storm: a compiled inner loop whose trip "
        "count collapses to zero, so every entry exits through its "
        "first guard with no progress (tests storm blacklisting)",
        5000,
        "806400",
    });

    // Trace-cache pressure generator: eight independent hot loops run
    // one after another, each abandoned once it finishes. Under a
    // small --max-traces cap, registering a later loop must evict an
    // earlier, now-cold root (no cross-trace references pin them), so
    // the cache stays at the cap while the program keeps compiling its
    // current hot code.
    out.push_back({
        "loop_parade", "stress",
        R"PY(
def parade(n):
    total = 0
    a = 0
    while a < n:
        total = total + a
        a = a + 1
    b = 0
    while b < n:
        total = total + 2 * b
        b = b + 1
    c = 0
    while c < n:
        total = total + 3 * c
        c = c + 1
    d = 0
    while d < n:
        total = total + 4 * d
        d = d + 1
    e = 0
    while e < n:
        total = total + 5 * e
        e = e + 1
    f = 0
    while f < n:
        total = total + 6 * f
        f = f + 1
    g = 0
    while g < n:
        total = total + 7 * g
        g = g + 1
    h = 0
    while h < n:
        total = total + 8 * h
        h = h + 1
    return total

print(parade({N}))
)PY",
        "", // no MiniRkt translation
        "trace-cache pressure: sequential independent hot loops, each "
        "cold by the time the next compiles (tests --max-traces "
        "eviction)",
        400,
        "2872800",
    });

    return out;
}

} // namespace workloads
} // namespace xlvm
