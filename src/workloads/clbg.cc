/**
 * @file
 * CLBG (Computer Language Benchmarks Game) workloads in MiniPy.
 * MiniRkt translations live in clbg_rkt.cc and are attached by
 * workloads.cc. Benchmarks shared with the PyPy suite (fannkuchredux,
 * nbody, pidigits, spectralnorm, meteor) reuse those sources.
 */

#include "workloads/suites.h"

namespace xlvm {
namespace workloads {

std::vector<Workload>
clbgPart()
{
    std::vector<Workload> out;

    out.push_back({
        "binarytrees", "clbg",
        R"PY(
class Tree:
    def __init__(self, left, right):
        self.left = left
        self.right = right

def make(depth):
    if depth == 0:
        return Tree(None, None)
    return Tree(make(depth - 1), make(depth - 1))

def check(t):
    if t.left is None:
        return 1
    return 1 + check(t.left) + check(t.right)

maxdepth = {N}
stretch = make(maxdepth + 1)
total = check(stretch)
longlived = make(maxdepth)
depth = 4
while depth <= maxdepth:
    iters = 1 << (maxdepth - depth + 4)
    i = 0
    while i < iters:
        total += check(make(depth))
        i += 1
    depth += 2
total += check(longlived)
print(total)
)PY",
        "",
        "binarytrees: allocation/GC stress; large GC phase share "
        "(Fig 4: 'large usage of GC in binarytrees')",
        6, ""});

    out.push_back({
        "fasta", "clbg",
        R"PY(
alu = "GGCCGGGCGCGGTGGCTCACGCCTGTAATCCCAGCACTTTGGGAGGCCGAGG"
codes = "acgtBDHKMNRSVWY"

def repeat_fasta(src, n):
    out = []
    pos = 0
    produced = 0
    while produced < n:
        take = 60
        if n - produced < 60:
            take = n - produced
        chunk = []
        k = 0
        while k < take:
            chunk.append(src[(pos + k) % len(src)])
            k += 1
        out.append("".join(chunk))
        pos = (pos + take) % len(src)
        produced += take
    return out

def random_fasta(n, seed):
    out = []
    produced = 0
    line = []
    while produced < n:
        seed = (seed * 3877 + 29573) % 139968
        idx = seed * len(codes) // 139968
        line.append(codes[idx])
        produced += 1
        if len(line) == 60:
            out.append("".join(line))
            line = []
    if len(line) > 0:
        out.append("".join(line))
    return out

n = {N}
a = repeat_fasta(alu, n * 2)
b = random_fasta(n * 3, 42)
print(len(a) + len(b))
)PY",
        "",
        "fasta: sequence generation; JIT-phase dominated (Fig 4 'large "
        "usage of the JIT in fasta'), string building",
        900, ""});

    out.push_back({
        "knucleotide", "clbg",
        R"PY(
def count_kmers(seq, k):
    counts = {}
    i = 0
    stop = len(seq) - k + 1
    while i < stop:
        kmer = seq[i:i + k]
        counts[kmer] = counts.get(kmer, 0) + 1
        i += 1
    return counts

parts = []
seed = 7
i = 0
while i < {N}:
    seed = (seed * 3877 + 29573) % 139968
    parts.append("acgt"[seed % 4])
    i += 1
seq = "".join(parts)

total = 0
for k in [1, 2, 3, 4]:
    counts = count_kmers(seq, k)
    best = 0
    for kmer in counts:
        c = counts[kmer]
        if c > best:
            best = c
    total += best + len(counts)
print(total)
)PY",
        "",
        "knucleotide: k-mer counting; string slicing + hash-dict "
        "updates (dict-bound, modest JIT benefit as in Table II)",
        2600, ""});

    out.push_back({
        "mandelbrot", "clbg",
        R"PY(
size = {N}
bits = 0
total = 0
y = 0
while y < size:
    ci = 2.0 * y / size - 1.0
    x = 0
    while x < size:
        cr = 2.0 * x / size - 1.5
        zr = 0.0
        zi = 0.0
        i = 0
        inside = True
        while i < 50:
            zr2 = zr * zr
            zi2 = zi * zi
            if zr2 + zi2 > 4.0:
                inside = False
                break
            zi = 2.0 * zr * zi + ci
            zr = zr2 - zi2 + cr
            i += 1
        if inside:
            total += 1
        x += 1
    y += 1
print(total)
)PY",
        "",
        "mandelbrot: escape-time fractal; pure float loops, huge JIT "
        "speedup (Table II PyPy 29x over CPython-analog)",
        48, ""});

    out.push_back({
        "revcomp", "clbg",
        R"PY(
table = []
i = 0
while i < 256:
    table.append(chr(i))
    i += 1
pairs = "ATCGGCTAUAMKRYWWSSYRKMVBHDDHBVNN"
i = 0
while i < len(pairs):
    table[ord(pairs[i])] = pairs[i + 1]
    table[ord(pairs[i].lower())] = pairs[i + 1]
    i += 2
trans = "".join(table)

parts = []
seed = 11
i = 0
while i < {N}:
    seed = (seed * 3877 + 29573) % 139968
    parts.append("ACGTacgt"[seed % 8])
    i += 1
seq = "".join(parts)

rev = []
i = len(seq) - 1
while i >= 0:
    rev.append(seq[i])
    i -= 1
out = "".join(rev)
count = 0
i = 0
while i < len(out):
    if trans[ord(out[i])] == "T":
        count += 1
    i += 1
print(count)
)PY",
        "",
        "revcomp: reverse complement; translate-table + per-char "
        "scanning (interp-heavy on PyPy per Fig 4, Pycket compiles "
        "quickly)",
        2400, ""});

    out.push_back({
        "regexdna", "clbg",
        R"PY(
patterns = ["agggtaaa", "cgggtaaa", "aggggaaa", "agggtttt",
            "ttaccct", "tttaccc"]

parts = []
seed = 5
i = 0
while i < {N}:
    seed = (seed * 3877 + 29573) % 139968
    parts.append("acgt"[seed % 4])
    i += 1
seq = "".join(parts)

total = 0
for pat in patterns:
    pos = 0
    while True:
        hit = seq.find(pat, pos)
        if hit < 0:
            break
        total += 1
        pos = hit + 1
    total += seq.count(pat[0:4])
print(total)
)PY",
        "",
        "regexdna: pattern scanning; modeled with the runtime's string-"
        "search AOT ops (rsre analog), per DESIGN.md substitution",
        2600, ""});

    out.push_back({
        "chameneosredux", "clbg",
        R"PY(
def complement(c1, c2):
    if c1 == c2:
        return c1
    if c1 == 0:
        if c2 == 1:
            return 2
        return 1
    if c1 == 1:
        if c2 == 0:
            return 2
        return 0
    if c2 == 0:
        return 1
    return 0

colors = [0, 1, 2, 1, 0, 2, 2, 1]
meetings = 0
counts = []
i = 0
while i < len(colors):
    counts.append(0)
    i += 1
n = {N}
a = 0
while meetings < n:
    b = (a + 1 + meetings % (len(colors) - 1)) % len(colors)
    if a == b:
        b = (b + 1) % len(colors)
    newc = complement(colors[a], colors[b])
    colors[a] = newc
    colors[b] = newc
    counts[a] += 1
    counts[b] += 1
    meetings += 1
    a = (a + 1) % len(colors)
total = 0
i = 0
while i < len(counts):
    total += counts[i]
    i += 1
print(total)
)PY",
        "",
        "chameneosredux: single-threaded meeting simulation (paper "
        "restricts to one hardware thread); branch-heavy int code",
        4000, ""});

    out.push_back({
        "threadring", "clbg",
        R"PY(
ring = 503
token = {N}
counts = []
i = 0
while i < ring:
    counts.append(0)
    i += 1
pos = 0
while token > 0:
    counts[pos] += 1
    pos = (pos + 1) % ring
    token -= 1
print(pos + 1)
)PY",
        "",
        "threadring: cooperative token passing in one thread (GIL "
        "restriction per Section III); pure dispatch overhead",
        40000, ""});

    return out;
}

} // namespace workloads
} // namespace xlvm
