/**
 * @file
 * MiniRkt (Scheme-subset) translations of the CLBG workloads, used for
 * the Racket / Pycket columns of Table II and Figure 4.
 */

#include "workloads/suites.h"

namespace xlvm {
namespace workloads {

namespace {

struct RktSource
{
    const char *name;
    const char *source;
};

const RktSource kRktSources[] = {
    {"binarytrees", R"RKT(
(define (make-tree depth)
  (if (= depth 0)
      (cons '() '())
      (cons (make-tree (- depth 1)) (make-tree (- depth 1)))))
(define (check t)
  (if (null? (car t))
      1
      (+ 1 (check (car t)) (check (cdr t)))))
(define maxdepth {N})
(define total (check (make-tree (+ maxdepth 1))))
(define longlived (make-tree maxdepth))
(let loop ((depth 4))
  (if (<= depth maxdepth)
      (begin
        (let iter ((i 0) (n (arithmetic-shift 1 (+ (- maxdepth depth) 4))))
          (if (< i n)
              (begin
                (set! total (+ total (check (make-tree depth))))
                (iter (+ i 1) n))
              0))
        (loop (+ depth 2)))
      0))
(set! total (+ total (check longlived)))
(display total)
(newline)
)RKT"},

    {"fasta", R"RKT(
(define codes "acgtBDHKMNRSVWY")
(define (random-line n seed acc)
  (if (= n 0)
      (cons acc seed)
      (let ((s2 (modulo (+ (* seed 3877) 29573) 139968)))
        (random-line (- n 1) s2
                     (+ acc (char->integer
                             (string-ref codes
                                         (quotient (* s2 15) 139968))))))))
(define n {N})
(define total 0)
(let loop ((produced 0) (seed 42))
  (if (< produced n)
      (let ((r (random-line 60 seed 0)))
        (set! total (+ total (car r)))
        (loop (+ produced 60) (cdr r)))
      0))
(display total)
(newline)
)RKT"},

    {"mandelbrot", R"RKT(
(define size {N})
(define total 0)
(let yloop ((y 0))
  (if (< y size)
      (begin
        (let xloop ((x 0))
          (if (< x size)
              (let ((ci (- (/ (* 2.0 y) size) 1.0))
                    (cr (- (/ (* 2.0 x) size) 1.5)))
                (let iter ((zr 0.0) (zi 0.0) (i 0))
                  (if (< i 50)
                      (let ((zr2 (* zr zr)) (zi2 (* zi zi)))
                        (if (> (+ zr2 zi2) 4.0)
                            0
                            (iter (+ (- zr2 zi2) cr)
                                  (+ (* 2.0 (* zr zi)) ci)
                                  (+ i 1))))
                      (set! total (+ total 1))))
                (xloop (+ x 1)))
              0))
        (yloop (+ y 1)))
      0))
(display total)
(newline)
)RKT"},

    {"nbody", R"RKT(
(define xs (vector 0.0 4.84 8.34 12.89 15.37))
(define ys (vector 0.0 -1.16 4.12 -15.11 -25.91))
(define vxs (vector 0.0 0.16 -0.27 0.29 0.26))
(define vys (vector 0.0 0.77 0.49 0.23 0.15))
(define ms (vector 39.47 0.037 0.011 0.0017 0.0002))
(define dt 0.01)
(define (advance steps)
  (let sloop ((s 0))
    (if (< s steps)
        (begin
          (let iloop ((i 0))
            (if (< i 5)
                (begin
                  (let jloop ((j (+ i 1)))
                    (if (< j 5)
                        (let ((dx (- (vector-ref xs i) (vector-ref xs j)))
                              (dy (- (vector-ref ys i) (vector-ref ys j))))
                          (let ((d2 (+ (* dx dx) (* dy dy))))
                            (let ((mag (/ dt (* d2 (sqrt d2)))))
                              (vector-set! vxs i
                                (- (vector-ref vxs i)
                                   (* dx (* (vector-ref ms j) mag))))
                              (vector-set! vys i
                                (- (vector-ref vys i)
                                   (* dy (* (vector-ref ms j) mag))))
                              (vector-set! vxs j
                                (+ (vector-ref vxs j)
                                   (* dx (* (vector-ref ms i) mag))))
                              (vector-set! vys j
                                (+ (vector-ref vys j)
                                   (* dy (* (vector-ref ms i) mag))))
                              (jloop (+ j 1)))))
                        0))
                  (vector-set! xs i (+ (vector-ref xs i)
                                       (* dt (vector-ref vxs i))))
                  (vector-set! ys i (+ (vector-ref ys i)
                                       (* dt (vector-ref vys i))))
                  (iloop (+ i 1)))
                0))
          (sloop (+ s 1)))
        0)))
(advance {N})
(display (inexact->exact
          (floor (* 1000000 (+ (vector-ref xs 1) (vector-ref ys 2))))))
(newline)
)RKT"},

    {"spectralnorm", R"RKT(
(define n {N})
(define (eval-a i j)
  (/ 1.0 (+ (+ (/ (* (+ i j) (+ (+ i j) 1)) 2.0) i) 1.0)))
(define (times-u u out transpose)
  (let iloop ((i 0))
    (if (< i n)
        (begin
          (let jloop ((j 0) (s 0.0))
            (if (< j n)
                (jloop (+ j 1)
                       (+ s (* (if (= transpose 0)
                                   (eval-a i j)
                                   (eval-a j i))
                               (vector-ref u j))))
                (vector-set! out i s)))
          (iloop (+ i 1)))
        0)))
(define u (make-vector n 1.0))
(define v (make-vector n 0.0))
(define w (make-vector n 0.0))
(let kloop ((k 0))
  (if (< k 6)
      (begin
        (times-u u w 0)
        (times-u w v 1)
        (let cloop2 ((i 0))
          (if (< i n)
              (begin
                (vector-set! u i (vector-ref v i))
                (cloop2 (+ i 1)))
              0))
        (kloop (+ k 1)))
      0))
(define vbv 0.0)
(define vv 0.0)
(let floop ((i 0))
  (if (< i n)
      (begin
        (set! vbv (+ vbv (* (vector-ref u i) (vector-ref v i))))
        (set! vv (+ vv (* (vector-ref v i) (vector-ref v i))))
        (floop (+ i 1)))
      0))
(display (inexact->exact (floor (* 1000000 (sqrt (/ vbv vv))))))
(newline)
)RKT"},

    {"fannkuchredux", R"RKT(
(define n {N})
(define perm1 (make-vector n 0))
(let init ((i 0))
  (if (< i n) (begin (vector-set! perm1 i i) (init (+ i 1))) 0))
(define count (make-vector n 0))
(define maxflips 0)
(define checksum 0)
(define sign 1)
(define perm (make-vector n 0))
(define (copy-perm)
  (let loop ((i 0))
    (if (< i n)
        (begin (vector-set! perm i (vector-ref perm1 i))
               (loop (+ i 1)))
        0)))
(define (reverse-prefix k)
  (let loop ((lo 0) (hi k))
    (if (< lo hi)
        (let ((tmp (vector-ref perm lo)))
          (vector-set! perm lo (vector-ref perm hi))
          (vector-set! perm hi tmp)
          (loop (+ lo 1) (- hi 1)))
        0)))
(define (flip-count)
  (copy-perm)
  (let loop ((flips 0))
    (let ((k (vector-ref perm 0)))
      (if (= k 0)
          flips
          (begin (reverse-prefix k) (loop (+ flips 1)))))))
(define done 0)
(let outer ()
  (if (= done 0)
      (begin
        (if (> (vector-ref perm1 0) 0)
            (let ((flips (flip-count)))
              (if (> flips maxflips) (set! maxflips flips) 0)
              (set! checksum (+ checksum (* sign flips))))
            0)
        (set! sign (- 0 sign))
        (let rot ((r 1))
          (if (= r n)
              (set! done 1)
              (let ((first (vector-ref perm1 0)))
                (let shift ((i 0))
                  (if (< i r)
                      (begin
                        (vector-set! perm1 i (vector-ref perm1 (+ i 1)))
                        (shift (+ i 1)))
                      0))
                (vector-set! perm1 r first)
                (vector-set! count r (+ (vector-ref count r) 1))
                (if (<= (vector-ref count r) r)
                    0
                    (begin (vector-set! count r 0) (rot (+ r 1)))))))
        (outer))
      0))
(display (+ (* maxflips 100000) (modulo checksum 100000)))
(newline)
)RKT"},

    {"pidigits", R"RKT(
(define (pi-digits n)
  (let loop ((q 1) (r 0) (t 1) (k 1) (digits 0) (out 0))
    (if (< digits n)
        (if (< (- (+ (* 4 q) r) t) (* (quotient (+ (+ (* 2 q) r) 1) t) t))
            (let ((d (quotient (+ (* 3 q) r) t)))
              (loop (* 10 q)
                    (* 10 (- r (* d t)))
                    t k (+ digits 1)
                    (modulo (+ (* out 10) d) 1000000007)))
            (loop (* q k)
                  (* (+ (* 2 q) r) (+ (* 2 k) 1))
                  (* t (+ (* 2 k) 1))
                  (+ k 1) digits out))
        out)))
(display (pi-digits {N}))
(newline)
)RKT"},

    {"chameneosredux", R"RKT(
(define (complement c1 c2)
  (if (= c1 c2) c1
      (if (= c1 0) (if (= c2 1) 2 1)
          (if (= c1 1) (if (= c2 0) 2 0)
              (if (= c2 0) 1 0)))))
(define colors (vector 0 1 2 1 0 2 2 1))
(define counts (make-vector 8 0))
(define n {N})
(let loop ((meetings 0) (a 0))
  (if (< meetings n)
      (let ((b0 (modulo (+ (+ a 1) (modulo meetings 7)) 8)))
        (let ((b (if (= a b0) (modulo (+ b0 1) 8) b0)))
          (let ((newc (complement (vector-ref colors a)
                                  (vector-ref colors b))))
            (vector-set! colors a newc)
            (vector-set! colors b newc)
            (vector-set! counts a (+ (vector-ref counts a) 1))
            (vector-set! counts b (+ (vector-ref counts b) 1))
            (loop (+ meetings 1) (modulo (+ a 1) 8)))))
      0))
(define total 0)
(let sum ((i 0))
  (if (< i 8)
      (begin (set! total (+ total (vector-ref counts i)))
             (sum (+ i 1)))
      0))
(display total)
(newline)
)RKT"},

    {"threadring", R"RKT(
(define ring 503)
(define counts (make-vector ring 0))
(let loop ((token {N}) (pos 0))
  (if (> token 0)
      (begin
        (vector-set! counts pos (+ (vector-ref counts pos) 1))
        (loop (- token 1) (modulo (+ pos 1) ring)))
      (begin (display (+ pos 1)) (newline))))
)RKT"},

    {"knucleotide", R"RKT(
(define h (make-hash))
(define n {N})
(define seq (make-vector n 0))
(let gen ((i 0) (seed 7))
  (if (< i n)
      (let ((s2 (modulo (+ (* seed 3877) 29573) 139968)))
        (vector-set! seq i (modulo s2 4))
        (gen (+ i 1) s2))
      0))
(define total 0)
(let kloop ((k 1))
  (if (<= k 4)
      (begin
        (let scan ((i 0))
          (if (<= i (- n k))
              (let ((key (let build ((j 0) (acc 0))
                           (if (< j k)
                               (build (+ j 1)
                                      (+ (* acc 4)
                                         (vector-ref seq (+ i j))))
                               acc))))
                (hash-set! h key (+ (hash-ref h key 0) 1))
                (scan (+ i 1)))
              0))
        (kloop (+ k 1)))
      0))
(display (hash-count h))
(newline)
)RKT"},

    {"revcomp", R"RKT(
(define n {N})
(define seq (make-vector n 0))
(let gen ((i 0) (seed 11))
  (if (< i n)
      (let ((s2 (modulo (+ (* seed 3877) 29573) 139968)))
        (vector-set! seq i (modulo s2 4))
        (gen (+ i 1) s2))
      0))
(define count 0)
(let loop ((i (- n 1)))
  (if (>= i 0)
      (begin
        (if (= (- 3 (vector-ref seq i)) 3) (set! count (+ count 1)) 0)
        (loop (- i 1)))
      0))
(display count)
(newline)
)RKT"},

    {"meteor", R"RKT(
(define masks (make-vector 40 0))
(let init ((i 0))
  (if (< i 40)
      (begin
        (let bits ((k 0) (m 0))
          (if (< k 6)
              (bits (+ k 1)
                    (bitwise-ior m
                                 (arithmetic-shift
                                  1 (modulo (+ (* i 5) (* k 3)) 50))))
              (vector-set! masks i m)))
        (init (+ i 1)))
      0))
(define free (- (arithmetic-shift 1 50) 1))
(define solutions 0)
(let rloop ((r 0))
  (if (< r {N})
      (begin
        (let iloop ((i 0))
          (if (< i 40)
              (let ((m (vector-ref masks i)))
                (if (= (bitwise-and m free) m)
                    (let ((remaining (bitwise-and free (bitwise-not m))))
                      (let jloop ((j (+ i 1)))
                        (if (< j 40)
                            (begin
                              (if (= (bitwise-and (vector-ref masks j)
                                                  remaining)
                                     (vector-ref masks j))
                                  (set! solutions (+ solutions 1))
                                  0)
                              (jloop (+ j 1)))
                            0)))
                    0)
                (iloop (+ i 1)))
              0))
        (rloop (+ r 1)))
      0))
(display solutions)
(newline)
)RKT"},

    {"regexdna", R"RKT(
(define n {N})
(define seq (make-vector n 0))
(let gen ((i 0) (seed 5))
  (if (< i n)
      (let ((s2 (modulo (+ (* seed 3877) 29573) 139968)))
        (vector-set! seq i (modulo s2 4))
        (gen (+ i 1) s2))
      0))
(define pat (vector 0 2 2 2 3 0 0 0))
(define total 0)
(let scan ((i 0))
  (if (<= i (- n 8))
      (begin
        (let match ((j 0) (ok 1))
          (if (< j 8)
              (if (= (vector-ref seq (+ i j)) (vector-ref pat j))
                  (match (+ j 1) ok)
                  0)
              (set! total (+ total 1))))
        (scan (+ i 1)))
      0))
(display total)
(newline)
)RKT"},
};

} // namespace

void
attachRktSources(std::vector<Workload> &clbg)
{
    for (Workload &w : clbg) {
        for (const RktSource &r : kRktSources) {
            if (w.name == r.name) {
                w.rktSource = r.source;
                break;
            }
        }
    }
}

} // namespace workloads
} // namespace xlvm
