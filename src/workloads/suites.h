/**
 * @file
 * Internal: per-part suite constructors assembled by workloads.cc.
 */

#ifndef XLVM_WORKLOADS_SUITES_H
#define XLVM_WORKLOADS_SUITES_H

#include "workloads/workloads.h"

namespace xlvm {
namespace workloads {

std::vector<Workload> pypySuiteA();
std::vector<Workload> pypySuiteB();
std::vector<Workload> pypySuiteC();
std::vector<Workload> clbgPart();
std::vector<Workload> stressPart();
void attachRktSources(std::vector<Workload> &clbg);

} // namespace workloads
} // namespace xlvm

#endif // XLVM_WORKLOADS_SUITES_H
